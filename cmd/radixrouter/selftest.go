package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/radix-net/radixnet/internal/cliutil"
	"github.com/radix-net/radixnet/internal/cluster"
	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/dataset"
	"github.com/radix-net/radixnet/internal/graphio"
	"github.com/radix-net/radixnet/internal/infer"
	"github.com/radix-net/radixnet/internal/obs"
	"github.com/radix-net/radixnet/internal/obs/slo"
	"github.com/radix-net/radixnet/internal/radix"
	"github.com/radix-net/radixnet/internal/serve"
	"github.com/radix-net/radixnet/internal/sparse"
)

// clusterBenchRecord is the BENCH_cluster.json schema: one end-to-end
// measurement of the routed fleet, appended per selftest run so the file
// records the cluster-performance trajectory (see README.md).
type clusterBenchRecord struct {
	Benchmark  string                `json:"benchmark"`
	Date       string                `json:"date"`
	GoVersion  string                `json:"go_version"`
	GOMAXPROCS int                   `json:"gomaxprocs"`
	GitSHA     string                `json:"git_sha"`
	Backends   int                   `json:"backends"`
	Replicas   int                   `json:"replicas"`
	Vnodes     int                   `json:"vnodes"`
	Models     int                   `json:"models"`
	Network    clusterBenchNet       `json:"network"`
	Levels     []clusterBenchLevel   `json:"levels"`
	Failover   clusterBenchFailover  `json:"failover"`
	HotReload  clusterBenchHotReload `json:"hot_reload"`
	QoS        clusterBenchQoS       `json:"qos"`
	// SLOFastBurn is the fast-window burn rate the router's fleet-evaluated
	// GET /v1/slo reports for the deliberately breached objective;
	// EngineGedges the fastest backend engine throughput visible in the
	// merged /metrics exposition.
	SLOFastBurn  float64 `json:"slo_fast_burn"`
	EngineGedges float64 `json:"engine_gedges_s"`
	BitIdentical bool    `json:"bit_identical"`
}

// clusterBenchQoS records the routed starvation-freedom phase: interactive
// p99 through the router with the fleet idle vs under a saturating routed
// background flood, plus both classes' delivered rates.
type clusterBenchQoS struct {
	UnloadedP99Ms         float64 `json:"interactive_unloaded_p99_ms"`
	LoadedP99Ms           float64 `json:"interactive_loaded_p99_ms"`
	P99Bound              float64 `json:"p99_bound_ms"`
	QueueWaitP99Ms        float64 `json:"interactive_queue_wait_p99_ms"`
	InteractiveRowsPerSec float64 `json:"interactive_rows_per_sec"`
	BackgroundRowsPerSec  float64 `json:"background_rows_per_sec"`
	BackgroundRows        int     `json:"background_rows"`
}

type clusterBenchNet struct {
	LayerWidth int `json:"layer_width"`
	Layers     int `json:"layers"`
	Weights    int `json:"weights"`
}

type clusterBenchLevel struct {
	Concurrency int     `json:"concurrency"`
	Rows        int     `json:"rows"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	// LatencyP50Ms/LatencyP99Ms come from the router's fleet-merged
	// radixrouter_model_request_latency_seconds exposition (backend
	// histograms summed bucket-wise), windowed to this level by a
	// before/after scrape; log-bucketed, so quantiles carry at most 2×
	// resolution error.
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
}

type clusterBenchFailover struct {
	KilledBackend string `json:"killed_backend"`
	Requests      int    `json:"requests"`
	Failed        int    `json:"failed"`
	Failovers     int64  `json:"failovers"`
}

type clusterBenchHotReload struct {
	Replicas int `json:"replicas"`
	Reloads  int `json:"reloads"`
	Requests int `json:"requests"`
	Failed   int `json:"failed"`
}

// selftestClient is tuned for many concurrent keep-alive connections to
// one router.
func selftestClient() *http.Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = 128
	return &http.Client{Transport: tr, Timeout: 30 * time.Second}
}

// scrapeMetricsText fetches the router's /metrics exposition (which
// fans out to every backend and re-emits their series merged).
func scrapeMetricsText(client *http.Client, url string) (string, error) {
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("scrape /metrics: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// postRow sends one single-row inference request through the router and
// returns the HTTP status, the answering backend id, and the decoded
// response (valid only for status 200).
func postRow(client *http.Client, url, model string, row []float64) (int, string, serve.InferResponse, error) {
	return postReq(client, url, serve.InferRequest{Model: model, Inputs: [][]float64{row}})
}

// postReq sends one inference request (any rows, class, deadline) through
// the router.
func postReq(client *http.Client, url string, req serve.InferRequest) (int, string, serve.InferResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, "", serve.InferResponse{}, err
	}
	resp, err := client.Post(url+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", serve.InferResponse{}, err
	}
	defer resp.Body.Close()
	var out serve.InferResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return resp.StatusCode, "", out, err
		}
	}
	return resp.StatusCode, resp.Header.Get("X-Radix-Backend"), out, nil
}

// runSelftest drives the sharded fleet end-to-end: nBackends in-process
// radixserve instances, models placed by the router's ring, bit-identity
// against direct Engine.Infer, routed throughput, and a mid-load backend
// kill that must complete with zero failed requests. On success it appends
// the measurement to benchPath.
func runSelftest(benchPath string, nBackends, replicas int) error {
	if nBackends < 2 {
		nBackends = 2 // failover needs somewhere to fail over to
	}
	if replicas < 2 {
		replicas = 2
	}

	// The selftest network: radix [4,4,4] → width 64, 3 layers. Small
	// enough that a whole fleet of them boots in milliseconds, big enough
	// that batching and forwarding are exercised.
	cfg, err := core.NewConfig([]radix.System{radix.MustNew(4, 4, 4)}, nil)
	if err != nil {
		return err
	}
	models := []string{"shard-0", "shard-1", "shard-2", "shard-3"}
	pol := serve.Policy{MaxBatch: 32, MaxLatency: time.Millisecond}

	// Boot the backends empty; models are registered once the ring decides
	// who owns what.
	regs := make(map[string]*serve.Registry, nBackends)
	srvs := make(map[string]*serve.Server, nBackends)
	var addrs []string
	for i := 0; i < nBackends; i++ {
		reg := serve.NewRegistry(pol)
		// Profile every engine batch so the merged /metrics exposition
		// carries radixserve_engine_gedges_per_sec for the fleet-obs phase.
		reg.SetProfileEvery(1)
		srv := serve.NewServer(reg, "127.0.0.1:0")
		addr, err := srv.Start()
		if err != nil {
			return err
		}
		regs[addr] = reg
		srvs[addr] = srv
		addrs = append(addrs, addr)
	}
	defer func() {
		for _, srv := range srvs {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			srv.Shutdown(ctx) //nolint:errcheck // best-effort teardown
			cancel()
		}
	}()

	// Two SLO objectives arm the router's fleet-evaluated GET /v1/slo: a
	// loose one every request meets and a 1µs latency target nothing can,
	// which the fleet-obs phase expects to see "violated".
	rtObjectives, err := slo.ParseObjectives([]string{"shard-0::10s:50", "shard-0::1us:99"})
	if err != nil {
		return err
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Addr:       "127.0.0.1:0",
		Backends:   addrs,
		Replicas:   replicas,
		MaxBackoff: 100 * time.Millisecond,
		// The selftest doubles as an observability smoke test: profiling
		// endpoints and the trace ring must answer on the router too.
		Pprof:      true,
		TraceDepth: 256,
		SLO:        slo.Config{Objectives: rtObjectives},
		Set: cluster.SetConfig{
			ProbeInterval: 100 * time.Millisecond,
			FailAfter:     2,
		},
	})
	if err != nil {
		return err
	}
	buildStart := time.Now()
	var weights, layers int
	for _, model := range models {
		owners := rt.Placement(model)
		for _, id := range owners {
			m, err := regs[id].Register(model, cfg, 1)
			if err != nil {
				return err
			}
			info := m.Info()
			weights, layers = info.Weights, info.Layers
		}
		log.Printf("model %s → %v", model, owners)
	}
	width := cfg.LayerWidths()[0]
	log.Printf("fleet: %d backends × %d models (width %d, %d layers, %d weights each, %d replicas), built in %v",
		nBackends, len(models), width, layers, weights, replicas, time.Since(buildStart).Round(time.Millisecond))

	bound, err := rt.Start()
	if err != nil {
		return err
	}
	url := "http://" + bound
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := rt.Shutdown(ctx); err != nil {
			log.Printf("router shutdown: %v", err)
		}
	}()

	// Per-row ground truth from a private engine over the same config —
	// generation is deterministic, so weights match every replica's.
	const baseRows = 48
	in, err := dataset.SparseBatch(baseRows, width, width/10, 7)
	if err != nil {
		return err
	}
	ref, err := infer.FromConfig(cfg)
	if err != nil {
		return err
	}
	expected := make([][]float64, baseRows)
	for r := 0; r < baseRows; r++ {
		rowIn, err := sparse.DenseFromSlice(1, width, in.RowSlice(r))
		if err != nil {
			return err
		}
		y, err := ref.Infer(rowIn)
		if err != nil {
			return err
		}
		expected[r] = append([]float64(nil), y.Data()...)
	}

	client := selftestClient()

	// Phase 1 — bit-identity through the router, for every model (so every
	// backend and every ring placement is exercised), with routing pinned
	// to each model's owners.
	for _, model := range models {
		owners := rt.Placement(model)
		for r := 0; r < baseRows; r++ {
			status, by, resp, err := postRow(client, url, model, in.RowSlice(r))
			if err != nil || status != http.StatusOK || len(resp.Outputs) != 1 {
				return fmt.Errorf("%s row %d: status %d err %v", model, r, status, err)
			}
			if !slices.Contains(owners, by) {
				return fmt.Errorf("%s row %d answered by %s, not an owner %v", model, r, by, owners)
			}
			for c, v := range resp.Outputs[0] {
				if v != expected[r][c] {
					return fmt.Errorf("%s row %d col %d: got %v want %v (not bit-identical to direct Engine.Infer)",
						model, r, c, v, expected[r][c])
				}
			}
		}
	}
	log.Printf("bit-identity: %d rows × %d models routed, all bit-identical to direct Engine.Infer", baseRows, len(models))

	// Phase 2 — routed throughput at several client concurrency levels,
	// spread across all models so the whole fleet carries load.
	var levels []clusterBenchLevel
	for _, conc := range []int{1, 4, 16} {
		rows := baseRows * 4 * conc
		beforeScrape, err := scrapeMetricsText(client, url)
		if err != nil {
			return err
		}
		var next, failures atomic.Int64
		var firstErr atomic.Value
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < conc; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= int64(rows) {
						return
					}
					model := models[int(i)%len(models)]
					r := int(i) % baseRows
					status, _, resp, err := postRow(client, url, model, in.RowSlice(r))
					if err != nil || status != http.StatusOK || len(resp.Outputs) != 1 {
						failures.Add(1)
						firstErr.CompareAndSwap(nil, fmt.Errorf("row %d: status %d err %v", i, status, err))
						return
					}
					if resp.Outputs[0][0] != expected[r][0] {
						failures.Add(1)
						firstErr.CompareAndSwap(nil, fmt.Errorf("row %d diverged", i))
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		if failures.Load() > 0 {
			return fmt.Errorf("throughput concurrency %d: %d failures (first: %v)", conc, failures.Load(), firstErr.Load())
		}
		lvl := clusterBenchLevel{Concurrency: conc, Rows: rows, RowsPerSec: float64(rows) / elapsed.Seconds()}

		// Latency quantiles for this level from the router's fleet-merged
		// exposition, windowed by the before/after scrape so only this
		// level's traffic counts. A nil label want merges across the four
		// models — the level spread its rows over all of them.
		afterScrape, err := scrapeMetricsText(client, url)
		if err != nil {
			return err
		}
		ha, okA := obs.ParseHistogram(afterScrape, "radixrouter_model_request_latency_seconds", nil)
		hb, okB := obs.ParseHistogram(beforeScrape, "radixrouter_model_request_latency_seconds", nil)
		if !okA {
			return fmt.Errorf("throughput concurrency %d: merged latency histogram missing from router /metrics", conc)
		}
		win := ha
		if okB {
			win = ha.Sub(hb)
		}
		if win.Count != uint64(rows) {
			return fmt.Errorf("throughput concurrency %d: merged histogram window counts %d requests, want %d (bucket-wise fleet merge broken?)",
				conc, win.Count, rows)
		}
		lvl.LatencyP50Ms = win.Quantile(0.50) * 1e3
		lvl.LatencyP99Ms = win.Quantile(0.99) * 1e3
		if lvl.LatencyP99Ms <= 0 || lvl.LatencyP99Ms > 20000 {
			return fmt.Errorf("throughput concurrency %d: merged exported p99 %.2fms implausible", conc, lvl.LatencyP99Ms)
		}
		levels = append(levels, lvl)
		log.Printf("concurrency %2d: %d routed rows in %v = %.0f rows/s (fleet-merged p50 %.2fms p99 %.2fms)",
			conc, rows, elapsed.Round(time.Millisecond), lvl.RowsPerSec, lvl.LatencyP50Ms, lvl.LatencyP99Ms)
	}

	// Phase 3 — model control plane through the router: register a new
	// model fleet-wide at runtime, prove bit-identity, hot-reload it on
	// every replica under concurrent load with zero failures, unregister,
	// observe 404. Runs while the whole fleet is alive, so placement-aware
	// registration can reach every intended owner.
	hr, err := runControlPlanePhase(client, url, rt, regs, cfg, expected, in)
	if err != nil {
		return err
	}

	// Phase 3b — QoS through the router: a saturating routed background
	// flood must not starve interactive probes of the same model, and the
	// class must round-trip (body → router header → backend scheduler →
	// response). Runs while the fleet is whole, before the kill phase.
	qosRec, err := runQoSPhase(client, url, models[1], expected, in)
	if err != nil {
		return err
	}

	// Phase 3c — observability through the router: a caller-chosen trace ID
	// survives the client → router → backend → response round trip, the
	// router retains the trace with route/attempt spans, and profiling
	// endpoints answer.
	if err := runObsPhase(client, url, models[0], in); err != nil {
		return err
	}

	// Phase 3d — fleet-level observability: merged exemplars resolving in
	// the router's trace ring, backend engine profiles through the merge,
	// and the fleet-evaluated SLO engine flipping to "violated" on the
	// unmeetable objective. Runs while the fleet is whole.
	sloBurn, gedges, err := runFleetObsPhase(client, url, models[0], in)
	if err != nil {
		return err
	}

	// Phase 4 — kill a backend mid-load. Every request must still succeed:
	// in-flight rows drain through the dying node's graceful shutdown, and
	// everything after fails over to the surviving replica. Zero failures
	// is the acceptance bar.
	victimModel := models[0]
	owners := rt.Placement(victimModel)
	victim := owners[0]
	const (
		floodWorkers  = 8
		floodRequests = 400
		killAfter     = floodRequests / 4
	)
	var sent, failed, killed atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	killGate := make(chan struct{})
	for w := 0; w < floodWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := sent.Add(1)
				if i > floodRequests {
					return
				}
				if i == killAfter {
					close(killGate)
				}
				r := int(i) % baseRows
				status, _, resp, err := postRow(client, url, victimModel, in.RowSlice(r))
				if err != nil || status != http.StatusOK {
					failed.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("request %d: status %d err %v", i, status, err))
					continue
				}
				if resp.Outputs[0][0] != expected[r][0] {
					failed.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("request %d diverged after failover", i))
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-killGate
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srvs[victim].Shutdown(ctx) //nolint:errcheck // the point is killing it
		killed.Store(1)
	}()
	wg.Wait()
	if killed.Load() != 1 {
		return fmt.Errorf("failover phase never killed the backend (load too short?)")
	}
	failovers := rt.Metrics().Failovers
	if failed.Load() > 0 {
		return fmt.Errorf("failover: %d of %d requests failed after killing %s (first: %v)",
			failed.Load(), floodRequests, victim, firstErr.Load())
	}
	if failovers == 0 {
		return fmt.Errorf("failover: backend %s killed mid-load but the router never failed over", victim)
	}
	log.Printf("failover: killed %s after %d requests; %d/%d succeeded (%d failover retries), zero failures",
		victim, killAfter, floodRequests-int(failed.Load()), floodRequests, failovers)

	rec := clusterBenchRecord{
		Benchmark:  "cluster-router",
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GitSHA:     cliutil.GitSHA(),
		Backends:   nBackends,
		Replicas:   replicas,
		Vnodes:     cluster.DefaultVnodes,
		Models:     len(models),
		Network:    clusterBenchNet{LayerWidth: width, Layers: layers, Weights: weights},
		Levels:     levels,
		Failover: clusterBenchFailover{
			KilledBackend: victim,
			Requests:      floodRequests,
			Failed:        int(failed.Load()),
			Failovers:     failovers,
		},
		HotReload:    hr,
		QoS:          qosRec,
		SLOFastBurn:  sloBurn,
		EngineGedges: gedges,
		// Any bitwise mismatch returned above, so reaching here proves it.
		BitIdentical: true,
	}
	n, err := cliutil.AppendJSONRecord(benchPath, rec)
	if err != nil {
		return err
	}
	log.Printf("bench: appended record %d to %s", n, benchPath)

	// Phase 5 — the autoscale control loop, on its own larger fleet:
	// zipfian popularity, static-replica baseline vs autoscaled tail
	// latency, zone-diverse scale-out, and SLO-triggered actuation.
	return runAutoscalePhase(benchPath)
}

// runObsPhase smokes the routed observability surface: an explicit
// X-Radix-Trace-Id round-trips client → router → backend → response (body
// and header), the backend's per-stage span breakdown rides the relayed
// response, the router retains the trace with its own route/attempt spans
// in GET /debug/traces, and the opt-in pprof endpoints answer.
func runObsPhase(client *http.Client, url, model string, in *sparse.Dense) error {
	const traceID = "cafe0000cafe0000cafe0000cafe0000"
	body, err := json.Marshal(serve.InferRequest{Model: model, Inputs: [][]float64{in.RowSlice(0)}})
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/infer", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.HeaderTraceID, traceID)
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("obs: traced request: %w", err)
	}
	var out serve.InferResponse
	decodeErr := json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || decodeErr != nil {
		return fmt.Errorf("obs: traced request: status %d decode err %v", resp.StatusCode, decodeErr)
	}
	if got := resp.Header.Get(obs.HeaderTraceID); got != traceID {
		return fmt.Errorf("obs: router response trace header %q, want %q", got, traceID)
	}
	if out.TraceID != traceID {
		return fmt.Errorf("obs: backend response body trace ID %q, want %q (header lost in forwarding?)", out.TraceID, traceID)
	}
	if len(out.Spans) < 5 {
		return fmt.Errorf("obs: relayed response carries %d backend spans, want >= 5: %+v", len(out.Spans), out.Spans)
	}

	tr, err := client.Get(url + "/debug/traces?n=16")
	if err != nil {
		return fmt.Errorf("obs: /debug/traces: %w", err)
	}
	var view struct {
		Total  uint64       `json:"total"`
		Recent []*obs.Trace `json:"recent"`
	}
	decodeErr = json.NewDecoder(tr.Body).Decode(&view)
	tr.Body.Close()
	if decodeErr != nil {
		return fmt.Errorf("obs: /debug/traces decode: %w", decodeErr)
	}
	var found *obs.Trace
	for _, t := range view.Recent {
		if t.ID == traceID {
			found = t
		}
	}
	if found == nil {
		return fmt.Errorf("obs: trace %s not retained in router /debug/traces (%d total)", traceID, view.Total)
	}
	hasRoute := false
	var attempt, queue, execute *obs.Span
	for i := range found.Spans {
		s := &found.Spans[i]
		switch {
		case s.Name == "route":
			hasRoute = true
		case strings.HasPrefix(s.Name, "attempt:"):
			attempt = s
		case s.Name == "queue":
			queue = s
		case s.Name == "execute":
			execute = s
		}
	}
	if !hasRoute || attempt == nil || found.Backend == "" {
		return fmt.Errorf("obs: router trace missing route/attempt spans or backend attribution: %+v", found)
	}
	// The stitched view: the backend's own spans ride the X-Radix-Spans
	// response header and are grafted under the router's attempt span,
	// rebased to the router's clock — so one trace shows both tiers with
	// consistent offsets (backend work cannot start before the attempt).
	if queue == nil || execute == nil {
		return fmt.Errorf("obs: router trace not stitched — backend queue/execute spans missing: %+v", found.Spans)
	}
	const slack = 1e-3 // ms; offsets are rendered at µs resolution
	if queue.StartMs < attempt.StartMs-slack || execute.StartMs < queue.StartMs-slack {
		return fmt.Errorf("obs: stitched span offsets not monotonic: attempt %.3fms, queue %.3fms, execute %.3fms",
			attempt.StartMs, queue.StartMs, execute.StartMs)
	}
	if end := execute.StartMs + execute.DurMs; end > found.TotalMs+slack {
		return fmt.Errorf("obs: stitched execute span ends at %.3fms, beyond the trace total %.3fms", end, found.TotalMs)
	}

	pp, err := client.Get(url + "/debug/pprof/cmdline")
	if err != nil {
		return fmt.Errorf("obs: pprof: %w", err)
	}
	_, _ = io.Copy(io.Discard, pp.Body)
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		return fmt.Errorf("obs: pprof cmdline: status %d", pp.StatusCode)
	}
	log.Printf("obs: trace %s round-tripped client → router → backend (%d backend spans relayed); router trace stitched: route+attempt+queue+execute with monotonic offsets; pprof live",
		traceID, len(out.Spans))
	return nil
}

// runFleetObsPhase exercises the router's fleet-level observability: the
// merged histogram exposition must carry exemplar annotations that resolve
// in the router's own trace ring, the backend engine profiles must surface
// through the merge, and the fleet-evaluated SLO engine must report the
// deliberately breached 1µs objective as "violated" (and the loose 10s one
// as "ok"). Returns the breached objective's fast burn and the fastest
// merged engine Gedges/s for the bench record.
func runFleetObsPhase(client *http.Client, url, model string, in *sparse.Dense) (sloFastBurn, gedges float64, err error) {
	// Fresh probes: their router-minted trace IDs become the most recent
	// exemplars in the buckets they land in, and are retained in the
	// router's trace ring.
	for i := 0; i < 4; i++ {
		status, _, _, err := postRow(client, url, model, in.RowSlice(i))
		if err != nil || status != http.StatusOK {
			return 0, 0, fmt.Errorf("fleet-obs: probe %d: status %d err %v", i, status, err)
		}
	}
	scrape, err := scrapeMetricsText(client, url)
	if err != nil {
		return 0, 0, err
	}
	prefix := fmt.Sprintf("radixrouter_model_request_latency_seconds_bucket{model=%q", model)
	ids := exemplarTraceIDs(scrape, prefix)
	if len(ids) == 0 {
		return 0, 0, fmt.Errorf("fleet-obs: no exemplar annotations on the fleet-merged latency buckets")
	}
	resolved := ""
	for _, id := range ids {
		tr, err := client.Get(url + "/debug/traces?trace=" + id)
		if err != nil {
			return 0, 0, fmt.Errorf("fleet-obs: ?trace=: %w", err)
		}
		var view struct {
			Trace *obs.Trace `json:"trace"`
		}
		decodeErr := json.NewDecoder(tr.Body).Decode(&view)
		tr.Body.Close()
		if tr.StatusCode != http.StatusOK || decodeErr != nil {
			continue
		}
		if view.Trace != nil && view.Trace.ID == id {
			resolved = id
			break
		}
	}
	if resolved == "" {
		return 0, 0, fmt.Errorf("fleet-obs: none of %d merged exemplar trace IDs resolved via router /debug/traces?trace=", len(ids))
	}

	// Backend engine profiles surface through the merge, backend-labeled.
	for _, line := range strings.Split(scrape, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "radixserve_engine_gedges_per_sec{") {
			continue
		}
		if _, _, valStr, ok := obs.SplitSeries(line); ok {
			var v float64
			if _, err := fmt.Sscanf(valStr, "%g", &v); err == nil && v > gedges {
				gedges = v
			}
		}
	}
	if gedges <= 0 {
		return 0, 0, fmt.Errorf("fleet-obs: no radixserve_engine_gedges_per_sec series in the merged exposition")
	}

	// The fleet-evaluated SLO engine: the 1µs objective is unmeetable, so
	// with the whole fleet lifetime inside both burn windows it must read
	// "violated"; the 10s objective must stay "ok".
	sv, err := client.Get(url + "/v1/slo")
	if err != nil {
		return 0, 0, fmt.Errorf("fleet-obs: /v1/slo: %w", err)
	}
	var view slo.View
	decodeErr := json.NewDecoder(sv.Body).Decode(&view)
	sv.Body.Close()
	if sv.StatusCode != http.StatusOK || decodeErr != nil {
		return 0, 0, fmt.Errorf("fleet-obs: /v1/slo: status %d err %v", sv.StatusCode, decodeErr)
	}
	var breached, loose *slo.Status
	for i := range view.Statuses {
		st := &view.Statuses[i]
		if st.Model != model || st.Class != "" {
			continue
		}
		switch st.Objective.Latency {
		case time.Microsecond:
			breached = st
		case 10 * time.Second:
			loose = st
		}
	}
	if breached == nil || loose == nil {
		return 0, 0, fmt.Errorf("fleet-obs: /v1/slo missing objectives for %s (%d statuses)", model, len(view.Statuses))
	}
	if breached.State != slo.StateViolated {
		return 0, 0, fmt.Errorf("fleet-obs: unmeetable 1µs objective reports %q (fast burn %.2f, slow %.2f), want %q",
			breached.State, breached.FastBurn, breached.SlowBurn, slo.StateViolated)
	}
	if loose.State != slo.StateOK {
		return 0, 0, fmt.Errorf("fleet-obs: loose 10s objective reports %q (fast burn %.2f), want %q",
			loose.State, loose.FastBurn, slo.StateOK)
	}
	log.Printf("fleet-obs: merged exemplar trace %s resolved via router ?trace=; engines peak %.3f Gedges/s through the merge; /v1/slo: 1µs objective %s (fast burn %.1f), 10s objective %s",
		resolved, gedges, breached.State, breached.FastBurn, loose.State)
	return breached.FastBurn, gedges, nil
}

// exemplarTraceIDs extracts the trace IDs of every exemplar annotation on
// scrape lines with the given prefix.
func exemplarTraceIDs(scrape, prefix string) []string {
	var ids []string
	for _, line := range strings.Split(scrape, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		_, exemplar := obs.SplitExemplar(line)
		if exemplar == "" {
			continue
		}
		open := strings.Index(exemplar, `trace_id="`)
		if open < 0 {
			continue
		}
		rest := exemplar[open+len(`trace_id="`):]
		end := strings.IndexByte(rest, '"')
		if end <= 0 {
			continue
		}
		ids = append(ids, rest[:end])
	}
	return ids
}

// percentile returns the p-th percentile (0–100) of the latencies.
func percentile(lat []time.Duration, p int) time.Duration {
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (len(s) * p) / 100
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// runQoSPhase proves starvation-freedom through the router: interactive
// p99 against one model stays bounded while a background flood saturates
// the same model, background still progresses, and the class annotation
// survives the body → router header → backend scheduler round trip. As in
// the radixserve selftest, the scheduler queue-wait p99 is the precise
// starvation bound and the end-to-end p99 (with an absolute floor for
// small CI machines, where a saturating flood contends for the CPU itself)
// the gross one.
func runQoSPhase(client *http.Client, url, model string, expected [][]float64, in *sparse.Dense) (clusterBenchQoS, error) {
	var q clusterBenchQoS
	baseRows := in.Rows()

	const probes = 120
	probe := func() (lat, qwait []time.Duration, err error) {
		lat = make([]time.Duration, 0, probes)
		qwait = make([]time.Duration, 0, probes)
		for i := 0; i < probes; i++ {
			r := i % baseRows
			start := time.Now()
			status, _, resp, err := postReq(client, url, serve.InferRequest{
				Model: model, Class: "interactive", Inputs: [][]float64{in.RowSlice(r)},
			})
			if err != nil || status != http.StatusOK || len(resp.Outputs) != 1 {
				return nil, nil, fmt.Errorf("qos: interactive probe %d: status %d err %v", i, status, err)
			}
			if resp.Class != "interactive" {
				return nil, nil, fmt.Errorf("qos: probe %d scheduled as class %q, want interactive (class lost in routing?)", i, resp.Class)
			}
			if resp.Outputs[0][0] != expected[r][0] {
				return nil, nil, fmt.Errorf("qos: probe %d diverged under priority scheduling", i)
			}
			lat = append(lat, time.Since(start))
			qwait = append(qwait, time.Duration(resp.QueueWaitMs*float64(time.Millisecond)))
		}
		return lat, qwait, nil
	}

	unloaded, _, err := probe()
	if err != nil {
		return q, err
	}

	const (
		floodWorkers = 4
		rowsPerReq   = 16
	)
	stop := make(chan struct{})
	var bgRows atomic.Int64
	var bgErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < floodWorkers; w++ {
		reqRows := make([][]float64, rowsPerReq)
		for i := range reqRows {
			reqRows[i] = in.RowSlice((w + i) % baseRows)
		}
		body, err := json.Marshal(serve.InferRequest{Model: model, Class: "background", Inputs: reqRows})
		if err != nil {
			close(stop)
			return q, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Post(url+"/v1/infer", "application/json", bytes.NewReader(body))
				if err != nil {
					bgErr.CompareAndSwap(nil, fmt.Errorf("qos: background flood: %w", err))
					return
				}
				status := resp.StatusCode
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case status == http.StatusOK:
					bgRows.Add(rowsPerReq)
				case status == http.StatusTooManyRequests:
					// Background gets no router-side backoff by design; the
					// client owns the pacing.
					time.Sleep(2 * time.Millisecond)
				default:
					bgErr.CompareAndSwap(nil, fmt.Errorf("qos: background flood: status %d", status))
					return
				}
			}
		}()
	}
	warmDeadline := time.Now().Add(10 * time.Second)
	for bgRows.Load() < rowsPerReq && bgErr.Load() == nil && time.Now().Before(warmDeadline) {
		time.Sleep(time.Millisecond)
	}

	beforeScrape, err := scrapeMetricsText(client, url)
	if err != nil {
		close(stop)
		wg.Wait()
		return q, err
	}
	loadedStart := time.Now()
	bgBefore := bgRows.Load()
	loaded, loadedWait, probeErr := probe()
	loadedElapsed := time.Since(loadedStart)
	bgDuring := bgRows.Load() - bgBefore
	afterScrape, scrapeErr := scrapeMetricsText(client, url)
	close(stop)
	wg.Wait()
	if probeErr != nil {
		return q, probeErr
	}
	if e := bgErr.Load(); e != nil {
		return q, e.(error)
	}
	if scrapeErr != nil {
		return q, scrapeErr
	}

	p99u := percentile(unloaded, 99)
	p99l := percentile(loaded, 99)

	// The precise starvation bound is asserted on the histogram operators
	// actually scrape: the router-merged per-model×class queue-wait
	// exposition, windowed to the loaded probe run. The probes' own
	// client-side tally only annotates the failure message.
	wantWait := map[string]string{"model": model, "class": "interactive"}
	wa, okA := obs.ParseHistogram(afterScrape, "radixrouter_model_queue_wait_seconds", wantWait)
	wb, okB := obs.ParseHistogram(beforeScrape, "radixrouter_model_queue_wait_seconds", wantWait)
	if !okA {
		return q, fmt.Errorf("qos: merged queue-wait histogram for %v missing from router /metrics", wantWait)
	}
	win := wa
	if okB {
		win = wa.Sub(wb)
	}
	if win.Count == 0 {
		return q, fmt.Errorf("qos: merged queue-wait histogram for %v empty over the loaded probe window", wantWait)
	}
	waitP99 := time.Duration(win.Quantile(0.99) * float64(time.Second))
	if waitBound := 25 * time.Millisecond; waitP99 > waitBound {
		clientWaitP99 := percentile(loadedWait, 99)
		return q, fmt.Errorf("qos: interactive queue-wait p99 %v (exported, %d samples; client-side %v) under routed background flood exceeds %v: starved in the scheduler",
			waitP99.Round(time.Microsecond), win.Count, clientWaitP99.Round(time.Microsecond), waitBound)
	}
	bound := 5 * p99u
	if floor := 100 * time.Millisecond; bound < floor {
		bound = floor
	}
	if p99l > bound {
		return q, fmt.Errorf("qos: interactive p99 %v under routed background flood exceeds bound %v (5× unloaded %v): starved",
			p99l.Round(time.Microsecond), bound, p99u.Round(time.Microsecond))
	}
	if bgDuring == 0 {
		return q, fmt.Errorf("qos: background completed no routed rows during the %v probe window: background starved", loadedElapsed.Round(time.Millisecond))
	}
	q = clusterBenchQoS{
		UnloadedP99Ms:         float64(p99u) / float64(time.Millisecond),
		LoadedP99Ms:           float64(p99l) / float64(time.Millisecond),
		P99Bound:              float64(bound) / float64(time.Millisecond),
		QueueWaitP99Ms:        float64(waitP99) / float64(time.Millisecond),
		InteractiveRowsPerSec: float64(probes) / loadedElapsed.Seconds(),
		BackgroundRowsPerSec:  float64(bgDuring) / loadedElapsed.Seconds(),
		BackgroundRows:        int(bgDuring),
	}
	log.Printf("qos: routed interactive p99 %.2fms unloaded → %.2fms under background flood (bound %.2fms, queue-wait p99 %.3fms); interactive %.0f rows/s, background %.0f rows/s (%d rows, no starvation)",
		q.UnloadedP99Ms, q.LoadedP99Ms, q.P99Bound, q.QueueWaitP99Ms, q.InteractiveRowsPerSec, q.BackgroundRowsPerSec, q.BackgroundRows)
	return q, nil
}

// runControlPlanePhase drives the fleet control plane end to end through
// the router: POST /v1/models registers a model on its ring-intended
// replicas, routed inference against it is bit-identical to direct
// Engine.Infer, PUT /v1/models/{name} hot-reloads every replica under
// concurrent routed load with zero failed requests, and DELETE removes it
// fleet-wide (after which the router answers 404).
func runControlPlanePhase(client *http.Client, url string, rt *cluster.Router, regs map[string]*serve.Registry, cfg core.Config, expected [][]float64, in *sparse.Dense) (clusterBenchHotReload, error) {
	var hr clusterBenchHotReload
	const model = "live"
	cfgJSON, err := graphio.MarshalConfig(cfg)
	if err != nil {
		return hr, err
	}
	regBody, err := json.Marshal(serve.RegisterRequest{Name: model, Config: cfgJSON, Engines: 1})
	if err != nil {
		return hr, err
	}
	status, body, err := cliutil.DoJSON(context.Background(), client, http.MethodPost, url+"/v1/models", regBody)
	if err != nil || status != http.StatusCreated {
		return hr, fmt.Errorf("control plane: register: status %d err %v (%s)", status, err, body)
	}
	owners := rt.Placement(model)
	for id, reg := range regs {
		_, has := reg.Model(model)
		if has != slices.Contains(owners, id) {
			return hr, fmt.Errorf("control plane: backend %s hosts=%v, want placement %v", id, has, owners)
		}
	}
	log.Printf("control plane: registered %q on its %d ring owners %v", model, len(owners), owners)

	// Bit-identity through the router, answered only by intended owners.
	rows := in.Rows()
	for r := 0; r < rows; r++ {
		status, by, resp, err := postRow(client, url, model, in.RowSlice(r))
		if err != nil || status != http.StatusOK || len(resp.Outputs) != 1 {
			return hr, fmt.Errorf("control plane: row %d: status %d err %v", r, status, err)
		}
		if !slices.Contains(owners, by) {
			return hr, fmt.Errorf("control plane: row %d answered by %s, not an owner %v", r, by, owners)
		}
		for c, v := range resp.Outputs[0] {
			if v != expected[r][c] {
				return hr, fmt.Errorf("control plane: row %d col %d: runtime registration diverged (%v != %v)", r, c, v, expected[r][c])
			}
		}
	}
	log.Printf("control plane: %d routed rows bit-identical to direct Engine.Infer", rows)

	// Hot-reload every replica under concurrent routed load.
	const (
		reloads     = 2
		loadWorkers = 4
	)
	stop := make(chan struct{})
	var completed, failed atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < loadWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r := i % rows
				status, _, resp, err := postRow(client, url, model, in.RowSlice(r))
				if err != nil || status != http.StatusOK || len(resp.Outputs) != 1 {
					failed.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("row %d: status %d err %v", r, status, err))
					return
				}
				if resp.Outputs[0][0] != expected[r][0] {
					failed.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("row %d diverged mid-reload", r))
					return
				}
				completed.Add(1)
			}
		}(w)
	}
	waitRows := func(target int64) {
		deadline := time.Now().Add(15 * time.Second)
		for completed.Load() < target && failed.Load() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	for i := 0; i < reloads; i++ {
		waitRows(int64((i + 1) * 16))
		status, body, err := cliutil.DoJSON(context.Background(), client, http.MethodPut, url+"/v1/models/"+model, regBody)
		if err != nil || status != http.StatusOK {
			close(stop)
			wg.Wait()
			return hr, fmt.Errorf("control plane: fleet reload %d: status %d err %v (%s)", i, status, err, body)
		}
	}
	waitRows(int64((reloads + 1) * 16))
	close(stop)
	wg.Wait()
	hr = clusterBenchHotReload{
		Replicas: len(owners),
		Reloads:  reloads,
		Requests: int(completed.Load() + failed.Load()),
		Failed:   int(failed.Load()),
	}
	if failed.Load() > 0 {
		return hr, fmt.Errorf("control plane: %d of %d routed requests failed across %d fleet reloads (first: %v)",
			failed.Load(), hr.Requests, reloads, firstErr.Load())
	}
	for _, id := range owners {
		m, ok := regs[id].Model(model)
		if !ok || m.Generation() != 1+reloads {
			return hr, fmt.Errorf("control plane: backend %s generation after fleet reload: want %d", id, 1+reloads)
		}
	}
	log.Printf("control plane: %d fleet-wide reloads × %d replicas raced %d routed requests, zero failures", reloads, len(owners), hr.Requests)

	// Unregister fleet-wide; the router must then 404.
	status, body, err = cliutil.DoJSON(context.Background(), client, http.MethodDelete, url+"/v1/models/"+model, nil)
	if err != nil || status != http.StatusOK {
		return hr, fmt.Errorf("control plane: unregister: status %d err %v (%s)", status, err, body)
	}
	status, _, _, err = postRow(client, url, model, in.RowSlice(0))
	if err != nil || status != http.StatusNotFound {
		return hr, fmt.Errorf("control plane: infer after unregister: status %d err %v, want 404", status, err)
	}
	log.Printf("control plane: unregistered fleet-wide; routed inference now 404")
	return hr, nil
}
