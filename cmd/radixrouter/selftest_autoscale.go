package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/radix-net/radixnet/internal/autoscale"
	"github.com/radix-net/radixnet/internal/cliutil"
	"github.com/radix-net/radixnet/internal/cluster"
	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/dataset"
	"github.com/radix-net/radixnet/internal/graphio"
	"github.com/radix-net/radixnet/internal/infer"
	"github.com/radix-net/radixnet/internal/obs/slo"
	"github.com/radix-net/radixnet/internal/radix"
	"github.com/radix-net/radixnet/internal/serve"
	"github.com/radix-net/radixnet/internal/sparse"
)

// autoscaleBenchRecord is the "autoscale" entry appended to
// BENCH_cluster.json: a static-replica baseline against the autoscaled
// fleet under the same zipfian load, plus the control loop's convergence
// and SLO-actuation measurements.
type autoscaleBenchRecord struct {
	Benchmark  string  `json:"benchmark"`
	Date       string  `json:"date"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	GitSHA     string  `json:"git_sha"`
	Backends   int     `json:"backends"`
	Zones      int     `json:"zones"`
	Models     int     `json:"models"`
	Workers    int     `json:"load_workers"`
	RowsPerSec float64 `json:"rows_per_sec"`
	// BaselineHotP99Ms/AutoscaledHotP99Ms are the hottest model's
	// client-observed queue-wait p99 with every model pinned at one
	// replica vs under the control loop: each phase is the median p99
	// across equal-length sub-windows of the clients' per-response
	// samples (autoscaled: post-convergence tail only), which rejects
	// host-scheduler stall bursts symmetrically.
	BaselineHotP99Ms   float64 `json:"baseline_hot_queue_wait_p99_ms"`
	AutoscaledHotP99Ms float64 `json:"autoscaled_hot_queue_wait_p99_ms"`
	TailReduction      float64 `json:"tail_reduction_x"`
	HotReplicas        int     `json:"hot_model_replicas"`
	HotZones           int     `json:"hot_model_zones"`
	ScaleUps           int64   `json:"scale_ups"`
	ScaleDowns         int64   `json:"scale_downs"`
	Requests           int64   `json:"requests"`
	Failed             int64   `json:"failed"`
	MinStableIntervals int     `json:"min_stable_intervals"`
	// SLOScaleOutMs is how long after the SLO-violating traffic started the
	// control loop issued its scale-out decision (bound: two evaluation
	// windows).
	SLOScaleOutMs float64 `json:"slo_scale_out_ms"`
}

// runAutoscalePhase proves the replica control loop end to end on its own
// fleet: 24 backends across 4 zones, 8 models under zipfian popularity,
// a static-1-replica baseline vs the autoscaled run (same load, same
// duration). Acceptance: zero failed or divergent requests through every
// scaling transition, every model's replica count stable for >= 3
// evaluation intervals at the end, the hot model's queue-wait p99 cut at
// least 2x vs the baseline, its replicas spread across zones, and a
// deliberately violated SLO triggering scale-out within two evaluation
// windows.
func runAutoscalePhase(benchPath string) error {
	const (
		nBackends  = 24
		nZones     = 4
		nModels    = 8
		nWorkers   = 32
		rowsPerReq = 16
		maxBatch   = 16
		baseRows   = 64
		interval   = time.Second
		// subWindow slices each measurement phase into equal intervals of
		// client-observed queue waits; the phase figure is the MEDIAN of
		// the sub-window p99s. minWindowReqs is the fewest hot-model
		// requests a sub-window must hold for its p99 to count (p99 over a
		// handful of requests is a single sample in disguise).
		subWindow     = 500 * time.Millisecond
		minWindowReqs = 8
	)
	// The fleet is heterogeneous on purpose. The hot model is three fully
	// dense radix-768 layers (~1.8M multiply-adds per row): heavy enough
	// that ONE replica is structurally over capacity under the hot share
	// of the load — not marginally, which an earlier two-layer version
	// proved is a coin flip (the backlog only formed in the runs where
	// enough same-model draws clustered early) — so its queue holds a
	// standing backlog of closed-loop requests and every hot request pays
	// backlog-over-drain-rate: hundreds of milliseconds, far above the
	// box's scheduling-noise floor. In that regime the baseline-to-
	// converged ratio is simply the converged replica count (a closed
	// loop's wait scales as one over drain rate), so the 2x criterion is
	// met with margin by construction once the controller settles at
	// three replicas or more. The other seven models are a light
	// mixed-radix 96x8 layer at the same width (768, so every model
	// shares one request corpus) that a single replica drains at the
	// floor. An earlier homogeneous
	// version left it to zipf burst clustering to decide which batcher
	// tipped into backlog, and the answer was metastable — some runs
	// starved pop-1 instead of pop-0, some starved nothing. Structural
	// asymmetry makes the controller's target deterministic. Each request
	// is exactly one batch (rowsPerReq == MaxBatch), so all measured
	// queue-wait is CROSS-request queueing, which added replicas
	// genuinely absorb; a request split across several batches would wait
	// behind its own companions on one replica no matter how far the
	// model is scaled out. The flip side of a heavy model is heavy engine
	// builds: a scale-out stalls the loaded box for seconds, which is why
	// the policy below debounces scale-outs (UpAfter) and freezes each
	// model long enough for its builds to finish and their queue spike to
	// flush (Cooldown) — otherwise every actuation manufactures the next
	// one's trigger. Scale-out helps because each replica brings its own
	// single-worker batcher: a hot model's execution share grows with its
	// replica count.
	hotCfg, err := core.NewConfig([]radix.System{radix.MustNew(768), radix.MustNew(768), radix.MustNew(768)}, nil)
	if err != nil {
		return err
	}
	coldCfg, err := core.NewConfig([]radix.System{radix.MustNew(96, 8)}, nil)
	if err != nil {
		return err
	}
	// The whole phase — fleet, router, clients — lives in one Go heap, and
	// the load is JSON-heavy, so on a small machine collector stalls are
	// the dominant queue-wait noise: a mark cycle landing inside a
	// measurement window writes tens of milliseconds into that window's
	// p99 and masks what the scale-out changes. Rather than racing the
	// pacer, collections are placed deterministically — background GC off
	// (with a hard memory limit as the backstop), one forced blocking
	// collection immediately before each measurement window opens.
	prevGC := debug.SetGCPercent(-1)
	prevLimit := debug.SetMemoryLimit(4 << 30)
	defer func() {
		debug.SetMemoryLimit(prevLimit)
		debug.SetGCPercent(prevGC)
		runtime.GC()
	}()
	width := hotCfg.LayerWidths()[0]
	if w := coldCfg.LayerWidths()[0]; w != width {
		return fmt.Errorf("autoscale: hot/cold model widths diverge: %d vs %d", width, w)
	}
	pol := serve.Policy{MaxBatch: maxBatch, MaxLatency: time.Millisecond, QueueDepth: 4096, Workers: 1}

	regs := make(map[string]*serve.Registry, nBackends)
	srvs := make(map[string]*serve.Server, nBackends)
	zones := make(map[string]string, nBackends)
	var addrs []string
	for i := 0; i < nBackends; i++ {
		reg := serve.NewRegistry(pol)
		srv := serve.NewServer(reg, "127.0.0.1:0")
		addr, err := srv.Start()
		if err != nil {
			return err
		}
		regs[addr] = reg
		srvs[addr] = srv
		zones[addr] = fmt.Sprintf("zone-%d", i%nZones)
		addrs = append(addrs, addr)
	}
	defer func() {
		for _, srv := range srvs {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			srv.Shutdown(ctx) //nolint:errcheck // best-effort teardown
			cancel()
		}
	}()

	// Ground truth and pre-marshaled request bodies (8 row offsets per
	// model) so client-side JSON work does not distort the load.
	in, err := dataset.SparseBatch(baseRows, width, width/10, 13)
	if err != nil {
		return err
	}
	expectedFor := func(cfg core.Config) ([]float64, error) {
		ref, err := infer.FromConfig(cfg)
		if err != nil {
			return nil, err
		}
		exp := make([]float64, baseRows) // first output column per row
		for r := 0; r < baseRows; r++ {
			rowIn, err := sparse.DenseFromSlice(1, width, in.RowSlice(r))
			if err != nil {
				return nil, err
			}
			y, err := ref.Infer(rowIn)
			if err != nil {
				return nil, err
			}
			exp[r] = y.Data()[0]
		}
		return exp, nil
	}
	expectedHot, err := expectedFor(hotCfg)
	if err != nil {
		return err
	}
	expectedCold, err := expectedFor(coldCfg)
	if err != nil {
		return err
	}
	models := make([]string, nModels)
	for i := range models {
		models[i] = fmt.Sprintf("pop-%d", i)
	}
	hot := models[0]
	expected := func(model string) []float64 {
		if model == hot {
			return expectedHot
		}
		return expectedCold
	}
	const nOffsets = 8
	bodies := make(map[string][][]byte, nModels)
	for _, model := range models {
		offs := make([][]byte, nOffsets)
		for o := 0; o < nOffsets; o++ {
			rows := make([][]float64, rowsPerReq)
			for i := range rows {
				rows[i] = in.RowSlice((o*rowsPerReq + i) % baseRows)
			}
			body, err := json.Marshal(serve.InferRequest{Model: model, Inputs: rows})
			if err != nil {
				return err
			}
			offs[o] = body
		}
		bodies[model] = offs
	}
	firstRow := func(o int) int { return (o * rowsPerReq) % baseRows }

	// Zipfian popularity (s = 1.4): pop-0 draws ~45% of the load, pop-1
	// ~17%, the tail a few percent each — so the controller must scale the
	// head of the distribution while holding the tail at the floor. Every
	// worker draws its model independently per request: the random
	// multiplexing is load-bearing, because it is the clustering of
	// same-model draws that piles bursts onto the hot model's batcher
	// queue. (A run with each worker pinned to one model measured hot p90
	// under 200µs at one replica — closed-loop pinning self-paces arrivals
	// so smoothly the queue never builds, and there is nothing left for
	// replicas to absorb.)
	cum := make([]float64, nModels)
	total := 0.0
	for r := 0; r < nModels; r++ {
		total += math.Pow(float64(r+1), -1.4)
		cum[r] = total
	}

	client := selftestClient()
	hotCfgJSON, err := graphio.MarshalConfig(hotCfg)
	if err != nil {
		return err
	}
	coldCfgJSON, err := graphio.MarshalConfig(coldCfg)
	if err != nil {
		return err
	}
	registerAll := func(url string) error {
		for _, model := range models {
			cfgJSON := coldCfgJSON
			if model == hot {
				cfgJSON = hotCfgJSON
			}
			body, err := json.Marshal(serve.RegisterRequest{Name: model, Config: cfgJSON, Engines: 1})
			if err != nil {
				return err
			}
			status, out, err := cliutil.DoJSON(context.Background(), client, http.MethodPost, url+"/v1/models", body)
			if err != nil || status != http.StatusCreated {
				return fmt.Errorf("autoscale: register %s: status %d err %v (%s)", model, status, err, out)
			}
		}
		return nil
	}

	// runLoad drives nWorkers closed-loop zipfian clients for d. Every
	// response is checked for status and output divergence — scaling
	// transitions must be invisible to clients. Each worker also keeps the
	// hot model's queue waits as the backends reported them per response
	// (QueueWaitMs), stamped with the completion time: the p99 comparison
	// is built from these client-held samples, so measuring costs the
	// loaded box nothing.
	type waitSample struct {
		t  time.Time
		ms float64
	}
	runLoad := func(url string, d time.Duration) (requests, rows, failed int64, hotWaits []waitSample, firstErr error) {
		var req, fail atomic.Int64
		var errv atomic.Value
		perWorker := make([][]waitSample, nWorkers)
		deadline := time.Now().Add(d)
		var wg sync.WaitGroup
		for w := 0; w < nWorkers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(1000 + w)))
				for time.Now().Before(deadline) {
					u := rng.Float64() * total
					model := models[nModels-1]
					for r := 0; r < nModels; r++ {
						if u <= cum[r] {
							model = models[r]
							break
						}
					}
					o := rng.Intn(nOffsets)
					status, _, resp, err := postBody(client, url, bodies[model][o])
					req.Add(1)
					if err != nil || status != http.StatusOK || len(resp.Outputs) != rowsPerReq {
						fail.Add(1)
						errv.CompareAndSwap(nil, fmt.Errorf("%s: status %d err %v", model, status, err))
						continue
					}
					if resp.Outputs[0][0] != expected(model)[firstRow(o)] {
						fail.Add(1)
						errv.CompareAndSwap(nil, fmt.Errorf("%s offset %d diverged during scaling", model, o))
					}
					if model == hot {
						perWorker[w] = append(perWorker[w], waitSample{time.Now(), resp.QueueWaitMs})
					}
				}
			}(w)
		}
		wg.Wait()
		if e := errv.Load(); e != nil {
			firstErr = e.(error)
		}
		for _, s := range perWorker {
			hotWaits = append(hotWaits, s...)
		}
		return req.Load(), req.Load() * rowsPerReq, fail.Load(), hotWaits, firstErr
	}
	// Both phases are measured identically: the client-held hot-model
	// samples between from and to are sliced into subWindow-long
	// intervals and the phase's figure is the MEDIAN of the sub-window
	// p99s — the typical tail a hot request saw over the phase. The box
	// shares one core with its host, whose scheduling bursts stall every
	// in-flight request for tens of milliseconds at once, enough to own
	// the p99 of whichever window they land in regardless of queue depth;
	// the median discards such poisoned windows as long as they stay a
	// minority, and it discards them symmetrically — for the baseline to
	// read high, MOST of its windows must carry real queueing mass, and
	// for the autoscaled tail to read low, MOST of its windows must be
	// burst-free. (The extremes fail here: a minimum rewards the one
	// lucky window where even a saturated baseline drained; a whole-phase
	// p99 hands the figure to the unluckiest stall on either side.)
	phaseP99 := func(samples []waitSample, from, to time.Time) (time.Duration, []string, error) {
		n := int(to.Sub(from) / subWindow)
		if n <= 0 {
			return 0, nil, fmt.Errorf("autoscale: measurement window %v shorter than one sub-window", to.Sub(from))
		}
		buckets := make([][]float64, n)
		for _, s := range samples {
			if i := int(s.t.Sub(from) / subWindow); i >= 0 && i < n && !s.t.Before(from) {
				buckets[i] = append(buckets[i], s.ms)
			}
		}
		detail := make([]string, 0, n)
		var winP99s []float64
		for i, b := range buckets {
			if len(b) < minWindowReqs {
				detail = append(detail, fmt.Sprintf("w%d n=%d skipped", i, len(b)))
				continue
			}
			sort.Float64s(b)
			p := b[(len(b)*99+99)/100-1]
			winP99s = append(winP99s, p)
			detail = append(detail, fmt.Sprintf("w%d n=%d p99=%v", i, len(b),
				time.Duration(p*float64(time.Millisecond)).Round(time.Microsecond)))
		}
		if len(winP99s) == 0 {
			return 0, detail, fmt.Errorf("autoscale: no sub-window held >= %d hot-model requests", minWindowReqs)
		}
		sort.Float64s(winP99s)
		med := winP99s[len(winP99s)/2]
		if n := len(winP99s); n%2 == 0 {
			med = (winP99s[n/2-1] + winP99s[n/2]) / 2
		}
		return time.Duration(med * float64(time.Millisecond)), detail, nil
	}

	// Baseline: every model pinned at 1 replica, no control loop. The
	// measurement window skips the first 500ms of connection warmup.
	rtA, err := cluster.NewRouter(cluster.RouterConfig{
		Addr: "127.0.0.1:0", Backends: addrs, Replicas: 1,
		Set: cluster.SetConfig{ProbeInterval: 200 * time.Millisecond, FailAfter: 3, Zones: zones},
	})
	if err != nil {
		return err
	}
	boundA, err := rtA.Start()
	if err != nil {
		return err
	}
	urlA := "http://" + boundA
	if err := registerAll(urlA); err != nil {
		return err
	}
	const baseDur = 7500 * time.Millisecond
	// Observation parity: the autoscaled run pays for its own control loop
	// — one fleet scrape and merge per evaluation interval — and on a small
	// box that observation cost is itself a real load. A production fleet
	// pays it no matter who owns the replicas (Prometheus scrapes a static
	// deployment just the same), so the baseline is scraped at the same
	// cadence; without this the comparison would credit the static fleet
	// for not being measured.
	stopScrape := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stopScrape:
				return
			case <-t.C:
				scrapeMetricsText(client, urlA) //nolint:errcheck // parity load only
			}
		}
	}()
	runtime.GC() // fresh heap: no collection lands inside the window
	baseStart := time.Now()
	baseReqs, _, baseFailed, baseWaits, baseErr := runLoad(urlA, baseDur)
	baseEnd := time.Now()
	close(stopScrape)
	scrapeWG.Wait()
	if baseErr != nil || baseFailed > 0 {
		return fmt.Errorf("autoscale: baseline load: %d/%d failed (first: %v)", baseFailed, baseReqs, baseErr)
	}
	// The measurement skips the first second of connection warmup.
	baseP99, baseDetail, err := phaseP99(baseWaits, baseStart.Add(time.Second), baseEnd)
	if err != nil {
		return err
	}
	for _, model := range models {
		status, out, err := cliutil.DoJSON(context.Background(), client, http.MethodDelete, urlA+"/v1/models/"+model, nil)
		if err != nil || status != http.StatusOK {
			return fmt.Errorf("autoscale: baseline unregister %s: status %d err %v (%s)", model, status, err, out)
		}
	}
	{
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := rtA.Shutdown(ctx)
		cancel()
		if err != nil {
			return fmt.Errorf("autoscale: baseline router shutdown: %w", err)
		}
	}
	log.Printf("autoscale: baseline (1 replica): %d requests, hot-model queue-wait p99 %v",
		baseReqs, baseP99.Round(time.Microsecond))

	// Autoscaled run: same fleet, same load, control loop on. The 1µs
	// objective on slo-probe stays silent until the SLO phase sends it
	// traffic.
	objectives, err := slo.ParseObjectives([]string{"slo-probe::1us:99"})
	if err != nil {
		return err
	}
	rtB, err := cluster.NewRouter(cluster.RouterConfig{
		Addr: "127.0.0.1:0", Backends: addrs, Replicas: 1,
		SLO: slo.Config{Objectives: objectives},
		Autoscale: &autoscale.Policy{
			Interval:     interval,
			MinReplicas:  1,
			MaxStep:      2,
			Cooldown:     4,
			UpAfter:      2,
			DownAfter:    4,
			ScaleUpP90:   100 * time.Millisecond,
			ScaleDownP90: 50 * time.Microsecond,
			MinSamples:   100,
		},
		Set: cluster.SetConfig{ProbeInterval: 200 * time.Millisecond, FailAfter: 3, Zones: zones},
	})
	if err != nil {
		return err
	}
	boundB, err := rtB.Start()
	if err != nil {
		return err
	}
	urlB := "http://" + boundB
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := rtB.Shutdown(ctx); err != nil {
			log.Printf("autoscale: router shutdown: %v", err)
		}
	}()
	if err := registerAll(urlB); err != nil {
		return err
	}
	runtime.GC() // fresh heap: with background GC off, no cycle during the load
	// The load runs 24s. The convergence criterion is polled in-band: every
	// model's replica count stable for >= 3 consecutive evaluation
	// intervals, with the hot model scaled out. (One end-of-run snapshot
	// would race the controller's own late scale-ins — each resets that
	// model's stability counter for a few intervals.) The steady-state
	// measurement opens at the moment convergence is first observed plus a
	// short settle, and runs to the end of the load, so the baseline
	// comparison never charges the autoscaled run for its own ramp-up or
	// the engine builds the scale-outs perform.
	const loadDur = 36 * time.Second
	type loadRes struct {
		reqs, rows, failed int64
		waits              []waitSample
		err                error
	}
	resCh := make(chan loadRes, 1)
	start := time.Now()
	go func() {
		reqs, rows, failed, waits, err := runLoad(urlB, loadDur)
		resCh <- loadRes{reqs, rows, failed, waits, err}
	}()
	var st cluster.AutoscaleStatus
	minStable, hotReplicas := -1, 0
	converged := false
	// Leave at least 3s of load after convergence for the tail window.
	for time.Since(start) < loadDur-3*time.Second && !converged {
		if err := getJSON(client, urlB+"/v1/autoscale", &st); err != nil {
			return err
		}
		minStable, hotReplicas = -1, 0
		for _, m := range st.Models {
			if minStable < 0 || m.StableIntervals < minStable {
				minStable = m.StableIntervals
			}
			if m.Model == hot {
				hotReplicas = m.Replicas
			}
		}
		converged = len(st.Models) >= nModels && minStable >= 3 && hotReplicas >= 2
		if !converged {
			time.Sleep(400 * time.Millisecond)
		}
	}
	// Settle before opening the tail window: the last actuation's engine
	// builds and the backlog they delayed both flush their queue-wait
	// samples shortly after convergence is first observed, and those
	// belong to the ramp, not the steady state.
	time.Sleep(1500 * time.Millisecond)
	tailStart := time.Now()
	res := <-resCh
	tailEnd := time.Now()
	autoReqs, autoRows, autoFailed, autoErr := res.reqs, res.rows, res.failed, res.err
	elapsed := time.Since(start)
	if autoErr != nil || autoFailed > 0 {
		return fmt.Errorf("autoscale: %d/%d requests failed during scaling (first: %v)", autoFailed, autoReqs, autoErr)
	}
	if !converged {
		return fmt.Errorf("autoscale: not converged — min stable intervals %d, hot replicas %d at load end (%+v)",
			minStable, hotReplicas, st.Models)
	}
	autoP99, tailDetail, err := phaseP99(res.waits, tailStart, tailEnd)
	if err != nil {
		return err
	}
	met := rtB.Metrics()
	if met.ScaleUps == 0 {
		return fmt.Errorf("autoscale: no scale-up actuations recorded")
	}
	hotZones := map[string]bool{}
	hotPlacement := rtB.Placement(hot)
	for _, id := range hotPlacement {
		hotZones[zones[id]] = true
	}
	// The convergence poll's replica snapshot can trail a scale-up that
	// landed during the measured tail; the live placement is the truth.
	hotReplicas = len(hotPlacement)
	if wantZones := min(hotReplicas, nZones); len(hotZones) < wantZones {
		return fmt.Errorf("autoscale: %d replicas of %s span only %d zones, want %d (placement not zone-diverse)",
			hotReplicas, hot, len(hotZones), wantZones)
	}
	if baseP99 < 2*autoP99 {
		var end cluster.AutoscaleStatus
		getJSON(client, urlB+"/v1/autoscale", &end) //nolint:errcheck // debug
		return fmt.Errorf("autoscale: hot-model queue-wait p99 %v autoscaled vs %v baseline — less than the required 2x reduction\nbaseline windows: %s\ntail windows: %s\nups %d downs %d\nrecent %+v",
			autoP99.Round(time.Microsecond), baseP99.Round(time.Microsecond),
			strings.Join(baseDetail, ", "), strings.Join(tailDetail, ", "),
			met.ScaleUps, met.ScaleDowns, end.Recent)
	}
	log.Printf("autoscale: converged in-band (min stable intervals %d); hot model %s at %d replicas across %d zones; queue-wait p99 %v → %v (%.1fx); %d ups %d downs, %d requests zero failures",
		minStable, hot, hotReplicas, len(hotZones), baseP99.Round(time.Microsecond), autoP99.Round(time.Microsecond),
		float64(baseP99)/float64(autoP99), met.ScaleUps, met.ScaleDowns, autoReqs)

	// SLO actuation: slo-probe's 1µs objective is unmeetable, so its first
	// traffic flips the fleet-evaluated SLO to violated and the control
	// loop must scale it out within two evaluation windows.
	probeBody, err := json.Marshal(serve.RegisterRequest{Name: "slo-probe", Config: coldCfgJSON, Engines: 1})
	if err != nil {
		return err
	}
	if status, out, err := cliutil.DoJSON(context.Background(), client, http.MethodPost, urlB+"/v1/models", probeBody); err != nil || status != http.StatusCreated {
		return fmt.Errorf("autoscale: register slo-probe: status %d err %v (%s)", status, err, out)
	}
	// Detection latency is only meaningful against a loop that is free to
	// evaluate: a scale-out actuation left over from the main phase blocks
	// the loop for the length of its engine builds, and every window that
	// elapses meanwhile is skipped, not evaluated. Wait until the loop has
	// evaluated recently and its newest actuation has aged past the bound
	// before starting the clock.
	for quiesceBy := time.Now().Add(30 * time.Second); time.Now().Before(quiesceBy); {
		var st cluster.AutoscaleStatus
		if err := getJSON(client, urlB+"/v1/autoscale", &st); err != nil {
			return err
		}
		newest := time.Time{}
		for _, d := range st.Recent {
			if d.Time.After(newest) {
				newest = d.Time
			}
		}
		if time.Since(st.LastEval) < 2*interval && time.Since(newest) > 2*interval {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	sloStart := time.Now()
	for i := 0; i < 16; i++ {
		status, _, _, err := postBody(client, urlB, bodies[hot][0]) // warm the scrape path
		_ = status
		if err != nil {
			return err
		}
		probeReq, err := json.Marshal(serve.InferRequest{Model: "slo-probe", Inputs: [][]float64{in.RowSlice(i % baseRows)}})
		if err != nil {
			return err
		}
		if status, _, _, err := postBody(client, urlB, probeReq); err != nil || status != http.StatusOK {
			return fmt.Errorf("autoscale: slo-probe request %d: status %d err %v", i, status, err)
		}
	}
	// The decision must be STAMPED within two evaluation windows of the
	// violating traffic (plus one interval of slack for the scrape that
	// carries it into the loop), but it only becomes visible in the
	// actuation log after the blocking scale-out — engine builds included —
	// finishes, so the poll runs on the admin budget while the bound is
	// checked against the decision's own timestamp.
	bound := sloStart.Add(3 * interval)
	deadline := sloStart.Add(3*interval + 30*time.Second)
	var sloDecision *cluster.AppliedDecision
	for time.Now().Before(deadline) && sloDecision == nil {
		var st cluster.AutoscaleStatus
		if err := getJSON(client, urlB+"/v1/autoscale", &st); err != nil {
			return err
		}
		for i := range st.Recent {
			d := &st.Recent[i]
			if d.Model == "slo-probe" && d.To > d.From && strings.Contains(d.Reason, "slo") {
				sloDecision = d
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if sloDecision == nil {
		return fmt.Errorf("autoscale: violated SLO did not trigger scale-out of slo-probe within two evaluation windows (%v)", 2*interval)
	}
	if sloDecision.Time.After(bound) {
		return fmt.Errorf("autoscale: SLO scale-out decided %v after the violating traffic, want within %v",
			sloDecision.Time.Sub(sloStart), bound.Sub(sloStart))
	}
	sloLatency := sloDecision.Time.Sub(sloStart)
	log.Printf("autoscale: violated SLO scaled slo-probe %d → %d replicas %.0fms after first violating traffic (%q)",
		sloDecision.From, sloDecision.To, float64(sloLatency)/float64(time.Millisecond), sloDecision.Reason)

	rec := autoscaleBenchRecord{
		Benchmark:          "autoscale",
		Date:               time.Now().UTC().Format("2006-01-02"),
		GoVersion:          runtime.Version(),
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		GitSHA:             cliutil.GitSHA(),
		Backends:           nBackends,
		Zones:              nZones,
		Models:             nModels,
		Workers:            nWorkers,
		RowsPerSec:         float64(autoRows) / elapsed.Seconds(),
		BaselineHotP99Ms:   float64(baseP99) / float64(time.Millisecond),
		AutoscaledHotP99Ms: float64(autoP99) / float64(time.Millisecond),
		TailReduction:      float64(baseP99) / float64(autoP99),
		HotReplicas:        hotReplicas,
		HotZones:           len(hotZones),
		ScaleUps:           met.ScaleUps,
		ScaleDowns:         met.ScaleDowns,
		Requests:           autoReqs,
		Failed:             autoFailed,
		MinStableIntervals: minStable,
		SLOScaleOutMs:      float64(sloLatency) / float64(time.Millisecond),
	}
	n, err := cliutil.AppendJSONRecord(benchPath, rec)
	if err != nil {
		return err
	}
	log.Printf("autoscale: appended record %d to %s", n, benchPath)
	return nil
}

// postBody posts a pre-marshaled inference request.
func postBody(client *http.Client, url string, body []byte) (int, string, serve.InferResponse, error) {
	resp, err := client.Post(url+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", serve.InferResponse{}, err
	}
	defer resp.Body.Close()
	var out serve.InferResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return resp.StatusCode, "", out, err
		}
	}
	return resp.StatusCode, resp.Header.Get("X-Radix-Backend"), out, nil
}

// getJSON decodes a GET response body into out.
func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
