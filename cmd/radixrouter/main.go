// Command radixrouter is the sharding router tier for a fleet of
// radixserve instances: it places models onto backends with a
// consistent-hash ring (virtual nodes, replication factor -replicas),
// actively probes each backend's GET /healthz (ejecting nodes after
// consecutive failures and re-admitting them on recovery), and exposes the
// same HTTP API as a single radixserve node:
//
//	POST   /v1/infer          forwarded to the model's owning healthy
//	                          replica, with bounded retry-on-next-replica
//	                          failover and Retry-After-honoring backoff on 429
//	GET    /v1/models         the fleet's models merged, with ring placement
//	POST   /v1/models         register a model on its ring-intended replicas
//	PUT    /v1/models/{name}  hot-reload the model on every backend
//	                          reporting it
//	DELETE /v1/models/{name}  unregister the model fleet-wide
//	GET    /v1/autoscale      replica control-loop state: per-model load
//	                          signals, stability counters, recent actuations
//	                          (404 unless -autoscale)
//	GET    /healthz           router + per-backend health (incl. each
//	                          backend's self-reported zone)
//	GET    /metrics           radixrouter_* series — including fleet-merged
//	                          radixrouter_model_* latency histograms (backend
//	                          histograms summed bucket-wise) and per-backend
//	                          attempt latency — plus every backend's series,
//	                          labeled backend="host:port", merged
//	GET    /debug/traces      recent + slowest routed request traces as JSON;
//	                          X-Radix-Trace-Id is propagated to backends and
//	                          echoed on every response
//	GET    /debug/pprof/*     runtime profiling, only with -pprof
//
// Backends are given as repeated -backend flags ("host:port" or
// "http://host:port"). Because every backend runs the same deterministic
// engines, routed results are bit-identical to single-node inference.
//
// The router is QoS-aware: a request's "class" and "deadline_ms" are
// forwarded to backends as X-Radix-Class and X-Radix-Deadline-Ms headers
// (the deadline recomputed per attempt to the remaining budget), and retry
// budgets are per class (-class-retries; by default background requests
// get one backend attempt and no 429 backoff wait, so low-priority floods
// cannot burn the failover budget interactive traffic needs).
//
// Placement is zone-aware: backends self-report a failure domain on
// /healthz (radixserve -zone), or get one seeded via -zones ID=ZONE,...;
// each model's R replicas then spread across min(R, zones) distinct zones,
// with failover preferring yet another zone. With -autoscale the router
// also runs a replica control loop: every -autoscale-interval it derives
// per-model queue-wait p90 (from the fleet-merged histograms), 429 rate,
// and SLO burn state, and scales each model's replica count through the
// register/unregister fan-out — bounded by hysteresis (-autoscale-up-p90 /
// -autoscale-down-p90 bands, -autoscale-up-after debounce,
// -autoscale-min-samples evidence gate), cooldown, step, and min/max; an
// SLO violated at the replica ceiling sheds -autoscale-shed-class as a
// last resort. Live state is on GET /v1/autoscale.
//
// With -selftest the binary instead builds an in-process fleet (-backends
// radixserve instances plus the router on ephemeral ports), shards models
// across it, verifies routed outputs bit-identical to direct Engine.Infer,
// exercises the fleet control plane (runtime registration on the ring
// owners, hot-reload of every replica under concurrent routed load with
// zero failures, fleet-wide unregister → 404), kills a backend mid-load to
// prove zero-failure retry failover, proves QoS starvation-freedom through
// the router (a saturating background flood cannot starve interactive
// probes), measures routed throughput, appends a record with per-class
// rates to BENCH_cluster.json, and exits nonzero on any failure.
//
// Usage:
//
//	radixrouter -backend host1:8080 -backend host2:8080 [-addr :8090]
//	            [-replicas 2] [-vnodes 128] [-probe-interval 2s]
//	            [-probe-timeout 1s] [-fail-after 3] [-max-backoff 1s]
//	            [-zones host1:8080=zone-a,host2:8080=zone-b]
//	            [-autoscale] [-autoscale-interval 5s] [-autoscale-max 8]
//	            [-pprof] [-slow-request 250ms] [-trace-depth 512]
//	radixrouter -selftest [-backends 3] [-bench-json BENCH_cluster.json]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/radix-net/radixnet/internal/autoscale"
	"github.com/radix-net/radixnet/internal/cliutil"
	"github.com/radix-net/radixnet/internal/cluster"
	"github.com/radix-net/radixnet/internal/obs/slo"
)

// sloFlags accumulates repeated -slo MODEL:CLASS:LATENCY:TARGET_PCT flags.
type sloFlags []string

func (f *sloFlags) String() string { return strings.Join(*f, ",") }

func (f *sloFlags) Set(v string) error {
	if _, err := slo.ParseObjective(v); err != nil {
		return err
	}
	*f = append(*f, v)
	return nil
}

// backendFlags accumulates repeated -backend flags.
type backendFlags []string

func (f *backendFlags) String() string { return strings.Join(*f, ",") }

func (f *backendFlags) Set(v string) error {
	if strings.TrimSpace(v) == "" {
		return fmt.Errorf("empty backend address")
	}
	*f = append(*f, v)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("radixrouter: ")
	var (
		addr          = flag.String("addr", ":8090", "router listen address")
		replicas      = flag.Int("replicas", 2, "ring owners per model (the failover budget)")
		vnodes        = flag.Int("vnodes", cluster.DefaultVnodes, "virtual nodes per backend on the hash ring")
		probeInterval = flag.Duration("probe-interval", 2*time.Second, "per-backend /healthz probe cadence")
		probeTimeout  = flag.Duration("probe-timeout", time.Second, "single probe budget")
		failAfter     = flag.Int("fail-after", 3, "consecutive failures (probe or forward) that eject a backend")
		maxBackoff    = flag.Duration("max-backoff", time.Second, "cap on Retry-After backoff honored for backend 429s")
		classRetries  = flag.String("class-retries", "", "per-QoS-class backend attempt caps, NAME=N,... (default background=1,batch=2; unlisted classes walk every replica)")
		classNames    = flag.String("classes", "", "extra QoS class names to label in per-class metrics, comma-separated (unknown classes bucket as \"other\")")
		pprof         = flag.Bool("pprof", false, "expose net/http/pprof profiling under /debug/pprof/")
		slowReq       = flag.Duration("slow-request", 0, "log routed requests slower than this with their trace ID and span breakdown (0: off)")
		traceDepth    = flag.Int("trace-depth", 0, "recent request traces retained for GET /debug/traces (0: default 512)")
		sloFast       = flag.Duration("slo-fast-window", 0, "SLO fast burn-rate window (0: default 5m)")
		sloSlow       = flag.Duration("slo-slow-window", 0, "SLO slow burn-rate window (0: default 1h)")
		zoneSeeds     = flag.String("zones", "", "static backend zone seeds, ID=ZONE,... (backends self-reporting a zone on /healthz override these); zones spread each model's replicas across failure domains")
		autoOn        = flag.Bool("autoscale", false, "run the replica autoscale control loop (queue-wait p90, 429 rate, and SLO burn state drive per-model replica counts)")
		autoInterval  = flag.Duration("autoscale-interval", 0, "autoscale evaluation period (0: default 5s)")
		autoMin       = flag.Int("autoscale-min", 0, "autoscale floor on per-model replicas (0: default 1)")
		autoMax       = flag.Int("autoscale-max", 0, "autoscale ceiling on per-model replicas (0: the fleet size)")
		autoStep      = flag.Int("autoscale-step", 0, "max replicas one autoscale decision adds or removes (0: default 1)")
		autoCooldown  = flag.Int("autoscale-cooldown", 0, "evaluation intervals a model is frozen after an actuation (0: default 3)")
		autoUpAfter   = flag.Int("autoscale-up-after", 0, "consecutive above-band intervals before a model scales out; SLO-violated pressure is exempt (0: default 1)")
		autoMinSamp   = flag.Int("autoscale-min-samples", 0, "fewest queue-wait observations an evaluation window needs before its p90 may trigger scale-out; 429 rate and SLO burn still actuate (0: gate off)")
		autoUpP90     = flag.Duration("autoscale-up-p90", 0, "queue-wait p90 above which a model scales out (0: default 50ms)")
		autoDownP90   = flag.Duration("autoscale-down-p90", 0, "queue-wait p90 below which a model counts toward scale-in; must stay below -autoscale-up-p90 (0: default up-p90/4)")
		autoShedClass = flag.String("autoscale-shed-class", "", "QoS class shed when an SLO stays violated at the replica ceiling (default background)")
		selftest      = flag.Bool("selftest", false, "run the in-process fleet selftest and exit")
		nBackends     = flag.Int("backends", 3, "selftest: in-process radixserve backends to spin up")
		benchJSON     = flag.String("bench-json", "BENCH_cluster.json", "selftest: append the throughput record to this file")
		shutdownTO    = flag.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown budget after SIGINT/SIGTERM")
		backends      backendFlags
		sloSpecs      sloFlags
	)
	flag.Var(&backends, "backend", "radixserve backend, host:port or http://host:port (repeatable)")
	flag.Var(&sloSpecs, "slo", "SLO objective MODEL:CLASS:LATENCY:TARGET_PCT (repeatable), evaluated against the FLEET-merged histograms; enables GET /v1/slo and radixrouter_slo_* metrics")
	flag.Parse()

	if *selftest {
		if err := runSelftest(*benchJSON, *nBackends, *replicas); err != nil {
			log.Fatalf("selftest FAILED: %v", err)
		}
		log.Printf("selftest PASSED")
		return
	}

	if len(backends) == 0 {
		log.Fatal("no backends: pass at least one -backend host:port (or run -selftest)")
	}
	retries, err := cliutil.ParseClassWeights(*classRetries)
	if err != nil {
		log.Fatal(err)
	}
	var metricsClasses []string
	for _, name := range strings.Split(*classNames, ",") {
		if name = strings.TrimSpace(name); name != "" {
			metricsClasses = append(metricsClasses, name)
		}
	}
	objectives, err := slo.ParseObjectives(sloSpecs)
	if err != nil {
		log.Fatal(err)
	}
	zones := map[string]string{}
	for _, pair := range strings.Split(*zoneSeeds, ",") {
		if pair = strings.TrimSpace(pair); pair == "" {
			continue
		}
		id, zone, ok := strings.Cut(pair, "=")
		if !ok || id == "" || zone == "" {
			log.Fatalf("bad -zones entry %q: want ID=ZONE", pair)
		}
		zones[id] = zone
	}
	var autoPol *autoscale.Policy
	if *autoOn {
		autoPol = &autoscale.Policy{
			Interval:     *autoInterval,
			MinReplicas:  *autoMin,
			MaxReplicas:  *autoMax,
			MaxStep:      *autoStep,
			Cooldown:     *autoCooldown,
			UpAfter:      *autoUpAfter,
			MinSamples:   *autoMinSamp,
			ScaleUpP90:   *autoUpP90,
			ScaleDownP90: *autoDownP90,
			ShedClass:    *autoShedClass,
		}
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Addr:           *addr,
		Backends:       backends,
		Replicas:       *replicas,
		MaxBackoff:     *maxBackoff,
		ClassRetries:   retries,
		MetricsClasses: metricsClasses,
		Pprof:          *pprof,
		SlowRequest:    *slowReq,
		TraceDepth:     *traceDepth,
		SLO:            slo.Config{Objectives: objectives, FastWindow: *sloFast, SlowWindow: *sloSlow},
		Autoscale:      autoPol,
		Set: cluster.SetConfig{
			ProbeInterval: *probeInterval,
			ProbeTimeout:  *probeTimeout,
			FailAfter:     *failAfter,
			Vnodes:        *vnodes,
			Zones:         zones,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	bound, err := rt.Start()
	if err != nil {
		log.Fatal(err)
	}
	ids := make([]string, 0, len(backends))
	for _, b := range rt.Set().Backends() {
		ids = append(ids, b.ID())
	}
	log.Printf("routing %d backends [%s] with %d replicas per model, serving on %s",
		len(ids), strings.Join(ids, " "), rt.Replicas(), bound)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	log.Printf("shutting down (draining for up to %v)", *shutdownTO)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTO)
	defer cancel()
	if err := rt.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	log.Printf("drained cleanly")
}
