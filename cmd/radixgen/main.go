// Command radixgen generates a RadiX-Net topology and exports it.
//
// Usage:
//
//	radixgen -systems "(3,3,4);(3,3,4);(2,3)" [-shape 1,2,…,1] [-format tsv|mtx|dot|json|stats] [-o FILE]
//	radixgen -config cfg.json -format tsv
//
// Formats:
//
//	tsv    layer/src/dst edge list (default)
//	mtx    Matrix Market, one pattern per layer separated by blank lines
//	dot    Graphviz digraph (small nets)
//	json   the validated configuration itself
//	stats  human-readable summary: widths, edges, density, path counts
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"github.com/radix-net/radixnet/internal/cliutil"
	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/graphio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("radixgen: ")
	var (
		configPath = flag.String("config", "", "JSON configuration file")
		systems    = flag.String("systems", "", `systems, e.g. "(3,3,4);(3,3,4);(2,3)"`)
		shape      = flag.String("shape", "", "dense shape D, e.g. 1,2,2,1 (empty = all ones)")
		format     = flag.String("format", "tsv", "output format: tsv|mtx|dot|json|stats")
		outPath    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	cfg, err := cliutil.LoadConfig(*configPath, *systems, *shape)
	if err != nil {
		log.Fatal(err)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		out = f
	}

	if err := run(out, cfg, *format); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer, cfg core.Config, format string) error {
	switch format {
	case "json":
		data, err := graphio.MarshalConfig(cfg)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(out, "%s\n", data)
		return err
	case "stats":
		return writeStats(out, cfg)
	}

	g, err := core.Build(cfg)
	if err != nil {
		return err
	}
	switch format {
	case "tsv":
		return graphio.WriteTSV(out, g)
	case "dot":
		return graphio.WriteDOT(out, g, "radixnet")
	case "mtx":
		for i := 0; i < g.NumSubs(); i++ {
			if err := graphio.WriteMatrixMarket(out, g.Sub(i)); err != nil {
				return err
			}
			if i+1 < g.NumSubs() {
				if _, err := fmt.Fprintln(out); err != nil {
					return err
				}
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

func writeStats(out io.Writer, cfg core.Config) error {
	fmt.Fprintf(out, "config:        %s\n", cfg)
	fmt.Fprintf(out, "N':            %d\n", cfg.NPrime())
	fmt.Fprintf(out, "systems:       %d (total radices %d)\n", cfg.NumSystems(), cfg.TotalRadices())
	fmt.Fprintf(out, "layer widths:  %v\n", cfg.LayerWidths())
	fmt.Fprintf(out, "nodes:         %s\n", cfg.NumNodes())
	fmt.Fprintf(out, "edges:         %s (dense: %s)\n", cfg.NumEdges(), cfg.DenseEdges())
	fmt.Fprintf(out, "density eq(4): %.6g\n", core.Density(cfg))
	fmt.Fprintf(out, "approx eq(5):  %.6g  (µ=%.3g)\n", core.DensityApproxMu(cfg.MeanRadix(), cfg.NPrime()), cfg.MeanRadix())
	fmt.Fprintf(out, "approx eq(6):  %.6g  (d=%.3g)\n", core.DensityApproxMuD(cfg.MeanRadix(), cfg.Depth()), cfg.Depth())
	fmt.Fprintf(out, "paths/pair:    %s (Theorem 1, generalized)\n", cfg.TheoreticalPaths())
	if cfg.LastProduct() != cfg.NPrime() {
		fmt.Fprintf(out, "  note: last system product %d < N'=%d; the paper's printed formula would give %s (see DESIGN.md E-b)\n",
			cfg.LastProduct(), cfg.NPrime(), cfg.PaperTheoreticalPaths())
	}
	return nil
}
