// Command radixserve is the production inference service: it loads
// RadiX-Net models into a registry of warm engine pools and serves them
// over an HTTP JSON API with dynamic micro-batching, bounded queues with
// explicit backpressure (HTTP 429), Prometheus-style metrics, and graceful
// shutdown on SIGINT/SIGTERM.
//
// Requests are QoS-aware: the /v1/infer body may carry "class" (one of the
// configured priority classes; default set interactive/batch/background
// with weights 8/2/1, overridable via -class-weight) and "deadline_ms" (a
// budget after which still-queued rows are shed with 504 instead of
// executing). Each model schedules its per-class queues by deficit
// round-robin, so a background flood cannot starve interactive traffic;
// -exec-slots bounds batch executions across models, granted
// share-weighted when models contend.
//
// Endpoints:
//
//	POST   /v1/infer          {"model":"e10","inputs":[[...]],"class":"interactive",
//	                           "deadline_ms":250,"categories":true}
//	GET    /v1/models         registered models and their batching policies
//	POST   /v1/models         register a model at runtime from graphio config
//	                          JSON: {"name":"m","config":{"systems":[[8,8]]}}
//	PUT    /v1/models/{name}  atomic hot-reload: swap the model's engine pool
//	                          for one built from the request config; in-flight
//	                          batches finish on the old engines
//	DELETE /v1/models/{name}  drain and unregister the model
//	GET    /healthz           liveness ("ok", or "draining" with 503 during
//	                          graceful shutdown)
//	GET    /metrics           request/batch/latency counters plus log-bucketed
//	                          latency histograms (Prometheus text)
//	GET    /debug/traces      recent + slowest request traces as JSON; every
//	                          response also carries X-Radix-Trace-Id and a
//	                          per-stage span breakdown
//	GET    /debug/pprof/*     runtime profiling, only with -pprof
//
// Models are given as repeated -model flags, "name=SPEC" where SPEC is
// either a mixed-radix systems spec in the cliutil grammar (e.g. "8,8,8" or
// "(3,3,4);(2,3)") or "gc:WIDTHxLAYERS" for a Graph Challenge–style
// configuration. With no -model flags two demo models are served: demo
// (radix 4,4,4) and e10 (radix 8,8,8,8, the BENCH_infer acceptance
// network).
//
// With -selftest the binary instead starts an in-process server on an
// ephemeral port, drives it end-to-end with concurrent HTTP load at several
// concurrency levels, verifies that batched results are bit-identical to
// per-row Engine.Infer, that saturation produces 429s rather than unbounded
// queuing, that the model control plane works live (runtime
// registration bit-identical to boot-time, hot-reload under concurrent
// load with zero failures, unregister → 404), and that QoS holds under
// pressure (a saturating background flood cannot starve interactive
// traffic: interactive p99 stays within its bound while background still
// progresses), appends a throughput record with per-class rates to
// BENCH_serve.json, and exits nonzero on any failure.
//
// Usage:
//
//	radixserve [-addr :8080] [-model e10=8,8,8,8]... [-engines 2]
//	           [-max-batch 32] [-max-latency 2ms] [-queue 256]
//	           [-class-weight interactive=8,batch=2,background=1]
//	           [-default-class interactive] [-exec-slots 0]
//	           [-pprof] [-slow-request 250ms] [-trace-depth 512]
//	radixserve -selftest [-bench-json BENCH_serve.json]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/radix-net/radixnet/internal/cliutil"
	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/obs/slo"
	"github.com/radix-net/radixnet/internal/serve"
)

// sloFlags accumulates repeated -slo MODEL:CLASS:LATENCY:TARGET_PCT flags.
type sloFlags []string

func (f *sloFlags) String() string { return strings.Join(*f, ",") }

func (f *sloFlags) Set(v string) error {
	if _, err := slo.ParseObjective(v); err != nil {
		return err
	}
	*f = append(*f, v)
	return nil
}

// modelSpec is one parsed -model flag.
type modelSpec struct {
	name string
	cfg  core.Config
}

// modelFlags accumulates repeated -model NAME=SPEC flags.
type modelFlags []modelSpec

func (f *modelFlags) String() string {
	names := make([]string, len(*f))
	for i, m := range *f {
		names[i] = m.name
	}
	return strings.Join(names, ",")
}

func (f *modelFlags) Set(v string) error {
	name, spec, ok := strings.Cut(v, "=")
	if !ok || name == "" || spec == "" {
		return fmt.Errorf("want NAME=SPEC, got %q", v)
	}
	cfg, err := parseModelSpec(spec)
	if err != nil {
		return err
	}
	*f = append(*f, modelSpec{name: name, cfg: cfg})
	return nil
}

// parseModelSpec resolves "gc:WIDTHxLAYERS" or a cliutil systems spec.
func parseModelSpec(spec string) (core.Config, error) {
	if gc, ok := strings.CutPrefix(spec, "gc:"); ok {
		ws, ls, ok := strings.Cut(gc, "x")
		if !ok {
			return core.Config{}, fmt.Errorf("want gc:WIDTHxLAYERS, got %q", spec)
		}
		width, err1 := strconv.Atoi(ws)
		layers, err2 := strconv.Atoi(ls)
		if err1 != nil || err2 != nil {
			return core.Config{}, fmt.Errorf("want gc:WIDTHxLAYERS, got %q", spec)
		}
		return core.GraphChallengeConfig(width, layers)
	}
	systems, err := cliutil.ParseSystems(spec)
	if err != nil {
		return core.Config{}, err
	}
	return core.NewConfig(systems, nil)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("radixserve: ")
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		engines      = flag.Int("engines", 2, "warm engines per model (the pool leased per batch)")
		maxBatch     = flag.Int("max-batch", 32, "rows coalesced into one engine invocation")
		maxLatency   = flag.Duration("max-latency", 2*time.Millisecond, "how long a short batch waits for more rows (negative: no waiting)")
		queue        = flag.Int("queue", 256, "pending-row bound PER CLASS; beyond it requests get 429")
		classWeights = flag.String("class-weight", "", "QoS classes and weighted-fair-queuing weights, NAME=N,... (default interactive=8,batch=2,background=1)")
		defaultClass = flag.String("default-class", "", "class for requests that name none (default interactive)")
		execSlots    = flag.Int("exec-slots", 0, "cross-model concurrent batch executions (engine quota; 0: GOMAXPROCS, negative: unlimited)")
		pprof        = flag.Bool("pprof", false, "expose net/http/pprof profiling under /debug/pprof/")
		slowReq      = flag.Duration("slow-request", 0, "log requests slower than this with their trace ID and span breakdown (0: off)")
		traceDepth   = flag.Int("trace-depth", 0, "recent request traces retained for GET /debug/traces (0: default 512)")
		profEvery    = flag.Int("profile-every", 16, "time every Nth engine batch per layer (Gedges/s on /metrics; 0: off)")
		zone         = flag.String("zone", "", "failure domain (rack/availability zone) self-reported on /healthz for the router's zone-aware placement")
		sloFast      = flag.Duration("slo-fast-window", 0, "SLO fast burn-rate window (0: default 5m)")
		sloSlow      = flag.Duration("slo-slow-window", 0, "SLO slow burn-rate window (0: default 1h)")
		selftest     = flag.Bool("selftest", false, "run the end-to-end load-generator selftest and exit")
		benchJSON    = flag.String("bench-json", "BENCH_serve.json", "selftest: append the throughput record to this file")
		shutdownTO   = flag.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown budget after SIGINT/SIGTERM")
		models       modelFlags
		sloSpecs     sloFlags
	)
	flag.Var(&models, "model", "model to serve, NAME=SPEC (repeatable); SPEC is a radix systems spec like 8,8,8 or gc:WIDTHxLAYERS")
	flag.Var(&sloSpecs, "slo", "SLO objective MODEL:CLASS:LATENCY:TARGET_PCT (repeatable), e.g. '*:interactive:250ms:99' or 'e10::error:99.9'; enables GET /v1/slo and radixserve_slo_* metrics")
	flag.Parse()

	pol := serve.Policy{MaxBatch: *maxBatch, MaxLatency: *maxLatency, QueueDepth: *queue}
	weights, err := cliutil.ParseClassWeights(*classWeights)
	if err != nil {
		log.Fatal(err)
	}
	qos := serve.QoSConfig{Weights: weights, DefaultClass: *defaultClass, ExecSlots: *execSlots}

	if *selftest {
		if err := runSelftest(*benchJSON, *engines, pol, qos); err != nil {
			log.Fatalf("selftest FAILED: %v", err)
		}
		log.Printf("selftest PASSED")
		return
	}

	if len(models) == 0 {
		for _, def := range []struct{ name, spec string }{
			{"demo", "4,4,4"},
			{"e10", "8,8,8,8"},
		} {
			cfg, err := parseModelSpec(def.spec)
			if err != nil {
				log.Fatal(err)
			}
			models = append(models, modelSpec{name: def.name, cfg: cfg})
		}
	}

	reg, err := serve.NewRegistryQoS(pol, qos)
	if err != nil {
		log.Fatal(err)
	}
	reg.SetProfileEvery(*profEvery)
	log.Printf("QoS classes %v (default %q)", reg.Classes(), reg.DefaultClass())
	for _, ms := range models {
		start := time.Now()
		m, err := reg.Register(ms.name, ms.cfg, *engines)
		if err != nil {
			log.Fatal(err)
		}
		info := m.Info()
		log.Printf("model %q: %d layers × width %d→%d, %d weights, %d engines, built in %v",
			info.Name, info.Layers, info.InputWidth, info.OutputWidth, info.Weights,
			info.Engines, time.Since(start).Round(time.Millisecond))
	}

	objectives, err := slo.ParseObjectives(sloSpecs)
	if err != nil {
		log.Fatal(err)
	}
	srv := serve.NewServerOpts(reg, *addr, serve.ServerOptions{
		Pprof:       *pprof,
		SlowRequest: *slowReq,
		TraceDepth:  *traceDepth,
		SLO:         slo.Config{Objectives: objectives, FastWindow: *sloFast, SlowWindow: *sloSlow},
		Zone:        *zone,
	})
	bound, err := srv.Start()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on %s (POST /v1/infer, GET /v1/models /healthz /metrics)", bound)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	log.Printf("shutting down (draining for up to %v)", *shutdownTO)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTO)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	log.Printf("drained cleanly")
}
