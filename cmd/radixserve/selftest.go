package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/radix-net/radixnet/internal/cliutil"
	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/dataset"
	"github.com/radix-net/radixnet/internal/graphio"
	"github.com/radix-net/radixnet/internal/infer"
	"github.com/radix-net/radixnet/internal/obs"
	"github.com/radix-net/radixnet/internal/obs/slo"
	"github.com/radix-net/radixnet/internal/radix"
	"github.com/radix-net/radixnet/internal/serve"
	"github.com/radix-net/radixnet/internal/sparse"
)

// serveBenchRecord is the BENCH_serve.json schema: one end-to-end
// throughput measurement of the serving stack, appended per run so the file
// records the repository's serving-performance trajectory (see README.md).
type serveBenchRecord struct {
	Benchmark    string              `json:"benchmark"`
	Date         string              `json:"date"`
	GoVersion    string              `json:"go_version"`
	GOMAXPROCS   int                 `json:"gomaxprocs"`
	GitSHA       string              `json:"git_sha"`
	Network      serveBenchNet       `json:"network"`
	Policy       serveBenchPolicy    `json:"policy"`
	Levels       []serveBenchLevel   `json:"levels"`
	Backpressure serveBenchBP        `json:"backpressure"`
	HotReload    serveBenchHotReload `json:"hot_reload"`
	QoS          serveBenchQoS       `json:"qos"`
	// SLOFastBurn is the fast-window burn rate GET /v1/slo reports for the
	// deliberately breached objective (must exceed the violation threshold);
	// EngineGedges the profiled single-worker engine throughput, comparable
	// to the BENCH_infer.json kernel numbers.
	SLOFastBurn  float64 `json:"slo_fast_burn"`
	EngineGedges float64 `json:"engine_gedges_s"`
	BitIdentical bool    `json:"bit_identical"`
}

// serveBenchQoS records the starvation-freedom phase: interactive p99 with
// the machine idle vs under a saturating background flood (end-to-end and
// scheduler queue wait), plus both classes' delivered rates during the
// loaded window.
type serveBenchQoS struct {
	UnloadedP99Ms         float64 `json:"interactive_unloaded_p99_ms"`
	LoadedP99Ms           float64 `json:"interactive_loaded_p99_ms"`
	P99Bound              float64 `json:"p99_bound_ms"`
	QueueWaitP99Ms        float64 `json:"interactive_queue_wait_p99_ms"`
	InteractiveRowsPerSec float64 `json:"interactive_rows_per_sec"`
	BackgroundRowsPerSec  float64 `json:"background_rows_per_sec"`
	BackgroundRows        int     `json:"background_rows"`
	ExpiredShed           int64   `json:"expired_shed"`
}

type serveBenchNet struct {
	LayerWidth int `json:"layer_width"`
	Layers     int `json:"layers"`
	Weights    int `json:"weights"`
}

type serveBenchPolicy struct {
	MaxBatch     int     `json:"max_batch"`
	MaxLatencyMs float64 `json:"max_latency_ms"`
	QueueDepth   int     `json:"queue_depth"`
	Engines      int     `json:"engines"`
}

type serveBenchLevel struct {
	Concurrency   int     `json:"concurrency"`
	Rows          int     `json:"rows"`
	RowsPerSec    float64 `json:"rows_per_sec"`
	MeanBatch     float64 `json:"mean_batch"`
	MeanLatencyMs float64 `json:"mean_latency_ms"`
	// LatencyP50Ms/P99Ms come from the /metrics histogram exposition
	// (radixserve_request_latency_seconds), windowed to this level via a
	// before/after scrape — the same data an operator's dashboard sees,
	// not an internal tally. Log-bucket interpolation: ≤2× resolution.
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
}

type serveBenchBP struct {
	Sent     int `json:"sent"`
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
}

type serveBenchHotReload struct {
	Reloads  int `json:"reloads"`
	Requests int `json:"requests"`
	Failed   int `json:"failed"`
}

// selftestClient is tuned for many concurrent keep-alive connections to one
// host.
func selftestClient() *http.Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = 128
	return &http.Client{Transport: tr, Timeout: 30 * time.Second}
}

// scrapeMetricsText fetches a /metrics exposition for the histogram-based
// acceptance assertions (p50/p99 must come from the exported data, not
// internal tallies).
func scrapeMetricsText(client *http.Client, url string) (string, error) {
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("metrics scrape: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// postRow sends one single-row inference request and returns the HTTP
// status plus the decoded response (valid only for status 200).
func postRow(client *http.Client, url, model string, row []float64) (int, serve.InferResponse, error) {
	return postRows(client, url, serve.InferRequest{Model: model, Inputs: [][]float64{row}})
}

// postRows sends one inference request (any rows, class, deadline) and
// returns the HTTP status plus the decoded response (valid only for 200).
func postRows(client *http.Client, url string, req serve.InferRequest) (int, serve.InferResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, serve.InferResponse{}, err
	}
	resp, err := client.Post(url+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, serve.InferResponse{}, err
	}
	defer resp.Body.Close()
	var out serve.InferResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return resp.StatusCode, out, err
		}
	}
	return resp.StatusCode, out, nil
}

// runSelftest drives the full serving stack end-to-end over real HTTP:
// correctness (batched results bit-identical to per-row Engine.Infer),
// throughput at several client concurrency levels, backpressure under
// deliberate saturation, and QoS starvation-freedom under a background
// flood. On success it appends the measurement to benchPath.
func runSelftest(benchPath string, engines int, pol serve.Policy, qos serve.QoSConfig) error {
	if engines < 1 {
		engines = 1
	}
	// The selftest network: radix [8,8,8] → width 512, 3 layers. Large
	// enough that batching is exercised, small enough for a CI smoke run.
	cfg, err := core.NewConfig([]radix.System{radix.MustNew(8, 8, 8)}, nil)
	if err != nil {
		return err
	}
	reg, err := serve.NewRegistryQoS(pol, qos)
	if err != nil {
		return err
	}
	// Profile every engine batch: the selftest asserts per-layer Gedges/s
	// against the BENCH_infer kernel record, so no batch may be skipped.
	reg.SetProfileEvery(1)
	buildStart := time.Now()
	m, err := reg.Register("selftest", cfg, engines)
	if err != nil {
		return err
	}
	info := m.Info()
	log.Printf("selftest model: %d layers × width %d, %d weights, %d engines, built in %v",
		info.Layers, info.InputWidth, info.Weights, info.Engines, time.Since(buildStart).Round(time.Millisecond))

	// Profiling and tracing on: the selftest smokes /debug/traces and
	// /debug/pprof alongside the serving phases. Two SLO objectives arm
	// GET /v1/slo: a loose one every request meets and a 1µs latency
	// target nothing can meet, which the deep-obs phase expects to see
	// burning hot ("violated").
	sloObjectives, err := slo.ParseObjectives([]string{"selftest::10s:50", "selftest::1us:99"})
	if err != nil {
		return err
	}
	srv := serve.NewServerOpts(reg, "127.0.0.1:0", serve.ServerOptions{
		Pprof: true,
		SLO:   slo.Config{Objectives: sloObjectives},
	})
	addr, err := srv.Start()
	if err != nil {
		return err
	}
	url := "http://" + addr
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	// Per-row ground truth from a private engine over the same config —
	// engine generation is deterministic, so weights match the served pool.
	const baseRows = 96
	width := m.InputWidth()
	in, err := dataset.SparseBatch(baseRows, width, width/10, 7)
	if err != nil {
		return err
	}
	ref, err := infer.FromConfig(cfg)
	if err != nil {
		return err
	}
	expected := make([][]float64, baseRows)
	for r := 0; r < baseRows; r++ {
		rowIn, err := sparse.DenseFromSlice(1, width, in.RowSlice(r))
		if err != nil {
			return err
		}
		y, err := ref.Infer(rowIn)
		if err != nil {
			return err
		}
		expected[r] = append([]float64(nil), y.Data()...)
	}

	client := selftestClient()
	var levels []serveBenchLevel
	for _, conc := range []int{1, 4, 16} {
		rows := baseRows * conc
		before := m.Metrics().Snapshot()
		beforeLatency := m.Metrics().LatencyNs.Load()
		beforeScrape, err := scrapeMetricsText(client, url)
		if err != nil {
			return err
		}
		var next, mismatches, failures atomic.Int64
		var firstErr atomic.Value
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < conc; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= int64(rows) {
						return
					}
					r := int(i) % baseRows
					status, resp, err := postRow(client, url, "selftest", in.RowSlice(r))
					if err != nil || status != http.StatusOK || len(resp.Outputs) != 1 {
						failures.Add(1)
						firstErr.CompareAndSwap(nil, fmt.Errorf("row %d: status %d err %v", r, status, err))
						return
					}
					for c, v := range resp.Outputs[0] {
						if v != expected[r][c] {
							mismatches.Add(1)
							firstErr.CompareAndSwap(nil, fmt.Errorf("row %d col %d: got %v want %v", r, c, v, expected[r][c]))
							return
						}
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		if failures.Load() > 0 || mismatches.Load() > 0 {
			return fmt.Errorf("concurrency %d: %d failures, %d bitwise mismatches (first: %v)",
				conc, failures.Load(), mismatches.Load(), firstErr.Load())
		}
		after := m.Metrics().Snapshot()
		lvl := serveBenchLevel{
			Concurrency: conc,
			Rows:        rows,
			RowsPerSec:  float64(rows) / elapsed.Seconds(),
		}
		if db := after.Batches - before.Batches; db > 0 {
			lvl.MeanBatch = float64(after.BatchedRows-before.BatchedRows) / float64(db)
		}
		if dc := after.Completed - before.Completed; dc > 0 {
			lvl.MeanLatencyMs = float64(m.Metrics().LatencyNs.Load()-beforeLatency) / float64(dc) / 1e6
		}
		// Tail latency for this level from the exported histogram, windowed
		// by subtracting the pre-level scrape.
		afterScrape, err := scrapeMetricsText(client, url)
		if err != nil {
			return err
		}
		want := map[string]string{"model": "selftest"}
		hb, okB := obs.ParseHistogram(beforeScrape, "radixserve_request_latency_seconds", want)
		ha, okA := obs.ParseHistogram(afterScrape, "radixserve_request_latency_seconds", want)
		if !okA {
			return fmt.Errorf("concurrency %d: radixserve_request_latency_seconds missing from /metrics", conc)
		}
		win := ha
		if okB {
			win = ha.Sub(hb)
		}
		if win.Count == 0 {
			return fmt.Errorf("concurrency %d: exported latency histogram recorded no requests", conc)
		}
		lvl.LatencyP50Ms = win.Quantile(0.50) * 1e3
		lvl.LatencyP99Ms = win.Quantile(0.99) * 1e3
		if lvl.LatencyP99Ms <= 0 || lvl.LatencyP99Ms > 20e3 {
			return fmt.Errorf("concurrency %d: exported latency p99 %.3fms implausible", conc, lvl.LatencyP99Ms)
		}
		levels = append(levels, lvl)
		log.Printf("concurrency %2d: %d rows in %v = %.0f rows/s (mean batch %.1f, mean latency %.2fms, exported p50 %.2fms p99 %.2fms), bit-identical",
			conc, rows, elapsed.Round(time.Millisecond), lvl.RowsPerSec, lvl.MeanBatch, lvl.MeanLatencyMs, lvl.LatencyP50Ms, lvl.LatencyP99Ms)
	}

	// Backpressure: a deliberately starved model — its only engine leased
	// away — must shed overflow with 429 instead of queuing unboundedly,
	// and everything accepted must still complete once the engine returns.
	tinyCfg, err := core.NewConfig([]radix.System{radix.MustNew(4, 4)}, nil)
	if err != nil {
		return err
	}
	tinyPol := serve.Policy{MaxBatch: 4, MaxLatency: 5 * time.Millisecond, QueueDepth: 4, Workers: 1}
	tiny, err := reg.RegisterWithPolicy("tiny", tinyCfg, 1, tinyPol)
	if err != nil {
		return err
	}
	tinyIn, err := dataset.SparseBatch(32, tiny.InputWidth(), 3, 3)
	if err != nil {
		return err
	}
	eng := tiny.Lease()
	const flood = 32
	var got200, got429, other atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _, err := postRow(client, url, "tiny", tinyIn.RowSlice(i))
			switch {
			case err != nil:
				other.Add(1)
			case status == http.StatusOK:
				got200.Add(1)
			case status == http.StatusTooManyRequests:
				got429.Add(1)
			default:
				other.Add(1)
			}
		}(i)
	}
	// The worker can hold at most MaxBatch rows and the queue at most
	// QueueDepth, so with the engine starved at least
	// flood − MaxBatch − QueueDepth rejections must accumulate.
	minRejected := int64(flood - tinyPol.MaxBatch - tinyPol.QueueDepth)
	deadline := time.Now().Add(15 * time.Second)
	for tiny.Metrics().Rejected.Load() < minRejected && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	tiny.Release(eng)
	wg.Wait()
	bp := serveBenchBP{Sent: flood, Accepted: int(got200.Load()), Rejected: int(got429.Load())}
	log.Printf("backpressure: %d sent → %d completed, %d rejected with 429, %d other",
		bp.Sent, bp.Accepted, bp.Rejected, other.Load())
	if got429.Load() == 0 {
		return fmt.Errorf("backpressure: saturation produced no 429s")
	}
	if got200.Load() == 0 {
		return fmt.Errorf("backpressure: nothing completed after the engine was released")
	}
	if other.Load() > 0 {
		return fmt.Errorf("backpressure: %d unexpected responses", other.Load())
	}

	hr, err := runControlPlanePhase(client, url, cfg, engines, expected, in)
	if err != nil {
		return err
	}

	qosRec, err := runQoSPhase(client, url, reg, m, expected, in)
	if err != nil {
		return err
	}

	if err := runObsPhase(client, url, in); err != nil {
		return err
	}

	sloBurn, gedges, err := runDeepObsPhase(client, url, reg, cfg, in)
	if err != nil {
		return err
	}

	rec := serveBenchRecord{
		Benchmark:  "serve-microbatch",
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GitSHA:     cliutil.GitSHA(),
		Network:    serveBenchNet{LayerWidth: info.InputWidth, Layers: info.Layers, Weights: info.Weights},
		Policy: serveBenchPolicy{
			MaxBatch:     info.MaxBatch,
			MaxLatencyMs: info.MaxLatencyMs,
			QueueDepth:   info.QueueDepth,
			Engines:      info.Engines,
		},
		Levels:       levels,
		Backpressure: bp,
		HotReload:    hr,
		QoS:          qosRec,
		SLOFastBurn:  sloBurn,
		EngineGedges: gedges,
		// Any bitwise mismatch returned above, so reaching here proves it.
		BitIdentical: true,
	}
	n, err := cliutil.AppendJSONRecord(benchPath, rec)
	if err != nil {
		return err
	}
	log.Printf("bench: appended record %d to %s", n, benchPath)
	return nil
}

// runObsPhase smokes the observability surface end to end: every response
// carries a trace ID and the full span breakdown (admission, queue,
// assemble, lease, execute, deliver), the trace is browsable via
// GET /debug/traces, and the opt-in pprof endpoints answer.
func runObsPhase(client *http.Client, url string, in *sparse.Dense) error {
	status, resp, err := postRows(client, url, serve.InferRequest{
		Model: "selftest", Inputs: [][]float64{in.RowSlice(0)},
	})
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("obs: probe: status %d err %v", status, err)
	}
	if len(resp.TraceID) != 32 {
		return fmt.Errorf("obs: response trace ID %q, want 32 hex chars", resp.TraceID)
	}
	if len(resp.Spans) < 5 {
		return fmt.Errorf("obs: response carries %d spans, want >= 5: %+v", len(resp.Spans), resp.Spans)
	}
	names := make(map[string]bool, len(resp.Spans))
	for _, s := range resp.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{"admission", "queue", "assemble", "lease", "execute", "deliver"} {
		if !names[want] {
			return fmt.Errorf("obs: span %q missing from response: %+v", want, resp.Spans)
		}
	}

	tr, err := client.Get(url + "/debug/traces?n=8")
	if err != nil {
		return fmt.Errorf("obs: /debug/traces: %w", err)
	}
	var view struct {
		Total  uint64       `json:"total"`
		Recent []*obs.Trace `json:"recent"`
	}
	decodeErr := json.NewDecoder(tr.Body).Decode(&view)
	tr.Body.Close()
	if decodeErr != nil {
		return fmt.Errorf("obs: /debug/traces decode: %w", decodeErr)
	}
	if view.Total == 0 || len(view.Recent) == 0 {
		return fmt.Errorf("obs: /debug/traces empty after traffic")
	}
	found := false
	for _, t := range view.Recent {
		if t.ID == resp.TraceID && len(t.Spans) >= 5 {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("obs: trace %s not retained with spans in /debug/traces", resp.TraceID)
	}

	pp, err := client.Get(url + "/debug/pprof/cmdline")
	if err != nil {
		return fmt.Errorf("obs: pprof: %w", err)
	}
	_, _ = io.Copy(io.Discard, pp.Body)
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		return fmt.Errorf("obs: pprof cmdline: status %d", pp.StatusCode)
	}
	log.Printf("obs: trace %s echoed with %d spans, retained in /debug/traces (%d total); pprof live",
		resp.TraceID, len(resp.Spans), view.Total)
	return nil
}

// runDeepObsPhase exercises the PR's deep observability surface on top of
// the trace smoke: histogram exemplars must resolve to retained traces via
// GET /debug/traces?trace=, the ?min_ms= filter must answer JSON, the SLO
// engine must report the deliberately breached 1µs objective as
// "violated" (and the loose 10s one as "ok"), and the engine layer
// profiler must report per-layer Gedges/s within 2× of the BENCH_infer
// radix kernel record when that file is present. Returns the breached
// objective's fast burn and the profiled engine Gedges/s for the bench
// record.
func runDeepObsPhase(client *http.Client, url string, reg *serve.Registry, cfg core.Config, in *sparse.Dense) (sloFastBurn, gedges float64, err error) {
	// Fresh probes so the latency buckets carry recent exemplars whose
	// traces are still in the /debug/traces ring.
	for i := 0; i < 4; i++ {
		status, _, err := postRow(client, url, "selftest", in.RowSlice(i))
		if err != nil || status != http.StatusOK {
			return 0, 0, fmt.Errorf("deep-obs: probe %d: status %d err %v", i, status, err)
		}
	}
	scrape, err := scrapeMetricsText(client, url)
	if err != nil {
		return 0, 0, err
	}
	ids := exemplarTraceIDs(scrape, "radixserve_request_latency_seconds_bucket{model=\"selftest\"")
	if len(ids) == 0 {
		return 0, 0, fmt.Errorf("deep-obs: no exemplar annotations on radixserve_request_latency_seconds buckets")
	}
	// Exemplars name the most recent request per bucket; old buckets may
	// reference traces the ring has since evicted, so any one resolving
	// proves the jump path.
	resolved := ""
	for _, id := range ids {
		tr, err := client.Get(url + "/debug/traces?trace=" + id)
		if err != nil {
			return 0, 0, fmt.Errorf("deep-obs: ?trace=: %w", err)
		}
		var view struct {
			Trace *obs.Trace `json:"trace"`
		}
		decodeErr := json.NewDecoder(tr.Body).Decode(&view)
		tr.Body.Close()
		if tr.StatusCode != http.StatusOK || decodeErr != nil {
			continue
		}
		if view.Trace != nil && view.Trace.ID == id && len(view.Trace.Spans) > 0 {
			resolved = id
			break
		}
	}
	if resolved == "" {
		return 0, 0, fmt.Errorf("deep-obs: none of %d exemplar trace IDs resolved via /debug/traces?trace=", len(ids))
	}
	// The ?min_ms= filter: an absurd threshold must still answer JSON,
	// just with everything filtered out.
	mm, err := client.Get(url + "/debug/traces?min_ms=1e9&n=4")
	if err != nil {
		return 0, 0, fmt.Errorf("deep-obs: ?min_ms=: %w", err)
	}
	var filtered struct {
		Total  uint64       `json:"total"`
		Recent []*obs.Trace `json:"recent"`
	}
	decodeErr := json.NewDecoder(mm.Body).Decode(&filtered)
	ctype := mm.Header.Get("Content-Type")
	mm.Body.Close()
	if mm.StatusCode != http.StatusOK || decodeErr != nil || ctype != "application/json" {
		return 0, 0, fmt.Errorf("deep-obs: ?min_ms=1e9: status %d ctype %q err %v", mm.StatusCode, ctype, decodeErr)
	}
	if filtered.Total == 0 || len(filtered.Recent) != 0 {
		return 0, 0, fmt.Errorf("deep-obs: ?min_ms=1e9 returned %d of %d traces, want 0", len(filtered.Recent), filtered.Total)
	}

	// The SLO engine: the 1µs objective is unmeetable, so with the whole
	// process lifetime inside both burn windows it must read "violated";
	// the 10s objective must stay "ok".
	sv, err := client.Get(url + "/v1/slo")
	if err != nil {
		return 0, 0, fmt.Errorf("deep-obs: /v1/slo: %w", err)
	}
	var view slo.View
	decodeErr = json.NewDecoder(sv.Body).Decode(&view)
	sv.Body.Close()
	if sv.StatusCode != http.StatusOK || decodeErr != nil {
		return 0, 0, fmt.Errorf("deep-obs: /v1/slo: status %d err %v", sv.StatusCode, decodeErr)
	}
	var breached, loose *slo.Status
	for i := range view.Statuses {
		st := &view.Statuses[i]
		if st.Model != "selftest" || st.Class != "" {
			continue
		}
		switch st.Objective.Latency {
		case time.Microsecond:
			breached = st
		case 10 * time.Second:
			loose = st
		}
	}
	if breached == nil || loose == nil {
		return 0, 0, fmt.Errorf("deep-obs: /v1/slo missing objectives (%d statuses)", len(view.Statuses))
	}
	if breached.State != slo.StateViolated {
		return 0, 0, fmt.Errorf("deep-obs: unmeetable 1µs objective reports %q (fast burn %.2f, slow %.2f), want %q",
			breached.State, breached.FastBurn, breached.SlowBurn, slo.StateViolated)
	}
	if loose.State != slo.StateOK {
		return 0, 0, fmt.Errorf("deep-obs: loose 10s objective reports %q (fast burn %.2f), want %q",
			loose.State, loose.FastBurn, slo.StateOK)
	}
	log.Printf("deep-obs: exemplar trace %s resolved via ?trace=; /v1/slo: 1µs objective %s (fast burn %.1f), 10s objective %s",
		resolved, breached.State, breached.FastBurn, loose.State)

	// Engine profiling: a dedicated model whose engines each get a
	// single-worker pool (engines == GOMAXPROCS makes the per-engine
	// quota 1), driven with full 64-row batches — the same shape as the
	// BENCH_infer kernel benchmark, so per-layer Gedges/s is comparable
	// to its single-threaded record.
	profPol := serve.Policy{MaxBatch: 64, MaxLatency: -1, QueueDepth: 256, Workers: 1}
	pm, err := reg.RegisterWithPolicy("profiled", cfg, runtime.GOMAXPROCS(0), profPol)
	if err != nil {
		return 0, 0, fmt.Errorf("deep-obs: register profiled model: %w", err)
	}
	profIn, err := dataset.SparseBatch(64, pm.InputWidth(), pm.InputWidth()/10, 11)
	if err != nil {
		return 0, 0, err
	}
	inputs := make([][]float64, profIn.Rows())
	for r := range inputs {
		inputs[r] = profIn.RowSlice(r)
	}
	for i := 0; i < 8; i++ {
		status, resp, err := postRows(client, url, serve.InferRequest{Model: "profiled", Inputs: inputs})
		if err != nil || status != http.StatusOK || len(resp.Outputs) != len(inputs) {
			return 0, 0, fmt.Errorf("deep-obs: profiled batch %d: status %d outputs %d err %v", i, status, len(resp.Outputs), err)
		}
	}
	snap, ok := pm.Profile()
	if !ok {
		return 0, 0, fmt.Errorf("deep-obs: profiled model reports no profile")
	}
	info := pm.Info()
	if len(snap.Layers) != info.Layers {
		return 0, 0, fmt.Errorf("deep-obs: profile has %d layers, model %d", len(snap.Layers), info.Layers)
	}
	if snap.Batches == 0 || snap.TotalEdges == 0 || snap.GedgesPerSec <= 0 {
		return 0, 0, fmt.Errorf("deep-obs: empty profile after traffic: %+v", snap)
	}
	for _, l := range snap.Layers {
		if l.Batches == 0 || l.Edges == 0 || l.GedgesPerSec <= 0 {
			return 0, 0, fmt.Errorf("deep-obs: layer %d profile empty: %+v", l.Layer, l)
		}
	}
	ref := benchInferGedges("BENCH_infer.json")
	if ref > 0 {
		for _, l := range snap.Layers {
			if ratio := l.GedgesPerSec / ref; ratio < 0.5 || ratio > 2 {
				return 0, 0, fmt.Errorf("deep-obs: layer %d at %.3f Gedges/s vs BENCH_infer %.3f (ratio %.2fx, want within 2x)",
					l.Layer, l.GedgesPerSec, ref, ratio)
			}
		}
		log.Printf("deep-obs: engine profile %.3f Gedges/s over %d batches (BENCH_infer ref %.3f, per-layer within 2x)",
			snap.GedgesPerSec, snap.Batches, ref)
	} else {
		log.Printf("deep-obs: engine profile %.3f Gedges/s over %d batches (no BENCH_infer.json radix record to compare)",
			snap.GedgesPerSec, snap.Batches)
	}
	return breached.FastBurn, snap.GedgesPerSec, nil
}

// exemplarTraceIDs extracts the trace IDs of every exemplar annotation on
// scrape lines with the given prefix.
func exemplarTraceIDs(scrape, prefix string) []string {
	var ids []string
	for _, line := range strings.Split(scrape, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		_, exemplar := obs.SplitExemplar(line)
		if exemplar == "" {
			continue
		}
		// Exemplar annotations look like {trace_id="<32 hex>"} <value>.
		open := strings.Index(exemplar, `trace_id="`)
		if open < 0 {
			continue
		}
		rest := exemplar[open+len(`trace_id="`):]
		end := strings.IndexByte(rest, '"')
		if end <= 0 {
			continue
		}
		ids = append(ids, rest[:end])
	}
	return ids
}

// benchInferGedges reads the most recent radix-kernel edges/s record from
// a BENCH_infer.json array, or 0 when the file or record is absent.
func benchInferGedges(path string) float64 {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	var recs []struct {
		Radix *struct {
			EdgesPerSec float64 `json:"edges_per_sec"`
		} `json:"radix"`
	}
	if json.Unmarshal(data, &recs) != nil {
		return 0
	}
	for i := len(recs) - 1; i >= 0; i-- {
		if r := recs[i].Radix; r != nil && r.EdgesPerSec > 0 {
			return r.EdgesPerSec / 1e9
		}
	}
	return 0
}

// percentile returns the p-th percentile (0–100) of the latencies.
func percentile(lat []time.Duration, p int) time.Duration {
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (len(s) * p) / 100
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// runQoSPhase is the starvation-freedom acceptance phase: measure
// interactive p99 latency on an idle server, saturate the model with a
// background flood, and prove that (a) interactive traffic is not starved —
// its scheduler queue-wait p99 stays tightly bounded, and its end-to-end
// p99 stays within 5× the unloaded value (with an absolute floor, because
// on small CI machines a saturating flood contends for the CPU itself,
// which no in-process scheduler can prevent — the queue-wait bound is the
// precise starvation signal, the end-to-end bound the gross one); (b) the
// background class still makes progress (no starvation either way); and
// (c) an already-expired deadline is shed with 504 instead of executing.
// Interactive responses under flood are also checked bit-identical, so
// priority scheduling never changes results.
func runQoSPhase(client *http.Client, url string, reg *serve.Registry, m *serve.Model, expected [][]float64, in *sparse.Dense) (serveBenchQoS, error) {
	var q serveBenchQoS
	classes := reg.Classes()
	if _, ok := classes[serve.ClassInteractive]; !ok {
		log.Printf("qos: class set %v has no %q class; skipping starvation phase", classes, serve.ClassInteractive)
		return q, nil
	}
	if _, ok := classes[serve.ClassBackground]; !ok {
		log.Printf("qos: class set %v has no %q class; skipping starvation phase", classes, serve.ClassBackground)
		return q, nil
	}
	baseRows := in.Rows()

	const probes = 200
	probe := func() (lat, qwait []time.Duration, err error) {
		lat = make([]time.Duration, 0, probes)
		qwait = make([]time.Duration, 0, probes)
		for i := 0; i < probes; i++ {
			r := i % baseRows
			start := time.Now()
			status, resp, err := postRows(client, url, serve.InferRequest{
				Model: "selftest", Class: serve.ClassInteractive, Inputs: [][]float64{in.RowSlice(r)},
			})
			if err != nil || status != http.StatusOK || len(resp.Outputs) != 1 {
				return nil, nil, fmt.Errorf("qos: interactive probe %d: status %d err %v", i, status, err)
			}
			if resp.Class != serve.ClassInteractive {
				return nil, nil, fmt.Errorf("qos: probe %d scheduled as class %q, want %q", i, resp.Class, serve.ClassInteractive)
			}
			for c, v := range resp.Outputs[0] {
				if v != expected[r][c] {
					return nil, nil, fmt.Errorf("qos: probe %d col %d diverged under priority scheduling", i, c)
				}
			}
			lat = append(lat, time.Since(start))
			qwait = append(qwait, time.Duration(resp.QueueWaitMs*float64(time.Millisecond)))
		}
		return lat, qwait, nil
	}

	unloaded, _, err := probe()
	if err != nil {
		return q, err
	}

	// Saturating background flood: multi-row requests from several workers
	// (bodies pre-marshaled so the flood's pressure lands on the server's
	// queues, not on client-side JSON encoding), shedding 429s with
	// client-side pacing, until the phase ends.
	const (
		floodWorkers = 4
		rowsPerReq   = 16
	)
	stop := make(chan struct{})
	var bgRows atomic.Int64
	var bgErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < floodWorkers; w++ {
		reqRows := make([][]float64, rowsPerReq)
		for i := range reqRows {
			reqRows[i] = in.RowSlice((w + i) % baseRows)
		}
		body, err := json.Marshal(serve.InferRequest{
			Model: "selftest", Class: serve.ClassBackground, Inputs: reqRows,
		})
		if err != nil {
			close(stop)
			return q, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Post(url+"/v1/infer", "application/json", bytes.NewReader(body))
				if err != nil {
					bgErr.CompareAndSwap(nil, fmt.Errorf("qos: background flood: %w", err))
					return
				}
				status := resp.StatusCode
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case status == http.StatusOK:
					bgRows.Add(rowsPerReq)
				case status == http.StatusTooManyRequests:
					time.Sleep(2 * time.Millisecond) // backpressure; pace and re-offer
				default:
					bgErr.CompareAndSwap(nil, fmt.Errorf("qos: background flood: status %d", status))
					return
				}
			}
		}()
	}
	// Let the flood saturate the queues before measuring.
	warmDeadline := time.Now().Add(10 * time.Second)
	for bgRows.Load() < rowsPerReq && bgErr.Load() == nil && time.Now().Before(warmDeadline) {
		time.Sleep(time.Millisecond)
	}

	// Scrape /metrics before and after the loaded probe window: the
	// starvation assertion below must hold on the EXPORTED queue-wait
	// histogram — what an operator's dashboard would alert on — not on a
	// client-side tally.
	beforeScrape, err := scrapeMetricsText(client, url)
	if err != nil {
		close(stop)
		return q, err
	}
	loadedStart := time.Now()
	bgBefore := bgRows.Load()
	loaded, loadedWait, probeErr := probe()
	loadedElapsed := time.Since(loadedStart)
	bgDuring := bgRows.Load() - bgBefore
	afterScrape, scrapeErr := scrapeMetricsText(client, url)
	close(stop)
	wg.Wait()
	if probeErr != nil {
		return q, probeErr
	}
	if e := bgErr.Load(); e != nil {
		return q, e.(error)
	}
	if scrapeErr != nil {
		return q, scrapeErr
	}

	p99u := percentile(unloaded, 99)
	p99l := percentile(loaded, 99)
	// The precise starvation signal: time interactive rows sat in the
	// scheduler's queues, read back from the exported per-model×class
	// histogram windowed to the loaded probe interval. With weight 8
	// against a saturated background queue, an interactive row rides one
	// of the next couple of batches; 25ms is orders of magnitude above
	// that but far below what a starved row (behind hundreds of queued
	// background rows) would see.
	wantWait := map[string]string{"model": "selftest", "class": serve.ClassInteractive}
	wb, okB := obs.ParseHistogram(beforeScrape, "radixserve_queue_wait_seconds", wantWait)
	wa, okA := obs.ParseHistogram(afterScrape, "radixserve_queue_wait_seconds", wantWait)
	if !okA {
		return q, fmt.Errorf("qos: radixserve_queue_wait_seconds missing from /metrics")
	}
	win := wa
	if okB {
		win = wa.Sub(wb)
	}
	if win.Count == 0 {
		return q, fmt.Errorf("qos: exported queue-wait histogram recorded no interactive rows in the loaded window")
	}
	waitP99 := time.Duration(win.Quantile(0.99) * float64(time.Second))
	clientWaitP99 := percentile(loadedWait, 99)
	if waitBound := 25 * time.Millisecond; waitP99 > waitBound {
		return q, fmt.Errorf("qos: exported interactive queue-wait p99 %v under background flood exceeds %v (client-observed %v): interactive traffic starved in the scheduler",
			waitP99.Round(time.Microsecond), waitBound, clientWaitP99.Round(time.Microsecond))
	}
	bound := 5 * p99u
	if floor := 100 * time.Millisecond; bound < floor {
		bound = floor
	}
	if p99l > bound {
		return q, fmt.Errorf("qos: interactive p99 %v under background flood exceeds bound %v (5× unloaded %v): interactive traffic starved",
			p99l.Round(time.Microsecond), bound, p99u.Round(time.Microsecond))
	}
	if bgDuring == 0 {
		return q, fmt.Errorf("qos: background completed no rows during the %v probe window: background starved", loadedElapsed.Round(time.Millisecond))
	}

	// Deadline shedding: a request whose budget is already dead must be
	// answered 504 without executing.
	status, _, err := postRows(client, url, serve.InferRequest{
		Model: "selftest", Class: serve.ClassBackground, DeadlineMs: 0.0001, Inputs: [][]float64{in.RowSlice(0)},
	})
	if err != nil || status != http.StatusGatewayTimeout {
		return q, fmt.Errorf("qos: expired deadline: status %d err %v, want 504", status, err)
	}
	expired := m.Metrics().Expired.Load()
	if expired == 0 {
		return q, fmt.Errorf("qos: expired-row counter still zero after a shed")
	}

	q = serveBenchQoS{
		UnloadedP99Ms:         float64(p99u) / float64(time.Millisecond),
		LoadedP99Ms:           float64(p99l) / float64(time.Millisecond),
		P99Bound:              float64(bound) / float64(time.Millisecond),
		QueueWaitP99Ms:        float64(waitP99) / float64(time.Millisecond),
		InteractiveRowsPerSec: float64(probes) / loadedElapsed.Seconds(),
		BackgroundRowsPerSec:  float64(bgDuring) / loadedElapsed.Seconds(),
		BackgroundRows:        int(bgDuring),
		ExpiredShed:           expired,
	}
	log.Printf("qos: interactive p99 %.2fms unloaded → %.2fms under background flood (bound %.2fms, queue-wait p99 %.3fms); during probes interactive %.0f rows/s, background %.0f rows/s (%d rows, no starvation); expired deadline shed with 504",
		q.UnloadedP99Ms, q.LoadedP99Ms, q.P99Bound, q.QueueWaitP99Ms, q.InteractiveRowsPerSec, q.BackgroundRowsPerSec, q.BackgroundRows)
	return q, nil
}

// modelGeneration reads GET /v1/models and returns the named model's
// engine-pool generation.
func modelGeneration(client *http.Client, url, name string) (int, error) {
	infos, err := serve.ListModels(context.Background(), client, url)
	if err != nil {
		return 0, err
	}
	for _, info := range infos {
		if info.Name == name {
			return info.Generation, nil
		}
	}
	return 0, fmt.Errorf("model %q not listed", name)
}

// runControlPlanePhase exercises the live model control plane end to end:
// register a second model at runtime from graphio config JSON, prove its
// outputs bit-identical to the boot-time registration of the same config,
// hot-reload it repeatedly under concurrent load with zero failed or
// bit-divergent requests, then unregister it and observe 404.
func runControlPlanePhase(client *http.Client, url string, cfg core.Config, engines int, expected [][]float64, in *sparse.Dense) (serveBenchHotReload, error) {
	var hr serveBenchHotReload
	cfgJSON, err := graphio.MarshalConfig(cfg)
	if err != nil {
		return hr, err
	}
	regBody, err := json.Marshal(serve.RegisterRequest{Name: "hotswap", Config: cfgJSON, Engines: engines})
	if err != nil {
		return hr, err
	}
	status, body, err := cliutil.DoJSON(context.Background(), client, http.MethodPost, url+"/v1/models", regBody)
	if err != nil || status != http.StatusCreated {
		return hr, fmt.Errorf("control plane: register: status %d err %v (%s)", status, err, body)
	}

	// Bit-identity: a model registered over the wire must serve exactly
	// what the boot-time registration of the same config serves.
	rows := in.Rows()
	for r := 0; r < rows; r++ {
		status, resp, err := postRow(client, url, "hotswap", in.RowSlice(r))
		if err != nil || status != http.StatusOK || len(resp.Outputs) != 1 {
			return hr, fmt.Errorf("control plane: row %d: status %d err %v", r, status, err)
		}
		for c, v := range resp.Outputs[0] {
			if v != expected[r][c] {
				return hr, fmt.Errorf("control plane: row %d col %d: runtime registration diverged from boot-time (%v != %v)", r, c, v, expected[r][c])
			}
		}
	}
	log.Printf("control plane: runtime-registered model bit-identical to boot-time registration (%d rows)", rows)

	// Hot-reload under concurrent load: every request across every swap
	// must succeed and stay bit-identical (same config, deterministic
	// generation → same weights in every pool generation).
	const (
		reloads     = 3
		loadWorkers = 4
	)
	stop := make(chan struct{})
	var completed, failed atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < loadWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r := i % rows
				status, resp, err := postRow(client, url, "hotswap", in.RowSlice(r))
				if err != nil || status != http.StatusOK || len(resp.Outputs) != 1 {
					failed.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("row %d: status %d err %v", r, status, err))
					return
				}
				for c, v := range resp.Outputs[0] {
					if v != expected[r][c] {
						failed.Add(1)
						firstErr.CompareAndSwap(nil, fmt.Errorf("row %d col %d diverged mid-reload", r, c))
						return
					}
				}
				completed.Add(1)
			}
		}(w)
	}
	// Pace each swap against observed traffic so every reload genuinely
	// races in-flight requests.
	waitRows := func(target int64) {
		deadline := time.Now().Add(15 * time.Second)
		for completed.Load() < target && failed.Load() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	for i := 0; i < reloads; i++ {
		waitRows(int64((i + 1) * 16))
		status, body, err := cliutil.DoJSON(context.Background(), client, http.MethodPut, url+"/v1/models/hotswap", regBody)
		if err != nil || status != http.StatusOK {
			close(stop)
			wg.Wait()
			return hr, fmt.Errorf("control plane: reload %d: status %d err %v (%s)", i, status, err, body)
		}
	}
	waitRows(int64((reloads + 1) * 16))
	close(stop)
	wg.Wait()
	hr = serveBenchHotReload{Reloads: reloads, Requests: int(completed.Load() + failed.Load()), Failed: int(failed.Load())}
	if failed.Load() > 0 {
		return hr, fmt.Errorf("control plane: %d of %d requests failed across %d hot reloads (first: %v)",
			failed.Load(), hr.Requests, reloads, firstErr.Load())
	}
	gen, err := modelGeneration(client, url, "hotswap")
	if err != nil {
		return hr, err
	}
	if gen != 1+reloads {
		return hr, fmt.Errorf("control plane: generation %d after %d reloads, want %d", gen, reloads, 1+reloads)
	}
	log.Printf("control plane: %d hot reloads raced %d requests, zero failures, generation %d", reloads, hr.Requests, gen)

	status, body, err = cliutil.DoJSON(context.Background(), client, http.MethodDelete, url+"/v1/models/hotswap", nil)
	if err != nil || status != http.StatusOK {
		return hr, fmt.Errorf("control plane: unregister: status %d err %v (%s)", status, err, body)
	}
	status, _, err = postRow(client, url, "hotswap", in.RowSlice(0))
	if err != nil || status != http.StatusNotFound {
		return hr, fmt.Errorf("control plane: infer after unregister: status %d err %v, want 404", status, err)
	}
	log.Printf("control plane: unregistered; inference now 404")
	return hr, nil
}
