package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/radix-net/radixnet/internal/cliutil"
	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/dataset"
	"github.com/radix-net/radixnet/internal/graphio"
	"github.com/radix-net/radixnet/internal/infer"
	"github.com/radix-net/radixnet/internal/radix"
	"github.com/radix-net/radixnet/internal/serve"
	"github.com/radix-net/radixnet/internal/sparse"
)

// serveBenchRecord is the BENCH_serve.json schema: one end-to-end
// throughput measurement of the serving stack, appended per run so the file
// records the repository's serving-performance trajectory (see README.md).
type serveBenchRecord struct {
	Benchmark    string              `json:"benchmark"`
	Date         string              `json:"date"`
	GoVersion    string              `json:"go_version"`
	GOMAXPROCS   int                 `json:"gomaxprocs"`
	GitSHA       string              `json:"git_sha"`
	Network      serveBenchNet       `json:"network"`
	Policy       serveBenchPolicy    `json:"policy"`
	Levels       []serveBenchLevel   `json:"levels"`
	Backpressure serveBenchBP        `json:"backpressure"`
	HotReload    serveBenchHotReload `json:"hot_reload"`
	BitIdentical bool                `json:"bit_identical"`
}

type serveBenchNet struct {
	LayerWidth int `json:"layer_width"`
	Layers     int `json:"layers"`
	Weights    int `json:"weights"`
}

type serveBenchPolicy struct {
	MaxBatch     int     `json:"max_batch"`
	MaxLatencyMs float64 `json:"max_latency_ms"`
	QueueDepth   int     `json:"queue_depth"`
	Engines      int     `json:"engines"`
}

type serveBenchLevel struct {
	Concurrency   int     `json:"concurrency"`
	Rows          int     `json:"rows"`
	RowsPerSec    float64 `json:"rows_per_sec"`
	MeanBatch     float64 `json:"mean_batch"`
	MeanLatencyMs float64 `json:"mean_latency_ms"`
}

type serveBenchBP struct {
	Sent     int `json:"sent"`
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
}

type serveBenchHotReload struct {
	Reloads  int `json:"reloads"`
	Requests int `json:"requests"`
	Failed   int `json:"failed"`
}

// selftestClient is tuned for many concurrent keep-alive connections to one
// host.
func selftestClient() *http.Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = 128
	return &http.Client{Transport: tr, Timeout: 30 * time.Second}
}

// postRow sends one single-row inference request and returns the HTTP
// status plus the decoded response (valid only for status 200).
func postRow(client *http.Client, url, model string, row []float64) (int, serve.InferResponse, error) {
	body, err := json.Marshal(serve.InferRequest{Model: model, Inputs: [][]float64{row}})
	if err != nil {
		return 0, serve.InferResponse{}, err
	}
	resp, err := client.Post(url+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, serve.InferResponse{}, err
	}
	defer resp.Body.Close()
	var out serve.InferResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return resp.StatusCode, out, err
		}
	}
	return resp.StatusCode, out, nil
}

// runSelftest drives the full serving stack end-to-end over real HTTP:
// correctness (batched results bit-identical to per-row Engine.Infer),
// throughput at several client concurrency levels, and backpressure under
// deliberate saturation. On success it appends the measurement to
// benchPath.
func runSelftest(benchPath string, engines int, pol serve.Policy) error {
	if engines < 1 {
		engines = 1
	}
	// The selftest network: radix [8,8,8] → width 512, 3 layers. Large
	// enough that batching is exercised, small enough for a CI smoke run.
	cfg, err := core.NewConfig([]radix.System{radix.MustNew(8, 8, 8)}, nil)
	if err != nil {
		return err
	}
	reg := serve.NewRegistry(pol)
	buildStart := time.Now()
	m, err := reg.Register("selftest", cfg, engines)
	if err != nil {
		return err
	}
	info := m.Info()
	log.Printf("selftest model: %d layers × width %d, %d weights, %d engines, built in %v",
		info.Layers, info.InputWidth, info.Weights, info.Engines, time.Since(buildStart).Round(time.Millisecond))

	srv := serve.NewServer(reg, "127.0.0.1:0")
	addr, err := srv.Start()
	if err != nil {
		return err
	}
	url := "http://" + addr
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	// Per-row ground truth from a private engine over the same config —
	// engine generation is deterministic, so weights match the served pool.
	const baseRows = 96
	width := m.InputWidth()
	in, err := dataset.SparseBatch(baseRows, width, width/10, 7)
	if err != nil {
		return err
	}
	ref, err := infer.FromConfig(cfg)
	if err != nil {
		return err
	}
	expected := make([][]float64, baseRows)
	for r := 0; r < baseRows; r++ {
		rowIn, err := sparse.DenseFromSlice(1, width, in.RowSlice(r))
		if err != nil {
			return err
		}
		y, err := ref.Infer(rowIn)
		if err != nil {
			return err
		}
		expected[r] = append([]float64(nil), y.Data()...)
	}

	client := selftestClient()
	var levels []serveBenchLevel
	for _, conc := range []int{1, 4, 16} {
		rows := baseRows * conc
		before := m.Metrics().Snapshot()
		beforeLatency := m.Metrics().LatencyNs.Load()
		var next, mismatches, failures atomic.Int64
		var firstErr atomic.Value
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < conc; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= int64(rows) {
						return
					}
					r := int(i) % baseRows
					status, resp, err := postRow(client, url, "selftest", in.RowSlice(r))
					if err != nil || status != http.StatusOK || len(resp.Outputs) != 1 {
						failures.Add(1)
						firstErr.CompareAndSwap(nil, fmt.Errorf("row %d: status %d err %v", r, status, err))
						return
					}
					for c, v := range resp.Outputs[0] {
						if v != expected[r][c] {
							mismatches.Add(1)
							firstErr.CompareAndSwap(nil, fmt.Errorf("row %d col %d: got %v want %v", r, c, v, expected[r][c]))
							return
						}
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		if failures.Load() > 0 || mismatches.Load() > 0 {
			return fmt.Errorf("concurrency %d: %d failures, %d bitwise mismatches (first: %v)",
				conc, failures.Load(), mismatches.Load(), firstErr.Load())
		}
		after := m.Metrics().Snapshot()
		lvl := serveBenchLevel{
			Concurrency: conc,
			Rows:        rows,
			RowsPerSec:  float64(rows) / elapsed.Seconds(),
		}
		if db := after.Batches - before.Batches; db > 0 {
			lvl.MeanBatch = float64(after.BatchedRows-before.BatchedRows) / float64(db)
		}
		if dc := after.Completed - before.Completed; dc > 0 {
			lvl.MeanLatencyMs = float64(m.Metrics().LatencyNs.Load()-beforeLatency) / float64(dc) / 1e6
		}
		levels = append(levels, lvl)
		log.Printf("concurrency %2d: %d rows in %v = %.0f rows/s (mean batch %.1f, mean latency %.2fms), bit-identical",
			conc, rows, elapsed.Round(time.Millisecond), lvl.RowsPerSec, lvl.MeanBatch, lvl.MeanLatencyMs)
	}

	// Backpressure: a deliberately starved model — its only engine leased
	// away — must shed overflow with 429 instead of queuing unboundedly,
	// and everything accepted must still complete once the engine returns.
	tinyCfg, err := core.NewConfig([]radix.System{radix.MustNew(4, 4)}, nil)
	if err != nil {
		return err
	}
	tinyPol := serve.Policy{MaxBatch: 4, MaxLatency: 5 * time.Millisecond, QueueDepth: 4, Workers: 1}
	tiny, err := reg.RegisterWithPolicy("tiny", tinyCfg, 1, tinyPol)
	if err != nil {
		return err
	}
	tinyIn, err := dataset.SparseBatch(32, tiny.InputWidth(), 3, 3)
	if err != nil {
		return err
	}
	eng := tiny.Lease()
	const flood = 32
	var got200, got429, other atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _, err := postRow(client, url, "tiny", tinyIn.RowSlice(i))
			switch {
			case err != nil:
				other.Add(1)
			case status == http.StatusOK:
				got200.Add(1)
			case status == http.StatusTooManyRequests:
				got429.Add(1)
			default:
				other.Add(1)
			}
		}(i)
	}
	// The worker can hold at most MaxBatch rows and the queue at most
	// QueueDepth, so with the engine starved at least
	// flood − MaxBatch − QueueDepth rejections must accumulate.
	minRejected := int64(flood - tinyPol.MaxBatch - tinyPol.QueueDepth)
	deadline := time.Now().Add(15 * time.Second)
	for tiny.Metrics().Rejected.Load() < minRejected && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	tiny.Release(eng)
	wg.Wait()
	bp := serveBenchBP{Sent: flood, Accepted: int(got200.Load()), Rejected: int(got429.Load())}
	log.Printf("backpressure: %d sent → %d completed, %d rejected with 429, %d other",
		bp.Sent, bp.Accepted, bp.Rejected, other.Load())
	if got429.Load() == 0 {
		return fmt.Errorf("backpressure: saturation produced no 429s")
	}
	if got200.Load() == 0 {
		return fmt.Errorf("backpressure: nothing completed after the engine was released")
	}
	if other.Load() > 0 {
		return fmt.Errorf("backpressure: %d unexpected responses", other.Load())
	}

	hr, err := runControlPlanePhase(client, url, cfg, engines, expected, in)
	if err != nil {
		return err
	}

	rec := serveBenchRecord{
		Benchmark:  "serve-microbatch",
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GitSHA:     cliutil.GitSHA(),
		Network:    serveBenchNet{LayerWidth: info.InputWidth, Layers: info.Layers, Weights: info.Weights},
		Policy: serveBenchPolicy{
			MaxBatch:     info.MaxBatch,
			MaxLatencyMs: info.MaxLatencyMs,
			QueueDepth:   info.QueueDepth,
			Engines:      info.Engines,
		},
		Levels:       levels,
		Backpressure: bp,
		HotReload:    hr,
		// Any bitwise mismatch returned above, so reaching here proves it.
		BitIdentical: true,
	}
	n, err := cliutil.AppendJSONRecord(benchPath, rec)
	if err != nil {
		return err
	}
	log.Printf("bench: appended record %d to %s", n, benchPath)
	return nil
}

// modelGeneration reads GET /v1/models and returns the named model's
// engine-pool generation.
func modelGeneration(client *http.Client, url, name string) (int, error) {
	infos, err := serve.ListModels(context.Background(), client, url)
	if err != nil {
		return 0, err
	}
	for _, info := range infos {
		if info.Name == name {
			return info.Generation, nil
		}
	}
	return 0, fmt.Errorf("model %q not listed", name)
}

// runControlPlanePhase exercises the live model control plane end to end:
// register a second model at runtime from graphio config JSON, prove its
// outputs bit-identical to the boot-time registration of the same config,
// hot-reload it repeatedly under concurrent load with zero failed or
// bit-divergent requests, then unregister it and observe 404.
func runControlPlanePhase(client *http.Client, url string, cfg core.Config, engines int, expected [][]float64, in *sparse.Dense) (serveBenchHotReload, error) {
	var hr serveBenchHotReload
	cfgJSON, err := graphio.MarshalConfig(cfg)
	if err != nil {
		return hr, err
	}
	regBody, err := json.Marshal(serve.RegisterRequest{Name: "hotswap", Config: cfgJSON, Engines: engines})
	if err != nil {
		return hr, err
	}
	status, body, err := cliutil.DoJSON(client, http.MethodPost, url+"/v1/models", regBody)
	if err != nil || status != http.StatusCreated {
		return hr, fmt.Errorf("control plane: register: status %d err %v (%s)", status, err, body)
	}

	// Bit-identity: a model registered over the wire must serve exactly
	// what the boot-time registration of the same config serves.
	rows := in.Rows()
	for r := 0; r < rows; r++ {
		status, resp, err := postRow(client, url, "hotswap", in.RowSlice(r))
		if err != nil || status != http.StatusOK || len(resp.Outputs) != 1 {
			return hr, fmt.Errorf("control plane: row %d: status %d err %v", r, status, err)
		}
		for c, v := range resp.Outputs[0] {
			if v != expected[r][c] {
				return hr, fmt.Errorf("control plane: row %d col %d: runtime registration diverged from boot-time (%v != %v)", r, c, v, expected[r][c])
			}
		}
	}
	log.Printf("control plane: runtime-registered model bit-identical to boot-time registration (%d rows)", rows)

	// Hot-reload under concurrent load: every request across every swap
	// must succeed and stay bit-identical (same config, deterministic
	// generation → same weights in every pool generation).
	const (
		reloads     = 3
		loadWorkers = 4
	)
	stop := make(chan struct{})
	var completed, failed atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < loadWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r := i % rows
				status, resp, err := postRow(client, url, "hotswap", in.RowSlice(r))
				if err != nil || status != http.StatusOK || len(resp.Outputs) != 1 {
					failed.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("row %d: status %d err %v", r, status, err))
					return
				}
				for c, v := range resp.Outputs[0] {
					if v != expected[r][c] {
						failed.Add(1)
						firstErr.CompareAndSwap(nil, fmt.Errorf("row %d col %d diverged mid-reload", r, c))
						return
					}
				}
				completed.Add(1)
			}
		}(w)
	}
	// Pace each swap against observed traffic so every reload genuinely
	// races in-flight requests.
	waitRows := func(target int64) {
		deadline := time.Now().Add(15 * time.Second)
		for completed.Load() < target && failed.Load() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	for i := 0; i < reloads; i++ {
		waitRows(int64((i + 1) * 16))
		status, body, err := cliutil.DoJSON(client, http.MethodPut, url+"/v1/models/hotswap", regBody)
		if err != nil || status != http.StatusOK {
			close(stop)
			wg.Wait()
			return hr, fmt.Errorf("control plane: reload %d: status %d err %v (%s)", i, status, err, body)
		}
	}
	waitRows(int64((reloads + 1) * 16))
	close(stop)
	wg.Wait()
	hr = serveBenchHotReload{Reloads: reloads, Requests: int(completed.Load() + failed.Load()), Failed: int(failed.Load())}
	if failed.Load() > 0 {
		return hr, fmt.Errorf("control plane: %d of %d requests failed across %d hot reloads (first: %v)",
			failed.Load(), hr.Requests, reloads, firstErr.Load())
	}
	gen, err := modelGeneration(client, url, "hotswap")
	if err != nil {
		return hr, err
	}
	if gen != 1+reloads {
		return hr, fmt.Errorf("control plane: generation %d after %d reloads, want %d", gen, reloads, 1+reloads)
	}
	log.Printf("control plane: %d hot reloads raced %d requests, zero failures, generation %d", reloads, hr.Requests, gen)

	status, body, err = cliutil.DoJSON(client, http.MethodDelete, url+"/v1/models/hotswap", nil)
	if err != nil || status != http.StatusOK {
		return hr, fmt.Errorf("control plane: unregister: status %d err %v (%s)", status, err, body)
	}
	status, _, err = postRow(client, url, "hotswap", in.RowSlice(0))
	if err != nil || status != http.StatusNotFound {
		return hr, fmt.Errorf("control plane: infer after unregister: status %d err %v, want 404", status, err)
	}
	log.Printf("control plane: unregistered; inference now 404")
	return hr, nil
}
