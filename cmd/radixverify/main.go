// Command radixverify runs the Theorem 1 verification battery: it builds a
// RadiX-Net (or a corpus of random ones), computes exact big-integer path
// counts, and checks symmetry, path-connectedness, the generalized path
// count formula, the paper's printed formula, and the eq. (4) density
// identity. It also cross-checks the Fig. 6 algorithm against the
// definitional reference construction.
//
// Usage:
//
//	radixverify -systems "(3,3,4);(3,3,4);(2,3)" [-shape …]
//	radixverify -random 25 [-seed 7]   # random-config battery
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"

	"github.com/radix-net/radixnet/internal/cliutil"
	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/radix"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("radixverify: ")
	var (
		configPath = flag.String("config", "", "JSON configuration file")
		systems    = flag.String("systems", "", `systems, e.g. "(3,3,4);(2,3)"`)
		shape      = flag.String("shape", "", "dense shape D (empty = all ones)")
		randomN    = flag.Int("random", 0, "verify N random configurations instead")
		seed       = flag.Int64("seed", 1, "seed for -random")
	)
	flag.Parse()

	if *randomN > 0 {
		rng := rand.New(rand.NewSource(*seed))
		failures := 0
		for i := 0; i < *randomN; i++ {
			cfg := randomConfig(rng)
			if !verify(cfg, true) {
				failures++
			}
		}
		fmt.Printf("verified %d random configurations, %d failures\n", *randomN, failures)
		if failures > 0 {
			os.Exit(1)
		}
		return
	}

	cfg, err := cliutil.LoadConfig(*configPath, *systems, *shape)
	if err != nil {
		log.Fatal(err)
	}
	if !verify(cfg, false) {
		os.Exit(1)
	}
}

func verify(cfg core.Config, terse bool) bool {
	report := func(format string, args ...any) {
		if !terse {
			fmt.Printf(format, args...)
		}
	}
	report("config: %s\n", cfg)

	g, err := core.Build(cfg)
	if err != nil {
		fmt.Printf("FAIL build: %v\n", err)
		return false
	}
	ref, err := core.BuildReference(cfg)
	if err != nil {
		fmt.Printf("FAIL reference build: %v\n", err)
		return false
	}
	ok := true
	check := func(name string, pass bool, detail string) {
		status := "ok  "
		if !pass {
			status = "FAIL"
			ok = false
		}
		if !terse || !pass {
			fmt.Printf("  %s %-28s %s\n", status, name, detail)
		}
	}

	check("algorithm≡definition", g.Equal(ref), "Fig. 6 vs §III.A construction")

	m, sym := g.Symmetric()
	check("symmetric", sym, "product of submatrices is m·1")
	if sym {
		theory := cfg.TheoreticalPaths()
		check("paths=theory", m.Cmp(theory) == 0,
			fmt.Sprintf("exact m=%s, generalized Theorem 1 m=%s", m, theory))
		paper := cfg.PaperTheoreticalPaths()
		if cfg.LastProduct() == cfg.NPrime() {
			check("paths=paper-formula", m.Cmp(paper) == 0,
				fmt.Sprintf("paper (N')^(M-1)·ΠDi = %s", paper))
		} else if !terse {
			fmt.Printf("  note erratum E-b: paper formula %s ≠ exact %s (last product %d < N'=%d)\n",
				paper, m, cfg.LastProduct(), cfg.NPrime())
		}
		ms, okStream := g.SymmetricStreaming()
		check("streaming-verifier", okStream && ms.Cmp(m) == 0, "per-source propagation agrees")
	}
	check("path-connected", g.PathConnected(), "every output reachable from every input")

	exact := core.Density(cfg)
	measured := g.Density()
	check("density=eq(4)", math.Abs(exact-measured) < 1e-12,
		fmt.Sprintf("closed form %.6g vs measured %.6g", exact, measured))

	if cfg.RadixVariance() == 0 {
		approx := core.DensityApproxMuD(cfg.MeanRadix(), cfg.Depth())
		check("eq(6) exact @ var=0", math.Abs(exact-approx) < 1e-9,
			fmt.Sprintf("µ^-(d-1) = %.6g", approx))
	}
	if terse && ok {
		fmt.Printf("ok   %s\n", cfg)
	}
	return ok
}

// randomConfig mirrors the property-test generator: random valid configs
// including divisor last systems and nontrivial shapes.
func randomConfig(rng *rand.Rand) core.Config {
	l := 1 + rng.Intn(3)
	radices := make([]int, l)
	for i := range radices {
		radices[i] = 2 + rng.Intn(3)
	}
	first := radix.MustNew(radices...)
	np := first.Product()
	M := 1 + rng.Intn(3)
	systems := []radix.System{first}
	for i := 1; i < M; i++ {
		f, err := radix.Factorize(np)
		if err != nil {
			panic(err)
		}
		systems = append(systems, f)
	}
	if M >= 2 && rng.Intn(2) == 0 {
		var divisors []int
		for d := 2; d <= np; d++ {
			if np%d == 0 {
				divisors = append(divisors, d)
			}
		}
		f, err := radix.Factorize(divisors[rng.Intn(len(divisors))])
		if err != nil {
			panic(err)
		}
		systems[M-1] = f
	}
	total := 0
	for _, s := range systems {
		total += s.Len()
	}
	var shape []int
	if rng.Intn(2) == 0 {
		shape = make([]int, total+1)
		for i := range shape {
			shape[i] = 1 + rng.Intn(3)
		}
	}
	cfg, err := core.NewConfig(systems, shape)
	if err != nil {
		panic(err)
	}
	return cfg
}
