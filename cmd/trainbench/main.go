// Command trainbench reproduces the deferred training evaluation of the
// paper (Alford & Kepner [15], experiment E9) and the §IV conjecture
// experiment (E12) on synthetic data.
//
// Modes:
//
//	-mode train   compare RadiX-Net / dense / random X-Net / Bernoulli-prune
//	              classifiers at matched layer sizes on a synthetic task
//	-mode approx  fit sup-norm error decay exponents for dense vs RadiX-Net
//	              families on C[0,1] targets (the conjecture, empirically)
//
// Usage:
//
//	trainbench -mode train [-task digits|gmm] [-epochs 12] [-samples 1200]
//	trainbench -mode approx [-epochs 300]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/radix-net/radixnet/internal/approx"
	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/dataset"
	"github.com/radix-net/radixnet/internal/nn"
	"github.com/radix-net/radixnet/internal/radix"
	"github.com/radix-net/radixnet/internal/topology"
	"github.com/radix-net/radixnet/internal/xnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trainbench: ")
	var (
		mode    = flag.String("mode", "train", "train|approx")
		task    = flag.String("task", "digits", "train mode task: digits|gmm")
		epochs  = flag.Int("epochs", 12, "training epochs")
		samples = flag.Int("samples", 1200, "dataset size (train mode)")
		seed    = flag.Int64("seed", 1, "seed")
		workers = flag.Int("workers", 0, "data-parallel workers (0 = GOMAXPROCS)")
		avg     = flag.Int("avg", 1, "approx mode: seeds to average (geometric mean)")
	)
	flag.Parse()

	switch *mode {
	case "train":
		if err := runTrain(*task, *epochs, *samples, *seed, *workers); err != nil {
			log.Fatal(err)
		}
	case "approx":
		if err := runApprox(*epochs, *seed, *avg); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

// contestant is one topology family entered into the comparison.
type contestant struct {
	name  string
	build func(in, out int, rng *rand.Rand) (*nn.Network, error)
}

func runTrain(task string, epochs, samples int, seed int64, workers int) error {
	var data *dataset.Dataset
	var err error
	switch task {
	case "digits":
		data, err = dataset.Digits(samples, 0.10, seed)
	case "gmm":
		data, err = dataset.Gaussians(samples, 32, 8, 3, seed)
	default:
		return fmt.Errorf("unknown task %q", task)
	}
	if err != nil {
		return err
	}
	train, test, err := data.Split(0.8, seed)
	if err != nil {
		return err
	}
	targets, err := train.Targets()
	if err != nil {
		return err
	}
	in := train.X.Cols()
	out := train.Classes

	// The RadiX-Net hidden block: N′ = 256 from systems (16,16), two sparse
	// hidden layers of width 256 with fan-out 16 (density 1/16).
	radixCfg, err := core.NewConfig([]radix.System{radix.MustNew(16, 16)}, nil)
	if err != nil {
		return err
	}
	radixTopo, err := core.Build(radixCfg)
	if err != nil {
		return err
	}
	hidden := radixTopo.LayerSizes() // 256, 256, 256
	degree := 16

	contestants := []contestant{
		{"radix-net", func(in, out int, rng *rand.Rand) (*nn.Network, error) {
			return sandwich(in, out, radixTopo, rng)
		}},
		{"dense", func(in, out int, rng *rand.Rand) (*nn.Network, error) {
			return nn.DenseNet(append(append([]int{in}, hidden...), out), nn.ReLU, rng)
		}},
		{"random-xnet", func(in, out int, rng *rand.Rand) (*nn.Network, error) {
			g, err := xnet.RandomXNet(hidden, degree, rng)
			if err != nil {
				return nil, err
			}
			return sandwich(in, out, g, rng)
		}},
		{"bernoulli", func(in, out int, rng *rand.Rand) (*nn.Network, error) {
			g, err := xnet.BernoulliNet(hidden, radixTopo.Density(), rng)
			if err != nil {
				return nil, err
			}
			return sandwich(in, out, g, rng)
		}},
	}

	fmt.Printf("task=%s train=%d test=%d features=%d classes=%d epochs=%d\n",
		task, train.X.Rows(), test.X.Rows(), in, out, epochs)
	fmt.Printf("%-12s %10s %10s %10s %12s %12s\n", "topology", "params", "train-acc", "test-acc", "time", "samples/s")
	for _, c := range contestants {
		rng := rand.New(rand.NewSource(seed + 17))
		net, err := c.build(in, out, rng)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		tr := &nn.Trainer{
			Net:       net,
			Opt:       &nn.Adam{LR: 0.003},
			Loss:      nn.SoftmaxCrossEntropy{},
			BatchSize: 64,
			Workers:   workers,
			Seed:      seed,
		}
		start := time.Now()
		if _, err := tr.Fit(train.X, targets, epochs); err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		elapsed := time.Since(start)
		trainAcc, err := tr.Evaluate(train.X, train.Labels)
		if err != nil {
			return err
		}
		testAcc, err := tr.Evaluate(test.X, test.Labels)
		if err != nil {
			return err
		}
		samplesPerSec := float64(epochs) * float64(train.X.Rows()) / elapsed.Seconds()
		fmt.Printf("%-12s %10d %10.3f %10.3f %12v %12.0f\n",
			c.name, net.NumParams(), trainAcc, testAcc, elapsed.Round(time.Millisecond), samplesPerSec)
	}
	return nil
}

// sandwich wraps a hidden topology with dense input/output adapters, the
// standard construction for applying structured hidden blocks to arbitrary
// feature and class counts.
func sandwich(in, out int, g *topology.FNNT, rng *rand.Rand) (*nn.Network, error) {
	first, err := nn.NewDenseLinear(in, g.LayerSize(0), rng)
	if err != nil {
		return nil, err
	}
	layers := []nn.Layer{first, nn.ReLU()}
	for i := 0; i < g.NumSubs(); i++ {
		layers = append(layers, nn.NewSparseLinear(g.Sub(i), rng), nn.ReLU())
	}
	last, err := nn.NewDenseLinear(g.LayerSize(g.NumLayers()-1), out, rng)
	if err != nil {
		return nil, err
	}
	layers = append(layers, last)
	return nn.NewNetwork(layers...)
}

func runApprox(epochs int, seed int64, avg int) error {
	cfg := approx.DefaultRunConfig()
	cfg.Epochs = epochs
	cfg.Seed = seed
	fmt.Printf("widths=%v hidden=%d epochs=%d samples=%d grid=%d seeds=%d\n",
		cfg.Widths, cfg.Hidden, cfg.Epochs, cfg.Samples, cfg.Grid, avg)
	fmt.Printf("%-10s %8s %22s %22s %8s %8s\n", "target", "family", "sup-errors", "params", "p", "R²")
	for _, target := range approx.StandardTargets() {
		res, err := approx.RunAveraged(target, cfg, avg)
		if err != nil {
			return err
		}
		for _, fam := range []struct {
			name string
			r    approx.FamilyResult
		}{{"dense", res.Dense}, {"radix", res.Sparse}} {
			fmt.Printf("%-10s %8s %22s %22s %8.3f %8.3f\n",
				target.Name, fam.name, fmtErrs(fam.r.SupErr), fmtInts(fam.r.Params), fam.r.Decay, fam.r.Rsq)
		}
		gap := res.Dense.Decay - res.Sparse.Decay
		fmt.Printf("%-10s decay gap p_dense−p_sparse = %+.3f (conjecture: same order)\n", target.Name, gap)
	}
	return nil
}

func fmtErrs(errs []float64) string {
	s := ""
	for i, e := range errs {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.3g", e)
	}
	return s
}

func fmtInts(xs []int) string {
	s := ""
	for i, x := range xs {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d", x)
	}
	return s
}
