// Command brainsim is the substitute for Wang & Kepner's "Building a brain"
// (reference [18] of the paper): it configures a RadiX-Net whose size and
// sparsity approximate the human brain, reports the closed-form arithmetic
// (neurons, synapses, density — all computed exactly without materializing
// anything), and measures streaming edge-generation throughput on a capped
// sample to extrapolate full-generation time.
//
// Usage:
//
//	brainsim [-scale 1e-6] [-layers 120] [-sample 2000000]
//
// scale is the linear fraction of the ~8.6e10-neuron human brain to target;
// the default generates a millionth-scale brain that runs in milliseconds.
// At -scale 1 nothing is materialized: the closed-form stats print and the
// sampled stream extrapolates.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/big"
	"time"

	"github.com/radix-net/radixnet/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("brainsim: ")
	var (
		scale  = flag.Float64("scale", 1e-6, "linear brain scale in (0,1]")
		layers = flag.Int("layers", 120, "edge layers (even)")
		sample = flag.Int64("sample", 2_000_000, "edges to stream for the throughput sample")
	)
	flag.Parse()

	stats, err := core.BrainConfig(*scale, *layers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("config:        %s\n", shorten(stats.Config.String(), 100))
	fmt.Printf("layers:        %d × %d neurons\n", *layers, stats.Config.LayerWidths()[0])
	fmt.Printf("neurons:       %s  (human brain: %s, ratio %.3g)\n", stats.Neurons, stats.TargetNeur, stats.NeuronRatio)
	fmt.Printf("synapses:      %s  (human brain: %s, ratio %.3g)\n", stats.Synapses, stats.TargetSyn, stats.SynRatio)
	fmt.Printf("density:       %.3g\n", stats.Density)
	fmt.Printf("mean degree:   %.4g synapses/neuron\n", stats.MeanDegree)

	fmt.Printf("paths/pair:    %s (Theorem 1, generalized)\n", stats.Config.TheoreticalPaths())
	if m, verified := symmetryCheck(stats.Config); verified {
		fmt.Printf("verified:      exact path count %s on a depth-2-system twin matches theory\n", m)
	}

	// Stream a capped number of edges to measure generation throughput.
	count := int64(0)
	start := time.Now()
	err = core.StreamEdges(stats.Config, func(layer int, u, v int64) bool {
		count++
		return count < *sample
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	rate := float64(count) / elapsed.Seconds()
	fmt.Printf("stream sample: %d edges in %v (%.3g edges/s)\n", count, elapsed.Round(time.Millisecond), rate)

	total := new(big.Float).SetInt(stats.Synapses)
	secs := new(big.Float).Quo(total, big.NewFloat(rate))
	fmt.Printf("extrapolated:  %s s to enumerate all synapses single-threaded\n", secs.Text('g', 3))
}

// symmetryCheck verifies Theorem 1 exactly on a reduced twin of the brain
// config — the first two systems with an all-ones shape — when that twin is
// small enough for exact big-integer verification. Symmetry composes across
// concatenation (Lemma 2's induction), so the twin exercises the same
// mechanism the full net relies on.
func symmetryCheck(cfg core.Config) (*big.Int, bool) {
	systems := cfg.Systems
	if len(systems) > 2 {
		systems = systems[:2]
	}
	twin, err := core.NewConfig(systems, nil)
	if err != nil || twin.NPrime() > 256 {
		return nil, false
	}
	g, err := core.Build(twin)
	if err != nil {
		return nil, false
	}
	m, ok := g.Symmetric()
	if !ok || m.Cmp(twin.TheoreticalPaths()) != 0 {
		return nil, false
	}
	return m, true
}

func shorten(s string, max int) string {
	if len(s) <= max {
		return s
	}
	return s[:max-1] + "…"
}
