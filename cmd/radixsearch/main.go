// Command radixsearch finds RadiX-Net configurations matching a width,
// density and depth target — the "give me a 256-wide, 1/16-dense, 8-layer
// sparse block" workflow of a downstream adopter. Candidates are ranked by
// density error, then by radix variance (lower variance means the paper's
// µ^{−(d−1)} approximation is tighter).
//
// Usage:
//
//	radixsearch -width 256 -density 0.0625 -layers 8 [-tolerance 0.25] [-max 10]
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/radix-net/radixnet/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("radixsearch: ")
	var (
		width     = flag.Int("width", 256, "nodes per layer N′")
		density   = flag.Float64("density", 0.0625, "target density in (0,1]")
		layers    = flag.Int("layers", 8, "edge layers")
		tolerance = flag.Float64("tolerance", 0.25, "relative density tolerance")
		maxOut    = flag.Int("max", 10, "max candidates")
		verify    = flag.Bool("verify", false, "build and verify each candidate (slower)")
	)
	flag.Parse()

	cands, err := core.Search(core.SearchSpec{
		Width:      *width,
		Density:    *density,
		EdgeLayers: *layers,
		Tolerance:  *tolerance,
		MaxResults: *maxOut,
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(cands) == 0 {
		log.Fatalf("no configuration within %.0f%% of density %g at width %d — widen the tolerance or change the width",
			*tolerance*100, *density, *width)
	}
	fmt.Printf("%-44s %10s %8s %8s %10s\n", "config", "density", "err%", "µ", "paths")
	for _, c := range cands {
		status := ""
		if *verify {
			g, err := core.Build(c.Config)
			if err != nil {
				status = " BUILD-FAIL"
			} else if m, ok := g.Symmetric(); !ok || m.Cmp(c.Config.TheoreticalPaths()) != 0 {
				status = " VERIFY-FAIL"
			} else {
				status = " ✓"
			}
		}
		fmt.Printf("%-44s %10.5g %8.2f %8.3g %10s%s\n",
			c.Config.String(), c.Density, c.DensityErr*100, c.MeanRadix,
			c.Config.TheoreticalPaths(), status)
	}
}
