// Command gcinfer runs the Graph Challenge–style sparse DNN inference
// benchmark (experiment E10): it generates a RadiX-Net of the requested
// shape, assigns challenge-convention weights, pushes a batch of sparse
// inputs through it, and reports throughput as edges traversed per second
// (batch × total nnz / wall time), the challenge's headline metric.
//
// With -bench-json the same workload is timed through the unfused scatter
// baseline (Engine.InferUnfused), the fused CSC kernel stack (Engine.Infer
// on the generic kernels), and — when the configuration compiles to
// verified stride plans — the structure-aware radix butterfly kernel, and
// the comparison is appended to the JSON array in the given file — the
// BENCH_infer.json format that records the repository's inference-
// performance trajectory (see README.md for the schema). Each record
// carries the git SHA, batch size, and kernel it was measured at; a legacy
// single-record file is converted to an array on first append.
//
// -kernel selects the kernel for the plain throughput run: "csc" pins the
// generic kernels, "radix" demands the structure-aware path (fails on
// configs that don't compile to stride plans), "auto" (default) resolves
// to radix whenever the plans verify.
//
// Usage:
//
//	gcinfer [-width 1024] [-layers 120] [-batch 64] [-nnz 100] [-reps 3]
//	gcinfer -radix 8,8,8,8 -batch 64 -kernel radix -bench-json BENCH_infer.json
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"testing"
	"time"

	"github.com/radix-net/radixnet/internal/cliutil"
	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/dataset"
	"github.com/radix-net/radixnet/internal/infer"
	"github.com/radix-net/radixnet/internal/radix"
	"github.com/radix-net/radixnet/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gcinfer: ")
	var (
		width     = flag.Int("width", 1024, "neurons per layer (multiple of 1024); ignored with -radix")
		layers    = flag.Int("layers", 120, "number of weight layers (even); ignored with -radix")
		radixSpec = flag.String("radix", "", "build from one mixed-radix system, e.g. 8,8,8,8 (overrides -width/-layers)")
		batch     = flag.Int("batch", 64, "input rows per batch")
		nnz       = flag.Int("nnz", 0, "nonzeros per input row (0 = width/10)")
		reps      = flag.Int("reps", 3, "timed repetitions (best-of)")
		seed      = flag.Int64("seed", 1, "input seed")
		kernel    = flag.String("kernel", "auto", "inference kernel: csc, radix, or auto")
		benchJSON = flag.String("bench-json", "", "write an unfused-vs-fused-vs-radix benchmark record to this file and exit")
	)
	flag.Parse()

	kind, err := infer.ParseKernel(*kernel)
	if err != nil {
		log.Fatal(err)
	}

	var cfg core.Config
	if *radixSpec != "" {
		sys, perr := radix.Parse(*radixSpec)
		if perr != nil {
			log.Fatal(perr)
		}
		cfg, err = core.NewConfig([]radix.System{sys}, nil)
	} else {
		cfg, err = core.GraphChallengeConfig(*width, *layers)
	}
	if err != nil {
		log.Fatal(err)
	}
	netWidth := cfg.LayerWidths()[0]
	numLayers := len(cfg.LayerWidths()) - 1
	fmt.Printf("network: %d layers × %d neurons, %s edges, density %.4g\n",
		numLayers, netWidth, cfg.NumEdges(), core.Density(cfg))

	buildStart := time.Now()
	engine, err := infer.FromConfigKernel(cfg, kind)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generation: %v (%d stored weights, %s kernel)\n",
		time.Since(buildStart).Round(time.Millisecond), engine.TotalNNZ(), engine.Kernel())

	inNNZ := *nnz
	if inNNZ <= 0 {
		inNNZ = netWidth / 10
		if inNNZ < 1 {
			inNNZ = 1
		}
	}
	in, err := dataset.SparseBatch(*batch, netWidth, inNNZ, *seed)
	if err != nil {
		log.Fatal(err)
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, cfg, engine, in, inNNZ, *reps); err != nil {
			log.Fatal(err)
		}
		return
	}

	// Warm-up pass (page in the weight arrays, size the ping-pong buffers)
	// then timed repetitions.
	if _, err := engine.Infer(in); err != nil {
		log.Fatal(err)
	}
	best := timeInfer(engine.Infer, in, *reps)
	edges := float64(*batch) * float64(engine.TotalNNZ())
	fmt.Printf("inference: best of %d reps = %v\n", *reps, best.Round(time.Microsecond))
	fmt.Printf("throughput: %.3g edges/s (batch %d × %d edges)\n",
		edges/best.Seconds(), *batch, engine.TotalNNZ())

	active, _, err := engine.InferCategories(in)
	if err != nil {
		log.Fatal(err)
	}
	alive := 0
	for _, a := range active {
		if a {
			alive++
		}
	}
	fmt.Printf("categories: %d/%d rows with surviving activations\n", alive, *batch)
}

// timeInfer returns the best wall time of reps calls to fn.
func timeInfer(fn func(*sparse.Dense) (*sparse.Dense, error), in *sparse.Dense, reps int) time.Duration {
	var best time.Duration
	for r := 0; r < reps; r++ {
		start := time.Now()
		if _, err := fn(in); err != nil {
			log.Fatal(err)
		}
		if elapsed := time.Since(start); best == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best
}

// benchRecord is the BENCH_infer.json schema. "unfused" is the seed
// scatter path (before); "fused" is the generic CSC kernel stack that
// replaced it (after); speedup is their edges/sec ratio. "radix" is the
// structure-aware butterfly kernel, present when the configuration
// compiles to verified stride plans, with radix_speedup its edges/sec
// ratio over the fused CSC path. "kernel" names the kernel the record's
// engine resolved to for plain (non-bench) runs.
type benchRecord struct {
	Benchmark    string     `json:"benchmark"`
	Date         string     `json:"date"`
	GoVersion    string     `json:"go_version"`
	GOMAXPROCS   int        `json:"gomaxprocs"`
	GitSHA       string     `json:"git_sha"`
	Kernel       string     `json:"kernel"`
	Network      benchNet   `json:"network"`
	Workload     benchWork  `json:"workload"`
	Unfused      benchPath  `json:"unfused"`
	Fused        benchPath  `json:"fused"`
	Speedup      float64    `json:"speedup"`
	Radix        *benchPath `json:"radix,omitempty"`
	RadixSpeedup float64    `json:"radix_speedup,omitempty"`
}

type benchNet struct {
	LayerWidth int    `json:"layer_width"`
	Layers     int    `json:"layers"`
	Weights    int    `json:"weights"`
	Edges      string `json:"edges"`
}

type benchWork struct {
	Batch      int     `json:"batch"`
	NNZPerRow  int     `json:"nnz_per_row"`
	Reps       int     `json:"reps"`
	EdgesPerOp float64 `json:"edges_per_op"`
}

type benchPath struct {
	NsPerOp     int64   `json:"ns_per_op"`
	EdgesPerSec float64 `json:"edges_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func writeBenchJSON(path string, cfg core.Config, engine *infer.Engine, in *sparse.Dense, inNNZ, reps int) error {
	edgesPerOp := float64(in.Rows()) * float64(engine.TotalNNZ())
	measure := func(fn func(*sparse.Dense) (*sparse.Dense, error)) benchPath {
		if _, err := fn(in); err != nil { // warm up
			log.Fatal(err)
		}
		best := timeInfer(fn, in, reps)
		allocs := testing.AllocsPerRun(1, func() {
			if _, err := fn(in); err != nil {
				log.Fatal(err)
			}
		})
		return benchPath{
			NsPerOp:     best.Nanoseconds(),
			EdgesPerSec: edgesPerOp / best.Seconds(),
			AllocsPerOp: allocs,
		}
	}
	rec := benchRecord{
		Benchmark:  "E10-infer",
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GitSHA:     cliutil.GitSHA(),
		Kernel:     engine.Kernel().String(),
		Network: benchNet{
			LayerWidth: cfg.LayerWidths()[0],
			Layers:     len(cfg.LayerWidths()) - 1,
			Weights:    engine.TotalNNZ(),
			Edges:      cfg.NumEdges().String(),
		},
		Workload: benchWork{
			Batch:      in.Rows(),
			NNZPerRow:  inNNZ,
			Reps:       reps,
			EdgesPerOp: edgesPerOp,
		},
	}
	rec.Unfused = measure(engine.InferUnfused)
	// Fused is always the generic CSC stack, so the speedup column keeps its
	// meaning across records regardless of the -kernel flag; the radix path
	// is measured on the same engine (same weights) when its plans compiled.
	restore := engine.Kernel()
	if err := engine.SetKernel(infer.KernelCSC); err != nil {
		return err
	}
	rec.Fused = measure(engine.Infer)
	rec.Speedup = rec.Fused.EdgesPerSec / rec.Unfused.EdgesPerSec
	if engine.HasRadixPlans() {
		if err := engine.SetKernel(infer.KernelRadix); err != nil {
			return err
		}
		r := measure(engine.Infer)
		rec.Radix = &r
		rec.RadixSpeedup = r.EdgesPerSec / rec.Fused.EdgesPerSec
	}
	if err := engine.SetKernel(restore); err != nil {
		return err
	}
	n, err := cliutil.AppendJSONRecord(path, rec)
	if err != nil {
		return err
	}
	fmt.Printf("bench: unfused %.3g edges/s, fused %.3g edges/s, speedup %.2fx -> %s (record %d, sha %s)\n",
		rec.Unfused.EdgesPerSec, rec.Fused.EdgesPerSec, rec.Speedup, path, n, rec.GitSHA)
	if rec.Radix != nil {
		fmt.Printf("bench: radix %.3g edges/s, %.2fx over fused csc\n", rec.Radix.EdgesPerSec, rec.RadixSpeedup)
	}
	return nil
}
