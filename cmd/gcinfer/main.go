// Command gcinfer runs the Graph Challenge–style sparse DNN inference
// benchmark (experiment E10): it generates a RadiX-Net of the requested
// width and depth, assigns challenge-convention weights, pushes a batch of
// sparse inputs through it, and reports throughput as edges traversed per
// second (batch × total nnz / wall time), the challenge's headline metric.
//
// Usage:
//
//	gcinfer [-width 1024] [-layers 120] [-batch 64] [-nnz 100] [-reps 3]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/dataset"
	"github.com/radix-net/radixnet/internal/infer"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gcinfer: ")
	var (
		width  = flag.Int("width", 1024, "neurons per layer (multiple of 1024)")
		layers = flag.Int("layers", 120, "number of weight layers (even)")
		batch  = flag.Int("batch", 64, "input rows per batch")
		nnz    = flag.Int("nnz", 100, "nonzeros per input row")
		reps   = flag.Int("reps", 3, "timed repetitions")
		seed   = flag.Int64("seed", 1, "input seed")
	)
	flag.Parse()

	cfg, err := core.GraphChallengeConfig(*width, *layers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d layers × %d neurons, %s edges, density %.4g\n",
		*layers, cfg.LayerWidths()[0], cfg.NumEdges(), core.Density(cfg))

	buildStart := time.Now()
	engine, err := infer.FromConfig(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generation: %v (%d stored weights)\n", time.Since(buildStart).Round(time.Millisecond), engine.TotalNNZ())

	in, err := dataset.SparseBatch(*batch, cfg.LayerWidths()[0], *nnz, *seed)
	if err != nil {
		log.Fatal(err)
	}

	// Warm-up pass (page in the weight arrays) then timed repetitions.
	if _, err := engine.Infer(in); err != nil {
		log.Fatal(err)
	}
	var best time.Duration
	for r := 0; r < *reps; r++ {
		start := time.Now()
		out, err := engine.Infer(in)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if best == 0 || elapsed < best {
			best = elapsed
		}
		_ = out
	}
	edges := float64(*batch) * float64(engine.TotalNNZ())
	fmt.Printf("inference: best of %d reps = %v\n", *reps, best.Round(time.Microsecond))
	fmt.Printf("throughput: %.3g edges/s (batch %d × %d edges)\n",
		edges/best.Seconds(), *batch, engine.TotalNNZ())

	active, _, err := engine.InferCategories(in)
	if err != nil {
		log.Fatal(err)
	}
	alive := 0
	for _, a := range active {
		if a {
			alive++
		}
	}
	fmt.Printf("categories: %d/%d rows with surviving activations\n", alive, *batch)
}
