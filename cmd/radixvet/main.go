// Command radixvet runs the project's static-analysis suite: the four AST
// analyzers (hotpath, atomichygiene, metriclint, ctxguard) over the
// packages named by its arguments, then the two compiler-diagnostic gates
// (escape, BCE) against the checked-in hotpath manifest.
//
// Usage:
//
//	go run ./cmd/radixvet ./...            # full suite: analyzers + gates
//	go run ./cmd/radixvet -gates=false ./internal/obs
//	go run ./cmd/radixvet -regen-manifest  # rewrite hotpath_manifest.json
//	go run ./cmd/radixvet -dir internal/analysis/testdata/src/hotpath
//
// Exit status is nonzero when any analyzer or gate reports a finding, so a
// bare CI step `go run ./cmd/radixvet ./...` is the whole integration.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/radix-net/radixnet/internal/analysis"
)

func main() {
	var (
		gates    = flag.Bool("gates", true, "run the escape and BCE compiler-diagnostic gates after the analyzers")
		manifest = flag.String("manifest", "", "hotpath manifest path (default MODULE/internal/analysis/hotpath_manifest.json)")
		regen    = flag.Bool("regen-manifest", false, "rewrite the hotpath manifest from the live source annotations and exit")
		dir      = flag.String("dir", "", "analyze one bare directory of Go files (testdata packages) with the AST analyzers only")
		list     = flag.Bool("list", false, "list the analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-14s %s\n", "escape-gate", "assert manifest noescape functions heap-allocate nothing (go build -gcflags=-m)")
		fmt.Printf("%-14s %s\n", "bce-gate", "assert manifest bce regions compile without bounds checks (-d=ssa/check_bce/debug=1)")
		return
	}

	moduleDir, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	if *manifest == "" {
		*manifest = filepath.Join(moduleDir, "internal", "analysis", "hotpath_manifest.json")
	}

	if *dir != "" {
		prog, err := analysis.LoadDir(moduleDir, *dir)
		if err != nil {
			fatal(err)
		}
		report(run(prog))
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := analysis.LoadPackages(moduleDir, patterns...)
	if err != nil {
		fatal(err)
	}

	if *regen {
		m, err := analysis.DeriveManifest(prog)
		if err != nil {
			fatal(err)
		}
		if err := m.Save(*manifest); err != nil {
			fatal(err)
		}
		fmt.Printf("radixvet: wrote %s (%d noescape functions, %d bce regions)\n",
			*manifest, len(m.NoEscape), len(m.BCERegions))
		return
	}

	diags := run(prog)

	if *gates {
		m, err := analysis.LoadManifest(*manifest)
		if err != nil {
			fatal(fmt.Errorf("%w (run `go run ./cmd/radixvet -regen-manifest` to create it)", err))
		}
		derived, err := analysis.DeriveManifest(prog)
		if err != nil {
			fatal(err)
		}
		if drift := analysis.DiffManifest(m, derived); len(drift) > 0 {
			for _, d := range drift {
				fmt.Fprintf(os.Stderr, "radixvet: manifest drift: %s\n", d)
			}
			fmt.Fprintln(os.Stderr, "radixvet: annotations and hotpath_manifest.json disagree; run `go run ./cmd/radixvet -regen-manifest` and review the diff")
			os.Exit(1)
		}
		esc, err := analysis.EscapeGate(prog, m, moduleDir)
		if err != nil {
			fatal(err)
		}
		bce, err := analysis.BCEGate(prog, m, moduleDir)
		if err != nil {
			fatal(err)
		}
		diags = append(diags, esc...)
		diags = append(diags, bce...)
	}

	report(diags)
}

func run(prog *analysis.Program) []analysis.Diagnostic {
	diags, err := analysis.Run(prog, analysis.All())
	if err != nil {
		fatal(err)
	}
	return diags
}

func report(diags []analysis.Diagnostic) {
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "radixvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("radixvet: no go.mod found above the working directory")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "radixvet:", err)
	os.Exit(2)
}
