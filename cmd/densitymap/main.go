// Command densitymap regenerates Figure 7 of the paper: the density of a
// RadiX-Net as a function of the average radix µ and the per-system depth
// d = log_µ N′, evaluated on uniform systems where the approximation
// ΔG ≈ µ^{−(d−1)} (eq. 6) is exact.
//
// Usage:
//
//	densitymap [-mu-min 2] [-mu-max 16] [-d-min 1] [-d-max 8] [-format table|csv]
//
// The table prints log10 densities, matching the log-scaled color bar of
// the paper's figure; the csv output is column data for external plotting.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"github.com/radix-net/radixnet/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("densitymap: ")
	var (
		muMin  = flag.Int("mu-min", 2, "smallest radix µ")
		muMax  = flag.Int("mu-max", 16, "largest radix µ")
		dMin   = flag.Int("d-min", 1, "smallest depth d")
		dMax   = flag.Int("d-max", 8, "largest depth d")
		format = flag.String("format", "table", "output format: table|csv")
	)
	flag.Parse()
	if *muMin < 2 || *muMax < *muMin || *dMin < 1 || *dMax < *dMin {
		log.Fatalf("invalid grid µ∈[%d,%d] d∈[%d,%d]", *muMin, *muMax, *dMin, *dMax)
	}

	cells := core.DensityMap(*muMin, *muMax, *dMin, *dMax)
	switch *format {
	case "csv":
		fmt.Println("mu,d,nprime,density_exact_eq4,density_approx_eq6,log10_density")
		for _, c := range cells {
			if !c.Valid {
				continue
			}
			fmt.Printf("%d,%d,%d,%g,%g,%g\n", c.Mu, c.Depth, c.NPrime, c.Exact, c.Approx, math.Log10(c.Exact))
		}
	case "table":
		// Rows: d; columns: µ; entries: log10 ΔG, as in Fig. 7.
		fmt.Printf("log10 density ΔG ≈ µ^-(d-1)  (exact for uniform radices, eq. 4 ≡ eq. 6)\n")
		fmt.Printf("%6s", "d\\µ")
		for mu := *muMin; mu <= *muMax; mu++ {
			fmt.Printf("%8d", mu)
		}
		fmt.Println()
		idx := 0
		byCell := make(map[[2]int]core.DensityCell)
		for _, c := range cells {
			byCell[[2]int{c.Mu, c.Depth}] = c
			idx++
		}
		for d := *dMin; d <= *dMax; d++ {
			fmt.Printf("%6d", d)
			for mu := *muMin; mu <= *muMax; mu++ {
				c := byCell[[2]int{mu, d}]
				if !c.Valid {
					fmt.Printf("%8s", "ovf")
					continue
				}
				fmt.Printf("%8.2f", math.Log10(c.Exact))
			}
			fmt.Println()
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}
}
