// Benchmark harness: one benchmark per experiment in the per-experiment
// index of DESIGN.md §3 (the paper's Figures 1–7, Lemmas/Theorem, and the
// deferred evaluations E9–E12), plus the design-choice ablations of §6.
// EXPERIMENTS.md records the paper-vs-measured comparison for each.
package radixnet_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/radix-net/radixnet/internal/approx"
	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/dataset"
	"github.com/radix-net/radixnet/internal/infer"
	"github.com/radix-net/radixnet/internal/nn"
	"github.com/radix-net/radixnet/internal/radix"
	"github.com/radix-net/radixnet/internal/sparse"
	"github.com/radix-net/radixnet/internal/topology"
	"github.com/radix-net/radixnet/internal/xnet"
)

// --- E1: Figure 1 — mixed-radix topology construction ---

func BenchmarkFig1_MixedRadix(b *testing.B) {
	for _, size := range []struct {
		name string
		sys  []int
	}{
		{"N=2,2,2", []int{2, 2, 2}},
		{"N=16,16", []int{16, 16}},
		{"N=32,32", []int{32, 32}},
		{"N=8,8,8,8", []int{8, 8, 8, 8}},
	} {
		sys := radix.MustNew(size.sys...)
		b.Run(size.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := core.MixedRadix(sys)
				if g.NumEdges() == 0 {
					b.Fatal("empty topology")
				}
			}
		})
	}
}

// --- E2: Figure 2 — EMR concatenation ---

func BenchmarkFig2_EMRConcat(b *testing.B) {
	s := radix.MustNew(3, 3, 4)
	last := radix.MustNew(2, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := core.EMR(s, s, s, last)
		if err != nil {
			b.Fatal(err)
		}
		if g.NumSubs() != 11 {
			b.Fatal("wrong depth")
		}
	}
}

// --- E3: Figure 3–4 — full adjacency assembly (eq. 11) ---

func BenchmarkFig4_AdjacencyAssembly(b *testing.B) {
	cfg := core.Fig2Config()
	g, err := core.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := g.Assemble()
		if a.NNZ() != g.NumEdges() {
			b.Fatal("assembly lost edges")
		}
	}
}

// --- E4: Figure 5 — Kronecker lift ---

func BenchmarkFig5_KroneckerLift(b *testing.B) {
	for _, lift := range []int{2, 4, 8} {
		cfg, err := core.UniformConfig(8, 2, 2, lift)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("lift=%d", lift), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g, err := core.Build(cfg)
				if err != nil {
					b.Fatal(err)
				}
				_ = g.NumEdges()
			}
		})
	}
}

// --- E5: Figure 6 — the generator itself, and vs the reference ---

func BenchmarkFig6_Generator(b *testing.B) {
	cfg, err := core.GraphChallengeConfig(1024, 24)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := core.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = g.NumEdges()
	}
}

func BenchmarkFig6_ReferenceConstruction(b *testing.B) {
	cfg := core.Fig2Config()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := core.BuildReference(cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = g.NumEdges()
	}
}

// --- E6: Figure 7 — density sweep over (µ, d) ---

func BenchmarkFig7_DensitySweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cells := core.DensityMap(2, 16, 1, 8)
		if len(cells) == 0 {
			b.Fatal("empty map")
		}
	}
}

// --- E7: Theorem 1 — exact symmetry verification strategies ---

func BenchmarkTheorem1_VerifyDense(b *testing.B) {
	cfg := core.Fig2Config()
	g, err := core.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Symmetric(); !ok {
			b.Fatal("not symmetric")
		}
	}
}

func BenchmarkTheorem1_VerifyStreaming(b *testing.B) {
	cfg := core.Fig2Config()
	g, err := core.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.SymmetricStreaming(); !ok {
			b.Fatal("not symmetric")
		}
	}
}

// --- E8: X-Net baselines — construction cost at matched density ---

func BenchmarkXNetVsRadix_Construct(b *testing.B) {
	sizes := []int{256, 256, 256}
	b.Run("radix-net", func(b *testing.B) {
		cfg, err := core.NewConfig([]radix.System{radix.MustNew(16, 16)}, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Build(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("random-xnet", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := xnet.RandomXNet(sizes, 16, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cayley-xnet", func(b *testing.B) {
		gens := make([]int, 16)
		for i := range gens {
			gens[i] = i * 5
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := xnet.CayleyXNet(256, 2, gens); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bernoulli", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := xnet.BernoulliNet(sizes, 1.0/16, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E9: training throughput, sparse vs dense (Alford & Kepner substitute) ---

func BenchmarkTrainEpoch_RadixNet(b *testing.B) {
	benchTrainEpoch(b, true)
}

func BenchmarkTrainEpoch_Dense(b *testing.B) {
	benchTrainEpoch(b, false)
}

func benchTrainEpoch(b *testing.B, useSparse bool) {
	rng := rand.New(rand.NewSource(1))
	data, err := dataset.Gaussians(256, 32, 8, 3, 1)
	if err != nil {
		b.Fatal(err)
	}
	targets, err := data.Targets()
	if err != nil {
		b.Fatal(err)
	}
	var net *nn.Network
	if useSparse {
		cfg, err := core.NewConfig([]radix.System{radix.MustNew(16, 16)}, nil)
		if err != nil {
			b.Fatal(err)
		}
		topo, err := core.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		first, _ := nn.NewDenseLinear(32, 256, rng)
		last, _ := nn.NewDenseLinear(256, 8, rng)
		net, err = nn.NewNetwork(
			first, nn.ReLU(),
			nn.NewSparseLinear(topo.Sub(0), rng), nn.ReLU(),
			nn.NewSparseLinear(topo.Sub(1), rng), nn.ReLU(),
			last,
		)
		if err != nil {
			b.Fatal(err)
		}
	} else {
		net, err = nn.DenseNet([]int{32, 256, 256, 256, 8}, nn.ReLU, rng)
		if err != nil {
			b.Fatal(err)
		}
	}
	tr := &nn.Trainer{Net: net, Opt: &nn.Adam{LR: 0.003}, Loss: nn.SoftmaxCrossEntropy{}, BatchSize: 64, Seed: 1}
	shuffle := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.TrainEpoch(data.X, targets, shuffle); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(net.NumParams()), "params")
}

// --- E10: Graph Challenge inference throughput ---

func BenchmarkGCInference(b *testing.B) {
	for _, spec := range []struct {
		width, layers int
	}{
		{1024, 24},
		{1024, 120},
		{4096, 24},
	} {
		name := fmt.Sprintf("w=%d_l=%d", spec.width, spec.layers)
		b.Run(name, func(b *testing.B) {
			cfg, err := core.GraphChallengeConfig(spec.width, spec.layers)
			if err != nil {
				b.Fatal(err)
			}
			engine, err := infer.FromConfig(cfg)
			if err != nil {
				b.Fatal(err)
			}
			batch, err := dataset.SparseBatch(16, spec.width, spec.width/10, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Infer(batch); err != nil {
					b.Fatal(err)
				}
			}
			edgesPerOp := float64(16) * float64(engine.TotalNNZ())
			b.ReportMetric(edgesPerOp*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
		})
	}
}

// BenchmarkE10_Infer pits the fused CSC-gather kernel stack (ping-pong
// buffers, fused epilogue, active-row tracking) against the unfused
// scatter baseline (per-layer DenseMul allocation + separate epilogue
// pass) on the acceptance workload: a radix [8,8,8,8] stack (width 4096)
// at batch 64. The fused/ sub-benchmark must report 0 allocs/op in steady
// state; cmd/gcinfer -bench-json records the same comparison to
// BENCH_infer.json.
func BenchmarkE10_Infer(b *testing.B) {
	cfg, err := core.NewConfig([]radix.System{radix.MustNew(8, 8, 8, 8)}, nil)
	if err != nil {
		b.Fatal(err)
	}
	engine, err := infer.FromConfig(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// FromConfig now auto-selects the radix butterfly kernel; pin CSC here so
	// this benchmark keeps tracking the generic fused path (the radix kernel
	// has its own benchmark below).
	if err := engine.SetKernel(infer.KernelCSC); err != nil {
		b.Fatal(err)
	}
	engine.PerturbWeights(0.01, 1) // avoid the all-equal weight special case
	width := 8 * 8 * 8 * 8
	batch, err := dataset.SparseBatch(64, width, width/10, 1)
	if err != nil {
		b.Fatal(err)
	}
	edgesPerOp := float64(batch.Rows()) * float64(engine.TotalNNZ())
	b.Run("fused", func(b *testing.B) {
		if _, err := engine.Infer(batch); err != nil { // size the buffers
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Infer(batch); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(edgesPerOp*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
	})
	b.Run("unfused", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.InferUnfused(batch); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(edgesPerOp*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
	})
}

// BenchmarkRadixKernel pits the structure-aware butterfly kernel (compiled
// mixed-radix stride plans, arithmetic addressing, zero index arrays in the
// hot loop) against the generic fused CSC kernel on the same E10 acceptance
// workload. Both sub-benchmarks run the identical engine and batch — only
// the kernel selection differs — and both must report 0 allocs/op in steady
// state; outputs are bit-identical (property-tested in internal/infer).
func BenchmarkRadixKernel(b *testing.B) {
	cfg, err := core.NewConfig([]radix.System{radix.MustNew(8, 8, 8, 8)}, nil)
	if err != nil {
		b.Fatal(err)
	}
	engine, err := infer.FromConfigKernel(cfg, infer.KernelRadix)
	if err != nil {
		b.Fatal(err)
	}
	engine.PerturbWeights(0.01, 1)
	width := 8 * 8 * 8 * 8
	batch, err := dataset.SparseBatch(64, width, width/10, 1)
	if err != nil {
		b.Fatal(err)
	}
	edgesPerOp := float64(batch.Rows()) * float64(engine.TotalNNZ())
	for _, kind := range []infer.KernelKind{infer.KernelCSC, infer.KernelRadix} {
		b.Run(kind.String(), func(b *testing.B) {
			if err := engine.SetKernel(kind); err != nil {
				b.Fatal(err)
			}
			if _, err := engine.Infer(batch); err != nil { // size the buffers
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Infer(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(edgesPerOp*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
		})
	}
}

// --- E11: brain-scale streaming generation ---

func BenchmarkBrainStream(b *testing.B) {
	stats, err := core.BrainConfig(1e-5, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	count := int64(0)
	for i := 0; i < b.N; i++ {
		count = 0
		err := core.StreamEdges(stats.Config, func(layer int, u, v int64) bool {
			count++
			return count < 1_000_000
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(count)*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

// --- E12: conjecture harness (tiny budget; full run via trainbench) ---

func BenchmarkConjectureFit(b *testing.B) {
	cfg := approx.RunConfig{
		Widths:      []int{8, 16},
		Hidden:      2,
		Epochs:      20,
		LR:          0.02,
		Samples:     32,
		Grid:        64,
		Seed:        1,
		BatchSize:   16,
		MaxParallel: 1,
	}
	target := approx.StandardTargets()[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := approx.Run(target, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §6) ---

// Ablation 1: parallel vs row-serial SpGEMM. The parallel path is exercised
// through Pattern.Mul's internal row-block decomposition; the serial
// reference is a single-block call (grain forced above row count).
func BenchmarkAblation_SpGEMM(b *testing.B) {
	cfg, err := core.NewConfig([]radix.System{radix.MustNew(32, 32)}, nil)
	if err != nil {
		b.Fatal(err)
	}
	g, err := core.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	w1, w2 := g.Sub(0), g.Sub(1)
	b.Run("pattern-boolean", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := w1.Mul(w2); err != nil {
				b.Fatal(err)
			}
		}
	})
	m1 := sparse.MatrixFromPattern(w1, 0.5)
	m2 := sparse.MatrixFromPattern(w2, 0.5)
	b.Run("numeric-spgemm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m1.Mul(m2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation 2: CSR×dense vs dense×dense at the RadiX-Net density (1/32 at
// width 1024) — where sparse wins.
func BenchmarkAblation_DenseVsSparse(b *testing.B) {
	cfg, err := core.NewConfig([]radix.System{radix.MustNew(32, 32)}, nil)
	if err != nil {
		b.Fatal(err)
	}
	g, err := core.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	w := sparse.MatrixFromPattern(g.Sub(0), 0.5)
	batch, err := dataset.SparseBatch(16, 1024, 1024, 1) // fully dense rows
	if err != nil {
		b.Fatal(err)
	}
	b.Run("csr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := w.DenseMul(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	dw := w.ToDense()
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := batch.MatMul(dw); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation 3: exact path-count strategies (dense product vs per-source
// streaming) — covered head-to-head by the Theorem 1 benchmarks above; this
// adds the scaling dimension.
func BenchmarkAblation_PathCountScaling(b *testing.B) {
	for _, np := range []int{16, 36, 64} {
		sys, err := radix.Factorize(np)
		if err != nil {
			b.Fatal(err)
		}
		cfg, err := core.NewConfig([]radix.System{sys, sys}, nil)
		if err != nil {
			b.Fatal(err)
		}
		g, err := core.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("dense/N=%d", np), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = g.PathCounts()
			}
		})
		b.Run(fmt.Sprintf("streaming/N=%d", np), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := g.SymmetricStreaming(); !ok {
					b.Fatal("not symmetric")
				}
			}
		})
	}
}

// Ablation 4: eq. (5) shape insensitivity — the closed form makes this a
// pure arithmetic sweep; benchmarked to document that the check is free
// compared with building.
func BenchmarkAblation_Eq5ShapeSweep(b *testing.B) {
	sys := radix.MustNew(8, 8)
	shapes := [][]int{nil, {1, 2, 1}, {4, 4, 4}, {1, 16, 1}, {2, 8, 2}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, shape := range shapes {
			cfg, err := core.NewConfig([]radix.System{sys}, shape)
			if err != nil {
				b.Fatal(err)
			}
			if d := core.Density(cfg); d != 0.125 {
				b.Fatalf("density %g", d)
			}
		}
	}
}

// Extension: configuration search (cmd/radixsearch workflow).
func BenchmarkSearch(b *testing.B) {
	spec := core.SearchSpec{Width: 256, Density: 1.0 / 16, EdgeLayers: 8, Tolerance: 0.3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cands, err := core.Search(spec)
		if err != nil {
			b.Fatal(err)
		}
		if len(cands) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// Extension: layered-graph isomorphism detection on Fig. 1-scale nets.
func BenchmarkIsomorphism(b *testing.B) {
	g := core.MixedRadix(radix.MustNew(2, 2, 2))
	perms := make([][]int, g.NumLayers())
	rng := rand.New(rand.NewSource(5))
	for i := range perms {
		perms[i] = rng.Perm(g.LayerSize(i))
	}
	h, err := g.Relabel(perms)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := topology.IsomorphicByLayerPermutation(g, h, 0); !ok {
			b.Fatal("not isomorphic")
		}
	}
}

// Kronecker product scaling, the core primitive of eq. (3).
func BenchmarkKroneckerProduct(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		w := sparse.SumOfShifts(n, []int{0, 1, 2, 3})
		ones := sparse.Ones(4, 4)
		b.Run(fmt.Sprintf("ones4x4xW%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = ones.Kron(w)
			}
		})
	}
}
