package radixnet_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	radixnet "github.com/radix-net/radixnet"
)

func TestFacadeSearchWorkflow(t *testing.T) {
	cands, err := radixnet.Search(radixnet.SearchSpec{
		Width:      64,
		Density:    0.125,
		EdgeLayers: 4,
		Tolerance:  0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates for (8,8)-achievable target")
	}
	best := cands[0]
	if best.Density != 0.125 {
		t.Fatalf("best density = %g", best.Density)
	}
	net, err := radixnet.Build(best.Config)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := net.Symmetric(); !ok {
		t.Fatal("search candidate not symmetric")
	}
}

func TestFacadeInferEngine(t *testing.T) {
	cfg, err := radixnet.NewConfig([]radixnet.System{radixnet.MustSystem(4, 4)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := radixnet.InferFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if engine.NumLayers() != 2 {
		t.Fatalf("layers = %d", engine.NumLayers())
	}
	// The whole inference loop must be drivable through the facade alone:
	// build a batch, run it, read activations.
	in, err := radixnet.SparseBatch(4, 16, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := engine.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 4 || out.Cols() != 16 {
		t.Fatalf("output shape %dx%d", out.Rows(), out.Cols())
	}
	g, err := radixnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := radixnet.InferFromTopology(g, 0.25, -0.05, 32); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeOrderedFactorizations(t *testing.T) {
	fs := radixnet.OrderedFactorizations(12, 16)
	// 12 = (12), (2,6), (6,2), (3,4), (4,3), (2,2,3), (2,3,2), (3,2,2).
	if len(fs) != 8 {
		t.Fatalf("factorizations of 12: got %d (%v)", len(fs), fs)
	}
}

func TestFacadeIsomorphism(t *testing.T) {
	a := radixnet.MixedRadix(radixnet.MustSystem(2, 2))
	b := radixnet.MixedRadix(radixnet.MustSystem(2, 2))
	if _, ok := radixnet.Isomorphic(a, b, 0); !ok {
		t.Fatal("identical topologies not isomorphic")
	}
	c := radixnet.MixedRadix(radixnet.MustSystem(4))
	if _, ok := radixnet.Isomorphic(a, c, 0); ok {
		t.Fatal("different-depth topologies reported isomorphic")
	}
}

// TestFacadeAnalysisOnChallengeNet exercises the analysis API on a
// realistic network: receptive-field growth for a Graph Challenge block is
// 1 → 32 → 1024 (radix-32 fan-out squared covers the layer).
func TestFacadeAnalysisOnChallengeNet(t *testing.T) {
	cfg, err := radixnet.GraphChallengeConfig(1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	net, err := radixnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	profile, err := net.ReachabilityProfile(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 32, 1024, 1024, 1024}
	for i, w := range want {
		if profile[i] != w {
			t.Fatalf("profile = %v, want %v", profile, want)
		}
	}
	values, _ := net.PathSpectrum()
	if len(values) != 1 {
		t.Fatalf("challenge net spectrum has %d values; must be symmetric", len(values))
	}
}

// TestFacadeServing drives the whole serving stack through the facade
// alone: registry, model, micro-batched inference (bit-identical to the
// direct engine), the HTTP API, and graceful shutdown.
func TestFacadeServing(t *testing.T) {
	cfg, err := radixnet.NewConfig([]radixnet.System{radixnet.MustSystem(4, 4)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := radixnet.NewRegistry(radixnet.ServePolicy{MaxBatch: 8, MaxLatency: time.Millisecond})
	m, err := reg.Register("facade", cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	in, err := radixnet.SparseBatch(4, m.InputWidth(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := radixnet.InferFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, m.OutputWidth())
	for r := 0; r < in.Rows(); r++ {
		if err := m.Infer(context.Background(), in.RowSlice(r), out); err != nil {
			t.Fatal(err)
		}
		rowIn, err := radixnet.DenseFromSlice(1, in.Cols(), in.RowSlice(r))
		if err != nil {
			t.Fatal(err)
		}
		want, err := engine.Infer(rowIn)
		if err != nil {
			t.Fatal(err)
		}
		for c, v := range out {
			if v != want.At(0, c) {
				t.Fatalf("row %d col %d: served %v, direct %v", r, c, v, want.At(0, c))
			}
		}
	}

	srv := radixnet.NewServer(reg, "127.0.0.1:0")
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var models map[string][]radixnet.ServedModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(models["models"]) != 1 || models["models"][0].Name != "facade" {
		t.Fatalf("models = %+v", models)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.Infer(context.Background(), in.RowSlice(0), out); !errors.Is(err, radixnet.ErrServeClosed) {
		t.Fatalf("post-shutdown Infer = %v, want ErrServeClosed", err)
	}
}

// TestFacadeEngineBusy pins the exported single-flight error.
func TestFacadeEngineBusy(t *testing.T) {
	if radixnet.ErrEngineBusy == nil || radixnet.ErrQueueFull == nil || radixnet.ErrServeClosed == nil {
		t.Fatal("serving errors not exported")
	}
}

// TestFacadeClusterExports exercises the sharding layer through the public
// API: ring placement stability and a router front end over one backend.
func TestFacadeClusterExports(t *testing.T) {
	ring := radixnet.NewRing(0).Add("a:1", "b:1", "c:1")
	owners := ring.Owners("some-model", 2)
	if len(owners) != 2 || owners[0] == owners[1] {
		t.Fatalf("Owners = %v", owners)
	}

	cfg, err := radixnet.NewConfig([]radixnet.System{radixnet.MustSystem(4, 4)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := radixnet.NewRegistry(radixnet.ServePolicy{MaxLatency: time.Millisecond})
	if _, err := reg.Register("m", cfg, 1); err != nil {
		t.Fatal(err)
	}
	srv := radixnet.NewServer(reg, "127.0.0.1:0")
	backend, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := radixnet.NewRouter(radixnet.RouterConfig{
		Addr:     "127.0.0.1:0",
		Backends: []string{backend},
		Set:      radixnet.ClusterSetConfig{ProbeInterval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := rt.Start()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/v1/infer", "application/json",
		strings.NewReader(`{"model":"m","inputs":[[0,1,0,0,0,0,0,0,0,0,0,0,0,0,0,2]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed infer status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Radix-Backend"); got != backend {
		t.Fatalf("answered by %q, want %q", got, backend)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeKernelSelection exercises the kernel exports: parse names,
// build one engine per kernel family from the same config, and require the
// structure-aware path to match the CSC oracle bit for bit.
func TestFacadeKernelSelection(t *testing.T) {
	for name, want := range map[string]radixnet.InferKernel{
		"":      radixnet.KernelAuto,
		"auto":  radixnet.KernelAuto,
		"csc":   radixnet.KernelCSC,
		"radix": radixnet.KernelRadix,
	} {
		got, err := radixnet.ParseInferKernel(name)
		if err != nil || got != want {
			t.Fatalf("ParseInferKernel(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := radixnet.ParseInferKernel("simd"); err == nil {
		t.Fatal("unknown kernel name accepted")
	}

	cfg, err := radixnet.NewConfig([]radixnet.System{radixnet.MustSystem(4, 4)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := radixnet.InferFromConfigKernel(cfg, radixnet.KernelCSC)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := radixnet.InferFromConfigKernel(cfg, radixnet.KernelRadix)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Kernel() != radixnet.KernelCSC || fast.Kernel() != radixnet.KernelRadix {
		t.Fatalf("kernels = %v, %v", oracle.Kernel(), fast.Kernel())
	}
	in, err := radixnet.SparseBatch(4, 16, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	wantOut, err := oracle.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	gotOut, err := fast.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	w, g := wantOut.Data(), gotOut.Data()
	for i := range w {
		if g[i] != w[i] {
			t.Fatalf("radix facade engine diverged at %d: %x want %x", i, g[i], w[i])
		}
	}
}
