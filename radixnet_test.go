package radixnet_test

import (
	"bytes"
	"math"
	"math/big"
	"strings"
	"testing"

	radixnet "github.com/radix-net/radixnet"
)

// TestPublicQuickstart runs the doc-comment quick start through the facade.
func TestPublicQuickstart(t *testing.T) {
	sys := radixnet.MustSystem(2, 2, 2)
	cfg, err := radixnet.NewConfig([]radixnet.System{sys}, nil)
	if err != nil {
		t.Fatal(err)
	}
	net, err := radixnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := net.Symmetric()
	if !ok || m.Int64() != 1 {
		t.Fatalf("Fig. 1 net: symmetric=%v m=%v", ok, m)
	}
}

// TestEndToEndPipeline is the integration test across the whole stack:
// configure → validate → build → verify Theorem 1 → serialize → reload →
// compare → stream → recount.
func TestEndToEndPipeline(t *testing.T) {
	systems := []radixnet.System{
		radixnet.MustSystem(3, 3, 4),
		radixnet.MustSystem(2, 2, 9),
		radixnet.MustSystem(6, 2),
	}
	shape := []int{1, 2, 2, 2, 2, 2, 2, 2, 1}
	cfg, err := radixnet.NewConfig(systems, shape)
	if err != nil {
		t.Fatal(err)
	}

	// JSON round trip of the configuration.
	data, err := radixnet.MarshalConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2, err := radixnet.UnmarshalConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.String() != cfg.String() {
		t.Fatalf("config JSON round trip: %s vs %s", cfg2, cfg)
	}

	// Build and verify the graph properties.
	net, err := radixnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := net.Symmetric()
	if !ok {
		t.Fatal("built net not symmetric")
	}
	if m.Cmp(radixnet.TheoreticalPaths(cfg)) != 0 {
		t.Fatalf("m = %v, theory %v", m, radixnet.TheoreticalPaths(cfg))
	}
	if !net.PathConnected() {
		t.Fatal("built net not path-connected")
	}
	if got, want := net.Density(), radixnet.Density(cfg); math.Abs(got-want) > 1e-12 {
		t.Fatalf("density %g vs eq.(4) %g", got, want)
	}

	// TSV round trip of the topology.
	var buf bytes.Buffer
	if err := radixnet.WriteTSV(&buf, net); err != nil {
		t.Fatal(err)
	}
	back, err := radixnet.ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !net.Equal(back) {
		t.Fatal("TSV round trip changed the topology")
	}

	// Streamed edges must agree with the built edge count.
	streamed := 0
	err = radixnet.StreamEdges(cfg, func(layer int, u, v int64) bool {
		streamed++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != net.NumEdges() {
		t.Fatalf("streamed %d, built %d", streamed, net.NumEdges())
	}
}

func TestFacadeSystemHelpers(t *testing.T) {
	if _, err := radixnet.NewSystem(1); err == nil {
		t.Fatal("radix 1 accepted")
	}
	s, err := radixnet.ParseSystem("(3,3,4)")
	if err != nil {
		t.Fatal(err)
	}
	if s.Product() != 36 {
		t.Fatalf("product = %d", s.Product())
	}
	u, err := radixnet.UniformSystem(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if u.Product() != 32 {
		t.Fatalf("uniform product = %d", u.Product())
	}
	f, err := radixnet.FactorizeSystem(30)
	if err != nil {
		t.Fatal(err)
	}
	if f.Product() != 30 {
		t.Fatalf("factorized product = %d", f.Product())
	}
}

func TestFacadeEMRAndMixedRadix(t *testing.T) {
	s := radixnet.MustSystem(2, 3)
	mr := radixnet.MixedRadix(s)
	if mr.NumLayers() != 3 || mr.LayerSize(0) != 6 {
		t.Fatalf("mixed radix shape: %v", mr.LayerSizes())
	}
	emr, err := radixnet.EMR(s, s, s)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := emr.Symmetric()
	if !ok {
		t.Fatal("EMR not symmetric")
	}
	if m.Cmp(big.NewInt(36)) != 0 { // (N′)^{M−1} = 6²
		t.Fatalf("m = %v, want 36", m)
	}
}

func TestFacadeDensityHelpers(t *testing.T) {
	if d := radixnet.DensityApproxMu(4, 64); d != 0.0625 {
		t.Fatalf("eq(5) = %g", d)
	}
	if d := radixnet.DensityApproxMuD(4, 3); d != 0.0625 {
		t.Fatalf("eq(6) = %g", d)
	}
	cells := radixnet.DensityMap(2, 3, 1, 2)
	if len(cells) != 4 {
		t.Fatalf("cells = %d", len(cells))
	}
}

func TestFacadePresets(t *testing.T) {
	gc, err := radixnet.GraphChallengeConfig(1024, 6)
	if err != nil {
		t.Fatal(err)
	}
	if gc.NPrime() != 1024 {
		t.Fatalf("N′ = %d", gc.NPrime())
	}
	uc, err := radixnet.UniformConfig(4, 2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if uc.TotalRadices() != 6 {
		t.Fatalf("radices = %d", uc.TotalRadices())
	}
	bs, err := radixnet.BrainConfig(1e-7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Synapses.Sign() <= 0 {
		t.Fatal("brain synapse count not positive")
	}
}

func TestFacadeDOTOutput(t *testing.T) {
	net := radixnet.MixedRadix(radixnet.MustSystem(2, 2))
	var buf bytes.Buffer
	if err := radixnet.WriteDOT(&buf, net, "example"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "digraph") {
		t.Fatal("DOT output missing digraph")
	}
}

// TestDownstreamUsageScenario mirrors how an adopter wires a RadiX-Net into
// their own model code: pick a density target, search the preset space,
// build, and consume the adjacency submatrices.
func TestDownstreamUsageScenario(t *testing.T) {
	// Want ~1/8 density at width 64 → µ = 8, d = 2 → systems (8,8).
	cfg, err := radixnet.UniformConfig(8, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := radixnet.Density(cfg); d != 0.125 {
		t.Fatalf("density = %g, want 0.125", d)
	}
	net, err := radixnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < net.NumSubs(); i++ {
		sub := net.Sub(i)
		if sub.Rows() != 64 || sub.Cols() != 64 {
			t.Fatalf("layer %d shape %dx%d", i, sub.Rows(), sub.Cols())
		}
		for r := 0; r < sub.Rows(); r++ {
			if sub.RowDegree(r) != 8 {
				t.Fatalf("layer %d row %d degree %d, want 8", i, r, sub.RowDegree(r))
			}
		}
	}
}
