package topology

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/radix-net/radixnet/internal/sparse"
)

// mixedRadix8 builds the Fig. 1 topology (N = (2,2,2) on 8 nodes) locally
// to avoid an import cycle with core.
func mixedRadix8(t *testing.T) *FNNT {
	t.Helper()
	g, err := New(
		sparse.SumOfShifts(8, []int{0, 1}),
		sparse.SumOfShifts(8, []int{0, 2}),
		sparse.SumOfShifts(8, []int{0, 4}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestReachabilityProfileMixedRadix(t *testing.T) {
	// A mixed-radix topology's receptive field grows exactly by the product
	// of radices seen so far: 1 → 2 → 4 → 8.
	g := mixedRadix8(t)
	for u := 0; u < 8; u++ {
		p, err := g.ReachabilityProfile(u)
		if err != nil {
			t.Fatal(err)
		}
		want := []int{1, 2, 4, 8}
		for i, w := range want {
			if p[i] != w {
				t.Fatalf("u=%d profile = %v, want %v", u, p, want)
			}
		}
	}
	if _, err := g.ReachabilityProfile(-1); err == nil {
		t.Fatal("negative node accepted")
	}
	if _, err := g.ReachabilityProfile(8); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestDependenceProfileMirrorsReachability(t *testing.T) {
	// Mixed-radix topologies are degree-regular both ways; the dependence
	// profile of any output is 8 → 4 → 2 → 1 reversed.
	g := mixedRadix8(t)
	for v := 0; v < 8; v++ {
		p, err := g.DependenceProfile(v)
		if err != nil {
			t.Fatal(err)
		}
		want := []int{8, 4, 2, 1}
		for i, w := range want {
			if p[i] != w {
				t.Fatalf("v=%d profile = %v, want %v", v, p, want)
			}
		}
	}
	if _, err := g.DependenceProfile(99); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestReachabilityConsistentWithPathCountsProperty(t *testing.T) {
	// A node is reachable iff its exact path count is positive.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randFNNT(rng)
		for u := 0; u < g.LayerSize(0); u++ {
			counts, err := g.PathsFrom(u)
			if err != nil {
				return false
			}
			reach := 0
			for _, c := range counts {
				if c.Sign() > 0 {
					reach++
				}
			}
			p, err := g.ReachabilityProfile(u)
			if err != nil {
				return false
			}
			if p[len(p)-1] != reach {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBottleneckFullAtOutputIffPathConnected(t *testing.T) {
	g := mixedRadix8(t)
	b, err := g.Bottleneck()
	if err != nil {
		t.Fatal(err)
	}
	if b[len(b)-1] != 8 {
		t.Fatalf("bottleneck = %v; path-connected net must end full", b)
	}
	// Disconnected identity chains bottleneck at 1.
	iso, _ := New(sparse.Identity(3), sparse.Identity(3))
	b, err = iso.Bottleneck()
	if err != nil {
		t.Fatal(err)
	}
	if b[len(b)-1] != 1 {
		t.Fatalf("identity-chain bottleneck = %v", b)
	}
}

func TestBottleneckMatchesPathConnectedProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randFNNT(rng)
		b, err := g.Bottleneck()
		if err != nil {
			return false
		}
		full := b[len(b)-1] == g.LayerSize(g.NumLayers()-1)
		return full == g.PathConnected()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPathSpectrumSymmetricSingleton(t *testing.T) {
	g := mixedRadix8(t)
	values, mult := g.PathSpectrum()
	if len(values) != 1 || values[0].Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("spectrum = %v", values)
	}
	if mult[0] != 64 {
		t.Fatalf("multiplicity = %d, want 64 pairs", mult[0])
	}
}

func TestPathSpectrumDetectsAsymmetry(t *testing.T) {
	g := fig4FNNT(t)
	values, mult := g.PathSpectrum()
	if len(values) < 2 {
		t.Fatalf("asymmetric net should have a spread spectrum, got %v", values)
	}
	// Sorted ascending.
	for i := 1; i < len(values); i++ {
		if values[i].Cmp(values[i-1]) <= 0 {
			t.Fatalf("spectrum not ascending: %v", values)
		}
	}
	total := 0
	for _, m := range mult {
		total += m
	}
	if total != g.LayerSize(0)*g.LayerSize(g.NumLayers()-1) {
		t.Fatalf("multiplicities sum to %d", total)
	}
}

func TestSymmetricViaAdjacencyPowerMatchesFactored(t *testing.T) {
	// The definition-literal A^n criterion (§II as printed) must agree with
	// the factored-product verifier on both symmetric and asymmetric nets.
	g := mixedRadix8(t)
	mA, okA := g.SymmetricViaAdjacencyPower()
	mF, okF := g.Symmetric()
	if !okA || !okF || mA.Cmp(mF) != 0 {
		t.Fatalf("criteria disagree: A^n (%v,%v) vs factored (%v,%v)", mA, okA, mF, okF)
	}
	asym := fig4FNNT(t)
	if _, ok := asym.SymmetricViaAdjacencyPower(); ok {
		t.Fatal("A^n criterion accepted an asymmetric net")
	}
}

func TestSymmetricViaAdjacencyPowerProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randFNNT(rng)
		mA, okA := g.SymmetricViaAdjacencyPower()
		mF, okF := g.Symmetric()
		if okA != okF {
			return false
		}
		return !okA || mA.Cmp(mF) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPathSpectrumSingletonIffSymmetricProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randFNNT(rng)
		values, _ := g.PathSpectrum()
		_, sym := g.Symmetric()
		return (len(values) == 1 && values[0].Sign() > 0) == sym
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
