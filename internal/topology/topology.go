// Package topology implements feedforward neural network topologies (FNNTs)
// as defined in §II of the RadiX-Net paper: layered directed graphs
// represented by their ordered lists of adjacency submatrices
// W = (W1, …, Wn), together with the properties the paper reasons about —
// density, path-connectedness, and symmetry (equal path counts between every
// input/output pair, verified with exact big-integer arithmetic).
package topology

import (
	"errors"
	"fmt"
	"math/big"
	"strings"

	"github.com/radix-net/radixnet/internal/sparse"
)

// ErrNoLayers is returned when constructing an FNNT with no adjacency
// submatrices.
var ErrNoLayers = errors.New("topology: an FNNT needs at least one adjacency submatrix")

// ErrShape is returned when consecutive submatrices do not conform
// (cols of Wi must equal rows of Wi+1).
var ErrShape = errors.New("topology: adjacent submatrices do not conform")

// ErrDangling is returned when a submatrix violates the FNNT conditions:
// a zero row means a non-output node with out-degree zero, and a zero
// column means the converse construction of §II does not apply.
var ErrDangling = errors.New("topology: zero row or column in adjacency submatrix")

// FNNT is an immutable feedforward neural network topology with n+1 layers
// of nodes, determined by its n adjacency submatrices. Layer i−1 nodes index
// the rows of Wi; layer i nodes index its columns.
type FNNT struct {
	subs []*sparse.Pattern
}

// New validates the submatrix chain and returns the FNNT it defines.
// Per §II it requires: at least one submatrix, conforming shapes, and no
// zero row or zero column in any Wi (every non-output node has outgoing
// edges and every non-input node has incoming edges).
func New(subs ...*sparse.Pattern) (*FNNT, error) {
	if len(subs) == 0 {
		return nil, ErrNoLayers
	}
	for i, w := range subs {
		if i > 0 && subs[i-1].Cols() != w.Rows() {
			return nil, fmt.Errorf("%w: W%d is %dx%d but W%d has %d rows",
				ErrShape, i, subs[i-1].Rows(), subs[i-1].Cols(), i+1, w.Rows())
		}
		if w.HasZeroRow() || w.HasZeroCol() {
			return nil, fmt.Errorf("%w: W%d", ErrDangling, i+1)
		}
	}
	return &FNNT{subs: append([]*sparse.Pattern(nil), subs...)}, nil
}

// NumSubs returns n, the number of adjacency submatrices (edge layers).
func (g *FNNT) NumSubs() int { return len(g.subs) }

// NumLayers returns n+1, the number of node layers including input and
// output.
func (g *FNNT) NumLayers() int { return len(g.subs) + 1 }

// Sub returns the i-th adjacency submatrix Wi (0-based, shared view).
func (g *FNNT) Sub(i int) *sparse.Pattern { return g.subs[i] }

// LayerSize returns |Ui|, the number of nodes in layer i ∈ [0, NumLayers()).
func (g *FNNT) LayerSize(i int) int {
	if i == 0 {
		return g.subs[0].Rows()
	}
	return g.subs[i-1].Cols()
}

// LayerSizes returns (|U0|, …, |Un|).
func (g *FNNT) LayerSizes() []int {
	sizes := make([]int, g.NumLayers())
	for i := range sizes {
		sizes[i] = g.LayerSize(i)
	}
	return sizes
}

// NumNodes returns the total node count Σ|Ui|.
func (g *FNNT) NumNodes() int {
	total := 0
	for i := 0; i < g.NumLayers(); i++ {
		total += g.LayerSize(i)
	}
	return total
}

// NumEdges returns the total edge count Σ nnz(Wi).
func (g *FNNT) NumEdges() int {
	total := 0
	for _, w := range g.subs {
		total += w.NNZ()
	}
	return total
}

// DenseEdges returns the edge count of the fully-connected FNNT on the same
// layer sizes, Σ|Ui−1||Ui|.
func (g *FNNT) DenseEdges() int {
	total := 0
	for _, w := range g.subs {
		total += w.Rows() * w.Cols()
	}
	return total
}

// Density returns NumEdges/DenseEdges, the paper's density of an FNNT (§II).
// It lies in (0, 1], with 1 attained exactly by fully-connected topologies.
func (g *FNNT) Density() float64 {
	return float64(g.NumEdges()) / float64(g.DenseEdges())
}

// MinDensity returns the lowest possible density for the layer sizes of g,
// Σ|Ui−1| / Σ|Ui−1||Ui| (§II): each non-output node keeps a single edge.
func (g *FNNT) MinDensity() float64 {
	num := 0
	for _, w := range g.subs {
		num += w.Rows()
	}
	return float64(num) / float64(g.DenseEdges())
}

// Concat identifies g's output layer with h's input layer and returns the
// combined FNNT, the operation that assembles extended mixed-radix
// topologies (§III.A). The layers must have equal size.
func Concat(g, h *FNNT) (*FNNT, error) {
	if g.LayerSize(g.NumLayers()-1) != h.LayerSize(0) {
		return nil, fmt.Errorf("%w: output layer has %d nodes, next input layer has %d",
			ErrShape, g.LayerSize(g.NumLayers()-1), h.LayerSize(0))
	}
	subs := make([]*sparse.Pattern, 0, len(g.subs)+len(h.subs))
	subs = append(subs, g.subs...)
	subs = append(subs, h.subs...)
	return New(subs...)
}

// KronLift applies eq. (3) of the paper: given a dense shape
// D = (D0, …, Dn) with one entry per node layer, it returns the FNNT with
// submatrices W*i ⊗ Wi where W*i is the Di−1×Di all-ones matrix.
func (g *FNNT) KronLift(shape []int) (*FNNT, error) {
	if len(shape) != g.NumLayers() {
		return nil, fmt.Errorf("topology: shape has %d entries, want %d (one per node layer)",
			len(shape), g.NumLayers())
	}
	for i, d := range shape {
		if d < 1 {
			return nil, fmt.Errorf("topology: shape entry D%d = %d must be positive", i, d)
		}
	}
	subs := make([]*sparse.Pattern, len(g.subs))
	for i, w := range g.subs {
		subs[i] = sparse.Ones(shape[i], shape[i+1]).Kron(w)
	}
	return New(subs...)
}

// PathCounts returns the exact |U0|×|Un| matrix of path counts between every
// input and output node: the big-integer product W1·W2·…·Wn.
func (g *FNNT) PathCounts() *sparse.BigDense {
	acc := sparse.BigFromPattern(g.subs[0])
	for _, w := range g.subs[1:] {
		next, err := acc.MulPattern(w)
		if err != nil {
			panic("topology: internal shape invariant violated: " + err.Error())
		}
		acc = next
	}
	return acc
}

// Symmetric reports whether the topology satisfies the paper's symmetry
// property — the same number m of paths between every input/output pair —
// and returns m when it does. Symmetry implies path-connectedness.
func (g *FNNT) Symmetric() (*big.Int, bool) {
	return g.PathCounts().AllEqual()
}

// SymmetricStreaming verifies symmetry one source at a time using
// O(maxWidth) big-integer memory instead of the O(|U0|·width) of
// PathCounts. It propagates a basis vector from each input node and checks
// that every propagation ends all-equal to the same constant.
func (g *FNNT) SymmetricStreaming() (*big.Int, bool) {
	var m *big.Int
	n0 := g.LayerSize(0)
	for u := 0; u < n0; u++ {
		counts, err := g.PathsFrom(u)
		if err != nil {
			return nil, false
		}
		v, ok := counts.AllEqual()
		if !ok {
			return nil, false
		}
		if m == nil {
			m = v
		} else if m.Cmp(v) != 0 {
			return nil, false
		}
	}
	return m, m != nil && m.Sign() > 0
}

// PathsFrom returns the exact path counts from input node u to every output
// node, as a big-integer vector over Un.
func (g *FNNT) PathsFrom(u int) (sparse.BigVec, error) {
	if u < 0 || u >= g.LayerSize(0) {
		return nil, fmt.Errorf("topology: input node %d out of range [0,%d)", u, g.LayerSize(0))
	}
	vec := sparse.E(g.LayerSize(0), u)
	for _, w := range g.subs {
		next, err := vec.MulPattern(w)
		if err != nil {
			return nil, err
		}
		vec = next
	}
	return vec, nil
}

// PathsBetween returns the exact number of paths from input node u to output
// node v.
func (g *FNNT) PathsBetween(u, v int) (*big.Int, error) {
	vec, err := g.PathsFrom(u)
	if err != nil {
		return nil, err
	}
	if v < 0 || v >= len(vec) {
		return nil, fmt.Errorf("topology: output node %d out of range [0,%d)", v, len(vec))
	}
	return new(big.Int).Set(vec[v]), nil
}

// PathConnected reports whether every output depends on every input: for
// all u ∈ U0 and v ∈ Un there is a path from u to v. It uses boolean
// reachability (pattern products), which never overflows.
func (g *FNNT) PathConnected() bool {
	acc := g.subs[0]
	for _, w := range g.subs[1:] {
		next, err := acc.Mul(w)
		if err != nil {
			panic("topology: internal shape invariant violated: " + err.Error())
		}
		acc = next
	}
	return acc.NNZ() == acc.Rows()*acc.Cols()
}

// Assemble builds the full adjacency matrix A of the FNNT (eq. 11): an
// M×M pattern, M = Σ|Ui|, with Wi placed on the block superdiagonal in
// layer order. Nodes are numbered layer by layer.
func (g *FNNT) Assemble() *sparse.Pattern {
	offsets := make([]int, g.NumLayers()+1)
	for i := 0; i < g.NumLayers(); i++ {
		offsets[i+1] = offsets[i] + g.LayerSize(i)
	}
	m := offsets[g.NumLayers()]
	coo, err := sparse.NewCOO(m, m)
	if err != nil {
		panic("topology: " + err.Error())
	}
	for i, w := range g.subs {
		rowOff, colOff := offsets[i], offsets[i+1]
		for r := 0; r < w.Rows(); r++ {
			for _, c := range w.Row(r) {
				if err := coo.Add(rowOff+r, colOff+c); err != nil {
					panic("topology: " + err.Error())
				}
			}
		}
	}
	return coo.Pattern()
}

// Equal reports whether two FNNTs have identical submatrix chains.
func (g *FNNT) Equal(h *FNNT) bool {
	if len(g.subs) != len(h.subs) {
		return false
	}
	for i, w := range g.subs {
		if !w.Equal(h.subs[i]) {
			return false
		}
	}
	return true
}

// DegreeStats summarizes the out-degree distribution of one edge layer.
type DegreeStats struct {
	Min, Max int
	Mean     float64
}

// OutDegrees returns per-layer out-degree statistics, one entry per
// adjacency submatrix.
func (g *FNNT) OutDegrees() []DegreeStats {
	stats := make([]DegreeStats, len(g.subs))
	for i, w := range g.subs {
		s := DegreeStats{Min: w.Cols() + 1}
		total := 0
		for r := 0; r < w.Rows(); r++ {
			d := w.RowDegree(r)
			total += d
			if d < s.Min {
				s.Min = d
			}
			if d > s.Max {
				s.Max = d
			}
		}
		s.Mean = float64(total) / float64(w.Rows())
		stats[i] = s
	}
	return stats
}

// String summarizes the topology as layer sizes, edge count and density.
func (g *FNNT) String() string {
	var b strings.Builder
	b.WriteString("FNNT[")
	for i, s := range g.LayerSizes() {
		if i > 0 {
			b.WriteString("→")
		}
		fmt.Fprintf(&b, "%d", s)
	}
	fmt.Fprintf(&b, "] edges=%d density=%.4g", g.NumEdges(), g.Density())
	return b.String()
}
