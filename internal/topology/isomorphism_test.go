package topology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/radix-net/radixnet/internal/sparse"
)

func TestIsomorphismIdentity(t *testing.T) {
	g := fig4FNNT(t)
	perms, ok := IsomorphicByLayerPermutation(g, g, 0)
	if !ok {
		t.Fatal("a graph must be isomorphic to itself")
	}
	relabeled, err := g.Relabel(perms)
	if err != nil {
		t.Fatal(err)
	}
	if !relabeled.Equal(g) {
		t.Fatal("witness permutations do not reproduce the target")
	}
}

func TestIsomorphismDetectsRelabeling(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randFNNT(rng)
		// Random per-layer relabeling of g.
		perms := make([][]int, g.NumLayers())
		for i := range perms {
			perms[i] = rng.Perm(g.LayerSize(i))
		}
		h, err := g.Relabel(perms)
		if err != nil {
			return false
		}
		witness, ok := IsomorphicByLayerPermutation(g, h, 0)
		if !ok {
			return false
		}
		back, err := g.Relabel(witness)
		if err != nil {
			return false
		}
		return back.Equal(h)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIsomorphismRejectsDifferentGraphs(t *testing.T) {
	// Same layer sizes and edge counts, structurally different: a cyclic
	// shift chain vs a sum-of-shifts pattern with differing path structure.
	a, err := New(sparse.SumOfShifts(4, []int{0, 1}), sparse.SumOfShifts(4, []int{0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(sparse.SumOfShifts(4, []int{0, 2}), sparse.SumOfShifts(4, []int{0, 2}))
	if err != nil {
		t.Fatal(err)
	}
	// a's two-hop reachability from node 0 is {0,1,2}; b's is {0,2} (offsets
	// 0/2 compose to 0/2/4≡0): different path-count multisets, hence not
	// isomorphic.
	if _, ok := IsomorphicByLayerPermutation(a, b, 0); ok {
		t.Fatal("non-isomorphic graphs reported isomorphic")
	}
}

func TestIsomorphismRejectsShapeMismatch(t *testing.T) {
	a, _ := New(sparse.Ones(2, 3))
	b, _ := New(sparse.Ones(3, 2))
	if _, ok := IsomorphicByLayerPermutation(a, b, 0); ok {
		t.Fatal("shape-mismatched graphs reported isomorphic")
	}
	c, _ := New(sparse.Ones(2, 3), sparse.Ones(3, 2))
	if _, ok := IsomorphicByLayerPermutation(a, c, 0); ok {
		t.Fatal("depth-mismatched graphs reported isomorphic")
	}
}

func TestIsomorphismRespectsNodeBudget(t *testing.T) {
	g := fig4FNNT(t)
	if _, ok := IsomorphicByLayerPermutation(g, g, 5); ok {
		t.Fatal("budget of 5 nodes must refuse an 11-node search")
	}
}

// TestErratumEaOrientationsIsomorphic is the executable form of DESIGN.md
// erratum E-a: the mixed-radix topology built with the paper's literal
// eq. (2) orientation (edges j → j − n·ν) is isomorphic to the one built
// from the stated edge rule (j → j + n·ν) via the relabeling j ↦ −j mod N′.
func TestErratumEaOrientationsIsomorphic(t *testing.T) {
	n := 8
	offsets := [][]int{{0, 1}, {0, 2}, {0, 4}} // Fig. 1's layers
	plus := make([]*sparse.Pattern, len(offsets))
	minus := make([]*sparse.Pattern, len(offsets))
	for i, offs := range offsets {
		neg := make([]int, len(offs))
		for j, o := range offs {
			neg[j] = -o
		}
		plus[i] = sparse.SumOfShifts(n, offs)
		minus[i] = sparse.SumOfShifts(n, neg)
	}
	gPlus, err := New(plus...)
	if err != nil {
		t.Fatal(err)
	}
	gMinus, err := New(minus...)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic witness: j ↦ (n − j) mod n at every layer.
	neg := make([]int, n)
	for j := range neg {
		neg[j] = (n - j) % n
	}
	perms := [][]int{neg, neg, neg, neg}
	relabeled, err := gPlus.Relabel(perms)
	if err != nil {
		t.Fatal(err)
	}
	if !relabeled.Equal(gMinus) {
		t.Fatal("negation relabeling does not map +shift topology to −shift topology")
	}
	// And the search finds a witness on its own.
	if _, ok := IsomorphicByLayerPermutation(gPlus, gMinus, 0); !ok {
		t.Fatal("orientation twins not detected as isomorphic")
	}
}

func TestRelabelValidation(t *testing.T) {
	g := fig4FNNT(t)
	if _, err := g.Relabel([][]int{{0, 1, 2}}); err == nil {
		t.Fatal("wrong permutation count accepted")
	}
}

func TestRelabelPreservesInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randFNNT(rng)
		perms := make([][]int, g.NumLayers())
		for i := range perms {
			perms[i] = rng.Perm(g.LayerSize(i))
		}
		h, err := g.Relabel(perms)
		if err != nil {
			return false
		}
		if h.NumEdges() != g.NumEdges() || h.Density() != g.Density() {
			return false
		}
		// Symmetry and path-connectedness are label-independent.
		mg, okg := g.Symmetric()
		mh, okh := h.Symmetric()
		if okg != okh {
			return false
		}
		if okg && mg.Cmp(mh) != 0 {
			return false
		}
		return g.PathConnected() == h.PathConnected()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
