package topology

import (
	"errors"
	"math/big"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/radix-net/radixnet/internal/sparse"
)

// mustPattern builds a pattern or fails the test.
func mustPattern(t *testing.T, rows, cols int, rowCols [][]int) *sparse.Pattern {
	t.Helper()
	p, err := sparse.NewPattern(rows, cols, rowCols)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// fig4W is the adjacency submatrix W of the paper's Figure 4 example: the
// restriction G1 of G to U0 ∪ U1 with |U0| = |U1| = 3 and
//
//	W = [1 1 1; 1 0 1; 1 1 0]
func fig4W(t *testing.T) *sparse.Pattern {
	return mustPattern(t, 3, 3, [][]int{{0, 1, 2}, {0, 2}, {0, 1}})
}

// fig4FNNT assembles the full Figure 4 graph on layers (3,3,2,3):
// U0→U1 is W above, U1→U2 is all-ones 3×2, U2→U3 is all-ones 2×3.
func fig4FNNT(t *testing.T) *FNNT {
	g, err := New(fig4W(t), sparse.Ones(3, 2), sparse.Ones(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); !errors.Is(err, ErrNoLayers) {
		t.Fatalf("empty FNNT error = %v", err)
	}
	// Nonconforming chain.
	if _, err := New(sparse.Ones(2, 3), sparse.Ones(4, 2)); !errors.Is(err, ErrShape) {
		t.Fatalf("shape error = %v", err)
	}
	// Zero row (dangling non-output node) — violates the out-degree rule.
	zr := mustPattern(t, 2, 2, [][]int{{0, 1}, nil})
	if _, err := New(zr); !errors.Is(err, ErrDangling) {
		t.Fatalf("zero-row error = %v", err)
	}
	// Zero column — violates the converse construction condition of §II.
	zc := mustPattern(t, 2, 2, [][]int{{0}, {0}})
	if _, err := New(zc); !errors.Is(err, ErrDangling) {
		t.Fatalf("zero-col error = %v", err)
	}
}

func TestLayerAccounting(t *testing.T) {
	g := fig4FNNT(t)
	if g.NumSubs() != 3 || g.NumLayers() != 4 {
		t.Fatalf("subs=%d layers=%d", g.NumSubs(), g.NumLayers())
	}
	want := []int{3, 3, 2, 3}
	sizes := g.LayerSizes()
	for i, w := range want {
		if sizes[i] != w {
			t.Fatalf("LayerSizes = %v, want %v", sizes, want)
		}
		if g.LayerSize(i) != w {
			t.Fatalf("LayerSize(%d) = %d, want %d", i, g.LayerSize(i), w)
		}
	}
	if g.NumNodes() != 11 {
		t.Fatalf("NumNodes = %d, want 11 (the u1…u11 of Fig. 4)", g.NumNodes())
	}
	if g.NumEdges() != 7+6+6 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if g.DenseEdges() != 9+6+6 {
		t.Fatalf("DenseEdges = %d", g.DenseEdges())
	}
}

func TestDensityBounds(t *testing.T) {
	g := fig4FNNT(t)
	d := g.Density()
	if d <= 0 || d > 1 {
		t.Fatalf("density %g out of (0,1]", d)
	}
	wantD := float64(19) / float64(21)
	if d != wantD {
		t.Fatalf("density = %g, want %g", d, wantD)
	}
	min := g.MinDensity()
	if min >= d {
		t.Fatalf("MinDensity %g should be below actual %g", min, d)
	}
	// A fully-connected FNNT has density exactly 1.
	full, _ := New(sparse.Ones(3, 4), sparse.Ones(4, 2))
	if full.Density() != 1 {
		t.Fatalf("dense density = %g", full.Density())
	}
	// And the single-edge-per-node topology attains MinDensity exactly.
	chain, _ := New(sparse.Identity(4), sparse.Identity(4))
	if chain.Density() != chain.MinDensity() {
		t.Fatalf("identity chain density %g != min %g", chain.Density(), chain.MinDensity())
	}
}

func TestAssembleFig4(t *testing.T) {
	// Figure 4 gives the full adjacency matrix A explicitly: block
	// superdiagonal with W, 1_{3,2}, 1_{2,3}.
	g := fig4FNNT(t)
	a := g.Assemble()
	if a.Rows() != 11 || a.Cols() != 11 {
		t.Fatalf("A is %dx%d, want 11x11", a.Rows(), a.Cols())
	}
	if a.NNZ() != g.NumEdges() {
		t.Fatalf("A nnz = %d, want %d", a.NNZ(), g.NumEdges())
	}
	// Block (0,1): W at rows 0–2, cols 3–5.
	w := fig4W(t)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if a.Has(r, 3+c) != w.Has(r, c) {
				t.Fatalf("A block(0,1) wrong at (%d,%d)", r, c)
			}
		}
	}
	// Block (1,2): ones at rows 3–5, cols 6–7.
	for r := 3; r < 6; r++ {
		for c := 6; c < 8; c++ {
			if !a.Has(r, c) {
				t.Fatalf("A block(1,2) missing (%d,%d)", r, c)
			}
		}
	}
	// Nothing below the superdiagonal blocks.
	for r := 3; r < 11; r++ {
		for c := 0; c < 3; c++ {
			if a.Has(r, c) {
				t.Fatalf("A has entry below diagonal at (%d,%d)", r, c)
			}
		}
	}
}

// bruteForcePaths counts u→v paths by depth-first enumeration, the oracle
// for PathCounts on small graphs.
func bruteForcePaths(g *FNNT, u, v int) int {
	var rec func(layer, node int) int
	rec = func(layer, node int) int {
		if layer == g.NumSubs() {
			if node == v {
				return 1
			}
			return 0
		}
		total := 0
		for _, next := range g.Sub(layer).Row(node) {
			total += rec(layer+1, next)
		}
		return total
	}
	return rec(0, u)
}

func TestPathCountsAgainstBruteForceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randFNNT(rng)
		counts := g.PathCounts()
		for u := 0; u < g.LayerSize(0); u++ {
			for v := 0; v < g.LayerSize(g.NumLayers()-1); v++ {
				if counts.At(u, v).Int64() != int64(bruteForcePaths(g, u, v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// randFNNT draws a small random valid FNNT (patched so no zero rows/cols).
func randFNNT(rng *rand.Rand) *FNNT {
	layers := 2 + rng.Intn(3)
	sizes := make([]int, layers+1)
	for i := range sizes {
		sizes[i] = 2 + rng.Intn(4)
	}
	subs := make([]*sparse.Pattern, layers)
	for l := range subs {
		rows, cols := sizes[l], sizes[l+1]
		rowCols := make([][]int, rows)
		colHit := make([]bool, cols)
		for r := range rowCols {
			c := rng.Intn(cols)
			rowCols[r] = append(rowCols[r], c)
			colHit[c] = true
			for cc := 0; cc < cols; cc++ {
				if rng.Float64() < 0.4 {
					rowCols[r] = append(rowCols[r], cc)
					colHit[cc] = true
				}
			}
		}
		for c, hit := range colHit {
			if !hit {
				r := rng.Intn(rows)
				rowCols[r] = append(rowCols[r], c)
			}
		}
		p, err := sparse.NewPattern(rows, cols, rowCols)
		if err != nil {
			panic(err)
		}
		subs[l] = p
	}
	g, err := New(subs...)
	if err != nil {
		panic(err)
	}
	return g
}

func TestSymmetricDetectsAsymmetry(t *testing.T) {
	// Fig. 4's graph is NOT symmetric (W has unequal row sums feeding a
	// symmetric tail).
	g := fig4FNNT(t)
	if _, ok := g.Symmetric(); ok {
		t.Fatal("Fig. 4 graph misreported as symmetric")
	}
	// A chain of ones IS symmetric with m = product of interior sizes.
	h, _ := New(sparse.Ones(2, 3), sparse.Ones(3, 4), sparse.Ones(4, 2))
	m, ok := h.Symmetric()
	if !ok {
		t.Fatal("ones chain must be symmetric")
	}
	if m.Int64() != 12 {
		t.Fatalf("m = %v, want 12", m)
	}
}

func TestSymmetricStreamingMatchesDenseProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randFNNT(rng)
		md, okd := g.Symmetric()
		ms, oks := g.SymmetricStreaming()
		if okd != oks {
			return false
		}
		if okd && md.Cmp(ms) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPathsFromAndBetween(t *testing.T) {
	g := fig4FNNT(t)
	vec, err := g.PathsFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		want := int64(bruteForcePaths(g, 0, v))
		if vec[v].Int64() != want {
			t.Fatalf("PathsFrom(0)[%d] = %v, want %d", v, vec[v], want)
		}
		got, err := g.PathsBetween(0, v)
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != want {
			t.Fatalf("PathsBetween(0,%d) = %v, want %d", v, got, want)
		}
	}
	if _, err := g.PathsFrom(-1); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := g.PathsFrom(3); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := g.PathsBetween(0, 99); err == nil {
		t.Fatal("out-of-range target accepted")
	}
}

func TestPathConnected(t *testing.T) {
	g := fig4FNNT(t)
	if !g.PathConnected() {
		t.Fatal("Fig. 4 graph is path-connected (ones tail)")
	}
	// Two parallel identity chains never mix: not path-connected.
	iso, err := New(sparse.Identity(2), sparse.Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	if iso.PathConnected() {
		t.Fatal("disjoint identity chains misreported as path-connected")
	}
}

func TestSymmetryImpliesPathConnectedProperty(t *testing.T) {
	// The paper's §II: "If G is symmetric, it is path-connected."
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randFNNT(rng)
		if m, ok := g.Symmetric(); ok && m.Sign() > 0 {
			return g.PathConnected()
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcat(t *testing.T) {
	a, _ := New(sparse.Ones(2, 3))
	b, _ := New(sparse.Ones(3, 4))
	g, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumSubs() != 2 || g.LayerSize(2) != 4 {
		t.Fatal("concat wrong shape")
	}
	if _, err := Concat(a, a); !errors.Is(err, ErrShape) {
		t.Fatal("mismatched concat accepted")
	}
}

func TestConcatMultipliesPathCounts(t *testing.T) {
	// Path counts compose multiplicatively through a shared layer: the
	// induction at the heart of Lemma 2.
	rng := rand.New(rand.NewSource(9))
	a := randFNNT(rng)
	mid := a.LayerSize(a.NumLayers() - 1)
	bSub := sparse.Ones(mid, 3)
	b, _ := New(bSub)
	g, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// counts_g[u][v] = Σ_w counts_a[u][w] · counts_b[w][v]; with b = ones,
	// that's the row sum of counts_a.
	ca := a.PathCounts()
	cg := g.PathCounts()
	for u := 0; u < g.LayerSize(0); u++ {
		rowSum := new(big.Int)
		for w := 0; w < mid; w++ {
			rowSum.Add(rowSum, ca.At(u, w))
		}
		for v := 0; v < 3; v++ {
			if cg.At(u, v).Cmp(rowSum) != 0 {
				t.Fatalf("concat path count (%d,%d) = %v, want %v", u, v, cg.At(u, v), rowSum)
			}
		}
	}
}

func TestKronLift(t *testing.T) {
	base, _ := New(sparse.Identity(3), sparse.Identity(3))
	g, err := base.KronLift([]int{2, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{6, 9, 6}
	for i, w := range want {
		if g.LayerSize(i) != w {
			t.Fatalf("lifted sizes = %v, want %v", g.LayerSizes(), want)
		}
	}
	// Edge count multiplies by Di−1·Di per layer.
	if g.NumEdges() != 2*3*3+3*2*3 {
		t.Fatalf("lifted edges = %d", g.NumEdges())
	}
	if _, err := base.KronLift([]int{1, 2}); err == nil {
		t.Fatal("wrong shape length accepted")
	}
	if _, err := base.KronLift([]int{1, 0, 1}); err == nil {
		t.Fatal("non-positive shape accepted")
	}
}

func TestKronLiftPreservesSymmetryProperty(t *testing.T) {
	// Lifting any symmetric FNNT by ones blocks keeps it symmetric and
	// multiplies m by the interior shape product — Theorem 1's mechanism.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		layers := 1 + rng.Intn(3)
		subs := make([]*sparse.Pattern, layers)
		for i := range subs {
			subs[i] = sparse.SumOfShifts(n, []int{0, 1 + rng.Intn(n-1)})
		}
		g, err := New(subs...)
		if err != nil {
			return false
		}
		m0, ok0 := g.Symmetric()
		if !ok0 {
			// shift sums are circulant: always symmetric? Only if the shift
			// set generates… not guaranteed; skip non-symmetric draws.
			return true
		}
		shape := make([]int, layers+1)
		interior := big.NewInt(1)
		for i := range shape {
			shape[i] = 1 + rng.Intn(3)
			if i > 0 && i < layers {
				interior.Mul(interior, big.NewInt(int64(shape[i])))
			}
		}
		lifted, err := g.KronLift(shape)
		if err != nil {
			return false
		}
		m1, ok1 := lifted.Symmetric()
		if !ok1 {
			return false
		}
		want := new(big.Int).Mul(m0, interior)
		return m1.Cmp(want) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEqual(t *testing.T) {
	a := fig4FNNT(t)
	b := fig4FNNT(t)
	if !a.Equal(b) {
		t.Fatal("identical FNNTs unequal")
	}
	c, _ := New(sparse.Ones(3, 3))
	if a.Equal(c) {
		t.Fatal("different FNNTs equal")
	}
}

func TestOutDegrees(t *testing.T) {
	g := fig4FNNT(t)
	stats := g.OutDegrees()
	if len(stats) != 3 {
		t.Fatalf("stats len = %d", len(stats))
	}
	if stats[0].Min != 2 || stats[0].Max != 3 {
		t.Fatalf("layer 1 degrees = %+v", stats[0])
	}
	if stats[1].Mean != 2 {
		t.Fatalf("layer 2 mean = %g", stats[1].Mean)
	}
}

func TestStringSummary(t *testing.T) {
	g := fig4FNNT(t)
	s := g.String()
	if !strings.Contains(s, "3→3→2→3") || !strings.Contains(s, "edges=19") {
		t.Fatalf("String = %q", s)
	}
}
