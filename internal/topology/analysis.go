package topology

import (
	"fmt"
	"math/big"

	"github.com/radix-net/radixnet/internal/sparse"
)

// ReachabilityProfile returns, for input node u, how many nodes of each
// layer are reachable from u — the growth curve of u's "receptive field".
// For a path-connected FNNT the final entry equals the output layer size;
// for mixed-radix topologies the profile grows exactly by the layer radix
// (∏ of radices seen so far), which tests pin.
func (g *FNNT) ReachabilityProfile(u int) ([]int, error) {
	if u < 0 || u >= g.LayerSize(0) {
		return nil, fmt.Errorf("topology: input node %d out of range [0,%d)", u, g.LayerSize(0))
	}
	profile := make([]int, g.NumLayers())
	frontier := make([]bool, g.LayerSize(0))
	frontier[u] = true
	profile[0] = 1
	for l := 0; l < g.NumSubs(); l++ {
		w := g.Sub(l)
		next := make([]bool, w.Cols())
		count := 0
		for r, in := range frontier {
			if !in {
				continue
			}
			for _, c := range w.Row(r) {
				if !next[c] {
					next[c] = true
					count++
				}
			}
		}
		profile[l+1] = count
		frontier = next
	}
	return profile, nil
}

// DependenceProfile returns, for output node v, how many nodes of each
// layer can reach v — the mirror image of ReachabilityProfile, indexed
// from the input layer (entry 0) to the output layer (entry n, always 1).
func (g *FNNT) DependenceProfile(v int) ([]int, error) {
	out := g.LayerSize(g.NumLayers() - 1)
	if v < 0 || v >= out {
		return nil, fmt.Errorf("topology: output node %d out of range [0,%d)", v, out)
	}
	profile := make([]int, g.NumLayers())
	frontier := make([]bool, out)
	frontier[v] = true
	profile[g.NumLayers()-1] = 1
	for l := g.NumSubs() - 1; l >= 0; l-- {
		w := g.Sub(l)
		prev := make([]bool, w.Rows())
		count := 0
		for r := 0; r < w.Rows(); r++ {
			for _, c := range w.Row(r) {
				if frontier[c] {
					if !prev[r] {
						prev[r] = true
						count++
					}
					break
				}
			}
		}
		profile[l] = count
		frontier = prev
	}
	return profile, nil
}

// Bottleneck returns the smallest per-layer reachable-set size over all
// input nodes at each layer — a diagnostic for information flow: a
// path-connected topology must end with every bottleneck entry equal to
// the full layer width at the output.
func (g *FNNT) Bottleneck() ([]int, error) {
	n0 := g.LayerSize(0)
	var minProfile []int
	for u := 0; u < n0; u++ {
		p, err := g.ReachabilityProfile(u)
		if err != nil {
			return nil, err
		}
		if minProfile == nil {
			minProfile = p
			continue
		}
		for i, v := range p {
			if v < minProfile[i] {
				minProfile[i] = v
			}
		}
	}
	return minProfile, nil
}

// SymmetricViaAdjacencyPower verifies the symmetry criterion exactly as §II
// prints it: assemble the full adjacency matrix A (eq. 11), raise it to the
// n-th power with exact big-integer arithmetic, and check that the only
// nonzero block is a constant m·1 block in rows U0 × columns Un. It is the
// slow, definition-literal cross-check for Symmetric(), which works on the
// factored submatrices instead; a property test pins their agreement.
func (g *FNNT) SymmetricViaAdjacencyPower() (*big.Int, bool) {
	a := g.Assemble()
	power := sparse.BigFromPattern(a)
	for i := 1; i < g.NumSubs(); i++ {
		next, err := power.MulPattern(a)
		if err != nil {
			panic("topology: assembled matrix is square by construction: " + err.Error())
		}
		power = next
	}
	// Offsets of the input rows and output columns within A's node order.
	inputEnd := g.LayerSize(0)
	outputStart := g.NumNodes() - g.LayerSize(g.NumLayers()-1)
	var m *big.Int
	for r := 0; r < power.Rows(); r++ {
		for c := 0; c < power.Cols(); c++ {
			v := power.At(r, c)
			inBlock := r < inputEnd && c >= outputStart
			if !inBlock {
				if v.Sign() != 0 {
					return nil, false
				}
				continue
			}
			if m == nil {
				m = new(big.Int).Set(v)
			} else if m.Cmp(v) != 0 {
				return nil, false
			}
		}
	}
	if m == nil || m.Sign() <= 0 {
		return nil, false
	}
	return m, true
}

// PathSpectrum returns the multiset of distinct path-count values appearing
// in the exact path-count matrix, sorted ascending, together with their
// multiplicities. A symmetric topology has a one-element spectrum; the
// spectrum's spread quantifies *how far* an arbitrary FNNT is from
// symmetry, which the X-Net comparisons report.
func (g *FNNT) PathSpectrum() ([]*big.Int, []int) {
	counts := g.PathCounts()
	freq := make(map[string]*struct {
		v *big.Int
		n int
	})
	for r := 0; r < counts.Rows(); r++ {
		for c := 0; c < counts.Cols(); c++ {
			v := counts.At(r, c)
			k := v.String()
			if e, ok := freq[k]; ok {
				e.n++
			} else {
				freq[k] = &struct {
					v *big.Int
					n int
				}{v: new(big.Int).Set(v), n: 1}
			}
		}
	}
	values := make([]*big.Int, 0, len(freq))
	for _, e := range freq {
		values = append(values, e.v)
	}
	// Sort ascending by big.Int comparison (insertion sort; spectra are small).
	for i := 1; i < len(values); i++ {
		for j := i; j > 0 && values[j].Cmp(values[j-1]) < 0; j-- {
			values[j], values[j-1] = values[j-1], values[j]
		}
	}
	mult := make([]int, len(values))
	for i, v := range values {
		mult[i] = freq[v.String()].n
	}
	return values, mult
}
