package topology

import (
	"sort"

	"github.com/radix-net/radixnet/internal/sparse"
)

// IsomorphicByLayerPermutation reports whether two FNNTs are isomorphic as
// layered graphs: whether there exist per-layer node relabelings
// π0, …, πn such that relabeling g's layers turns every adjacency
// submatrix of g into the corresponding submatrix of h. The paper's
// definitions identify topologies "up to a permutation of indices"; this
// checker makes that identification executable — in particular it proves
// that the two orientations of eq. (2) (see DESIGN.md erratum E-a) generate
// isomorphic mixed-radix topologies.
//
// The search uses degree-profile partitioning to prune, then backtracking
// over candidate permutations layer by layer. It is intended for the
// small-to-medium topologies of tests and examples (cost grows with the
// automorphism richness of the graph); it returns the witnessing
// permutations on success.
func IsomorphicByLayerPermutation(g, h *FNNT, maxNodes int) ([][]int, bool) {
	if g.NumSubs() != h.NumSubs() {
		return nil, false
	}
	if maxNodes > 0 && (g.NumNodes() > maxNodes || h.NumNodes() > maxNodes) {
		return nil, false
	}
	for i := 0; i < g.NumLayers(); i++ {
		if g.LayerSize(i) != h.LayerSize(i) {
			return nil, false
		}
	}
	for i := 0; i < g.NumSubs(); i++ {
		if g.Sub(i).NNZ() != h.Sub(i).NNZ() {
			return nil, false
		}
	}

	n := g.NumLayers()
	perms := make([][]int, n)
	// Backtrack over layers: choose π0, then for each subsequent layer
	// choose πi consistent with the already-fixed πi−1 on submatrix i−1.
	var solve func(layer int) bool
	solve = func(layer int) bool {
		if layer == n {
			return true
		}
		size := g.LayerSize(layer)
		candidates := permCandidates(g, h, layer)
		perm := make([]int, size)
		used := make([]bool, size)
		var assign func(node int) bool
		assign = func(node int) bool {
			if node == size {
				perms[layer] = append([]int(nil), perm...)
				if layer > 0 && !consistent(g.Sub(layer-1), h.Sub(layer-1), perms[layer-1], perm) {
					return false
				}
				if solve(layer + 1) {
					return true
				}
				return false
			}
			for _, cand := range candidates[node] {
				if used[cand] {
					continue
				}
				perm[node] = cand
				used[cand] = true
				// Prune early against the previous layer when it is already
				// fixed; the full identity is re-verified at completion.
				ok := true
				if layer > 0 {
					ok = partialConsistent(g.Sub(layer-1), h.Sub(layer-1), perms[layer-1], node, cand)
				}
				if ok && assign(node+1) {
					return true
				}
				used[cand] = false
			}
			return false
		}
		return assign(0)
	}
	if solve(0) {
		return perms, true
	}
	return nil, false
}

// permCandidates returns, per node of g's layer, the h-nodes with matching
// degree profile (in-degree from the previous layer, out-degree into the
// next), the cheap invariant that prunes most of the search space.
func permCandidates(g, h *FNNT, layer int) [][]int {
	size := g.LayerSize(layer)
	profileG := degreeProfiles(g, layer)
	profileH := degreeProfiles(h, layer)
	byProfile := make(map[[2]int][]int)
	for v := 0; v < size; v++ {
		byProfile[profileH[v]] = append(byProfile[profileH[v]], v)
	}
	out := make([][]int, size)
	for u := 0; u < size; u++ {
		out[u] = byProfile[profileG[u]]
	}
	return out
}

func degreeProfiles(g *FNNT, layer int) [][2]int {
	size := g.LayerSize(layer)
	profiles := make([][2]int, size)
	if layer > 0 {
		in := g.Sub(layer - 1).ColDegrees()
		for v := 0; v < size; v++ {
			profiles[v][0] = in[v]
		}
	}
	if layer < g.NumSubs() {
		sub := g.Sub(layer)
		for v := 0; v < size; v++ {
			profiles[v][1] = sub.RowDegree(v)
		}
	}
	return profiles
}

// partialConsistent checks that mapping node→cand in the current layer
// preserves adjacency from the (already fully mapped) previous layer.
func partialConsistent(gw, hw *sparse.Pattern, prevPerm []int, node, cand int) bool {
	// For every previous-layer node u: g has edge (u, node) iff h has edge
	// (prevPerm[u], cand).
	for u := 0; u < gw.Rows(); u++ {
		if gw.Has(u, node) != hw.Has(prevPerm[u], cand) {
			return false
		}
	}
	return true
}

// consistent verifies the full submatrix identity πprev(gw)πcur = hw.
func consistent(gw, hw *sparse.Pattern, prevPerm, curPerm []int) bool {
	for u := 0; u < gw.Rows(); u++ {
		gRow := gw.Row(u)
		mapped := make([]int, 0, len(gRow))
		for _, c := range gRow {
			mapped = append(mapped, curPerm[c])
		}
		sort.Ints(mapped)
		hRow := hw.Row(prevPerm[u])
		if len(mapped) != len(hRow) {
			return false
		}
		for i, c := range mapped {
			if hRow[i] != c {
				return false
			}
		}
	}
	return true
}

// Relabel applies per-layer node permutations to an FNNT: node v of layer i
// becomes node perms[i][v]. It is the constructive side of
// IsomorphicByLayerPermutation — Relabel(g, perms) equals h whenever the
// checker returns perms as a witness.
func (g *FNNT) Relabel(perms [][]int) (*FNNT, error) {
	if len(perms) != g.NumLayers() {
		return nil, ErrShape
	}
	subs := make([]*sparse.Pattern, g.NumSubs())
	for i := 0; i < g.NumSubs(); i++ {
		w := g.Sub(i)
		coo, err := sparse.NewCOO(w.Rows(), w.Cols())
		if err != nil {
			return nil, err
		}
		for r := 0; r < w.Rows(); r++ {
			for _, c := range w.Row(r) {
				if err := coo.Add(perms[i][r], perms[i+1][c]); err != nil {
					return nil, err
				}
			}
		}
		subs[i] = coo.Pattern()
	}
	return New(subs...)
}
