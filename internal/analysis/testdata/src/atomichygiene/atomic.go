// Package atomichygiene exercises the atomichygiene analyzer: fields and
// package variables touched through sync/atomic must never be accessed
// plainly, and typed atomics must not be copied by value.
package atomichygiene

import "sync/atomic"

type counter struct {
	hits   int64
	misses int64
	gauge  atomic.Int64
}

func (c *counter) Hit() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.misses, 1)
}

func (c *counter) Skew() int64 {
	h := c.hits  // want `field hits is accessed with sync/atomic at .* but read/written directly here`
	c.misses = 0 // want `field misses is accessed with sync/atomic at .* but read/written directly here`
	return h
}

// Waived reads hits plainly but waives the finding: single-goroutine
// construction-time access.
func (c *counter) Waived() int64 {
	return c.hits //radix:atomic-ok
}

// Copy copies a typed atomic by value — always wrong, no pairing needed.
func (c *counter) Copy() int64 {
	g := c.gauge // want `atomic\.Int64 value of field gauge is copied`
	return g.Load()
}

// Touch uses the typed atomic correctly: method calls and address-of.
func (c *counter) Touch() int64 {
	c.gauge.Add(1)
	p := &c.gauge
	return p.Load()
}

var seq int64

func Next() int64 { return atomic.AddInt64(&seq, 1) }

func Reset() {
	seq = 0 // want `field seq is accessed with sync/atomic at .* but read/written directly here`
}

// clean is only ever accessed plainly: no pairing, no diagnostics.
var clean int64

func Bump() int64 {
	clean++
	return clean
}
