// Package hotpath exercises the hotpath analyzer: every construct a
// //radix:hotpath function must not use, plus the allow= waivers.
package hotpath

import (
	"fmt"
	"time"
)

type ring struct {
	buf  []int
	next int
}

//radix:hotpath
func (r *ring) Add(v int) {
	r.buf[r.next%len(r.buf)] = v
	r.next++
}

//radix:hotpath
func Bad(m map[string]int, s string) int {
	fmt.Println(s)               // want `Bad: calls fmt\.Println in hot path`
	now := time.Now()            // want `Bad: time\.Now in hot path`
	b := make([]int, 4)          // want `Bad: make allocates in hot path`
	defer release()              // want `Bad: defer in hot path`
	go release()                 // want `Bad: go statement in hot path`
	f := func() int { return 1 } // want `Bad: closure literal in hot path may allocate`
	_ = s + "suffix"             // want `Bad: string concatenation allocates in hot path`
	t := 0
	for _, v := range m { // want `Bad: range over map in hot path`
		t += v
	}
	_ = map[int]int{}          // want `Bad: map literal allocates in hot path`
	_ = []int{1, 2}            // want `Bad: slice literal allocates in hot path`
	p := &ring{}               // want `Bad: &.*ring\{\.\.\.\} in hot path likely escapes`
	var i interface{} = any(t) // want `Bad: conversion to .* boxes int in hot path`
	_, _, _, _, _ = now, b, f, p, i
	return t
}

// Allowed waives the allocation and clock rules; only the un-waivable
// fmt call should fire.
//
//radix:hotpath allow=alloc,time,defer
func Allowed(n int) []int {
	defer release()
	_ = time.Now()
	out := make([]int, n)
	fmt.Println(n) // want `Allowed: calls fmt\.Println in hot path`
	return out
}

func release() {}

// Cold is unannotated: nothing in it may be reported.
func Cold() string {
	return fmt.Sprintf("%d", time.Now().UnixNano())
}
