// Package metriclint exercises the metriclint analyzer: exposition name
// hygiene at fmt writers, metric-emitting helpers, histogram snapshot
// writers (including the shared-ladder rules), and metric descriptor
// literals.
package metriclint

import (
	"fmt"
	"io"

	"github.com/radix-net/radixnet/internal/obs"
)

func writeCounters(w io.Writer, v int64) {
	fmt.Fprintf(w, "# TYPE radixserve_requests_total counter\n")
	fmt.Fprintf(w, "radixserve_requests_total %d\n", v)
	fmt.Fprintf(w, "radixserve_Bad-Total %d\n", v)    // want `metric name "radixserve_Bad-Total" violates`
	fmt.Fprintf(w, "radixrouter_UPPER_total %d\n", v) // want `metric name "radixrouter_UPPER_total" violates`
}

// counter has the (name, help) metric-helper shape the analyzer keys on.
func counter(name, help string, v int64) {}

func emit() {
	counter("radixserve_batches_total", "batches executed", 1)
	counter("radixserve_batchesTotal", "bad name", 1) // want `metric name "radixserve_batchesTotal" violates`
	// Non-radix names in helper position belong to other namespaces and
	// are left alone.
	counter("queue_depth", "unprefixed", 1)
}

func writeHists(w io.Writer, h *obs.Histogram) {
	s := h.Snapshot()
	s.WriteTo(w, "radixserve_exec_seconds", "", 1e9)
	s.WriteTo(w, "exec_seconds", "", 1e9)                      // want `metric name "exec_seconds" violates`
	s.WriteTo(w, "radixserve_lat_seconds", "", 1e6)            // want `latency family "radixserve_lat_seconds" written with scale 1e\+06`
	s.WriteToRange(w, "radixserve_lat_seconds", "", 1e9, 0, 8) // want `latency family "radixserve_lat_seconds" exposed via WriteToRange`
	// Range exposition of a non-latency family is fine.
	s.WriteToRange(w, "radixserve_batch_rows", "", 1, 0, 8)
}

// desc mirrors the repo's metric descriptor tables.
type desc struct {
	name string
	help string
}

var metrics = []desc{
	{name: "radixserve_queue_depth", help: "rows queued"},
	{name: "radixserve_Queue_Depth", help: "bad name"}, // want `metric name "radixserve_Queue_Depth" violates`
	{"radixrouter_picks_total", "positional is checked too"},
	{"radixrouter_picks-total", "bad positional"}, // want `metric name "radixrouter_picks-total" violates`
	// Suffix tables (names completed by a prefix elsewhere) are exempt.
	{name: "slo_fast_burn", help: "suffix, not a full name"},
}
