// Package hotpathbaddirective holds malformed //radix:hotpath directives.
// The diagnostics land on the directive comment lines themselves, where a
// want comment cannot ride along, so the unit test checks them directly.
package hotpathbaddirective

//radix:hotpath allow=speed
func BadToken() {}

//radix:hotpath fast
func BadDirective() {}
