// Package ctxguard exercises the ctxguard analyzer: below the server
// layer every context must descend from the caller's, and HTTP requests
// must carry one.
package ctxguard

import (
	"context"
	"net/http"
)

func fetch(client *http.Client, url string) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 0) // want `context\.Background\(\) below the server layer`
	defer cancel()
	req, err := http.NewRequest("GET", url, nil) // want `http\.NewRequest builds a request with no context`
	if err != nil {
		return nil, err
	}
	_ = ctx
	return client.Do(req)
}

func todo() context.Context {
	return context.TODO() // want `context\.TODO\(\) below the server layer`
}

func lazyGet(url string) (*http.Response, error) {
	return http.Get(url) // want `http\.Get builds a request with no context`
}

func clientGet(c *http.Client, url string) (*http.Response, error) {
	return c.Get(url) // want `http\.Get builds a request with no context`
}

// probe runs on its own goroutine with no inbound request: it may mint a
// root context, and the directive waives the findings.
//
//radix:ctx-root
func probe(client *http.Client, url string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// propagate is the approved shape: context flows in.
func propagate(ctx context.Context, client *http.Client, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return nil, err
	}
	return client.Do(req)
}
