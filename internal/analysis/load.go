package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// listPkg is the slice of `go list -json` output the loader consumes.
// TestGoFiles are the package's in-package _test.go files (package foo, not
// the external foo_test variant) and TestImports their imports; targets get
// them parsed and type-checked alongside GoFiles so the analyzers see test
// code too.
type listPkg struct {
	ImportPath  string
	Name        string
	Dir         string
	GoFiles     []string
	TestGoFiles []string
	Imports     []string
	TestImports []string
	ImportMap   map[string]string
	Standard    bool
	DepOnly     bool
}

// goList runs `go list -deps -json` for the patterns and returns the
// packages in dependency order (dependencies before dependents — the order
// the type-checker needs). CGO is disabled so every listed file set is
// pure Go; the stdlib's cgo users (net, os/user) all carry pure-Go
// fallbacks, and this repo has no cgo at all.
func goList(dir string, patterns ...string) ([]*listPkg, error) {
	args := append([]string{
		"list", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,TestGoFiles,Imports,TestImports,ImportMap,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(out)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	return pkgs, nil
}

// mapImporter resolves imports from the universe built so far.
type mapImporter struct {
	pkgs map[string]*types.Package
	// importMap applies the importing package's vendor/ImportMap remapping
	// before lookup; set per package during checking.
	importMap map[string]string
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("package %q not in universe", path)
}

// LoadPackages lists the patterns with the go tool, parses every package in
// the dependency closure, and type-checks them oldest-dependency-first into
// one shared universe. Packages named by the patterns become targets: they
// keep full syntax and types.Info for the analyzers — including their
// in-package _test.go files, whose extra imports (go list's TestImports,
// absent from the -deps closure) are loaded API-only in a second listing;
// dependencies (the standard library included) are checked API-only
// (function bodies skipped), which keeps a whole-repo load under a few
// seconds.
func LoadPackages(dir string, patterns ...string) (*Program, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	listed, err = widenTestImports(dir, listed)
	if err != nil {
		return nil, err
	}
	prog := &Program{Fset: token.NewFileSet(), State: make(map[string]any)}
	imp := &mapImporter{pkgs: make(map[string]*types.Package)}
	for _, lp := range listed {
		if lp.ImportPath == "unsafe" {
			continue
		}
		pkg, err := checkPackage(prog.Fset, imp, lp)
		if err != nil {
			if !lp.Standard && !lp.DepOnly {
				return nil, err
			}
			// A dependency that fails to check still registers whatever
			// partial package came out, so dependents can limp along; the
			// analyzers only ever inspect targets.
			if pkg == nil || pkg.Types == nil {
				continue
			}
		}
		imp.pkgs[lp.ImportPath] = pkg.Types
		prog.Pkgs = append(prog.Pkgs, pkg)
		if pkg.Target {
			prog.Targets = append(prog.Targets, pkg)
		}
	}
	if len(prog.Targets) == 0 {
		return nil, fmt.Errorf("no target packages matched %s", strings.Join(patterns, " "))
	}
	return prog, nil
}

// widenTestImports grows a -deps listing with the closure of the targets'
// TestImports: packages a target's in-package test files import that its
// non-test build does not (testing, httptest, …). The extras are marked
// DepOnly (API-only check), and the combined list is re-sorted dependencies-
// first — the two go list outputs are each dep-ordered, but their merge is
// not, and the type-checker consumes the universe oldest-dependency-first.
func widenTestImports(dir string, listed []*listPkg) ([]*listPkg, error) {
	have := make(map[string]bool, len(listed))
	for _, lp := range listed {
		have[lp.ImportPath] = true
	}
	var missing []string
	seen := map[string]bool{}
	for _, lp := range listed {
		if lp.Standard || lp.DepOnly {
			continue
		}
		for _, imp := range lp.TestImports {
			if mapped, ok := lp.ImportMap[imp]; ok {
				imp = mapped
			}
			if imp == "unsafe" || imp == "C" || have[imp] || seen[imp] {
				continue
			}
			seen[imp] = true
			missing = append(missing, imp)
		}
	}
	if len(missing) == 0 {
		return listed, nil
	}
	sort.Strings(missing)
	extra, err := goList(dir, missing...)
	if err != nil {
		return nil, err
	}
	for _, lp := range extra {
		if have[lp.ImportPath] {
			continue
		}
		have[lp.ImportPath] = true
		lp.DepOnly = true
		listed = append(listed, lp)
	}
	return sortDeps(listed), nil
}

// sortDeps orders packages dependencies-before-dependents by depth-first
// walk over Imports (plus TestImports for targets, whose test files the
// loader checks too). Only packages present in the list participate; import
// cycles cannot occur in valid Go package graphs, so the walk terminates.
func sortDeps(listed []*listPkg) []*listPkg {
	byPath := make(map[string]*listPkg, len(listed))
	for _, lp := range listed {
		byPath[lp.ImportPath] = lp
	}
	out := make([]*listPkg, 0, len(listed))
	done := make(map[string]bool, len(listed))
	var visit func(lp *listPkg)
	visit = func(lp *listPkg) {
		if done[lp.ImportPath] {
			return
		}
		done[lp.ImportPath] = true
		imports := lp.Imports
		if !lp.Standard && !lp.DepOnly {
			imports = append(append([]string{}, imports...), lp.TestImports...)
		}
		for _, imp := range imports {
			if mapped, ok := lp.ImportMap[imp]; ok {
				imp = mapped
			}
			if dep, ok := byPath[imp]; ok {
				visit(dep)
			}
		}
		out = append(out, lp)
	}
	for _, lp := range listed {
		visit(lp)
	}
	return out
}

// checkPackage parses and type-checks one listed package against the
// universe. Targets get full bodies and a populated types.Info.
func checkPackage(fset *token.FileSet, imp *mapImporter, lp *listPkg) (*Package, error) {
	target := !lp.Standard && !lp.DepOnly
	pkg := &Package{
		ImportPath: lp.ImportPath,
		Name:       lp.Name,
		Dir:        lp.Dir,
		Standard:   lp.Standard,
		Target:     target,
	}
	mode := parser.SkipObjectResolution
	if target {
		mode |= parser.ParseComments
	}
	files := lp.GoFiles
	nProd := len(files)
	if target && len(lp.TestGoFiles) > 0 {
		// In-package test files check as part of the package proper, so the
		// analyzers cover test code too (the external foo_test variant is a
		// different package and stays out of scope).
		files = append(append([]string{}, files...), lp.TestGoFiles...)
	}
	var firstErr error
	for i, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, mode)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if f != nil {
			pkg.Files = append(pkg.Files, f)
			if i >= nProd {
				if pkg.TestFiles == nil {
					pkg.TestFiles = make(map[*ast.File]bool, len(lp.TestGoFiles))
				}
				pkg.TestFiles[f] = true
			}
		}
	}
	if firstErr != nil && target {
		return pkg, fmt.Errorf("%s: %w", lp.ImportPath, firstErr)
	}
	conf := types.Config{
		Importer:         imp,
		Sizes:            types.SizesFor("gc", runtime.GOARCH),
		IgnoreFuncBodies: !target,
		Error:            func(err error) { /* collected via firstErr below */ },
	}
	var typeErr error
	conf.Error = func(err error) {
		if typeErr == nil {
			typeErr = err
		}
	}
	if target {
		pkg.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
	}
	imp.importMap = lp.ImportMap
	tpkg, _ := conf.Check(lp.ImportPath, fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	if typeErr != nil && target {
		return pkg, fmt.Errorf("%s: type checking: %w", lp.ImportPath, typeErr)
	}
	return pkg, nil
}

// LoadDir type-checks a bare directory of Go files (an analysistest
// testdata package, not part of any module's package graph) as a single
// target package. Its imports — standard library or in-module — are
// resolved by loading their dependency closure API-only first. moduleDir
// anchors `go list` so in-module import paths resolve; pass the repo root.
func LoadDir(moduleDir, dir string) (*Program, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		names = append(names, e.Name())
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	imports := map[string]bool{}
	for _, f := range files {
		for _, spec := range f.Imports {
			p := strings.Trim(spec.Path.Value, `"`)
			if p != "unsafe" {
				imports[p] = true
			}
		}
	}
	prog := &Program{Fset: fset, State: make(map[string]any)}
	imp := &mapImporter{pkgs: make(map[string]*types.Package)}
	if len(imports) > 0 {
		var pats []string
		for p := range imports {
			pats = append(pats, p)
		}
		listed, err := goList(moduleDir, pats...)
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			if lp.ImportPath == "unsafe" {
				continue
			}
			lp.DepOnly = true // deps of the testdata package: API-only
			pkg, err := checkPackage(fset, imp, lp)
			if err != nil || pkg.Types == nil {
				continue
			}
			imp.pkgs[lp.ImportPath] = pkg.Types
			prog.Pkgs = append(prog.Pkgs, pkg)
		}
	}
	pkg := &Package{
		ImportPath: "testdata/" + filepath.Base(dir),
		Name:       files[0].Name.Name,
		Dir:        dir,
		Target:     true,
		Files:      files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
	}
	var typeErr error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	imp.importMap = nil
	tpkg, _ := conf.Check(pkg.ImportPath, fset, files, pkg.Info)
	pkg.Types = tpkg
	if typeErr != nil {
		return nil, fmt.Errorf("%s (%s): type checking: %w", dir, strings.Join(names, ","), typeErr)
	}
	prog.Pkgs = append(prog.Pkgs, pkg)
	prog.Targets = []*Package{pkg}
	return prog, nil
}
