package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxGuard enforces context propagation below the server layer.
//
// The serving path threads one context from the HTTP handler through the
// batcher, the engine lease, and (router-side) the per-attempt forward —
// cancellation correctness (PR 4's mis-charging fix) and deadline-aware
// shedding both depend on no link in that chain minting a fresh root.
// Inside library packages (anything that is not package main) the analyzer
// reports:
//
//   - context.Background() and context.TODO() — a library function has a
//     caller, and the caller has the context;
//   - http.NewRequest and the context-less convenience helpers (http.Get,
//     (*http.Client).Post, ...) — use http.NewRequestWithContext.
//
// Package main is exempt wholesale: cmd binaries own the process-lifetime
// roots (signal.NotifyContext, shutdown timeouts). A library function that
// legitimately mints a root — the health prober's per-probe timeout runs
// on the prober's own goroutine with no inbound request above it — opts
// out by carrying //radix:ctx-root in its doc comment.
var CtxGuard = &Analyzer{
	Name: "ctxguard",
	Doc:  "forbid new context roots and context-less HTTP requests below the server layer",
	Run:  runCtxGuard,
}

// ctxlessHTTPFuncs are net/http package functions that build requests
// without a context.
var ctxlessHTTPFuncs = map[string]bool{
	"NewRequest": true, "Get": true, "Post": true, "Head": true, "PostForm": true,
}

func runCtxGuard(pass *Pass) error {
	if pass.Pkg.Name == "main" {
		return nil
	}
	info := pass.Pkg.Info
	walk(pass.Pkg.ProdFiles(), func(stack []ast.Node, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := info.Uses[sel.Sel]
		if !ok || obj.Pkg() == nil {
			return true
		}
		switch obj.Pkg().Path() {
		case "context":
			if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
				if !inCtxRoot(stack) {
					pass.Reportf(call.Pos(), "context.%s() below the server layer: propagate the caller's ctx (//radix:ctx-root on the function to waive)", sel.Sel.Name)
				}
			}
		case "net/http":
			if ctxlessHTTPFuncs[sel.Sel.Name] && !inCtxRoot(stack) {
				if isClientHelper(info, sel) {
					pass.Reportf(call.Pos(), "http.%s builds a request with no context: use http.NewRequestWithContext with the caller's ctx", sel.Sel.Name)
				}
			}
		}
		return true
	})
	return nil
}

// isClientHelper distinguishes the request-building package functions and
// (*http.Client) convenience methods from unrelated selectors that happen
// to share a name (e.g. url.Values.Get).
func isClientHelper(info *types.Info, sel *ast.SelectorExpr) bool {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		return strings.HasSuffix(recv.Type().String(), "net/http.Client")
	}
	return true
}

// inCtxRoot reports whether the innermost enclosing FuncDecl carries a
// //radix:ctx-root doc directive.
func inCtxRoot(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		fd, ok := stack[i].(*ast.FuncDecl)
		if !ok {
			continue
		}
		if fd.Doc != nil {
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(c.Text, "//radix:ctx-root") {
					return true
				}
			}
		}
		return false
	}
	return false
}
