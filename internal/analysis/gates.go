package analysis

import (
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The compiler-diagnostic gates. The AST analyzers approximate what the
// compiler will do; these gates ask the compiler itself. Both run a real
// `go build` with diagnostic gcflags, parse the emitted stderr, and check
// it against the manifest. The Go build cache replays a cached compile's
// stderr, so a warm gate run costs one cache probe per package, not a
// rebuild.

// compilerDiag is one parsed `file:line:col: message` line of compiler
// output.
type compilerDiag struct {
	File    string
	Line    int
	Col     int
	Message string
}

// parseCompilerDiags extracts position-prefixed diagnostics from `go build`
// stderr. Non-diagnostic lines (the `# package` headers, linker chatter)
// are skipped. baseDir resolves relative paths the compiler printed.
func parseCompilerDiags(output string, baseDir string) []compilerDiag {
	var out []compilerDiag
	for _, line := range strings.Split(output, "\n") {
		d, ok := parseDiagLine(line)
		if !ok {
			continue
		}
		if !filepath.IsAbs(d.File) {
			d.File = filepath.Join(baseDir, d.File)
		}
		out = append(out, d)
	}
	return out
}

func parseDiagLine(line string) (compilerDiag, bool) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return compilerDiag{}, false
	}
	// file.go:12:34: message — split on the first three colons, tolerating
	// a leading "./".
	rest := line
	ci := strings.Index(rest, ".go:")
	if ci < 0 {
		return compilerDiag{}, false
	}
	file := rest[:ci+3]
	rest = rest[ci+4:]
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) != 3 {
		return compilerDiag{}, false
	}
	lineNo, err1 := strconv.Atoi(parts[0])
	colNo, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return compilerDiag{}, false
	}
	return compilerDiag{
		File:    strings.TrimPrefix(file, "./"),
		Line:    lineNo,
		Col:     colNo,
		Message: strings.TrimSpace(parts[2]),
	}, true
}

// isHeapEscape reports whether an escape-analysis message states that a
// value was heap-allocated: "x escapes to heap" and "moved to heap: x".
// Parameter-flow notes ("leaking param: x") describe where pointers go,
// not allocations, and stay exempt.
func isHeapEscape(msg string) bool {
	return strings.Contains(msg, "escapes to heap") || strings.HasPrefix(msg, "moved to heap:")
}

// buildWithFlags compiles the packages with extra gcflags and returns the
// compiler's stderr. The build itself must succeed — a gate can't judge
// output from a failed compile.
func buildWithFlags(moduleDir string, gcflags string, pkgs []string) (string, error) {
	args := append([]string{"build", "-o", os.DevNull, "-gcflags", gcflags}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go build -gcflags=%s: %w\n%s", gcflags, err, out)
	}
	return string(out), nil
}

// EscapeGate asserts that no function in the manifest's noescape list
// heap-allocates, per the compiler's own escape analysis (-gcflags=-m).
// Diagnostics are attributed to functions by the declaration line spans in
// the loaded program, so the manifest needs no line numbers.
func EscapeGate(prog *Program, m *Manifest, moduleDir string) ([]Diagnostic, error) {
	type span struct {
		entry      NoEscapeEntry
		start, end int
	}
	spansByFile := make(map[string][]span)
	pkgSet := map[string]bool{}

	byPkg := make(map[string]map[string]NoEscapeEntry) // pkg -> func -> entry
	for _, e := range m.NoEscape {
		if byPkg[e.Package] == nil {
			byPkg[e.Package] = make(map[string]NoEscapeEntry)
		}
		byPkg[e.Package][e.Func] = e
		pkgSet[e.Package] = true
	}
	for _, pkg := range prog.Targets {
		want := byPkg[pkg.ImportPath]
		if want == nil {
			continue
		}
		for _, hf := range hotpathFuncs(prog, pkg, nil) {
			e, ok := want[hf.Name]
			if !ok {
				continue
			}
			spansByFile[hf.File] = append(spansByFile[hf.File], span{entry: e, start: hf.Line, end: hf.EndLine})
		}
	}

	out, err := buildWithFlags(moduleDir, "-m", sortedKeys(pkgSet))
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, d := range parseCompilerDiags(out, moduleDir) {
		if !isHeapEscape(d.Message) {
			continue
		}
		for _, s := range spansByFile[d.File] {
			if d.Line >= s.start && d.Line <= s.end {
				diags = append(diags, Diagnostic{
					Pos:      token.Position{Filename: d.File, Line: d.Line, Column: d.Col},
					Analyzer: "escape-gate",
					Message: fmt.Sprintf("%s.%s is declared //radix:hotpath but the compiler reports %q (annotate allow=alloc if intentional)",
						s.entry.Package, s.entry.Func, d.Message),
				})
			}
		}
	}
	return diags, nil
}

// BCEGate asserts the marker-delimited regions compile without bounds
// checks beyond their declared allowance, per the SSA pass's own output
// (-d=ssa/check_bce/debug=1). IsInBounds is a per-element index check;
// IsSliceInBounds is the O(1)-per-window check a reslice costs — regions
// that earn unit-stride inner loops by reslicing allow the latter.
func BCEGate(prog *Program, m *Manifest, moduleDir string) ([]Diagnostic, error) {
	type liveRegion struct {
		entry BCERegionEntry
		reg   bceRegion
	}
	var regions []liveRegion
	pkgSet := map[string]bool{}
	byKey := make(map[string]BCERegionEntry)
	for _, e := range m.BCERegions {
		byKey[e.Package+"\x00"+e.File+"\x00"+e.Region] = e
		pkgSet[e.Package] = true
	}
	for _, pkg := range prog.Targets {
		rs, err := bceRegions(prog, pkg)
		if err != nil {
			return nil, err
		}
		for _, r := range rs {
			if e, ok := byKey[pkg.ImportPath+"\x00"+filepath.Base(r.File)+"\x00"+r.Name]; ok {
				regions = append(regions, liveRegion{entry: e, reg: r})
			}
		}
	}
	if len(regions) == 0 {
		return nil, nil
	}

	out, err := buildWithFlags(moduleDir, "-d=ssa/check_bce/debug=1", sortedKeys(pkgSet))
	if err != nil {
		return nil, err
	}
	diags := parseCompilerDiags(out, moduleDir)

	var found []Diagnostic
	for _, lr := range regions {
		indexChecks := 0
		for _, d := range diags {
			if d.File != lr.reg.File || d.Line < lr.reg.StartLine || d.Line > lr.reg.EndLine {
				continue
			}
			pos := token.Position{Filename: d.File, Line: d.Line, Column: d.Col}
			switch d.Message {
			case "Found IsInBounds":
				indexChecks++
				if indexChecks > lr.entry.AllowIndex {
					found = append(found, Diagnostic{
						Pos:      pos,
						Analyzer: "bce-gate",
						Message: fmt.Sprintf("bounds check in //radix:bce region %q (%d found, %d allowed): restructure the access or raise the region's index allowance",
							lr.entry.Region, indexChecks, lr.entry.AllowIndex),
					})
				}
			case "Found IsSliceInBounds":
				if !lr.entry.AllowSlice {
					found = append(found, Diagnostic{
						Pos:      pos,
						Analyzer: "bce-gate",
						Message: fmt.Sprintf("slice-bounds check in //radix:bce region %q: reslice outside the region or annotate allow=slice",
							lr.entry.Region),
					})
				}
			}
		}
	}
	sort.Slice(found, func(i, j int) bool {
		a, b := found[i].Pos, found[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return found, nil
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
