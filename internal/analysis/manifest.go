package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Manifest is the checked-in contract the compiler-diagnostic gates
// enforce (hotpath_manifest.json). It is derived mechanically from source
// annotations — //radix:hotpath doc directives and //radix:bce region
// markers — and pinned in the repo so that *removing* an annotation is as
// loud as violating one: the gate diffs the manifest against the live
// annotations and fails on drift, pointing at `radixvet -regen-manifest`.
//
// Line numbers are deliberately absent. Regions are delimited by source
// markers and functions by their parsed declaration spans, both resolved
// at gate time, so ordinary edits above a kernel don't invalidate the
// manifest.
type Manifest struct {
	// GeneratedBy documents the regeneration command for humans.
	GeneratedBy string `json:"generated_by"`
	// NoEscape lists functions the escape gate asserts heap-allocation-free
	// (every //radix:hotpath function not annotated allow=alloc).
	NoEscape []NoEscapeEntry `json:"noescape"`
	// BCERegions lists marker-delimited spans the BCE gate asserts
	// bounds-check-free, up to each region's declared allowance.
	BCERegions []BCERegionEntry `json:"bce_regions"`
}

// NoEscapeEntry names one gated function.
type NoEscapeEntry struct {
	Package string `json:"package"` // import path
	File    string `json:"file"`    // base name within the package
	Func    string `json:"func"`    // receiver-qualified, e.g. (*Histogram).Observe
}

// BCERegionEntry names one gated source region.
type BCERegionEntry struct {
	Package string `json:"package"`
	File    string `json:"file"`
	Region  string `json:"region"`
	// AllowSlice permits IsSliceInBounds checks: O(1)-per-window slice
	// formation (reslicing) is how the kernels *earn* check-free inner
	// loops, so windowed kernels allow it while straight-line tap blocks
	// don't.
	AllowSlice bool `json:"allow_slice,omitempty"`
	// AllowIndex permits up to N IsInBounds checks for inherently
	// data-dependent accesses (the CSC gather's in[rowIdx[i]]).
	AllowIndex int `json:"allow_index,omitempty"`
}

func (e NoEscapeEntry) key() string { return e.Package + "\x00" + e.File + "\x00" + e.Func }
func (e BCERegionEntry) key() string {
	return fmt.Sprintf("%s\x00%s\x00%s\x00slice=%t\x00index=%d", e.Package, e.File, e.Region, e.AllowSlice, e.AllowIndex)
}

// LoadManifest reads a manifest from disk.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &m, nil
}

// Save writes the manifest with stable ordering and trailing newline.
func (m *Manifest) Save(path string) error {
	m.sort()
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func (m *Manifest) sort() {
	sort.Slice(m.NoEscape, func(i, j int) bool { return m.NoEscape[i].key() < m.NoEscape[j].key() })
	sort.Slice(m.BCERegions, func(i, j int) bool { return m.BCERegions[i].key() < m.BCERegions[j].key() })
}

// DeriveManifest rebuilds the manifest from the live source annotations of
// the loaded program.
func DeriveManifest(prog *Program) (*Manifest, error) {
	m := &Manifest{GeneratedBy: "go run ./cmd/radixvet -regen-manifest"}
	for _, pkg := range prog.Targets {
		for _, hf := range hotpathFuncs(prog, pkg, nil) {
			if hf.Allow["alloc"] {
				continue
			}
			m.NoEscape = append(m.NoEscape, NoEscapeEntry{
				Package: pkg.ImportPath,
				File:    filepath.Base(hf.File),
				Func:    hf.Name,
			})
		}
		regions, err := bceRegions(prog, pkg)
		if err != nil {
			return nil, err
		}
		for _, r := range regions {
			m.BCERegions = append(m.BCERegions, BCERegionEntry{
				Package:    pkg.ImportPath,
				File:       filepath.Base(r.File),
				Region:     r.Name,
				AllowSlice: r.AllowSlice,
				AllowIndex: r.AllowIndex,
			})
		}
	}
	m.sort()
	return m, nil
}

// DiffManifest compares the checked-in manifest against the live
// annotations; any difference is reported as drift (annotation added,
// removed, or its allowance changed without regenerating).
func DiffManifest(checked, derived *Manifest) []string {
	var drift []string
	drift = append(drift, diffSets("noescape", keysNE(checked.NoEscape), keysNE(derived.NoEscape))...)
	drift = append(drift, diffSets("bce region", keysBCE(checked.BCERegions), keysBCE(derived.BCERegions))...)
	return drift
}

func keysNE(es []NoEscapeEntry) map[string]string {
	out := make(map[string]string, len(es))
	for _, e := range es {
		out[e.key()] = e.Package + " " + e.Func
	}
	return out
}

func keysBCE(es []BCERegionEntry) map[string]string {
	out := make(map[string]string, len(es))
	for _, e := range es {
		out[e.key()] = fmt.Sprintf("%s %s region=%s allow_slice=%t allow_index=%d",
			e.Package, e.File, e.Region, e.AllowSlice, e.AllowIndex)
	}
	return out
}

func diffSets(kind string, checked, derived map[string]string) []string {
	var drift []string
	for k, desc := range derived {
		if _, ok := checked[k]; !ok {
			drift = append(drift, fmt.Sprintf("%s %s is annotated in source but missing from the manifest", kind, desc))
		}
	}
	for k, desc := range checked {
		if _, ok := derived[k]; !ok {
			drift = append(drift, fmt.Sprintf("%s %s is in the manifest but its source annotation is gone or changed", kind, desc))
		}
	}
	sort.Strings(drift)
	return drift
}

// bceRegion is one marker-delimited span resolved to current line numbers.
type bceRegion struct {
	Name       string
	File       string // absolute path
	StartLine  int
	EndLine    int
	AllowSlice bool
	AllowIndex int
}

// bceRegions scans a package's comments for //radix:bce markers:
//
//	//radix:bce region=csc-gather allow=slice,index:1
//	...gated code...
//	//radix:bce end
//
// Regions must open and close in the same file and may not nest.
func bceRegions(prog *Program, pkg *Package) ([]bceRegion, error) {
	var out []bceRegion
	for _, f := range pkg.ProdFiles() {
		var open *bceRegion
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//radix:bce")
				if !ok {
					continue
				}
				pos := prog.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) > 0 && fields[0] == "end" {
					if open == nil {
						return nil, fmt.Errorf("%s: //radix:bce end with no open region", pos)
					}
					open.EndLine = pos.Line
					out = append(out, *open)
					open = nil
					continue
				}
				if open != nil {
					return nil, fmt.Errorf("%s: //radix:bce region opened inside region %q (no nesting)", pos, open.Name)
				}
				r := bceRegion{File: pos.Filename, StartLine: pos.Line}
				for _, field := range fields {
					switch {
					case strings.HasPrefix(field, "region="):
						r.Name = strings.TrimPrefix(field, "region=")
					case strings.HasPrefix(field, "allow="):
						for _, tok := range strings.Split(strings.TrimPrefix(field, "allow="), ",") {
							switch {
							case tok == "slice":
								r.AllowSlice = true
							case strings.HasPrefix(tok, "index:"):
								n, err := strconv.Atoi(strings.TrimPrefix(tok, "index:"))
								if err != nil || n < 0 {
									return nil, fmt.Errorf("%s: bad //radix:bce index allowance %q", pos, tok)
								}
								r.AllowIndex = n
							default:
								return nil, fmt.Errorf("%s: unknown //radix:bce allow token %q (want slice, index:N)", pos, tok)
							}
						}
					default:
						return nil, fmt.Errorf("%s: malformed //radix:bce directive field %q", pos, field)
					}
				}
				if r.Name == "" {
					return nil, fmt.Errorf("%s: //radix:bce marker missing region=NAME", pos)
				}
				open = &r
			}
		}
		if open != nil {
			return nil, fmt.Errorf("%s: //radix:bce region %q never closed (missing //radix:bce end)", open.File, open.Name)
		}
	}
	return out, nil
}
