package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// MetricLint polices the Prometheus exposition surface. Fleet merge
// exactness (the router sums backend histogram buckets into
// radixrouter_model_* families) and dashboard stability both hinge on the
// metric names being machine-predictable, so every name literal that
// reaches a writer is checked against the project convention:
//
//	radix(serve|router)_[a-z0-9_]+
//
// Writer contexts — and only writer contexts, so the router's *parser*
// (slomerge.go matches backend series by the same literals in switch
// cases) is never flagged:
//
//   - the name argument of obs.HistSnapshot.WriteTo / WriteToRange
//     (validated unconditionally: these always take complete family names);
//   - calls to helpers whose signature has string parameters named "name"
//     and "help" (the router's counter closure, gauge helpers);
//   - composite literals of structs with "name" and "help" fields
//     (promMetric tables);
//   - radix(serve|router)_-prefixed tokens inside fmt format/value string
//     literals (# HELP/# TYPE lines and hand-rolled series lines).
//
// Helper-call and struct-literal contexts only validate literals that
// already start with "radix": tables of name *suffixes* composed with a
// prefix at write time (WriteSLOMetrics' slo_* families) are legitimate.
//
// The shared-ladder rules ride along: a latency family (name ending
// _seconds) must be exposed through WriteTo — the full shared bucket
// ladder — never a truncated WriteToRange window, and must use the
// nanoseconds-to-seconds scale 1e9; otherwise bucket-wise fleet merge
// silently stops being exact.
var MetricLint = &Analyzer{
	Name: "metriclint",
	Doc:  "check metric-name literals and bucket-ladder usage at exposition writers",
	Run:  runMetricLint,
}

var (
	metricNameRe = regexp.MustCompile(`^radix(serve|router)_[a-z0-9_]*[a-z0-9]$`)
	// metricTokenRe finds candidate metric tokens inside format strings.
	// The charset is deliberately wider than the convention so malformed
	// names (uppercase, dashes) are captured whole and then rejected.
	metricTokenRe = regexp.MustCompile(`radix(serve|router)_[A-Za-z0-9_-]*`)
)

func runMetricLint(pass *Pass) error {
	info := pass.Pkg.Info
	walk(pass.Pkg.ProdFiles(), func(stack []ast.Node, n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			lintMetricCall(pass, info, n)
		case *ast.CompositeLit:
			lintMetricComposite(pass, info, n)
		}
		return true
	})
	return nil
}

// lintMetricCall covers the three call-shaped writer contexts.
func lintMetricCall(pass *Pass, info *types.Info, call *ast.CallExpr) {
	// fmt format/value strings: scan radix-prefixed tokens.
	if isFmtWriter(info, call) {
		for _, arg := range call.Args {
			if lit := stringLit(arg); lit != nil {
				text, err := strconv.Unquote(lit.Value)
				if err != nil {
					continue
				}
				for _, tok := range metricTokenRe.FindAllString(text, -1) {
					if !metricNameRe.MatchString(tok) {
						pass.Reportf(lit.Pos(), "metric name %q violates radix(serve|router)_[a-z0-9_]+ convention", tok)
					}
				}
			}
		}
		return
	}

	sig, ok := calleeSignature(info, call)
	if !ok || sig.Variadic() {
		return
	}
	nameIdx := paramIndex(sig, "name")
	if nameIdx < 0 || nameIdx >= len(call.Args) {
		return
	}
	helpIdx := paramIndex(sig, "help")
	labelsIdx := paramIndex(sig, "labels")
	if helpIdx < 0 && labelsIdx < 0 {
		return
	}
	lit := stringLit(call.Args[nameIdx])
	if lit == nil {
		return
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}

	snapshotWriter := labelsIdx >= 0 && isHistSnapshotMethod(info, call)
	if !metricNameRe.MatchString(name) {
		// Helper tables may hold suffixes; the histogram writers never do.
		if snapshotWriter || strings.HasPrefix(name, "radix") {
			pass.Reportf(lit.Pos(), "metric name %q violates radix(serve|router)_[a-z0-9_]+ convention", name)
		}
	}
	if snapshotWriter && strings.HasSuffix(name, "_seconds") {
		if methodName(call) == "WriteToRange" {
			pass.Reportf(call.Pos(), "latency family %q exposed via WriteToRange: truncated windows break bucket-wise fleet merge, use WriteTo (shared ladder)", name)
		}
		if scaleIdx := paramIndex(sig, "scale"); scaleIdx >= 0 && scaleIdx < len(call.Args) {
			if sl := ast.Unparen(call.Args[scaleIdx]); sl != nil {
				if v, isLit := floatLitValue(info, sl); isLit && v != 1e9 {
					pass.Reportf(sl.Pos(), "latency family %q written with scale %g: the fleet records nanoseconds and exposes seconds, scale must be 1e9", name, v)
				}
			}
		}
	}
}

// lintMetricComposite validates the "name" element of promMetric-style
// struct literals (structs with both "name" and "help" string fields).
func lintMetricComposite(pass *Pass, info *types.Info, cl *ast.CompositeLit) {
	tv, ok := info.Types[cl]
	if !ok || tv.Type == nil {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	nameField, helpField := -1, -1
	for i := 0; i < st.NumFields(); i++ {
		switch st.Field(i).Name() {
		case "name":
			nameField = i
		case "help":
			helpField = i
		}
	}
	if nameField < 0 || helpField < 0 {
		return
	}
	var nameExpr ast.Expr
	for i, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "name" {
				nameExpr = kv.Value
			}
		} else if i == nameField {
			nameExpr = elt
		}
	}
	lit := stringLit(nameExpr)
	if lit == nil {
		return
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if strings.HasPrefix(name, "radix") && !metricNameRe.MatchString(name) {
		pass.Reportf(lit.Pos(), "metric name %q violates radix(serve|router)_[a-z0-9_]+ convention", name)
	}
}

// isFmtWriter reports whether the call is one of fmt's formatting or
// printing functions.
func isFmtWriter(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel]
	return ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt"
}

// isHistSnapshotMethod reports whether the call's receiver is
// internal/obs.HistSnapshot.
func isHistSnapshotMethod(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	t := s.Recv()
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "HistSnapshot" && strings.HasSuffix(named.Obj().Pkg().Path(), "internal/obs")
}

func methodName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}

// calleeSignature resolves the signature a call dispatches through,
// covering functions, methods, and closure-typed variables alike.
func calleeSignature(info *types.Info, call *ast.CallExpr) (*types.Signature, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil || tv.IsType() {
		return nil, false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	return sig, ok
}

func paramIndex(sig *types.Signature, name string) int {
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i).Name() == name {
			return i
		}
	}
	return -1
}

func stringLit(e ast.Expr) *ast.BasicLit {
	if e == nil {
		return nil
	}
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return nil
	}
	return lit
}

// floatLitValue evaluates a constant numeric expression.
func floatLitValue(info *types.Info, e ast.Expr) (float64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, err := strconv.ParseFloat(tv.Value.String(), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
