package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(abs, "go.mod")); err != nil {
		t.Fatalf("module root %s: %v", abs, err)
	}
	return abs
}

// runExpectations is the per-analyzer testdata driver: load the package,
// run the analyzer, diff diagnostics against the // want comments.
func runExpectations(t *testing.T, pkg string, analyzers []*Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	problems, err := CheckExpectations(moduleRoot(t), dir, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

func TestHotPath(t *testing.T)       { runExpectations(t, "hotpath", []*Analyzer{HotPath}) }
func TestAtomicHygiene(t *testing.T) { runExpectations(t, "atomichygiene", []*Analyzer{AtomicHygiene}) }
func TestMetricLint(t *testing.T)    { runExpectations(t, "metriclint", []*Analyzer{MetricLint}) }
func TestCtxGuard(t *testing.T)      { runExpectations(t, "ctxguard", []*Analyzer{CtxGuard}) }

// TestAnalyzersDontCrossTalk runs the full suite over every testdata
// package at once: each analyzer must produce exactly its own expected
// findings and nothing on the other packages' lines beyond what those
// packages expect.
func TestSuiteOverAllTestdata(t *testing.T) {
	for _, pkg := range []string{"hotpath", "atomichygiene", "metriclint", "ctxguard"} {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) { runExpectations(t, pkg, All()) })
	}
}

// TestHotPathDirectiveErrors covers malformed directives, whose
// diagnostics land on the directive comment line itself where no want
// comment can ride along.
func TestHotPathDirectiveErrors(t *testing.T) {
	prog, err := LoadDir(moduleRoot(t), filepath.Join("testdata", "src", "hotpathbaddirective"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(prog, []*Analyzer{HotPath})
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Message)
	}
	got := strings.Join(msgs, "\n")
	for _, want := range []string{
		`unknown //radix:hotpath allow token "speed"`,
		`malformed //radix:hotpath directive: unexpected "fast"`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing diagnostic %q in:\n%s", want, got)
		}
	}
	if len(diags) != 2 {
		t.Errorf("got %d diagnostics, want 2:\n%s", len(diags), got)
	}
}

func TestParseCompilerDiagsEscapeFixture(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "escape_output.txt"))
	if err != nil {
		t.Fatal(err)
	}
	diags := parseCompilerDiags(string(data), "/mod")
	// 9 position-prefixed lines parse; headers, the bare prose line, and
	// the two-field line do not.
	if len(diags) != 9 {
		t.Fatalf("parsed %d diagnostics, want 9: %+v", len(diags), diags)
	}
	first := diags[0]
	if first.File != "/mod/internal/obs/histogram.go" || first.Line != 58 || first.Col != 6 {
		t.Errorf("relative path not resolved against baseDir: %+v", first)
	}
	var escapes []compilerDiag
	for _, d := range diags {
		if isHeapEscape(d.Message) {
			escapes = append(escapes, d)
		}
	}
	if len(escapes) != 4 {
		t.Fatalf("classified %d heap escapes, want 4: %+v", len(escapes), escapes)
	}
	if escapes[1].File != "/mod/internal/serve/batcher.go" || escapes[1].Line != 401 {
		t.Errorf("unexpected escape diag: %+v", escapes[1])
	}
	// The "./relative.go" line: leading ./ trimmed, then resolved.
	if escapes[2].File != "/mod/relative.go" || escapes[2].Message != "moved to heap: buf" {
		t.Errorf("./ path mishandled: %+v", escapes[2])
	}
}

func TestIsHeapEscape(t *testing.T) {
	cases := []struct {
		msg  string
		want bool
	}{
		{"moved to heap: b", true},
		{`fmt.Sprintf("%016x%016x", ...) escapes to heap`, true},
		{"make([]classMetrics, n) escapes to heap", true},
		{"leaking param: trace", false},
		{"h does not escape", false},
		{"can inline bucketOf", false},
	}
	for _, c := range cases {
		if got := isHeapEscape(c.msg); got != c.want {
			t.Errorf("isHeapEscape(%q) = %t, want %t", c.msg, got, c.want)
		}
	}
}

// TestBCEGateCounting drives the gate's counting logic against the
// captured fixture by faking the region table: the fixture has, inside
// kernel.go lines 136-157, three IsSliceInBounds and one IsInBounds.
func TestBCEGateCounting(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "bce_output.txt"))
	if err != nil {
		t.Fatal(err)
	}
	diags := parseCompilerDiags(string(data), "/mod")
	if len(diags) != 8 {
		t.Fatalf("parsed %d diagnostics, want 8", len(diags))
	}
	count := func(file string, start, end int, msg string) int {
		n := 0
		for _, d := range diags {
			if strings.HasSuffix(d.File, file) && d.Line >= start && d.Line <= end && d.Message == msg {
				n++
			}
		}
		return n
	}
	if got := count("kernel.go", 136, 157, "Found IsSliceInBounds"); got != 3 {
		t.Errorf("csc-gather window checks = %d, want 3", got)
	}
	if got := count("kernel.go", 136, 157, "Found IsInBounds"); got != 1 {
		t.Errorf("csc-gather index checks = %d, want 1", got)
	}
	if got := count("radixkernel.go", 909, 1027, "Found IsInBounds"); got != 0 {
		t.Errorf("radix8-taps index checks = %d, want 0", got)
	}
}

func TestManifestRoundTripAndDiff(t *testing.T) {
	m := &Manifest{
		GeneratedBy: "test",
		NoEscape: []NoEscapeEntry{
			{Package: "p", File: "b.go", Func: "B"},
			{Package: "p", File: "a.go", Func: "(*T).A"},
		},
		BCERegions: []BCERegionEntry{
			{Package: "p", File: "a.go", Region: "r1", AllowSlice: true, AllowIndex: 2},
		},
	}
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.NoEscape) != 2 || len(got.BCERegions) != 1 {
		t.Fatalf("round trip lost entries: %+v", got)
	}
	// Save sorts: a.go before b.go.
	if got.NoEscape[0].Func != "(*T).A" {
		t.Errorf("manifest not sorted: %+v", got.NoEscape)
	}
	if drift := DiffManifest(got, m); len(drift) != 0 {
		t.Errorf("identical manifests drifted: %v", drift)
	}

	// Removing an annotation and changing an allowance both surface.
	derived := &Manifest{
		NoEscape: []NoEscapeEntry{{Package: "p", File: "a.go", Func: "(*T).A"}},
		BCERegions: []BCERegionEntry{
			{Package: "p", File: "a.go", Region: "r1", AllowSlice: true, AllowIndex: 3},
		},
	}
	drift := DiffManifest(got, derived)
	if len(drift) != 3 {
		t.Fatalf("drift = %v, want 3 entries (func gone, allowance changed both ways)", drift)
	}
}

// TestBCERegionMarkers checks the marker parser against the live sparse
// kernels (the real annotations this PR gates) and the error paths
// against the repo's own analyzer testdata.
func TestBCERegionsLive(t *testing.T) {
	root := moduleRoot(t)
	prog, err := LoadPackages(root, "./internal/sparse")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Targets) != 1 {
		t.Fatalf("loaded %d targets, want 1", len(prog.Targets))
	}
	regions, err := bceRegions(prog, prog.Targets[0])
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]bceRegion{}
	for _, r := range regions {
		if r.StartLine >= r.EndLine {
			t.Errorf("region %s has empty span %d-%d", r.Name, r.StartLine, r.EndLine)
		}
		byName[r.Name] = r
	}
	for _, want := range []string{"csc-gather", "csc-gather-regular", "csc-gather4", "radix8-taps"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("region %q not found (got %v)", want, regions)
		}
	}
	if r := byName["csc-gather"]; !r.AllowSlice || r.AllowIndex != 1 {
		t.Errorf("csc-gather allowances = slice=%t index=%d, want slice=true index=1", r.AllowSlice, r.AllowIndex)
	}
	if r := byName["radix8-taps"]; !r.AllowSlice || r.AllowIndex != 0 {
		t.Errorf("radix8-taps allowances = slice=%t index=%d, want slice=true index=0", r.AllowSlice, r.AllowIndex)
	}
}

// TestManifestMatchesSource is the drift check the gate runs, as a plain
// test: the checked-in manifest must match the live annotations.
func TestManifestMatchesSource(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	root := moduleRoot(t)
	prog, err := LoadPackages(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	checked, err := LoadManifest(filepath.Join(root, "internal", "analysis", "hotpath_manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	derived, err := DeriveManifest(prog)
	if err != nil {
		t.Fatal(err)
	}
	if drift := DiffManifest(checked, derived); len(drift) != 0 {
		t.Errorf("manifest drift (run `go run ./cmd/radixvet -regen-manifest ./...`):\n  %s",
			strings.Join(drift, "\n  "))
	}
}
