package analysis

// analysistest.go is the golang.org/x/tools-style expectation harness for
// the radixvet analyzers, dependency-free. A testdata package marks each
// line where it expects a diagnostic with a trailing
//
//	// want "regexp" ["regexp" ...]
//
// comment. CheckExpectations loads the directory as a single package,
// runs the analyzers, and reports every mismatch: a diagnostic with no
// matching want, a want with no matching diagnostic, or a want whose
// regexp fails to compile.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// wantRe matches one quoted expectation: backquoted (the common form —
// regexp metacharacters need no escaping) or double-quoted with strconv
// escapes.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// parseExpectations scans every .go file under dir for want comments.
func parseExpectations(dir string) ([]*expectation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, spec, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			quoted := wantRe.FindAllString(spec, -1)
			if len(quoted) == 0 {
				return nil, fmt.Errorf("%s:%d: malformed want comment (no quoted regexp)", path, i+1)
			}
			for _, q := range quoted {
				pat, err := strconv.Unquote(q)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want quoting %s: %v", path, i+1, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", path, i+1, pat, err)
				}
				wants = append(wants, &expectation{file: path, line: i + 1, re: re, raw: pat})
			}
		}
	}
	return wants, nil
}

// CheckExpectations runs analyzers over the single-package directory dir
// (resolving imports against the module rooted at moduleDir) and matches
// the diagnostics against the package's want comments. The returned slice
// is empty when every diagnostic was expected and every expectation fired.
func CheckExpectations(moduleDir, dir string, analyzers []*Analyzer) ([]string, error) {
	prog, err := LoadDir(moduleDir, dir)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", dir, err)
	}
	diags, err := Run(prog, analyzers)
	if err != nil {
		return nil, err
	}
	wants, err := parseExpectations(dir)
	if err != nil {
		return nil, err
	}
	byLine := make(map[string][]*expectation)
	for _, w := range wants {
		key := w.file + ":" + strconv.Itoa(w.line)
		byLine[key] = append(byLine[key], w)
	}
	var problems []string
	for _, d := range diags {
		key := d.Pos.Filename + ":" + strconv.Itoa(d.Pos.Line)
		matched := false
		for _, w := range byLine[key] {
			if !w.hit && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if !w.hit {
			problems = append(problems, fmt.Sprintf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw))
		}
	}
	sort.Strings(problems)
	return problems, nil
}
