package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicHygiene reports mixed atomic/non-atomic access to the same memory —
// the bug class behind PR 8's scrape-window race, where a field written
// under sync/atomic in one place was read bare in another and the race
// detector only caught it under the right interleaving.
//
// Two field styles are policed:
//
//   - Typed atomics (atomic.Int64, atomic.Uint64, atomic.Bool,
//     atomic.Pointer[T], atomic.Value, ...): the only legal uses of such a
//     field are method calls (f.Load(), f.Store(x), ...) and taking its
//     address to pass the atomic along. Copying the value — y := x.f,
//     x.f = other.f, embedding it in a composite literal — is reported:
//     a copy carries a go vet-visible nocopy sentinel for a reason, and a
//     copied atomic is a fork of the counter, not the counter.
//
//   - Old-style bare fields driven through the sync/atomic functions
//     (atomic.AddInt64(&s.n, 1), ...): every field that appears as the
//     pointer operand of an atomic call anywhere in the program is
//     recorded, and after all packages are visited, every *other* plain
//     read or write of that same field object is reported. Cross-package
//     detection is why this analyzer has an End hook: the field may be
//     atomically updated in one package and leaked bare in another, and
//     the shared type-check universe makes the types.Object identity line
//     up across both.
//
// A deliberate unsynchronized access (a constructor before publication, a
// post-join accessor) is suppressed by putting //radix:atomic-ok on the
// same line.
var AtomicHygiene = &Analyzer{
	Name: "atomichygiene",
	Doc:  "report non-atomic access to fields that are accessed atomically elsewhere",
	Run:  runAtomicHygiene,
	End:  endAtomicHygiene,
}

// atomicFuncs is the sync/atomic free-function surface keyed by name; all
// of them take the target address as their first argument.
var atomicFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

// atomicState accumulates cross-package facts under Program.State.
type atomicState struct {
	// atomicAt maps a field/var object to the first position where it was
	// used through a sync/atomic function.
	atomicAt map[types.Object]token.Position
	// plainAt maps the same objects to every bare (non-atomic) access.
	plainAt map[types.Object][]token.Position
	// suppressed holds "file:line" keys carrying //radix:atomic-ok.
	suppressed map[string]bool
}

func getAtomicState(prog *Program) *atomicState {
	st, ok := prog.State["atomichygiene"].(*atomicState)
	if !ok {
		st = &atomicState{
			atomicAt:   make(map[types.Object]token.Position),
			plainAt:    make(map[types.Object][]token.Position),
			suppressed: make(map[string]bool),
		}
		prog.State["atomichygiene"] = st
	}
	return st
}

func runAtomicHygiene(pass *Pass) error {
	st := getAtomicState(pass.Prog)
	info := pass.Pkg.Info
	fset := pass.Prog.Fset

	for _, f := range pass.Pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, "//radix:atomic-ok") {
					p := fset.Position(c.Pos())
					st.suppressed[suppressKey(p)] = true
				}
			}
		}
	}

	walk(pass.Pkg.Files, func(stack []ast.Node, n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// atomic.AddInt64(&s.n, 1): record s.n as atomically-driven and
			// prune the argument so the selector inside isn't also counted
			// as a plain access.
			if obj := atomicCallTarget(info, n); obj != nil {
				if _, seen := st.atomicAt[obj]; !seen {
					st.atomicAt[obj] = fset.Position(n.Pos())
				}
			}
		case *ast.SelectorExpr:
			checkAtomicSelector(pass, st, stack, n)
		case *ast.Ident:
			// Bare vars (package-level or local) driven through atomic calls.
			if obj, ok := info.Uses[n]; ok {
				if v, isVar := obj.(*types.Var); isVar && !v.IsField() && v.Pkg() != nil && isAtomicEligible(v.Type()) {
					if !isAtomicOperand(info, stack, n) {
						st.plainAt[obj] = append(st.plainAt[obj], fset.Position(n.Pos()))
					}
				}
			}
		}
		return true
	})
	return nil
}

// atomicCallTarget returns the field/var object addressed by the first
// argument of a sync/atomic call, or nil.
func atomicCallTarget(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	obj, ok := info.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" || !atomicFuncs[sel.Sel.Name] {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	u, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	return addressedObject(info, u.X)
}

// addressedObject resolves &expr's target to a field or variable object.
func addressedObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		if obj, ok := info.Uses[e.Sel]; ok {
			return obj
		}
	case *ast.Ident:
		if obj, ok := info.Uses[e]; ok {
			return obj
		}
	case *ast.IndexExpr:
		// &arr[i]: elements aren't tracked per-object; ignore.
	}
	return nil
}

// isAtomicEligible filters to the types sync/atomic free functions accept —
// recording every int field in the program would bloat plainAt for nothing.
func isAtomicEligible(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Int32, types.Int64, types.Uint32, types.Uint64, types.Uintptr:
			return true
		}
	case *types.Pointer:
		return true
	}
	return false
}

// isAtomicOperand reports whether the node (an ident or selector) is the
// &-operand of a sync/atomic call, judged from the ancestor stack.
func isAtomicOperand(info *types.Info, stack []ast.Node, n ast.Node) bool {
	// Expected shape: ... CallExpr > UnaryExpr(&) > [ParenExpr...] > n
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.UnaryExpr:
			if s.Op != token.AND {
				return false
			}
			if i > 0 {
				for j := i - 1; j >= 0; j-- {
					if _, ok := stack[j].(*ast.ParenExpr); ok {
						continue
					}
					call, ok := stack[j].(*ast.CallExpr)
					return ok && atomicCallTarget(info, call) != nil
				}
			}
			return false
		default:
			return false
		}
	}
	return false
}

// checkAtomicSelector handles both field styles for one selector use.
func checkAtomicSelector(pass *Pass, st *atomicState, stack []ast.Node, n *ast.SelectorExpr) {
	info := pass.Pkg.Info
	sel, ok := info.Selections[n]
	if !ok || sel.Kind() != types.FieldVal {
		return
	}
	obj := sel.Obj()
	ftype := obj.Type()

	if isTypedAtomic(ftype) {
		// Legal: method call receiver (parent is a SelectorExpr choosing a
		// method) or address-of. Everything else copies the atomic.
		if len(stack) > 0 {
			switch p := stack[len(stack)-1].(type) {
			case *ast.SelectorExpr:
				if p.X == ast.Expr(n) {
					return // x.f.Load() — method or nested-field access
				}
			case *ast.UnaryExpr:
				if p.Op == token.AND {
					return // &x.f handed to something operating in place
				}
			}
		}
		p := pass.Prog.Fset.Position(n.Pos())
		if !st.suppressed[suppressKey(p)] {
			pass.Reportf(n.Pos(), "%s value of field %s is copied; use Load/Store or pass &%s",
				typeShort(ftype), obj.Name(), obj.Name())
		}
		return
	}

	if isAtomicEligible(ftype) && !isAtomicOperand(info, stack, n) {
		st.plainAt[obj] = append(st.plainAt[obj], pass.Prog.Fset.Position(n.Pos()))
	}
}

// isTypedAtomic reports whether t is one of sync/atomic's struct types
// (including instantiated atomic.Pointer[T]).
func isTypedAtomic(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

func typeShort(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

func suppressKey(p token.Position) string {
	return p.Filename + ":" + itoa(p.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func endAtomicHygiene(prog *Program, report func(Diagnostic)) error {
	st := getAtomicState(prog)
	for obj, atPos := range st.atomicAt {
		for _, plain := range st.plainAt[obj] {
			if st.suppressed[plain.Filename+":"+itoa(plain.Line)] {
				continue
			}
			report(Diagnostic{
				Pos: plain,
				Message: "field " + obj.Name() + " is accessed with sync/atomic at " +
					atPos.String() + " but read/written directly here (//radix:atomic-ok to waive)",
			})
		}
	}
	return nil
}
