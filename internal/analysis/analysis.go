// Package analysis is radixnet's static-analysis suite: a dependency-free
// reimplementation of the golang.org/x/tools/go/analysis driver shape
// (Analyzer/Pass/Diagnostic over type-checked packages) plus two
// compiler-diagnostic gates that parse `go build -gcflags` output to prove
// hot-path optimization invariants (zero heap escapes, bounds-check-free
// kernel loops) against a checked-in manifest.
//
// The paper's argument — structure known ahead of time beats runtime
// bookkeeping — applies to the codebase itself: the repo's headline numbers
// (index-free radix butterfly kernel, 0-alloc Histogram.Observe) rest on
// compiler behavior that one innocent refactor can silently destroy, with a
// noisy benchmark as the only tripwire. This package turns those invariants
// into machine-checked facts:
//
//   - hotpath: functions annotated //radix:hotpath must not call fmt/log/
//     time.Now, allocate, defer, or range over maps (see hotpath.go for the
//     annotation contract, including allow= escape hatches).
//   - atomichygiene: fields accessed through sync/atomic anywhere must never
//     be read or written non-atomically elsewhere.
//   - metriclint: metric-name literals handed to the exposition writers must
//     follow the radix(serve|router)_* Prometheus convention, and latency
//     histograms must stay on the shared bucket ladder that makes the
//     router's fleet merge exact.
//   - ctxguard: no context.Background()/TODO() or context-less outbound
//     requests below the server layer.
//
// Everything here uses only the standard library: packages load through
// `go list -deps -json` and type-check with go/types in one shared universe,
// so types.Object identities are comparable across packages. The intended
// entry point is `go run ./cmd/radixvet ./...`.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named static check. Run is invoked once per target
// package in dependency order; End, when non-nil, runs after every package
// has been visited — the hook cross-package analyzers (atomichygiene) use
// to flush diagnostics accumulated in Program.State.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
	End  func(*Program, func(Diagnostic)) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	Target     bool // named by the load patterns (vs. pulled in as a dep)

	Files []*ast.File
	Types *types.Package
	Info  *types.Info // non-nil for targets only

	// TestFiles marks which of Files are in-package _test.go files. The
	// loader checks them into the package so cross-cutting analyzers
	// (atomichygiene) see test code too; production-convention analyzers
	// (hotpath, metriclint, ctxguard) scope themselves to ProdFiles.
	TestFiles map[*ast.File]bool
}

// ProdFiles returns the package's non-test files — the scope of analyzers
// enforcing production-only conventions. Test code legitimately mints toy
// metric names and context.Background() roots; only contracts that test
// code can break for production code (atomic access hygiene) walk all
// Files.
func (p *Package) ProdFiles() []*ast.File {
	if len(p.TestFiles) == 0 {
		return p.Files
	}
	files := make([]*ast.File, 0, len(p.Files)-len(p.TestFiles))
	for _, f := range p.Files {
		if !p.TestFiles[f] {
			files = append(files, f)
		}
	}
	return files
}

// Program is a universe of packages type-checked together, plus shared
// scratch state for cross-package analyzers.
type Program struct {
	Fset    *token.FileSet
	Pkgs    []*Package // dependency order
	Targets []*Package

	// State holds cross-package analyzer scratch, keyed by analyzer name.
	State map[string]any
}

// Run applies the analyzers to every target package and returns the
// findings sorted by position.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		for _, pkg := range prog.Targets {
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, report: report}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
		if a.End != nil {
			name := a.Name
			if err := a.End(prog, func(d Diagnostic) {
				d.Analyzer = name
				report(d)
			}); err != nil {
				return diags, fmt.Errorf("%s: %w", a.Name, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// All returns the full analyzer suite in its canonical order.
func All() []*Analyzer {
	return []*Analyzer{HotPath, AtomicHygiene, MetricLint, CtxGuard}
}

// walk traverses every file of the package, invoking fn with the ancestor
// stack (outermost first, not including n itself). Returning false prunes
// the subtree.
func walk(files []*ast.File, fn func(stack []ast.Node, n ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if !fn(stack, n) {
				// Pruned subtrees get no matching f(nil) pop: don't push.
				return false
			}
			stack = append(stack, n)
			return true
		})
	}
}
