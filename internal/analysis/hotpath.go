package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPath enforces the //radix:hotpath annotation contract.
//
// A function whose doc comment contains a line
//
//	//radix:hotpath
//	//radix:hotpath allow=alloc,time,defer
//
// promises its body is allocation-free and syscall-free: the inner loops of
// the sparse kernels, Histogram.Observe, TraceRing.Add, the batcher drain.
// Inside such a function the analyzer reports:
//
//   - any call into fmt, log, or log/slog (formatting machinery allocates
//     and boxes; hot paths must precompute their strings and errors);
//   - time.Now/Since/Until, unless allow=time (a ~60ns vDSO call — cheap
//     for a request path, ruinous inside a per-edge loop);
//   - allocation sites, unless allow=alloc: make/new/append, closures,
//     map/slice composite literals, &T{...}, string concatenation, and
//     explicit conversions of concrete values to interface types;
//   - defer, unless allow=defer (a fixed cost per call, not per iteration,
//     so request-scoped functions may opt in);
//   - go statements and range-over-map (nondeterministic order plus hidden
//     hashing cost).
//
// The allow= escape hatches exist because the contract is per-function, not
// per-line: ObserveTraced intentionally publishes one *Exemplar per
// observation (allow=alloc), and the batcher's execute holds a defer for
// dispatcher-token safety (allow=defer). The escape/BCE gates (gates.go)
// remain the ground truth for what the compiler actually did; this analyzer
// is the fast, in-editor approximation that names the offending operation.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "report allocation/logging/clock/defer operations inside //radix:hotpath functions",
	Run:  runHotPath,
}

// hotFunc is one annotated function: shared between the analyzer, the
// manifest regenerator, and the escape gate (which attributes compiler
// diagnostics to functions by line span).
type hotFunc struct {
	Decl     *ast.FuncDecl
	Name     string // receiver-qualified, e.g. (*Histogram).Observe
	File     string
	Line     int // declaration line
	EndLine  int // last line of the body
	Allow    map[string]bool
	AllowPos token.Pos
}

// hotpathFuncs scans a package for //radix:hotpath annotations. A malformed
// annotation (unknown allow token) is reported through report when non-nil.
func hotpathFuncs(prog *Program, pkg *Package, report func(pos token.Pos, format string, args ...any)) []hotFunc {
	var out []hotFunc
	for _, f := range pkg.ProdFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				rest, ok := strings.CutPrefix(c.Text, "//radix:hotpath")
				if !ok {
					continue
				}
				hf := hotFunc{
					Decl:  fd,
					Name:  funcDisplayName(fd),
					Allow: map[string]bool{},
				}
				for _, field := range strings.Fields(rest) {
					val, ok := strings.CutPrefix(field, "allow=")
					if !ok {
						if report != nil {
							report(c.Pos(), "malformed //radix:hotpath directive: unexpected %q", field)
						}
						continue
					}
					for _, tok := range strings.Split(val, ",") {
						switch tok {
						case "alloc", "time", "defer":
							hf.Allow[tok] = true
						default:
							if report != nil {
								report(c.Pos(), "unknown //radix:hotpath allow token %q (want alloc, time, defer)", tok)
							}
						}
					}
				}
				pos := prog.Fset.Position(fd.Pos())
				hf.File = pos.Filename
				hf.Line = pos.Line
				if fd.Body != nil {
					hf.EndLine = prog.Fset.Position(fd.Body.End()).Line
				} else {
					hf.EndLine = pos.Line
				}
				out = append(out, hf)
				break
			}
		}
	}
	return out
}

// funcDisplayName renders a receiver-qualified function name the way the
// manifest and diagnostics refer to it: Observe on *Histogram becomes
// (*Histogram).Observe; plain functions keep their identifier.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	var b strings.Builder
	b.WriteByte('(')
	writeRecvType(&b, t)
	b.WriteByte(')')
	b.WriteByte('.')
	b.WriteString(fd.Name.Name)
	return b.String()
}

func writeRecvType(b *strings.Builder, t ast.Expr) {
	switch t := t.(type) {
	case *ast.StarExpr:
		b.WriteByte('*')
		writeRecvType(b, t.X)
	case *ast.Ident:
		b.WriteString(t.Name)
	case *ast.IndexExpr: // generic receiver Type[T]
		writeRecvType(b, t.X)
	case *ast.IndexListExpr:
		writeRecvType(b, t.X)
	default:
		fmt.Fprintf(b, "%v", t)
	}
}

// bannedCallPkgs are import paths a hot path must never call into.
var bannedCallPkgs = map[string]string{
	"fmt":      "formats and allocates",
	"log":      "locks and formats",
	"log/slog": "allocates attribute records",
}

// clockFuncs are the time-package functions gated behind allow=time.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runHotPath(pass *Pass) error {
	funcs := hotpathFuncs(pass.Prog, pass.Pkg, pass.Reportf)
	info := pass.Pkg.Info
	for _, hf := range funcs {
		if hf.Decl.Body == nil {
			continue
		}
		allow := hf.Allow
		walk([]*ast.File{fileOf(pass.Pkg, hf.Decl)}, func(stack []ast.Node, n ast.Node) bool {
			// Constrain the walk to this one declaration.
			if _, isFile := n.(*ast.File); isFile {
				return true
			}
			if len(stack) == 1 && n != ast.Node(hf.Decl) {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				checkHotCall(pass, hf, info, n)
			case *ast.DeferStmt:
				if !allow["defer"] {
					pass.Reportf(n.Pos(), "%s: defer in hot path (amortize outside the loop or annotate allow=defer)", hf.Name)
				}
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "%s: go statement in hot path (goroutine start allocates a stack)", hf.Name)
			case *ast.FuncLit:
				if !allow["alloc"] {
					pass.Reportf(n.Pos(), "%s: closure literal in hot path may allocate", hf.Name)
				}
			case *ast.CompositeLit:
				checkHotComposite(pass, hf, info, stack, n)
			case *ast.BinaryExpr:
				if n.Op == token.ADD && !allow["alloc"] && isStringType(info, n.X) {
					pass.Reportf(n.Pos(), "%s: string concatenation allocates in hot path", hf.Name)
				}
			case *ast.RangeStmt:
				if tv, ok := info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(), "%s: range over map in hot path (hash iteration, nondeterministic order)", hf.Name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// fileOf returns the *ast.File containing decl.
func fileOf(pkg *Package, decl ast.Decl) *ast.File {
	for _, f := range pkg.Files {
		if f.Pos() <= decl.Pos() && decl.End() <= f.End() {
			return f
		}
	}
	return nil
}

// checkHotCall classifies one call expression inside a hot function.
func checkHotCall(pass *Pass, hf hotFunc, info *types.Info, call *ast.CallExpr) {
	allow := hf.Allow
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := info.Uses[fun]
		if b, ok := obj.(*types.Builtin); ok && !allow["alloc"] {
			switch b.Name() {
			case "make", "new", "append":
				pass.Reportf(call.Pos(), "%s: %s allocates in hot path", hf.Name, b.Name())
			}
			return
		}
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[fun.Sel]; ok && obj.Pkg() != nil {
			path := obj.Pkg().Path()
			if why, banned := bannedCallPkgs[path]; banned {
				pass.Reportf(call.Pos(), "%s: calls %s.%s in hot path (%s)", hf.Name, path, fun.Sel.Name, why)
				return
			}
			if path == "time" && clockFuncs[fun.Sel.Name] && !allow["time"] {
				pass.Reportf(call.Pos(), "%s: time.%s in hot path (pass the timestamp in or annotate allow=time)", hf.Name, fun.Sel.Name)
				return
			}
		}
	}
	// Explicit conversion to an interface type boxes its operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && !allow["alloc"] {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if atv, ok := info.Types[call.Args[0]]; ok && atv.Type != nil && !types.IsInterface(atv.Type) {
				pass.Reportf(call.Pos(), "%s: conversion to %s boxes %s in hot path", hf.Name, tv.Type, atv.Type)
			}
		}
	}
}

// checkHotComposite reports heap-bound composite literals: map/slice
// literals always allocate; struct literals only when their address is
// taken (&T{...} placed on the heap whenever it outlives the frame — the
// escape gate decides, but in a hot path even a stack copy of &T{} is a
// smell worth an explicit allow=alloc).
func checkHotComposite(pass *Pass, hf hotFunc, info *types.Info, stack []ast.Node, lit *ast.CompositeLit) {
	if hf.Allow["alloc"] {
		return
	}
	tv, ok := info.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		pass.Reportf(lit.Pos(), "%s: map literal allocates in hot path", hf.Name)
	case *types.Slice:
		// Nested literals inside an outer slice/array literal are part of
		// the outer allocation; report the outermost only.
		if len(stack) > 0 {
			if _, inLit := stack[len(stack)-1].(*ast.CompositeLit); inLit {
				return
			}
		}
		pass.Reportf(lit.Pos(), "%s: slice literal allocates in hot path", hf.Name)
	default:
		if len(stack) > 0 {
			if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
				pass.Reportf(lit.Pos(), "%s: &%s{...} in hot path likely escapes", hf.Name, types.TypeString(tv.Type, nil))
			}
		}
	}
}

func isStringType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
