// Package slo evaluates serving objectives ("99% of gc requests finish
// within 250ms") against the observability stack's histogram scrapes
// using the multi-window burn-rate method: the rate at which the error
// budget is being consumed is measured over a fast window (default 5m,
// catches pages-worthy regressions in minutes) and a slow window
// (default 1h, suppresses one-scrape blips), and an objective is
// violated only when both windows burn hot — the standard SRE
// alerting shape.
//
// The engine is fed cumulative samples (scrape deltas happen inside):
// a serve node records its own histogram snapshots, the router records
// the fleet-merged families, and both expose the evaluation as
// GET /v1/slo JSON plus radix*_slo_* gauge series on /metrics.
package slo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/radix-net/radixnet/internal/obs"
)

// Objective is one target: either a latency objective (Latency > 0 —
// at least Target of requests complete within Latency) or an error
// objective (Latency == 0 — at least Target of rows succeed).
// Model/Class select which recorded series it applies to; "*" matches
// every concrete model or class, and the empty class names the
// per-model aggregate series.
type Objective struct {
	// Name labels the objective in /v1/slo and the slo_* metric series.
	Name string `json:"name"`
	// Model is a concrete model name or "*" for every model.
	Model string `json:"model"`
	// Class is a concrete class name, "*" for every concrete class, or
	// "" for the per-model aggregate (all classes folded together).
	Class string `json:"class"`
	// Latency is the latency threshold a good request finishes within;
	// 0 makes this an error-ratio objective.
	Latency time.Duration `json:"latency_ns"`
	// Target is the required good fraction in (0,1), e.g. 0.99.
	Target float64 `json:"target"`
}

// String renders the objective in the flag form ParseObjective accepts.
func (o Objective) String() string {
	kind := "error"
	if o.Latency > 0 {
		kind = o.Latency.String()
	}
	return fmt.Sprintf("%s:%s:%s:%g", o.Model, o.Class, kind, o.Target*100)
}

// ParseObjective parses the compact flag form
// "MODEL:CLASS:LATENCY:TARGET_PCT", e.g. "*:*:250ms:99" (99% of every
// model×class's requests within 250ms) or "gc::error:99.9" (99.9% of
// gc rows succeed, all classes aggregated). LATENCY is a Go duration
// or the literal "error" for an error-ratio objective.
func ParseObjective(spec string) (Objective, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 4 {
		return Objective{}, fmt.Errorf("slo: objective %q: want MODEL:CLASS:LATENCY:TARGET_PCT", spec)
	}
	// A duration like "1m30s" has no ':', so only the target can follow
	// the latency field; reject extra fields.
	if len(parts) > 4 {
		return Objective{}, fmt.Errorf("slo: objective %q: too many fields", spec)
	}
	o := Objective{Model: strings.TrimSpace(parts[0]), Class: strings.TrimSpace(parts[1])}
	if o.Model == "" {
		o.Model = "*"
	}
	lat := strings.TrimSpace(parts[2])
	if lat != "error" {
		d, err := time.ParseDuration(lat)
		if err != nil || d <= 0 {
			return Objective{}, fmt.Errorf("slo: objective %q: bad latency %q (Go duration or \"error\")", spec, lat)
		}
		o.Latency = d
	}
	pct, err := strconv.ParseFloat(strings.TrimSpace(parts[3]), 64)
	if err != nil || pct <= 0 || pct >= 100 {
		return Objective{}, fmt.Errorf("slo: objective %q: bad target %q (percent in (0,100))", spec, parts[3])
	}
	o.Target = pct / 100
	o.Name = fmt.Sprintf("%s-le-%s", displayClassOrModel(o.Model, o.Class), lat)
	return o, nil
}

func displayClassOrModel(model, class string) string {
	m := model
	if class != "" {
		m += "-" + class
	}
	return m
}

// ParseObjectives parses a comma- or semicolon-free list of repeated
// flag values.
func ParseObjectives(specs []string) ([]Objective, error) {
	out := make([]Objective, 0, len(specs))
	for _, s := range specs {
		o, err := ParseObjective(s)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

// Config tunes an Engine. Zero-value windows and thresholds take the
// defaults below.
type Config struct {
	Objectives []Objective
	// FastWindow/SlowWindow are the two burn-rate windows.
	FastWindow time.Duration // default 5m
	SlowWindow time.Duration // default 1h
	// FastBurn/SlowBurn are the violation thresholds: the objective is
	// violated when both windows burn at or above their threshold, in
	// budget-consumption multiples of sustainable (1.0 = exactly on
	// target). Defaults 14.4 and 6 — the classic page thresholds.
	FastBurn float64
	SlowBurn float64
	// MaxSamples bounds the retained scrape samples per series
	// (default 512).
	MaxSamples int
}

const (
	DefaultFastWindow = 5 * time.Minute
	DefaultSlowWindow = time.Hour
	DefaultFastBurn   = 14.4
	DefaultSlowBurn   = 6.0
	defaultMaxSamples = 512
)

func (c Config) withDefaults() Config {
	if c.FastWindow <= 0 {
		c.FastWindow = DefaultFastWindow
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = DefaultSlowWindow
	}
	if c.SlowWindow < c.FastWindow {
		c.SlowWindow = c.FastWindow
	}
	if c.FastBurn <= 0 {
		c.FastBurn = DefaultFastBurn
	}
	if c.SlowBurn <= 0 {
		c.SlowBurn = DefaultSlowBurn
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = defaultMaxSamples
	}
	return c
}

// Sample is one cumulative observation of a series: the latency
// histogram (in seconds, the exported unit) plus row-outcome counters
// for error objectives. Counters are since process (or fleet) start;
// the engine forms windows by subtracting retained samples.
type Sample struct {
	Hist obs.ScrapedHist
	// Bad/Total are cumulative row counts for the error objective
	// (failed+expired+rejected vs accepted, in the serving stack).
	Bad   uint64
	Total uint64
}

type seriesKey struct{ model, class string }

type timedSample struct {
	t time.Time
	s Sample
}

type series struct {
	samples []timedSample
}

// Engine retains per-series sample history and evaluates the
// configured objectives on demand. Safe for concurrent use.
type Engine struct {
	cfg Config

	mu     sync.Mutex
	series map[seriesKey]*series
}

// New builds an engine; a nil return means no objectives were
// configured (callers treat that as "SLO evaluation off").
func New(cfg Config) *Engine {
	if len(cfg.Objectives) == 0 {
		return nil
	}
	return &Engine{cfg: cfg.withDefaults(), series: map[seriesKey]*series{}}
}

// Config reports the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Record retains one cumulative sample for (model, class) at now.
// Samples older than the slow window (plus one slot of slack for the
// baseline) are pruned.
func (e *Engine) Record(model, class string, s Sample, now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	k := seriesKey{model, class}
	sr := e.series[k]
	if sr == nil {
		sr = &series{}
		e.series[k] = sr
	}
	sr.samples = append(sr.samples, timedSample{t: now, s: s})
	// Prune: drop samples that can no longer serve as a slow-window
	// baseline, but always keep one sample older than the cutoff.
	cutoff := now.Add(-e.cfg.SlowWindow)
	firstKeep := 0
	for i := 0; i < len(sr.samples)-1; i++ {
		if sr.samples[i+1].t.After(cutoff) {
			break
		}
		firstKeep = i + 1
	}
	if firstKeep > 0 {
		sr.samples = append(sr.samples[:0], sr.samples[firstKeep:]...)
	}
	if over := len(sr.samples) - e.cfg.MaxSamples; over > 0 {
		// Beyond the cap, thin from the oldest end but keep the very
		// oldest as the long-window baseline.
		sr.samples = append(sr.samples[:1], sr.samples[1+over:]...)
	}
}

// Status is one objective evaluated against one concrete series.
type Status struct {
	Objective Objective `json:"objective"`
	Model     string    `json:"model"`
	Class     string    `json:"class,omitempty"`

	// FastBurn/SlowBurn are the budget-consumption rates over the two
	// windows (1.0 = consuming exactly the sustainable budget).
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	// Good/Total are the fast-window event counts behind FastBurn.
	FastGood  float64 `json:"fast_good"`
	FastTotal float64 `json:"fast_total"`
	// BudgetRemaining is 1 - SlowBurn, clamped at 0: the fraction of
	// error budget left if the slow window's burn is sustained.
	BudgetRemaining float64 `json:"budget_remaining"`
	// State is "ok", "warn" (either window burning above sustainable),
	// or "violated" (both windows at or above their thresholds).
	State string `json:"state"`
}

// StateOK/StateWarn/StateViolated are the Status.State values; the
// slo_state gauge exports them as 0/1/2.
const (
	StateOK       = "ok"
	StateWarn     = "warn"
	StateViolated = "violated"
)

// StateValue maps a Status.State to its gauge value.
func StateValue(state string) int {
	switch state {
	case StateViolated:
		return 2
	case StateWarn:
		return 1
	default:
		return 0
	}
}

// window returns the sample delta for the window ending at now: the
// latest sample minus the newest sample at or before now-w. A series
// younger than the window uses the zero sample as baseline (counters
// start at zero with the process).
func (sr *series) window(now time.Time, w time.Duration) (Sample, bool) {
	if len(sr.samples) == 0 {
		return Sample{}, false
	}
	latest := sr.samples[len(sr.samples)-1]
	cutoff := now.Add(-w)
	var base *Sample
	for i := len(sr.samples) - 1; i >= 0; i-- {
		if !sr.samples[i].t.After(cutoff) {
			base = &sr.samples[i].s
			break
		}
	}
	out := latest.s
	if base != nil {
		out.Hist = out.Hist.Sub(base.Hist)
		if out.Bad >= base.Bad {
			out.Bad -= base.Bad
		} else {
			out.Bad = 0
		}
		if out.Total >= base.Total {
			out.Total -= base.Total
		} else {
			out.Total = 0
		}
	}
	return out, true
}

// burn computes the budget-consumption rate of one window delta under
// the objective, plus the good/total event counts.
func (o Objective) burn(s Sample) (burn, good, total float64) {
	if o.Latency > 0 {
		total = float64(s.Hist.Count)
		good = s.Hist.CountBelow(o.Latency.Seconds())
	} else {
		total = float64(s.Total)
		good = total - float64(s.Bad)
	}
	if total <= 0 {
		return 0, 0, 0
	}
	if good > total {
		good = total
	}
	badRatio := (total - good) / total
	budget := 1 - o.Target
	if budget <= 0 {
		budget = 1e-9
	}
	return badRatio / budget, good, total
}

// matches reports whether the objective applies to the series key.
func (o Objective) matches(model, class string) bool {
	if o.Model != "*" && o.Model != model {
		return false
	}
	switch o.Class {
	case "*":
		return class != ""
	default:
		return o.Class == class
	}
}

// Evaluate runs every objective against every matching recorded
// series as of now, sorted by (model, class, objective name).
func (e *Engine) Evaluate(now time.Time) []Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []Status
	for k, sr := range e.series {
		fast, okF := sr.window(now, e.cfg.FastWindow)
		slow, okS := sr.window(now, e.cfg.SlowWindow)
		if !okF || !okS {
			continue
		}
		for _, o := range e.cfg.Objectives {
			if !o.matches(k.model, k.class) {
				continue
			}
			st := Status{Objective: o, Model: k.model, Class: k.class}
			var fg, ft float64
			st.FastBurn, fg, ft = o.burn(fast)
			st.SlowBurn, _, _ = o.burn(slow)
			st.FastGood, st.FastTotal = fg, ft
			st.BudgetRemaining = 1 - st.SlowBurn
			if st.BudgetRemaining < 0 {
				st.BudgetRemaining = 0
			}
			switch {
			case st.FastBurn >= e.cfg.FastBurn && st.SlowBurn >= e.cfg.SlowBurn:
				st.State = StateViolated
			case st.FastBurn > 1 || st.SlowBurn > 1:
				st.State = StateWarn
			default:
				st.State = StateOK
			}
			out = append(out, st)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Model != out[j].Model {
			return out[i].Model < out[j].Model
		}
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].Objective.Name < out[j].Objective.Name
	})
	return out
}

// View is the GET /v1/slo response body.
type View struct {
	FastWindow string   `json:"fast_window"`
	SlowWindow string   `json:"slow_window"`
	FastBurn   float64  `json:"fast_burn_threshold"`
	SlowBurn   float64  `json:"slow_burn_threshold"`
	Statuses   []Status `json:"statuses"`
}

// ViewOf packages an evaluation for the /v1/slo endpoint.
func (e *Engine) ViewOf(now time.Time) View {
	statuses := e.Evaluate(now)
	if statuses == nil {
		statuses = []Status{}
	}
	return View{
		FastWindow: e.cfg.FastWindow.String(),
		SlowWindow: e.cfg.SlowWindow.String(),
		FastBurn:   e.cfg.FastBurn,
		SlowBurn:   e.cfg.SlowBurn,
		Statuses:   statuses,
	}
}
