package slo

import (
	"math"
	"testing"
	"time"

	"github.com/radix-net/radixnet/internal/obs"
)

func TestParseObjective(t *testing.T) {
	o, err := ParseObjective("*:interactive:250ms:99")
	if err != nil {
		t.Fatal(err)
	}
	if o.Model != "*" || o.Class != "interactive" || o.Latency != 250*time.Millisecond || o.Target != 0.99 {
		t.Fatalf("parsed %+v", o)
	}
	if o.Name == "" {
		t.Fatal("objective has no name")
	}

	o, err = ParseObjective("e10::error:99.9")
	if err != nil {
		t.Fatal(err)
	}
	if o.Model != "e10" || o.Class != "" || o.Latency != 0 || math.Abs(o.Target-0.999) > 1e-12 {
		t.Fatalf("parsed %+v", o)
	}

	// Empty model means every model.
	if o, err = ParseObjective("::10ms:95"); err != nil || o.Model != "*" {
		t.Fatalf("parsed %+v, err %v", o, err)
	}

	for _, bad := range []string{
		"",
		"m:c:10ms",         // too few fields
		"m:c:10ms:99:x",    // too many fields
		"m::0s:99",         // zero latency
		"m::-5ms:99",       // negative latency
		"m::banana:99",     // neither duration nor "error"
		"m::10ms:0",        // target at the floor
		"m::10ms:100",      // target at the ceiling
		"m::10ms:-3",       // negative target
		"m::10ms:ninety",   // non-numeric target
		"m::error:100.001", // over the ceiling
	} {
		if o, err := ParseObjective(bad); err == nil {
			t.Errorf("ParseObjective(%q) = %+v, want error", bad, o)
		}
	}
}

func TestNewNilWithoutObjectives(t *testing.T) {
	if e := New(Config{}); e != nil {
		t.Fatal("New with no objectives should disable the engine (nil)")
	}
}

// histWithGood builds a cumulative scrape histogram with `good`
// observations at or below 10ms and total-good above it; the 0.01 bucket
// boundary coincides with the objective bound, so CountBelow is exact.
func histWithGood(good, total uint64) obs.ScrapedHist {
	return obs.ScrapedHist{
		Les:   []float64{0.01, 1},
		Cum:   []uint64{good, total},
		Count: total,
		Sum:   float64(total) * 0.01,
	}
}

func mustObjectives(t *testing.T, specs ...string) []Objective {
	t.Helper()
	objectives, err := ParseObjectives(specs)
	if err != nil {
		t.Fatal(err)
	}
	return objectives
}

func TestLatencyBurnStates(t *testing.T) {
	cases := []struct {
		name      string
		good      uint64
		wantBurn  float64
		wantState string
	}{
		{"all good", 100, 0, StateOK},
		{"5% bad burns 5x budget", 95, 5, StateWarn},
		{"50% bad burns 50x budget", 50, 50, StateViolated},
	}
	t0 := time.Unix(1700000000, 0)
	for _, tc := range cases {
		e := New(Config{Objectives: mustObjectives(t, "m::10ms:99")})
		e.Record("m", "", Sample{Hist: histWithGood(tc.good, 100)}, t0)
		statuses := e.Evaluate(t0)
		if len(statuses) != 1 {
			t.Fatalf("%s: %d statuses, want 1", tc.name, len(statuses))
		}
		st := statuses[0]
		if math.Abs(st.FastBurn-tc.wantBurn) > 1e-9 || math.Abs(st.SlowBurn-tc.wantBurn) > 1e-9 {
			t.Errorf("%s: burn fast %g slow %g, want %g", tc.name, st.FastBurn, st.SlowBurn, tc.wantBurn)
		}
		if st.State != tc.wantState {
			t.Errorf("%s: state %q, want %q", tc.name, st.State, tc.wantState)
		}
		if tc.good == 100 && st.BudgetRemaining != 1 {
			t.Errorf("%s: budget remaining %g, want 1", tc.name, st.BudgetRemaining)
		}
	}
}

func TestErrorObjective(t *testing.T) {
	t0 := time.Unix(1700000000, 0)
	e := New(Config{Objectives: mustObjectives(t, "m::error:99")})
	e.Record("m", "", Sample{Bad: 10, Total: 100}, t0)
	statuses := e.Evaluate(t0)
	if len(statuses) != 1 {
		t.Fatalf("%d statuses, want 1", len(statuses))
	}
	if st := statuses[0]; math.Abs(st.FastBurn-10) > 1e-9 || st.State != StateWarn {
		t.Fatalf("error objective: burn %g state %q, want 10 %q", st.FastBurn, st.State, StateWarn)
	}
}

// TestWindowDelta pins the multi-window semantics: a series that burned
// hot long ago but has been clean for the whole fast window reports a
// cold fast burn and a hot slow burn — warn, not violated, which is the
// page-only-on-sustained-burn property multi-window alerting exists for.
func TestWindowDelta(t *testing.T) {
	t0 := time.Unix(1700000000, 0)
	e := New(Config{
		Objectives: mustObjectives(t, "m::error:99"),
		FastWindow: time.Minute,
		SlowWindow: time.Hour,
	})
	// Cumulative counters: 50 of the first 100 requests were bad; the
	// next 100 (inside the fast window) were all good.
	e.Record("m", "", Sample{Bad: 50, Total: 100}, t0)
	now := t0.Add(2 * time.Minute)
	e.Record("m", "", Sample{Bad: 50, Total: 200}, now)

	statuses := e.Evaluate(now)
	if len(statuses) != 1 {
		t.Fatalf("%d statuses, want 1", len(statuses))
	}
	st := statuses[0]
	if st.FastBurn != 0 {
		t.Errorf("fast burn %g, want 0 (window delta has no bad events)", st.FastBurn)
	}
	if math.Abs(st.SlowBurn-25) > 1e-9 {
		t.Errorf("slow burn %g, want 25 (young series: zero baseline)", st.SlowBurn)
	}
	if st.State != StateWarn {
		t.Errorf("state %q, want %q", st.State, StateWarn)
	}
	if math.Abs(st.FastTotal-100) > 1e-9 || math.Abs(st.FastGood-100) > 1e-9 {
		t.Errorf("fast window good/total %g/%g, want 100/100", st.FastGood, st.FastTotal)
	}
}

func TestClassWildcardMatching(t *testing.T) {
	t0 := time.Unix(1700000000, 0)
	e := New(Config{Objectives: mustObjectives(t,
		"*:*:10ms:99", // concrete classes only
		"*::10ms:99",  // the per-model aggregate only
	)})
	e.Record("m", "", Sample{Hist: histWithGood(100, 100)}, t0)
	e.Record("m", "interactive", Sample{Hist: histWithGood(100, 100)}, t0)

	statuses := e.Evaluate(t0)
	if len(statuses) != 2 {
		t.Fatalf("%d statuses, want 2 (one per objective): %+v", len(statuses), statuses)
	}
	// Evaluate sorts by (model, class, name): aggregate first.
	if statuses[0].Class != "" || statuses[0].Objective.Class != "" {
		t.Errorf("aggregate objective matched class %q", statuses[0].Class)
	}
	if statuses[1].Class != "interactive" || statuses[1].Objective.Class != "*" {
		t.Errorf("wildcard-class objective matched %+v", statuses[1])
	}
}

func TestViewOfNeverNilStatuses(t *testing.T) {
	e := New(Config{Objectives: mustObjectives(t, "absent::10ms:99")})
	v := e.ViewOf(time.Unix(1700000000, 0))
	if v.Statuses == nil {
		t.Fatal("ViewOf returned nil Statuses")
	}
	if v.FastWindow == "" || v.SlowWindow == "" {
		t.Fatalf("ViewOf windows empty: %+v", v)
	}
}
