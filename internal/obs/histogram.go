// Package obs is the shared observability layer for the radixnet serving
// stack: lock-free log-bucketed latency histograms with mergeable
// snapshots and quantile extraction, windowed maxima, per-request traces
// with named span timings retained in a bounded lock-free ring, Go
// runtime gauges, and a parser for Prometheus histogram exposition (used
// by the router to merge backend histograms bucket-wise and by selftests
// to assert tail-latency invariants from the exported data).
//
// Everything here is stdlib-only and safe for concurrent use. The hot
// paths (Histogram.Observe, WindowedMax.Observe, TraceRing.Add) are
// wait-free on amd64/arm64: a handful of atomic adds, no locks, no
// allocation (Observe is 0 allocs/op; see BenchmarkHistogramObserve).
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"strconv"
	"sync/atomic"
)

// NumBuckets is the number of power-of-two buckets in a Histogram.
// Bucket i counts observations v with 2^(i-1) < v <= 2^i (bucket 0
// counts v <= 1), so 48 buckets cover 1ns .. ~78 hours when observing
// nanoseconds — every latency this stack can produce.
const NumBuckets = 48

// Exposition window: emitting all 48 buckets per series would bloat
// /metrics with empty lines, so WriteTo emits the le ladder for buckets
// minExpoBucket..maxExpoBucket (4.096µs .. ~17.2s for nanosecond
// observations) and folds everything outside into the first bucket and
// +Inf respectively. Counts are never lost — only boundary resolution
// outside the plausible latency range. All histograms share the exact
// same ladder, which is what makes router-side bucket-wise merging a
// straight per-le sum.
const (
	minExpoBucket = 12
	maxExpoBucket = 34
)

// Histogram is a fixed-size, power-of-two-bucketed histogram with
// atomic counters. The zero value is ready to use. Observe is lock-free
// and allocation-free; Snapshot returns a consistent-enough copy for
// monitoring (individual counters are read atomically; the set is not a
// single linearization point, which is the standard Prometheus trade).
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
}

// bucketOf maps an observation to its bucket index: the smallest i with
// v <= 2^i, clamped to the table.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	i := bits.Len64(uint64(v - 1))
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	return i
}

// BucketBound reports bucket i's inclusive upper bound (2^i).
func BucketBound(i int) int64 { return int64(1) << uint(i) }

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Snapshot copies the current counters into a mergeable value.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram, mergeable with
// other snapshots taken from histograms using the same unit.
type HistSnapshot struct {
	Buckets [NumBuckets]uint64
	Count   uint64
	Sum     int64
}

// Merge adds o's counters into s (bucket-wise).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Sub subtracts an earlier snapshot of the same histogram, yielding the
// distribution observed in the window between the two snapshots.
// Counters are monotone, so any underflow (from torn reads) clamps to 0.
func (s *HistSnapshot) Sub(prev HistSnapshot) {
	for i := range s.Buckets {
		if s.Buckets[i] >= prev.Buckets[i] {
			s.Buckets[i] -= prev.Buckets[i]
		} else {
			s.Buckets[i] = 0
		}
	}
	if s.Count >= prev.Count {
		s.Count -= prev.Count
	} else {
		s.Count = 0
	}
	if s.Sum >= prev.Sum {
		s.Sum -= prev.Sum
	} else {
		s.Sum = 0
	}
}

// Mean reports the arithmetic mean of the observed values (0 if empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile reports an estimate of the q-quantile (0 < q <= 1) in the
// observed unit, linearly interpolating within the containing bucket's
// [2^(i-1), 2^i] bounds. Returns 0 for an empty snapshot. The estimate
// for quantiles inside bucket i is never off by more than the bucket
// width, i.e. at most 2x — the standard log-bucket error bound.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i := 0; i < NumBuckets; i++ {
		n := float64(s.Buckets[i])
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo := int64(0)
			if i > 0 {
				lo = BucketBound(i - 1)
			}
			hi := BucketBound(i)
			frac := (rank - cum) / n
			return lo + int64(frac*float64(hi-lo))
		}
		cum += n
	}
	return BucketBound(NumBuckets - 1)
}

// WriteTo emits the snapshot as one Prometheus histogram series:
// name_bucket lines for the shared le ladder plus +Inf, then name_sum
// and name_count. Observations are divided by scale on the way out —
// pass 1e9 to export nanosecond observations in seconds. labels is a
// pre-rendered label body without braces (e.g. `model="m",class="c"`);
// it may be empty. The caller is responsible for emitting the # HELP
// and # TYPE <name> histogram header once per family.
func (s HistSnapshot) WriteTo(w io.Writer, name, labels string, scale float64) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i := 0; i <= maxExpoBucket; i++ {
		cum += s.Buckets[i]
		if i < minExpoBucket {
			continue
		}
		le := strconv.FormatFloat(float64(BucketBound(i))/scale, 'g', -1, 64)
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, le, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.Count)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, float64(s.Sum)/scale)
		fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, float64(s.Sum)/scale)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, s.Count)
	}
}

// WindowedMax tracks a running maximum over scrape windows: Observe
// folds values in, Rotate (called on scrape) reports the max over the
// last two windows and starts a new one. Keeping one previous window
// means a scrape arriving just after rotation still sees the recent
// peak, while a long-lived fleet stops reporting a years-old worst case
// — the fix for the all-time-max staleness bite in MetricsSnapshot.
type WindowedMax struct {
	cur  atomic.Int64
	prev atomic.Int64
}

// Observe folds v into the current window.
func (m *WindowedMax) Observe(v int64) {
	for {
		old := m.cur.Load()
		if v <= old || m.cur.CompareAndSwap(old, v) {
			return
		}
	}
}

// Value reports the max over the current and previous windows without
// rotating.
func (m *WindowedMax) Value() int64 {
	c, p := m.cur.Load(), m.prev.Load()
	if p > c {
		return p
	}
	return c
}

// Rotate reports the max over the current and previous windows, then
// retires the current window (prev <- cur, cur <- 0). Call on scrape.
func (m *WindowedMax) Rotate() int64 {
	c := m.cur.Swap(0)
	p := m.prev.Swap(c)
	if p > c {
		return p
	}
	return c
}
