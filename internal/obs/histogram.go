// Package obs is the shared observability layer for the radixnet serving
// stack: lock-free log-bucketed latency histograms with mergeable
// snapshots and quantile extraction, windowed maxima, per-request traces
// with named span timings retained in a bounded lock-free ring, Go
// runtime gauges, and a parser for Prometheus histogram exposition (used
// by the router to merge backend histograms bucket-wise and by selftests
// to assert tail-latency invariants from the exported data).
//
// Everything here is stdlib-only and safe for concurrent use. The hot
// paths (Histogram.Observe, WindowedMax.Observe, TraceRing.Add) are
// wait-free on amd64/arm64: a handful of atomic adds, no locks, no
// allocation (Observe is 0 allocs/op; see BenchmarkHistogramObserve).
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"strconv"
	"sync/atomic"
)

// NumBuckets is the number of power-of-two buckets in a Histogram.
// Bucket i counts observations v with 2^(i-1) < v <= 2^i (bucket 0
// counts v <= 1), so 48 buckets cover 1ns .. ~78 hours when observing
// nanoseconds — every latency this stack can produce.
const NumBuckets = 48

// Exposition window: emitting all 48 buckets per series would bloat
// /metrics with empty lines, so WriteTo emits the le ladder for buckets
// minExpoBucket..maxExpoBucket (4.096µs .. ~17.2s for nanosecond
// observations) and folds everything outside into the first bucket and
// +Inf respectively. Counts are never lost — only boundary resolution
// outside the plausible latency range. All histograms share the exact
// same ladder, which is what makes router-side bucket-wise merging a
// straight per-le sum.
const (
	minExpoBucket = 12
	maxExpoBucket = 34
)

// Histogram is a fixed-size, power-of-two-bucketed histogram with
// atomic counters. The zero value is ready to use. Observe is lock-free
// and allocation-free; Snapshot returns a consistent-enough copy for
// monitoring (individual counters are read atomically; the set is not a
// single linearization point, which is the standard Prometheus trade).
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64

	// exemplars is nil until EnableExemplars; the indirection keeps the
	// non-exemplar Observe path untouched (no per-bucket pointer slots
	// to initialize, no extra cache lines in the common case).
	exemplars atomic.Pointer[exemplarSet]
}

// Exemplar links a histogram bucket to the most recent traced
// observation that landed in it: the trace ID names the request, Value
// is the raw (unscaled) observation. /metrics emits it as an
// OpenMetrics-style "# {trace_id=...}" annotation so a slow bucket
// resolves to its stitched trace via /debug/traces?trace=<id>.
type Exemplar struct {
	TraceID string `json:"trace_id"`
	Value   int64  `json:"value"`
}

type exemplarSet struct {
	slots [NumBuckets]atomic.Pointer[Exemplar]
}

// bucketOf maps an observation to its bucket index: the smallest i with
// v <= 2^i, clamped to the table.
//
//radix:hotpath
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	i := bits.Len64(uint64(v - 1))
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	return i
}

// BucketBound reports bucket i's inclusive upper bound (2^i).
func BucketBound(i int) int64 { return int64(1) << uint(i) }

// Observe records one value. Negative values clamp to zero.
//
//radix:hotpath
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// EnableExemplars switches on per-bucket exemplar capture. Safe to call
// concurrently and more than once; a no-op after the first call.
func (h *Histogram) EnableExemplars() {
	if h.exemplars.Load() == nil {
		h.exemplars.CompareAndSwap(nil, &exemplarSet{})
	}
}

// ObserveTraced records one value like Observe and, when exemplars are
// enabled and traceID is non-empty, publishes {traceID, v} as the
// containing bucket's exemplar with a single atomic pointer swap
// (last-writer-wins — "the most recent request that landed here").
// With exemplars disabled or an empty traceID it degrades to exactly
// Observe's cost.
//
// allow=alloc: the one &Exemplar per traced observation IS the publication
// mechanism — readers hold the previous immutable value while the swap
// lands. Everything else in here must stay allocation-free.
//
//radix:hotpath allow=alloc
func (h *Histogram) ObserveTraced(v int64, traceID string) {
	if v < 0 {
		v = 0
	}
	b := bucketOf(v)
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	if traceID == "" {
		return
	}
	if ex := h.exemplars.Load(); ex != nil {
		ex.slots[b].Store(&Exemplar{TraceID: traceID, Value: v})
	}
}

// Snapshot copies the current counters into a mergeable value. When
// exemplars are enabled, the per-bucket exemplars ride along.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	if ex := h.exemplars.Load(); ex != nil {
		s.Exemplars = make([]Exemplar, NumBuckets)
		for i := range ex.slots {
			if e := ex.slots[i].Load(); e != nil {
				s.Exemplars[i] = *e
			}
		}
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram, mergeable with
// other snapshots taken from histograms using the same unit.
type HistSnapshot struct {
	Buckets [NumBuckets]uint64
	Count   uint64
	Sum     int64

	// Exemplars, when non-nil, has NumBuckets entries; an entry with an
	// empty TraceID means that bucket has no exemplar. Merge and Sub
	// carry exemplars through best-effort (counters are the contract).
	Exemplars []Exemplar
}

// Merge adds o's counters into s (bucket-wise). Exemplars merge
// per-bucket, preferring o's (the merged-in snapshot is treated as
// newer); a bucket keeps s's exemplar when o has none.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Exemplars != nil {
		if s.Exemplars == nil {
			s.Exemplars = make([]Exemplar, NumBuckets)
		}
		for i := range o.Exemplars {
			if o.Exemplars[i].TraceID != "" {
				s.Exemplars[i] = o.Exemplars[i]
			}
		}
	}
}

// Sub subtracts an earlier snapshot of the same histogram, yielding the
// distribution observed in the window between the two snapshots.
// Counters are monotone, so any underflow (from torn reads) clamps to 0.
func (s *HistSnapshot) Sub(prev HistSnapshot) {
	for i := range s.Buckets {
		if s.Buckets[i] >= prev.Buckets[i] {
			s.Buckets[i] -= prev.Buckets[i]
		} else {
			s.Buckets[i] = 0
		}
	}
	if s.Count >= prev.Count {
		s.Count -= prev.Count
	} else {
		s.Count = 0
	}
	if s.Sum >= prev.Sum {
		s.Sum -= prev.Sum
	} else {
		s.Sum = 0
	}
}

// Mean reports the arithmetic mean of the observed values (0 if empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile reports an estimate of the q-quantile (0 < q <= 1) in the
// observed unit, linearly interpolating within the containing bucket's
// [2^(i-1), 2^i] bounds. Returns 0 for an empty snapshot. The estimate
// for quantiles inside bucket i is never off by more than the bucket
// width, i.e. at most 2x — the standard log-bucket error bound.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i := 0; i < NumBuckets; i++ {
		n := float64(s.Buckets[i])
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo := int64(0)
			if i > 0 {
				lo = BucketBound(i - 1)
			}
			hi := BucketBound(i)
			frac := (rank - cum) / n
			return lo + int64(frac*float64(hi-lo))
		}
		cum += n
	}
	return BucketBound(NumBuckets - 1)
}

// WriteTo emits the snapshot as one Prometheus histogram series:
// name_bucket lines for the shared le ladder plus +Inf, then name_sum
// and name_count. Observations are divided by scale on the way out —
// pass 1e9 to export nanosecond observations in seconds. labels is a
// pre-rendered label body without braces (e.g. `model="m",class="c"`);
// it may be empty. The caller is responsible for emitting the # HELP
// and # TYPE <name> histogram header once per family.
func (s HistSnapshot) WriteTo(w io.Writer, name, labels string, scale float64) {
	s.WriteToRange(w, name, labels, scale, minExpoBucket, maxExpoBucket)
}

// WriteToRange is WriteTo with an explicit exposition window: buckets
// lo..hi (log2 indices) form the le ladder, everything below lo folds
// into the first emitted bucket and everything above hi into +Inf.
// The default window suits nanosecond latencies; small-integer
// histograms (batch sizes) pass a low window instead.
func (s HistSnapshot) WriteToRange(w io.Writer, name, labels string, scale float64, lo, hi int) {
	if lo < 0 {
		lo = 0
	}
	if hi >= NumBuckets {
		hi = NumBuckets - 1
	}
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i := 0; i <= hi; i++ {
		cum += s.Buckets[i]
		if i < lo {
			continue
		}
		le := strconv.FormatFloat(float64(BucketBound(i))/scale, 'g', -1, 64)
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d", name, labels, sep, le, cum)
		s.writeExemplar(w, i, i == lo, lo, scale)
		io.WriteString(w, "\n")
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d", name, labels, sep, s.Count)
	s.writeInfExemplar(w, hi, scale)
	io.WriteString(w, "\n")
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, float64(s.Sum)/scale)
		fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, float64(s.Sum)/scale)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, s.Count)
	}
}

// writeExemplar appends an OpenMetrics-style exemplar annotation
// (" # {trace_id=\"...\"} <value>") for exposition bucket i, if one is
// present. Buckets folded into the first emitted line (i < lo) surface
// on that line when first is true, newest observation winning.
func (s HistSnapshot) writeExemplar(w io.Writer, i int, first bool, lo int, scale float64) {
	if s.Exemplars == nil {
		return
	}
	e := s.Exemplars[i]
	if first {
		// The first exposition bucket also covers every sub-resolution
		// bucket below it.
		for j := 0; j < lo; j++ {
			if s.Exemplars[j].TraceID != "" {
				e = s.Exemplars[j]
			}
		}
		if s.Exemplars[i].TraceID != "" {
			e = s.Exemplars[i]
		}
	}
	if e.TraceID == "" {
		return
	}
	fmt.Fprintf(w, " # {trace_id=%q} %g", e.TraceID, float64(e.Value)/scale)
}

// writeInfExemplar emits the exemplar for observations past the
// exposition window (folded into the +Inf bucket).
func (s HistSnapshot) writeInfExemplar(w io.Writer, hi int, scale float64) {
	if s.Exemplars == nil {
		return
	}
	var e Exemplar
	for j := hi + 1; j < NumBuckets; j++ {
		if s.Exemplars[j].TraceID != "" {
			e = s.Exemplars[j]
		}
	}
	if e.TraceID == "" {
		return
	}
	fmt.Fprintf(w, " # {trace_id=%q} %g", e.TraceID, float64(e.Value)/scale)
}

// WindowedMax tracks a running maximum over scrape windows: Observe
// folds values in, Rotate (called on scrape) reports the max over the
// last two windows and starts a new one. Keeping one previous window
// means a scrape arriving just after rotation still sees the recent
// peak, while a long-lived fleet stops reporting a years-old worst case
// — the fix for the all-time-max staleness bite in MetricsSnapshot.
type WindowedMax struct {
	cur  atomic.Int64
	prev atomic.Int64
}

// Observe folds v into the current window.
//
//radix:hotpath
func (m *WindowedMax) Observe(v int64) {
	for {
		old := m.cur.Load()
		if v <= old || m.cur.CompareAndSwap(old, v) {
			return
		}
	}
}

// Value reports the max over the current and previous windows without
// rotating.
func (m *WindowedMax) Value() int64 {
	c, p := m.cur.Load(), m.prev.Load()
	if p > c {
		return p
	}
	return c
}

// Rotate reports the max over the current and previous windows, then
// retires the current window (prev <- cur, cur <- 0). Call on scrape.
func (m *WindowedMax) Rotate() int64 {
	c := m.cur.Swap(0)
	p := m.prev.Swap(c)
	if p > c {
		return p
	}
	return c
}
