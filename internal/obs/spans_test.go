package obs

import (
	"math"
	"strings"
	"testing"
)

func TestSpanCodecRoundTrip(t *testing.T) {
	in := []Span{
		{Name: "admission", StartMs: 0, DurMs: 0.042},
		{Name: "attempt:127.0.0.1:8080", StartMs: 1.5, DurMs: 12.25},
		{Name: "name with spaces|and;delims", StartMs: 3.125, DurMs: 0},
	}
	enc := EncodeSpans(in)
	if strings.ContainsAny(enc, " \n") {
		t.Fatalf("encoded form not header-safe: %q", enc)
	}
	out, err := DecodeSpans(enc)
	if err != nil {
		t.Fatalf("DecodeSpans(%q): %v", enc, err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip %d spans, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Name != in[i].Name {
			t.Errorf("span %d name %q, want %q", i, out[i].Name, in[i].Name)
		}
		// Offsets are rendered at µs resolution.
		if math.Abs(out[i].StartMs-in[i].StartMs) > 1e-3 || math.Abs(out[i].DurMs-in[i].DurMs) > 1e-3 {
			t.Errorf("span %d timing (%g, %g), want (%g, %g)",
				i, out[i].StartMs, out[i].DurMs, in[i].StartMs, in[i].DurMs)
		}
	}
}

func TestEncodeSpansEmpty(t *testing.T) {
	if enc := EncodeSpans(nil); enc != "" {
		t.Fatalf("EncodeSpans(nil) = %q, want empty", enc)
	}
	out, err := DecodeSpans("")
	if err != nil || out != nil {
		t.Fatalf("DecodeSpans(\"\") = %v, %v; want nil, nil", out, err)
	}
}

func TestEncodeSpansCapsCount(t *testing.T) {
	many := make([]Span, MaxWireSpans+10)
	for i := range many {
		many[i] = Span{Name: "s", StartMs: float64(i), DurMs: 1}
	}
	out, err := DecodeSpans(EncodeSpans(many))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != MaxWireSpans {
		t.Fatalf("encoded %d spans survived, want cap %d", len(out), MaxWireSpans)
	}
}

func TestDecodeSpansMalformed(t *testing.T) {
	cases := []struct{ name, in string }{
		{"missing fields", "queue|1.0"},
		{"extra fields", "queue|1.0|2.0|3.0"},
		{"empty name", "|1.0|2.0"},
		{"bad escape", "%zz|1.0|2.0"},
		{"negative start", "queue|-1.0|2.0"},
		{"negative duration", "queue|1.0|-2.0"},
		{"NaN start", "queue|NaN|2.0"},
		{"infinite duration", "queue|1.0|+Inf"},
		{"absurd start", "queue|1e13|2.0"},
		{"non-numeric", "queue|soon|2.0"},
		{"too many records", strings.Repeat("s|1|1;", MaxWireSpans+1) + "s|1|1"},
		{"oversize header", strings.Repeat("x", maxWireBytes+1)},
	}
	for _, tc := range cases {
		if out, err := DecodeSpans(tc.in); err == nil {
			t.Errorf("%s: DecodeSpans(%.40q...) = %v, want error", tc.name, tc.in, out)
		}
	}
}

func TestRebaseSpans(t *testing.T) {
	in := []Span{{Name: "queue", StartMs: 0.5, DurMs: 1}, {Name: "execute", StartMs: 2, DurMs: 3}}
	out := RebaseSpans(in, 10)
	if in[0].StartMs != 0.5 || in[1].StartMs != 2 {
		t.Fatalf("RebaseSpans mutated its input: %+v", in)
	}
	if out[0].StartMs != 10.5 || out[1].StartMs != 12 {
		t.Fatalf("rebased starts (%g, %g), want (10.5, 12)", out[0].StartMs, out[1].StartMs)
	}
	if out[0].DurMs != 1 || out[1].DurMs != 3 {
		t.Fatalf("rebase changed durations: %+v", out)
	}
	if RebaseSpans(nil, 10) != nil {
		t.Fatal("RebaseSpans(nil) != nil")
	}
}

func FuzzDecodeSpans(f *testing.F) {
	f.Add("queue|0.000|1.500;execute|1.500|3.250")
	f.Add("a%7Cb|1|2")
	f.Add(";;;")
	f.Add("x|1e308|1e308")
	f.Fuzz(func(t *testing.T, s string) {
		spans, err := DecodeSpans(s) // must never panic
		if err != nil {
			return
		}
		for _, sp := range spans {
			if sp.Name == "" || sp.StartMs < 0 || sp.DurMs < 0 {
				t.Fatalf("accepted invalid span %+v from %q", sp, s)
			}
		}
	})
}
