package obs

import (
	"bufio"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ScrapedHist is one histogram family reconstructed from Prometheus
// text exposition: ascending bucket upper bounds (in the exported unit,
// i.e. seconds for the radixnet stack), the cumulative count at each
// bound, and the series sum/count. Built by ParseHistogram from a
// /metrics scrape; selftests use it to assert tail-latency invariants
// from the exported data rather than internal tallies, and windowed
// assertions come from Sub on before/after scrapes.
type ScrapedHist struct {
	Les   []float64
	Cum   []uint64
	Count uint64
	Sum   float64
}

// ParseLabels parses a Prometheus label body (no braces) into a map.
// Handles escaped quotes and backslashes inside values.
func ParseLabels(s string) map[string]string {
	out := map[string]string{}
	i := 0
	for i < len(s) {
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			break
		}
		key := strings.TrimSpace(s[i : i+eq])
		key = strings.TrimSpace(strings.TrimPrefix(key, ","))
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			break
		}
		i++
		var val strings.Builder
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
			} else {
				val.WriteByte(s[i])
			}
			i++
		}
		i++ // closing quote
		out[key] = val.String()
	}
	return out
}

// matchesWant reports whether got contains every pair in want.
func matchesWant(got, want map[string]string) bool {
	for k, v := range want {
		if got[k] != v {
			return false
		}
	}
	return true
}

// ParseHistogram extracts the histogram series of the given family
// whose labels contain every pair in want (the "le" label is handled
// separately) from Prometheus text exposition. Series that differ only
// in labels absent from want — e.g. a backend label injected by the
// router — are merged bucket-wise, so a scrape of the router's merged
// view and a scrape of one backend parse through the same call. Returns
// ok=false if no matching series was found.
func ParseHistogram(text, family string, want map[string]string) (ScrapedHist, bool) {
	les := map[float64]uint64{}
	var count uint64
	var sum float64
	var sawBucket, sawCount bool

	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labelBody, valStr, ok := SplitSeries(line)
		if !ok {
			continue
		}
		switch name {
		case family + "_bucket":
			labels := ParseLabels(labelBody)
			if !matchesWant(labels, want) {
				continue
			}
			leStr, okLe := labels["le"]
			if !okLe {
				continue
			}
			le := math.Inf(1)
			if leStr != "+Inf" {
				f, err := strconv.ParseFloat(leStr, 64)
				if err != nil {
					continue
				}
				le = f
			}
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				continue
			}
			les[le] += uint64(v)
			sawBucket = true
		case family + "_sum":
			if !matchesWant(ParseLabels(labelBody), want) {
				continue
			}
			if v, err := strconv.ParseFloat(valStr, 64); err == nil {
				sum += v
			}
		case family + "_count":
			if !matchesWant(ParseLabels(labelBody), want) {
				continue
			}
			if v, err := strconv.ParseFloat(valStr, 64); err == nil {
				count += uint64(v)
				sawCount = true
			}
		}
	}
	if !sawBucket {
		return ScrapedHist{}, false
	}

	bounds := make([]float64, 0, len(les))
	for le := range les {
		bounds = append(bounds, le)
	}
	sort.Float64s(bounds)
	h := ScrapedHist{Sum: sum}
	for _, le := range bounds {
		if math.IsInf(le, 1) {
			if !sawCount {
				count = les[le]
			}
			continue
		}
		h.Les = append(h.Les, le)
		h.Cum = append(h.Cum, les[le])
	}
	h.Count = count
	if inf, ok := les[math.Inf(1)]; ok && !sawCount {
		h.Count = inf
	}
	return h, true
}

// SplitExemplar splits an optional OpenMetrics-style exemplar
// annotation (" # {trace_id=\"...\"} value") off a sample line,
// returning the bare sample and the annotation (without the " # "
// separator, empty when absent). Exposition in this stack never puts
// a bare " # " inside a label value, so a simple cut is exact.
func SplitExemplar(line string) (rest, exemplar string) {
	if i := strings.Index(line, " # "); i >= 0 {
		return line[:i], strings.TrimSpace(line[i+3:])
	}
	return line, ""
}

// SplitSeries splits one exposition sample line — "name{labels} value"
// or "name value", with an optional trailing timestamp or exemplar
// annotation (both dropped) — into its parts. Exposed for the router's
// bucket-wise fleet merge, which scans backend scrapes for histogram
// families outside ParseHistogram's one-family-at-a-time view.
func SplitSeries(line string) (name, labels, value string, ok bool) {
	line, _ = SplitExemplar(line)
	if br := strings.IndexByte(line, '{'); br >= 0 {
		end := strings.LastIndexByte(line, '}')
		if end < br {
			return "", "", "", false
		}
		name = line[:br]
		labels = line[br+1 : end]
		value = strings.TrimSpace(line[end+1:])
	} else {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return "", "", "", false
		}
		name = line[:sp]
		value = strings.TrimSpace(line[sp+1:])
	}
	if f := strings.Fields(value); len(f) > 0 {
		value = f[0] // drop optional timestamp
	}
	return name, labels, value, value != ""
}

// Scraped converts a local HistSnapshot into the le-ladder form a
// /metrics scrape of the same histogram would parse to, dividing
// observations by scale on the way (1e9 for ns→s) — the shared
// currency between locally-held histograms and fleet-merged scrapes
// that lets one SLO evaluator consume both.
func (s HistSnapshot) Scraped(scale float64) ScrapedHist {
	h := ScrapedHist{
		Les:   make([]float64, 0, maxExpoBucket-minExpoBucket+1),
		Cum:   make([]uint64, 0, maxExpoBucket-minExpoBucket+1),
		Count: s.Count,
		Sum:   float64(s.Sum) / scale,
	}
	var cum uint64
	for i := 0; i <= maxExpoBucket; i++ {
		cum += s.Buckets[i]
		if i < minExpoBucket {
			continue
		}
		h.Les = append(h.Les, float64(BucketBound(i))/scale)
		h.Cum = append(h.Cum, cum)
	}
	return h
}

// CountBelow estimates how many observations were at or below bound
// (in the exported unit), linearly interpolating within the straddling
// bucket — the "good event" counter for latency SLOs.
func (h ScrapedHist) CountBelow(bound float64) float64 {
	if h.Count == 0 || len(h.Les) == 0 || bound <= 0 {
		return 0
	}
	prevCum := uint64(0)
	prevLe := 0.0
	for i, le := range h.Les {
		if bound <= le {
			n := float64(h.Cum[i] - prevCum)
			width := le - prevLe
			if width <= 0 {
				return float64(h.Cum[i])
			}
			frac := (bound - prevLe) / width
			return float64(prevCum) + frac*n
		}
		prevCum = h.Cum[i]
		prevLe = le
	}
	// Bound above the ladder: everything in finite buckets counts, and
	// +Inf overflow does not.
	return float64(h.Cum[len(h.Cum)-1])
}

// Sub subtracts an earlier scrape of the same family (identical le
// ladder), yielding the window between the two scrapes. Mismatched
// ladders or counter regressions clamp to zero rather than panicking —
// a scrape race should never take down a selftest.
func (h ScrapedHist) Sub(prev ScrapedHist) ScrapedHist {
	out := ScrapedHist{Les: h.Les, Cum: make([]uint64, len(h.Cum))}
	copy(out.Cum, h.Cum)
	for i := range out.Cum {
		if i < len(prev.Cum) && len(prev.Les) == len(h.Les) {
			if out.Cum[i] >= prev.Cum[i] {
				out.Cum[i] -= prev.Cum[i]
			} else {
				out.Cum[i] = 0
			}
		}
	}
	out.Count = h.Count
	if h.Count >= prev.Count {
		out.Count = h.Count - prev.Count
	} else {
		out.Count = 0
	}
	out.Sum = h.Sum - prev.Sum
	if out.Sum < 0 {
		out.Sum = 0
	}
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) in the exported unit,
// linearly interpolating within the containing bucket. Observations
// above the last finite bound report that bound (the ladder tops out at
// ~17s, far above any latency budget this stack enforces).
func (h ScrapedHist) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Les) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	if rank < 1 {
		rank = 1
	}
	prevCum := uint64(0)
	prevLe := 0.0
	for i, le := range h.Les {
		cum := h.Cum[i]
		if float64(cum) >= rank {
			n := float64(cum - prevCum)
			if n <= 0 {
				return le
			}
			frac := (rank - float64(prevCum)) / n
			return prevLe + frac*(le-prevLe)
		}
		prevCum = cum
		prevLe = le
	}
	return h.Les[len(h.Les)-1]
}
