package obs

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"
)

// HeaderSpans carries a backend's span breakdown on the HTTP response
// wire in the compact form produced by EncodeSpans. The router decodes
// it and grafts the backend spans into its own trace under the winning
// attempt span, so one /debug/traces entry tells the whole story.
const HeaderSpans = "X-Radix-Spans"

// Wire-format bounds. A span breakdown is a handful of pipeline stages,
// so anything past these limits is malformed or hostile and is rejected
// rather than buffered.
const (
	// MaxWireSpans bounds how many spans EncodeSpans emits and
	// DecodeSpans accepts.
	MaxWireSpans = 64
	// maxWireBytes bounds the encoded header length DecodeSpans parses.
	maxWireBytes = 8 << 10
)

// EncodeSpans renders spans as a single header-safe string:
// records separated by ';', each record "name|start_ms|duration_ms"
// with the name percent-encoded (so names containing '|', ';' or
// non-ASCII survive the round trip). At most MaxWireSpans spans are
// encoded; the rest are dropped (they would be sub-µs bookkeeping
// stages, never the story).
func EncodeSpans(spans []Span) string {
	if len(spans) == 0 {
		return ""
	}
	if len(spans) > MaxWireSpans {
		spans = spans[:MaxWireSpans]
	}
	var b strings.Builder
	for i, s := range spans {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(url.QueryEscape(s.Name))
		b.WriteByte('|')
		b.WriteString(strconv.FormatFloat(s.StartMs, 'f', 3, 64))
		b.WriteByte('|')
		b.WriteString(strconv.FormatFloat(s.DurMs, 'f', 3, 64))
	}
	return b.String()
}

// DecodeSpans parses EncodeSpans output. It never panics on malformed
// input: any record that does not parse, any non-finite or negative
// timing, an over-long header, or more than MaxWireSpans records
// yields an error and a nil slice.
func DecodeSpans(s string) ([]Span, error) {
	if s == "" {
		return nil, nil
	}
	if len(s) > maxWireBytes {
		return nil, fmt.Errorf("obs: span header too long (%d bytes)", len(s))
	}
	records := strings.Split(s, ";")
	if len(records) > MaxWireSpans {
		return nil, fmt.Errorf("obs: too many spans (%d)", len(records))
	}
	out := make([]Span, 0, len(records))
	for _, rec := range records {
		parts := strings.Split(rec, "|")
		if len(parts) != 3 {
			return nil, fmt.Errorf("obs: malformed span record %q", rec)
		}
		name, err := url.QueryUnescape(parts[0])
		if err != nil || name == "" {
			return nil, fmt.Errorf("obs: malformed span name %q", parts[0])
		}
		start, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || start < 0 || start != start || start > 1e12 {
			return nil, fmt.Errorf("obs: malformed span start %q", parts[1])
		}
		dur, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || dur < 0 || dur != dur || dur > 1e12 {
			return nil, fmt.Errorf("obs: malformed span duration %q", parts[2])
		}
		out = append(out, Span{Name: name, StartMs: start, DurMs: dur})
	}
	return out, nil
}

// RebaseSpans returns a copy of spans with every StartMs shifted by
// baseMs — used by the router to graft backend-relative span offsets
// under the attempt span that produced them, so all offsets in the
// stitched trace share the router trace's time base.
func RebaseSpans(spans []Span, baseMs float64) []Span {
	if len(spans) == 0 {
		return nil
	}
	out := make([]Span, len(spans))
	for i, s := range spans {
		s.StartMs += baseMs
		out[i] = s
	}
	return out
}
