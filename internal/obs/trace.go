package obs

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// HeaderTraceID carries the request trace ID on the HTTP wire. The
// router (or any edge) generates one when absent; backends reuse an
// incoming ID so one ID follows the request through every tier, and
// both tiers echo it on the response.
const HeaderTraceID = "X-Radix-Trace-Id"

// NewTraceID returns a 32-hex-char random trace ID (128 bits).
func NewTraceID() string {
	return fmt.Sprintf("%016x%016x", rand.Uint64(), rand.Uint64())
}

// Span is one named stage of a request's lifecycle. Offsets and
// durations are wall-clock milliseconds relative to the owning trace's
// start, which keeps the wire format human-readable in /debug/traces
// and response bodies.
type Span struct {
	Name    string  `json:"name"`
	StartMs float64 `json:"start_ms"`
	DurMs   float64 `json:"duration_ms"`
}

// MkSpan builds a Span from durations.
func MkSpan(name string, start, dur time.Duration) Span {
	return Span{Name: name, StartMs: ms(start), DurMs: ms(dur)}
}

func ms(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// Trace is one completed (or failed) request as retained in a
// TraceRing and served from /debug/traces.
type Trace struct {
	ID      string    `json:"trace_id"`
	Model   string    `json:"model,omitempty"`
	Class   string    `json:"class,omitempty"`
	Backend string    `json:"backend,omitempty"`
	Start   time.Time `json:"start"`
	TotalMs float64   `json:"total_ms"`
	Status  int       `json:"status"`
	Rows    int       `json:"rows,omitempty"`
	Error   string    `json:"error,omitempty"`
	Spans   []Span    `json:"spans"`

	seq uint64
}

// SpanLine renders the span breakdown as a compact one-line string for
// slow-request log records: "queue=1.2ms execute=3.4ms ...".
func (t *Trace) SpanLine() string {
	var b strings.Builder
	for i, s := range t.Spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s.Name)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(s.DurMs, 'f', 3, 64))
		b.WriteString("ms")
	}
	return b.String()
}

// TraceRing is a bounded lock-free ring of recent traces. Add is
// wait-free (one atomic fetch-add plus one pointer store); readers
// assemble consistent views from the published pointers. When the ring
// wraps, the oldest trace is overwritten.
type TraceRing struct {
	slots []atomic.Pointer[Trace]
	next  atomic.Uint64
}

// DefaultTraceDepth is the ring size used when a caller passes n <= 0.
const DefaultTraceDepth = 256

// NewTraceRing returns a ring retaining the last n traces.
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = DefaultTraceDepth
	}
	return &TraceRing{slots: make([]atomic.Pointer[Trace], n)}
}

// Add publishes t into the ring. t must not be mutated afterwards.
func (r *TraceRing) Add(t *Trace) {
	seq := r.next.Add(1)
	t.seq = seq
	r.slots[(seq-1)%uint64(len(r.slots))].Store(t)
}

// Len reports the total number of traces ever added.
func (r *TraceRing) Len() uint64 { return r.next.Load() }

func (r *TraceRing) collect() []*Trace {
	out := make([]*Trace, 0, len(r.slots))
	for i := range r.slots {
		if t := r.slots[i].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Recent returns up to n retained traces, newest first.
func (r *TraceRing) Recent(n int) []*Trace {
	out := r.collect()
	sort.Slice(out, func(i, j int) bool { return out[i].seq > out[j].seq })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Slowest returns up to n retained traces, slowest first.
func (r *TraceRing) Slowest(n int) []*Trace {
	out := r.collect()
	sort.Slice(out, func(i, j int) bool { return out[i].TotalMs > out[j].TotalMs })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// tracesView is the GET /debug/traces response body.
type tracesView struct {
	Total   uint64   `json:"total"`
	Recent  []*Trace `json:"recent"`
	Slowest []*Trace `json:"slowest"`
}

// Handler serves the ring as JSON: {"total", "recent", "slowest"}.
// Query parameter n bounds the recent view (default 32, max ring
// depth); the slowest view always holds up to 8 entries.
func (r *TraceRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 32
		if v := req.URL.Query().Get("n"); v != "" {
			if p, err := strconv.Atoi(v); err == nil && p > 0 {
				n = p
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(tracesView{
			Total:   r.Len(),
			Recent:  r.Recent(n),
			Slowest: r.Slowest(8),
		})
	})
}
