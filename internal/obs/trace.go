package obs

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// HeaderTraceID carries the request trace ID on the HTTP wire. The
// router (or any edge) generates one when absent; backends reuse an
// incoming ID so one ID follows the request through every tier, and
// both tiers echo it on the response.
const HeaderTraceID = "X-Radix-Trace-Id"

// NewTraceID returns a 32-hex-char random trace ID (128 bits).
func NewTraceID() string {
	return fmt.Sprintf("%016x%016x", rand.Uint64(), rand.Uint64())
}

// Span is one named stage of a request's lifecycle. Offsets and
// durations are wall-clock milliseconds relative to the owning trace's
// start, which keeps the wire format human-readable in /debug/traces
// and response bodies.
type Span struct {
	Name    string  `json:"name"`
	StartMs float64 `json:"start_ms"`
	DurMs   float64 `json:"duration_ms"`
}

// MkSpan builds a Span from durations.
func MkSpan(name string, start, dur time.Duration) Span {
	return Span{Name: name, StartMs: ms(start), DurMs: ms(dur)}
}

func ms(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// Trace is one completed (or failed) request as retained in a
// TraceRing and served from /debug/traces.
type Trace struct {
	ID      string    `json:"trace_id"`
	Model   string    `json:"model,omitempty"`
	Class   string    `json:"class,omitempty"`
	Backend string    `json:"backend,omitempty"`
	Start   time.Time `json:"start"`
	TotalMs float64   `json:"total_ms"`
	Status  int       `json:"status"`
	Rows    int       `json:"rows,omitempty"`
	Error   string    `json:"error,omitempty"`
	Spans   []Span    `json:"spans"`

	seq uint64
}

// SpanLine renders the span breakdown as a compact one-line string for
// slow-request log records: "queue=1.2ms execute=3.4ms ...".
func (t *Trace) SpanLine() string {
	var b strings.Builder
	for i, s := range t.Spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s.Name)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(s.DurMs, 'f', 3, 64))
		b.WriteString("ms")
	}
	return b.String()
}

// TraceRing is a bounded lock-free ring of recent traces. Add is
// wait-free (one atomic fetch-add plus one pointer store); readers
// assemble consistent views from the published pointers. When the ring
// wraps, the oldest trace is overwritten.
type TraceRing struct {
	slots []atomic.Pointer[Trace]
	next  atomic.Uint64
}

// DefaultTraceDepth is the ring size used when a caller passes n <= 0.
const DefaultTraceDepth = 256

// NewTraceRing returns a ring retaining the last n traces.
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = DefaultTraceDepth
	}
	return &TraceRing{slots: make([]atomic.Pointer[Trace], n)}
}

// Add publishes t into the ring. t must not be mutated afterwards.
//
//radix:hotpath
func (r *TraceRing) Add(t *Trace) {
	seq := r.next.Add(1)
	t.seq = seq
	r.slots[(seq-1)%uint64(len(r.slots))].Store(t)
}

// Len reports the total number of traces ever added.
func (r *TraceRing) Len() uint64 { return r.next.Load() }

func (r *TraceRing) collect() []*Trace {
	out := make([]*Trace, 0, len(r.slots))
	for i := range r.slots {
		if t := r.slots[i].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Recent returns up to n retained traces, newest first.
func (r *TraceRing) Recent(n int) []*Trace {
	out := r.collect()
	sort.Slice(out, func(i, j int) bool { return out[i].seq > out[j].seq })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Slowest returns up to n retained traces, slowest first.
func (r *TraceRing) Slowest(n int) []*Trace {
	out := r.collect()
	sort.Slice(out, func(i, j int) bool { return out[i].TotalMs > out[j].TotalMs })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Find returns the retained trace with the given ID (the newest, if
// the ID somehow repeats), or nil. It scans the ring — O(depth), fine
// for a debug endpoint, never for a hot path.
func (r *TraceRing) Find(id string) *Trace {
	if id == "" {
		return nil
	}
	var best *Trace
	for i := range r.slots {
		if t := r.slots[i].Load(); t != nil && t.ID == id {
			if best == nil || t.seq > best.seq {
				best = t
			}
		}
	}
	return best
}

// tracesView is the GET /debug/traces response body.
type tracesView struct {
	Total   uint64   `json:"total"`
	Recent  []*Trace `json:"recent"`
	Slowest []*Trace `json:"slowest"`
}

// traceView is the GET /debug/traces?trace=<id> response body.
type traceView struct {
	Total uint64 `json:"total"`
	Trace *Trace `json:"trace"`
}

func filterMinMs(traces []*Trace, minMs float64) []*Trace {
	if minMs <= 0 {
		return traces
	}
	out := traces[:0]
	for _, t := range traces {
		if t.TotalMs >= minMs {
			out = append(out, t)
		}
	}
	return out
}

// Handler serves the ring as JSON. The default view is {"total",
// "recent", "slowest"}: up to n recent traces (query ?n=, default 32,
// clamped to the ring depth) and the 8 slowest retained traces.
// ?min_ms=<f> drops traces faster than the threshold from both views.
// ?trace=<id> instead looks up one trace by ID — the jump target for
// histogram exemplar annotations — answering {"total", "trace"} or
// 404 if the ID is no longer (or never was) retained. Responses are
// always application/json and bounded by the ring depth.
func (r *TraceRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		q := req.URL.Query()
		if id := q.Get("trace"); id != "" {
			t := r.Find(id)
			if t == nil {
				w.WriteHeader(http.StatusNotFound)
				json.NewEncoder(w).Encode(map[string]string{"error": "trace not retained: " + id})
				return
			}
			json.NewEncoder(w).Encode(traceView{Total: r.Len(), Trace: t})
			return
		}
		n := 32
		if v := q.Get("n"); v != "" {
			if p, err := strconv.Atoi(v); err == nil && p > 0 {
				n = p
			}
		}
		if n > len(r.slots) {
			n = len(r.slots)
		}
		var minMs float64
		if v := q.Get("min_ms"); v != "" {
			if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
				minMs = f
			}
		}
		json.NewEncoder(w).Encode(tracesView{
			Total:   r.Len(),
			Recent:  filterMinMs(r.Recent(n), minMs),
			Slowest: filterMinMs(r.Slowest(8), minMs),
		})
	})
}
