package obs

import (
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
)

// WriteRuntimeMetrics emits Go runtime gauges under the given metric
// prefix (e.g. "radixserve"): live goroutines, heap bytes in use, total
// GC pause seconds, and completed GC cycles. Appended to /metrics so a
// fleet's scheduler pressure and GC behaviour are scrapeable alongside
// the request-path histograms.
func WriteRuntimeMetrics(w io.Writer, prefix string) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# HELP %s_goroutines Live goroutines.\n# TYPE %s_goroutines gauge\n%s_goroutines %d\n",
		prefix, prefix, prefix, runtime.NumGoroutine())
	fmt.Fprintf(w, "# HELP %s_heap_alloc_bytes Heap bytes in use.\n# TYPE %s_heap_alloc_bytes gauge\n%s_heap_alloc_bytes %d\n",
		prefix, prefix, prefix, ms.HeapAlloc)
	fmt.Fprintf(w, "# HELP %s_gc_pause_seconds_total Cumulative stop-the-world GC pause.\n# TYPE %s_gc_pause_seconds_total counter\n%s_gc_pause_seconds_total %g\n",
		prefix, prefix, prefix, float64(ms.PauseTotalNs)/1e9)
	fmt.Fprintf(w, "# HELP %s_gc_cycles_total Completed GC cycles.\n# TYPE %s_gc_cycles_total counter\n%s_gc_cycles_total %d\n",
		prefix, prefix, prefix, ms.NumGC)
}

// RegisterPprof mounts net/http/pprof's handlers on mux under
// /debug/pprof/. Opt-in: the servers only call this when profiling is
// enabled, so production muxes don't expose profiling by default.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
