package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestHistogramExemplarExposition(t *testing.T) {
	var h Histogram
	h.EnableExemplars()
	slow := int64(200 * time.Millisecond)
	h.ObserveTraced(int64(time.Millisecond), "aaaa0000aaaa0000aaaa0000aaaa0000")
	h.ObserveTraced(slow, "bbbb0000bbbb0000bbbb0000bbbb0000")

	var buf bytes.Buffer
	h.Snapshot().WriteTo(&buf, "x_seconds", `model="m"`, 1e9)
	text := buf.String()
	if !strings.Contains(text, `# {trace_id="bbbb0000bbbb0000bbbb0000bbbb0000"}`) {
		t.Fatalf("exposition missing the slow bucket's exemplar:\n%s", text)
	}

	// Exemplar annotations must not break scrape-side parsing, and the
	// annotated value must name the raw observation in the export unit.
	sh, ok := ParseHistogram(text, "x_seconds", nil)
	if !ok {
		t.Fatalf("ParseHistogram failed on exemplar-annotated exposition:\n%s", text)
	}
	if sh.Count != 2 {
		t.Fatalf("parsed count %d, want 2", sh.Count)
	}
	var annotated string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, `trace_id="bbbb`) {
			annotated = line
		}
	}
	rest, exemplar := SplitExemplar(annotated)
	if exemplar == "" {
		t.Fatalf("SplitExemplar found no annotation on %q", annotated)
	}
	if _, _, _, ok := SplitSeries(rest); !ok {
		t.Fatalf("series part %q no longer parses", rest)
	}
	if !strings.HasSuffix(exemplar, " 0.2") {
		t.Fatalf("exemplar %q should carry the raw observation 0.2s", exemplar)
	}
}

func TestHistogramExemplarLastWriterWins(t *testing.T) {
	var h Histogram
	h.EnableExemplars()
	h.ObserveTraced(1000, "first000first000first000first000")
	h.ObserveTraced(1001, "second00second00second00second00") // same bucket
	var buf bytes.Buffer
	h.Snapshot().WriteTo(&buf, "x", "", 1)
	if strings.Contains(buf.String(), "first000") || !strings.Contains(buf.String(), "second00") {
		t.Fatalf("bucket exemplar should be the most recent observation:\n%s", buf.String())
	}
}

func TestObserveTracedDisabledOrUntraced(t *testing.T) {
	var h Histogram
	h.ObserveTraced(123, "cccc0000cccc0000cccc0000cccc0000") // exemplars never enabled
	var buf bytes.Buffer
	h.Snapshot().WriteTo(&buf, "x", "", 1)
	if strings.Contains(buf.String(), "trace_id") {
		t.Fatalf("exemplar emitted without EnableExemplars:\n%s", buf.String())
	}
	if h.Snapshot().Count != 1 {
		t.Fatal("ObserveTraced lost the observation with exemplars disabled")
	}
}

// TestObserveAllocsWithExemplarsEnabled pins the hot-path contract: the
// plain Observe path stays allocation-free even after exemplar capture
// has been switched on (only traced observations pay the Exemplar box).
func TestObserveAllocsWithExemplarsEnabled(t *testing.T) {
	var h Histogram
	h.EnableExemplars()
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(12345)
	})
	if allocs != 0 {
		t.Fatalf("Observe with exemplars enabled allocates %v/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		h.ObserveTraced(12345, "")
	})
	if allocs != 0 {
		t.Fatalf("untraced ObserveTraced allocates %v/op, want 0", allocs)
	}
}

func BenchmarkHistogramObserveExemplarsEnabled(b *testing.B) {
	var h Histogram
	h.EnableExemplars()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramObserveTraced(b *testing.B) {
	var h Histogram
	h.EnableExemplars()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveTraced(int64(i), "feedface00000000feedface00000000")
	}
}

func FuzzParseHistogram(f *testing.F) {
	var h Histogram
	h.EnableExemplars()
	h.ObserveTraced(int64(5*time.Millisecond), "aaaa0000aaaa0000aaaa0000aaaa0000")
	h.Observe(int64(3 * time.Second))
	var buf bytes.Buffer
	h.Snapshot().WriteTo(&buf, "x_seconds", `model="m"`, 1e9)
	f.Add(buf.String())
	f.Add(`x_seconds_bucket{le="0.001"} 1` + "\n" + `x_seconds_count 1`)
	f.Add(`x_seconds_bucket{le="0.001"} 1 # {trace_id="zz"} 0.0005`)
	f.Add("x_seconds_bucket{le=\"0.001\"} NaN\nx_seconds_sum{} nope")
	f.Add("# HELP x_seconds broken\nx_seconds_bucket{le=} }{")
	f.Fuzz(func(t *testing.T, text string) {
		// Must never panic, whatever the scrape contains.
		sh, ok := ParseHistogram(text, "x_seconds", nil)
		if ok {
			if len(sh.Les) != len(sh.Cum) {
				t.Fatalf("ragged parse: %d les, %d cums from:\n%s", len(sh.Les), len(sh.Cum), text)
			}
			for i := 1; i < len(sh.Les); i++ {
				if sh.Les[i] <= sh.Les[i-1] {
					t.Fatalf("accepted unsorted le ladder %v from:\n%s", sh.Les, text)
				}
			}
		}
		for _, line := range strings.Split(text, "\n") {
			SplitExemplar(line)
			SplitSeries(line)
			ParseLabels(line)
		}
	})
}
