package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 20, 20}, {1<<20 + 1, 21},
		{math.MaxInt64, NumBuckets - 1},
	}
	for _, c := range cases {
		v := c.v
		if v < 0 {
			v = 0
		}
		if got := bucketOf(v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Bucket invariant: bucket i holds 2^(i-1) < v <= 2^i.
	for i := 1; i < 40; i++ {
		lo, hi := BucketBound(i-1), BucketBound(i)
		if bucketOf(lo+1) != i || bucketOf(hi) != i {
			t.Fatalf("bucket %d bounds violated: bucketOf(%d)=%d bucketOf(%d)=%d",
				i, lo+1, bucketOf(lo+1), hi, bucketOf(hi))
		}
		if bucketOf(lo) == i {
			t.Fatalf("bucket %d lower bound inclusive: bucketOf(%d)=%d", i, lo, bucketOf(lo))
		}
	}
}

func TestHistogramQuantileKnownDistribution(t *testing.T) {
	// 1000 observations uniformly spread over (0, 100ms]: quantiles are
	// known analytically, and the log-bucket estimate must land within
	// the containing power-of-two bucket (factor-2 error bound).
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(int64(i) * int64(100*time.Millisecond) / 1000)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	for _, c := range []struct {
		q    float64
		true float64 // ns
	}{
		{0.50, 50e6}, {0.90, 90e6}, {0.99, 99e6},
	} {
		got := float64(s.Quantile(c.q))
		if got < c.true/2 || got > c.true*2 {
			t.Errorf("q%.2f = %.3gns, want within 2x of %.3g", c.q, got, c.true)
		}
	}
	// A point mass is recovered within its bucket.
	var pm Histogram
	for i := 0; i < 100; i++ {
		pm.Observe(int64(3 * time.Millisecond))
	}
	// 3ms lands in bucket 22 (2097152, 4194304]ns; the estimate must stay
	// within those bucket bounds.
	got := pm.Snapshot().Quantile(0.99)
	if got < BucketBound(21) || got > BucketBound(22) {
		t.Errorf("point-mass p99 = %v, want within bucket 22 bounds", time.Duration(got))
	}
}

func TestHistogramMergeAndSub(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 10; i++ {
		a.Observe(1000)
		b.Observe(8000)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	merged := sa
	merged.Merge(sb)
	if merged.Count != 20 || merged.Sum != 10*1000+10*8000 {
		t.Fatalf("merge: count=%d sum=%d", merged.Count, merged.Sum)
	}
	if merged.Buckets[bucketOf(1000)] != 10 || merged.Buckets[bucketOf(8000)] != 10 {
		t.Fatalf("merge buckets wrong")
	}
	win := merged
	win.Sub(sa)
	if win.Count != 10 || win.Buckets[bucketOf(1000)] != 0 || win.Buckets[bucketOf(8000)] != 10 {
		t.Fatalf("sub window wrong: count=%d", win.Count)
	}
}

func TestHistogramExpositionExactBuckets(t *testing.T) {
	var h Histogram
	h.Observe(int64(5 * time.Microsecond))  // 5000ns -> bucket 13 (le 8192ns)
	h.Observe(int64(3 * time.Millisecond))  // bucket 22 (le ~4.19ms)
	h.Observe(int64(40 * time.Millisecond)) // bucket 26 (le ~67.1ms)
	h.Observe(1)                            // bucket 0, below the ladder: folds into first le
	var sb strings.Builder
	h.Snapshot().WriteTo(&sb, "t_seconds", `model="m"`, 1e9)
	text := sb.String()

	wantLines := []string{
		// First emitted bound: 2^12/1e9.
		`t_seconds_bucket{model="m",le="4.096e-06"} 1`,
		// 5µs lands in bucket 13 (8192ns).
		`t_seconds_bucket{model="m",le="8.192e-06"} 2`,
		// 3ms in bucket 22 (4194304ns).
		`t_seconds_bucket{model="m",le="0.004194304"} 3`,
		// 40ms in bucket 26 (67108864ns).
		`t_seconds_bucket{model="m",le="0.067108864"} 4`,
		`t_seconds_bucket{model="m",le="+Inf"} 4`,
		`t_seconds_count{model="m"} 4`,
	}
	for _, want := range wantLines {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	// Ladder size: buckets 12..34 plus +Inf.
	if got := strings.Count(text, "t_seconds_bucket{"); got != maxExpoBucket-minExpoBucket+2 {
		t.Errorf("bucket line count = %d, want %d", got, maxExpoBucket-minExpoBucket+2)
	}
	// Cumulative counts must be monotone non-decreasing.
	prev := uint64(0)
	hist, ok := ParseHistogram(text, "t_seconds", map[string]string{"model": "m"})
	if !ok {
		t.Fatal("ParseHistogram failed on own exposition")
	}
	for i, c := range hist.Cum {
		if c < prev {
			t.Fatalf("non-monotone cum at %d", i)
		}
		prev = c
	}
}

func TestScrapeRoundTrip(t *testing.T) {
	// A histogram written with WriteTo and re-parsed with ParseHistogram
	// must preserve count, sum, and quantile estimates.
	var h Histogram
	for i := 1; i <= 500; i++ {
		h.Observe(int64(i) * int64(time.Millisecond) / 10) // 0.1ms..50ms
	}
	snap := h.Snapshot()
	var sb strings.Builder
	sb.WriteString("# HELP t_seconds help\n# TYPE t_seconds histogram\n")
	snap.WriteTo(&sb, "t_seconds", `model="m",class="c"`, 1e9)

	hist, ok := ParseHistogram(sb.String(), "t_seconds", map[string]string{"model": "m", "class": "c"})
	if !ok {
		t.Fatal("no series found")
	}
	if hist.Count != snap.Count {
		t.Fatalf("count = %d, want %d", hist.Count, snap.Count)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		native := float64(snap.Quantile(q)) / 1e9
		scraped := hist.Quantile(q)
		if scraped < native/2 || scraped > native*2 {
			t.Errorf("q%.2f scraped=%g native=%g", q, scraped, native)
		}
	}
	// Aggregation across label-distinct series: same family, two models.
	var sb2 strings.Builder
	snap.WriteTo(&sb2, "t_seconds", `model="m",class="c"`, 1e9)
	snap.WriteTo(&sb2, "t_seconds", `model="m2",class="c"`, 1e9)
	all, ok := ParseHistogram(sb2.String(), "t_seconds", map[string]string{"class": "c"})
	if !ok || all.Count != 2*snap.Count {
		t.Fatalf("aggregate count = %d, want %d", all.Count, 2*snap.Count)
	}
	// Window diff.
	win := all.Sub(hist)
	if win.Count != snap.Count {
		t.Fatalf("window count = %d, want %d", win.Count, snap.Count)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const G, N = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < N; i++ {
				h.Observe(int64(g*1000 + i))
			}
		}(g)
	}
	// Concurrent snapshots + merges while observers run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		var acc HistSnapshot
		for i := 0; i < 200; i++ {
			s := h.Snapshot()
			acc.Merge(s)
			_ = s.Quantile(0.99)
		}
	}()
	wg.Wait()
	<-done
	if got := h.Snapshot().Count; got != G*N {
		t.Fatalf("count = %d, want %d", got, G*N)
	}
}

func TestWindowedMax(t *testing.T) {
	var m WindowedMax
	m.Observe(10)
	m.Observe(50)
	m.Observe(30)
	if m.Value() != 50 {
		t.Fatalf("value = %d", m.Value())
	}
	if got := m.Rotate(); got != 50 {
		t.Fatalf("rotate 1 = %d", got)
	}
	// Previous window still covers the peak for one more scrape.
	if got := m.Rotate(); got != 50 {
		t.Fatalf("rotate 2 = %d", got)
	}
	// Two rotations later the old peak has aged out.
	if got := m.Rotate(); got != 0 {
		t.Fatalf("rotate 3 = %d", got)
	}
	m.Observe(7)
	if got := m.Rotate(); got != 7 {
		t.Fatalf("rotate after observe = %d", got)
	}
}

func TestWindowedMaxConcurrent(t *testing.T) {
	var m WindowedMax
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				m.Observe(int64(i))
				if i%64 == 0 {
					_ = m.Value()
				}
			}
		}(g)
	}
	wg.Wait()
	if m.Value() != 1999 {
		t.Fatalf("value = %d, want 1999", m.Value())
	}
}

func TestHistogramObserveAllocs(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(12345)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v/op, want 0", allocs)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(1)
		for pb.Next() {
			h.Observe(v)
			v += 977
		}
	})
}
