package obs

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 32 || len(b) != 32 {
		t.Fatalf("trace id lengths %d/%d, want 32", len(a), len(b))
	}
	if a == b {
		t.Fatal("trace ids collide")
	}
}

func TestTraceRingRecentSlowest(t *testing.T) {
	r := NewTraceRing(4)
	for i := 1; i <= 6; i++ {
		r.Add(&Trace{ID: NewTraceID(), TotalMs: float64(i), Status: 200})
	}
	if r.Len() != 6 {
		t.Fatalf("len = %d", r.Len())
	}
	recent := r.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("recent = %d entries, want 4 (ring depth)", len(recent))
	}
	// Newest first; entries 1 and 2 overwritten.
	if recent[0].TotalMs != 6 || recent[3].TotalMs != 3 {
		t.Fatalf("recent order wrong: %v..%v", recent[0].TotalMs, recent[3].TotalMs)
	}
	slow := r.Slowest(2)
	if len(slow) != 2 || slow[0].TotalMs != 6 || slow[1].TotalMs != 5 {
		t.Fatalf("slowest wrong")
	}
}

func TestTraceRingHandler(t *testing.T) {
	r := NewTraceRing(8)
	tr := &Trace{
		ID: "deadbeef", Model: "m", Class: "interactive",
		Start: time.Now(), TotalMs: 1.5, Status: 200, Rows: 2,
		Spans: []Span{
			MkSpan("admission", 0, 100*time.Microsecond),
			MkSpan("queue", 100*time.Microsecond, time.Millisecond),
		},
	}
	r.Add(tr)
	req := httptest.NewRequest("GET", "/debug/traces?n=5", nil)
	w := httptest.NewRecorder()
	r.Handler().ServeHTTP(w, req)
	var view struct {
		Total   uint64   `json:"total"`
		Recent  []*Trace `json:"recent"`
		Slowest []*Trace `json:"slowest"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &view); err != nil {
		t.Fatalf("bad json: %v\n%s", err, w.Body.String())
	}
	if view.Total != 1 || len(view.Recent) != 1 || len(view.Slowest) != 1 {
		t.Fatalf("view = %+v", view)
	}
	got := view.Recent[0]
	if got.ID != "deadbeef" || len(got.Spans) != 2 || got.Spans[1].Name != "queue" {
		t.Fatalf("trace round-trip wrong: %+v", got)
	}
	if got.Spans[1].DurMs != 1.0 {
		t.Fatalf("span duration = %v, want 1ms", got.Spans[1].DurMs)
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(32)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add(&Trace{ID: NewTraceID(), TotalMs: float64(i)})
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			_ = r.Recent(8)
			_ = r.Slowest(4)
		}
	}()
	wg.Wait()
	<-done
	if r.Len() != 4000 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestSpanLine(t *testing.T) {
	tr := &Trace{Spans: []Span{
		MkSpan("queue", 0, 1200*time.Microsecond),
		MkSpan("execute", 0, 3400*time.Microsecond),
	}}
	got := tr.SpanLine()
	want := "queue=1.200ms execute=3.400ms"
	if got != want {
		t.Fatalf("SpanLine = %q, want %q", got, want)
	}
}
