package approx

import (
	"math"
	"math/rand"
	"testing"

	"github.com/radix-net/radixnet/internal/nn"
	"github.com/radix-net/radixnet/internal/sparse"
)

func TestFitDecayRecoversExactPowerLaw(t *testing.T) {
	widths := []int{8, 16, 32, 64, 128}
	for _, p := range []float64{0.5, 1, 2} {
		errs := make([]float64, len(widths))
		for i, w := range widths {
			errs[i] = 3.7 * math.Pow(float64(w), -p)
		}
		got, rsq := FitDecay(widths, errs)
		if math.Abs(got-p) > 1e-9 {
			t.Fatalf("p = %g, want %g", got, p)
		}
		if rsq < 0.999999 {
			t.Fatalf("R² = %g on an exact power law", rsq)
		}
	}
}

func TestFitDecayDegenerateInputs(t *testing.T) {
	if p, _ := FitDecay([]int{8}, []float64{1}); p != 0 {
		t.Fatal("single point must not fit")
	}
	if p, _ := FitDecay([]int{8, 16}, []float64{1}); p != 0 {
		t.Fatal("length mismatch must not fit")
	}
	// Zero errors are clamped, not crashed.
	p, _ := FitDecay([]int{8, 16}, []float64{0, 0})
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Fatalf("p = %g on clamped zeros", p)
	}
}

func TestFitDecayConstantErrors(t *testing.T) {
	p, rsq := FitDecay([]int{8, 16, 32}, []float64{0.5, 0.5, 0.5})
	if math.Abs(p) > 1e-12 {
		t.Fatalf("constant errors imply p ≈ 0, got %g", p)
	}
	if rsq < 1-1e-9 {
		t.Fatalf("constant fit R² = %g", rsq)
	}
}

func TestSupNormError(t *testing.T) {
	// A single linear layer initialized to zero predicts 0 everywhere; the
	// sup-norm error against f(x) = x is then 1 (attained at x = 1).
	rng := rand.New(rand.NewSource(1))
	dl, err := nn.NewDenseLinear(1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range dl.Params() {
		for i := range p.W {
			p.W[i] = 0
		}
	}
	net, _ := nn.NewNetwork(dl)
	sup, err := SupNormError(net, func(x float64) float64 { return x }, 101)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sup-1) > 1e-12 {
		t.Fatalf("sup = %g, want 1", sup)
	}
	if _, err := SupNormError(net, math.Sin, 1); err == nil {
		t.Fatal("degenerate grid accepted")
	}
}

func TestStandardTargetsAreContinuousAndBounded(t *testing.T) {
	for _, target := range StandardTargets() {
		prev := target.F(0)
		for i := 1; i <= 1000; i++ {
			x := float64(i) / 1000
			v := target.F(x)
			if math.IsNaN(v) || math.Abs(v) > 10 {
				t.Fatalf("%s unbounded at %g: %g", target.Name, x, v)
			}
			if math.Abs(v-prev) > 0.1 {
				t.Fatalf("%s jumps at %g: %g → %g", target.Name, x, prev, v)
			}
			prev = v
		}
	}
}

func TestSparseFamilyConstruction(t *testing.T) {
	for _, width := range []int{8, 16, 36} {
		net, err := SparseFamily(width, 3, 1)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		x, _ := sparse.NewDense(4, 1)
		out, err := net.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		if out.Cols() != 1 {
			t.Fatalf("output width = %d", out.Cols())
		}
		// The sparse family must have strictly fewer parameters than the
		// dense family at the same widths (for hidden ≥ 2).
		dnet, err := denseFamily(width, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		if net.NumParams() >= dnet.NumParams() {
			t.Fatalf("width %d: sparse %d params ≥ dense %d", width, net.NumParams(), dnet.NumParams())
		}
	}
}

func TestRunValidation(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.Widths = []int{8}
	if _, err := Run(StandardTargets()[0], cfg); err == nil {
		t.Fatal("single width accepted")
	}
	cfg = DefaultRunConfig()
	cfg.Epochs = 0
	if _, err := Run(StandardTargets()[0], cfg); err == nil {
		t.Fatal("zero epochs accepted")
	}
	cfg = DefaultRunConfig()
	cfg.Widths = []int{2, 4}
	if _, err := Run(StandardTargets()[0], cfg); err == nil {
		t.Fatal("too-small width accepted")
	}
}

func TestRunAveragedSmoke(t *testing.T) {
	cfg := RunConfig{
		Widths:      []int{8, 16},
		Hidden:      2,
		Epochs:      20,
		LR:          0.02,
		Samples:     32,
		Grid:        64,
		Seed:        1,
		BatchSize:   16,
		MaxParallel: 1,
	}
	res, err := RunAveraged(StandardTargets()[0], cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range append(res.Dense.SupErr, res.Sparse.SupErr...) {
		if math.IsNaN(e) || e <= 0 {
			t.Fatalf("bad averaged error %g", e)
		}
	}
	if _, err := RunAveraged(StandardTargets()[0], cfg, 0); err == nil {
		t.Fatal("zero seeds accepted")
	}
}

// TestRunSmoke exercises the full harness on a tiny budget: both families
// must achieve finite errors and the fitted exponents must be finite. The
// conjecture-level comparison (matched exponents on a real budget) runs in
// the benchmark harness.
func TestRunSmoke(t *testing.T) {
	cfg := RunConfig{
		Widths:      []int{8, 16},
		Hidden:      2,
		Epochs:      40,
		LR:          0.02,
		Samples:     32,
		Grid:        64,
		Seed:        1,
		BatchSize:   16,
		MaxParallel: 1,
	}
	res, err := Run(StandardTargets()[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dense.SupErr) != 2 || len(res.Sparse.SupErr) != 2 {
		t.Fatal("missing family results")
	}
	for _, e := range append(res.Dense.SupErr, res.Sparse.SupErr...) {
		if math.IsNaN(e) || math.IsInf(e, 0) || e <= 0 {
			t.Fatalf("bad sup error %g", e)
		}
	}
	if res.Dense.Params[0] <= res.Sparse.Params[0] {
		t.Fatalf("dense %d params should exceed sparse %d", res.Dense.Params[0], res.Sparse.Params[0])
	}
}
