// Package approx is the empirical harness for the paper's §IV conjecture:
// if the dense FNNT family D_N approximates continuous functions with error
// δ(D_N) ∈ O(N^{-p}), then a sparse symmetric family S_N achieves the same
// order. The harness trains dense and RadiX-Net networks of growing hidden
// width N on target functions in C[0,1], estimates the sup-norm error δ̂ on
// a fine grid, and fits the decay exponent p of each family. Matching
// fitted exponents (within tolerance) is the executable form of the
// conjecture.
package approx

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/dataset"
	"github.com/radix-net/radixnet/internal/nn"
	"github.com/radix-net/radixnet/internal/radix"
	"github.com/radix-net/radixnet/internal/sparse"
)

// Target is a named continuous function on [0,1].
type Target struct {
	Name string
	F    func(float64) float64
}

// StandardTargets returns the benchmark functions used by the conjecture
// experiments: smooth, oscillatory and kinked members of C[0,1].
func StandardTargets() []Target {
	return []Target{
		{Name: "sin2pi", F: func(x float64) float64 { return math.Sin(2 * math.Pi * x) }},
		{Name: "bump", F: func(x float64) float64 {
			d := x - 0.5
			return math.Exp(-50 * d * d)
		}},
		{Name: "abs-kink", F: func(x float64) float64 { return math.Abs(x-0.4) - 0.2 }},
	}
}

// RunConfig controls one decay experiment.
type RunConfig struct {
	Widths      []int // hidden widths N; each must be ≥ 4
	Hidden      int   // number of hidden layers (≥ 1)
	Epochs      int
	LR          float64
	Samples     int // training sample count on [0,1]
	Grid        int // sup-norm evaluation grid size
	Seed        int64
	BatchSize   int
	SparseOnly  bool // skip the dense family (used by benches)
	MaxParallel int  // trainer workers; <1 means GOMAXPROCS
}

// DefaultRunConfig returns a configuration small enough for tests yet able
// to expose the decay trend.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		Widths:    []int{8, 16, 32, 64},
		Hidden:    2,
		Epochs:    300,
		LR:        0.01,
		Samples:   128,
		Grid:      512,
		Seed:      1,
		BatchSize: 32,
	}
}

// FamilyResult reports one network family's error decay.
type FamilyResult struct {
	Widths  []int
	SupErr  []float64 // δ̂ at each width
	Params  []int     // trainable parameter counts
	Decay   float64   // fitted exponent p in δ̂ ∝ N^{-p}
	Rsq     float64   // goodness of the log-log fit
	Monoton bool      // whether δ̂ is non-increasing in N
}

// Result pairs the dense and sparse families on one target.
type Result struct {
	Target string
	Dense  FamilyResult
	Sparse FamilyResult
}

// Run trains both families on the target and returns their decay fits.
func Run(target Target, cfg RunConfig) (Result, error) {
	if len(cfg.Widths) < 2 {
		return Result{}, errors.New("approx: need at least two widths to fit a decay")
	}
	if cfg.Hidden < 1 || cfg.Epochs < 1 || cfg.Samples < 8 || cfg.Grid < 16 {
		return Result{}, fmt.Errorf("approx: invalid run config %+v", cfg)
	}
	res := Result{Target: target.Name}
	x, y, err := dataset.Func1D(target.F, cfg.Samples)
	if err != nil {
		return Result{}, err
	}

	var denseErr, sparseErr []float64
	var denseParams, sparseParams []int
	for wi, width := range cfg.Widths {
		if width < 4 {
			return Result{}, fmt.Errorf("approx: width %d too small", width)
		}
		seed := cfg.Seed + int64(wi)*1000
		if !cfg.SparseOnly {
			net, err := denseFamily(width, cfg.Hidden, seed)
			if err != nil {
				return Result{}, err
			}
			sup, err := trainAndMeasure(net, x, y, target.F, cfg, seed)
			if err != nil {
				return Result{}, err
			}
			denseErr = append(denseErr, sup)
			denseParams = append(denseParams, net.NumParams())
		}
		net, err := SparseFamily(width, cfg.Hidden, seed)
		if err != nil {
			return Result{}, err
		}
		sup, err := trainAndMeasure(net, x, y, target.F, cfg, seed)
		if err != nil {
			return Result{}, err
		}
		sparseErr = append(sparseErr, sup)
		sparseParams = append(sparseParams, net.NumParams())
	}
	if !cfg.SparseOnly {
		res.Dense = familyResult(cfg.Widths, denseErr, denseParams)
	}
	res.Sparse = familyResult(cfg.Widths, sparseErr, sparseParams)
	return res, nil
}

// denseFamily builds D_N: input 1 → hidden widths N (dense) → output 1.
func denseFamily(width, hidden int, seed int64) (*nn.Network, error) {
	rng := rand.New(rand.NewSource(seed))
	sizes := make([]int, hidden+2)
	sizes[0] = 1
	for i := 1; i <= hidden; i++ {
		sizes[i] = width
	}
	sizes[hidden+1] = 1
	return nn.DenseNet(sizes, nn.Tanh, rng)
}

// SparseFamily builds S_N: the same layer sizes as D_N but with RadiX-Net
// mixed-radix connectivity between hidden layers. Input and output
// connections stay dense (the collector construction of §IV.A), so the
// whole FNNT remains symmetric: ones · (mixed-radix product) · ones is a
// constant matrix. Exported for reuse by the training benchmarks.
func SparseFamily(width, hidden int, seed int64) (*nn.Network, error) {
	rng := rand.New(rand.NewSource(seed))
	var layers []nn.Layer
	first, err := nn.NewDenseLinear(1, width, rng)
	if err != nil {
		return nil, err
	}
	layers = append(layers, first, nn.Tanh())
	if hidden > 1 {
		sys, err := radix.Factorize(width)
		if err != nil {
			return nil, err
		}
		mr := core.MixedRadix(sys)
		// Use successive submatrices of the mixed-radix topology, cycling
		// when the network is deeper than the system.
		for i := 0; i < hidden-1; i++ {
			sub := mr.Sub(i % mr.NumSubs())
			layers = append(layers, nn.NewSparseLinear(sub, rng), nn.Tanh())
		}
	}
	last, err := nn.NewDenseLinear(width, 1, rng)
	if err != nil {
		return nil, err
	}
	layers = append(layers, last)
	return nn.NewNetwork(layers...)
}

func trainAndMeasure(net *nn.Network, x, y *sparse.Dense, f func(float64) float64, cfg RunConfig, seed int64) (float64, error) {
	tr := &nn.Trainer{
		Net:       net,
		Opt:       &nn.Adam{LR: cfg.LR},
		Loss:      nn.MSE{},
		BatchSize: cfg.BatchSize,
		Workers:   cfg.MaxParallel,
		Seed:      seed,
	}
	if tr.BatchSize < 1 {
		tr.BatchSize = 32
	}
	if _, err := tr.Fit(x, y, cfg.Epochs); err != nil {
		return 0, err
	}
	return SupNormError(net, f, cfg.Grid)
}

// SupNormError estimates δ̂ = sup_x |net(x) − f(x)| over a uniform grid on
// [0,1].
func SupNormError(net *nn.Network, f func(float64) float64, grid int) (float64, error) {
	if grid < 2 {
		return 0, errors.New("approx: grid must have at least two points")
	}
	x, _ := sparse.NewDense(grid, 1)
	for i := 0; i < grid; i++ {
		x.Set(i, 0, float64(i)/float64(grid-1))
	}
	out, err := net.Forward(x)
	if err != nil {
		return 0, err
	}
	var sup float64
	for i := 0; i < grid; i++ {
		if d := math.Abs(out.At(i, 0) - f(x.At(i, 0))); d > sup {
			sup = d
		}
	}
	return sup, nil
}

func familyResult(widths []int, errs []float64, params []int) FamilyResult {
	fr := FamilyResult{
		Widths: append([]int(nil), widths...),
		SupErr: append([]float64(nil), errs...),
		Params: append([]int(nil), params...),
	}
	fr.Decay, fr.Rsq = FitDecay(widths, errs)
	fr.Monoton = true
	for i := 1; i < len(errs); i++ {
		if errs[i] > errs[i-1]*1.05 { // tolerate small non-monotonic jitter
			fr.Monoton = false
		}
	}
	return fr
}

// RunAveraged repeats Run over `seeds` independent initializations and
// returns a Result whose per-width sup errors are geometric means across
// seeds. Training noise dominates single runs at small widths (low R²
// fits); averaging recovers the underlying decay trend without changing
// the per-run code path.
func RunAveraged(target Target, cfg RunConfig, seeds int) (Result, error) {
	if seeds < 1 {
		return Result{}, errors.New("approx: need at least one seed")
	}
	var agg Result
	denseLog := make([]float64, len(cfg.Widths))
	sparseLog := make([]float64, len(cfg.Widths))
	for s := 0; s < seeds; s++ {
		runCfg := cfg
		runCfg.Seed = cfg.Seed + int64(s)*7919
		res, err := Run(target, runCfg)
		if err != nil {
			return Result{}, err
		}
		if s == 0 {
			agg = res
		}
		for i := range cfg.Widths {
			if !cfg.SparseOnly {
				denseLog[i] += math.Log(math.Max(res.Dense.SupErr[i], 1e-12))
			}
			sparseLog[i] += math.Log(math.Max(res.Sparse.SupErr[i], 1e-12))
		}
	}
	inv := 1 / float64(seeds)
	for i := range cfg.Widths {
		if !cfg.SparseOnly {
			agg.Dense.SupErr[i] = math.Exp(denseLog[i] * inv)
		}
		agg.Sparse.SupErr[i] = math.Exp(sparseLog[i] * inv)
	}
	if !cfg.SparseOnly {
		agg.Dense = familyResult(cfg.Widths, agg.Dense.SupErr, agg.Dense.Params)
	}
	agg.Sparse = familyResult(cfg.Widths, agg.Sparse.SupErr, agg.Sparse.Params)
	return agg, nil
}

// FitDecay fits δ̂ ≈ C·N^{-p} by least squares on log δ̂ vs log N and
// returns p together with the fit's R². Zero or negative errors are clamped
// to 1e-12 before taking logs.
func FitDecay(widths []int, errs []float64) (p, rsq float64) {
	n := float64(len(widths))
	if len(widths) < 2 || len(widths) != len(errs) {
		return 0, 0
	}
	var sx, sy, sxx, sxy, syy float64
	for i, w := range widths {
		x := math.Log(float64(w))
		e := errs[i]
		if e < 1e-12 {
			e = 1e-12
		}
		y := math.Log(e)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		syy += y * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0
	}
	slope := (n*sxy - sx*sy) / den
	p = -slope
	// R² of the regression. Near-zero variance (constant errors) is a
	// perfect fit of the p = 0 line; guard against float residue.
	varY := syy - sy*sy/n
	if varY <= 1e-9*math.Max(1, syy) {
		return p, 1
	}
	ssRes := syy - sy*sy/n - slope*(sxy-sx*sy/n)
	rsq = 1 - ssRes/varY
	return p, rsq
}
