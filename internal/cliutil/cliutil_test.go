package cliutil

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseSystems(t *testing.T) {
	systems, err := ParseSystems("(3,3,4);(2,3)")
	if err != nil {
		t.Fatal(err)
	}
	if len(systems) != 2 || systems[0].Product() != 36 || systems[1].Product() != 6 {
		t.Fatalf("parsed %v", systems)
	}
	// Bare form without parentheses.
	systems, err = ParseSystems("2,2;4")
	if err != nil {
		t.Fatal(err)
	}
	if systems[0].Product() != 4 || systems[1].Product() != 4 {
		t.Fatalf("parsed %v", systems)
	}
	for _, bad := range []string{"", "   ", "(1,2)", "(2,x)"} {
		if _, err := ParseSystems(bad); err == nil {
			t.Fatalf("ParseSystems(%q) accepted", bad)
		}
	}
}

func TestParseShape(t *testing.T) {
	shape, err := ParseShape("1, 2 ,3")
	if err != nil {
		t.Fatal(err)
	}
	if len(shape) != 3 || shape[1] != 2 {
		t.Fatalf("shape = %v", shape)
	}
	empty, err := ParseShape("  ")
	if err != nil || empty != nil {
		t.Fatalf("empty shape: %v %v", empty, err)
	}
	if _, err := ParseShape("1,x"); err == nil {
		t.Fatal("non-numeric shape accepted")
	}
}

func TestParseClassWeights(t *testing.T) {
	w, err := ParseClassWeights("interactive=8, batch=2 ,background=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 3 || w["interactive"] != 8 || w["batch"] != 2 || w["background"] != 1 {
		t.Fatalf("weights = %v", w)
	}
	empty, err := ParseClassWeights("  ")
	if err != nil || empty != nil {
		t.Fatalf("empty spec: %v %v", empty, err)
	}
	for _, bad := range []string{"interactive", "=3", "a=0", "a=-1", "a=x", "a=1,a=2"} {
		if _, err := ParseClassWeights(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestLoadConfigFromFlags(t *testing.T) {
	cfg, err := LoadConfig("", "(2,2);(4)", "1,2,1,1")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NPrime() != 4 || cfg.TotalRadices() != 3 {
		t.Fatalf("cfg = %s", cfg)
	}
}

func TestLoadConfigFromJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	if err := os.WriteFile(path, []byte(`{"systems":[[2,2],[4]]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(path, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NPrime() != 4 {
		t.Fatalf("cfg = %s", cfg)
	}
}

func TestLoadConfigErrors(t *testing.T) {
	if _, err := LoadConfig("", "", ""); err == nil {
		t.Fatal("no source accepted")
	}
	if _, err := LoadConfig("x.json", "(2,2)", ""); err == nil {
		t.Fatal("both sources accepted")
	}
	if _, err := LoadConfig("/nonexistent/cfg.json", "", ""); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := LoadConfig("", "(2,2);(3)", ""); err == nil {
		t.Fatal("invalid config (non-divisor) accepted")
	}
	if _, err := LoadConfig("", "(2,2)", "1,x"); err == nil {
		t.Fatal("bad shape accepted")
	}
}

func TestAppendJSONRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	type rec struct {
		K string `json:"k"`
	}
	n, err := AppendJSONRecord(path, rec{K: "first"})
	if err != nil || n != 1 {
		t.Fatalf("first append: n=%d err=%v", n, err)
	}
	n, err = AppendJSONRecord(path, rec{K: "second"})
	if err != nil || n != 2 {
		t.Fatalf("second append: n=%d err=%v", n, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got []rec
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].K != "first" || got[1].K != "second" {
		t.Fatalf("records = %+v", got)
	}

	// A legacy single-object file is converted to an array on append.
	legacy := filepath.Join(t.TempDir(), "legacy.json")
	if err := os.WriteFile(legacy, []byte("{\"k\": \"old\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := AppendJSONRecord(legacy, rec{K: "new"}); err != nil || n != 2 {
		t.Fatalf("legacy append: n=%d err=%v", n, err)
	}
	data, err = os.ReadFile(legacy)
	if err != nil {
		t.Fatal(err)
	}
	got = nil
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].K != "old" || got[1].K != "new" {
		t.Fatalf("legacy records = %+v", got)
	}

	// Appended object records are stamped with git_sha when they lack one;
	// records that carry the field keep their own value.
	stamped := filepath.Join(t.TempDir(), "stamped.json")
	if _, err := AppendJSONRecord(stamped, rec{K: "bare"}); err != nil {
		t.Fatal(err)
	}
	if _, err := AppendJSONRecord(stamped, map[string]string{"k": "own", "git_sha": "feedface0000"}); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(stamped)
	if err != nil {
		t.Fatal(err)
	}
	var withSHA []struct {
		K      string `json:"k"`
		GitSHA string `json:"git_sha"`
	}
	if err := json.Unmarshal(data, &withSHA); err != nil {
		t.Fatal(err)
	}
	if len(withSHA) != 2 {
		t.Fatalf("stamped records = %+v", withSHA)
	}
	if withSHA[0].GitSHA == "" {
		t.Fatal("appended record was not stamped with git_sha")
	}
	if withSHA[0].GitSHA != GitSHA() {
		t.Fatalf("stamped git_sha = %q, want %q", withSHA[0].GitSHA, GitSHA())
	}
	if withSHA[1].GitSHA != "feedface0000" {
		t.Fatalf("explicit git_sha overwritten: %q", withSHA[1].GitSHA)
	}

	// Corrupt existing content must error rather than be clobbered.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := AppendJSONRecord(bad, rec{K: "x"}); err == nil {
		t.Fatal("corrupt file accepted")
	}
}

func TestGitSHA(t *testing.T) {
	sha := GitSHA()
	if sha == "" {
		t.Fatal("empty SHA")
	}
	if sha != "unknown" {
		for _, c := range sha {
			if !strings.ContainsRune("0123456789abcdef", c) {
				t.Fatalf("SHA %q has non-hex rune %q", sha, c)
			}
		}
	}
}
