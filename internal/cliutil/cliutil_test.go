package cliutil

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseSystems(t *testing.T) {
	systems, err := ParseSystems("(3,3,4);(2,3)")
	if err != nil {
		t.Fatal(err)
	}
	if len(systems) != 2 || systems[0].Product() != 36 || systems[1].Product() != 6 {
		t.Fatalf("parsed %v", systems)
	}
	// Bare form without parentheses.
	systems, err = ParseSystems("2,2;4")
	if err != nil {
		t.Fatal(err)
	}
	if systems[0].Product() != 4 || systems[1].Product() != 4 {
		t.Fatalf("parsed %v", systems)
	}
	for _, bad := range []string{"", "   ", "(1,2)", "(2,x)"} {
		if _, err := ParseSystems(bad); err == nil {
			t.Fatalf("ParseSystems(%q) accepted", bad)
		}
	}
}

func TestParseShape(t *testing.T) {
	shape, err := ParseShape("1, 2 ,3")
	if err != nil {
		t.Fatal(err)
	}
	if len(shape) != 3 || shape[1] != 2 {
		t.Fatalf("shape = %v", shape)
	}
	empty, err := ParseShape("  ")
	if err != nil || empty != nil {
		t.Fatalf("empty shape: %v %v", empty, err)
	}
	if _, err := ParseShape("1,x"); err == nil {
		t.Fatal("non-numeric shape accepted")
	}
}

func TestLoadConfigFromFlags(t *testing.T) {
	cfg, err := LoadConfig("", "(2,2);(4)", "1,2,1,1")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NPrime() != 4 || cfg.TotalRadices() != 3 {
		t.Fatalf("cfg = %s", cfg)
	}
}

func TestLoadConfigFromJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	if err := os.WriteFile(path, []byte(`{"systems":[[2,2],[4]]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(path, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NPrime() != 4 {
		t.Fatalf("cfg = %s", cfg)
	}
}

func TestLoadConfigErrors(t *testing.T) {
	if _, err := LoadConfig("", "", ""); err == nil {
		t.Fatal("no source accepted")
	}
	if _, err := LoadConfig("x.json", "(2,2)", ""); err == nil {
		t.Fatal("both sources accepted")
	}
	if _, err := LoadConfig("/nonexistent/cfg.json", "", ""); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := LoadConfig("", "(2,2);(3)", ""); err == nil {
		t.Fatal("invalid config (non-divisor) accepted")
	}
	if _, err := LoadConfig("", "(2,2)", "1,x"); err == nil {
		t.Fatal("bad shape accepted")
	}
}
