// Package cliutil holds flag-parsing helpers shared by the command-line
// tools: a RadiX-Net configuration can be given either as semicolon-
// separated systems plus a comma-separated shape, or as a JSON file in the
// graphio wire format.
package cliutil

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/graphio"
	"github.com/radix-net/radixnet/internal/radix"
)

// DoJSON issues one HTTP request with an optional JSON body and returns
// the status code plus the raw response body. Shared by the cmd selftests'
// model-control-plane drivers (register/reload/unregister verbs against
// radixserve and radixrouter). The context bounds the whole exchange.
func DoJSON(ctx context.Context, client *http.Client, method, url string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}

// ParseSystems parses "(3,3,4);(3,3,4);(2,3)" into numeral systems.
func ParseSystems(text string) ([]radix.System, error) {
	if strings.TrimSpace(text) == "" {
		return nil, errors.New("cliutil: empty systems specification")
	}
	parts := strings.Split(text, ";")
	systems := make([]radix.System, 0, len(parts))
	for i, p := range parts {
		s, err := radix.Parse(p)
		if err != nil {
			return nil, fmt.Errorf("cliutil: system %d: %w", i, err)
		}
		systems = append(systems, s)
	}
	return systems, nil
}

// ParseShape parses "1,2,2,1" into a dense shape; empty means nil (all ones).
func ParseShape(text string) ([]int, error) {
	if strings.TrimSpace(text) == "" {
		return nil, nil
	}
	parts := strings.Split(text, ",")
	shape := make([]int, 0, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("cliutil: shape entry %d: %w", i, err)
		}
		shape = append(shape, v)
	}
	return shape, nil
}

// ParseClassWeights parses a "-class-weight"/"-class-retries"–style flag,
// "name=N,name=N,..." (e.g. "interactive=8,batch=2,background=1"), into a
// map. Names must be nonempty and unique; values must be positive
// integers. Empty input yields nil (the caller's default).
func ParseClassWeights(text string) (map[string]int, error) {
	if strings.TrimSpace(text) == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, part := range strings.Split(text, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("cliutil: class weight %q: want NAME=N", part)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("cliutil: class %q given twice", name)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("cliutil: class %q: weight %q, want a positive integer", name, val)
		}
		out[name] = n
	}
	return out, nil
}

// GitSHA returns the short commit hash of the working tree the tool runs
// in, or "unknown" outside a git checkout — benchmark records carry it so a
// BENCH_*.json trajectory can be tied back to the code that produced each
// entry.
func GitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// stampGitSHA injects a "git_sha" field into a marshaled JSON object that
// lacks one, so every appended benchmark record can be tied back to the
// commit that produced it even when the record type predates the field.
// Non-object records and records that already carry the field pass through
// untouched (preserving their key order).
func stampGitSHA(enc []byte) []byte {
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(enc, &obj); err != nil || obj == nil {
		return enc
	}
	if _, ok := obj["git_sha"]; ok {
		return enc
	}
	sha, err := json.Marshal(GitSHA())
	if err != nil {
		return enc
	}
	obj["git_sha"] = sha
	out, err := json.Marshal(obj)
	if err != nil {
		return enc
	}
	return out
}

// AppendJSONRecord appends rec to the JSON array in path, creating the file
// if needed, and returns the resulting record count. Records marshaling to
// an object are stamped with the working tree's git_sha when they don't
// already carry one. A legacy file holding a single top-level object (the
// pre-append BENCH format) is converted to a one-element array first, so
// trajectories accumulate instead of clobbering. The write is atomic (temp
// file + rename), so a crash never leaves partial JSON; concurrent
// appenders are last-writer-wins — bench runs are expected to be
// sequential.
func AppendJSONRecord(path string, rec any) (int, error) {
	var records []json.RawMessage
	if data, err := os.ReadFile(path); err == nil {
		trimmed := bytes.TrimSpace(data)
		switch {
		case len(trimmed) == 0:
			// empty file: start fresh
		case trimmed[0] == '[':
			if err := json.Unmarshal(trimmed, &records); err != nil {
				return 0, fmt.Errorf("cliutil: existing records in %s: %w", path, err)
			}
		default:
			if !json.Valid(trimmed) {
				return 0, fmt.Errorf("cliutil: existing record in %s is not valid JSON", path)
			}
			records = append(records, json.RawMessage(trimmed))
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return 0, fmt.Errorf("cliutil: %w", err)
	}
	enc, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("cliutil: %w", err)
	}
	records = append(records, stampGitSHA(enc))
	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("cliutil: %w", err)
	}
	out = append(out, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return 0, fmt.Errorf("cliutil: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("cliutil: %w", err)
	}
	return len(records), nil
}

// LoadConfig resolves a configuration from either a JSON file path or a
// systems/shape flag pair. Exactly one source must be provided.
func LoadConfig(jsonPath, systemsFlag, shapeFlag string) (core.Config, error) {
	switch {
	case jsonPath != "" && systemsFlag != "":
		return core.Config{}, errors.New("cliutil: provide either -config or -systems, not both")
	case jsonPath != "":
		data, err := os.ReadFile(jsonPath)
		if err != nil {
			return core.Config{}, fmt.Errorf("cliutil: %w", err)
		}
		return graphio.UnmarshalConfig(data)
	case systemsFlag != "":
		systems, err := ParseSystems(systemsFlag)
		if err != nil {
			return core.Config{}, err
		}
		shape, err := ParseShape(shapeFlag)
		if err != nil {
			return core.Config{}, err
		}
		return core.NewConfig(systems, shape)
	default:
		return core.Config{}, errors.New("cliutil: provide -config FILE or -systems SPEC")
	}
}
