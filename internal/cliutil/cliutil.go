// Package cliutil holds flag-parsing helpers shared by the command-line
// tools: a RadiX-Net configuration can be given either as semicolon-
// separated systems plus a comma-separated shape, or as a JSON file in the
// graphio wire format.
package cliutil

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/graphio"
	"github.com/radix-net/radixnet/internal/radix"
)

// ParseSystems parses "(3,3,4);(3,3,4);(2,3)" into numeral systems.
func ParseSystems(text string) ([]radix.System, error) {
	if strings.TrimSpace(text) == "" {
		return nil, errors.New("cliutil: empty systems specification")
	}
	parts := strings.Split(text, ";")
	systems := make([]radix.System, 0, len(parts))
	for i, p := range parts {
		s, err := radix.Parse(p)
		if err != nil {
			return nil, fmt.Errorf("cliutil: system %d: %w", i, err)
		}
		systems = append(systems, s)
	}
	return systems, nil
}

// ParseShape parses "1,2,2,1" into a dense shape; empty means nil (all ones).
func ParseShape(text string) ([]int, error) {
	if strings.TrimSpace(text) == "" {
		return nil, nil
	}
	parts := strings.Split(text, ",")
	shape := make([]int, 0, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("cliutil: shape entry %d: %w", i, err)
		}
		shape = append(shape, v)
	}
	return shape, nil
}

// LoadConfig resolves a configuration from either a JSON file path or a
// systems/shape flag pair. Exactly one source must be provided.
func LoadConfig(jsonPath, systemsFlag, shapeFlag string) (core.Config, error) {
	switch {
	case jsonPath != "" && systemsFlag != "":
		return core.Config{}, errors.New("cliutil: provide either -config or -systems, not both")
	case jsonPath != "":
		data, err := os.ReadFile(jsonPath)
		if err != nil {
			return core.Config{}, fmt.Errorf("cliutil: %w", err)
		}
		return graphio.UnmarshalConfig(data)
	case systemsFlag != "":
		systems, err := ParseSystems(systemsFlag)
		if err != nil {
			return core.Config{}, err
		}
		shape, err := ParseShape(shapeFlag)
		if err != nil {
			return core.Config{}, err
		}
		return core.NewConfig(systems, shape)
	default:
		return core.Config{}, errors.New("cliutil: provide -config FILE or -systems SPEC")
	}
}
