// Package graphio serializes RadiX-Net topologies and configurations to the
// interchange formats used around the paper's ecosystem: Graph Challenge
// style TSV edge lists, Matrix Market pattern files, Graphviz DOT for
// inspection, and JSON for configurations.
package graphio

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/radix"
	"github.com/radix-net/radixnet/internal/sparse"
	"github.com/radix-net/radixnet/internal/topology"
)

// ErrFormat is returned when parsing malformed input.
var ErrFormat = errors.New("graphio: malformed input")

// WriteTSV writes the whole topology as tab-separated `layer src dst` lines,
// 0-indexed, in layer order. It is the library's native interchange format.
func WriteTSV(w io.Writer, g *topology.FNNT) error {
	bw := bufio.NewWriter(w)
	for l := 0; l < g.NumSubs(); l++ {
		sub := g.Sub(l)
		for r := 0; r < sub.Rows(); r++ {
			for _, c := range sub.Row(r) {
				if _, err := fmt.Fprintf(bw, "%d\t%d\t%d\n", l, r, c); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadTSV parses the WriteTSV format back into an FNNT. Layer sizes are
// inferred as one plus the largest index seen in each role; the edge list
// must produce a valid FNNT (no dangling nodes).
func ReadTSV(r io.Reader) (*topology.FNNT, error) {
	type edge struct{ l, u, v int }
	var edges []edge
	maxLayer := -1
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%w: line %d: want 3 fields, got %d", ErrFormat, lineNo, len(fields))
		}
		l, err1 := strconv.Atoi(fields[0])
		u, err2 := strconv.Atoi(fields[1])
		v, err3 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || err3 != nil || l < 0 || u < 0 || v < 0 {
			return nil, fmt.Errorf("%w: line %d: %q", ErrFormat, lineNo, line)
		}
		edges = append(edges, edge{l, u, v})
		if l > maxLayer {
			maxLayer = l
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if maxLayer < 0 {
		return nil, fmt.Errorf("%w: no edges", ErrFormat)
	}
	rows := make([]int, maxLayer+1)
	cols := make([]int, maxLayer+1)
	for _, e := range edges {
		if e.u+1 > rows[e.l] {
			rows[e.l] = e.u + 1
		}
		if e.v+1 > cols[e.l] {
			cols[e.l] = e.v + 1
		}
	}
	// Adjacent layers share node sets: reconcile cols of layer l with rows
	// of layer l+1.
	for l := 0; l+1 <= maxLayer; l++ {
		if rows[l+1] > cols[l] {
			cols[l] = rows[l+1]
		} else {
			rows[l+1] = cols[l]
		}
	}
	builders := make([]*sparse.COO, maxLayer+1)
	for l := range builders {
		b, err := sparse.NewCOO(rows[l], cols[l])
		if err != nil {
			return nil, fmt.Errorf("%w: layer %d: %v", ErrFormat, l, err)
		}
		builders[l] = b
	}
	for _, e := range edges {
		if err := builders[e.l].Add(e.u, e.v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
	}
	subs := make([]*sparse.Pattern, len(builders))
	for l, b := range builders {
		subs[l] = b.Pattern()
	}
	return topology.New(subs...)
}

// WriteChallengeTSV writes one layer in the Graph Challenge convention:
// 1-indexed `src dst weight` lines with a constant weight.
func WriteChallengeTSV(w io.Writer, p *sparse.Pattern, weight float64) error {
	bw := bufio.NewWriter(w)
	for r := 0; r < p.Rows(); r++ {
		for _, c := range p.Row(r) {
			if _, err := fmt.Fprintf(bw, "%d\t%d\t%g\n", r+1, c+1, weight); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadChallengeTSV parses a Graph Challenge layer file into a pattern and a
// parallel weight slice aligned with the pattern's stored entries.
func ReadChallengeTSV(r io.Reader, rows, cols int) (*sparse.Matrix, error) {
	coo, err := sparse.NewCOO(rows, cols)
	if err != nil {
		return nil, err
	}
	type key struct{ r, c int }
	weights := make(map[key]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%w: line %d: want 3 fields", ErrFormat, lineNo)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		wt, err3 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%w: line %d: %q", ErrFormat, lineNo, line)
		}
		if err := coo.Add(u-1, v-1); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrFormat, lineNo, err)
		}
		weights[key{u - 1, v - 1}] += wt
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	pat := coo.Pattern()
	vals := make([]float64, 0, pat.NNZ())
	for r := 0; r < pat.Rows(); r++ {
		for _, c := range pat.Row(r) {
			vals = append(vals, weights[key{r, c}])
		}
	}
	return sparse.NewMatrix(pat, vals)
}

// WriteMatrixMarket writes a pattern in Matrix Market coordinate pattern
// format (1-indexed).
func WriteMatrixMarket(w io.Writer, p *sparse.Pattern) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate pattern general\n%d %d %d\n",
		p.Rows(), p.Cols(), p.NNZ()); err != nil {
		return err
	}
	for r := 0; r < p.Rows(); r++ {
		for _, c := range p.Row(r) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", r+1, c+1); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a Matrix Market coordinate pattern file.
func ReadMatrixMarket(r io.Reader) (*sparse.Pattern, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("%w: empty input", ErrFormat)
	}
	header := sc.Text()
	if !strings.HasPrefix(header, "%%MatrixMarket") || !strings.Contains(header, "coordinate") {
		return nil, fmt.Errorf("%w: bad header %q", ErrFormat, header)
	}
	var rows, cols, nnz int
	sized := false
	var coo *sparse.COO
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if !sized {
			if len(fields) != 3 {
				return nil, fmt.Errorf("%w: bad size line %q", ErrFormat, line)
			}
			var err error
			if rows, err = strconv.Atoi(fields[0]); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrFormat, err)
			}
			if cols, err = strconv.Atoi(fields[1]); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrFormat, err)
			}
			if nnz, err = strconv.Atoi(fields[2]); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrFormat, err)
			}
			if coo, err = sparse.NewCOO(rows, cols); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrFormat, err)
			}
			sized = true
			continue
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("%w: bad entry %q", ErrFormat, line)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%w: bad entry %q", ErrFormat, line)
		}
		if err := coo.Add(u-1, v-1); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sized {
		return nil, fmt.Errorf("%w: missing size line", ErrFormat)
	}
	if coo.Len() != nnz {
		return nil, fmt.Errorf("%w: declared %d entries, got %d", ErrFormat, nnz, coo.Len())
	}
	return coo.Pattern(), nil
}

// WriteDOT renders the topology as a layered Graphviz digraph, suitable for
// visual inspection of small networks (Fig. 1–5 scale).
func WriteDOT(w io.Writer, g *topology.FNNT, name string) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "fnnt"
	}
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=LR;\n  node [shape=circle, fontsize=10];\n", name)
	for i, size := range g.LayerSizes() {
		fmt.Fprintf(bw, "  subgraph cluster_%d { label=\"U%d\"; rank=same;", i, i)
		for v := 0; v < size; v++ {
			fmt.Fprintf(bw, " L%dN%d [label=%d];", i, v, v)
		}
		fmt.Fprintf(bw, " }\n")
	}
	for l := 0; l < g.NumSubs(); l++ {
		sub := g.Sub(l)
		for r := 0; r < sub.Rows(); r++ {
			for _, c := range sub.Row(r) {
				fmt.Fprintf(bw, "  L%dN%d -> L%dN%d;\n", l, r, l+1, c)
			}
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// ConfigJSON is the JSON wire form of a core.Config.
type ConfigJSON struct {
	Systems [][]int `json:"systems"`
	Shape   []int   `json:"shape,omitempty"`
}

// MarshalConfig encodes a core.Config as JSON.
func MarshalConfig(cfg core.Config) ([]byte, error) {
	cj := ConfigJSON{Shape: cfg.Shape}
	for _, s := range cfg.Systems {
		cj.Systems = append(cj.Systems, s.Radices())
	}
	return json.MarshalIndent(cj, "", "  ")
}

// UnmarshalConfig decodes and validates a core.Config from JSON.
func UnmarshalConfig(data []byte) (core.Config, error) {
	var cj ConfigJSON
	if err := json.Unmarshal(data, &cj); err != nil {
		return core.Config{}, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	systems := make([]radix.System, 0, len(cj.Systems))
	for i, radices := range cj.Systems {
		s, err := radix.New(radices...)
		if err != nil {
			return core.Config{}, fmt.Errorf("%w: system %d: %v", ErrFormat, i, err)
		}
		systems = append(systems, s)
	}
	return core.NewConfig(systems, cj.Shape)
}
