// Fuzz round-trip properties for the serialization formats the serving
// registry's model loading rests on: any input the readers accept must
// survive a write→read cycle unchanged. Run as unit tests over the seed
// corpus by `go test`, or open-endedly with `go test -fuzz FuzzX`.
package graphio

import (
	"bytes"
	"strings"
	"testing"

	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/radix"
)

func FuzzConfigJSONRoundTrip(f *testing.F) {
	for _, seed := range []string{
		`{"systems":[[2,2,2]]}`,
		`{"systems":[[3,3,4],[2,3]],"shape":[1,2,2,2,2,1]}`,
		`{"systems":[[8,8]],"shape":null}`,
		`{"systems":[]}`,
		`{"systems":[[1]]}`,
		`{"systems":[[2,2]],"shape":[0]}`,
		`{`,
		`[]`,
		`{"systems":"nope"}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := UnmarshalConfig(data)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		// Anything accepted must be a valid config...
		if err := cfg.Validate(); err != nil {
			t.Fatalf("UnmarshalConfig accepted an invalid config: %v", err)
		}
		// ...and survive marshal→unmarshal exactly.
		out, err := MarshalConfig(cfg)
		if err != nil {
			t.Fatalf("MarshalConfig of accepted config: %v", err)
		}
		cfg2, err := UnmarshalConfig(out)
		if err != nil {
			t.Fatalf("re-unmarshal of own output: %v\n%s", err, out)
		}
		if !configsEqual(cfg, cfg2) {
			t.Fatalf("round trip changed the config:\n%v\nvs\n%v", cfg, cfg2)
		}
	})
}

func configsEqual(a, b core.Config) bool {
	if len(a.Systems) != len(b.Systems) || len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Systems {
		ra, rb := a.Systems[i].Radices(), b.Systems[i].Radices()
		if len(ra) != len(rb) {
			return false
		}
		for j := range ra {
			if ra[j] != rb[j] {
				return false
			}
		}
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

func FuzzReadTSVRoundTrip(f *testing.F) {
	// Seed with real WriteTSV output plus malformed variants.
	for _, radices := range [][]int{{2, 2}, {3, 3, 4}} {
		g := core.MixedRadix(radix.MustNew(radices...))
		var buf bytes.Buffer
		if err := WriteTSV(&buf, g); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.String())
	}
	f.Add("0\t0\t0\n")
	f.Add("# comment\n\n0\t0\t1\n0\t1\t0\n1\t0\t0\n1\t1\t0\n")
	f.Add("0\t0\n")
	f.Add("-1\t0\t0\n")
	f.Add("0 0 99999999\n")
	f.Fuzz(func(t *testing.T, text string) {
		g, err := ReadTSV(strings.NewReader(text))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteTSV(&buf, g); err != nil {
			t.Fatalf("WriteTSV of accepted topology: %v", err)
		}
		g2, err := ReadTSV(&buf)
		if err != nil {
			t.Fatalf("re-read of own output: %v\n%s", err, buf.String())
		}
		if !g.Equal(g2) {
			t.Fatalf("round trip changed the topology:\n%v\nvs\n%v", g, g2)
		}
	})
}

func FuzzReadMatrixMarketRoundTrip(f *testing.F) {
	for _, radices := range [][]int{{2, 2}, {4, 4}} {
		g := core.MixedRadix(radix.MustNew(radices...))
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, g.Sub(0)); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.String())
	}
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n% comment\n3 3 2\n1 2\n2 3\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 5\n1 1\n")
	f.Add("not a header\n1 1 1\n")
	f.Fuzz(func(t *testing.T, text string) {
		p, err := ReadMatrixMarket(strings.NewReader(text))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, p); err != nil {
			t.Fatalf("WriteMatrixMarket of accepted pattern: %v", err)
		}
		p2, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("re-read of own output: %v\n%s", err, buf.String())
		}
		if !p.Equal(p2) {
			t.Fatalf("round trip changed the pattern:\n%v\nvs\n%v", p, p2)
		}
	})
}
