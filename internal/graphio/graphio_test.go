package graphio

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/radix"
	"github.com/radix-net/radixnet/internal/topology"
)

func fig1Topology(t *testing.T) *topology.FNNT {
	t.Helper()
	g := core.MixedRadix(radix.MustNew(2, 2, 2))
	return g
}

func TestTSVRoundTrip(t *testing.T) {
	g := fig1Topology(t)
	var buf bytes.Buffer
	if err := WriteTSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(back) {
		t.Fatal("TSV round trip changed the topology")
	}
}

func TestTSVRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := 2 + rng.Intn(3)
		depth := 1 + rng.Intn(3)
		sys, err := radix.Uniform(base, depth)
		if err != nil {
			return false
		}
		g := core.MixedRadix(sys)
		var buf bytes.Buffer
		if err := WriteTSV(&buf, g); err != nil {
			return false
		}
		back, err := ReadTSV(&buf)
		if err != nil {
			return false
		}
		return g.Equal(back)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReadTSVToleratesCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n0\t0\t0\n0\t0\t1\n0\t1\t0\n0\t1\t1\n"
	g, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumSubs() != 1 || g.NumEdges() != 4 {
		t.Fatalf("parsed %d layers %d edges", g.NumSubs(), g.NumEdges())
	}
}

func TestReadTSVMalformed(t *testing.T) {
	cases := []string{
		"0\t0\n",          // two fields
		"a\t0\t0\n",       // non-numeric
		"0\t-1\t0\n",      // negative
		"",                // empty
		"0\t0\t0\t0\t0\n", // five fields
	}
	for _, in := range cases {
		if _, err := ReadTSV(strings.NewReader(in)); !errors.Is(err, ErrFormat) {
			t.Fatalf("input %q: error = %v, want ErrFormat", in, err)
		}
	}
}

func TestReadTSVDanglingNodesRejected(t *testing.T) {
	// Node 1 of layer 1 exists (as a target) but has no outgoing edge into
	// layer 2 — not a valid FNNT.
	in := "0\t0\t0\n0\t0\t1\n1\t0\t0\n"
	if _, err := ReadTSV(strings.NewReader(in)); err == nil {
		t.Fatal("dangling-node edge list accepted")
	}
}

func TestChallengeTSVRoundTrip(t *testing.T) {
	g := fig1Topology(t)
	var buf bytes.Buffer
	if err := WriteChallengeTSV(&buf, g.Sub(0), 0.0625); err != nil {
		t.Fatal(err)
	}
	m, err := ReadChallengeTSV(&buf, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Pattern().Equal(g.Sub(0)) {
		t.Fatal("challenge TSV round trip changed the pattern")
	}
	for _, v := range m.Values() {
		if v != 0.0625 {
			t.Fatalf("weight = %g, want 0.0625", v)
		}
	}
}

func TestReadChallengeTSVMalformed(t *testing.T) {
	for _, in := range []string{"1 2\n", "x 1 0.5\n", "1 99 0.5\n"} {
		if _, err := ReadChallengeTSV(strings.NewReader(in), 4, 4); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	g := fig1Topology(t)
	for i := 0; i < g.NumSubs(); i++ {
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, g.Sub(i)); err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(buf.String(), "%%MatrixMarket") {
			t.Fatal("missing header")
		}
		back, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(g.Sub(i)) {
			t.Fatalf("layer %d: Matrix Market round trip changed the pattern", i)
		}
	}
}

func TestReadMatrixMarketMalformed(t *testing.T) {
	cases := []string{
		"",
		"not a header\n2 2 1\n1 1\n",
		"%%MatrixMarket matrix coordinate pattern general\n",
		"%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n", // nnz mismatch
		"%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n", // out of range
		"%%MatrixMarket matrix coordinate pattern general\nx 2 1\n1 1\n", // bad size
		"%%MatrixMarket matrix array real general\n2 2\n1.0\n1.0\n",      // not coordinate
	}
	for i, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := fig1Topology(t)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, "fig1"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "digraph \"fig1\"") {
		t.Fatal("missing digraph header")
	}
	if !strings.Contains(out, "L0N0 -> L1N0") {
		t.Fatal("missing expected edge")
	}
	if strings.Count(out, "->") != g.NumEdges() {
		t.Fatalf("DOT has %d edges, want %d", strings.Count(out, "->"), g.NumEdges())
	}
	var buf2 bytes.Buffer
	if err := WriteDOT(&buf2, g, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), "digraph \"fnnt\"") {
		t.Fatal("default name not applied")
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg, err := core.NewConfig(
		[]radix.System{radix.MustNew(3, 3, 4), radix.MustNew(2, 3)},
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != cfg.String() {
		t.Fatalf("round trip: %s vs %s", back, cfg)
	}
	// With a shape.
	cfg2, _ := core.NewConfig([]radix.System{radix.MustNew(2, 2)}, []int{1, 2, 1})
	data2, _ := MarshalConfig(cfg2)
	back2, err := UnmarshalConfig(data2)
	if err != nil {
		t.Fatal(err)
	}
	if back2.String() != cfg2.String() {
		t.Fatalf("round trip: %s vs %s", back2, cfg2)
	}
}

func TestUnmarshalConfigMalformed(t *testing.T) {
	cases := []string{
		"not json",
		`{"systems": [[1,2]]}`,               // radix 1
		`{"systems": []}`,                    // no systems
		`{"systems": [[2,2],[3]]}`,           // product mismatch → invalid config
		`{"systems": [[2,2]], "shape": [1]}`, // bad shape
	}
	for _, in := range cases {
		if _, err := UnmarshalConfig([]byte(in)); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

func TestTSVExportOfLiftedNet(t *testing.T) {
	cfg, err := core.NewConfig([]radix.System{radix.MustNew(2, 2)}, []int{2, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(back) {
		t.Fatal("lifted-net TSV round trip changed the topology")
	}
	// Sanity: streamed edges agree with the serialized ones.
	edgeCount := 0
	err = core.StreamEdges(cfg, func(layer int, u, v int64) bool {
		edgeCount++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if edgeCount != g.NumEdges() {
		t.Fatalf("streamed %d edges, topology has %d", edgeCount, g.NumEdges())
	}
}
