package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a persistent worker pool for data-parallel block loops. Unlike
// Blocks, which spawns fresh goroutines per call, a Pool keeps its workers
// parked between calls, so deep per-layer loops (e.g. a 120-layer sparse
// inference stack) pay goroutine startup once per process instead of once
// per layer. A steady-state Run performs no heap allocations.
//
// Scheduling is dynamic: [0, n) is cut into contiguous chunks and workers
// claim chunks from a shared atomic cursor, so uneven block costs balance
// automatically. The calling goroutine participates as one of the workers.
//
// The parked workers serve one Run at a time: a Run issued while another
// is in flight — including a nested Run issued from inside a worker
// function — falls back to spawn-per-call goroutines rather than
// deadlocking, so concurrent callers stay parallel.
type Pool struct {
	workers    int
	trackProcs bool // GOMAXPROCS-sized pool: honor later GOMAXPROCS reductions
	wake       chan struct{}
	mu      sync.Mutex // serializes Runs; TryLock-guarded to stay deadlock-free
	wg      sync.WaitGroup

	// Current job, valid between the wake sends and wg.Wait of one Run.
	// Helpers observe these fields via the happens-before edge of the wake
	// channel send.
	fn    func(lo, hi int)
	n     int
	chunk int
	next  atomic.Int64
}

// NewPool returns a pool with the given number of workers (≤ 1 selects
// runtime.GOMAXPROCS(0), re-read on every Run so later GOMAXPROCS
// reductions — e.g. `go test -cpu 8,1` — are honored). workers−1 helper
// goroutines are started and parked immediately; they run until Close.
func NewPool(workers int) *Pool {
	track := workers < 1
	if track {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers, trackProcs: track, wake: make(chan struct{}, workers)}
	for i := 0; i < workers-1; i++ {
		go p.helper()
	}
	return p
}

// Workers returns the pool's worker count (helpers plus the caller).
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) helper() {
	for range p.wake {
		p.runBlocks()
		p.wg.Done()
	}
}

// runBlocks claims and executes chunks until the cursor passes n.
func (p *Pool) runBlocks() {
	n, chunk, fn := p.n, p.chunk, p.fn
	for {
		b := p.next.Add(1) - 1
		lo := int(b) * chunk
		if lo >= n {
			return
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	}
}

// Run executes fn over contiguous disjoint blocks covering [0, n), possibly
// in parallel. fn must be safe to call concurrently for disjoint ranges.
// grain is the minimum block length worth scheduling — loops smaller than
// two grains run serially on the caller — and also the scheduling quantum:
// every block is a multiple of grain long except the final one, so a
// caller that processes items in fixed-size groups (e.g. the inference
// engine's four-row gather quads) can keep its groups whole by passing the
// group size. Run does not allocate, so it is safe inside allocation-free
// hot paths.
func (p *Pool) Run(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	w := p.workers
	if p.trackProcs {
		if g := runtime.GOMAXPROCS(0); g < w {
			w = g
		}
	}
	if max := n / grain; w > max {
		w = max
	}
	if w <= 1 {
		fn(0, n)
		return
	}
	// When the pool is busy (a concurrent Run, or a nested Run from a
	// worker — taking mu here would deadlock), fall back to spawn-per-call
	// goroutines: still fully parallel, just without the parked workers.
	if !p.mu.TryLock() {
		spawnBlocks(n, w, fn)
		return
	}
	// Four chunks per worker balances uneven block costs without excessive
	// cursor contention; rounded up to a whole number of grains.
	chunk := (n + 4*w - 1) / (4 * w)
	if chunk < grain {
		chunk = grain
	} else if r := chunk % grain; r != 0 {
		chunk += grain - r
	}
	p.fn, p.n, p.chunk = fn, n, chunk
	p.next.Store(0)
	helpers := w - 1
	p.wg.Add(helpers)
	// Deferred so that a panicking fn cannot leave the pool locked (which
	// would silently degrade every later Run to serial). Helpers are waited
	// for even on panic: they may still be reading the job fields.
	defer func() {
		p.wg.Wait()
		p.fn = nil
		p.mu.Unlock()
	}()
	for i := 0; i < helpers; i++ {
		p.wake <- struct{}{}
	}
	p.runBlocks()
}

// spawnBlocks is the pool-less fallback: w fresh goroutines, one contiguous
// block each, exactly the pre-pool Blocks design. Used when the pool's
// parked workers are already occupied, so concurrent callers (e.g.
// data-parallel trainer shards) keep their parallelism instead of
// degrading to a serial loop.
func spawnBlocks(n, w int, fn func(lo, hi int)) {
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		lo := k * n / w
		hi := (k + 1) * n / w
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Close releases the helper goroutines. The pool must be idle; Run must not
// be called after Close.
func (p *Pool) Close() { close(p.wake) }

// Quota returns the worker count each of parts equal consumers should give
// its private pool so that together they roughly fill the machine:
// GOMAXPROCS(0)/parts, floored, never below 1. The serving layer uses it to
// split the machine among the engines of a warm pool — at high engine
// counts each engine runs its layer loops serially (quota 1) and
// parallelism comes from concurrent batches instead, avoiding
// oversubscription of the cores.
func Quota(parts int) int {
	if parts < 1 {
		parts = 1
	}
	q := runtime.GOMAXPROCS(0) / parts
	if q < 1 {
		q = 1
	}
	return q
}

var (
	sharedOnce sync.Once
	sharedPool *Pool
)

// Shared returns the process-wide pool, started on first use with
// GOMAXPROCS workers. Blocks and BlocksGrain dispatch through it, so every
// block-parallel kernel in the library shares one set of parked workers.
func Shared() *Pool {
	sharedOnce.Do(func() { sharedPool = NewPool(0) })
	return sharedPool
}
