package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 255, 256, 257, 10_000} {
		seen := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForGrainSmallGrainStillCovers(t *testing.T) {
	n := 1000
	var count int64
	ForGrain(n, 1, func(i int) { atomic.AddInt64(&count, 1) })
	if got := atomic.LoadInt64(&count); got != int64(n) {
		t.Fatalf("visited %d of %d", got, n)
	}
}

func TestBlocksPartition(t *testing.T) {
	for _, n := range []int{0, 1, 100, 4096} {
		var mu sync.Mutex
		covered := make([]bool, n)
		BlocksGrain(n, 1, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad block [%d,%d) for n=%d", lo, hi, n)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			for i := lo; i < hi; i++ {
				if covered[i] {
					t.Errorf("index %d covered twice", i)
				}
				covered[i] = true
			}
		})
		for i, c := range covered {
			if !c {
				t.Fatalf("n=%d: index %d not covered", n, i)
			}
		}
	}
}

func TestBlocksNegativeAndZero(t *testing.T) {
	called := false
	Blocks(0, func(lo, hi int) { called = true })
	Blocks(-5, func(lo, hi int) { called = true })
	if called {
		t.Fatal("Blocks must not invoke fn for non-positive n")
	}
}

func TestWorkersBounds(t *testing.T) {
	if w := Workers(0, 10); w != 1 {
		t.Fatalf("Workers(0,10) = %d, want 1", w)
	}
	if w := Workers(5, 0); w < 1 {
		t.Fatalf("Workers with zero grain = %d", w)
	}
	if w := Workers(1_000_000, 1); w < 1 {
		t.Fatalf("Workers = %d", w)
	}
}

func TestDo(t *testing.T) {
	var a, b, c int32
	Do(
		func() { atomic.StoreInt32(&a, 1) },
		func() { atomic.StoreInt32(&b, 2) },
		func() { atomic.StoreInt32(&c, 3) },
	)
	av, bv, cv := atomic.LoadInt32(&a), atomic.LoadInt32(&b), atomic.LoadInt32(&c)
	if av != 1 || bv != 2 || cv != 3 {
		t.Fatalf("Do did not run all thunks: %d %d %d", av, bv, cv)
	}
	Do() // empty must not hang
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{0, 1, 10, 1000, 100_000} {
		got := Reduce(n, 0, func(acc, i int) int { return acc + i }, func(a, b int) int { return a + b })
		want := n * (n - 1) / 2
		if n == 0 {
			want = 0
		}
		if got != want {
			t.Fatalf("Reduce sum n=%d = %d, want %d", n, got, want)
		}
	}
}

func TestReduceMatchesSerialProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		n := len(raw)
		par := Reduce(n, 0, func(acc, i int) int { return acc + int(raw[i]) }, func(a, b int) int { return a + b })
		ser := 0
		for _, v := range raw {
			ser += int(v)
		}
		return par == ser
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
