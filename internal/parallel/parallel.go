// Package parallel provides small, dependency-free building blocks for
// data-parallel loops used throughout the RadiX-Net library.
//
// All helpers bound their worker count by runtime.GOMAXPROCS(0) and degrade
// to a plain serial loop when only one worker is available or when the
// problem is too small to amortize dispatch. Block loops (Blocks,
// BlocksGrain, For, ForGrain) dispatch through the process-wide persistent
// Pool (see Shared), so repeated calls — e.g. once per layer of a deep
// inference stack — reuse parked workers instead of spawning goroutines.
// Do and Reduce retain the spawn-per-call design, as they are called at
// coarse granularity where spawn cost is negligible.
package parallel

import (
	"runtime"
	"sync"
)

// DefaultGrain is the minimum number of loop iterations per worker below
// which For falls back to a serial loop. Spawning goroutines for tiny loops
// costs more than it saves.
const DefaultGrain = 256

// Workers returns the number of workers to use for n independent tasks with
// the given minimum grain size. It is always at least 1 and at most
// runtime.GOMAXPROCS(0).
func Workers(n, grain int) int {
	if grain < 1 {
		grain = 1
	}
	w := runtime.GOMAXPROCS(0)
	if max := n / grain; w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For executes fn(i) for every i in [0, n), possibly in parallel.
// fn must be safe to call concurrently for distinct i.
func For(n int, fn func(i int)) {
	ForGrain(n, DefaultGrain, fn)
}

// ForGrain is For with an explicit minimum grain size: at least grain
// consecutive iterations are assigned to each worker.
func ForGrain(n, grain int, fn func(i int)) {
	BlocksGrain(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Blocks partitions [0, n) into contiguous blocks, one per worker, and calls
// fn(lo, hi) for each block, possibly in parallel. fn must be safe to call
// concurrently for disjoint ranges.
func Blocks(n int, fn func(lo, hi int)) {
	BlocksGrain(n, DefaultGrain, fn)
}

// BlocksGrain is Blocks with an explicit minimum block length. It dispatches
// on the shared persistent pool; nested or concurrent calls fall back to
// spawn-per-call goroutines rather than deadlocking (see Pool.Run).
func BlocksGrain(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	Shared().Run(n, grain, fn)
}

// Do runs the given thunks, possibly in parallel, and waits for all of them.
func Do(fns ...func()) {
	if len(fns) == 0 {
		return
	}
	if len(fns) == 1 || runtime.GOMAXPROCS(0) == 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		go func(fn func()) {
			defer wg.Done()
			fn()
		}(fn)
	}
	wg.Wait()
}

// Reduce computes a parallel reduction over [0, n). Each worker folds its
// block serially with fold starting from zero, and the per-worker partial
// results are combined left-to-right with combine. fold must be pure with
// respect to shared state; combine is called serially.
func Reduce[T any](n int, zero T, fold func(acc T, i int) T, combine func(a, b T) T) T {
	w := Workers(n, DefaultGrain)
	if n <= 0 {
		return zero
	}
	if w == 1 {
		acc := zero
		for i := 0; i < n; i++ {
			acc = fold(acc, i)
		}
		return acc
	}
	parts := make([]T, w)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		lo := k * n / w
		hi := (k + 1) * n / w
		go func(k, lo, hi int) {
			defer wg.Done()
			acc := zero
			for i := lo; i < hi; i++ {
				acc = fold(acc, i)
			}
			parts[k] = acc
		}(k, lo, hi)
	}
	wg.Wait()
	acc := zero
	for _, p := range parts {
		acc = combine(acc, p)
	}
	return acc
}
