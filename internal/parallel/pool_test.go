package parallel

import (
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// coverage checks that Run covered [0, n) exactly once via disjoint blocks.
func coverage(t *testing.T, p *Pool, n, grain int) {
	t.Helper()
	hits := make([]int32, n)
	p.Run(n, grain, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad block [%d,%d) for n=%d", lo, hi, n)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d covered %d times (n=%d grain=%d)", i, h, n, grain)
		}
	}
}

func TestPoolCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		p := NewPool(workers)
		for _, n := range []int{1, 2, 3, 16, 255, 256, 1000, 4097} {
			for _, grain := range []int{1, 16, 256} {
				coverage(t, p, n, grain)
			}
		}
		p.Close()
	}
}

func TestPoolBlocksAreGrainMultiples(t *testing.T) {
	// grain is the scheduling quantum: every block except the final one
	// must be a whole number of grains, so callers processing fixed-size
	// groups (the inference engine's gather quads) keep their groups whole.
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{30, 64, 1000, 4099} {
		var mu sync.Mutex
		type block struct{ lo, hi int }
		var blocks []block
		p.Run(n, 4, func(lo, hi int) {
			mu.Lock()
			blocks = append(blocks, block{lo, hi})
			mu.Unlock()
		})
		for _, b := range blocks {
			if (b.hi-b.lo)%4 != 0 && b.hi != n {
				t.Fatalf("n=%d: interior block [%d,%d) is not a grain multiple", n, b.lo, b.hi)
			}
			if b.lo%4 != 0 {
				t.Fatalf("n=%d: block start %d not grain-aligned", n, b.lo)
			}
		}
	}
}

func TestPoolZeroAndNegativeN(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	called := false
	p.Run(0, 1, func(lo, hi int) { called = true })
	p.Run(-5, 1, func(lo, hi int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestPoolNestedRunDegradesSerially(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var total atomic.Int64
	p.Run(64, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			// A nested Run must complete (via the spawn fallback) rather
			// than deadlock on the occupied pool.
			p.Run(8, 1, func(l, h int) { total.Add(int64(h - l)) })
		}
	})
	if got := total.Load(); got != 64*8 {
		t.Fatalf("nested runs covered %d iterations, want %d", got, 64*8)
	}
}

func TestPoolConcurrentRuns(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				p.Run(100, 1, func(lo, hi int) { total.Add(int64(hi - lo)) })
			}
		}()
	}
	wg.Wait()
	if got := total.Load(); got != 8*50*100 {
		t.Fatalf("concurrent runs covered %d iterations, want %d", got, 8*50*100)
	}
}

// goid extracts the current goroutine id from a stack header; test-only.
func goid() int {
	buf := make([]byte, 64)
	n := runtime.Stack(buf, false)
	id, err := strconv.Atoi(strings.Fields(string(buf[:n]))[1])
	if err != nil {
		panic(err)
	}
	return id
}

func TestPoolSurvivesPanickingFn(t *testing.T) {
	// A panic in fn on the calling goroutine must not leave the pool
	// locked: later Runs would silently degrade to serial forever. (A panic
	// on a helper goroutine is unrecoverable and kills the process, as with
	// any goroutine panic, so only the caller-side unwind is testable.)
	p := NewPool(2)
	defer p.Close()
	caller := goid()
	gate := make(chan struct{})
	var once sync.Once
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		p.Run(64, 1, func(lo, hi int) {
			if goid() != caller {
				// Helper: park until the caller has panicked so the caller
				// is guaranteed to claim (and panic on) some chunk.
				<-gate
				return
			}
			defer once.Do(func() { close(gate) })
			panic("kernel bug")
		})
	}()
	once.Do(func() { close(gate) }) // in case the caller claimed every chunk
	if !p.mu.TryLock() {
		t.Fatal("pool left locked after recovered panic")
	}
	p.mu.Unlock()
	coverage(t, p, 1000, 1)
}

func TestPoolRunDoesNotAllocate(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	sink := make([]float64, 4096)
	fn := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sink[i]++
		}
	}
	p.Run(len(sink), 1, fn) // warm up
	allocs := testing.AllocsPerRun(20, func() {
		p.Run(len(sink), 1, fn)
	})
	if allocs != 0 {
		t.Fatalf("Pool.Run allocated %g objects per call, want 0", allocs)
	}
}

func TestSharedPoolSingleton(t *testing.T) {
	if Shared() != Shared() {
		t.Fatal("Shared returned distinct pools")
	}
	if Shared().Workers() < 1 {
		t.Fatal("shared pool has no workers")
	}
}

func TestQuota(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	if got := Quota(1); got != procs {
		t.Errorf("Quota(1) = %d, want GOMAXPROCS = %d", got, procs)
	}
	if got := Quota(0); got != procs {
		t.Errorf("Quota(0) = %d, want GOMAXPROCS = %d", got, procs)
	}
	if got := Quota(-3); got != procs {
		t.Errorf("Quota(-3) = %d, want GOMAXPROCS = %d", got, procs)
	}
	if got := Quota(procs * 100); got != 1 {
		t.Errorf("Quota(%d) = %d, want 1", procs*100, got)
	}
	for parts := 1; parts <= 2*procs; parts++ {
		q := Quota(parts)
		if q < 1 {
			t.Fatalf("Quota(%d) = %d < 1", parts, q)
		}
		if q > 1 && q*parts > procs {
			t.Errorf("Quota(%d) = %d oversubscribes %d procs", parts, q, procs)
		}
	}
}
