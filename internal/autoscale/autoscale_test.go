package autoscale

import (
	"testing"
	"time"
)

// pol returns a tight test policy: 1-interval cooldown and down-streak so
// single-step behavior is observable, hysteresis band 10ms..40ms.
func pol() Policy {
	return Policy{
		MinReplicas:  1,
		MaxStep:      1,
		Cooldown:     1,
		DownAfter:    1,
		ScaleUpP90:   40 * time.Millisecond,
		ScaleDownP90: 10 * time.Millisecond,
	}
}

func mustNew(t *testing.T, p Policy) *Controller {
	t.Helper()
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidateDefaults(t *testing.T) {
	var p Policy
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Interval != DefaultInterval || p.MinReplicas != 1 || p.MaxStep != DefaultMaxStep ||
		p.Cooldown != DefaultCooldown || p.DownAfter != DefaultDownAfter ||
		p.ScaleUpP90 != DefaultScaleUpP90 || p.ScaleDownP90 != DefaultScaleUpP90/4 ||
		p.Rate429High != DefaultRate429High || p.ShedClass != DefaultShedClass {
		t.Fatalf("defaults not applied: %+v", p)
	}
}

func TestValidateRejectsInvertedHysteresis(t *testing.T) {
	p := Policy{ScaleUpP90: 10 * time.Millisecond, ScaleDownP90: 10 * time.Millisecond}
	if err := p.Validate(); err == nil {
		t.Fatal("equal up/down thresholds must be rejected (no dead band)")
	}
	p = Policy{MinReplicas: 4, MaxReplicas: 2}
	if err := p.Validate(); err == nil {
		t.Fatal("MaxReplicas < MinReplicas must be rejected")
	}
}

func TestScaleUpOnHighQueueWait(t *testing.T) {
	c := mustNew(t, pol())
	ds := c.Evaluate([]ModelStats{{Model: "m", Replicas: 2, Ceiling: 8, QueueWaitP90: 100 * time.Millisecond}})
	if len(ds) != 1 || ds[0].To != 3 || ds[0].From != 2 {
		t.Fatalf("want one 2→3 scale-up, got %+v", ds)
	}
}

func TestScaleUpOn429Rate(t *testing.T) {
	c := mustNew(t, pol())
	ds := c.Evaluate([]ModelStats{{Model: "m", Replicas: 2, Ceiling: 8, Rate429: 0.2}})
	if len(ds) != 1 || ds[0].To != 3 {
		t.Fatalf("want scale-up on 429 rate, got %+v", ds)
	}
}

func TestScaleUpOnSLOViolation(t *testing.T) {
	c := mustNew(t, pol())
	ds := c.Evaluate([]ModelStats{{Model: "m", Replicas: 2, Ceiling: 8, SLOViolated: true}})
	if len(ds) != 1 || ds[0].To != 3 || ds[0].Reason != "slo objective violated" {
		t.Fatalf("want SLO-driven scale-up, got %+v", ds)
	}
}

func TestDeadBandHolds(t *testing.T) {
	c := mustNew(t, pol())
	// 25ms sits between the 10ms down and 40ms up thresholds: hold forever.
	for i := 0; i < 10; i++ {
		ds := c.Evaluate([]ModelStats{{Model: "m", Replicas: 3, Ceiling: 8, QueueWaitP90: 25 * time.Millisecond}})
		if len(ds) != 0 {
			t.Fatalf("interval %d: dead-band load must hold, got %+v", i, ds)
		}
	}
	if st := c.Status(); st[0].StableIntervals != 10 {
		t.Fatalf("want 10 stable intervals, got %d", st[0].StableIntervals)
	}
}

func TestCooldownFreezesAfterActuation(t *testing.T) {
	p := pol()
	p.Cooldown = 3
	c := mustNew(t, p)
	hot := ModelStats{Model: "m", Replicas: 2, Ceiling: 8, QueueWaitP90: 100 * time.Millisecond}
	if ds := c.Evaluate([]ModelStats{hot}); len(ds) != 1 {
		t.Fatalf("want initial scale-up, got %+v", ds)
	}
	hot.Replicas = 3
	// Two more hot intervals inside the cooldown: frozen.
	for i := 0; i < 2; i++ {
		if ds := c.Evaluate([]ModelStats{hot}); len(ds) != 0 {
			t.Fatalf("cooldown interval %d: want hold, got %+v", i, ds)
		}
	}
	// Cooldown expired: acts again.
	if ds := c.Evaluate([]ModelStats{hot}); len(ds) != 1 || ds[0].To != 4 {
		t.Fatalf("want 3→4 after cooldown, got %+v", ds)
	}
}

func TestMaxStepBoundsMove(t *testing.T) {
	p := pol()
	p.MaxStep = 2
	c := mustNew(t, p)
	ds := c.Evaluate([]ModelStats{{Model: "m", Replicas: 1, Ceiling: 8, QueueWaitP90: time.Second}})
	if len(ds) != 1 || ds[0].To != 3 {
		t.Fatalf("want bounded 1→3 despite extreme load, got %+v", ds)
	}
}

func TestCeilingCapsScaleUp(t *testing.T) {
	c := mustNew(t, pol())
	ds := c.Evaluate([]ModelStats{{Model: "m", Replicas: 4, Ceiling: 4, QueueWaitP90: time.Second}})
	if len(ds) != 0 {
		t.Fatalf("at ceiling without SLO violation: want hold, got %+v", ds)
	}
	p := pol()
	p.MaxReplicas = 3
	c = mustNew(t, p)
	ds = c.Evaluate([]ModelStats{{Model: "m", Replicas: 2, Ceiling: 8, QueueWaitP90: time.Second}})
	if len(ds) != 1 || ds[0].To != 3 {
		t.Fatalf("policy MaxReplicas must cap below fleet size, got %+v", ds)
	}
}

func TestScaleDownRequiresStreak(t *testing.T) {
	p := pol()
	p.DownAfter = 3
	c := mustNew(t, p)
	idle := ModelStats{Model: "m", Replicas: 4, Ceiling: 8, QueueWaitP90: time.Millisecond}
	for i := 0; i < 2; i++ {
		if ds := c.Evaluate([]ModelStats{idle}); len(ds) != 0 {
			t.Fatalf("streak interval %d: want hold, got %+v", i, ds)
		}
	}
	ds := c.Evaluate([]ModelStats{idle})
	if len(ds) != 1 || ds[0].To != 3 || ds[0].From != 4 {
		t.Fatalf("want 4→3 after 3 low intervals, got %+v", ds)
	}
}

func TestBusySpikeResetsDownStreak(t *testing.T) {
	p := pol()
	p.DownAfter = 2
	c := mustNew(t, p)
	idle := ModelStats{Model: "m", Replicas: 4, Ceiling: 8, QueueWaitP90: time.Millisecond}
	mid := ModelStats{Model: "m", Replicas: 4, Ceiling: 8, QueueWaitP90: 25 * time.Millisecond}
	c.Evaluate([]ModelStats{idle})
	c.Evaluate([]ModelStats{mid}) // dead band: resets the streak
	if ds := c.Evaluate([]ModelStats{idle}); len(ds) != 0 {
		t.Fatalf("streak must restart after a dead-band interval, got %+v", ds)
	}
}

func TestScaleDownFloorsAtMin(t *testing.T) {
	p := pol()
	p.MinReplicas = 2
	c := mustNew(t, p)
	idle := ModelStats{Model: "m", Replicas: 2, Ceiling: 8, QueueWaitP90: time.Millisecond}
	for i := 0; i < 5; i++ {
		if ds := c.Evaluate([]ModelStats{idle}); len(ds) != 0 {
			t.Fatalf("at MinReplicas: want hold, got %+v", ds)
		}
	}
}

func TestShedAtCeilingAndRecovery(t *testing.T) {
	c := mustNew(t, pol())
	violated := ModelStats{Model: "m", Replicas: 4, Ceiling: 4, SLOViolated: true, QueueWaitP90: time.Second}
	ds := c.Evaluate([]ModelStats{violated})
	if len(ds) != 1 || ds[0].Shed != DefaultShedClass {
		t.Fatalf("SLO violation at ceiling must shed %q, got %+v", DefaultShedClass, ds)
	}
	// Still violated: no duplicate shed decisions.
	if ds := c.Evaluate([]ModelStats{violated}); len(ds) != 0 {
		t.Fatalf("shed must be emitted once, got %+v", ds)
	}
	// Recovered: the first low interval readmits the class (before any
	// replica scale-in).
	idle := ModelStats{Model: "m", Replicas: 4, Ceiling: 4, QueueWaitP90: time.Millisecond}
	ds = c.Evaluate([]ModelStats{idle})
	if len(ds) != 1 || !ds[0].Unshed {
		t.Fatalf("recovery must unshed first, got %+v", ds)
	}
	// Next low interval: now replicas may come down.
	ds = c.Evaluate([]ModelStats{idle})
	if len(ds) != 1 || ds[0].To != 3 {
		t.Fatalf("want 4→3 after unshed, got %+v", ds)
	}
}

// TestConvergenceUnderConstantLoad is the stability property end to end: a
// constant overload converges to the ceiling and stays there; a constant
// idle load converges to the floor and stays there. No oscillation either
// way.
func TestConvergenceUnderConstantLoad(t *testing.T) {
	c := mustNew(t, pol())
	replicas := 1
	for i := 0; i < 20; i++ {
		ds := c.Evaluate([]ModelStats{{Model: "m", Replicas: replicas, Ceiling: 6, QueueWaitP90: time.Second}})
		for _, d := range ds {
			if d.To != 0 {
				if d.To < d.From {
					t.Fatalf("interval %d: overload must never scale down, got %+v", i, d)
				}
				replicas = d.To
			}
		}
	}
	if replicas != 6 {
		t.Fatalf("constant overload must converge to ceiling 6, got %d", replicas)
	}
	for i := 0; i < 20; i++ {
		ds := c.Evaluate([]ModelStats{{Model: "m", Replicas: replicas, Ceiling: 6, QueueWaitP90: time.Millisecond}})
		for _, d := range ds {
			if d.To != 0 {
				if d.To > d.From {
					t.Fatalf("interval %d: idle must never scale up, got %+v", i, d)
				}
				replicas = d.To
			}
		}
	}
	if replicas != 1 {
		t.Fatalf("constant idle must converge to floor 1, got %d", replicas)
	}
}

func TestStatusReflectsLastStats(t *testing.T) {
	c := mustNew(t, pol())
	c.Evaluate([]ModelStats{
		{Model: "b", Replicas: 2, Ceiling: 8, QueueWaitP90: 25 * time.Millisecond, Throughput: 123},
		{Model: "a", Replicas: 1, Ceiling: 8, QueueWaitP90: 25 * time.Millisecond},
	})
	st := c.Status()
	if len(st) != 2 || st[0].Model != "a" || st[1].Model != "b" {
		t.Fatalf("want sorted [a b], got %+v", st)
	}
	if st[1].Throughput != 123 || st[1].QueueWaitP90Ms != 25 {
		t.Fatalf("status must echo the last stats, got %+v", st[1])
	}
}
