// Package autoscale is the replica control loop's brain: a pure decision
// controller that turns per-model load observations (fleet-merged
// queue-wait p90, 429 rate, throughput, SLO burn state) into bounded
// replica-count moves. It owns no clocks, no HTTP, and no cluster state —
// the router feeds it one ModelStats batch per evaluation interval and
// actuates whatever Decisions come back — which is what makes the loop's
// stability provable and its unit tests exhaustive.
//
// Stability argument. Four policy properties, all enforced by Validate,
// bound the closed loop:
//
//  1. Hysteresis: the scale-up threshold is strictly above the scale-down
//     threshold, so there is a dead band in which the controller holds —
//     a workload whose p90 settles anywhere inside it never oscillates.
//  2. Cooldown: after any actuation a model is frozen for Cooldown
//     intervals, so the loop never reacts to load it has not yet had a
//     chance to redistribute (registration + ring widening take effect
//     within one interval; Cooldown ≥ 1 covers it).
//  3. Bounded step: one decision moves a model by at most MaxStep
//     replicas, so even a pathological metrics spike cannot slam the
//     fleet from min to max in one interval.
//  4. Down-streak: scale-in additionally requires DownAfter consecutive
//     below-band intervals, so a workload alternating between busy and
//     idle intervals ratchets up but never flaps down-up-down.
//
// Together: replica counts move monotonically toward the band, by bounded
// steps, at bounded frequency, within [MinReplicas, MaxReplicas] — a
// constant offered load therefore converges to a fixed point in at most
// (MaxReplicas−MinReplicas)/MaxStep × Cooldown intervals and stays there.
package autoscale

import (
	"fmt"
	"sort"
	"time"
)

// Defaults applied by Policy.Validate for zero fields.
const (
	DefaultInterval    = 5 * time.Second
	DefaultMaxStep     = 1
	DefaultCooldown    = 3
	DefaultDownAfter   = 3
	DefaultScaleUpP90  = 50 * time.Millisecond
	DefaultRate429High = 0.05
	DefaultShedClass   = "background"
	defaultDownDivisor = 4 // ScaleDownP90 = ScaleUpP90 / 4
)

// Policy bounds the control loop. The zero value validates to the
// defaults above; an explicit policy must keep ScaleDownP90 strictly
// below ScaleUpP90 (the hysteresis dead band) and MinReplicas ≤
// MaxReplicas when both are set.
type Policy struct {
	// Interval is the evaluation period — how often the router scrapes the
	// fleet and calls Evaluate. Default 5s.
	Interval time.Duration
	// MinReplicas floors every model's replica count. Default 1.
	MinReplicas int
	// MaxReplicas caps every model's replica count; 0 means "the fleet
	// size" (the per-model ceiling the caller reports in ModelStats).
	MaxReplicas int
	// MaxStep bounds how many replicas one decision adds or removes.
	// Default 1.
	MaxStep int
	// Cooldown is how many evaluation intervals a model is frozen after
	// any actuation, so the loop observes the effect of its last move
	// before making another. Default 3.
	Cooldown int
	// UpAfter is how many consecutive above-band intervals a model must
	// string together before it may scale out on queue-wait or 429
	// pressure. One interval's p90 is hostage to whatever else stalled the
	// host during it — a GC cycle, a noisy neighbor, an engine build — and
	// reacting to a single spiked window is how control loops chase their
	// own tail. SLO-violated pressure is exempt: the burn-rate evaluation
	// is already debounced by its own dual windows. Default 1 (react
	// immediately).
	UpAfter int
	// DownAfter is how many consecutive below-band intervals a model must
	// string together before it may scale in. Default 3.
	DownAfter int
	// ScaleUpP90 is the fleet-merged queue-wait p90 above which a model
	// scales out. Default 50ms.
	ScaleUpP90 time.Duration
	// ScaleDownP90 is the queue-wait p90 below which (together with a zero
	// 429 rate and a healthy SLO) a model counts a below-band interval.
	// Must be strictly less than ScaleUpP90. Default ScaleUpP90/4.
	ScaleDownP90 time.Duration
	// Rate429High is the rejected-request fraction (rejected / offered)
	// above which a model scales out regardless of queue-wait. Default
	// 0.05.
	Rate429High float64
	// MinSamples is the fewest queue-wait observations a window must hold
	// before its p90 may trigger a scale-out. A p90 computed over a handful
	// of rows is noise — on a loaded host a single stalled request pushes a
	// near-idle model past any threshold — and acting on it cascades:
	// every actuation perturbs the very signal the next evaluation reads.
	// The gate applies only to the queue-wait path; 429 rate and SLO burn
	// carry their own evidence and still actuate. 0 disables the gate.
	MinSamples int
	// ShedClass is the QoS class shed as a last resort when a model's SLO
	// stays violated at its replica ceiling; "" keeps the default
	// "background". Shedding clears once the model strings together a
	// below-band streak.
	ShedClass string
}

// Validate fills defaults in place and rejects inconsistent policies.
func (p *Policy) Validate() error {
	if p.Interval <= 0 {
		p.Interval = DefaultInterval
	}
	if p.MinReplicas <= 0 {
		p.MinReplicas = 1
	}
	if p.MaxReplicas < 0 {
		return fmt.Errorf("autoscale: MaxReplicas %d is negative", p.MaxReplicas)
	}
	if p.MaxReplicas > 0 && p.MaxReplicas < p.MinReplicas {
		return fmt.Errorf("autoscale: MaxReplicas %d below MinReplicas %d", p.MaxReplicas, p.MinReplicas)
	}
	if p.MaxStep <= 0 {
		p.MaxStep = DefaultMaxStep
	}
	if p.Cooldown <= 0 {
		p.Cooldown = DefaultCooldown
	}
	if p.UpAfter <= 0 {
		p.UpAfter = 1
	}
	if p.DownAfter <= 0 {
		p.DownAfter = DefaultDownAfter
	}
	if p.ScaleUpP90 <= 0 {
		p.ScaleUpP90 = DefaultScaleUpP90
	}
	if p.ScaleDownP90 <= 0 {
		p.ScaleDownP90 = p.ScaleUpP90 / defaultDownDivisor
	}
	if p.ScaleDownP90 >= p.ScaleUpP90 {
		return fmt.Errorf("autoscale: ScaleDownP90 %v must be strictly below ScaleUpP90 %v (hysteresis dead band)",
			p.ScaleDownP90, p.ScaleUpP90)
	}
	if p.Rate429High <= 0 {
		p.Rate429High = DefaultRate429High
	}
	if p.ShedClass == "" {
		p.ShedClass = DefaultShedClass
	}
	return nil
}

// ModelStats is one model's load observation over the last evaluation
// window, as measured by the caller (the router: fleet-merged histograms
// windowed against the previous scrape).
type ModelStats struct {
	// Model is the registry name.
	Model string
	// Replicas is the model's current effective replica count.
	Replicas int
	// Ceiling is the model's maximum possible replica count this interval
	// (the fleet size); Policy.MaxReplicas tightens it when set. ≤ 0 means
	// unconstrained.
	Ceiling int
	// QueueWaitP90 is the fleet-merged queue-wait p90 over the window.
	QueueWaitP90 time.Duration
	// Samples is how many queue-wait observations the window holds — the
	// merged histogram's count delta. Policy.MinSamples reads it.
	Samples uint64
	// Rate429 is rejected/(accepted+rejected) over the window; 0 when no
	// requests were offered.
	Rate429 float64
	// Throughput is accepted rows/s over the window (reported on Status,
	// not used for decisions).
	Throughput float64
	// SLOViolated reports whether any of the model's burn-rate objectives
	// is in the violated state (both windows burning).
	SLOViolated bool
}

// Decision is one actuation the caller should apply. Exactly one of the
// three kinds is populated: a replica move (To != From), a shed
// installation (Shed != ""), or a shed clearance (Unshed).
type Decision struct {
	Model  string `json:"model"`
	From   int    `json:"from,omitempty"`
	To     int    `json:"to,omitempty"`
	Shed   string `json:"shed,omitempty"`
	Unshed bool   `json:"unshed,omitempty"`
	Reason string `json:"reason"`
}

// modelState is the controller's per-model memory between intervals.
type modelState struct {
	lastAction int // tick of the most recent actuation (0 = never)
	highStreak int // consecutive above-band intervals
	lowStreak  int // consecutive below-band intervals
	stable     int // consecutive intervals without an actuation
	shedding   bool
	last       ModelStats
	lastReason string
}

// Controller evaluates one Policy over successive ModelStats batches.
// Not safe for concurrent use; the router serializes calls on its loop
// goroutine.
type Controller struct {
	pol   Policy
	tick  int
	state map[string]*modelState
}

// New validates the policy (filling defaults) and returns a controller.
func New(pol Policy) (*Controller, error) {
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	return &Controller{pol: pol, state: make(map[string]*modelState)}, nil
}

// Policy returns the validated (defaults-filled) policy.
func (c *Controller) Policy() Policy { return c.pol }

// ceiling resolves a model's effective max replica count.
func (c *Controller) ceiling(stat ModelStats) int {
	max := stat.Ceiling
	if max <= 0 || (c.pol.MaxReplicas > 0 && c.pol.MaxReplicas < max) {
		if c.pol.MaxReplicas > 0 {
			max = c.pol.MaxReplicas
		}
	}
	if max > 0 && max < c.pol.MinReplicas {
		max = c.pol.MinReplicas
	}
	return max
}

// Evaluate advances the controller one interval and returns the bounded
// actuations for this batch, in model order. Models absent from the batch
// keep their state; models never seen before start a fresh history (no
// instant scale-in on first sight).
func (c *Controller) Evaluate(stats []ModelStats) []Decision {
	c.tick++
	var out []Decision
	sort.Slice(stats, func(i, j int) bool { return stats[i].Model < stats[j].Model })
	for _, stat := range stats {
		st := c.state[stat.Model]
		if st == nil {
			st = &modelState{}
			c.state[stat.Model] = st
		}
		st.last = stat
		d := c.evalModel(stat, st)
		if d != nil {
			st.lastAction = c.tick
			st.stable = 0
			st.lastReason = d.Reason
			out = append(out, *d)
		} else {
			st.stable++
		}
	}
	return out
}

// evalModel is one model's decision: nil means hold.
func (c *Controller) evalModel(stat ModelStats, st *modelState) *Decision {
	p90Up := stat.QueueWaitP90 >= c.pol.ScaleUpP90 &&
		(c.pol.MinSamples <= 0 || stat.Samples >= uint64(c.pol.MinSamples))
	pressure := p90Up ||
		stat.Rate429 >= c.pol.Rate429High ||
		stat.SLOViolated
	down := !pressure &&
		stat.QueueWaitP90 <= c.pol.ScaleDownP90 &&
		stat.Rate429 == 0 &&
		!stat.SLOViolated

	// The streaks advance every interval regardless of cooldown, so a
	// model exiting cooldown with a long history may act immediately.
	if pressure {
		st.highStreak++
	} else {
		st.highStreak = 0
	}
	if down {
		st.lowStreak++
	} else {
		st.lowStreak = 0
	}
	// SLO-violated pressure skips the up-debounce (see Policy.UpAfter).
	up := pressure && (st.highStreak >= c.pol.UpAfter || stat.SLOViolated)
	if st.lastAction != 0 && c.tick-st.lastAction < c.pol.Cooldown {
		return nil // frozen: the last move's effect is still propagating
	}
	max := c.ceiling(stat)
	switch {
	case up && (max <= 0 || stat.Replicas < max):
		to := stat.Replicas + c.pol.MaxStep
		if max > 0 && to > max {
			to = max
		}
		if to <= stat.Replicas {
			return nil
		}
		return &Decision{
			Model: stat.Model, From: stat.Replicas, To: to,
			Reason: upReason(stat, c.pol),
		}
	case up && stat.SLOViolated && !st.shedding && c.pol.ShedClass != "":
		// At the replica ceiling with the SLO still burning: shed the
		// sacrificial class so the protected classes can recover.
		st.shedding = true
		return &Decision{
			Model: stat.Model, Shed: c.pol.ShedClass,
			Reason: fmt.Sprintf("slo violated at replica ceiling %d; shedding class %q", max, c.pol.ShedClass),
		}
	case down && st.lowStreak >= c.pol.DownAfter && st.shedding:
		// Recovery unwinds in reverse: readmit the shed class first, and
		// only consider surrendering replicas in later intervals.
		st.shedding = false
		return &Decision{
			Model: stat.Model, Unshed: true,
			Reason: fmt.Sprintf("recovered (%d low intervals); readmitting shed class", st.lowStreak),
		}
	case down && st.lowStreak >= c.pol.DownAfter && stat.Replicas > c.pol.MinReplicas:
		to := stat.Replicas - c.pol.MaxStep
		if to < c.pol.MinReplicas {
			to = c.pol.MinReplicas
		}
		return &Decision{
			Model: stat.Model, From: stat.Replicas, To: to,
			Reason: fmt.Sprintf("queue-wait p90 %v <= %v for %d intervals",
				stat.QueueWaitP90.Round(time.Microsecond), c.pol.ScaleDownP90, st.lowStreak),
		}
	}
	return nil
}

// upReason names which signal tripped the scale-out, most severe first.
func upReason(stat ModelStats, pol Policy) string {
	switch {
	case stat.SLOViolated:
		return "slo objective violated"
	case stat.Rate429 >= pol.Rate429High:
		return fmt.Sprintf("429 rate %.1f%% >= %.1f%%", 100*stat.Rate429, 100*pol.Rate429High)
	default:
		return fmt.Sprintf("queue-wait p90 %v >= %v",
			stat.QueueWaitP90.Round(time.Microsecond), pol.ScaleUpP90)
	}
}

// ModelStatus is one model's control-loop state, for status endpoints and
// convergence checks.
type ModelStatus struct {
	Model           string  `json:"model"`
	Replicas        int     `json:"replicas"`
	QueueWaitP90Ms  float64 `json:"queue_wait_p90_ms"`
	Samples         uint64  `json:"samples"`
	Rate429         float64 `json:"rate_429"`
	Throughput      float64 `json:"throughput_rows_per_sec"`
	SLOViolated     bool    `json:"slo_violated,omitempty"`
	Shedding        bool    `json:"shedding,omitempty"`
	StableIntervals int     `json:"stable_intervals"`
	LowStreak       int     `json:"low_streak"`
	LastReason      string  `json:"last_reason,omitempty"`
}

// Status snapshots every model the controller has seen, sorted by name.
func (c *Controller) Status() []ModelStatus {
	names := make([]string, 0, len(c.state))
	for name := range c.state {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]ModelStatus, 0, len(names))
	for _, name := range names {
		st := c.state[name]
		out = append(out, ModelStatus{
			Model:           name,
			Replicas:        st.last.Replicas,
			QueueWaitP90Ms:  float64(st.last.QueueWaitP90) / float64(time.Millisecond),
			Samples:         st.last.Samples,
			Rate429:         st.last.Rate429,
			Throughput:      st.last.Throughput,
			SLOViolated:     st.last.SLOViolated,
			Shedding:        st.shedding,
			StableIntervals: st.stable,
			LowStreak:       st.lowStreak,
			LastReason:      st.lastReason,
		})
	}
	return out
}
