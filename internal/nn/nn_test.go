package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/radix"
	"github.com/radix-net/radixnet/internal/sparse"
)

// numericalGrad estimates d(loss)/d(param) by central differences for every
// parameter of the network, the oracle that validates backprop.
func numericalGrad(t *testing.T, net *Network, loss Loss, x, target *sparse.Dense) [][]float64 {
	t.Helper()
	const h = 1e-6
	var grads [][]float64
	for _, p := range net.Params() {
		g := make([]float64, len(p.W))
		for j := range p.W {
			orig := p.W[j]
			p.W[j] = orig + h
			outP, err := net.Forward(x)
			if err != nil {
				t.Fatal(err)
			}
			lp, _, err := loss.Loss(outP, target)
			if err != nil {
				t.Fatal(err)
			}
			p.W[j] = orig - h
			outM, err := net.Forward(x)
			if err != nil {
				t.Fatal(err)
			}
			lm, _, err := loss.Loss(outM, target)
			if err != nil {
				t.Fatal(err)
			}
			p.W[j] = orig
			g[j] = (lp - lm) / (2 * h)
		}
		grads = append(grads, g)
	}
	return grads
}

// analyticGrad runs forward+backward once and snapshots the accumulated
// gradients.
func analyticGrad(t *testing.T, net *Network, loss Loss, x, target *sparse.Dense) [][]float64 {
	t.Helper()
	net.ZeroGrads()
	out, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	_, grad, err := loss.Loss(out, target)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Backward(grad); err != nil {
		t.Fatal(err)
	}
	var grads [][]float64
	for _, p := range net.Params() {
		grads = append(grads, append([]float64(nil), p.G...))
	}
	return grads
}

func checkGrads(t *testing.T, net *Network, loss Loss, x, target *sparse.Dense, tol float64) {
	t.Helper()
	ana := analyticGrad(t, net, loss, x, target)
	num := numericalGrad(t, net, loss, x, target)
	for i := range ana {
		for j := range ana[i] {
			diff := math.Abs(ana[i][j] - num[i][j])
			scale := math.Max(1, math.Max(math.Abs(ana[i][j]), math.Abs(num[i][j])))
			if diff/scale > tol {
				t.Fatalf("param %d[%d]: analytic %g vs numeric %g", i, j, ana[i][j], num[i][j])
			}
		}
	}
}

func randBatch(rng *rand.Rand, rows, cols int) *sparse.Dense {
	d, _ := sparse.NewDense(rows, cols)
	for i := range d.Data() {
		d.Data()[i] = rng.NormFloat64()
	}
	return d
}

func TestDenseLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l, err := NewDenseLinear(4, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	net, _ := NewNetwork(l)
	checkGrads(t, net, MSE{}, randBatch(rng, 5, 4), randBatch(rng, 5, 3), 1e-5)
}

func TestSparseLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pat, err := sparse.NewPattern(4, 3, [][]int{{0, 2}, {1}, {0, 1, 2}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	l := NewSparseLinear(pat, rng)
	net, _ := NewNetwork(l)
	checkGrads(t, net, MSE{}, randBatch(rng, 5, 4), randBatch(rng, 5, 3), 1e-5)
}

func TestDeepMixedNetworkGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mr := core.MixedRadix(radix.MustNew(2, 2))
	dl1, _ := NewDenseLinear(3, 4, rng)
	sl := NewSparseLinear(mr.Sub(0), rng)
	dl2, _ := NewDenseLinear(4, 2, rng)
	net, err := NewNetwork(dl1, Tanh(), sl, Sigmoid(), dl2)
	if err != nil {
		t.Fatal(err)
	}
	checkGrads(t, net, MSE{}, randBatch(rng, 4, 3), randBatch(rng, 4, 2), 1e-4)
}

func TestSoftmaxCrossEntropyGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dl, _ := NewDenseLinear(3, 4, rng)
	net, _ := NewNetwork(dl, ReLU(), mustDense(t, 4, 4, rng))
	target, err := OneHot([]int{1, 3, 0, 2, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkGrads(t, net, SoftmaxCrossEntropy{}, randBatch(rng, 5, 3), target, 1e-4)
}

func mustDense(t *testing.T, in, out int, rng *rand.Rand) *DenseLinear {
	t.Helper()
	l, err := NewDenseLinear(in, out, rng)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestActivationValues(t *testing.T) {
	x, _ := sparse.DenseFromSlice(1, 4, []float64{-2, -0.5, 0.5, 2})
	relu, _ := ReLU().Forward(x)
	want := []float64{0, 0, 0.5, 2}
	for i, w := range want {
		if relu.At(0, i) != w {
			t.Fatalf("ReLU[%d] = %g, want %g", i, relu.At(0, i), w)
		}
	}
	sig, _ := Sigmoid().Forward(x)
	if v := sig.At(0, 3); math.Abs(v-1/(1+math.Exp(-2))) > 1e-12 {
		t.Fatalf("Sigmoid(2) = %g", v)
	}
	th, _ := Tanh().Forward(x)
	if v := th.At(0, 0); math.Abs(v-math.Tanh(-2)) > 1e-12 {
		t.Fatalf("Tanh(-2) = %g", v)
	}
	lk, _ := LeakyReLU(0.1).Forward(x)
	if v := lk.At(0, 0); math.Abs(v-(-0.2)) > 1e-12 {
		t.Fatalf("LeakyReLU(-2) = %g", v)
	}
}

func TestActivationBackwardBeforeForward(t *testing.T) {
	g, _ := sparse.NewDense(1, 2)
	if _, err := ReLU().Backward(g); err == nil {
		t.Fatal("Backward before Forward accepted")
	}
}

func TestLayerShapeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dl, _ := NewDenseLinear(4, 3, rng)
	if _, err := dl.Forward(randBatch(rng, 2, 5)); err == nil {
		t.Fatal("wrong input width accepted")
	}
	pat := sparse.Ones(4, 3)
	sl := NewSparseLinear(pat, rng)
	if _, err := sl.Forward(randBatch(rng, 2, 5)); err == nil {
		t.Fatal("wrong input width accepted")
	}
	if _, err := dl.Backward(randBatch(rng, 2, 3)); err == nil {
		t.Fatal("Backward before Forward accepted")
	}
}

func TestNetworkValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a, _ := NewDenseLinear(3, 4, rng)
	b, _ := NewDenseLinear(5, 2, rng)
	if _, err := NewNetwork(a, b); err == nil {
		t.Fatal("nonconforming layer chain accepted")
	}
	if _, err := NewNetwork(); err == nil {
		t.Fatal("empty network accepted")
	}
	c, _ := NewDenseLinear(4, 2, rng)
	if _, err := NewNetwork(a, ReLU(), c); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
}

func TestOneHotAndAccuracy(t *testing.T) {
	oh, err := OneHot([]int{0, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if oh.At(0, 0) != 1 || oh.At(1, 2) != 1 || oh.At(0, 1) != 0 {
		t.Fatal("one-hot wrong")
	}
	if _, err := OneHot([]int{3}, 3); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	pred, _ := sparse.DenseFromSlice(2, 3, []float64{0.1, 0.9, 0, 0.8, 0.1, 0.1})
	acc, err := Accuracy(pred, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Fatalf("accuracy = %g", acc)
	}
	acc, _ = Accuracy(pred, []int{0, 0})
	if acc != 0.5 {
		t.Fatalf("accuracy = %g", acc)
	}
	if _, err := Accuracy(pred, []int{0}); err == nil {
		t.Fatal("label-count mismatch accepted")
	}
}

func TestSGDReducesQuadratic(t *testing.T) {
	// One dense layer with MSE on a fixed linear target is a convex problem;
	// SGD must reduce the loss monotonically at a small step size.
	rng := rand.New(rand.NewSource(7))
	dl, _ := NewDenseLinear(3, 2, rng)
	net, _ := NewNetwork(dl)
	x := randBatch(rng, 16, 3)
	target := randBatch(rng, 16, 2)
	tr := &Trainer{Net: net, Opt: &SGD{LR: 0.05}, Loss: MSE{}, BatchSize: 16, Workers: 1}
	var prev float64 = math.Inf(1)
	for i := 0; i < 30; i++ {
		loss, err := tr.TrainBatch(x, target)
		if err != nil {
			t.Fatal(err)
		}
		if loss > prev+1e-9 {
			t.Fatalf("step %d: loss rose %g → %g", i, prev, loss)
		}
		prev = loss
	}
}

func TestMomentumAndAdamConverge(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := randBatch(rng, 32, 3)
	target := randBatch(rng, 32, 2)
	for _, opt := range []Optimizer{
		&SGD{LR: 0.05, Momentum: 0.9},
		&Adam{LR: 0.05},
	} {
		dl, _ := NewDenseLinear(3, 2, rand.New(rand.NewSource(9)))
		net, _ := NewNetwork(dl)
		tr := &Trainer{Net: net, Opt: opt, Loss: MSE{}, BatchSize: 32, Workers: 1}
		first, err := tr.TrainBatch(x, target)
		if err != nil {
			t.Fatal(err)
		}
		var last float64
		for i := 0; i < 100; i++ {
			last, err = tr.TrainBatch(x, target)
			if err != nil {
				t.Fatal(err)
			}
		}
		if last > first*0.5 {
			t.Fatalf("%s: loss %g → %g did not halve", opt.Name(), first, last)
		}
	}
}

func TestOptimizerValidation(t *testing.T) {
	p := []Param{{W: []float64{1}, G: []float64{1}}}
	if err := (&SGD{}).Step(p); err == nil {
		t.Fatal("zero LR accepted")
	}
	if err := (&Adam{}).Step(p); err == nil {
		t.Fatal("zero LR accepted")
	}
	bad := []Param{{W: []float64{1, 2}, G: []float64{1}}}
	if err := (&SGD{LR: 0.1}).Step(bad); err == nil {
		t.Fatal("mismatched param accepted")
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	p := []Param{{W: []float64{10}, G: []float64{0}}}
	opt := &SGD{LR: 0.1, WeightDecay: 0.5}
	if err := opt.Step(p); err != nil {
		t.Fatal(err)
	}
	if p[0].W[0] >= 10 {
		t.Fatalf("weight decay did not shrink weight: %g", p[0].W[0])
	}
}

// TestShardedGradientMatchesSerial pins data-parallel exactness: the
// all-reduced gradient must equal the single-worker gradient up to
// floating-point summation order.
func TestShardedGradientMatchesSerial(t *testing.T) {
	build := func(seed int64) (*Network, *Trainer) {
		rng := rand.New(rand.NewSource(seed))
		dl1, _ := NewDenseLinear(6, 8, rng)
		dl2, _ := NewDenseLinear(8, 3, rng)
		net, _ := NewNetwork(dl1, Tanh(), dl2)
		return net, nil
	}
	rng := rand.New(rand.NewSource(11))
	x := randBatch(rng, 24, 6)
	target := randBatch(rng, 24, 3)

	netA, _ := build(42)
	trA := &Trainer{Net: netA, Opt: &SGD{LR: 0.1}, Loss: MSE{}, BatchSize: 24, Workers: 1}
	lossA, err := trA.TrainBatch(x, target)
	if err != nil {
		t.Fatal(err)
	}

	netB, _ := build(42)
	trB := &Trainer{Net: netB, Opt: &SGD{LR: 0.1}, Loss: MSE{}, BatchSize: 24, Workers: 4}
	lossB, err := trB.TrainBatch(x, target)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lossA-lossB) > 1e-9 {
		t.Fatalf("losses diverge: %g vs %g", lossA, lossB)
	}
	pa, pb := netA.Params(), netB.Params()
	for i := range pa {
		for j := range pa[i].W {
			if math.Abs(pa[i].W[j]-pb[i].W[j]) > 1e-9 {
				t.Fatalf("weights diverge at %d[%d]: %g vs %g", i, j, pa[i].W[j], pb[i].W[j])
			}
		}
	}
}

func TestTrainerValidation(t *testing.T) {
	if _, err := (&Trainer{}).TrainBatch(nil, nil); err == nil {
		t.Fatal("empty trainer accepted")
	}
	rng := rand.New(rand.NewSource(12))
	dl, _ := NewDenseLinear(2, 2, rng)
	net, _ := NewNetwork(dl)
	tr := &Trainer{Net: net, Opt: &SGD{LR: 0.1}, Loss: MSE{}, BatchSize: 0}
	if _, err := tr.TrainBatch(randBatch(rng, 2, 2), randBatch(rng, 2, 2)); err == nil {
		t.Fatal("zero batch size accepted")
	}
	tr.BatchSize = 4
	if _, err := tr.TrainBatch(randBatch(rng, 2, 2), randBatch(rng, 3, 2)); err == nil {
		t.Fatal("row-count mismatch accepted")
	}
}

func TestFitLearnsSeparableTask(t *testing.T) {
	// Two well-separated Gaussian blobs in 2D: a tiny net should reach high
	// accuracy within a few epochs.
	rng := rand.New(rand.NewSource(13))
	n := 200
	x, _ := sparse.NewDense(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		k := i % 2
		labels[i] = k
		cx := -2.0
		if k == 1 {
			cx = 2.0
		}
		x.Set(i, 0, cx+rng.NormFloat64()*0.5)
		x.Set(i, 1, rng.NormFloat64()*0.5)
	}
	target, _ := OneHot(labels, 2)
	dl1, _ := NewDenseLinear(2, 8, rng)
	dl2, _ := NewDenseLinear(8, 2, rng)
	net, _ := NewNetwork(dl1, Tanh(), dl2)
	tr := &Trainer{Net: net, Opt: &Adam{LR: 0.02}, Loss: SoftmaxCrossEntropy{}, BatchSize: 32, Workers: 1, Seed: 1}
	hist, err := tr.Fit(x, target, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Epochs) != 15 {
		t.Fatalf("history has %d epochs", len(hist.Epochs))
	}
	acc, err := tr.Evaluate(x, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("accuracy %g < 0.95 on a separable task", acc)
	}
}

func TestFromTopologyTrains(t *testing.T) {
	// A RadiX-Net-backed sparse network must train end to end.
	rng := rand.New(rand.NewSource(14))
	cfg, err := core.NewConfig([]radix.System{radix.MustNew(2, 2, 2)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net, err := FromTopology(g, Tanh, rng)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumParams() >= 8*8*3+8*3 {
		t.Fatalf("sparse net has %d params, should be far below dense %d", net.NumParams(), 8*8*3+8*3)
	}
	x := randBatch(rng, 10, 8)
	target := randBatch(rng, 10, 8)
	tr := &Trainer{Net: net, Opt: &SGD{LR: 0.05}, Loss: MSE{}, BatchSize: 10, Workers: 1}
	first, err := tr.TrainBatch(x, target)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 60; i++ {
		if last, err = tr.TrainBatch(x, target); err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Fatalf("sparse training did not reduce loss: %g → %g", first, last)
	}
}

func TestCloneSharedSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	dl, _ := NewDenseLinear(2, 2, rng)
	net, _ := NewNetwork(dl, ReLU())
	rep := net.CloneShared()
	// Weights shared…
	net.Params()[0].W[0] = 123
	if rep.Params()[0].W[0] != 123 {
		t.Fatal("replica does not share weights")
	}
	// …gradients not.
	net.Params()[0].G[0] = 7
	if rep.Params()[0].G[0] == 7 {
		t.Fatal("replica shares gradient buffers")
	}
}

func TestDenseNetHelper(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	net, err := DenseNet([]int{4, 8, 3}, ReLU, rng)
	if err != nil {
		t.Fatal(err)
	}
	out, err := net.Forward(randBatch(rng, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if out.Cols() != 3 {
		t.Fatalf("output width = %d", out.Cols())
	}
	if _, err := DenseNet([]int{4}, ReLU, rng); err == nil {
		t.Fatal("single size accepted")
	}
}

func TestMSEAndXentShapeErrors(t *testing.T) {
	a, _ := sparse.NewDense(2, 3)
	b, _ := sparse.NewDense(3, 3)
	if _, _, err := (MSE{}).Loss(a, b); err == nil {
		t.Fatal("MSE shape mismatch accepted")
	}
	if _, _, err := (SoftmaxCrossEntropy{}).Loss(a, b); err == nil {
		t.Fatal("xent shape mismatch accepted")
	}
}

func TestSoftmaxGradientSumsToZero(t *testing.T) {
	// For one-hot targets, each row of the fused softmax-CE gradient sums to
	// zero (softmax sums to 1, target sums to 1).
	rng := rand.New(rand.NewSource(17))
	pred := randBatch(rng, 4, 5)
	target, _ := OneHot([]int{0, 1, 2, 3}, 5)
	_, grad, err := (SoftmaxCrossEntropy{}).Loss(pred, target)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		var sum float64
		for _, v := range grad.RowSlice(r) {
			sum += v
		}
		if math.Abs(sum) > 1e-12 {
			t.Fatalf("row %d gradient sums to %g", r, sum)
		}
	}
}
