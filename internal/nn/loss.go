package nn

import (
	"errors"
	"fmt"
	"math"

	"github.com/radix-net/radixnet/internal/sparse"
)

// Loss maps a prediction batch and a target batch to a scalar mean loss and
// the gradient of that mean loss with respect to the predictions.
type Loss interface {
	Loss(pred, target *sparse.Dense) (float64, *sparse.Dense, error)
	Name() string
}

// MSE is the mean squared error ½‖pred−target‖²/batch, the regression loss
// used by the conjecture experiments.
type MSE struct{}

// Name returns "mse".
func (MSE) Name() string { return "mse" }

// Loss computes the mean squared error and its gradient.
func (MSE) Loss(pred, target *sparse.Dense) (float64, *sparse.Dense, error) {
	if pred.Rows() != target.Rows() || pred.Cols() != target.Cols() {
		return 0, nil, fmt.Errorf("%w: pred %dx%d vs target %dx%d",
			ErrShape, pred.Rows(), pred.Cols(), target.Rows(), target.Cols())
	}
	grad, _ := sparse.NewDense(pred.Rows(), pred.Cols())
	p, t, g := pred.Data(), target.Data(), grad.Data()
	var total float64
	invB := 1.0 / float64(pred.Rows())
	for i := range p {
		d := p[i] - t[i]
		total += 0.5 * d * d
		g[i] = d * invB
	}
	return total * invB, grad, nil
}

// SoftmaxCrossEntropy fuses a softmax over the last layer with the
// cross-entropy loss against one-hot targets; the fused gradient is the
// numerically stable (softmax − target)/batch.
type SoftmaxCrossEntropy struct{}

// Name returns "softmax_xent".
func (SoftmaxCrossEntropy) Name() string { return "softmax_xent" }

// Loss computes mean cross-entropy after a row-wise softmax of pred.
func (SoftmaxCrossEntropy) Loss(pred, target *sparse.Dense) (float64, *sparse.Dense, error) {
	if pred.Rows() != target.Rows() || pred.Cols() != target.Cols() {
		return 0, nil, fmt.Errorf("%w: pred %dx%d vs target %dx%d",
			ErrShape, pred.Rows(), pred.Cols(), target.Rows(), target.Cols())
	}
	grad, _ := sparse.NewDense(pred.Rows(), pred.Cols())
	invB := 1.0 / float64(pred.Rows())
	var total float64
	for b := 0; b < pred.Rows(); b++ {
		pRow := pred.RowSlice(b)
		tRow := target.RowSlice(b)
		gRow := grad.RowSlice(b)
		maxV := math.Inf(-1)
		for _, v := range pRow {
			if v > maxV {
				maxV = v
			}
		}
		var z float64
		for c, v := range pRow {
			e := math.Exp(v - maxV)
			gRow[c] = e
			z += e
		}
		for c := range gRow {
			sm := gRow[c] / z
			if tRow[c] > 0 {
				total -= tRow[c] * math.Log(math.Max(sm, 1e-300))
			}
			gRow[c] = (sm - tRow[c]) * invB
		}
	}
	return total * invB, grad, nil
}

// OneHot encodes integer class labels as a batch of one-hot rows.
func OneHot(labels []int, classes int) (*sparse.Dense, error) {
	if classes < 1 {
		return nil, errors.New("nn: classes must be positive")
	}
	out, err := sparse.NewDense(len(labels), classes)
	if err != nil {
		return nil, err
	}
	for i, l := range labels {
		if l < 0 || l >= classes {
			return nil, fmt.Errorf("nn: label %d out of range [0,%d)", l, classes)
		}
		out.Set(i, l, 1)
	}
	return out, nil
}

// Argmax returns the index of the largest value in each row of the batch.
func Argmax(batch *sparse.Dense) []int {
	out := make([]int, batch.Rows())
	for b := 0; b < batch.Rows(); b++ {
		row := batch.RowSlice(b)
		best, bestIdx := math.Inf(-1), 0
		for c, v := range row {
			if v > best {
				best, bestIdx = v, c
			}
		}
		out[b] = bestIdx
	}
	return out
}

// Accuracy returns the fraction of rows whose argmax matches the label.
func Accuracy(pred *sparse.Dense, labels []int) (float64, error) {
	if pred.Rows() != len(labels) {
		return 0, fmt.Errorf("%w: %d predictions vs %d labels", ErrShape, pred.Rows(), len(labels))
	}
	correct := 0
	for i, p := range Argmax(pred) {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels)), nil
}
