package nn

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/radix-net/radixnet/internal/sparse"
)

// Dropout is inverted dropout (Srivastava et al., the paper's reference
// [5]): during training each activation is zeroed independently with
// probability p and survivors are scaled by 1/(1−p), so evaluation needs no
// rescaling. Dropout is the classic *stochastic* sparsification the paper
// contrasts with RadiX-Nets' *structural* sparsity; having it in the
// substrate lets the benchmarks compare the two regimes.
type Dropout struct {
	p        float64
	rng      *rand.Rand
	training bool
	mask     []float64
}

// NewDropout returns a dropout layer with drop probability p ∈ [0, 1) in
// training mode.
func NewDropout(p float64, rng *rand.Rand) (*Dropout, error) {
	if p < 0 || p >= 1 {
		return nil, fmt.Errorf("nn: dropout probability %g out of [0,1)", p)
	}
	if rng == nil {
		return nil, errors.New("nn: dropout needs a random source")
	}
	return &Dropout{p: p, rng: rng, training: true}, nil
}

// SetTraining toggles between training (masking) and evaluation (identity).
func (d *Dropout) SetTraining(training bool) { d.training = training }

// Training reports whether the layer currently masks activations.
func (d *Dropout) Training() bool { return d.training }

// InSize returns 0: dropout accepts any width.
func (d *Dropout) InSize() int { return 0 }

// OutSize returns 0: dropout preserves width.
func (d *Dropout) OutSize() int { return 0 }

// Forward applies the mask in training mode and is the identity otherwise.
func (d *Dropout) Forward(x *sparse.Dense) (*sparse.Dense, error) {
	if !d.training || d.p == 0 {
		d.mask = nil
		return x, nil
	}
	out := x.Clone()
	data := out.Data()
	d.mask = make([]float64, len(data))
	scale := 1 / (1 - d.p)
	for i := range data {
		if d.rng.Float64() < d.p {
			d.mask[i] = 0
			data[i] = 0
		} else {
			d.mask[i] = scale
			data[i] *= scale
		}
	}
	return out, nil
}

// Backward routes gradients through the surviving units only.
func (d *Dropout) Backward(dOut *sparse.Dense) (*sparse.Dense, error) {
	if d.mask == nil {
		return dOut, nil
	}
	if len(d.mask) != len(dOut.Data()) {
		return nil, ErrShape
	}
	dX := dOut.Clone()
	data := dX.Data()
	for i := range data {
		data[i] *= d.mask[i]
	}
	return dX, nil
}

// Params returns nil: dropout is parameter-free.
func (d *Dropout) Params() []Param { return nil }

// CloneShared returns an independent dropout layer with its own stream,
// seeded from the parent's stream so replicas decorrelate.
func (d *Dropout) CloneShared() Layer {
	return &Dropout{p: d.p, rng: rand.New(rand.NewSource(d.rng.Int63())), training: d.training}
}

// SetTrainingMode walks a network and flips every Dropout layer, returning
// how many layers were toggled.
func SetTrainingMode(n *Network, training bool) int {
	count := 0
	for _, l := range n.Layers() {
		if d, ok := l.(*Dropout); ok {
			d.SetTraining(training)
			count++
		}
	}
	return count
}
