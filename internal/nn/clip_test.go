package nn

import (
	"math"
	"testing"
)

func TestGradNorm(t *testing.T) {
	params := []Param{
		{W: []float64{0, 0}, G: []float64{3, 0}},
		{W: []float64{0}, G: []float64{4}},
	}
	if n := GradNorm(params); n != 5 {
		t.Fatalf("norm = %g, want 5", n)
	}
	if n := GradNorm(nil); n != 0 {
		t.Fatalf("empty norm = %g", n)
	}
}

func TestClipGradientsRescales(t *testing.T) {
	params := []Param{{W: []float64{0, 0}, G: []float64{3, 4}}}
	pre, err := ClipGradients(params, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pre != 5 {
		t.Fatalf("pre-clip norm = %g", pre)
	}
	if post := GradNorm(params); math.Abs(post-1) > 1e-12 {
		t.Fatalf("post-clip norm = %g, want 1", post)
	}
	// Direction preserved.
	if math.Abs(params[0].G[0]/params[0].G[1]-0.75) > 1e-12 {
		t.Fatal("clipping changed gradient direction")
	}
}

func TestClipGradientsNoOpWithinBound(t *testing.T) {
	params := []Param{{W: []float64{0}, G: []float64{0.5}}}
	if _, err := ClipGradients(params, 1); err != nil {
		t.Fatal(err)
	}
	if params[0].G[0] != 0.5 {
		t.Fatal("in-bound gradient was modified")
	}
}

func TestClipGradientsValidation(t *testing.T) {
	if _, err := ClipGradients(nil, 0); err == nil {
		t.Fatal("zero max norm accepted")
	}
	if _, err := ClipGradients(nil, -1); err == nil {
		t.Fatal("negative max norm accepted")
	}
}

func TestClipZeroGradientsStable(t *testing.T) {
	params := []Param{{W: []float64{1}, G: []float64{0}}}
	if _, err := ClipGradients(params, 1); err != nil {
		t.Fatal(err)
	}
	if params[0].G[0] != 0 {
		t.Fatal("zero gradient perturbed")
	}
}
