package nn

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"github.com/radix-net/radixnet/internal/sparse"
)

// Trainer runs minibatch gradient descent over a fixed dataset, optionally
// sharding each minibatch across worker goroutines that hold weight-sharing
// network replicas (synchronous data parallelism with an exact gradient
// all-reduce, so results are independent of the worker count up to
// floating-point summation order).
type Trainer struct {
	Net       *Network
	Opt       Optimizer
	Loss      Loss
	BatchSize int
	// Workers is the number of data-parallel shards per minibatch;
	// values < 1 select runtime.GOMAXPROCS(0).
	Workers int
	// Seed drives minibatch shuffling; a fixed seed makes runs reproducible.
	Seed int64

	replicas []*Network
}

// EpochStats reports one epoch of training.
type EpochStats struct {
	Epoch    int
	MeanLoss float64
}

// History accumulates per-epoch statistics.
type History struct {
	Epochs []EpochStats
}

// Last returns the final epoch's stats.
func (h History) Last() EpochStats {
	if len(h.Epochs) == 0 {
		return EpochStats{}
	}
	return h.Epochs[len(h.Epochs)-1]
}

func (t *Trainer) workers() int {
	if t.Workers >= 1 {
		return t.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (t *Trainer) validate() error {
	if t.Net == nil || t.Opt == nil || t.Loss == nil {
		return errors.New("nn: trainer needs Net, Opt and Loss")
	}
	if t.BatchSize < 1 {
		return errors.New("nn: trainer batch size must be positive")
	}
	return nil
}

// TrainBatch performs one optimizer step on the given minibatch and returns
// its mean loss.
func (t *Trainer) TrainBatch(x, target *sparse.Dense) (float64, error) {
	if err := t.validate(); err != nil {
		return 0, err
	}
	if x.Rows() != target.Rows() {
		return 0, fmt.Errorf("%w: %d inputs vs %d targets", ErrShape, x.Rows(), target.Rows())
	}
	w := t.workers()
	if w > x.Rows() {
		w = x.Rows()
	}
	t.Net.ZeroGrads()
	var loss float64
	if w <= 1 {
		out, err := t.Net.Forward(x)
		if err != nil {
			return 0, err
		}
		var grad *sparse.Dense
		loss, grad, err = t.Loss.Loss(out, target)
		if err != nil {
			return 0, err
		}
		if err := t.Net.Backward(grad); err != nil {
			return 0, err
		}
	} else {
		var err error
		loss, err = t.shardedStep(x, target, w)
		if err != nil {
			return 0, err
		}
	}
	if err := t.Opt.Step(t.Net.Params()); err != nil {
		return 0, err
	}
	return loss, nil
}

// shardedStep splits the minibatch across w weight-sharing replicas,
// computes per-shard gradients concurrently, and reduces them into the main
// network weighted by shard size so the result equals the single-worker
// gradient.
func (t *Trainer) shardedStep(x, target *sparse.Dense, w int) (float64, error) {
	if len(t.replicas) < w {
		for len(t.replicas) < w {
			t.replicas = append(t.replicas, t.Net.CloneShared())
		}
	}
	rows := x.Rows()
	losses := make([]float64, w)
	weights := make([]float64, w)
	errs := make([]error, w)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		lo := k * rows / w
		hi := (k + 1) * rows / w
		go func(k, lo, hi int) {
			defer wg.Done()
			rep := t.replicas[k]
			rep.ZeroGrads()
			xs, err := x.RowsView(lo, hi)
			if err != nil {
				errs[k] = err
				return
			}
			ts, err := target.RowsView(lo, hi)
			if err != nil {
				errs[k] = err
				return
			}
			out, err := rep.Forward(xs)
			if err != nil {
				errs[k] = err
				return
			}
			loss, grad, err := t.Loss.Loss(out, ts)
			if err != nil {
				errs[k] = err
				return
			}
			if err := rep.Backward(grad); err != nil {
				errs[k] = err
				return
			}
			losses[k] = loss
			weights[k] = float64(hi-lo) / float64(rows)
		}(k, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	mainParams := t.Net.Params()
	var loss float64
	for k := 0; k < w; k++ {
		loss += losses[k] * weights[k]
		repParams := t.replicas[k].Params()
		for i, p := range mainParams {
			rg := repParams[i].G
			scale := weights[k]
			for j := range p.G {
				p.G[j] += scale * rg[j]
			}
		}
	}
	return loss, nil
}

// TrainEpoch shuffles the dataset, walks it in minibatches and returns the
// mean loss across batches. rng state advances across calls so epochs see
// different shuffles.
func (t *Trainer) TrainEpoch(x, target *sparse.Dense, rng *rand.Rand) (float64, error) {
	if err := t.validate(); err != nil {
		return 0, err
	}
	if x.Rows() != target.Rows() {
		return 0, fmt.Errorf("%w: %d inputs vs %d targets", ErrShape, x.Rows(), target.Rows())
	}
	n := x.Rows()
	perm := rng.Perm(n)
	var total float64
	batches := 0
	bx, _ := sparse.NewDense(min(t.BatchSize, n), x.Cols())
	bt, _ := sparse.NewDense(min(t.BatchSize, n), target.Cols())
	for start := 0; start < n; start += t.BatchSize {
		end := start + t.BatchSize
		if end > n {
			end = n
		}
		size := end - start
		xb, tb := bx, bt
		if size != bx.Rows() {
			xb, _ = sparse.NewDense(size, x.Cols())
			tb, _ = sparse.NewDense(size, target.Cols())
		}
		for i := 0; i < size; i++ {
			copy(xb.RowSlice(i), x.RowSlice(perm[start+i]))
			copy(tb.RowSlice(i), target.RowSlice(perm[start+i]))
		}
		loss, err := t.TrainBatch(xb, tb)
		if err != nil {
			return 0, err
		}
		total += loss
		batches++
	}
	if batches == 0 {
		return 0, errors.New("nn: empty dataset")
	}
	return total / float64(batches), nil
}

// Fit trains for the given number of epochs and returns per-epoch stats.
func (t *Trainer) Fit(x, target *sparse.Dense, epochs int) (History, error) {
	return t.FitScheduled(x, target, epochs, nil)
}

// FitScheduled is Fit with an optional per-epoch learning-rate schedule
// applied to the optimizer before each epoch. A nil schedule leaves the
// optimizer's rate untouched.
func (t *Trainer) FitScheduled(x, target *sparse.Dense, epochs int, sched Schedule) (History, error) {
	var h History
	rng := rand.New(rand.NewSource(t.Seed))
	for e := 0; e < epochs; e++ {
		if sched != nil {
			if err := ApplySchedule(t.Opt, sched, e); err != nil {
				return h, err
			}
		}
		loss, err := t.TrainEpoch(x, target, rng)
		if err != nil {
			return h, err
		}
		h.Epochs = append(h.Epochs, EpochStats{Epoch: e + 1, MeanLoss: loss})
	}
	return h, nil
}

// Evaluate runs a forward pass and returns classification accuracy against
// integer labels.
func (t *Trainer) Evaluate(x *sparse.Dense, labels []int) (float64, error) {
	out, err := t.Net.Forward(x)
	if err != nil {
		return 0, err
	}
	return Accuracy(out, labels)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
