package nn

import (
	"math"
	"strings"
	"testing"

	"github.com/radix-net/radixnet/internal/sparse"
)

func confusionFixture(t *testing.T) *ConfusionMatrix {
	t.Helper()
	// Predictions: argmax per row. 3 classes, 6 samples.
	pred, _ := sparse.DenseFromSlice(6, 3, []float64{
		0.9, 0.1, 0.0, // → 0, true 0 ✓
		0.8, 0.2, 0.0, // → 0, true 0 ✓
		0.1, 0.7, 0.2, // → 1, true 1 ✓
		0.6, 0.3, 0.1, // → 0, true 1 ✗
		0.0, 0.1, 0.9, // → 2, true 2 ✓
		0.1, 0.8, 0.1, // → 1, true 2 ✗
	})
	labels := []int{0, 0, 1, 1, 2, 2}
	cm, err := Confusion(pred, labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

func TestConfusionCounts(t *testing.T) {
	cm := confusionFixture(t)
	want := [][]int{
		{2, 0, 0},
		{1, 1, 0},
		{0, 1, 1},
	}
	for i := range want {
		for j := range want[i] {
			if cm.Counts[i][j] != want[i][j] {
				t.Fatalf("counts = %v, want %v", cm.Counts, want)
			}
		}
	}
}

func TestConfusionAccuracyAgreesWithAccuracy(t *testing.T) {
	cm := confusionFixture(t)
	if got := cm.Accuracy(); math.Abs(got-4.0/6) > 1e-12 {
		t.Fatalf("accuracy = %g, want 2/3", got)
	}
}

func TestPerClassRecallPrecision(t *testing.T) {
	cm := confusionFixture(t)
	rec := cm.PerClassRecall()
	wantRec := []float64{1, 0.5, 0.5}
	for i, w := range wantRec {
		if math.Abs(rec[i]-w) > 1e-12 {
			t.Fatalf("recall = %v, want %v", rec, wantRec)
		}
	}
	prec := cm.PerClassPrecision()
	// Class 0 predicted 3× (2 correct), class 1 predicted 2× (1 correct),
	// class 2 predicted 1× (1 correct).
	wantPrec := []float64{2.0 / 3, 0.5, 1}
	for i, w := range wantPrec {
		if math.Abs(prec[i]-w) > 1e-12 {
			t.Fatalf("precision = %v, want %v", prec, wantPrec)
		}
	}
}

func TestMacroF1Bounds(t *testing.T) {
	cm := confusionFixture(t)
	f1 := cm.MacroF1()
	if f1 <= 0 || f1 >= 1 {
		t.Fatalf("macro F1 = %g out of (0,1) for an imperfect classifier", f1)
	}
	// A perfect classifier scores exactly 1.
	pred, _ := sparse.DenseFromSlice(2, 2, []float64{1, 0, 0, 1})
	perfect, err := Confusion(pred, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if perfect.MacroF1() != 1 {
		t.Fatalf("perfect F1 = %g", perfect.MacroF1())
	}
}

func TestConfusionValidation(t *testing.T) {
	pred, _ := sparse.NewDense(2, 3)
	if _, err := Confusion(pred, []int{0}, 3); err == nil {
		t.Fatal("label-count mismatch accepted")
	}
	if _, err := Confusion(pred, []int{0, 1}, 4); err == nil {
		t.Fatal("class-count mismatch accepted")
	}
	if _, err := Confusion(pred, []int{0, 5}, 3); err == nil {
		t.Fatal("out-of-range label accepted")
	}
}

func TestConfusionString(t *testing.T) {
	cm := confusionFixture(t)
	s := cm.String()
	if !strings.Contains(s, "acc 0.667") {
		t.Fatalf("rendering missing accuracy: %q", s)
	}
}
