package nn

import (
	"fmt"
	"strings"

	"github.com/radix-net/radixnet/internal/sparse"
)

// ConfusionMatrix counts prediction outcomes per class: entry (i, j) is the
// number of samples with true label i predicted as j.
type ConfusionMatrix struct {
	Classes int
	Counts  [][]int
}

// Confusion builds the confusion matrix of a prediction batch against
// integer labels.
func Confusion(pred *sparse.Dense, labels []int, classes int) (*ConfusionMatrix, error) {
	if pred.Rows() != len(labels) {
		return nil, fmt.Errorf("%w: %d predictions vs %d labels", ErrShape, pred.Rows(), len(labels))
	}
	if classes < 1 || pred.Cols() != classes {
		return nil, fmt.Errorf("%w: %d output columns for %d classes", ErrShape, pred.Cols(), classes)
	}
	cm := &ConfusionMatrix{Classes: classes, Counts: make([][]int, classes)}
	for i := range cm.Counts {
		cm.Counts[i] = make([]int, classes)
	}
	for i, p := range Argmax(pred) {
		l := labels[i]
		if l < 0 || l >= classes {
			return nil, fmt.Errorf("nn: label %d out of range [0,%d)", l, classes)
		}
		cm.Counts[l][p]++
	}
	return cm, nil
}

// Accuracy returns the trace fraction: correct predictions over total.
func (cm *ConfusionMatrix) Accuracy() float64 {
	correct, total := 0, 0
	for i, row := range cm.Counts {
		for j, n := range row {
			total += n
			if i == j {
				correct += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// PerClassRecall returns, per true class, the fraction of its samples
// predicted correctly (NaN-free: classes with no samples report 0).
func (cm *ConfusionMatrix) PerClassRecall() []float64 {
	out := make([]float64, cm.Classes)
	for i, row := range cm.Counts {
		total := 0
		for _, n := range row {
			total += n
		}
		if total > 0 {
			out[i] = float64(row[i]) / float64(total)
		}
	}
	return out
}

// PerClassPrecision returns, per predicted class, the fraction of its
// predictions that were correct (classes never predicted report 0).
func (cm *ConfusionMatrix) PerClassPrecision() []float64 {
	out := make([]float64, cm.Classes)
	for j := 0; j < cm.Classes; j++ {
		total := 0
		for i := 0; i < cm.Classes; i++ {
			total += cm.Counts[i][j]
		}
		if total > 0 {
			out[j] = float64(cm.Counts[j][j]) / float64(total)
		}
	}
	return out
}

// MacroF1 returns the unweighted mean of per-class F1 scores, the balanced
// summary metric for multiclass tasks.
func (cm *ConfusionMatrix) MacroF1() float64 {
	rec := cm.PerClassRecall()
	prec := cm.PerClassPrecision()
	var sum float64
	for i := 0; i < cm.Classes; i++ {
		if p, r := prec[i], rec[i]; p+r > 0 {
			sum += 2 * p * r / (p + r)
		}
	}
	return sum / float64(cm.Classes)
}

// String renders the matrix compactly, rows = true labels.
func (cm *ConfusionMatrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "confusion (%d classes, acc %.3f):\n", cm.Classes, cm.Accuracy())
	for i, row := range cm.Counts {
		fmt.Fprintf(&b, "  %2d |", i)
		for _, n := range row {
			fmt.Fprintf(&b, " %4d", n)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
