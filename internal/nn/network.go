package nn

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/radix-net/radixnet/internal/sparse"
	"github.com/radix-net/radixnet/internal/topology"
)

// Network is an ordered stack of layers trained end-to-end.
type Network struct {
	layers []Layer
}

// NewNetwork validates that consecutive layers conform (activation layers
// report size 0 and match anything) and returns the stack.
func NewNetwork(layers ...Layer) (*Network, error) {
	if len(layers) == 0 {
		return nil, errors.New("nn: a network needs at least one layer")
	}
	prevOut := 0
	for i, l := range layers {
		in := l.InSize()
		if prevOut != 0 && in != 0 && prevOut != in {
			return nil, fmt.Errorf("%w: layer %d expects %d inputs but receives %d", ErrShape, i, in, prevOut)
		}
		if out := l.OutSize(); out != 0 {
			prevOut = out
		}
	}
	return &Network{layers: append([]Layer(nil), layers...)}, nil
}

// Layers returns the layer stack as a shared view.
func (n *Network) Layers() []Layer { return n.layers }

// Forward runs the batch through every layer.
func (n *Network) Forward(x *sparse.Dense) (*sparse.Dense, error) {
	var err error
	for i, l := range n.layers {
		if x, err = l.Forward(x); err != nil {
			return nil, fmt.Errorf("nn: layer %d forward: %w", i, err)
		}
	}
	return x, nil
}

// Backward propagates the loss gradient through every layer in reverse,
// accumulating parameter gradients.
func (n *Network) Backward(grad *sparse.Dense) error {
	var err error
	for i := len(n.layers) - 1; i >= 0; i-- {
		if grad, err = n.layers[i].Backward(grad); err != nil {
			return fmt.Errorf("nn: layer %d backward: %w", i, err)
		}
	}
	return nil
}

// Params collects every trainable parameter across layers.
func (n *Network) Params() []Param {
	var params []Param
	for _, l := range n.layers {
		params = append(params, l.Params()...)
	}
	return params
}

// NumParams returns the total number of trainable scalars — the storage
// cost sparse-vs-dense comparisons report.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.W)
	}
	return total
}

// ZeroGrads clears every gradient accumulator.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		for i := range p.G {
			p.G[i] = 0
		}
	}
}

// CloneShared returns a replica whose layers share weight storage with n
// but own fresh gradient buffers and activation caches — safe for
// concurrent forward/backward as long as weights are only written by the
// coordinating trainer between passes.
func (n *Network) CloneShared() *Network {
	layers := make([]Layer, len(n.layers))
	for i, l := range n.layers {
		layers[i] = l.CloneShared()
	}
	return &Network{layers: layers}
}

// FromTopology builds a trainable network from an FNNT: one SparseLinear
// per adjacency submatrix with the given hidden activation between layers
// (the final layer stays linear so it can feed either a regression loss or
// a fused softmax). This is the bridge from RadiX-Net topologies to
// trainable sparse DNNs.
func FromTopology(g *topology.FNNT, hidden func() *Activation, rng *rand.Rand) (*Network, error) {
	var layers []Layer
	for i := 0; i < g.NumSubs(); i++ {
		layers = append(layers, NewSparseLinear(g.Sub(i), rng))
		if i+1 < g.NumSubs() && hidden != nil {
			layers = append(layers, hidden())
		}
	}
	return NewNetwork(layers...)
}

// DenseNet builds a fully-connected network on the given layer sizes with
// the given hidden activation — the dense baseline of the paper's
// comparisons.
func DenseNet(sizes []int, hidden func() *Activation, rng *rand.Rand) (*Network, error) {
	if len(sizes) < 2 {
		return nil, errors.New("nn: a network needs at least two layer sizes")
	}
	var layers []Layer
	for i := 0; i+1 < len(sizes); i++ {
		dl, err := NewDenseLinear(sizes[i], sizes[i+1], rng)
		if err != nil {
			return nil, err
		}
		layers = append(layers, dl)
		if i+2 < len(sizes) && hidden != nil {
			layers = append(layers, hidden())
		}
	}
	return NewNetwork(layers...)
}
