package nn

import (
	"errors"
	"math"
)

// GradNorm returns the global L2 norm of all accumulated gradients — the
// quantity gradient clipping rescales and a useful training diagnostic
// (exploding gradients in deep sparse stacks show up here first).
func GradNorm(params []Param) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.G {
			sq += g * g
		}
	}
	return math.Sqrt(sq)
}

// ClipGradients rescales all gradients in place so their global L2 norm is
// at most maxNorm, returning the pre-clip norm. It is a no-op when the norm
// is already within bounds. maxNorm must be positive.
func ClipGradients(params []Param, maxNorm float64) (float64, error) {
	if maxNorm <= 0 {
		return 0, errors.New("nn: clip norm must be positive")
	}
	norm := GradNorm(params)
	if norm <= maxNorm || norm == 0 {
		return norm, nil
	}
	scale := maxNorm / norm
	for _, p := range params {
		for i := range p.G {
			p.G[i] *= scale
		}
	}
	return norm, nil
}
