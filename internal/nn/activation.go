package nn

import (
	"errors"
	"math"

	"github.com/radix-net/radixnet/internal/sparse"
)

// Activation is an elementwise nonlinearity with a derivative expressed in
// terms of the cached forward output (which suffices for every activation in
// this package).
type Activation struct {
	name  string
	fn    func(float64) float64
	deriv func(y float64) float64 // derivative as a function of the OUTPUT y
	lastY *sparse.Dense
}

// ReLU returns the rectified linear activation max(0, x).
func ReLU() *Activation {
	return &Activation{
		name: "relu",
		fn: func(x float64) float64 {
			if x > 0 {
				return x
			}
			return 0
		},
		deriv: func(y float64) float64 {
			if y > 0 {
				return 1
			}
			return 0
		},
	}
}

// LeakyReLU returns max(αx, x) for a small negative slope α.
func LeakyReLU(alpha float64) *Activation {
	return &Activation{
		name: "leaky_relu",
		fn: func(x float64) float64 {
			if x > 0 {
				return x
			}
			return alpha * x
		},
		deriv: func(y float64) float64 {
			if y > 0 {
				return 1
			}
			return alpha
		},
	}
}

// Sigmoid returns the logistic activation 1/(1+e^{−x}), the paper's
// "sigmoidal" function from Cybenko's theorem (§IV.A).
func Sigmoid() *Activation {
	return &Activation{
		name:  "sigmoid",
		fn:    func(x float64) float64 { return 1 / (1 + math.Exp(-x)) },
		deriv: func(y float64) float64 { return y * (1 - y) },
	}
}

// Tanh returns the hyperbolic tangent activation.
func Tanh() *Activation {
	return &Activation{
		name:  "tanh",
		fn:    math.Tanh,
		deriv: func(y float64) float64 { return 1 - y*y },
	}
}

// Name returns the activation's identifier.
func (a *Activation) Name() string { return a.name }

// InSize returns 0: activations accept any width.
func (a *Activation) InSize() int { return 0 }

// OutSize returns 0: activations preserve width.
func (a *Activation) OutSize() int { return 0 }

// Forward applies the nonlinearity elementwise.
func (a *Activation) Forward(x *sparse.Dense) (*sparse.Dense, error) {
	y := x.Clone()
	y.Apply(a.fn)
	a.lastY = y
	return y, nil
}

// Backward multiplies the incoming gradient by the activation derivative.
func (a *Activation) Backward(dOut *sparse.Dense) (*sparse.Dense, error) {
	if a.lastY == nil {
		return nil, errors.New("nn: Backward before Forward")
	}
	dX := dOut.Clone()
	yData := a.lastY.Data()
	dData := dX.Data()
	if len(yData) != len(dData) {
		return nil, ErrShape
	}
	for i := range dData {
		dData[i] *= a.deriv(yData[i])
	}
	return dX, nil
}

// Params returns nil: activations are parameter-free.
func (a *Activation) Params() []Param { return nil }

// CloneShared returns an independent activation of the same kind.
func (a *Activation) CloneShared() Layer {
	return &Activation{name: a.name, fn: a.fn, deriv: a.deriv}
}
