package nn

import (
	"errors"
	"math"
)

// Optimizer updates parameters in place from their accumulated gradients.
// Step is called once per minibatch after gradients have been accumulated;
// implementations must tolerate the parameter list being identical across
// calls (they key internal state by parameter index).
type Optimizer interface {
	Step(params []Param) error
	Name() string
}

// SGD is stochastic gradient descent with optional classical momentum and
// L2 weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	velocity    [][]float64
}

// Name returns "sgd".
func (o *SGD) Name() string { return "sgd" }

// Step applies one SGD update.
func (o *SGD) Step(params []Param) error {
	if o.LR <= 0 {
		return errors.New("nn: SGD learning rate must be positive")
	}
	if o.Momentum != 0 && o.velocity == nil {
		o.velocity = make([][]float64, len(params))
		for i, p := range params {
			o.velocity[i] = make([]float64, len(p.W))
		}
	}
	if o.velocity != nil && len(o.velocity) != len(params) {
		return errors.New("nn: SGD reused across different parameter lists")
	}
	for i, p := range params {
		if len(p.W) != len(p.G) {
			return ErrShape
		}
		for j := range p.W {
			g := p.G[j] + o.WeightDecay*p.W[j]
			if o.Momentum != 0 {
				v := o.Momentum*o.velocity[i][j] - o.LR*g
				o.velocity[i][j] = v
				p.W[j] += v
			} else {
				p.W[j] -= o.LR * g
			}
		}
	}
	return nil
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR      float64
	Beta1   float64 // default 0.9 when zero
	Beta2   float64 // default 0.999 when zero
	Epsilon float64 // default 1e-8 when zero
	t       int
	m, v    [][]float64
}

// Name returns "adam".
func (o *Adam) Name() string { return "adam" }

// Step applies one Adam update.
func (o *Adam) Step(params []Param) error {
	if o.LR <= 0 {
		return errors.New("nn: Adam learning rate must be positive")
	}
	b1, b2, eps := o.Beta1, o.Beta2, o.Epsilon
	if b1 == 0 {
		b1 = 0.9
	}
	if b2 == 0 {
		b2 = 0.999
	}
	if eps == 0 {
		eps = 1e-8
	}
	if o.m == nil {
		o.m = make([][]float64, len(params))
		o.v = make([][]float64, len(params))
		for i, p := range params {
			o.m[i] = make([]float64, len(p.W))
			o.v[i] = make([]float64, len(p.W))
		}
	}
	if len(o.m) != len(params) {
		return errors.New("nn: Adam reused across different parameter lists")
	}
	o.t++
	c1 := 1 - math.Pow(b1, float64(o.t))
	c2 := 1 - math.Pow(b2, float64(o.t))
	for i, p := range params {
		if len(p.W) != len(p.G) {
			return ErrShape
		}
		m, v := o.m[i], o.v[i]
		for j := range p.W {
			g := p.G[j]
			m[j] = b1*m[j] + (1-b1)*g
			v[j] = b2*v[j] + (1-b2)*g*g
			p.W[j] -= o.LR * (m[j] / c1) / (math.Sqrt(v[j]/c2) + eps)
		}
	}
	return nil
}
