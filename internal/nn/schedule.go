package nn

import (
	"errors"
	"fmt"
	"math"
)

// Schedule maps an epoch index (0-based) to a learning rate. Schedules
// compose with any optimizer through ApplySchedule.
type Schedule interface {
	LR(epoch int) float64
	Name() string
}

// ConstantLR returns the same rate every epoch.
type ConstantLR struct{ Rate float64 }

// Name returns "constant".
func (c ConstantLR) Name() string { return "constant" }

// LR returns the constant rate.
func (c ConstantLR) LR(int) float64 { return c.Rate }

// StepLR multiplies the base rate by Gamma every Every epochs — the classic
// staircase decay.
type StepLR struct {
	Base  float64
	Gamma float64
	Every int
}

// Name returns "step".
func (s StepLR) Name() string { return "step" }

// LR returns Base·Gamma^⌊epoch/Every⌋.
func (s StepLR) LR(epoch int) float64 {
	if s.Every < 1 {
		return s.Base
	}
	return s.Base * math.Pow(s.Gamma, float64(epoch/s.Every))
}

// CosineLR anneals from Base to Floor over Span epochs following a half
// cosine, then stays at Floor.
type CosineLR struct {
	Base  float64
	Floor float64
	Span  int
}

// Name returns "cosine".
func (c CosineLR) Name() string { return "cosine" }

// LR returns the annealed rate at the given epoch.
func (c CosineLR) LR(epoch int) float64 {
	if c.Span < 1 || epoch >= c.Span {
		return c.Floor
	}
	t := float64(epoch) / float64(c.Span)
	return c.Floor + (c.Base-c.Floor)*0.5*(1+math.Cos(math.Pi*t))
}

// WarmupLR ramps linearly from near zero to the inner schedule's rate over
// Warm epochs, then defers to it.
type WarmupLR struct {
	Warm  int
	Inner Schedule
}

// Name returns "warmup+<inner>".
func (w WarmupLR) Name() string { return "warmup+" + w.Inner.Name() }

// LR returns the warmed-up rate.
func (w WarmupLR) LR(epoch int) float64 {
	base := w.Inner.LR(epoch)
	if w.Warm < 1 || epoch >= w.Warm {
		return base
	}
	return base * float64(epoch+1) / float64(w.Warm+1)
}

// ApplySchedule sets the optimizer's learning rate for the given epoch.
// It supports the optimizers of this package; unknown optimizers error so
// a silent no-op cannot corrupt an experiment.
func ApplySchedule(opt Optimizer, sched Schedule, epoch int) error {
	if opt == nil || sched == nil {
		return errors.New("nn: ApplySchedule needs an optimizer and a schedule")
	}
	lr := sched.LR(epoch)
	if lr <= 0 {
		return fmt.Errorf("nn: schedule %s produced non-positive rate %g at epoch %d", sched.Name(), lr, epoch)
	}
	switch o := opt.(type) {
	case *SGD:
		o.LR = lr
	case *Adam:
		o.LR = lr
	default:
		return fmt.Errorf("nn: cannot schedule optimizer %q", opt.Name())
	}
	return nil
}
