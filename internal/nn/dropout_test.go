package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/radix-net/radixnet/internal/sparse"
)

func TestNewDropoutValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewDropout(-0.1, rng); err == nil {
		t.Fatal("negative p accepted")
	}
	if _, err := NewDropout(1, rng); err == nil {
		t.Fatal("p = 1 accepted")
	}
	if _, err := NewDropout(0.5, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d, err := NewDropout(0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	d.SetTraining(false)
	x := randBatch(rng, 4, 6)
	out, err := d.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	diff, _ := x.MaxAbsDiff(out)
	if diff != 0 {
		t.Fatal("eval-mode dropout altered activations")
	}
	g := randBatch(rng, 4, 6)
	back, err := d.Backward(g)
	if err != nil {
		t.Fatal(err)
	}
	diff, _ = g.MaxAbsDiff(back)
	if diff != 0 {
		t.Fatal("eval-mode dropout altered gradients")
	}
}

func TestDropoutMaskStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := 0.3
	d, err := NewDropout(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := sparse.NewDense(100, 100)
	x.Fill(1)
	out, err := d.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	zeros, scaled := 0, 0
	scale := 1 / (1 - p)
	for _, v := range out.Data() {
		switch {
		case v == 0:
			zeros++
		case math.Abs(v-scale) < 1e-12:
			scaled++
		default:
			t.Fatalf("unexpected activation %g", v)
		}
	}
	frac := float64(zeros) / 10000
	if frac < p-0.05 || frac > p+0.05 {
		t.Fatalf("drop fraction %g far from p=%g", frac, p)
	}
	// Inverted dropout preserves expected activation: mean ≈ 1.
	mean := float64(scaled) * scale / 10000
	if mean < 0.9 || mean > 1.1 {
		t.Fatalf("expected activation %g, want ≈ 1", mean)
	}
}

func TestDropoutBackwardUsesSameMask(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d, _ := NewDropout(0.5, rng)
	x, _ := sparse.NewDense(2, 8)
	x.Fill(1)
	out, _ := d.Forward(x)
	g, _ := sparse.NewDense(2, 8)
	g.Fill(1)
	back, err := d.Backward(g)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data() {
		// Gradient passes exactly where the activation survived, with the
		// same scale factor.
		if (v == 0) != (back.Data()[i] == 0) {
			t.Fatal("backward mask differs from forward mask")
		}
	}
}

func TestDropoutInNetworkGradcheck(t *testing.T) {
	// With dropout forced to eval mode the network must remain exactly
	// differentiable end to end.
	rng := rand.New(rand.NewSource(5))
	dl, _ := NewDenseLinear(3, 4, rng)
	dp, _ := NewDropout(0.4, rng)
	dl2, _ := NewDenseLinear(4, 2, rng)
	net, err := NewNetwork(dl, Tanh(), dp, dl2)
	if err != nil {
		t.Fatal(err)
	}
	if n := SetTrainingMode(net, false); n != 1 {
		t.Fatalf("toggled %d dropout layers, want 1", n)
	}
	checkGrads(t, net, MSE{}, randBatch(rng, 4, 3), randBatch(rng, 4, 2), 1e-5)
}

func TestDropoutCloneSharedDecorrelates(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d, _ := NewDropout(0.5, rng)
	c := d.CloneShared().(*Dropout)
	if c.Training() != d.Training() {
		t.Fatal("clone lost training mode")
	}
	x, _ := sparse.NewDense(10, 10)
	x.Fill(1)
	a, _ := d.Forward(x)
	b, _ := c.Forward(x)
	diff, _ := a.MaxAbsDiff(b)
	if diff == 0 {
		t.Fatal("clone produced an identical mask; streams not decorrelated")
	}
}

func TestStepLRSchedule(t *testing.T) {
	s := StepLR{Base: 1, Gamma: 0.5, Every: 2}
	want := []float64{1, 1, 0.5, 0.5, 0.25}
	for e, w := range want {
		if got := s.LR(e); math.Abs(got-w) > 1e-12 {
			t.Fatalf("epoch %d: lr = %g, want %g", e, got, w)
		}
	}
	zero := StepLR{Base: 1, Gamma: 0.5, Every: 0}
	if zero.LR(5) != 1 {
		t.Fatal("Every=0 must hold the base rate")
	}
}

func TestCosineLRSchedule(t *testing.T) {
	c := CosineLR{Base: 1, Floor: 0.1, Span: 10}
	if got := c.LR(0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("epoch 0: %g", got)
	}
	if got := c.LR(10); got != 0.1 {
		t.Fatalf("past span: %g", got)
	}
	mid := c.LR(5)
	if mid <= 0.1 || mid >= 1 {
		t.Fatalf("mid-anneal rate %g out of (floor, base)", mid)
	}
	// Monotone non-increasing across the span.
	prev := c.LR(0)
	for e := 1; e <= 10; e++ {
		cur := c.LR(e)
		if cur > prev+1e-12 {
			t.Fatalf("cosine rate rose at epoch %d", e)
		}
		prev = cur
	}
}

func TestWarmupLRSchedule(t *testing.T) {
	w := WarmupLR{Warm: 4, Inner: ConstantLR{Rate: 1}}
	prev := 0.0
	for e := 0; e < 4; e++ {
		cur := w.LR(e)
		if cur <= prev || cur >= 1 {
			t.Fatalf("warmup not ramping: epoch %d rate %g", e, cur)
		}
		prev = cur
	}
	if w.LR(4) != 1 {
		t.Fatalf("post-warmup rate %g", w.LR(4))
	}
	if w.Name() != "warmup+constant" {
		t.Fatalf("name %q", w.Name())
	}
}

func TestApplySchedule(t *testing.T) {
	sgd := &SGD{LR: 0.5}
	if err := ApplySchedule(sgd, StepLR{Base: 1, Gamma: 0.1, Every: 1}, 2); err != nil {
		t.Fatal(err)
	}
	if math.Abs(sgd.LR-0.01) > 1e-12 {
		t.Fatalf("sgd lr = %g", sgd.LR)
	}
	adam := &Adam{LR: 0.5}
	if err := ApplySchedule(adam, ConstantLR{Rate: 0.2}, 0); err != nil {
		t.Fatal(err)
	}
	if adam.LR != 0.2 {
		t.Fatalf("adam lr = %g", adam.LR)
	}
	if err := ApplySchedule(nil, ConstantLR{Rate: 1}, 0); err == nil {
		t.Fatal("nil optimizer accepted")
	}
	if err := ApplySchedule(sgd, CosineLR{Base: 0, Floor: 0, Span: 1}, 5); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestFitScheduledDecaysRate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dl, _ := NewDenseLinear(2, 2, rng)
	net, _ := NewNetwork(dl)
	opt := &SGD{LR: 1}
	tr := &Trainer{Net: net, Opt: opt, Loss: MSE{}, BatchSize: 8, Workers: 1, Seed: 1}
	x := randBatch(rng, 8, 2)
	y := randBatch(rng, 8, 2)
	if _, err := tr.FitScheduled(x, y, 6, StepLR{Base: 0.1, Gamma: 0.5, Every: 2}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt.LR-0.025) > 1e-12 { // epoch 5 → 0.1·0.5² = 0.025
		t.Fatalf("final scheduled lr = %g, want 0.025", opt.LR)
	}
}
