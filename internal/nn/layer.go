// Package nn is a from-scratch deep-learning substrate sufficient to train
// and evaluate the sparse topologies this library generates: dense and
// sparse linear layers, activations, losses, optimizers and a data-parallel
// trainer. The paper defers training evaluation to Alford & Kepner [15];
// this package is the substitute stack that makes those comparisons
// executable offline (see DESIGN.md §5).
//
// Activations flow through *sparse.Dense batches (rows = samples). Sparse
// layers keep their weights in a value slice aligned with an immutable
// sparse.Pattern, so a RadiX-Net adjacency submatrix is used directly as a
// layer's connectivity without copying or masking.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/radix-net/radixnet/internal/parallel"
	"github.com/radix-net/radixnet/internal/sparse"
)

// ErrShape is returned when a batch does not conform to a layer.
var ErrShape = errors.New("nn: shape mismatch")

// Param is a view of one parameter tensor and its gradient accumulator.
// Optimizers update W in place using G; trainers zero G between steps.
type Param struct {
	W []float64
	G []float64
}

// Layer is one differentiable stage of a network. Forward consumes a batch
// and caches whatever it needs for the backward pass; Backward consumes the
// loss gradient w.r.t. its output, accumulates parameter gradients, and
// returns the gradient w.r.t. its input. Layers are stateful across a
// Forward/Backward pair and must not be shared between concurrent trainers;
// use CloneShared for data-parallel replicas that share weights but not
// activations or gradient buffers.
type Layer interface {
	Forward(x *sparse.Dense) (*sparse.Dense, error)
	Backward(dOut *sparse.Dense) (*sparse.Dense, error)
	Params() []Param
	CloneShared() Layer
	InSize() int
	OutSize() int
}

// DenseLinear is a fully-connected affine layer: out = x·W + b.
type DenseLinear struct {
	in, out int
	w       []float64 // in×out row-major
	b       []float64
	gw      []float64
	gb      []float64
	lastX   *sparse.Dense
}

// NewDenseLinear returns a dense layer with Glorot/Xavier-uniform weights
// drawn from rng and zero biases.
func NewDenseLinear(in, out int, rng *rand.Rand) (*DenseLinear, error) {
	if in < 1 || out < 1 {
		return nil, fmt.Errorf("%w: dense linear %dx%d", ErrShape, in, out)
	}
	l := &DenseLinear{
		in: in, out: out,
		w:  make([]float64, in*out),
		b:  make([]float64, out),
		gw: make([]float64, in*out),
		gb: make([]float64, out),
	}
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := range l.w {
		l.w[i] = (rng.Float64()*2 - 1) * limit
	}
	return l, nil
}

// InSize returns the input feature count.
func (l *DenseLinear) InSize() int { return l.in }

// OutSize returns the output feature count.
func (l *DenseLinear) OutSize() int { return l.out }

// NumParams returns the number of trainable scalars.
func (l *DenseLinear) NumParams() int { return len(l.w) + len(l.b) }

// Forward computes x·W + b.
func (l *DenseLinear) Forward(x *sparse.Dense) (*sparse.Dense, error) {
	if x.Cols() != l.in {
		return nil, fmt.Errorf("%w: batch has %d features, layer expects %d", ErrShape, x.Cols(), l.in)
	}
	l.lastX = x
	out, _ := sparse.NewDense(x.Rows(), l.out)
	parallel.BlocksGrain(x.Rows(), 4, func(lo, hi int) {
		for bIdx := lo; bIdx < hi; bIdx++ {
			xRow := x.RowSlice(bIdx)
			outRow := out.RowSlice(bIdx)
			copy(outRow, l.b)
			for r, xv := range xRow {
				if xv == 0 {
					continue
				}
				wRow := l.w[r*l.out : (r+1)*l.out]
				for c, wv := range wRow {
					outRow[c] += xv * wv
				}
			}
		}
	})
	return out, nil
}

// Backward accumulates dW = xᵀ·dOut and db = Σ dOut, and returns
// dX = dOut·Wᵀ.
func (l *DenseLinear) Backward(dOut *sparse.Dense) (*sparse.Dense, error) {
	x := l.lastX
	if x == nil {
		return nil, errors.New("nn: Backward before Forward")
	}
	if dOut.Rows() != x.Rows() || dOut.Cols() != l.out {
		return nil, fmt.Errorf("%w: gradient is %dx%d, want %dx%d", ErrShape, dOut.Rows(), dOut.Cols(), x.Rows(), l.out)
	}
	dX, _ := sparse.NewDense(x.Rows(), l.in)
	for bIdx := 0; bIdx < x.Rows(); bIdx++ {
		xRow := x.RowSlice(bIdx)
		gRow := dOut.RowSlice(bIdx)
		dxRow := dX.RowSlice(bIdx)
		for c, gv := range gRow {
			l.gb[c] += gv
		}
		for r, xv := range xRow {
			wRow := l.w[r*l.out : (r+1)*l.out]
			gwRow := l.gw[r*l.out : (r+1)*l.out]
			var acc float64
			for c, gv := range gRow {
				if xv != 0 {
					gwRow[c] += xv * gv
				}
				acc += wRow[c] * gv
			}
			dxRow[r] = acc
		}
	}
	return dX, nil
}

// Params exposes the weight and bias tensors.
func (l *DenseLinear) Params() []Param {
	return []Param{{W: l.w, G: l.gw}, {W: l.b, G: l.gb}}
}

// CloneShared returns a replica sharing weight storage with fresh gradient
// buffers and activation caches, for data-parallel workers.
func (l *DenseLinear) CloneShared() Layer {
	return &DenseLinear{
		in: l.in, out: l.out,
		w: l.w, b: l.b,
		gw: make([]float64, len(l.gw)),
		gb: make([]float64, len(l.gb)),
	}
}

// SparseLinear is an affine layer whose connectivity is a fixed sparsity
// pattern: out = x·W + b with W supported only on pattern entries. The
// pattern rows index inputs and columns index outputs, exactly matching the
// orientation of RadiX-Net adjacency submatrices.
type SparseLinear struct {
	pat   *sparse.Pattern
	w     []float64 // aligned with pat's stored entries
	b     []float64
	gw    []float64
	gb    []float64
	lastX *sparse.Dense
	mat   *sparse.Matrix // pat + w, shared storage; built once
	kern  *sparse.Kernel // CSC gather form; values resynced each Forward
}

// NewSparseLinear returns a sparse layer on the given pattern with
// fan-in-scaled He/Xavier-style initialization: each weight is uniform in
// ±sqrt(6/(fanIn+fanOut)) where the fans are the pattern's mean degrees —
// the standard adaptation for sparse layers, keeping activation variance
// comparable to dense layers of the same density.
func NewSparseLinear(pat *sparse.Pattern, rng *rand.Rand) *SparseLinear {
	l := &SparseLinear{
		pat: pat,
		w:   make([]float64, pat.NNZ()),
		b:   make([]float64, pat.Cols()),
		gw:  make([]float64, pat.NNZ()),
		gb:  make([]float64, pat.Cols()),
	}
	fanIn := float64(pat.NNZ()) / float64(pat.Cols())
	fanOut := float64(pat.NNZ()) / float64(pat.Rows())
	limit := math.Sqrt(6.0 / (fanIn + fanOut))
	for i := range l.w {
		l.w[i] = (rng.Float64()*2 - 1) * limit
	}
	l.mat, _ = sparse.NewMatrix(pat, l.w)
	return l
}

// Pattern returns the layer's immutable connectivity.
func (l *SparseLinear) Pattern() *sparse.Pattern { return l.pat }

// InSize returns the input feature count.
func (l *SparseLinear) InSize() int { return l.pat.Rows() }

// OutSize returns the output feature count.
func (l *SparseLinear) OutSize() int { return l.pat.Cols() }

// NumParams returns the number of trainable scalars (stored weights plus
// biases) — the storage-cost figure sparse-vs-dense comparisons report.
func (l *SparseLinear) NumParams() int { return len(l.w) + len(l.b) }

// Forward computes x·W + b over the stored entries only, as a single fused
// CSC gather pass per batch row (see sparse.Kernel): no intermediate
// product matrix, no second bias pass. The kernel's value copy is resynced
// from the live weights on every call, since optimizers mutate them between
// forward passes.
func (l *SparseLinear) Forward(x *sparse.Dense) (*sparse.Dense, error) {
	if x.Cols() != l.pat.Rows() {
		return nil, fmt.Errorf("%w: batch has %d features, layer expects %d", ErrShape, x.Cols(), l.pat.Rows())
	}
	l.lastX = x
	out, _ := sparse.NewDense(x.Rows(), l.pat.Cols())
	if l.kern == nil {
		k, err := sparse.NewKernel(l.mat)
		if err != nil {
			return nil, fmt.Errorf("nn: %w", err)
		}
		l.kern = k
	} else if err := l.kern.Refresh(l.mat); err != nil {
		return nil, fmt.Errorf("nn: %w", err)
	}
	parallel.BlocksGrain(x.Rows(), 1, func(lo, hi int) {
		for bIdx := lo; bIdx < hi; bIdx++ {
			l.kern.AffineGatherRow(out.RowSlice(bIdx), x.RowSlice(bIdx), l.b)
		}
	})
	return out, nil
}

// Backward accumulates gradients on stored entries only and returns dX.
func (l *SparseLinear) Backward(dOut *sparse.Dense) (*sparse.Dense, error) {
	x := l.lastX
	if x == nil {
		return nil, errors.New("nn: Backward before Forward")
	}
	if dOut.Rows() != x.Rows() || dOut.Cols() != l.pat.Cols() {
		return nil, fmt.Errorf("%w: gradient is %dx%d, want %dx%d", ErrShape, dOut.Rows(), dOut.Cols(), x.Rows(), l.pat.Cols())
	}
	dX, _ := sparse.NewDense(x.Rows(), l.pat.Rows())
	for bIdx := 0; bIdx < x.Rows(); bIdx++ {
		xRow := x.RowSlice(bIdx)
		gRow := dOut.RowSlice(bIdx)
		dxRow := dX.RowSlice(bIdx)
		for c, gv := range gRow {
			l.gb[c] += gv
		}
		for r := 0; r < l.pat.Rows(); r++ {
			xv := xRow[r]
			lo, row := l.rowSpan(r)
			var acc float64
			for i, c := range row {
				gv := gRow[c]
				if xv != 0 {
					l.gw[lo+i] += xv * gv
				}
				acc += l.w[lo+i] * gv
			}
			dxRow[r] = acc
		}
	}
	return dX, nil
}

// rowSpan returns the offset of row r's entries within the aligned slices
// and the row's column indices.
func (l *SparseLinear) rowSpan(r int) (int, []int) {
	row := l.pat.Row(r)
	// The pattern's Row is a subslice of its colIdx; recover the offset by
	// counting entries before row r.
	lo := l.pat.RowOffset(r)
	return lo, row
}

// Params exposes the weight and bias tensors.
func (l *SparseLinear) Params() []Param {
	return []Param{{W: l.w, G: l.gw}, {W: l.b, G: l.gb}}
}

// CloneShared returns a replica sharing weights with fresh gradient
// buffers. The CSC kernel is per-replica (each Forward refreshes its value
// copy, which must not race across workers); it is rebuilt lazily.
func (l *SparseLinear) CloneShared() Layer {
	return &SparseLinear{
		pat: l.pat,
		w:   l.w, b: l.b,
		gw:  make([]float64, len(l.gw)),
		gb:  make([]float64, len(l.gb)),
		mat: l.mat,
	}
}
