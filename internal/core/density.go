package core

import "math"

// Density returns the exact density ΔG of the RadiX-Net defined by cfg in
// closed form, eq. (4) of the paper:
//
//	ΔG = (1/N′) · (Σ N̄i·Di−1·Di) / (Σ Di−1·Di)
//
// It equals the built topology's measured density (edges / dense edges)
// exactly; a property test pins the identity.
func Density(cfg Config) float64 {
	shape := cfg.ShapeOrOnes()
	radices := cfg.FlatRadices()
	var num, den float64
	for i, r := range radices {
		dd := float64(shape[i]) * float64(shape[i+1])
		num += float64(r) * dd
		den += dd
	}
	return num / den / float64(cfg.NPrime())
}

// DensityApproxMu returns the small-variance approximation of eq. (5),
// ΔG ≈ µ/N′, which shows the dense shape {Di} has negligible effect on
// density when the radices are nearly uniform.
func DensityApproxMu(mu float64, nprime int) float64 {
	return mu / float64(nprime)
}

// DensityApproxMuD returns the approximation of eq. (6), ΔG ≈ µ^{−(d−1)},
// where µ is the mean radix and d = log_µ N′ the per-system depth. Fig. 7
// of the paper plots exactly this surface.
func DensityApproxMuD(mu, d float64) float64 {
	return math.Pow(mu, -(d - 1))
}

// DensityCell is one (µ, d) cell of the Fig. 7 density map.
type DensityCell struct {
	Mu      int     // average (here: uniform) radix µ
	Depth   int     // number of radices d per system
	NPrime  int     // µ^d
	Approx  float64 // eq. (6): µ^{−(d−1)}
	Exact   float64 // eq. (4) on the uniform config (coincides for zero variance)
	Valid   bool    // false when µ^d overflows or is otherwise unusable
	Overfl  bool    // true when µ^d does not fit in int
	EdgesLg float64 // log10 of the per-layer edge count N′·µ at D=1
}

// DensityMap evaluates the Fig. 7 surface on the grid µ ∈ [muMin, muMax],
// d ∈ [dMin, dMax] using uniform systems (zero radix variance, where
// approximation (6) is exact). Cells whose N′ = µ^d overflows int are
// marked invalid rather than silently dropped.
func DensityMap(muMin, muMax, dMin, dMax int) []DensityCell {
	var cells []DensityCell
	for mu := muMin; mu <= muMax; mu++ {
		for d := dMin; d <= dMax; d++ {
			cell := DensityCell{Mu: mu, Depth: d}
			np := 1
			for i := 0; i < d; i++ {
				if np > math.MaxInt/mu {
					cell.Overfl = true
					break
				}
				np *= mu
			}
			if cell.Overfl {
				cells = append(cells, cell)
				continue
			}
			cell.NPrime = np
			cell.Approx = DensityApproxMuD(float64(mu), float64(d))
			cell.Exact = float64(mu) / float64(np) // eq. (4) with uniform radices, any shape
			cell.Valid = true
			cell.EdgesLg = math.Log10(float64(np) * float64(mu))
			cells = append(cells, cell)
		}
	}
	return cells
}
