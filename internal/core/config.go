// Package core implements the RadiX-Net generator of Robinett & Kepner
// (2019): deterministic construction of sparse, symmetric, path-connected
// deep neural network topologies from mixed-radix numeral systems and
// Kronecker products (§III of the paper, algorithm of Fig. 6).
//
// A RadiX-Net is parameterized by an ordered set N* = (N1, …, NM) of
// mixed-radix numeral systems and a dense shape D = (D0, …, D𝕄), where
// 𝕄 = Σ Li is the total number of radices. The first M−1 systems must share
// the same product N′ and the last system's product must divide N′. The
// resulting topology has 𝕄+1 node layers of widths Di·N′.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"strings"

	"github.com/radix-net/radixnet/internal/radix"
)

// ErrNoSystems is returned when a Config has no mixed-radix systems.
var ErrNoSystems = errors.New("core: a RadiX-Net needs at least one mixed-radix system")

// ErrProductMismatch is returned when the first M−1 systems do not share the
// same product N′ (paper constraint 1).
var ErrProductMismatch = errors.New("core: all systems except the last must have equal products N′")

// ErrNotDivisor is returned when the last system's product does not divide
// N′ (paper constraint 2).
var ErrNotDivisor = errors.New("core: the last system's product must divide N′")

// ErrBadShape is returned when the dense shape D has the wrong length or a
// non-positive entry.
var ErrBadShape = errors.New("core: dense shape D must have 𝕄+1 positive entries")

// Config fully determines a RadiX-Net topology. The zero value is invalid;
// construct with NewConfig (which validates) or set the fields and call
// Validate.
type Config struct {
	// Systems is the ordered set N* of mixed-radix numeral systems.
	Systems []radix.System
	// Shape is the dense DNN shape D = (D0, …, D𝕄), one entry per node
	// layer. A nil Shape means all ones (a pure extended mixed-radix
	// topology, as in Lemma 2 of the paper).
	Shape []int
}

// NewConfig assembles and validates a Config. A nil shape selects all ones.
func NewConfig(systems []radix.System, shape []int) (Config, error) {
	c := Config{Systems: append([]radix.System(nil), systems...), Shape: append([]int(nil), shape...)}
	if len(shape) == 0 {
		c.Shape = nil
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Validate checks the RadiX-Net constraints of §III.A: at least one system,
// equal products N′ for all but the last system, last product dividing N′,
// and a positive dense shape of length 𝕄+1 (when present).
func (c Config) Validate() error {
	if len(c.Systems) == 0 {
		return ErrNoSystems
	}
	for i, s := range c.Systems {
		if s.Len() == 0 {
			return fmt.Errorf("core: system %d is empty: %w", i, radix.ErrEmpty)
		}
	}
	np := c.Systems[0].Product()
	for i := 0; i < len(c.Systems)-1; i++ {
		if c.Systems[i].Product() != np {
			return fmt.Errorf("%w: system %d has product %d, want %d",
				ErrProductMismatch, i, c.Systems[i].Product(), np)
		}
	}
	if last := c.Systems[len(c.Systems)-1].Product(); np%last != 0 {
		return fmt.Errorf("%w: %d does not divide N′=%d", ErrNotDivisor, last, np)
	}
	if c.Shape != nil {
		if len(c.Shape) != c.TotalRadices()+1 {
			return fmt.Errorf("%w: got %d entries, want %d", ErrBadShape, len(c.Shape), c.TotalRadices()+1)
		}
		for i, d := range c.Shape {
			if d < 1 {
				return fmt.Errorf("%w: D%d = %d", ErrBadShape, i, d)
			}
		}
	}
	return nil
}

// NPrime returns N′, the product shared by the first M−1 systems (and of the
// first system when M = 1). Every pre-lift layer has N′ nodes.
func (c Config) NPrime() int { return c.Systems[0].Product() }

// LastProduct returns N″ = ∏ N_M, the product of the last system, which
// divides N′. When N″ < N′ the generalized path-count formula applies
// (DESIGN.md erratum E-b).
func (c Config) LastProduct() int { return c.Systems[len(c.Systems)-1].Product() }

// NumSystems returns M, the number of mixed-radix systems.
func (c Config) NumSystems() int { return len(c.Systems) }

// TotalRadices returns 𝕄 = Σ Li, the number of edge layers of the topology.
func (c Config) TotalRadices() int {
	total := 0
	for _, s := range c.Systems {
		total += s.Len()
	}
	return total
}

// FlatRadices returns (N̄1, …, N̄𝕄): the radices of all systems flattened in
// order, as used by the density formula eq. (4).
func (c Config) FlatRadices() []int {
	out := make([]int, 0, c.TotalRadices())
	for _, s := range c.Systems {
		out = append(out, s.Radices()...)
	}
	return out
}

// ShapeOrOnes returns the dense shape D, substituting all ones when Shape is
// nil. The result has 𝕄+1 entries.
func (c Config) ShapeOrOnes() []int {
	if c.Shape != nil {
		return append([]int(nil), c.Shape...)
	}
	shape := make([]int, c.TotalRadices()+1)
	for i := range shape {
		shape[i] = 1
	}
	return shape
}

// LayerWidths returns the node counts of all 𝕄+1 layers of the built
// topology: Di·N′.
func (c Config) LayerWidths() []int {
	shape := c.ShapeOrOnes()
	widths := make([]int, len(shape))
	for i, d := range shape {
		widths[i] = d * c.NPrime()
	}
	return widths
}

// NumNodes returns the total node count Σ Di·N′ as a big integer (brain-
// scale configurations overflow int edge counts, so all closed-form counts
// use big arithmetic).
func (c Config) NumNodes() *big.Int {
	total := new(big.Int)
	np := big.NewInt(int64(c.NPrime()))
	for _, d := range c.ShapeOrOnes() {
		total.Add(total, new(big.Int).Mul(big.NewInt(int64(d)), np))
	}
	return total
}

// NumEdges returns the exact total edge count Σ N̄i·N′·Di−1·Di in closed
// form (no construction).
func (c Config) NumEdges() *big.Int {
	shape := c.ShapeOrOnes()
	radices := c.FlatRadices()
	np := big.NewInt(int64(c.NPrime()))
	total := new(big.Int)
	for i, r := range radices {
		term := new(big.Int).Mul(big.NewInt(int64(r)), np)
		term.Mul(term, big.NewInt(int64(shape[i])))
		term.Mul(term, big.NewInt(int64(shape[i+1])))
		total.Add(total, term)
	}
	return total
}

// DenseEdges returns the edge count of the fully-connected topology on the
// same layer widths, Σ (Di−1·N′)(Di·N′).
func (c Config) DenseEdges() *big.Int {
	shape := c.ShapeOrOnes()
	np := big.NewInt(int64(c.NPrime()))
	np2 := new(big.Int).Mul(np, np)
	total := new(big.Int)
	for i := 0; i+1 < len(shape); i++ {
		term := new(big.Int).Mul(big.NewInt(int64(shape[i])), big.NewInt(int64(shape[i+1])))
		term.Mul(term, np2)
		total.Add(total, term)
	}
	return total
}

// MeanRadix returns µ, the mean of the flattened radices, the driver of the
// density approximations (5) and (6).
func (c Config) MeanRadix() float64 {
	radices := c.FlatRadices()
	sum := 0
	for _, r := range radices {
		sum += r
	}
	return float64(sum) / float64(len(radices))
}

// RadixVariance returns the population variance of the flattened radices;
// the approximations (5)–(6) assume it is small.
func (c Config) RadixVariance() float64 {
	radices := c.FlatRadices()
	mu := c.MeanRadix()
	var acc float64
	for _, r := range radices {
		d := float64(r) - mu
		acc += d * d
	}
	return acc / float64(len(radices))
}

// Depth returns d = log_µ N′ (§III.B), the effective number of radices per
// system at mean radix µ.
func (c Config) Depth() float64 {
	return math.Log(float64(c.NPrime())) / math.Log(c.MeanRadix())
}

// TheoreticalPaths returns the exact number of paths between any input and
// output node, by the generalized form of Theorem 1:
//
//	m = N″ · (N′)^{M−2} · ∏_{i=1}^{𝕄−1} Di    (M ≥ 2 systems)
//	m = 1 · ∏_{i=1}^{𝕄−1} Di                  (M = 1 system)
//
// which reduces to the paper's (N′)^{M−1}·∏Di when N″ = N′. See DESIGN.md
// erratum E-b for why the published formula needs the N″ correction when
// the last system's product is a proper divisor of N′.
func (c Config) TheoreticalPaths() *big.Int {
	m := big.NewInt(1)
	if c.NumSystems() >= 2 {
		m.SetInt64(int64(c.LastProduct()))
		np := big.NewInt(int64(c.NPrime()))
		for i := 0; i < c.NumSystems()-2; i++ {
			m.Mul(m, np)
		}
	}
	shape := c.ShapeOrOnes()
	for i := 1; i+1 < len(shape); i++ {
		m.Mul(m, big.NewInt(int64(shape[i])))
	}
	return m
}

// PaperTheoreticalPaths returns the path count exactly as printed in
// Theorem 1, (N′)^{M−1}·∏_{i=1}^{𝕄−1}Di, which matches TheoreticalPaths
// exactly when the last system's product equals N′. Kept for the erratum
// test battery.
func (c Config) PaperTheoreticalPaths() *big.Int {
	m := big.NewInt(1)
	np := big.NewInt(int64(c.NPrime()))
	for i := 0; i < c.NumSystems()-1; i++ {
		m.Mul(m, np)
	}
	shape := c.ShapeOrOnes()
	for i := 1; i+1 < len(shape); i++ {
		m.Mul(m, big.NewInt(int64(shape[i])))
	}
	return m
}

// String renders the config in the paper's notation, e.g.
// "N*=((3,3,4),(3,3,4),(2,3)) D=(1,2,2,2,2,2,1)".
func (c Config) String() string {
	var b strings.Builder
	b.WriteString("N*=(")
	for i, s := range c.Systems {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.String())
	}
	b.WriteString(")")
	if c.Shape != nil {
		b.WriteString(" D=(")
		for i, d := range c.Shape {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", d)
		}
		b.WriteString(")")
	}
	return b.String()
}
