package core

import (
	"fmt"
	"math/big"
)

// StreamLayerEdges enumerates the edges of one edge layer of the RadiX-Net
// defined by cfg without materializing any matrix, calling fn(u, v) for
// every edge from node u of layer `layer` to node v of layer `layer+1`
// (node indices local to their layers, in [0, Di·N′)). Enumeration stops
// early when fn returns false. This is the generation path for
// configurations whose edge counts exceed memory (experiment E11).
//
// Edges are produced in deterministic order: lift block row a, then source
// node r, then digit n, then lift block column b.
func StreamLayerEdges(cfg Config, layer int, fn func(u, v int64) bool) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if layer < 0 || layer >= cfg.TotalRadices() {
		return fmt.Errorf("core: layer %d out of range [0,%d)", layer, cfg.TotalRadices())
	}
	np := cfg.NPrime()
	shape := cfg.ShapeOrOnes()

	// Locate the system and digit index owning this edge layer.
	sysIdx, digit := 0, layer
	for digit >= cfg.Systems[sysIdx].Len() {
		digit -= cfg.Systems[sysIdx].Len()
		sysIdx++
	}
	sys := cfg.Systems[sysIdx]
	r0 := sys.Radix(digit)
	pv := sys.PlaceValue(digit)

	dPrev, dNext := shape[layer], shape[layer+1]
	for a := 0; a < dPrev; a++ {
		base := int64(a) * int64(np)
		for r := 0; r < np; r++ {
			u := base + int64(r)
			for n := 0; n < r0; n++ {
				c := (r + n*pv) % np
				for b := 0; b < dNext; b++ {
					v := int64(b)*int64(np) + int64(c)
					if !fn(u, v) {
						return nil
					}
				}
			}
		}
	}
	return nil
}

// StreamEdges enumerates every edge of the topology layer by layer, calling
// fn(layer, u, v) with layer-local node indices. Enumeration stops early
// when fn returns false.
func StreamEdges(cfg Config, fn func(layer int, u, v int64) bool) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	for l := 0; l < cfg.TotalRadices(); l++ {
		stopped := false
		err := StreamLayerEdges(cfg, l, func(u, v int64) bool {
			if !fn(l, u, v) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if stopped {
			return nil
		}
	}
	return nil
}

// EdgesInLayer returns the exact edge count of one edge layer in closed
// form: N̄·N′·Dprev·Dnext.
func EdgesInLayer(cfg Config, layer int) (*big.Int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if layer < 0 || layer >= cfg.TotalRadices() {
		return nil, fmt.Errorf("core: layer %d out of range [0,%d)", layer, cfg.TotalRadices())
	}
	radices := cfg.FlatRadices()
	shape := cfg.ShapeOrOnes()
	out := big.NewInt(int64(radices[layer]))
	out.Mul(out, big.NewInt(int64(cfg.NPrime())))
	out.Mul(out, big.NewInt(int64(shape[layer])))
	out.Mul(out, big.NewInt(int64(shape[layer+1])))
	return out, nil
}
