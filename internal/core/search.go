package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/radix-net/radixnet/internal/radix"
)

// Candidate is one configuration proposed by Search, with its exact
// properties precomputed for ranking.
type Candidate struct {
	Config     Config
	Width      int     // nodes per (unlifted) layer, N′
	Density    float64 // exact, eq. (4)
	MeanRadix  float64
	Depth      int     // radices per system
	DensityErr float64 // |density − target| / target
}

// SearchSpec describes what a downstream user wants from a topology:
// a layer width, a density, and how deep the network should be.
type SearchSpec struct {
	// Width is the desired nodes per layer (N′ when Lift == 1).
	Width int
	// Density is the target fraction of dense edges, in (0, 1].
	Density float64
	// EdgeLayers is the desired number of weight layers; candidates use as
	// many whole systems as needed (each contributes its depth in layers).
	EdgeLayers int
	// Tolerance is the acceptable relative density error (default 0.25).
	Tolerance float64
	// MaxResults bounds the number of returned candidates (default 10).
	MaxResults int
}

// Search enumerates mixed-radix factorizations of the requested width and
// returns the RadiX-Net configurations whose exact density (eq. 4) lands
// within tolerance of the target, ranked by density error then by radix
// variance (lower variance ⇒ the paper's approximations are tighter).
//
// This is the "I want a 256-wide, ~1/16-dense, 8-layer sparse block" entry
// point: the caller picks a candidate and feeds Candidate.Config to Build.
func Search(spec SearchSpec) ([]Candidate, error) {
	if spec.Width < 2 {
		return nil, fmt.Errorf("core: search width %d must be ≥ 2", spec.Width)
	}
	if spec.Density <= 0 || spec.Density > 1 {
		return nil, fmt.Errorf("core: search density %g out of (0,1]", spec.Density)
	}
	if spec.EdgeLayers < 1 {
		return nil, fmt.Errorf("core: search needs ≥ 1 edge layer, got %d", spec.EdgeLayers)
	}
	tol := spec.Tolerance
	if tol <= 0 {
		tol = 0.25
	}
	maxResults := spec.MaxResults
	if maxResults <= 0 {
		maxResults = 10
	}

	var out []Candidate
	for _, radices := range OrderedFactorizations(spec.Width, 16) {
		sys, err := radix.New(radices...)
		if err != nil {
			continue
		}
		depth := sys.Len()
		// Tile whole systems to reach ≥ EdgeLayers, trimming the tail with
		// a shorter final system whose product divides N′ when the layer
		// count does not divide evenly.
		numSystems := spec.EdgeLayers / depth
		rem := spec.EdgeLayers % depth
		if numSystems == 0 {
			continue // system deeper than the requested network
		}
		systems := make([]radix.System, numSystems)
		for i := range systems {
			systems[i] = sys
		}
		if rem > 0 {
			tail, err := radix.New(radices[:rem]...)
			if err != nil {
				continue
			}
			systems = append(systems, tail)
		}
		cfg, err := NewConfig(systems, nil)
		if err != nil {
			continue
		}
		d := Density(cfg)
		relErr := math.Abs(d-spec.Density) / spec.Density
		if relErr > tol {
			continue
		}
		out = append(out, Candidate{
			Config:     cfg,
			Width:      spec.Width,
			Density:    d,
			MeanRadix:  cfg.MeanRadix(),
			Depth:      depth,
			DensityErr: relErr,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DensityErr != out[j].DensityErr {
			return out[i].DensityErr < out[j].DensityErr
		}
		vi := out[i].Config.RadixVariance()
		vj := out[j].Config.RadixVariance()
		if vi != vj {
			return vi < vj
		}
		return out[i].Config.String() < out[j].Config.String()
	})
	if len(out) > maxResults {
		out = out[:maxResults]
	}
	return out, nil
}

// OrderedFactorizations enumerates every ordered factorization of n into
// factors ≥ 2 (n itself included as the length-1 factorization), capped at
// maxLen factors. Order matters because radix order changes the topology
// (though not its density): (2,8) and (8,2) wire different shift strides.
func OrderedFactorizations(n, maxLen int) [][]int {
	if n < 2 {
		return nil
	}
	if maxLen < 1 {
		maxLen = 1
	}
	var out [][]int
	var rec func(rem int, prefix []int)
	rec = func(rem int, prefix []int) {
		if rem == 1 {
			if len(prefix) > 0 {
				out = append(out, append([]int(nil), prefix...))
			}
			return
		}
		if len(prefix) == maxLen {
			return
		}
		for f := 2; f <= rem; f++ {
			if rem%f == 0 {
				rec(rem/f, append(prefix, f))
			}
		}
	}
	rec(n, nil)
	return out
}
