package core

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/radix-net/radixnet/internal/radix"
	"github.com/radix-net/radixnet/internal/topology"
)

// --- Experiment E1: Figure 1 (mixed-radix topology of N = (2,2,2)) ---

// TestFig1MixedRadixGolden pins the exact edge structure of the paper's
// Figure 1: three layers of shifts {0,1}, {0,2}, {0,4} on 8 nodes.
func TestFig1MixedRadixGolden(t *testing.T) {
	g := MixedRadix(radix.MustNew(2, 2, 2))
	if g.NumLayers() != 4 {
		t.Fatalf("layers = %d, want 4", g.NumLayers())
	}
	for i := 0; i < 4; i++ {
		if g.LayerSize(i) != 8 {
			t.Fatalf("layer %d size = %d, want 8", i, g.LayerSize(i))
		}
	}
	offsets := []int{1, 2, 4} // place values ν1=1, ν2=2, ν3=4
	for l, off := range offsets {
		w := g.Sub(l)
		for j := 0; j < 8; j++ {
			row := w.Row(j)
			if len(row) != 2 {
				t.Fatalf("W%d row %d degree = %d, want 2", l+1, j, len(row))
			}
			if !w.Has(j, j) || !w.Has(j, (j+off)%8) {
				t.Fatalf("W%d row %d = %v, want {%d, %d}", l+1, j, row, j, (j+off)%8)
			}
		}
	}
	if g.NumEdges() != 48 {
		t.Fatalf("edges = %d, want 48", g.NumEdges())
	}
	if g.Density() != 0.25 {
		t.Fatalf("density = %g, want 0.25 (= µ/N′ = 2/8)", g.Density())
	}
}

// TestFig1DecisionTreeInterpretation checks the "overlapping decision trees"
// reading of Fig. 1: following digit choices (n1,n2,n3) from input node 0
// reaches output node n1·1 + n2·2 + n3·4 — the mixed-radix decoding.
func TestFig1DecisionTreeInterpretation(t *testing.T) {
	sys := radix.MustNew(2, 2, 2)
	g := MixedRadix(sys)
	for v := 0; v < 8; v++ {
		digits, err := sys.Decode(v)
		if err != nil {
			t.Fatal(err)
		}
		node := 0
		for l, d := range digits {
			next := (node + d*sys.PlaceValue(l)) % 8
			if !g.Sub(l).Has(node, next) {
				t.Fatalf("digit path to %d missing edge %d→%d at layer %d", v, node, next, l)
			}
			node = next
		}
		if node != v {
			t.Fatalf("digit path for %d ended at %d", v, node)
		}
	}
}

// --- Lemma 1: mixed-radix topologies are symmetric with exactly one path ---

func TestLemma1MixedRadixOnePathProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sys := randomSystem(rng, 4, 5)
		g := MixedRadix(sys)
		m, ok := g.Symmetric()
		return ok && m.Int64() == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// randomSystem draws a numeral system with ≤ maxLen radices each ≤ maxRadix+1.
func randomSystem(rng *rand.Rand, maxRadix, maxLen int) radix.System {
	l := 1 + rng.Intn(maxLen)
	radices := make([]int, l)
	for i := range radices {
		radices[i] = 2 + rng.Intn(maxRadix-1)
	}
	return radix.MustNew(radices...)
}

// --- Experiment E2: Figure 2 (EMR concatenation and constraints) ---

func TestFig2Concatenation(t *testing.T) {
	cfg := Fig2Config()
	if cfg.NPrime() != 36 {
		t.Fatalf("N′ = %d, want 36", cfg.NPrime())
	}
	if cfg.LastProduct() != 6 {
		t.Fatalf("last product = %d, want 6", cfg.LastProduct())
	}
	g, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 systems of 3 radices + 1 of 2 radices = 11 edge layers, all 36 wide.
	if g.NumSubs() != 11 {
		t.Fatalf("edge layers = %d, want 11", g.NumSubs())
	}
	for i := 0; i < g.NumLayers(); i++ {
		if g.LayerSize(i) != 36 {
			t.Fatalf("layer %d size = %d, want 36", i, g.LayerSize(i))
		}
	}
	m, ok := g.Symmetric()
	if !ok {
		t.Fatal("Fig. 2 EMR must be symmetric")
	}
	if m.Cmp(cfg.TheoreticalPaths()) != 0 {
		t.Fatalf("m = %v, theory %v", m, cfg.TheoreticalPaths())
	}
}

// --- Lemma 2: EMR symmetry and path counts ---

func TestLemma2EMRPathsFullProducts(t *testing.T) {
	// All systems share the full product: m = (N′)^{M−1} exactly as printed.
	s := radix.MustNew(2, 3) // N′ = 6
	for _, M := range []int{1, 2, 3, 4} {
		systems := make([]radix.System, M)
		for i := range systems {
			systems[i] = s
		}
		g, err := EMR(systems...)
		if err != nil {
			t.Fatal(err)
		}
		m, ok := g.Symmetric()
		if !ok {
			t.Fatalf("M=%d: EMR not symmetric", M)
		}
		want := new(big.Int).Exp(big.NewInt(6), big.NewInt(int64(M-1)), nil)
		if m.Cmp(want) != 0 {
			t.Fatalf("M=%d: m = %v, want %v", M, m, want)
		}
	}
}

// TestErratumEbDivisorLastSystem exercises DESIGN.md erratum E-b: with a
// divisor last system, symmetry still holds but the exact path count is
// N″·(N′)^{M−2}, below the paper's (N′)^{M−1}.
func TestErratumEbDivisorLastSystem(t *testing.T) {
	s := radix.MustNew(3, 4) // N′ = 12
	last := radix.MustNew(2, 3)
	cfg, err := NewConfig([]radix.System{s, s, last}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := g.Symmetric()
	if !ok {
		t.Fatal("divisor-last-system RadiX-Net must still be symmetric")
	}
	want := big.NewInt(6 * 12) // N″·(N′)^{M−2} = 6·12
	if m.Cmp(want) != 0 {
		t.Fatalf("exact m = %v, want %v", m, want)
	}
	if m.Cmp(cfg.TheoreticalPaths()) != 0 {
		t.Fatalf("generalized formula %v disagrees with exact %v", cfg.TheoreticalPaths(), m)
	}
	paper := cfg.PaperTheoreticalPaths() // 12² = 144
	if paper.Cmp(m) == 0 {
		t.Fatal("paper formula should OVERcount in the divisor case; it matched")
	}
	if paper.Int64() != 144 {
		t.Fatalf("paper formula = %v, want 144", paper)
	}
}

func TestFormulasAgreeWhenLastProductIsFull(t *testing.T) {
	s := radix.MustNew(2, 2, 2)
	cfg, err := NewConfig([]radix.System{s, s}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TheoreticalPaths().Cmp(cfg.PaperTheoreticalPaths()) != 0 {
		t.Fatal("formulas must coincide when N″ = N′")
	}
}

// --- Experiment E5: Figure 6 algorithm vs definitional construction ---

// randomConfig draws a valid random RadiX-Net config, sometimes with a
// divisor last system and sometimes with a nontrivial dense shape.
func randomConfig(rng *rand.Rand) Config {
	// Choose N′ as a product of small radices.
	first := randomSystem(rng, 4, 3)
	np := first.Product()
	M := 1 + rng.Intn(3)
	systems := []radix.System{first}
	for i := 1; i < M; i++ {
		// Another system with the same product: reuse a permutation of the
		// factorization of N′.
		f, err := radix.Factorize(np)
		if err != nil {
			panic(err)
		}
		systems = append(systems, f)
	}
	// Optionally replace the last system with a proper-divisor system.
	if M >= 2 && rng.Intn(2) == 0 {
		divisors := []int{}
		for d := 2; d <= np; d++ {
			if np%d == 0 {
				divisors = append(divisors, d)
			}
		}
		d := divisors[rng.Intn(len(divisors))]
		f, err := radix.Factorize(d)
		if err != nil {
			panic(err)
		}
		systems[M-1] = f
	}
	total := 0
	for _, s := range systems {
		total += s.Len()
	}
	var shape []int
	if rng.Intn(2) == 0 {
		shape = make([]int, total+1)
		for i := range shape {
			shape[i] = 1 + rng.Intn(3)
		}
	}
	cfg, err := NewConfig(systems, shape)
	if err != nil {
		panic(err)
	}
	return cfg
}

func TestBuildMatchesReferenceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randomConfig(rng)
		if cfg.NPrime() > 64 {
			return true // keep runtime bounded
		}
		a, err := Build(cfg)
		if err != nil {
			return false
		}
		b, err := BuildReference(cfg)
		if err != nil {
			return false
		}
		return a.Equal(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// --- Theorem 1 across random configs: symmetry + exact path counts ---

func TestTheorem1Property(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randomConfig(rng)
		if cfg.NPrime() > 48 || cfg.TotalRadices() > 8 {
			return true
		}
		g, err := Build(cfg)
		if err != nil {
			return false
		}
		m, ok := g.Symmetric()
		if !ok {
			return false
		}
		return m.Cmp(cfg.TheoreticalPaths()) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem1StreamingVerifierAgrees(t *testing.T) {
	cfg := Fig2Config()
	g, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ms, ok := g.SymmetricStreaming()
	if !ok {
		t.Fatal("streaming verifier rejected a symmetric net")
	}
	if ms.Cmp(cfg.TheoreticalPaths()) != 0 {
		t.Fatalf("streaming m = %v, want %v", ms, cfg.TheoreticalPaths())
	}
}

// --- Experiment E4: Figure 5 Kronecker lift ---

func TestFig5KroneckerLift(t *testing.T) {
	cfg, err := Fig5Config(4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Shape (3,5,4,2) over N′=4: layer widths 12, 20, 16, 8.
	want := []int{12, 20, 16, 8}
	for i, w := range want {
		if g.LayerSize(i) != w {
			t.Fatalf("layer sizes = %v, want %v", g.LayerSizes(), want)
		}
	}
	m, ok := g.Symmetric()
	if !ok {
		t.Fatal("Fig. 5 net must be symmetric")
	}
	if m.Cmp(cfg.TheoreticalPaths()) != 0 {
		t.Fatalf("m = %v, theory %v", m, cfg.TheoreticalPaths())
	}
}

func TestBuildSharesUnliftedSubmatrices(t *testing.T) {
	// With an all-ones shape the builder must not copy the mixed-radix
	// submatrices (1⊗W = W).
	cfg := Fig1Config()
	g, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mr := MixedRadix(cfg.Systems[0])
	for i := 0; i < g.NumSubs(); i++ {
		if !g.Sub(i).Equal(mr.Sub(i)) {
			t.Fatalf("layer %d differs from bare mixed-radix topology", i)
		}
	}
}

// --- Streaming generation (E11 substrate) ---

func TestStreamLayerEdgesMatchesBuild(t *testing.T) {
	cfg, err := NewConfig(
		[]radix.System{radix.MustNew(2, 3), radix.MustNew(6)},
		[]int{2, 1, 3, 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < cfg.TotalRadices(); l++ {
		sub := g.Sub(l)
		seen := make(map[[2]int64]bool)
		err := StreamLayerEdges(cfg, l, func(u, v int64) bool {
			seen[[2]int64{u, v}] = true
			if !sub.Has(int(u), int(v)) {
				t.Errorf("layer %d: streamed edge (%d,%d) absent from built pattern", l, u, v)
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != sub.NNZ() {
			t.Fatalf("layer %d: streamed %d distinct edges, pattern has %d", l, len(seen), sub.NNZ())
		}
		count, err := EdgesInLayer(cfg, l)
		if err != nil {
			t.Fatal(err)
		}
		if count.Int64() != int64(sub.NNZ()) {
			t.Fatalf("layer %d: closed-form count %v, pattern has %d", l, count, sub.NNZ())
		}
	}
}

func TestStreamEdgesEarlyStop(t *testing.T) {
	cfg := Fig1Config()
	calls := 0
	err := StreamEdges(cfg, func(layer int, u, v int64) bool {
		calls++
		return calls < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Fatalf("early stop after %d calls, want 5", calls)
	}
}

func TestStreamLayerEdgesErrors(t *testing.T) {
	cfg := Fig1Config()
	if err := StreamLayerEdges(cfg, -1, func(u, v int64) bool { return true }); err == nil {
		t.Fatal("negative layer accepted")
	}
	if err := StreamLayerEdges(cfg, 3, func(u, v int64) bool { return true }); err == nil {
		t.Fatal("out-of-range layer accepted")
	}
	if _, err := EdgesInLayer(cfg, 7); err == nil {
		t.Fatal("out-of-range layer accepted by EdgesInLayer")
	}
}

// TestEMREqualsConcatOfMixedRadix pins that the generator's EMR equals the
// explicit topology.Concat of individually built mixed-radix topologies —
// the construction §III.A describes in prose.
func TestEMREqualsConcatOfMixedRadix(t *testing.T) {
	s1 := radix.MustNew(2, 6)
	s2 := radix.MustNew(3, 4)
	s3 := radix.MustNew(12)
	viaGenerator, err := EMR(s1, s2, s3)
	if err != nil {
		t.Fatal(err)
	}
	viaConcat := MixedRadix(s1)
	for _, s := range []radix.System{s2, s3} {
		next, err := topology.Concat(viaConcat, MixedRadix(s))
		if err != nil {
			t.Fatal(err)
		}
		viaConcat = next
	}
	if !viaGenerator.Equal(viaConcat) {
		t.Fatal("EMR differs from explicit concatenation of mixed-radix topologies")
	}
}

// TestStreamLayerEdgesDeterministicOrder pins the documented enumeration
// order so downstream consumers can rely on reproducible file output.
func TestStreamLayerEdgesDeterministicOrder(t *testing.T) {
	cfg := Fig1Config()
	var a, b [][2]int64
	collect := func(dst *[][2]int64) func(u, v int64) bool {
		return func(u, v int64) bool {
			*dst = append(*dst, [2]int64{u, v})
			return true
		}
	}
	if err := StreamLayerEdges(cfg, 1, collect(&a)); err != nil {
		t.Fatal(err)
	}
	if err := StreamLayerEdges(cfg, 1, collect(&b)); err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("repeat enumeration changed length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Source nodes are non-decreasing in the documented order.
	for i := 1; i < len(a); i++ {
		if a[i][0] < a[i-1][0] {
			t.Fatalf("source order violated at %d", i)
		}
	}
}

// --- Presets ---

func TestGraphChallengeConfig(t *testing.T) {
	cfg, err := GraphChallengeConfig(1024, 120)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NPrime() != 1024 || cfg.TotalRadices() != 120 {
		t.Fatalf("N′=%d layers=%d", cfg.NPrime(), cfg.TotalRadices())
	}
	// Every neuron has 32 connections at base width.
	widths := cfg.LayerWidths()
	if widths[0] != 1024 {
		t.Fatalf("width = %d", widths[0])
	}
	perLayer, err := EdgesInLayer(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if perLayer.Int64() != 1024*32 {
		t.Fatalf("layer edges = %v, want 32768", perLayer)
	}
	// Lifted width.
	cfg4, err := GraphChallengeConfig(4096, 120)
	if err != nil {
		t.Fatal(err)
	}
	if cfg4.LayerWidths()[0] != 4096 {
		t.Fatalf("lifted width = %d", cfg4.LayerWidths()[0])
	}
	// Invalid inputs.
	if _, err := GraphChallengeConfig(1000, 120); err == nil {
		t.Fatal("non-multiple width accepted")
	}
	if _, err := GraphChallengeConfig(1024, 121); err == nil {
		t.Fatal("odd layer count accepted")
	}
	if _, err := GraphChallengeConfig(0, 120); err == nil {
		t.Fatal("zero width accepted")
	}
}

func TestUniformConfig(t *testing.T) {
	cfg, err := UniformConfig(4, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NPrime() != 64 || cfg.TotalRadices() != 6 {
		t.Fatalf("uniform config %v", cfg)
	}
	// Zero-variance: eq. (6) must be exact.
	exact := Density(cfg)
	approx := DensityApproxMuD(4, 3)
	if diff := exact - approx; diff > 1e-15 || diff < -1e-15 {
		t.Fatalf("eq. (6) not exact at zero variance: %g vs %g", exact, approx)
	}
	if _, err := UniformConfig(4, 3, 0, 1); err == nil {
		t.Fatal("zero systems accepted")
	}
	if _, err := UniformConfig(4, 3, 2, 0); err == nil {
		t.Fatal("zero lift accepted")
	}
}

func TestUniformConfigWithLift(t *testing.T) {
	cfg, err := UniformConfig(3, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	widths := cfg.LayerWidths()
	if widths[0] != 9 || widths[1] != 18 || widths[len(widths)-1] != 9 {
		t.Fatalf("widths = %v", widths)
	}
	g, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Symmetric(); !ok {
		t.Fatal("lifted uniform config must be symmetric")
	}
}

func TestBrainConfig(t *testing.T) {
	stats, err := BrainConfig(1e-6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Neurons.Sign() <= 0 || stats.Synapses.Sign() <= 0 {
		t.Fatal("brain stats must be positive")
	}
	if stats.Density <= 0 || stats.Density >= 1 {
		t.Fatalf("brain density %g out of (0,1)", stats.Density)
	}
	if err := stats.Config.Validate(); err != nil {
		t.Fatalf("brain config invalid: %v", err)
	}
	if _, err := BrainConfig(0, 4); err == nil {
		t.Fatal("zero scale accepted")
	}
	if _, err := BrainConfig(2, 4); err == nil {
		t.Fatal("scale > 1 accepted")
	}
	if _, err := BrainConfig(0.5, 3); err == nil {
		t.Fatal("odd layer count accepted")
	}
}

func TestBrainConfigFullScaleArithmetic(t *testing.T) {
	// At full scale the closed-form counts must be brain-sized even though
	// nothing is materialized: ≥ 1e10 neurons, ≥ 1e13 synapses.
	stats, err := BrainConfig(1, 120)
	if err != nil {
		t.Fatal(err)
	}
	tenBillion := new(big.Int).Mul(big.NewInt(10), big.NewInt(1_000_000_000))
	if stats.Neurons.Cmp(tenBillion) < 0 {
		t.Fatalf("full-scale neurons = %v, want ≥ 1e10", stats.Neurons)
	}
	tenTrillion := new(big.Int).Mul(big.NewInt(10_000), big.NewInt(1_000_000_000))
	if stats.Synapses.Cmp(tenTrillion) < 0 {
		t.Fatalf("full-scale synapses = %v, want ≥ 1e13", stats.Synapses)
	}
	if stats.NeuronRatio < 0.1 || stats.NeuronRatio > 10 {
		t.Fatalf("neuron ratio %g implausible", stats.NeuronRatio)
	}
}

func TestFigConfigsValidate(t *testing.T) {
	for _, cfg := range []Config{Fig1Config(), Fig2Config()} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("preset config invalid: %v", err)
		}
	}
	if _, err := Fig5Config(4); err != nil {
		t.Fatalf("Fig5Config(4): %v", err)
	}
	if _, err := Fig5Config(7); err != nil {
		t.Fatalf("Fig5Config(7) prime: %v", err)
	}
}
