package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/radix-net/radixnet/internal/radix"
)

func TestValidateConstraints(t *testing.T) {
	s224 := radix.MustNew(2, 2, 4) // product 16
	s44 := radix.MustNew(4, 4)     // product 16
	s23 := radix.MustNew(2, 3)     // product 6

	cases := []struct {
		name    string
		systems []radix.System
		shape   []int
		wantErr error
	}{
		{"no systems", nil, nil, ErrNoSystems},
		{"single system", []radix.System{s224}, nil, nil},
		{"equal products", []radix.System{s224, s44}, nil, nil},
		{"product mismatch", []radix.System{s224, s23}, nil, ErrNotDivisor},
		{"mismatch in middle", []radix.System{s224, s23, s44}, nil, ErrProductMismatch},
		{"divisor last ok", []radix.System{s224, radix.MustNew(2, 4)}, nil, nil},
		{"non-divisor last", []radix.System{s224, radix.MustNew(2, 3)}, nil, ErrNotDivisor},
		{"good shape", []radix.System{s224}, []int{1, 2, 3, 1}, nil},
		{"short shape", []radix.System{s224}, []int{1, 2, 3}, ErrBadShape},
		{"long shape", []radix.System{s224}, []int{1, 2, 3, 4, 5}, ErrBadShape},
		{"zero in shape", []radix.System{s224}, []int{1, 0, 3, 1}, ErrBadShape},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewConfig(tc.systems, tc.shape)
			if tc.wantErr == nil && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("error = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestValidateEmptySystem(t *testing.T) {
	cfg := Config{Systems: []radix.System{{}}}
	if err := cfg.Validate(); err == nil {
		t.Fatal("zero-value system accepted")
	}
}

func TestAccessors(t *testing.T) {
	s := radix.MustNew(3, 3, 4)
	last := radix.MustNew(6, 2)
	cfg, err := NewConfig([]radix.System{s, last}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NPrime() != 36 || cfg.LastProduct() != 12 {
		t.Fatalf("N′=%d N″=%d", cfg.NPrime(), cfg.LastProduct())
	}
	if cfg.NumSystems() != 2 || cfg.TotalRadices() != 5 {
		t.Fatalf("M=%d 𝕄=%d", cfg.NumSystems(), cfg.TotalRadices())
	}
	flat := cfg.FlatRadices()
	want := []int{3, 3, 4, 6, 2}
	for i, w := range want {
		if flat[i] != w {
			t.Fatalf("FlatRadices = %v, want %v", flat, want)
		}
	}
	shape := cfg.ShapeOrOnes()
	if len(shape) != 6 {
		t.Fatalf("ShapeOrOnes len = %d, want 6", len(shape))
	}
	for _, d := range shape {
		if d != 1 {
			t.Fatalf("nil shape must expand to ones, got %v", shape)
		}
	}
	widths := cfg.LayerWidths()
	for _, w := range widths {
		if w != 36 {
			t.Fatalf("widths = %v", widths)
		}
	}
}

func TestNumEdgesMatchesBuiltProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randomConfig(rng)
		if cfg.NPrime() > 64 {
			return true
		}
		g, err := Build(cfg)
		if err != nil {
			return false
		}
		return cfg.NumEdges().Int64() == int64(g.NumEdges()) &&
			cfg.DenseEdges().Int64() == int64(g.DenseEdges()) &&
			cfg.NumNodes().Int64() == int64(g.NumNodes())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestEq4DensityMatchesMeasuredProperty pins eq. (4): the closed-form
// density equals the built topology's measured density exactly.
func TestEq4DensityMatchesMeasuredProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := randomConfig(rng)
		if cfg.NPrime() > 64 {
			return true
		}
		g, err := Build(cfg)
		if err != nil {
			return false
		}
		exact := Density(cfg)
		measured := g.Density()
		diff := exact - measured
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestEq5ShapeInsensitivity pins the paper's claim that for small radix
// variance the dense shape {Di} has negligible effect on density: for a
// zero-variance config the density is exactly µ/N′ for EVERY shape.
func TestEq5ShapeInsensitivity(t *testing.T) {
	sys := radix.MustNew(4, 4) // µ = 4, N′ = 16
	base := DensityApproxMu(4, 16)
	shapes := [][]int{
		nil,
		{1, 1, 1},
		{3, 1, 2},
		{5, 7, 2},
		{1, 10, 1},
	}
	for _, shape := range shapes {
		cfg, err := NewConfig([]radix.System{sys}, shape)
		if err != nil {
			t.Fatal(err)
		}
		if d := Density(cfg); d != base {
			t.Fatalf("shape %v changed zero-variance density: %g vs %g", shape, d, base)
		}
	}
	// With nonzero variance the shape moves density, but stays within the
	// min/max radix bounds divided by N′.
	sysVar := radix.MustNew(2, 8) // µ = 5, N′ = 16
	for _, shape := range shapes {
		cfg, err := NewConfig([]radix.System{sysVar}, shape)
		if err != nil {
			t.Fatal(err)
		}
		d := Density(cfg)
		if d < 2.0/16 || d > 8.0/16 {
			t.Fatalf("density %g outside radix bounds", d)
		}
	}
}

// TestEq6UniformExactness: at zero radix variance eq. (6) is exact.
func TestEq6UniformExactness(t *testing.T) {
	for mu := 2; mu <= 6; mu++ {
		for d := 1; d <= 4; d++ {
			cfg, err := UniformConfig(mu, d, 1, 1)
			if err != nil {
				t.Fatal(err)
			}
			exact := Density(cfg)
			approx := DensityApproxMuD(float64(mu), float64(d))
			diff := exact - approx
			if diff < 0 {
				diff = -diff
			}
			if diff > 1e-12 {
				t.Fatalf("µ=%d d=%d: exact %g vs approx %g", mu, d, exact, approx)
			}
		}
	}
}

func TestDepthAndMeanRadix(t *testing.T) {
	cfg, _ := NewConfig([]radix.System{radix.MustNew(4, 4, 4)}, nil)
	if mu := cfg.MeanRadix(); mu != 4 {
		t.Fatalf("µ = %g", mu)
	}
	if d := cfg.Depth(); d < 2.999 || d > 3.001 {
		t.Fatalf("d = %g, want 3", d)
	}
	if v := cfg.RadixVariance(); v != 0 {
		t.Fatalf("variance = %g", v)
	}
	mixed, _ := NewConfig([]radix.System{radix.MustNew(2, 8)}, nil)
	if v := mixed.RadixVariance(); v != 9 {
		t.Fatalf("variance = %g, want 9", v)
	}
}

func TestDensityMapGrid(t *testing.T) {
	cells := DensityMap(2, 4, 1, 3)
	if len(cells) != 9 {
		t.Fatalf("cells = %d, want 9", len(cells))
	}
	for _, c := range cells {
		if !c.Valid {
			t.Fatalf("cell µ=%d d=%d invalid on small grid", c.Mu, c.Depth)
		}
		// eq. (6) exactness at zero variance.
		diff := c.Exact - c.Approx
		if diff < 0 {
			diff = -diff
		}
		if diff > 1e-12 {
			t.Fatalf("µ=%d d=%d: exact %g vs approx %g", c.Mu, c.Depth, c.Exact, c.Approx)
		}
		// Monotone: density falls with both µ (for d>1) and d.
		if c.Depth > 1 && c.Exact >= 1 {
			t.Fatalf("µ=%d d=%d: density %g not < 1", c.Mu, c.Depth, c.Exact)
		}
	}
}

func TestDensityMapOverflowCells(t *testing.T) {
	cells := DensityMap(2, 2, 62, 65)
	overflowed := false
	for _, c := range cells {
		if c.Overfl {
			overflowed = true
			if c.Valid {
				t.Fatal("overflowed cell marked valid")
			}
		}
	}
	if !overflowed {
		t.Fatal("2^64-scale cells must be flagged as overflow")
	}
}

func TestConfigString(t *testing.T) {
	cfg, _ := NewConfig([]radix.System{radix.MustNew(3, 3, 4), radix.MustNew(2, 3)}, nil)
	s := cfg.String()
	if !strings.Contains(s, "(3,3,4)") || !strings.Contains(s, "(2,3)") {
		t.Fatalf("String = %q", s)
	}
	withShape, _ := NewConfig([]radix.System{radix.MustNew(2, 2)}, []int{1, 2, 1})
	if !strings.Contains(withShape.String(), "D=(1,2,1)") {
		t.Fatalf("String = %q", withShape.String())
	}
}

func TestNewConfigCopiesInputs(t *testing.T) {
	systems := []radix.System{radix.MustNew(2, 2)}
	shape := []int{1, 2, 1}
	cfg, err := NewConfig(systems, shape)
	if err != nil {
		t.Fatal(err)
	}
	shape[1] = 99
	if cfg.Shape[1] != 2 {
		t.Fatal("NewConfig must copy the shape slice")
	}
}
