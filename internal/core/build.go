package core

import (
	"fmt"

	"github.com/radix-net/radixnet/internal/parallel"
	"github.com/radix-net/radixnet/internal/radix"
	"github.com/radix-net/radixnet/internal/sparse"
	"github.com/radix-net/radixnet/internal/topology"
)

// MixedRadix returns the mixed-radix topology induced by the numeral system
// N (§III.A, Fig. 1): L+1 layers of N′ nodes where node j of layer i−1
// connects to nodes j + n·νi (mod N′) for n ∈ {0, …, Ni−1}, with νi the
// place value of digit i. Equivalently Wi = Σ_n P^{n·νi} (eq. 1–2).
func MixedRadix(sys radix.System) *topology.FNNT {
	g, err := mixedRadixOn(sys.Product(), sys)
	if err != nil {
		panic("core: mixed-radix construction cannot fail on its own product: " + err.Error())
	}
	return g
}

// mixedRadixOn builds the mixed-radix topology of sys on n nodes per layer.
// The paper's generator (Fig. 6) always uses n = N′ even for the last
// system, whose own product may be a proper divisor of N′; the shifts then
// wrap modulo N′.
func mixedRadixOn(n int, sys radix.System) (*topology.FNNT, error) {
	if sys.Len() == 0 {
		return nil, radix.ErrEmpty
	}
	if n < 1 || n%sys.Product() != 0 {
		return nil, fmt.Errorf("core: system product %d must divide layer width %d", sys.Product(), n)
	}
	subs := make([]*sparse.Pattern, sys.Len())
	parallel.BlocksGrain(sys.Len(), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := sys.Radix(i)
			pv := sys.PlaceValue(i)
			shifts := make([]int, r)
			for j := 0; j < r; j++ {
				shifts[j] = j * pv
			}
			subs[i] = sparse.SumOfShifts(n, shifts)
		}
	})
	return topology.New(subs...)
}

// EMR returns the extended mixed-radix topology of the given systems: the
// concatenation of their mixed-radix topologies with output layers
// identified label-wise with the next input layer (§III.A, Fig. 2). This is
// the RadiX-Net with all-ones dense shape (Lemma 2).
func EMR(systems ...radix.System) (*topology.FNNT, error) {
	cfg, err := NewConfig(systems, nil)
	if err != nil {
		return nil, err
	}
	return Build(cfg)
}

// Build generates the RadiX-Net topology of cfg by the algorithm of Fig. 6:
// for each system, accumulate Wi = Σ_j P^{j·pv} on N′ nodes with the place
// value pv running within the system; then Kronecker-lift each Wi with the
// all-ones Di−1×Di block of the dense shape (eq. 3).
//
// Layer submatrices are constructed in parallel; the Kronecker lift
// parallelizes over row blocks.
func Build(cfg Config) (*topology.FNNT, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	np := cfg.NPrime()

	// Pass 1: mixed-radix submatrices on N′ nodes, one per radix, across all
	// systems (the W array of Fig. 6 before the Kronecker step).
	type layerSpec struct {
		radixVal   int
		placeValue int
	}
	specs := make([]layerSpec, 0, cfg.TotalRadices())
	for _, sys := range cfg.Systems {
		for i := 0; i < sys.Len(); i++ {
			specs = append(specs, layerSpec{radixVal: sys.Radix(i), placeValue: sys.PlaceValue(i)})
		}
	}
	mrSubs := make([]*sparse.Pattern, len(specs))
	parallel.BlocksGrain(len(specs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			shifts := make([]int, specs[i].radixVal)
			for j := range shifts {
				shifts[j] = j * specs[i].placeValue
			}
			mrSubs[i] = sparse.SumOfShifts(np, shifts)
		}
	})

	// Pass 2: Kronecker lift with the dense shape (eq. 3).
	shape := cfg.ShapeOrOnes()
	subs := make([]*sparse.Pattern, len(mrSubs))
	for i, w := range mrSubs {
		if shape[i] == 1 && shape[i+1] == 1 {
			subs[i] = w // 1⊗W = W; skip the copy
			continue
		}
		subs[i] = sparse.Ones(shape[i], shape[i+1]).Kron(w)
	}
	return topology.New(subs...)
}

// BuildReference generates the same topology as Build but directly from the
// definitions in §III.A — explicit edge enumeration j → j+n·νi (mod N′)
// into a coordinate builder, followed by definitional block replication for
// the Kronecker lift. It exists as an independent implementation against
// which Build is property-tested (experiment E5) and is exported for the
// verification command.
func BuildReference(cfg Config) (*topology.FNNT, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	np := cfg.NPrime()
	shape := cfg.ShapeOrOnes()

	subs := make([]*sparse.Pattern, 0, cfg.TotalRadices())
	layer := 0
	for _, sys := range cfg.Systems {
		for i := 0; i < sys.Len(); i++ {
			dPrev, dNext := shape[layer], shape[layer+1]
			coo, err := sparse.NewCOO(dPrev*np, dNext*np)
			if err != nil {
				return nil, err
			}
			nu := sys.PlaceValue(i)
			for a := 0; a < dPrev; a++ {
				for b := 0; b < dNext; b++ {
					for r := 0; r < np; r++ {
						for n := 0; n < sys.Radix(i); n++ {
							c := (r + n*nu) % np
							if err := coo.Add(a*np+r, b*np+c); err != nil {
								return nil, err
							}
						}
					}
				}
			}
			subs = append(subs, coo.Pattern())
			layer++
		}
	}
	return topology.New(subs...)
}
