package core

import (
	"math"
	"reflect"
	"sort"
	"testing"
)

func TestOrderedFactorizationsSmall(t *testing.T) {
	got := OrderedFactorizations(8, 16)
	want := [][]int{{2, 2, 2}, {2, 4}, {4, 2}, {8}}
	sortFactorizations(got)
	sortFactorizations(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("factorizations of 8 = %v, want %v", got, want)
	}
}

func TestOrderedFactorizationsPrime(t *testing.T) {
	got := OrderedFactorizations(7, 16)
	if len(got) != 1 || len(got[0]) != 1 || got[0][0] != 7 {
		t.Fatalf("factorizations of 7 = %v", got)
	}
}

func TestOrderedFactorizationsProductsInvariant(t *testing.T) {
	for _, n := range []int{12, 36, 64, 100} {
		for _, f := range OrderedFactorizations(n, 16) {
			prod := 1
			for _, v := range f {
				if v < 2 {
					t.Fatalf("factor %d < 2 in %v", v, f)
				}
				prod *= v
			}
			if prod != n {
				t.Fatalf("factorization %v of %d multiplies to %d", f, n, prod)
			}
		}
	}
}

func TestOrderedFactorizationsLengthCap(t *testing.T) {
	got := OrderedFactorizations(64, 2)
	for _, f := range got {
		if len(f) > 2 {
			t.Fatalf("factorization %v exceeds cap", f)
		}
	}
	// 64 = 2^6 has factorizations of length ≤ 2: (64), (2,32), (32,2),
	// (4,16), (16,4), (8,8).
	if len(got) != 6 {
		t.Fatalf("got %d capped factorizations, want 6: %v", len(got), got)
	}
}

func TestOrderedFactorizationsInvalid(t *testing.T) {
	if f := OrderedFactorizations(1, 4); f != nil {
		t.Fatalf("factorizations of 1 = %v", f)
	}
	if f := OrderedFactorizations(0, 4); f != nil {
		t.Fatalf("factorizations of 0 = %v", f)
	}
}

func sortFactorizations(fs [][]int) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

func TestSearchFindsExactTarget(t *testing.T) {
	// Width 256, density 1/16, 4 layers → systems (16,16) tiled twice.
	cands, err := Search(SearchSpec{Width: 256, Density: 1.0 / 16, EdgeLayers: 4, Tolerance: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates for an exactly-achievable target")
	}
	best := cands[0]
	if best.DensityErr > 1e-9 {
		t.Fatalf("best candidate density %g, want exactly 1/16", best.Density)
	}
	if best.Config.TotalRadices() != 4 {
		t.Fatalf("best candidate has %d layers, want 4", best.Config.TotalRadices())
	}
	// The winning candidate must actually build and verify.
	g, err := Build(best.Config)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Symmetric(); !ok {
		t.Fatal("search returned a non-symmetric candidate")
	}
	if math.Abs(g.Density()-1.0/16) > 1e-12 {
		t.Fatalf("built density %g", g.Density())
	}
}

func TestSearchRanksLowVarianceFirst(t *testing.T) {
	// At density 1/8 and width 64 both (8,8) (var 0) and mixes like (4,16)
	// can come close; the zero-variance one must rank first among equal
	// errors.
	cands, err := Search(SearchSpec{Width: 64, Density: 0.125, EdgeLayers: 2, Tolerance: 0.5, MaxResults: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 2 {
		t.Fatalf("expected multiple candidates, got %d", len(cands))
	}
	best := cands[0]
	if best.Config.RadixVariance() != 0 || best.DensityErr > 1e-9 {
		t.Fatalf("best candidate should be the exact zero-variance (8,8): got %s (err %g)",
			best.Config, best.DensityErr)
	}
}

func TestSearchHandlesUnevenLayerCounts(t *testing.T) {
	// 5 layers with depth-2 systems → two full systems + a 1-radix tail
	// whose product divides N′.
	cands, err := Search(SearchSpec{Width: 64, Density: 0.125, EdgeLayers: 5, Tolerance: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Config.TotalRadices() != 5 {
			t.Fatalf("candidate %s has %d layers, want 5", c.Config, c.Config.TotalRadices())
		}
		if err := c.Config.Validate(); err != nil {
			t.Fatalf("candidate %s invalid: %v", c.Config, err)
		}
	}
}

func TestSearchValidation(t *testing.T) {
	if _, err := Search(SearchSpec{Width: 1, Density: 0.5, EdgeLayers: 2}); err == nil {
		t.Fatal("width 1 accepted")
	}
	if _, err := Search(SearchSpec{Width: 64, Density: 0, EdgeLayers: 2}); err == nil {
		t.Fatal("zero density accepted")
	}
	if _, err := Search(SearchSpec{Width: 64, Density: 2, EdgeLayers: 2}); err == nil {
		t.Fatal("density > 1 accepted")
	}
	if _, err := Search(SearchSpec{Width: 64, Density: 0.5, EdgeLayers: 0}); err == nil {
		t.Fatal("zero layers accepted")
	}
}

func TestSearchImpossibleTargetEmpty(t *testing.T) {
	// Width 7 (prime) admits only the dense (7) system with density 1; a
	// 0.01 target within 25% is unreachable.
	cands, err := Search(SearchSpec{Width: 7, Density: 0.01, EdgeLayers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Fatalf("impossible target returned %d candidates", len(cands))
	}
}

func TestSearchRespectsMaxResults(t *testing.T) {
	cands, err := Search(SearchSpec{Width: 64, Density: 0.2, EdgeLayers: 2, Tolerance: 1, MaxResults: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) > 3 {
		t.Fatalf("got %d candidates, cap was 3", len(cands))
	}
}
