package core

import (
	"fmt"
	"math/big"

	"github.com/radix-net/radixnet/internal/radix"
)

// UniformConfig returns a RadiX-Net config whose systems are all the
// ordinary base-`base` positional system with `depth` digits, repeated
// `numSystems` times, lifted with a constant dense shape `lift` at every
// layer. This is the zero-variance family for which the paper's density
// approximation (6) is exact: ΔG = base^{−(depth−1)}.
func UniformConfig(base, depth, numSystems, lift int) (Config, error) {
	if numSystems < 1 {
		return Config{}, ErrNoSystems
	}
	if lift < 1 {
		return Config{}, fmt.Errorf("%w: lift %d", ErrBadShape, lift)
	}
	sys, err := radix.Uniform(base, depth)
	if err != nil {
		return Config{}, err
	}
	systems := make([]radix.System, numSystems)
	for i := range systems {
		systems[i] = sys
	}
	var shape []int
	if lift > 1 {
		shape = make([]int, numSystems*depth+1)
		for i := range shape {
			shape[i] = lift
		}
		// Keep input and output layers at the natural width so the config
		// composes with datasets sized to N′.
		shape[0], shape[len(shape)-1] = 1, 1
	}
	return NewConfig(systems, shape)
}

// Fig1Config returns the paper's Figure 1 example: the mixed-radix topology
// of N = (2,2,2) as a single-system RadiX-Net.
func Fig1Config() Config {
	cfg, err := NewConfig([]radix.System{radix.MustNew(2, 2, 2)}, nil)
	if err != nil {
		panic("core: Fig1Config must validate: " + err.Error())
	}
	return cfg
}

// Fig2Config returns the concatenation sketched in Figure 2: three copies of
// N = (3,3,4) followed by a final system whose product divides N′ = 36.
func Fig2Config() Config {
	s := radix.MustNew(3, 3, 4)
	last := radix.MustNew(2, 3) // product 6, divides 36
	cfg, err := NewConfig([]radix.System{s, s, s, last}, nil)
	if err != nil {
		panic("core: Fig2Config must validate: " + err.Error())
	}
	return cfg
}

// Fig5Config returns the Figure 5 example shape D = (3,5,4,2) over three
// single-radix systems sharing N′: the figure's three Kronecker factors
// W*1⊗W1, W*2⊗W2, W*3⊗W3.
func Fig5Config(nprime int) (Config, error) {
	sys, err := radix.Factorize(nprime)
	if err != nil {
		return Config{}, err
	}
	if sys.Len() != 1 {
		// Use three single-radix systems of equal product when nprime is
		// prime; otherwise fall back to three full systems.
		sys = radix.MustNew(nprime)
	}
	systems := []radix.System{sys, sys, sys}
	return NewConfig(systems, []int{3, 5, 4, 2})
}

// GraphChallengeConfig returns a RadiX-Net configuration emulating the
// synthetic sparse DNNs of the MIT/IEEE/Amazon Graph Challenge, which were
// generated with the authors' RadiX-Net code: `layers` edge layers of
// `width` neurons each.
//
// The base network uses N′ = 1024 with systems (32,32), giving every neuron
// 32 connections at width 1024 — the challenge's connectivity. Widths that
// are multiples of 1024 are reached with a uniform Kronecker lift
// Di = width/1024, which scales per-neuron fan-in proportionally (the
// official challenge data kept fan-in at 32 by further subsampling, a step
// outside the RadiX-Net algebra; see EXPERIMENTS.md E10 for the
// substitution note). `layers` must be even so it divides into (32,32)
// systems.
func GraphChallengeConfig(width, layers int) (Config, error) {
	const base = 1024
	if width < base || width%base != 0 {
		return Config{}, fmt.Errorf("core: graph challenge width %d must be a positive multiple of %d", width, base)
	}
	if layers < 2 || layers%2 != 0 {
		return Config{}, fmt.Errorf("core: graph challenge layer count %d must be a positive even number", layers)
	}
	sys := radix.MustNew(32, 32)
	systems := make([]radix.System, layers/2)
	for i := range systems {
		systems[i] = sys
	}
	lift := width / base
	var shape []int
	if lift > 1 {
		shape = make([]int, layers+1)
		for i := range shape {
			shape[i] = lift
		}
	}
	return NewConfig(systems, shape)
}

// BrainStats summarizes a brain-scale configuration against its biological
// targets (experiment E11, substituting for Wang & Kepner's "Building a
// brain").
type BrainStats struct {
	Config      Config
	Neurons     *big.Int // total nodes
	Synapses    *big.Int // total edges
	Density     float64
	MeanDegree  float64 // synapses per neuron (directed, outgoing, interior layers)
	TargetNeur  *big.Int
	TargetSyn   *big.Int
	NeuronRatio float64 // Neurons / TargetNeur
	SynRatio    float64 // Synapses / TargetSyn
}

// HumanBrainNeurons is the commonly cited human brain neuron count (8.6e10).
var HumanBrainNeurons = big.NewInt(86_000_000_000)

// HumanBrainSynapses is a commonly cited human brain synapse count (1.5e14).
var HumanBrainSynapses = new(big.Int).Mul(big.NewInt(150), big.NewInt(1_000_000_000_000))

// BrainConfig builds a RadiX-Net whose size and sparsity approximate the
// human brain at a given linear scale factor in (0, 1]: scale = 1 targets
// ~8.6e10 neurons with ~10⁴ synapses per neuron. The construction uses
// systems (k, k) with k ≈ √(mean degree · something)… concretely: per-layer
// width w = D·N′ and per-neuron out-degree k·D for systems (k, k), solved so
// that total neurons ≈ scale·8.6e10 across `layerCount`+1 layers and degree
// ≈ 10⁴·scale^(1/3) stays biologically shaped at small scales.
func BrainConfig(scale float64, layerCount int) (BrainStats, error) {
	if scale <= 0 || scale > 1 {
		return BrainStats{}, fmt.Errorf("core: brain scale %g out of (0,1]", scale)
	}
	if layerCount < 2 || layerCount%2 != 0 {
		return BrainStats{}, fmt.Errorf("core: brain layer count %d must be even and ≥ 2", layerCount)
	}
	// Target degree ~1e4 at full scale; shrink gently with scale so small
	// demos stay runnable while keeping the density regime.
	targetNeurons := float64(86e9) * scale
	widthPerLayer := targetNeurons / float64(layerCount+1)
	// Choose k for systems (k,k): N′ = k², degree per neuron = k (with D=1).
	// Biological degree ≈ 1e4 needs k = 1e4 and N′ = 1e8; at reduced scale,
	// pick k as the largest radix with k² ≤ widthPerLayer and k ≤ 1e4.
	k := 2
	for (k+1)*(k+1) <= int(widthPerLayer) && k+1 <= 10_000 {
		k++
	}
	np := k * k
	lift := int(widthPerLayer) / np
	if lift < 1 {
		lift = 1
	}
	sys := radix.MustNew(k, k)
	systems := make([]radix.System, layerCount/2)
	for i := range systems {
		systems[i] = sys
	}
	var shape []int
	if lift > 1 {
		shape = make([]int, layerCount+1)
		for i := range shape {
			shape[i] = lift
		}
	}
	cfg, err := NewConfig(systems, shape)
	if err != nil {
		return BrainStats{}, err
	}
	stats := BrainStats{
		Config:     cfg,
		Neurons:    cfg.NumNodes(),
		Synapses:   cfg.NumEdges(),
		Density:    Density(cfg),
		MeanDegree: float64(k * lift),
		TargetNeur: new(big.Int).Set(HumanBrainNeurons),
		TargetSyn:  new(big.Int).Set(HumanBrainSynapses),
	}
	stats.NeuronRatio = ratioBig(stats.Neurons, stats.TargetNeur)
	stats.SynRatio = ratioBig(stats.Synapses, stats.TargetSyn)
	return stats, nil
}

func ratioBig(a, b *big.Int) float64 {
	fa, _ := new(big.Float).SetInt(a).Float64()
	fb, _ := new(big.Float).SetInt(b).Float64()
	if fb == 0 {
		return 0
	}
	return fa / fb
}
