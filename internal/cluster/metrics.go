package cluster

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/radix-net/radixnet/internal/obs"
)

// routerMetrics counts the router's own activity; per-backend forwarding
// stats live on Backend. All atomic, exported on /metrics as radixrouter_*.
type routerMetrics struct {
	requests   atomic.Int64 // POST /v1/infer requests received
	failovers  atomic.Int64 // attempts moved to the next replica
	backoffs   atomic.Int64 // 429 Retry-After backoffs honored
	unroutable atomic.Int64 // requests with no healthy owner (502/503)
	deadlines  atomic.Int64 // requests whose budget expired router-side (504)
	admin      atomic.Int64 // control-plane operations fanned out
	shed       atomic.Int64 // requests 429'd by autoscale class shedding
	scaleUps   atomic.Int64 // autoscale scale-out actuations applied
	scaleDowns atomic.Int64 // autoscale scale-in actuations applied

	// classes counts requests by QoS class name (unlabeled requests under
	// "default"). Written on the request path via sync.Map so an unbounded
	// client-chosen class vocabulary never needs a lock.
	classes sync.Map // string → *atomic.Int64
}

// classRequest counts one routed request against its class label. Callers
// must pass a label from the router's bounded vocabulary (Router.classLabel
// buckets unknown client strings as "other"), never a raw request string —
// the map and the exported series grow one entry per distinct label.
func (m *routerMetrics) classRequest(class string) {
	v, ok := m.classes.Load(class)
	if !ok {
		v, _ = m.classes.LoadOrStore(class, new(atomic.Int64))
	}
	v.(*atomic.Int64).Add(1)
}

// classCounts snapshots the per-class request counters, sorted by name.
func (m *routerMetrics) classCounts() (names []string, counts []int64) {
	byName := make(map[string]int64)
	m.classes.Range(func(k, v any) bool {
		byName[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	counts = make([]int64, len(names))
	for i, name := range names {
		counts[i] = byName[name]
	}
	return names, counts
}

// RouterMetricsSnapshot is a point-in-time copy of the router's counters.
type RouterMetricsSnapshot struct {
	Requests      int64            `json:"requests"`
	Failovers     int64            `json:"failovers"`
	Backoffs      int64            `json:"backoffs"`
	Unroutable    int64            `json:"unroutable"`
	Deadlines     int64            `json:"deadlines"`
	Admin         int64            `json:"admin"`
	Shed          int64            `json:"shed"`
	ScaleUps      int64            `json:"scale_ups"`
	ScaleDowns    int64            `json:"scale_downs"`
	ClassRequests map[string]int64 `json:"class_requests,omitempty"`
}

func (m *routerMetrics) snapshot() RouterMetricsSnapshot {
	s := RouterMetricsSnapshot{
		Requests:   m.requests.Load(),
		Failovers:  m.failovers.Load(),
		Backoffs:   m.backoffs.Load(),
		Unroutable: m.unroutable.Load(),
		Deadlines:  m.deadlines.Load(),
		Admin:      m.admin.Load(),
		Shed:       m.shed.Load(),
		ScaleUps:   m.scaleUps.Load(),
		ScaleDowns: m.scaleDowns.Load(),
	}
	names, counts := m.classCounts()
	if len(names) > 0 {
		s.ClassRequests = make(map[string]int64, len(names))
		for i, name := range names {
			s.ClassRequests[name] = counts[i]
		}
	}
	return s
}

// writeRouterMetrics renders the router's own series plus per-backend
// health and traffic gauges.
func writeRouterMetrics(w io.Writer, met *routerMetrics, backends []*Backend, uptimeSeconds float64) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("radixrouter_requests_total", "Inference requests received by the router.", met.requests.Load())
	counter("radixrouter_failovers_total", "Forward attempts retried on the next replica.", met.failovers.Load())
	counter("radixrouter_backoffs_total", "Retry-After backoffs honored on 429 responses.", met.backoffs.Load())
	counter("radixrouter_unroutable_total", "Requests dropped with no healthy owner.", met.unroutable.Load())
	counter("radixrouter_deadlines_total", "Requests whose deadline budget expired router-side (504 without a forward).", met.deadlines.Load())
	counter("radixrouter_admin_total", "Model control-plane operations (register/reload/unregister) fanned out.", met.admin.Load())
	counter("radixrouter_shed_total", "Requests 429'd router-side by autoscale class shedding.", met.shed.Load())
	counter("radixrouter_autoscale_up_total", "Autoscale scale-out actuations applied.", met.scaleUps.Load())
	counter("radixrouter_autoscale_down_total", "Autoscale scale-in actuations applied.", met.scaleDowns.Load())
	if names, counts := met.classCounts(); len(names) > 0 {
		fmt.Fprintf(w, "# HELP radixrouter_class_requests_total Inference requests received, by QoS class.\n# TYPE radixrouter_class_requests_total counter\n")
		for i, name := range names {
			fmt.Fprintf(w, "radixrouter_class_requests_total{class=%q} %d\n", name, counts[i])
		}
	}

	perBackend := []struct {
		name, help, typ string
		value           func(b *Backend) int64
	}{
		{"radixrouter_backend_healthy", "Whether the backend is in rotation (1) or ejected (0).", "gauge",
			func(b *Backend) int64 {
				if b.Healthy() {
					return 1
				}
				return 0
			}},
		{"radixrouter_backend_forwarded_total", "Requests answered by the backend.", "counter",
			func(b *Backend) int64 { return b.forwarded.Load() }},
		{"radixrouter_backend_failed_total", "Forward attempts lost to transport or 5xx errors.", "counter",
			func(b *Backend) int64 { return b.failed.Load() }},
		{"radixrouter_backend_probe_failures_total", "Health probes failed.", "counter",
			func(b *Backend) int64 { return b.probeFailures.Load() }},
	}
	for _, pm := range perBackend {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", pm.name, pm.help, pm.name, pm.typ)
		for _, b := range backends {
			fmt.Fprintf(w, "%s{backend=%q} %d\n", pm.name, b.id, pm.value(b))
		}
	}
	fmt.Fprintf(w, "# HELP radixrouter_backend_attempt_latency_seconds Round-trip latency of answered forward attempts, per backend.\n# TYPE radixrouter_backend_attempt_latency_seconds histogram\n")
	for _, b := range backends {
		b.attempt.Snapshot().WriteTo(w, "radixrouter_backend_attempt_latency_seconds", fmt.Sprintf("backend=%q", b.id), 1e9)
	}
	fmt.Fprintf(w, "# HELP radixrouter_uptime_seconds Router uptime.\n# TYPE radixrouter_uptime_seconds gauge\nradixrouter_uptime_seconds %g\n", uptimeSeconds)
}

// injectBackendLabel rewrites one Prometheus series line to carry a
// backend label, so per-model series scraped from different nodes stay
// distinguishable after the merge. "name 3" becomes
// "name{backend=\"id\"} 3"; "name{model=\"m\"} 3" becomes
// "name{model=\"m\",backend=\"id\"} 3". The exposition format's optional
// trailing timestamp ("name 3 1712345678000") survives untouched: the
// label set is located by brace, not by field position. An exemplar
// annotation is split off first — its own {trace_id=...} braces would
// otherwise be mistaken for the series label block — and reattached
// untouched. Lines it cannot parse are returned unchanged.
func injectBackendLabel(line, backend string) string {
	line, exemplar := obs.SplitExemplar(line)
	if exemplar != "" {
		return injectBackendLabelBare(line, backend) + " # " + exemplar
	}
	return injectBackendLabelBare(line, backend)
}

func injectBackendLabelBare(line, backend string) string {
	if open := strings.IndexByte(line, '{'); open >= 0 {
		// After the label block only value (and optional timestamp) follow,
		// so the line's last '}' closes the labels even when label values
		// themselves contain braces.
		close := strings.LastIndexByte(line, '}')
		if close < open {
			return line
		}
		if open == close-1 { // empty label set "name{}"
			return fmt.Sprintf("%s{backend=%q}%s", line[:open], backend, line[close+1:])
		}
		return fmt.Sprintf("%s,backend=%q%s", line[:close], backend, line[close:])
	}
	sp := strings.IndexByte(line, ' ')
	if sp <= 0 {
		return line
	}
	return fmt.Sprintf("%s{backend=%q}%s", line[:sp], backend, line[sp:])
}

// mergeBackendMetrics re-emits one backend's /metrics scrape with every
// series labeled backend=id. HELP/TYPE headers are emitted only the first
// time a metric name is seen across the fleet (seenMeta tracks that), per
// the exposition format's one-header-per-name rule.
func mergeBackendMetrics(w io.Writer, scrape, backendID string, seenMeta map[string]bool) {
	for _, line := range strings.Split(scrape, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			// "# HELP name ..." / "# TYPE name ..." → fields[2] is the name.
			if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				key := fields[1] + " " + fields[2]
				if seenMeta[key] {
					continue
				}
				seenMeta[key] = true
			}
			fmt.Fprintln(w, line)
			continue
		}
		fmt.Fprintln(w, injectBackendLabel(line, backendID))
	}
}
