package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// DefaultVnodes is the virtual-node count per backend when RingConfig leaves
// it zero. 128 points per node keeps the keyspace share of an N-node fleet
// within a few percent of 1/N while the ring stays small enough to rebuild
// on every membership change.
const DefaultVnodes = 128

// Ring is a consistent-hash ring with virtual nodes. Keys (model names) and
// node positions share one 64-bit FNV-1a hash space; a key's owners are the
// first distinct nodes clockwise from the key's hash. Membership changes
// move only the keyspace between the affected points — ~1/N of all keys per
// node joined or removed — which is the property that makes it the model-
// placement function for a radixserve fleet: growing the fleet re-places
// few models. Safe for concurrent use.
type Ring struct {
	vnodes int

	mu     sync.RWMutex
	nodes  map[string]struct{}
	points []ringPoint // sorted by hash, ties broken by node id
}

// ringPoint is one virtual node: a position on the hash circle owned by a
// backend id.
type ringPoint struct {
	hash uint64
	node string
}

// NewRing returns an empty ring placing each node at vnodes virtual
// positions (≤ 0 selects DefaultVnodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]struct{})}
}

// hashKey maps an arbitrary string onto the ring's hash circle: FNV-1a for
// the byte mixing, then a murmur3-style finalizer. The finalizer matters:
// raw FNV-1a of strings differing only in a trailing vnode digit differs
// mostly in low bits, which would cluster all of a node's virtual points in
// one arc and destroy the 1/N balance the ring exists for.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add places the nodes onto the ring (ignoring ids already present) and
// returns the ring for chaining.
func (r *Ring) Add(nodes ...string) *Ring {
	r.mu.Lock()
	defer r.mu.Unlock()
	changed := false
	for _, node := range nodes {
		if _, dup := r.nodes[node]; dup || node == "" {
			continue
		}
		r.nodes[node] = struct{}{}
		for v := 0; v < r.vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hashKey(node + "#" + strconv.Itoa(v)), node: node})
		}
		changed = true
	}
	if changed {
		sort.Slice(r.points, func(i, j int) bool {
			if r.points[i].hash != r.points[j].hash {
				return r.points[i].hash < r.points[j].hash
			}
			return r.points[i].node < r.points[j].node
		})
	}
	return r
}

// Remove takes a node off the ring; keys it owned fall to their next
// clockwise owners. Unknown ids are ignored.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len returns the number of nodes on the ring.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Nodes returns the ring membership in sorted order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	nodes := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	return nodes
}

// Walk visits the distinct nodes in ring order starting clockwise from
// key's hash, calling fn for each until fn returns false or every node has
// been visited. This is the primitive behind Owners and behind the
// router's failover order: the first node is the key's primary owner, the
// rest are its successors.
func (r *Ring) Walk(key string, fn func(node string) bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]struct{}, len(r.nodes))
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		if !fn(p.node) {
			return
		}
		if len(seen) == len(r.nodes) {
			return
		}
	}
}

// WalkSpread visits the distinct nodes in zone-diverse ring order: nodes
// are ranked by how many earlier nodes (in plain Walk order) share their
// zone, and visited by (rank, ring position) — one node per distinct zone
// first, then second nodes per zone, and so on. Every prefix of the visit
// order therefore touches min(len(prefix), zones) distinct zones, which is
// what makes the first R nodes a failure-domain-spread replica set and the
// R+1th a cross-zone failover candidate. zoneOf maps a node id to its zone;
// "" is itself a zone (an unzoned fleet degrades to exactly Walk order,
// because deferral preserves ring order). The reordering is a deterministic
// function of the walk sequence, so membership changes still move only the
// keyspace adjacent to the affected points — the ~1/N movement property
// survives zone awareness.
func (r *Ring) WalkSpread(key string, zoneOf func(node string) string, fn func(node string) bool) {
	if zoneOf == nil {
		r.Walk(key, fn)
		return
	}
	var nodes []string
	r.Walk(key, func(node string) bool {
		nodes = append(nodes, node)
		return true
	})
	if len(nodes) == 0 {
		return
	}
	ranks := make([]int, len(nodes))
	perZone := make(map[string]int, len(nodes))
	maxRank := 0
	for i, node := range nodes {
		z := zoneOf(node)
		ranks[i] = perZone[z]
		perZone[z]++
		if ranks[i] > maxRank {
			maxRank = ranks[i]
		}
	}
	for rank := 0; rank <= maxRank; rank++ {
		for i, node := range nodes {
			if ranks[i] != rank {
				continue
			}
			if !fn(node) {
				return
			}
		}
	}
}

// OwnersSpread is Owners with zone-diverse ordering: the first n nodes of
// WalkSpread — a replica set spread across min(n, zones) distinct failure
// domains, in cross-zone failover order.
func (r *Ring) OwnersSpread(key string, n int, zoneOf func(node string) string) []string {
	if n <= 0 {
		return nil
	}
	owners := make([]string, 0, n)
	r.WalkSpread(key, zoneOf, func(node string) bool {
		owners = append(owners, node)
		return len(owners) < n
	})
	return owners
}

// Owners returns the first n distinct nodes clockwise from key's hash —
// the key's replica set in failover order. Fewer than n nodes on the ring
// yields all of them.
func (r *Ring) Owners(key string, n int) []string {
	if n <= 0 {
		return nil
	}
	owners := make([]string, 0, n)
	r.Walk(key, func(node string) bool {
		owners = append(owners, node)
		return len(owners) < n
	})
	return owners
}

// String summarizes the ring for logs.
func (r *Ring) String() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return fmt.Sprintf("cluster.Ring{nodes: %d, vnodes: %d, points: %d}", len(r.nodes), r.vnodes, len(r.points))
}
