package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/radix-net/radixnet/internal/serve"
)

// stubBackend is an httptest radixserve lookalike whose /v1/infer behavior
// is settable after the router has computed placement.
type stubBackend struct {
	srv   *httptest.Server
	id    string
	calls atomic.Int64
	infer atomic.Value // http.HandlerFunc
}

func newStubBackend(t *testing.T) *stubBackend {
	t.Helper()
	b := &stubBackend{}
	b.infer.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(serve.InferResponse{Model: "m", Rows: 1, Outputs: [][]float64{{1}}})
	}))
	b.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			json.NewEncoder(w).Encode(serve.Health{Status: "ok"})
		case "/v1/infer":
			b.calls.Add(1)
			b.infer.Load().(http.HandlerFunc)(w, r)
		default:
			http.NotFound(w, r)
		}
	}))
	b.id = strings.TrimPrefix(b.srv.URL, "http://")
	t.Cleanup(b.srv.Close)
	return b
}

func postClass(t *testing.T, url, model, class string, deadlineMs float64) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(serve.InferRequest{
		Model: model, Class: class, DeadlineMs: deadlineMs, Inputs: [][]float64{{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/infer", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	dec := json.NewDecoder(resp.Body)
	var raw json.RawMessage
	if dec.Decode(&raw) == nil {
		buf.Write(raw)
	}
	return resp, []byte(buf.String())
}

// TestClassHeadersForwardedWithRemainingBudget: the router forwards the
// peeked class verbatim as X-Radix-Class and the deadline as the REMAINING
// millisecond budget in X-Radix-Deadline-Ms — strictly less than the
// original budget, since routing itself burned some.
func TestClassHeadersForwardedWithRemainingBudget(t *testing.T) {
	b := newStubBackend(t)
	var gotClass, gotDeadline atomic.Value
	b.infer.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotClass.Store(r.Header.Get(serve.HeaderClass))
		gotDeadline.Store(r.Header.Get(serve.HeaderDeadlineMs))
		json.NewEncoder(w).Encode(serve.InferResponse{Model: "m", Rows: 1, Outputs: [][]float64{{1}}, Class: "background"})
	}))
	rt, err := NewRouter(RouterConfig{Backends: []string{b.srv.URL}, Set: SetConfig{ProbeInterval: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	const budgetMs = 5000
	resp, body := postClass(t, ts.URL, "m", "background", budgetMs)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if c, _ := gotClass.Load().(string); c != "background" {
		t.Fatalf("backend saw class header %q, want background", c)
	}
	ds, _ := gotDeadline.Load().(string)
	rem, err := strconv.ParseFloat(ds, 64)
	if err != nil {
		t.Fatalf("deadline header %q unparseable: %v", ds, err)
	}
	if rem <= 0 || rem >= budgetMs {
		t.Fatalf("remaining budget %v ms, want in (0, %d)", rem, budgetMs)
	}
	// Unlabeled requests carry no class header.
	resp, _ = postClass(t, ts.URL, "m", "", 0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unlabeled: status %d", resp.StatusCode)
	}
	if c, _ := gotClass.Load().(string); c != "" {
		t.Fatalf("unlabeled request grew a class header %q", c)
	}
	// Arbitrary client-chosen class strings must not mint new metric labels
	// (unbounded series cardinality): they bucket under "other".
	for _, junk := range []string{"vip-0001", "vip-0002"} {
		if resp, _ := postClass(t, ts.URL, "m", junk, 0); resp.StatusCode == 0 {
			t.Fatal("junk-class post failed")
		}
	}
	snap := rt.Metrics()
	if snap.ClassRequests["background"] != 1 || snap.ClassRequests["default"] != 1 || snap.ClassRequests["other"] != 2 {
		t.Fatalf("class request counters: %+v", snap.ClassRequests)
	}
	if _, minted := snap.ClassRequests["vip-0001"]; minted {
		t.Fatal("client-chosen class string minted a metric label")
	}
}

// TestClassRetryBudgetBackgroundNoFailover: with the model's primary
// answering 500, an interactive request fails over to the replica and
// succeeds, while a background request (attempt budget 1) gets no failover
// and the fleet error is relayed.
func TestClassRetryBudgetBackgroundNoFailover(t *testing.T) {
	b1, b2 := newStubBackend(t), newStubBackend(t)
	byID := map[string]*stubBackend{b1.id: b1, b2.id: b2}
	rt, err := NewRouter(RouterConfig{
		Backends: []string{b1.srv.URL, b2.srv.URL},
		Replicas: 2,
		Set:      SetConfig{ProbeInterval: time.Hour, FailAfter: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	owners := rt.Placement("m")
	primary, replica := byID[owners[0]], byID[owners[1]]
	primary.infer.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	resp, body := postClass(t, ts.URL, "m", "interactive", 0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("interactive: status %d, want 200 via failover: %s", resp.StatusCode, body)
	}
	if by := resp.Header.Get("X-Radix-Backend"); by != replica.id {
		t.Fatalf("interactive answered by %s, want replica %s", by, replica.id)
	}
	if rt.Metrics().Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", rt.Metrics().Failovers)
	}
	replicaCalls := replica.calls.Load()

	resp, body = postClass(t, ts.URL, "m", "background", 0)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("background: status %d, want 503 (no failover budget): %s", resp.StatusCode, body)
	}
	if replica.calls.Load() != replicaCalls {
		t.Fatal("background request burned a failover attempt on the replica")
	}
	if rt.Metrics().Failovers != 1 {
		t.Fatalf("failovers = %d after background, want still 1", rt.Metrics().Failovers)
	}
	var e serve.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "1 replicas") {
		t.Fatalf("background error body %s (err %v), want the 1-replica budget named", body, err)
	}
}

// TestClass429BackoffSkippedForBackground: a backend 429 makes the router
// wait out Retry-After and retry for interactive traffic, but is relayed
// immediately for background (budget-1) traffic.
func TestClass429BackoffSkippedForBackground(t *testing.T) {
	b := newStubBackend(t)
	b.infer.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "queue full", Model: "m", Class: "background"})
	}))
	rt, err := NewRouter(RouterConfig{
		Backends:   []string{b.srv.URL},
		MaxBackoff: 30 * time.Millisecond,
		Set:        SetConfig{ProbeInterval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	start := time.Now()
	resp, _ := postClass(t, ts.URL, "m", "background", 0)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("background: status %d, want 429 relayed", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("background 429 relayed without Retry-After")
	}
	if b.calls.Load() != 1 {
		t.Fatalf("background: %d backend calls, want 1 (no backoff retry)", b.calls.Load())
	}
	if elapsed >= 30*time.Millisecond {
		t.Fatalf("background 429 took %v: the router slept a backoff it should skip", elapsed)
	}
	if rt.Metrics().Backoffs != 0 {
		t.Fatalf("backoffs = %d for background, want 0", rt.Metrics().Backoffs)
	}

	resp, _ = postClass(t, ts.URL, "m", "interactive", 0)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("interactive: status %d, want 429 after one backoff retry", resp.StatusCode)
	}
	if b.calls.Load() != 3 {
		t.Fatalf("interactive: %d total backend calls, want 3 (one backoff retry)", b.calls.Load())
	}
	if rt.Metrics().Backoffs != 1 {
		t.Fatalf("backoffs = %d, want 1", rt.Metrics().Backoffs)
	}
}

// TestClassDeadlineExpiredBeforeForward: a request arriving with an
// already-dead budget answers 504 — from the router without burning a
// forward, or from the backend's dequeue shed if the race goes the other
// way; either way the class is attributed.
func TestClassDeadlineExpiredBeforeForward(t *testing.T) {
	b := newStubBackend(t)
	rt, err := NewRouter(RouterConfig{Backends: []string{b.srv.URL}, Set: SetConfig{ProbeInterval: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	resp, body := postClass(t, ts.URL, "m", "batch", 0.000001)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	if rt.Metrics().Deadlines == 0 && b.calls.Load() == 0 {
		t.Fatal("neither the router's deadline counter nor a backend call accounts for the 504")
	}
	var e serve.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Class != "batch" {
		t.Fatalf("504 body %s: want class attribution (err %v)", body, err)
	}
}

// TestClass429BackoffRespectsDeadline: an interactive 429 whose Retry-After
// would sleep past the request's remaining budget answers 504 instead of
// sleeping.
func TestClass429BackoffRespectsDeadline(t *testing.T) {
	b := newStubBackend(t)
	b.infer.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "queue full", Model: "m"})
	}))
	rt, err := NewRouter(RouterConfig{
		Backends:   []string{b.srv.URL},
		MaxBackoff: time.Second,
		Set:        SetConfig{ProbeInterval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	start := time.Now()
	resp, _ := postClass(t, ts.URL, "m", "interactive", 50) // 50ms budget vs 1s Retry-After
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (backoff would outlive the budget)", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed >= time.Second {
		t.Fatalf("router slept the full Retry-After (%v) past the deadline", elapsed)
	}
	if rt.Metrics().Deadlines == 0 {
		t.Fatal("deadline counter not incremented")
	}
}
