// Package cluster is the horizontal-scaling layer over internal/serve: it
// turns a fleet of radixserve instances into one logical inference service
// behind a thin router tier. The RadiX-Net construction makes individual
// models cheap (density ≈ µ^{−(d−1)}); the ROADMAP north star is serving
// heavy traffic from millions of users, which takes many such models spread
// over many nodes — this package decides the spreading and hides it from
// clients.
//
// # Architecture
//
//	client ── POST /v1/infer ──▶ Router ──▶ owning radixserve replica
//	                              │  ▲            │
//	                              │  └── retry ◀──┘ (next replica on failure)
//	                              └── health prober ──▶ GET /healthz per node
//
// Ring — a consistent-hash ring with virtual nodes places models onto
// backends by model name. Each backend is hashed at Vnodes positions; a
// model's owners are the first Replicas distinct backends clockwise from
// the model's hash. Adding or removing one backend therefore moves only
// ~1/N of the keyspace, so fleet changes re-place few models.
//
// BackendSet — one probed Backend per radixserve instance. An active
// prober hits each node's GET /healthz every ProbeInterval (via
// serve.CheckHealth); FailAfter consecutive failures eject the node from
// rotation, and a single successful probe re-admits it. Forwarding errors
// count against the same consecutive-failure threshold, so a crashed node
// is ejected by the traffic that discovers it rather than waiting for the
// next probe tick. All per-backend stats are atomic.
//
// Router — the HTTP front end. It exposes the same API as a single
// radixserve instance: POST /v1/infer forwards the request body to the
// model's first healthy owner and, on a network error, 5xx, or missing
// model, fails over to the next replica (bounded by the replica count);
// HTTP 429 backpressure is honored by backing off per the backend's
// Retry-After header before one retry. GET /v1/models merges the fleet's
// model lists and reports ring placement; GET /metrics merges the fleet's
// Prometheus series (each line labeled with its backend) under the
// router's own radixrouter_* series; GET /healthz reports per-backend
// probe state. Because backends run the same deterministic engines,
// routed results are bit-identical to single-node inference — cmd/
// radixrouter's selftest proves exactly that, plus zero failed requests
// across a mid-load backend kill.
//
// QoS — the router is class-aware. It peeks the request's "class" and
// "deadline_ms" alongside the model name and forwards both to backends as
// the X-Radix-Class and X-Radix-Deadline-Ms headers, the latter recomputed
// per attempt to the budget REMAINING after earlier forwards and backoffs
// (a request that exhausts its budget router-side answers 504 without
// burning a forward). Retry budgets are class-aware (ClassRetries):
// background requests get one backend attempt and no 429 backoff wait by
// default, so a low-priority flood cannot burn the failover attempts and
// router goroutines that interactive traffic needs on a degraded fleet.
// Per-class request counts are exported as radixrouter_class_requests_total.
//
// Observability — the router speaks the same tracing and histogram
// dialect as the serve tier (internal/obs). Each routed request's trace
// ID (incoming X-Radix-Trace-Id or generated) is forwarded to the
// backend and echoed on the response; the router records route,
// attempt:<backend>, and backoff:<backend> spans into a bounded trace
// ring served by GET /debug/traces, and RouterConfig.SlowRequest logs
// slow routed requests with their span breakdown. GET /metrics adds
// per-backend attempt-latency histograms and — because every obs
// histogram shares one bucket ladder — re-exports the fleet's serve-tier
// histograms summed bucket-wise as radixrouter_model_* families, exactly
// the histogram a single node seeing all traffic would have exported.
// RouterConfig.Pprof mounts net/http/pprof on the router mux.
//
// Control plane — the router fans the serve-tier admin verbs out
// fleet-wide, so models move without restarting backends: POST /v1/models
// registers a model on its ring-intended replicas (placement-aware),
// while PUT and DELETE /v1/models/{name} reach every backend currently
// reporting the model (discovered by scraping /v1/models), because a
// reload or removal must hit every live copy — including copies parked on
// ring successors by earlier fleet changes. Per-backend outcomes are
// returned verbatim; partial failures answer 502 with the detail, and
// placement drift in the interim is absorbed by the 404-failover path.
package cluster
