package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// zoneMapFn adapts a map to WalkSpread's lookup.
func zoneMapFn(zones map[string]string) func(string) string {
	return func(node string) string { return zones[node] }
}

// TestWalkSpreadZoneDiversity is the placement property test: over random
// fleets and zone maps, the first R nodes of the zone-diverse walk touch at
// least min(R, zones) distinct zones, and the visit order is prefix-stable
// (OwnersSpread(n) is a prefix of OwnersSpread(n+1)) — the property that
// lets the autoscaler grow a replica set without moving existing replicas.
func TestWalkSpreadZoneDiversity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(30)
		zoneCount := 1 + rng.Intn(6)
		ring := NewRing(64)
		zones := make(map[string]string, n)
		zoneSet := make(map[string]bool)
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("node-%d-%d", trial, i)
			z := fmt.Sprintf("zone-%d", rng.Intn(zoneCount))
			ring.Add(id)
			zones[id] = z
			zoneSet[z] = true
		}
		distinct := len(zoneSet)
		zoneOf := zoneMapFn(zones)
		for k := 0; k < 20; k++ {
			key := fmt.Sprintf("model-%d", k)
			var prev []string
			for r := 1; r <= n; r++ {
				owners := ring.OwnersSpread(key, r, zoneOf)
				if len(owners) != r {
					t.Fatalf("trial %d key %q: OwnersSpread(%d) returned %d owners", trial, key, r, len(owners))
				}
				seen := make(map[string]bool)
				uniq := make(map[string]bool)
				for _, id := range owners {
					if uniq[id] {
						t.Fatalf("trial %d key %q: duplicate owner %q", trial, key, id)
					}
					uniq[id] = true
					seen[zoneOf(id)] = true
				}
				want := r
				if distinct < want {
					want = distinct
				}
				if len(seen) < want {
					t.Fatalf("trial %d key %q: %d replicas span %d zones, want >= %d (fleet has %d)",
						trial, key, r, len(seen), want, distinct)
				}
				for i := range prev {
					if prev[i] != owners[i] {
						t.Fatalf("trial %d key %q: OwnersSpread(%d) is not a prefix of OwnersSpread(%d): %v vs %v",
							trial, key, r-1, r, prev, owners)
					}
				}
				prev = owners
			}
		}
	}
}

// TestWalkSpreadUnzonedDegradesToWalk pins the compatibility contract: with
// no zones configured the zone-diverse walk is exactly the plain clockwise
// walk, so pre-zone fleets place identically after the upgrade.
func TestWalkSpreadUnzonedDegradesToWalk(t *testing.T) {
	ring := NewRing(0)
	for i := 0; i < 12; i++ {
		ring.Add(fmt.Sprintf("b%d:8080", i))
	}
	for k := 0; k < 40; k++ {
		key := fmt.Sprintf("model-%d", k)
		plain := ring.Owners(key, 12)
		spread := ring.OwnersSpread(key, 12, func(string) string { return "" })
		if len(plain) != len(spread) {
			t.Fatalf("key %q: length mismatch %d vs %d", key, len(plain), len(spread))
		}
		for i := range plain {
			if plain[i] != spread[i] {
				t.Fatalf("key %q: unzoned spread diverges from walk at %d: %v vs %v", key, i, plain, spread)
			}
		}
	}
}

// TestWalkSpreadKeyMovementOnZoneJoinLeave checks that zone awareness keeps
// consistent hashing's headline property: when a zone of nodes joins (or
// leaves), only roughly the joining zone's share of keys change their
// primary owner — not a wholesale reshuffle. The bound is deliberately
// loose (3x the fair share plus slack) to stay robust across seeds.
func TestWalkSpreadKeyMovementOnZoneJoinLeave(t *testing.T) {
	const existing, joining, keys = 12, 4, 2000
	zones := make(map[string]string)
	small := NewRing(DefaultVnodes)
	large := NewRing(DefaultVnodes)
	for i := 0; i < existing; i++ {
		id := fmt.Sprintf("old-%d", i)
		zones[id] = fmt.Sprintf("zone-%d", i%3)
		small.Add(id)
		large.Add(id)
	}
	for i := 0; i < joining; i++ {
		id := fmt.Sprintf("new-%d", i)
		zones[id] = "zone-new"
		large.Add(id)
	}
	zoneOf := zoneMapFn(zones)
	moved := 0
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("model-%d", k)
		before := small.OwnersSpread(key, 1, zoneOf)
		after := large.OwnersSpread(key, 1, zoneOf)
		if before[0] != after[0] {
			moved++
		}
	}
	// Fair share: joining/(existing+joining) of keys gain a new primary.
	// The zone-diverse reordering can shift a few more (a new first-of-zone
	// node outranks an old same-zone successor), hence the slack.
	share := float64(joining) / float64(existing+joining)
	frac := float64(moved) / keys
	if frac > 3*share {
		t.Fatalf("zone join moved %.1f%% of primaries, want <= %.1f%%", 100*frac, 300*share)
	}
	if moved == 0 {
		t.Fatal("zone join moved no keys: the new nodes own nothing")
	}
}
