package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/radix-net/radixnet/internal/graphio"
	"github.com/radix-net/radixnet/internal/infer"
	"github.com/radix-net/radixnet/internal/serve"
	"github.com/radix-net/radixnet/internal/sparse"
)

func TestRetryAfterParsing(t *testing.T) {
	const limit = time.Second
	for _, tc := range []struct {
		header string
		want   time.Duration
	}{
		{"0", 0},
		{"1", time.Second},
		{"30", limit}, // over the cap
		// The overflow regression: delta-seconds large enough that
		// secs*time.Second wraps negative must still honor the cap, not
		// turn into a hot retry.
		{"9999999999999", limit},
		{fmt.Sprint(int64(1) << 62), limit},
		{"-5", 100 * time.Millisecond},   // malformed → default
		{"soon", 100 * time.Millisecond}, // malformed → default
	} {
		if got := retryAfter(tc.header, limit); got != tc.want {
			t.Errorf("retryAfter(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
	// HTTP-date form: a date in the past means "retry now", a near-future
	// date waits roughly until then, a far-future date hits the cap.
	if got := retryAfter(time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat), limit); got != 0 {
		t.Errorf("past HTTP-date: %v, want 0", got)
	}
	if got := retryAfter(time.Now().Add(time.Hour).UTC().Format(http.TimeFormat), limit); got != limit {
		t.Errorf("far-future HTTP-date: %v, want cap %v", got, limit)
	}
	wait := retryAfter(time.Now().Add(3*time.Second).UTC().Format(http.TimeFormat), 10*time.Second)
	if wait <= time.Second || wait > 4*time.Second {
		t.Errorf("near-future HTTP-date: %v, want ~3s", wait)
	}
}

// fakeBackend is a scripted radixserve stand-in: healthy /healthz, an
// /v1/infer handler the test controls, and a static /v1/models listing.
func fakeBackend(t *testing.T, models []string, infer http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(serve.Health{Status: "ok", Models: len(models)})
	})
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		infos := make([]serve.ModelInfo, len(models))
		for i, m := range models {
			infos[i] = serve.ModelInfo{Name: m}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string][]serve.ModelInfo{"models": infos})
	})
	mux.HandleFunc("POST /v1/infer", infer)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func startRouter(t *testing.T, cfg RouterConfig) (*Router, string) {
	t.Helper()
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := rt.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		rt.Shutdown(ctx)
	})
	return rt, "http://" + addr
}

// TestClientDisconnectDoesNotEject is the ejection-storm regression test: a
// burst of clients abandoning slow requests must not count as backend
// failures. FailAfter is 1, so a single wrongly-charged cancellation would
// eject the only backend.
func TestClientDisconnectDoesNotEject(t *testing.T) {
	release := make(chan struct{})
	backend := fakeBackend(t, []string{"slow"}, func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(serve.InferResponse{Model: "slow", Rows: 1, Outputs: [][]float64{{1}}})
	})
	defer close(release)

	rt, url := startRouter(t, RouterConfig{
		Addr:     "127.0.0.1:0",
		Backends: []string{backend.Listener.Addr().String()},
		Replicas: 1,
		Set:      SetConfig{ProbeInterval: time.Hour, FailAfter: 1},
	})

	body, _ := json.Marshal(serve.InferRequest{Model: "slow", Inputs: [][]float64{{1}}})
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/infer", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
			t.Fatal("request unexpectedly completed before the client timeout")
		}
		cancel()
	}
	// Give the router's handler goroutines a beat to observe the
	// cancellations before asserting.
	time.Sleep(50 * time.Millisecond)
	b := rt.Set().Backends()[0]
	if !b.Healthy() {
		t.Fatal("client disconnects ejected a healthy backend")
	}
	if st := b.Status(); st.ConsecutiveFailures != 0 || st.Failed != 0 {
		t.Fatalf("client disconnects charged to the backend: %+v", st)
	}
}

// TestRouter429HugeRetryAfter: a backend advertising an absurd Retry-After
// must cost at most MaxBackoff before the second 429 is relayed — neither a
// hot retry (the overflow regression) nor a near-infinite wait.
func TestRouter429HugeRetryAfter(t *testing.T) {
	backend := fakeBackend(t, []string{"busy"}, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "9999999999999")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "saturated", Model: "busy"})
	})
	const maxBackoff = 80 * time.Millisecond
	rt, url := startRouter(t, RouterConfig{
		Addr:       "127.0.0.1:0",
		Backends:   []string{backend.Listener.Addr().String()},
		Replicas:   1,
		MaxBackoff: maxBackoff,
		Set:        SetConfig{ProbeInterval: time.Hour},
	})

	body, _ := json.Marshal(serve.InferRequest{Model: "busy", Inputs: [][]float64{{1}}})
	start := time.Now()
	resp, err := http.Post(url+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 relayed", resp.StatusCode)
	}
	if elapsed < maxBackoff/2 {
		t.Fatalf("second 429 after %v: backoff was not honored (hot retry)", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("second 429 after %v: absurd Retry-After escaped the %v cap", elapsed, maxBackoff)
	}
	if got := rt.Metrics().Backoffs; got != 1 {
		t.Fatalf("backoffs = %d, want 1", got)
	}
}

// adminDo issues one control-plane request against the router.
func adminDo(t *testing.T, method, url string, body []byte) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestAdminUnreachableBackendDemotesSuccess: when reload/unregister
// discovery cannot inventory a backend, the verb still runs on the
// reachable hosts but the response is demoted to 502 naming the blind
// spot — that backend may rejoin still holding a stale copy, and the
// operator must know the operation did not provably reach the whole
// fleet.
func TestAdminUnreachableBackendDemotesSuccess(t *testing.T) {
	deleted := false
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(serve.Health{Status: "ok", Models: 1})
	})
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string][]serve.ModelInfo{"models": {{Name: "m"}}})
	})
	mux.HandleFunc("DELETE /v1/models/m", func(w http.ResponseWriter, r *http.Request) {
		deleted = true
		json.NewEncoder(w).Encode(serve.AdminResponse{Model: "m", Status: "unregistered"})
	})
	alive := httptest.NewServer(mux)
	t.Cleanup(alive.Close)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadAddr := dead.Listener.Addr().String()
	dead.Close() // port now refuses connections

	rt, url := startRouter(t, RouterConfig{
		Addr:     "127.0.0.1:0",
		Backends: []string{alive.Listener.Addr().String(), deadAddr},
		Replicas: 2,
		Set:      SetConfig{ProbeInterval: time.Hour},
	})
	_ = rt
	code, body := adminDo(t, http.MethodDelete, url+"/v1/models/m", nil)
	if code != http.StatusBadGateway {
		t.Fatalf("unregister with a blind backend: status %d, want 502 (%s)", code, body)
	}
	var fan AdminFanoutResponse
	if err := json.Unmarshal(body, &fan); err != nil {
		t.Fatal(err)
	}
	if len(fan.Unreachable) != 1 || fan.Unreachable[0] != deadAddr {
		t.Fatalf("unreachable = %v, want [%s]", fan.Unreachable, deadAddr)
	}
	if !deleted {
		t.Fatal("reachable host was not unregistered")
	}
	if len(fan.Results) != 1 || fan.Results[0].Status != http.StatusOK {
		t.Fatalf("results = %+v", fan.Results)
	}
}

// TestRouterAdminFanout drives the fleet control plane end to end over
// real radixserve backends: register lands the model on exactly its
// ring-intended replicas, routed inference serves it bit-identically,
// reload bumps every copy's generation, unregister removes every copy and
// the router then answers 404.
func TestRouterAdminFanout(t *testing.T) {
	f := startFleet(t, 3, nil, SetConfig{ProbeInterval: time.Hour})
	cfgJSON, err := graphio.MarshalConfig(f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	regBody, err := json.Marshal(serve.RegisterRequest{Name: "live", Config: cfgJSON, Engines: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Register fleet-wide.
	code, body := adminDo(t, http.MethodPost, f.url+"/v1/models", regBody)
	if code != http.StatusCreated {
		t.Fatalf("register: status %d: %s", code, body)
	}
	var fan AdminFanoutResponse
	if err := json.Unmarshal(body, &fan); err != nil {
		t.Fatal(err)
	}
	owners := f.router.Placement("live")
	if len(fan.Targets) != len(owners) || len(fan.Results) != len(owners) {
		t.Fatalf("fanout targets %v, want placement %v", fan.Targets, owners)
	}
	for _, res := range fan.Results {
		if res.Status != http.StatusCreated {
			t.Fatalf("backend %s: status %d (%s)", res.Backend, res.Status, res.Error)
		}
	}
	for id, reg := range f.regs {
		_, has := reg.Model("live")
		shouldHave := false
		for _, o := range owners {
			if o == id {
				shouldHave = true
			}
		}
		if has != shouldHave {
			t.Fatalf("backend %s hosts=%v, want %v (placement-aware registration)", id, has, shouldHave)
		}
	}
	// Duplicate registration: every owner answers 409, and the router
	// relays the unanimous verdict.
	if code, _ = adminDo(t, http.MethodPost, f.url+"/v1/models", regBody); code != http.StatusConflict {
		t.Fatalf("duplicate register: status %d, want 409", code)
	}

	// The runtime-registered model routes and matches direct inference.
	eng, err := infer.FromConfig(f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float64, 16)
	row[3] = 1
	rowIn, err := sparse.DenseFromSlice(1, 16, row)
	if err != nil {
		t.Fatal(err)
	}
	y, err := eng.Infer(rowIn)
	if err != nil {
		t.Fatal(err)
	}
	resp, data := f.post(t, "live", [][]float64{row})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer on registered model: %d: %s", resp.StatusCode, data)
	}
	var iresp serve.InferResponse
	if err := json.Unmarshal(data, &iresp); err != nil {
		t.Fatal(err)
	}
	for c, v := range iresp.Outputs[0] {
		if v != y.Data()[c] {
			t.Fatalf("col %d: %v != %v", c, v, y.Data()[c])
		}
	}

	// Reload reaches every backend reporting the model.
	code, body = adminDo(t, http.MethodPut, f.url+"/v1/models/live", regBody)
	if code != http.StatusOK {
		t.Fatalf("reload: status %d: %s", code, body)
	}
	for _, id := range owners {
		m, ok := f.regs[id].Model("live")
		if !ok || m.Generation() != 2 {
			t.Fatalf("backend %s generation after fleet reload: %v", id, m)
		}
	}
	if code, _ = adminDo(t, http.MethodPut, f.url+"/v1/models/ghost", regBody); code != http.StatusNotFound {
		t.Fatalf("reload of unknown model: status %d, want 404", code)
	}

	// Unregister everywhere; the fleet then 404s.
	if code, body = adminDo(t, http.MethodDelete, f.url+"/v1/models/live", nil); code != http.StatusOK {
		t.Fatalf("unregister: status %d: %s", code, body)
	}
	for id, reg := range f.regs {
		if _, ok := reg.Model("live"); ok {
			t.Fatalf("backend %s still hosts the model after fleet unregister", id)
		}
	}
	resp, _ = f.post(t, "live", [][]float64{row})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("infer after unregister: status %d, want 404", resp.StatusCode)
	}
	if code, _ = adminDo(t, http.MethodDelete, f.url+"/v1/models/live", nil); code != http.StatusNotFound {
		t.Fatalf("double unregister: status %d, want 404", code)
	}
	if got := f.router.Metrics().Admin; got < 6 {
		t.Fatalf("admin ops counter = %d, want ≥6", got)
	}
}
