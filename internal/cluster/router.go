package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/radix-net/radixnet/internal/autoscale"
	"github.com/radix-net/radixnet/internal/obs"
	"github.com/radix-net/radixnet/internal/obs/slo"
	"github.com/radix-net/radixnet/internal/serve"
)

// maxRequestBody mirrors the per-backend bound in internal/serve: the
// router never buffers more of a request than a backend would accept.
const maxRequestBody = 64 << 20

// RouterConfig assembles a Router. Zero fields select defaults.
type RouterConfig struct {
	// Addr is the router's listen address (host:port; ":0" picks an
	// ephemeral port at Start).
	Addr string
	// Backends are the radixserve instances, as "host:port" or
	// "http://host:port". Required.
	Backends []string
	// Replicas is how many ring successors own each model — the failover
	// budget of one request. Default 2, capped at the backend count.
	Replicas int
	// MaxBackoff caps the Retry-After backoff honored on a backend 429.
	// Default 1s.
	MaxBackoff time.Duration
	// ClassRetries caps the backend attempts (first try + failovers) spent
	// on a request per QoS class, so low-priority traffic does not burn the
	// failover budget interactive requests need when the fleet is degraded.
	// A class capped at 1 also skips the router-side 429 Retry-After wait —
	// the backpressure is relayed for the client to pace itself. Classes
	// absent from the map (and unlabeled requests) get the full replica
	// walk. Nil selects DefaultClassRetries.
	ClassRetries map[string]int
	// MetricsClasses adds class names to the router's per-class metrics
	// vocabulary (the built-in serve classes and the ClassRetries keys are
	// always included). Requests naming a class outside the vocabulary are
	// counted under "other" — the label set must stay bounded against
	// client-chosen strings — so a fleet serving custom classes lists them
	// here to get real labels without touching retry policy.
	MetricsClasses []string
	// AdminTimeout bounds each per-backend request of a control-plane
	// fan-out (register/reload/unregister). These run longer than probes —
	// registration builds engines and unregister blocks on the model's
	// drain — but must stay finite so one wedged backend cannot stall an
	// admin verb forever. Default 60s.
	AdminTimeout time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/ on the router mux.
	// Opt-in: profiling endpoints stay off production routers by default.
	Pprof bool
	// SlowRequest, when positive, logs a structured slow-request record
	// (trace ID, model, class, per-span breakdown) for every routed
	// request whose end-to-end time meets the threshold. 0 disables.
	SlowRequest time.Duration
	// TraceDepth sets how many recent request traces the router retains
	// for GET /debug/traces. 0 selects obs.DefaultTraceDepth.
	TraceDepth int
	// Logger receives slow-request records. Nil selects slog.Default().
	Logger *slog.Logger
	// SLO configures burn-rate objectives the router evaluates against
	// the FLEET-merged histogram families (the whole fleet's traffic, not
	// one backend's) on GET /v1/slo and as radixrouter_slo_* gauges; no
	// objectives disables both.
	SLO slo.Config
	// Autoscale, when non-nil, runs the replica control loop: per-model
	// load (fleet-merged queue-wait p90, 429 rate, throughput) and SLO burn
	// state drive replica scale-up/down through the register/unregister
	// fan-out, bounded by the policy's hysteresis/cooldown/step/min/max.
	// See internal/autoscale for the policy contract. Enabling autoscale
	// also enables SpreadReplicas — scaling out a hot model only flattens
	// its tail if the replicas actually share the load.
	Autoscale *autoscale.Policy
	// SpreadReplicas rotates each request's healthy-owner walk so a
	// model's replicas share its load round-robin instead of the default
	// primary-owner routing (first healthy owner serves everything,
	// successors are failover spares). The failover budget is unchanged:
	// a request still walks every owner, just starting from a rotating
	// offset. Implied by Autoscale.
	SpreadReplicas bool
	// Set tunes health probing (interval, timeout, ejection threshold,
	// ring vnodes).
	Set SetConfig
}

// Router is the fleet's HTTP front end: it exposes the single-node
// radixserve API (POST /v1/infer, GET /v1/models, /healthz, /metrics) and
// forwards each inference request to the owning healthy backend with
// bounded retry-on-next-replica failover. The model control plane fans out
// fleet-wide: POST /v1/models registers a model on its ring-intended
// replicas, PUT /v1/models/{name} hot-reloads it on every backend that
// reports hosting it, DELETE /v1/models/{name} unregisters it likewise —
// so a fleet is (re)shardable without restarting backends. Construct with
// NewRouter, start with Start or ListenAndServe, stop with Shutdown.
type Router struct {
	set          *BackendSet
	replicas     int
	maxBackoff   time.Duration
	adminTimeout time.Duration
	classRetries map[string]int
	knownClasses map[string]bool
	client       *http.Client
	http         *http.Server
	start        time.Time
	met          routerMetrics
	traces       *obs.TraceRing
	slow         time.Duration
	log          *slog.Logger
	slo          *slo.Engine // nil = no objectives configured

	// Per-model dynamic state written by the autoscale control loop (and
	// the admin verbs): replica-count overrides consulted everywhere the
	// static replicas default was, the last register body per model (the
	// desired config a scale-out re-registers on new owners), and the QoS
	// class currently shed per model (last-resort SLO actuation).
	scaleMu     sync.RWMutex
	repOverride map[string]int
	regBodies   map[string][]byte
	shedClass   map[string]string

	scaler *autoscaler // nil = autoscaling disabled

	// spread rotates the owner walk per request (see
	// RouterConfig.SpreadReplicas); rr is the rotation cursor.
	spread bool
	rr     atomic.Uint64
}

// DefaultClassRetries is the per-class backend-attempt budget used when
// RouterConfig.ClassRetries is nil: background requests get one shot (no
// failover, no 429 wait), batch requests one failover, and everything else
// the full replica walk.
func DefaultClassRetries() map[string]int {
	return map[string]int{"background": 1, "batch": 2}
}

// NewRouter validates the config, builds the backend set and ring, and
// wires the HTTP front end. Probing starts with the router (Start or
// ListenAndServe).
func NewRouter(cfg RouterConfig) (*Router, error) {
	set, err := NewBackendSet(cfg.Backends, cfg.Set)
	if err != nil {
		return nil, err
	}
	replicas := cfg.Replicas
	if replicas <= 0 {
		replicas = 2
	}
	if n := len(set.Backends()); replicas > n {
		replicas = n
	}
	maxBackoff := cfg.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = time.Second
	}
	adminTimeout := cfg.AdminTimeout
	if adminTimeout <= 0 {
		adminTimeout = 60 * time.Second
	}
	classRetries := cfg.ClassRetries
	if classRetries == nil {
		classRetries = DefaultClassRetries()
	}
	// The per-class metrics vocabulary: the serve tier's built-ins, the
	// retry-policy classes, and any explicitly configured extras. Client-
	// supplied class strings outside this set are bucketed as "other" —
	// the label set (and routerMetrics.classes map) must not grow with
	// attacker-chosen request bodies.
	knownClasses := map[string]bool{
		serve.ClassInteractive: true, serve.ClassBatch: true, serve.ClassBackground: true,
	}
	for name := range classRetries {
		knownClasses[name] = true
	}
	for _, name := range cfg.MetricsClasses {
		knownClasses[name] = true
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	rt := &Router{
		set:          set,
		replicas:     replicas,
		maxBackoff:   maxBackoff,
		adminTimeout: adminTimeout,
		classRetries: classRetries,
		knownClasses: knownClasses,
		client:       set.cfg.Client,
		start:        time.Now(),
		traces:       obs.NewTraceRing(cfg.TraceDepth),
		slow:         cfg.SlowRequest,
		log:          logger,
		slo:          slo.New(cfg.SLO),
		repOverride:  make(map[string]int),
		regBodies:    make(map[string][]byte),
		shedClass:    make(map[string]string),
	}
	if cfg.Autoscale != nil {
		scaler, err := newAutoscaler(rt, *cfg.Autoscale)
		if err != nil {
			return nil, err
		}
		rt.scaler = scaler
	}
	rt.spread = cfg.SpreadReplicas || cfg.Autoscale != nil
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/infer", rt.handleInfer)
	mux.HandleFunc("GET /v1/models", rt.handleModels)
	mux.HandleFunc("POST /v1/models", rt.handleAdminRegister)
	mux.HandleFunc("PUT /v1/models/{name}", rt.handleAdminReload)
	mux.HandleFunc("DELETE /v1/models/{name}", rt.handleAdminUnregister)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("GET /v1/slo", rt.handleSLO)
	mux.HandleFunc("GET /v1/autoscale", rt.handleAutoscale)
	mux.Handle("GET /debug/traces", rt.traces.Handler())
	if cfg.Pprof {
		obs.RegisterPprof(mux)
	}
	rt.http = &http.Server{
		Addr:              cfg.Addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return rt, nil
}

// Set returns the router's backend set (for status inspection).
func (rt *Router) Set() *BackendSet { return rt.set }

// Metrics snapshots the router's counters.
func (rt *Router) Metrics() RouterMetricsSnapshot { return rt.met.snapshot() }

// Traces returns the router's bounded ring of recent request traces
// (the data behind GET /debug/traces).
func (rt *Router) Traces() *obs.TraceRing { return rt.traces }

// Replicas returns the default per-model replication factor (models the
// autoscaler has touched carry their own count — see ReplicasFor).
func (rt *Router) Replicas() int { return rt.replicas }

// ReplicasFor returns a model's effective replica count: the autoscaler's
// override when one exists, the configured default otherwise, capped at the
// fleet size. On the routing hot path for every inference request.
//
//radix:hotpath
func (rt *Router) ReplicasFor(model string) int {
	rt.scaleMu.RLock()
	n, ok := rt.repOverride[model]
	rt.scaleMu.RUnlock()
	if !ok || n <= 0 {
		return rt.replicas
	}
	if fleet := len(rt.set.backends); n > fleet {
		return fleet
	}
	return n
}

// setReplicas records a model's autoscaler-decided replica count (n <= 0
// clears the override, falling back to the configured default).
func (rt *Router) setReplicas(model string, n int) {
	rt.scaleMu.Lock()
	if n <= 0 {
		delete(rt.repOverride, model)
	} else {
		rt.repOverride[model] = n
	}
	rt.scaleMu.Unlock()
}

// registerBody returns the model's cached register request body — the
// desired config a scale-out re-registers on new owners — or nil when the
// model was never registered through this router.
func (rt *Router) registerBody(model string) []byte {
	rt.scaleMu.RLock()
	defer rt.scaleMu.RUnlock()
	return rt.regBodies[model]
}

// shedFor reports the QoS class currently being shed for a model ("" =
// none). Hot path: consulted once per routed request.
//
//radix:hotpath
func (rt *Router) shedFor(model string) string {
	rt.scaleMu.RLock()
	c := rt.shedClass[model]
	rt.scaleMu.RUnlock()
	return c
}

// setShed installs (class != "") or clears (class == "") a model's shed
// class — the autoscaler's last-resort actuation when an SLO objective
// stays violated at the replica ceiling.
func (rt *Router) setShed(model, class string) {
	rt.scaleMu.Lock()
	if class == "" {
		delete(rt.shedClass, model)
	} else {
		rt.shedClass[model] = class
	}
	rt.scaleMu.Unlock()
}

// Placement returns the ring's intended owners for a model, in failover
// order, health ignored.
func (rt *Router) Placement(model string) []string {
	return rt.set.Placement(model, rt.ReplicasFor(model))
}

// ScaleTo moves a model to n replicas through the admin fan-out: new ring
// owners get the model's cached register body POSTed (engines built before
// any traffic routes to them), surplus owners get a targeted DELETE whose
// server-side drain is lease-counted — in-flight batches finish on the old
// replica, so a scale-down drops zero requests. The replica override is
// raised only after scale-out registration completes and lowered before
// scale-in draining starts, so the routing walk never widens onto a backend
// that does not host the model yet nor keeps sending to one being drained.
// Returns the per-backend outcomes of whichever fan-out ran.
func (rt *Router) ScaleTo(ctx context.Context, model string, n int) ([]AdminResult, error) {
	cur := rt.ReplicasFor(model)
	if fleet := len(rt.set.backends); n > fleet {
		n = fleet
	}
	if n < 1 {
		n = 1
	}
	if n == cur {
		return nil, nil
	}
	curIDs := rt.set.Placement(model, cur)
	newIDs := rt.set.Placement(model, n)
	if n > cur {
		body := rt.registerBody(model)
		if body == nil {
			return nil, fmt.Errorf("cluster: cannot scale out %q: no cached register config (model was not registered through this router)", model)
		}
		had := make(map[string]bool, len(curIDs))
		for _, id := range curIDs {
			had[id] = true
		}
		var targets []*Backend
		for _, id := range newIDs {
			if b, ok := rt.set.Backend(id); ok && !had[id] {
				targets = append(targets, b)
			}
		}
		results := rt.fanOut(ctx, http.MethodPost, "/v1/models", body, targets)
		for _, res := range results {
			// 409 means the backend already hosts the model (a previous
			// scale-out or manual registration) — the desired state holds.
			if (res.Status < 200 || res.Status >= 300) && res.Status != http.StatusConflict {
				return results, fmt.Errorf("cluster: scale-out of %q to %d: backend %s answered %d %s",
					model, n, res.Backend, res.Status, res.Error)
			}
		}
		rt.setReplicas(model, n)
		return results, nil
	}
	rt.setReplicas(model, n)
	keep := make(map[string]bool, len(newIDs))
	for _, id := range newIDs {
		keep[id] = true
	}
	var targets []*Backend
	for _, id := range curIDs {
		if b, ok := rt.set.Backend(id); ok && !keep[id] {
			targets = append(targets, b)
		}
	}
	results := rt.fanOut(ctx, http.MethodDelete, "/v1/models/"+model, nil, targets)
	for _, res := range results {
		// 404 means the backend never actually hosted it (a failed earlier
		// registration): the desired state already holds.
		if (res.Status < 200 || res.Status >= 300) && res.Status != http.StatusNotFound {
			return results, fmt.Errorf("cluster: scale-in of %q to %d: backend %s answered %d %s",
				model, n, res.Backend, res.Status, res.Error)
		}
	}
	return results, nil
}

// Handler returns the router's root handler (for tests and embedding).
// Health probing must be started separately (Set().Start()) when the
// router is driven through its handler rather than Start.
func (rt *Router) Handler() http.Handler { return rt.http.Handler }

// Start begins health probing, listens on the configured address, and
// serves in the background, returning the bound address.
func (rt *Router) Start() (string, error) {
	ln, err := net.Listen("tcp", rt.http.Addr)
	if err != nil {
		return "", err
	}
	rt.set.Start()
	if rt.scaler != nil {
		rt.scaler.Start()
	}
	go func() {
		if err := rt.http.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			panic(fmt.Sprintf("cluster: router http server failed: %v", err))
		}
	}()
	return ln.Addr().String(), nil
}

// ListenAndServe begins health probing and serves on the configured
// address until Shutdown, returning http.ErrServerClosed on a clean stop.
func (rt *Router) ListenAndServe() error {
	rt.set.Start()
	if rt.scaler != nil {
		rt.scaler.Start()
	}
	return rt.http.ListenAndServe()
}

// Shutdown stops the front end gracefully (bounded by ctx) and halts
// health probing. The backends are not touched — they are independent
// processes with their own lifecycles — but the router's pooled
// connections to them are released: the transport parks speculatively
// dialed, never-used connections, and a backend's own graceful shutdown
// waits ~5s before reaping such connections (net/http treats young
// StateNew conns as possibly-about-to-send).
func (rt *Router) Shutdown(ctx context.Context) error {
	err := rt.http.Shutdown(ctx)
	if rt.scaler != nil {
		rt.scaler.Stop()
	}
	rt.set.Stop()
	rt.client.CloseIdleConnections()
	return err
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, model, format string, args ...any) {
	writeJSON(w, code, serve.ErrorResponse{Error: fmt.Sprintf(format, args...), Model: model})
}

// inferForward is one routed inference request's QoS and tracing state:
// the class the router peeked (forwarded verbatim), the absolute deadline
// derived from the body's deadline_ms at arrival (each forward attempt
// carries only the REMAINING budget, so failovers and backoffs shrink it
// instead of resetting it), whether the class's attempt budget permits
// waiting out a backend's 429 Retry-After, and the trace accumulated as
// the request moves through the owner walk — the span chain (route,
// attempt:<backend>, backoff:<backend>) plus the final status the client
// was answered with.
type inferForward struct {
	model        string
	class        string
	deadline     time.Time // zero = none
	allowBackoff bool

	traceID string
	t0      time.Time
	spans   []obs.Span
	status  int    // final HTTP status written to the client (0: none — client gone)
	backend string // the backend whose response was relayed, if any
	errMsg  string // error body text, for trace correlation
}

// span appends a named span covering start..now to the request's trace.
func (f *inferForward) span(name string, start time.Time) {
	f.spans = append(f.spans, obs.MkSpan(name, start.Sub(f.t0), time.Since(start)))
}

// remainingMs reports the milliseconds left in the request's budget, or 0
// when it has no deadline. ok=false means the budget is exhausted.
func (f *inferForward) remainingMs() (ms float64, ok bool) {
	if f.deadline.IsZero() {
		return 0, true
	}
	rem := time.Until(f.deadline)
	if rem <= 0 {
		return 0, false
	}
	return float64(rem) / float64(time.Millisecond), true
}

// classAttempts returns the backend-attempt budget for a class: the
// configured cap, bounded to [1, owners]; unlisted classes walk every
// owner.
func (rt *Router) classAttempts(class string, owners int) int {
	if n, ok := rt.classRetries[class]; ok && n > 0 && n < owners {
		return n
	}
	return owners
}

// classLabel maps a request's class string onto the router's bounded
// metrics vocabulary: "" → "default", unknown values → "other".
func (rt *Router) classLabel(class string) string {
	switch {
	case class == "":
		return "default"
	case rt.knownClasses[class]:
		return class
	default:
		return "other"
	}
}

// classAllowsBackoff reports whether a class may wait out a backend's 429
// Retry-After (a same-backend retry, so it is judged by the configured cap
// alone, not by how many owners happen to be alive): only classes capped
// at a single attempt skip it.
func (rt *Router) classAllowsBackoff(class string) bool {
	n, ok := rt.classRetries[class]
	return !ok || n != 1
}

// handleInfer routes one inference request: peek at the model name and QoS
// class, walk its healthy owners in ring order (bounded by the class's
// attempt budget), and forward until a backend answers. A transport error,
// 5xx, or 404 (placement drift) moves on to the next replica; a 429 is
// retried once on the same backend after honoring its Retry-After — unless
// the class's budget is 1, in which case the 429 is relayed and the client
// owns the pacing. Class and remaining deadline budget travel to the
// backend as headers; a request whose budget expires router-side is
// answered 504 without burning a forward. 4xx responses pass through —
// they are deterministic client errors every replica would repeat.
//
// Every request is traced: the incoming X-Radix-Trace-Id (or a fresh ID)
// is echoed on the response, forwarded to each backend attempt, and the
// router-side span breakdown (route, attempt:<backend>, backoff:<backend>)
// is retained for GET /debug/traces and the slow-request log.
func (rt *Router) handleInfer(w http.ResponseWriter, r *http.Request) {
	rt.met.requests.Add(1)
	traceID := r.Header.Get(obs.HeaderTraceID)
	if traceID == "" {
		traceID = obs.NewTraceID()
	}
	w.Header().Set(obs.HeaderTraceID, traceID)
	fwd := &inferForward{traceID: traceID, t0: time.Now()}
	defer rt.recordTrace(fwd)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		rt.routeError(w, fwd, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	var peek struct {
		Model      string  `json:"model"`
		Class      string  `json:"class"`
		DeadlineMs float64 `json:"deadline_ms"`
	}
	if err := json.Unmarshal(body, &peek); err != nil {
		rt.routeError(w, fwd, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if peek.Model == "" {
		rt.routeError(w, fwd, http.StatusBadRequest, "missing model name")
		return
	}
	fwd.model, fwd.class = peek.Model, peek.Class
	rt.met.classRequest(rt.classLabel(peek.Class))
	if shed := rt.shedFor(peek.Model); shed != "" && shed == peek.Class {
		// Last-resort SLO actuation: the autoscaler is shedding this class
		// at the router so the protected classes' objective can recover.
		// Same contract as backend backpressure — 429 plus Retry-After, the
		// client owns the pacing.
		rt.met.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		rt.routeError(w, fwd, http.StatusTooManyRequests,
			"class %q shed for model %q (SLO protection)", peek.Class, peek.Model)
		return
	}
	owners := rt.set.Owners(peek.Model, rt.ReplicasFor(peek.Model))
	if len(owners) == 0 {
		rt.met.unroutable.Add(1)
		rt.routeError(w, fwd, http.StatusServiceUnavailable, "no healthy backend for model %q", peek.Model)
		return
	}
	if rt.spread && len(owners) > 1 {
		// Replica load-spreading: start the owner walk at a rotating
		// offset so replicas share the model's load; the full walk is
		// preserved, so the failover budget is unchanged.
		k := int(rt.rr.Add(1)-1) % len(owners)
		owners = append(owners[k:len(owners):len(owners)], owners[:k]...)
	}
	attempts := rt.classAttempts(peek.Class, len(owners))
	if attempts < len(owners) {
		owners = owners[:attempts]
	}
	fwd.deadline = serve.DeadlineFromMs(peek.DeadlineMs) // overflow-clamped
	fwd.allowBackoff = rt.classAllowsBackoff(peek.Class)
	fwd.span("route", fwd.t0) // body peek + owner selection
	notFound := 0
	for i, b := range owners {
		if i > 0 {
			rt.met.failovers.Add(1)
		}
		switch rt.tryBackend(w, r, b, body, fwd) {
		case forwardDone:
			return
		case forwardNotFound:
			notFound++
		case forwardFailed:
		}
		if r.Context().Err() != nil {
			// The client is gone; stop burning replicas on its behalf.
			return
		}
	}
	if notFound == len(owners) && rt.consultedIntendedOwners(peek.Model, owners) {
		// The model's intended ring owners are all alive and answered "no
		// such model": that is a deterministic client error, not a fleet
		// failure — relaying 503 would invite pointless retries. When the
		// intended owners are ejected and the 404s came from healthy ring
		// successors standing in for them, the model may merely be
		// unreachable, so the 503 below (retryable) is the honest answer.
		rt.routeError(w, fwd, http.StatusNotFound,
			"unknown model %q (not hosted by any of its %d replicas)", peek.Model, len(owners))
		return
	}
	rt.met.unroutable.Add(1)
	rt.routeError(w, fwd, http.StatusServiceUnavailable,
		"all %d replicas of model %q failed", len(owners), peek.Model)
}

// routeError answers a router-originated error, recording the status and
// message on the request's trace.
func (rt *Router) routeError(w http.ResponseWriter, fwd *inferForward, code int, format string, args ...any) {
	fwd.status = code
	fwd.errMsg = fmt.Sprintf(format, args...)
	writeJSON(w, code, serve.ErrorResponse{Error: fwd.errMsg, Model: fwd.model, Class: fwd.class})
}

// recordTrace publishes the request's trace to the ring and, past the
// slow-request threshold, logs the span breakdown with the trace ID so
// router-side and backend-side records of one request correlate.
func (rt *Router) recordTrace(fwd *inferForward) {
	total := time.Since(fwd.t0)
	tr := &obs.Trace{
		ID:      fwd.traceID,
		Model:   fwd.model,
		Class:   fwd.class,
		Backend: fwd.backend,
		Start:   fwd.t0,
		TotalMs: float64(total.Nanoseconds()) / 1e6,
		Status:  fwd.status,
		Error:   fwd.errMsg,
		Spans:   fwd.spans,
	}
	rt.traces.Add(tr)
	if rt.slow > 0 && total >= rt.slow {
		rt.log.Warn("slow request",
			"trace_id", fwd.traceID,
			"model", fwd.model,
			"class", fwd.class,
			"backend", fwd.backend,
			"status", fwd.status,
			"total_ms", tr.TotalMs,
			"spans", tr.SpanLine(),
		)
	}
}

// consultedIntendedOwners reports whether the consulted (healthy) owners
// include every backend the ring intends to host the model — i.e. whether
// a unanimous "unknown model" verdict came from the model's real owners
// rather than from substitutes walking past ejected ones.
func (rt *Router) consultedIntendedOwners(model string, consulted []*Backend) bool {
	ids := make(map[string]bool, len(consulted))
	for _, b := range consulted {
		ids[b.id] = true
	}
	for _, id := range rt.set.Placement(model, rt.ReplicasFor(model)) {
		if !ids[id] {
			return false
		}
	}
	return true
}

// forwardOutcome is one backend's verdict on a forwarded request.
type forwardOutcome int

const (
	forwardDone     forwardOutcome = iota // response written to the client
	forwardFailed                         // transport error or 5xx: try the next replica
	forwardNotFound                       // backend alive but not hosting the model
)

// tryBackend forwards the request to one backend and relays the response.
// forwardDone means a response was written to the client; anything else
// tells the caller whether the replica failed or simply doesn't host the
// model.
func (rt *Router) tryBackend(w http.ResponseWriter, r *http.Request, b *Backend, body []byte, fwd *inferForward) forwardOutcome {
	for attempt := 0; ; attempt++ {
		if _, ok := fwd.remainingMs(); !ok {
			// The request's budget died router-side (earlier slow attempts,
			// backoffs): answer like a backend shed would, without burning a
			// forward — and critically without charging the backend a
			// failure it did not cause.
			return rt.writeDeadline(w, fwd, "before backend "+b.id+" was tried")
		}
		attemptStart := time.Now()
		resp, err := rt.forwardInfer(r.Context(), b, body, fwd)
		if !errors.Is(err, errBudgetExhausted) {
			// A forward was actually issued: trace its round trip. The
			// per-backend latency histogram only counts answered attempts —
			// transport errors return in microseconds and would drown the
			// signal the tail quantiles exist to surface.
			fwd.span("attempt:"+b.id, attemptStart)
		}
		if err == nil {
			b.attempt.Observe(time.Since(attemptStart).Nanoseconds())
		}
		if err != nil {
			if r.Context().Err() != nil {
				// The *client* hung up mid-forward: the transport error is
				// context cancellation propagating, not a backend fault.
				// Charging it would let a burst of impatient clients eject
				// every healthy backend.
				return forwardDone // nothing left to write to a gone client
			}
			if errors.Is(err, errBudgetExhausted) {
				// The budget expired between the check above and the header
				// computation: same verdict, same non-charge.
				return rt.writeDeadline(w, fwd, "before backend "+b.id+" was tried")
			}
			b.failed.Add(1)
			rt.set.noteFailure(b, err)
			return forwardFailed
		}
		switch {
		case resp.StatusCode == http.StatusTooManyRequests && attempt == 0 && fwd.allowBackoff:
			// Backpressure from a healthy backend: honor its Retry-After
			// once, then retry the same owner — its queue drains in
			// milliseconds under the serve policy defaults. Single-attempt
			// classes (background by default) skip this wait entirely: their
			// 429 is relayed below and the client owns the pacing, so a
			// background flood never parks router goroutines in backoffs
			// that interactive traffic is paying for.
			drain(resp)
			rt.set.noteForwardSuccess(b)
			rt.met.backoffs.Add(1)
			wait := retryAfter(resp.Header.Get("Retry-After"), rt.maxBackoff)
			if !fwd.deadline.IsZero() {
				if rem := time.Until(fwd.deadline); rem <= wait {
					// The backoff would outlive the request's budget; tell
					// the client the deadline lost instead of sleeping past
					// it.
					return rt.writeDeadline(w, fwd, "during backpressure backoff on backend "+b.id)
				}
			}
			backoffStart := time.Now()
			clientGone := false
			select {
			case <-r.Context().Done():
				clientGone = true
			case <-time.After(wait):
			}
			fwd.span("backoff:"+b.id, backoffStart)
			if clientGone {
				return forwardDone // client gone; nothing left to write
			}
			continue
		case resp.StatusCode == http.StatusNotFound:
			// The backend is alive but does not host the model (placement
			// drift during fleet changes): not a health event, but the next
			// replica may still answer.
			drain(resp)
			rt.set.noteForwardSuccess(b)
			return forwardNotFound
		case resp.StatusCode >= 500:
			b.failed.Add(1)
			rt.set.noteFailure(b, fmt.Errorf("cluster: backend %s: status %d", b.id, resp.StatusCode))
			drain(resp)
			return forwardFailed
		default:
			// 2xx, passthrough 4xx, or a second 429 (the client owns the
			// backoff from here; Retry-After is relayed).
			rt.set.noteForwardSuccess(b)
			b.forwarded.Add(1)
			fwd.status = resp.StatusCode
			fwd.backend = b.id
			// Stitch: the backend's span breakdown arrives in the response
			// header with offsets relative to ITS arrival time; rebasing by
			// the winning attempt's start grafts admission→queue→execute
			// under attempt:<id> on the router's own time base, so one
			// /debug/traces entry tells the whole cross-tier story. A
			// malformed header is dropped, never trusted.
			if enc := resp.Header.Get(obs.HeaderSpans); enc != "" {
				if bspans, err := obs.DecodeSpans(enc); err == nil {
					base := float64(attemptStart.Sub(fwd.t0).Nanoseconds()) / 1e6
					fwd.spans = append(fwd.spans, obs.RebaseSpans(bspans, base)...)
				}
			}
			relay(w, resp, b.id)
			return forwardDone
		}
	}
}

// errBudgetExhausted is forwardInfer's sentinel for a request whose
// deadline budget died before the forward could be issued. tryBackend maps
// it to a 504 without charging the backend.
var errBudgetExhausted = errors.New("cluster: request deadline budget exhausted")

// writeDeadline answers a router-side deadline expiry: 504 with model and
// class attribution, counted on the deadlines series. Always forwardDone —
// a response has been written.
func (rt *Router) writeDeadline(w http.ResponseWriter, fwd *inferForward, where string) forwardOutcome {
	rt.met.deadlines.Add(1)
	fwd.status = http.StatusGatewayTimeout
	fwd.errMsg = "deadline exceeded " + where
	writeJSON(w, http.StatusGatewayTimeout, serve.ErrorResponse{
		Error: fwd.errMsg,
		Model: fwd.model,
		Class: fwd.class,
	})
	return forwardDone
}

// forwardInfer reposts the buffered request body to one backend, stamping
// the QoS headers: the class travels verbatim, the deadline as the budget
// REMAINING at this attempt — the backend sheds queued rows against the
// real end-to-end deadline, not a fresh copy of the original budget.
func (rt *Router) forwardInfer(ctx context.Context, b *Backend, body []byte, fwd *inferForward) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/v1/infer", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.HeaderTraceID, fwd.traceID)
	if fwd.class != "" {
		req.Header.Set(serve.HeaderClass, fwd.class)
	}
	if ms, ok := fwd.remainingMs(); !ok {
		return nil, errBudgetExhausted
	} else if ms > 0 {
		req.Header.Set(serve.HeaderDeadlineMs, strconv.FormatFloat(ms, 'f', 3, 64))
	}
	return rt.client.Do(req)
}

// retryAfter parses a Retry-After header (delta-seconds or HTTP-date form,
// per RFC 9110), bounded by limit; unparsable or absent values back off
// 100ms. Delta-seconds are clamped BEFORE the seconds→Duration multiply:
// a huge value like 9999999999999 would overflow time.Duration to negative,
// dodge the `d > limit` cap, and turn the backoff into an immediate hot
// retry.
func retryAfter(header string, limit time.Duration) time.Duration {
	d := 100 * time.Millisecond
	if secs, err := strconv.ParseInt(strings.TrimSpace(header), 10, 64); err == nil {
		switch {
		case secs < 0:
			// Malformed; keep the default.
		case secs > int64(limit/time.Second):
			return limit
		default:
			d = time.Duration(secs) * time.Second
		}
	} else if t, err := http.ParseTime(header); err == nil {
		d = time.Until(t)
		if d < 0 {
			d = 0 // a date already past means "retry now"
		}
	}
	if d > limit {
		d = limit
	}
	return d
}

// drain discards a response we will not relay, keeping its keep-alive
// connection reusable.
func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // best-effort drain
	resp.Body.Close()
}

// relay copies a backend response to the client, stamping the answering
// backend for observability (and for the selftest's routing assertions).
func relay(w http.ResponseWriter, resp *http.Response, backendID string) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-Radix-Backend", backendID)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // client disconnects are benign
}

// AdminResult is one backend's verdict on a fanned-out control-plane
// operation. Status 0 with Error set means the backend was unreachable.
type AdminResult struct {
	Backend string `json:"backend"`
	Status  int    `json:"status"`
	Error   string `json:"error,omitempty"`
}

// AdminFanoutResponse is the router's body for the control-plane verbs:
// which backends were targeted and what each answered. Unreachable lists
// backends whose model inventory could not be scraped during reload/
// unregister discovery — they may still hold a stale copy, so their
// presence demotes the response to 502 even when every reachable target
// succeeded. The HTTP status summarizes: the action's success code when
// every backend succeeded (and discovery saw the whole fleet), the
// backends' unanimous error status when they all failed alike, 502 when
// the fleet answered inconsistently (inspect Results, fix or wait out the
// sick backend, and retry — admin verbs are idempotent on the serve side
// up to 409/404).
type AdminFanoutResponse struct {
	Model       string        `json:"model"`
	Action      string        `json:"action"`
	Targets     []string      `json:"targets"`
	Results     []AdminResult `json:"results"`
	Unreachable []string      `json:"unreachable,omitempty"`
}

// fanOut performs one admin operation against every target backend
// concurrently, each bounded by AdminTimeout (a wedged backend must not
// stall the verb forever), and collects per-backend outcomes in target
// order.
func (rt *Router) fanOut(ctx context.Context, method, path string, body []byte, targets []*Backend) []AdminResult {
	results := make([]AdminResult, len(targets))
	var wg sync.WaitGroup
	for i, b := range targets {
		wg.Add(1)
		go func(i int, b *Backend) {
			defer wg.Done()
			res := AdminResult{Backend: b.id}
			ctx, cancel := context.WithTimeout(ctx, rt.adminTimeout)
			defer cancel()
			var rd io.Reader
			if body != nil {
				rd = bytes.NewReader(body)
			}
			req, err := http.NewRequestWithContext(ctx, method, b.url+path, rd)
			if err != nil {
				res.Error = err.Error()
				results[i] = res
				return
			}
			if body != nil {
				req.Header.Set("Content-Type", "application/json")
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				res.Error = err.Error()
				results[i] = res
				return
			}
			res.Status = resp.StatusCode
			if resp.StatusCode >= 400 {
				var e serve.ErrorResponse
				if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&e) == nil {
					res.Error = e.Error
				}
			}
			drain(resp)
			results[i] = res
		}(i, b)
	}
	wg.Wait()
	return results
}

// writeAdminFanout summarizes fan-out results into one response status per
// AdminFanoutResponse's contract. unreachable backends (discovery could
// not inventory them) veto the success code: they may hold a copy the
// operation did not reach.
func writeAdminFanout(w http.ResponseWriter, model, action string, successCode int, targets []*Backend, results []AdminResult, unreachable []string) {
	resp := AdminFanoutResponse{Model: model, Action: action, Results: results, Unreachable: unreachable}
	for _, b := range targets {
		resp.Targets = append(resp.Targets, b.id)
	}
	ok := 0
	unanimous := -1
	for _, res := range results {
		switch {
		case res.Status >= 200 && res.Status < 300:
			ok++
		case unanimous == -1:
			unanimous = res.Status
		case unanimous != res.Status:
			unanimous = 0 // mixed failure statuses (0 also covers transport errors)
		}
	}
	code := http.StatusBadGateway
	switch {
	case ok == len(results) && len(unreachable) == 0:
		code = successCode
	case ok == 0 && unanimous > 0 && len(unreachable) == 0:
		code = unanimous
	}
	writeJSON(w, code, resp)
}

// handleAdminRegister is POST /v1/models fleet-wide: the model is
// registered on its ring-intended replicas (placement-aware, health
// ignored — an ejected intended owner is reported as a failed target so
// the operator can re-run registration once it recovers; meanwhile the
// 404-failover path tolerates the placement drift).
func (rt *Router) handleAdminRegister(w http.ResponseWriter, r *http.Request) {
	rt.met.admin.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "", "reading request body: %v", err)
		return
	}
	var peek struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(body, &peek); err != nil {
		writeError(w, http.StatusBadRequest, "", "bad request body: %v", err)
		return
	}
	if peek.Name == "" {
		writeError(w, http.StatusUnprocessableEntity, "", "missing model name")
		return
	}
	var targets []*Backend
	for _, id := range rt.set.Placement(peek.Name, rt.ReplicasFor(peek.Name)) {
		if b, ok := rt.set.Backend(id); ok {
			targets = append(targets, b)
		}
	}
	results := rt.fanOut(r.Context(), http.MethodPost, "/v1/models", body, targets)
	// Cache the register body as the model's desired config: a later
	// autoscale scale-out re-registers exactly this on new ring owners.
	rt.scaleMu.Lock()
	rt.regBodies[peek.Name] = body
	rt.scaleMu.Unlock()
	writeAdminFanout(w, peek.Name, "register", http.StatusCreated, targets, results, nil)
}

// handleAdminReload is PUT /v1/models/{name} fleet-wide: every backend
// currently reporting the model hot-reloads it (not just the intended
// owners — after a fleet change a model may live on ring successors, and a
// reload must reach every copy or the fleet would serve mixed weights).
func (rt *Router) handleAdminReload(w http.ResponseWriter, r *http.Request) {
	rt.met.admin.Add(1)
	name := r.PathValue("name")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, name, "reading request body: %v", err)
		return
	}
	targets, unreachable := rt.set.backendsHosting(r.Context(), name, rt.client)
	if len(targets) == 0 && len(unreachable) == 0 {
		writeError(w, http.StatusNotFound, name, "model %q not hosted by any reachable backend", name)
		return
	}
	results := rt.fanOut(r.Context(), http.MethodPut, "/v1/models/"+name, body, targets)
	// A reload changes the model's desired config; refresh the cached
	// register body (the reload body is the same RegisterRequest shape with
	// the name coming from the path) so a later scale-out builds the
	// reloaded weights on new owners, not the originals.
	var req serve.RegisterRequest
	if json.Unmarshal(body, &req) == nil && len(req.Config) > 0 {
		req.Name = name
		if reg, err := json.Marshal(req); err == nil {
			rt.scaleMu.Lock()
			rt.regBodies[name] = reg
			rt.scaleMu.Unlock()
		}
	}
	writeAdminFanout(w, name, "reload", http.StatusOK, targets, results, unreachable)
}

// handleAdminUnregister is DELETE /v1/models/{name} fleet-wide, to every
// backend reporting the model.
func (rt *Router) handleAdminUnregister(w http.ResponseWriter, r *http.Request) {
	rt.met.admin.Add(1)
	name := r.PathValue("name")
	targets, unreachable := rt.set.backendsHosting(r.Context(), name, rt.client)
	if len(targets) == 0 && len(unreachable) == 0 {
		writeError(w, http.StatusNotFound, name, "model %q not hosted by any reachable backend", name)
		return
	}
	results := rt.fanOut(r.Context(), http.MethodDelete, "/v1/models/"+name, nil, targets)
	// The model is gone fleet-wide: drop its autoscale state so a future
	// registration starts from the configured default again.
	rt.scaleMu.Lock()
	delete(rt.regBodies, name)
	delete(rt.repOverride, name)
	delete(rt.shedClass, name)
	rt.scaleMu.Unlock()
	writeAdminFanout(w, name, "unregister", http.StatusOK, targets, results, unreachable)
}

// ModelsResponse is the router's GET /v1/models body: the fleet's models
// merged by name, plus each model's ring placement in failover order.
type ModelsResponse struct {
	Models    []serve.ModelInfo   `json:"models"`
	Placement map[string][]string `json:"placement"`
	Backends  int                 `json:"backends"`
	Healthy   int                 `json:"healthy_backends"`
	Replicas  int                 `json:"replicas"`
}

// handleModels merges GET /v1/models across the healthy fleet: the union
// of the backends' model lists (first answer wins per name) with ring
// placement attached.
func (rt *Router) handleModels(w http.ResponseWriter, r *http.Request) {
	type scraped struct {
		id    string
		infos []serve.ModelInfo
	}
	backends := rt.set.Backends()
	results := make([]scraped, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		if !b.Healthy() {
			continue
		}
		wg.Add(1)
		go func(i int, b *Backend) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), rt.set.cfg.ProbeTimeout)
			defer cancel()
			if infos, err := serve.ListModels(ctx, rt.client, b.url); err == nil {
				results[i] = scraped{id: b.id, infos: infos}
			}
		}(i, b)
	}
	wg.Wait()
	byName := make(map[string]serve.ModelInfo)
	for _, res := range results {
		for _, info := range res.infos {
			if _, dup := byName[info.Name]; !dup {
				byName[info.Name] = info
			}
		}
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	out := ModelsResponse{
		Models:    make([]serve.ModelInfo, 0, len(names)),
		Placement: make(map[string][]string, len(names)),
		Backends:  len(backends),
		Healthy:   rt.set.HealthyCount(),
		Replicas:  rt.replicas,
	}
	for _, name := range names {
		out.Models = append(out.Models, byName[name])
		out.Placement[name] = rt.Placement(name)
	}
	writeJSON(w, http.StatusOK, out)
}

// HealthzResponse is the router's GET /healthz body.
type HealthzResponse struct {
	Status        string          `json:"status"` // "ok", "degraded", or "down"
	UptimeSeconds float64         `json:"uptime_seconds"`
	Replicas      int             `json:"replicas"`
	Backends      []BackendStatus `json:"backends"`
}

// handleHealthz reports the router's view of the fleet: "ok" with every
// backend in rotation, "degraded" while some are ejected, "down" (503)
// when none remain.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	backends := rt.set.Backends()
	resp := HealthzResponse{
		UptimeSeconds: time.Since(rt.start).Seconds(),
		Replicas:      rt.replicas,
		Backends:      make([]BackendStatus, 0, len(backends)),
	}
	healthy := 0
	for _, b := range backends {
		st := b.Status()
		if st.Healthy {
			healthy++
		}
		resp.Backends = append(resp.Backends, st)
	}
	code := http.StatusOK
	switch {
	case healthy == len(backends):
		resp.Status = "ok"
	case healthy > 0:
		resp.Status = "degraded"
	default:
		resp.Status = "down"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// scrapeBackends fetches /metrics from every healthy backend concurrently
// (each bounded by the probe timeout), returning the backends and their
// scrape texts index-aligned; unhealthy or failed backends leave "".
func (rt *Router) scrapeBackends(ctx context.Context) ([]*Backend, []string) {
	backends := rt.set.Backends()
	scrapes := make([]string, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		if !b.Healthy() {
			continue
		}
		wg.Add(1)
		go func(i int, b *Backend) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(ctx, rt.set.cfg.ProbeTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/metrics", nil)
			if err != nil {
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			if text, err := io.ReadAll(io.LimitReader(resp.Body, maxRequestBody)); err == nil {
				scrapes[i] = string(text)
			}
		}(i, b)
	}
	wg.Wait()
	return backends, scrapes
}

// sloRecord feeds the router's SLO engine one cumulative fleet-merged
// sample per model (aggregate) and per model×class, derived from the
// backend scrapes — the router's objectives judge the whole fleet's
// traffic, not any single node's.
func (rt *Router) sloRecord(scrapes []string, now time.Time) {
	for _, fs := range collectFleetSLOSamples(scrapes) {
		rt.slo.Record(fs.model, fs.class, fs.sample, now)
	}
}

// handleSLO is GET /v1/slo: scrape the fleet, merge the histogram and
// outcome-counter families, and evaluate every configured objective
// against the merged view. 404 when no objectives are configured.
func (rt *Router) handleSLO(w http.ResponseWriter, r *http.Request) {
	if rt.slo == nil {
		writeJSON(w, http.StatusNotFound, serve.ErrorResponse{Error: "no SLO objectives configured"})
		return
	}
	_, scrapes := rt.scrapeBackends(r.Context())
	now := time.Now()
	rt.sloRecord(scrapes, now)
	writeJSON(w, http.StatusOK, rt.slo.ViewOf(now))
}

// handleMetrics merges /metrics across the fleet: the router's own
// radixrouter_* series first, then every healthy backend's scrape with
// each series labeled backend=id and HELP/TYPE headers deduplicated.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	backends, scrapes := rt.scrapeBackends(r.Context())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	writeRouterMetrics(w, &rt.met, backends, time.Since(rt.start).Seconds())
	// Fleet-level latency distributions: every backend exports the same
	// log-bucket le ladder, so the router's merged view is a straight
	// per-le sum across the scrapes — quantiles of the merged histogram
	// are true fleet quantiles, not averages of per-node quantiles.
	writeFleetHistograms(w, scrapes)
	if rt.slo != nil {
		now := time.Now()
		rt.sloRecord(scrapes, now)
		serve.WriteSLOMetrics(w, "radixrouter", rt.slo.Evaluate(now))
	}
	obs.WriteRuntimeMetrics(w, "radixrouter")
	seenMeta := make(map[string]bool)
	for i, b := range backends {
		if scrapes[i] != "" {
			mergeBackendMetrics(w, scrapes[i], b.id, seenMeta)
		}
	}
}
