package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/radix-net/radixnet/internal/dataset"
	"github.com/radix-net/radixnet/internal/obs/slo"
)

func TestInjectBackendLabelExemplarSafe(t *testing.T) {
	cases := []struct{ in, want string }{
		// The exemplar's own braces must not be mistaken for the series
		// label block.
		{`lat_bucket{model="m",le="0.001"} 5 # {trace_id="abc"} 0.0005`,
			`lat_bucket{model="m",le="0.001",backend="b:1"} 5 # {trace_id="abc"} 0.0005`},
		{`requests_total 3 # {trace_id="x"} 1`,
			`requests_total{backend="b:1"} 3 # {trace_id="x"} 1`},
		{`lat_bucket{le="1"} 2`,
			`lat_bucket{le="1",backend="b:1"} 2`},
		{`plain 7`,
			`plain{backend="b:1"} 7`},
	}
	for _, tc := range cases {
		if got := injectBackendLabel(tc.in, "b:1"); got != tc.want {
			t.Errorf("injectBackendLabel(%q)\n got %q\nwant %q", tc.in, got, tc.want)
		}
	}
}

// backendScrape fabricates one backend's /metrics exposition with known
// latency buckets, exemplars, and outcome counters for model "m".
func backendScrape(good, slow, accepted, rejected, failed, expired int, exemplar string) string {
	var b strings.Builder
	cum1 := good
	cum2 := good + slow
	write := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	write(`radixserve_request_latency_seconds_bucket{model="m",le="0.01"} %d`, cum1)
	if exemplar != "" {
		write(`radixserve_request_latency_seconds_bucket{model="m",le="1"} %d # {trace_id="%s"} 0.5`, cum2, exemplar)
	} else {
		write(`radixserve_request_latency_seconds_bucket{model="m",le="1"} %d`, cum2)
	}
	write(`radixserve_request_latency_seconds_bucket{model="m",le="+Inf"} %d`, cum2)
	write(`radixserve_request_latency_seconds_sum{model="m"} %g`, float64(cum2)*0.01)
	write(`radixserve_request_latency_seconds_count{model="m"} %d`, cum2)
	write(`radixserve_rows_accepted_total{model="m"} %d`, accepted)
	write(`radixserve_rows_rejected_total{model="m"} %d`, rejected)
	write(`radixserve_rows_failed_total{model="m"} %d`, failed)
	write(`radixserve_rows_expired_total{model="m"} %d`, expired)
	write(`radixserve_class_request_latency_seconds_bucket{model="m",class="interactive",le="0.01"} %d`, cum1)
	write(`radixserve_class_request_latency_seconds_bucket{model="m",class="interactive",le="+Inf"} %d`, cum1)
	write(`radixserve_class_request_latency_seconds_count{model="m",class="interactive"} %d`, cum1)
	write(`radixserve_class_rows_accepted_total{model="m",class="interactive"} %d`, accepted)
	write(`radixserve_class_rows_rejected_total{model="m",class="interactive"} %d`, rejected)
	write(`radixserve_class_rows_expired_total{model="m",class="interactive"} %d`, expired)
	return b.String()
}

func TestCollectFleetSLOSamples(t *testing.T) {
	scrapes := []string{
		backendScrape(10, 2, 12, 1, 1, 0, "aaaa"),
		backendScrape(20, 3, 23, 2, 0, 1, "bbbb"),
		"", // a failed backend scrape must be skipped, not crash
	}
	samples := collectFleetSLOSamples(scrapes)
	if len(samples) != 2 {
		t.Fatalf("%d samples, want 2 (aggregate + interactive): %+v", len(samples), samples)
	}
	agg := samples[0]
	if agg.model != "m" || agg.class != "" {
		t.Fatalf("first sample %+v, want the aggregate", agg)
	}
	// Bucket-wise sums across both live backends.
	if agg.sample.Hist.Count != 35 {
		t.Errorf("merged count %d, want 35", agg.sample.Hist.Count)
	}
	if got := agg.sample.Hist.CountBelow(0.01); got != 30 {
		t.Errorf("merged good-at-10ms %g, want 30", got)
	}
	// Aggregate accounting: failed+expired+rejected over accepted+rejected.
	if agg.sample.Bad != 5 || agg.sample.Total != 38 {
		t.Errorf("aggregate bad/total = %d/%d, want 5/38", agg.sample.Bad, agg.sample.Total)
	}
	cls := samples[1]
	if cls.class != "interactive" {
		t.Fatalf("second sample %+v, want class interactive", cls)
	}
	// Class accounting has no failed series: expired+rejected only.
	if cls.sample.Bad != 4 || cls.sample.Total != 38 {
		t.Errorf("class bad/total = %d/%d, want 4/38", cls.sample.Bad, cls.sample.Total)
	}
	if cls.sample.Hist.Count != 30 {
		t.Errorf("class merged count %d, want 30", cls.sample.Hist.Count)
	}
}

func TestFleetMergeCarriesExemplars(t *testing.T) {
	scrapes := []string{backendScrape(10, 2, 12, 0, 0, 0, "cafe1234cafe1234cafe1234cafe1234")}
	var out bytes.Buffer
	writeFleetHistograms(&out, scrapes)
	text := out.String()
	if !strings.Contains(text, `radixrouter_model_request_latency_seconds_bucket{model="m",le="1"} 12 # {trace_id="cafe1234cafe1234cafe1234cafe1234"} 0.5`) {
		t.Fatalf("merged exposition lost the exemplar:\n%s", text)
	}
}

func TestRouterSLOUnconfigured(t *testing.T) {
	f := startFleet(t, 2, []string{"m"}, SetConfig{ProbeInterval: time.Hour})
	resp, err := http.Get(f.url + "/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/slo with no objectives: status %d, want 404", resp.StatusCode)
	}
}

// TestRouterSLOViolation arms an unmeetable objective on the router and
// checks the fleet-evaluated /v1/slo flips to violated, with the
// radixrouter_slo_* gauges riding the merged /metrics exposition.
func TestRouterSLOViolation(t *testing.T) {
	objectives, err := slo.ParseObjectives([]string{"m::1us:99"})
	if err != nil {
		t.Fatal(err)
	}
	f := startFleetOpts(t, 2, []string{"m"}, SetConfig{ProbeInterval: time.Hour}, func(rc *RouterConfig) {
		rc.SLO = slo.Config{Objectives: objectives}
	})
	in, err := dataset.SparseBatch(1, 16, 4, 37)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if resp, body := f.post(t, "m", [][]float64{in.RowSlice(0)}); resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	resp, err := http.Get(f.url + "/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/slo: status %d", resp.StatusCode)
	}
	var view slo.View
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	var st *slo.Status
	for i := range view.Statuses {
		if view.Statuses[i].Model == "m" && view.Statuses[i].Class == "" {
			st = &view.Statuses[i]
		}
	}
	if st == nil {
		t.Fatalf("no aggregate status for m: %+v", view.Statuses)
	}
	if st.State != slo.StateViolated {
		t.Fatalf("unmeetable objective state %q (fast %g slow %g), want violated", st.State, st.FastBurn, st.SlowBurn)
	}
	if !strings.Contains(scrapeText(t, f.url+"/metrics"), `radixrouter_slo_state{objective="`) {
		t.Fatal("radixrouter_slo_state missing from the merged /metrics exposition")
	}
}
