package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"

	"github.com/radix-net/radixnet/internal/autoscale"
	"github.com/radix-net/radixnet/internal/obs"
	"github.com/radix-net/radixnet/internal/obs/slo"
)

// autoscaler is the router-side half of the replica control loop: on every
// policy interval it scrapes the fleet, windows the per-model load signals
// against the previous cycle (queue-wait p90 from the fleet-merged
// histograms, 429 rate and throughput from the row-outcome counters, SLO
// burn state from the router's engine), feeds them to the pure
// autoscale.Controller, and actuates its decisions through Router.ScaleTo
// and the shed-class switch. The decision logic lives in
// internal/autoscale; this type owns only the measurement and actuation
// plumbing.
type autoscaler struct {
	rt  *Router
	ctl *autoscale.Controller

	stop    chan struct{}
	done    chan struct{}
	once    sync.Once
	started bool // guarded by mu; Stop must not wait for a loop never launched

	// prev holds last cycle's cumulative per-model signals; the difference
	// against the current scrape is the evaluation window. Loop-goroutine
	// state, but snapshotted under mu for GET /v1/autoscale.
	prevHist map[string]obs.ScrapedHist
	prevCtr  map[string]fleetCounters

	mu       sync.Mutex
	status   []autoscale.ModelStatus
	recent   []AppliedDecision
	lastEval time.Time
}

// AppliedDecision is one actuation the control loop performed (or failed
// to), retained for GET /v1/autoscale.
type AppliedDecision struct {
	autoscale.Decision
	Time  time.Time `json:"time"`
	Error string    `json:"error,omitempty"`
}

// maxRecentDecisions bounds the actuation log on /v1/autoscale.
const maxRecentDecisions = 64

func newAutoscaler(rt *Router, pol autoscale.Policy) (*autoscaler, error) {
	ctl, err := autoscale.New(pol)
	if err != nil {
		return nil, err
	}
	return &autoscaler{
		rt:       rt,
		ctl:      ctl,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		prevHist: make(map[string]obs.ScrapedHist),
		prevCtr:  make(map[string]fleetCounters),
	}, nil
}

// Start launches the control loop goroutine. Idempotent via the router's
// single Start/ListenAndServe call contract.
func (a *autoscaler) Start() {
	a.mu.Lock()
	a.started = true
	a.mu.Unlock()
	go a.loop()
}

// Stop halts the loop and waits for the in-flight cycle to finish, so no
// ScaleTo fan-out races the router's shutdown. Safe to call when the loop
// was never started (a router driven through Handler() in tests).
func (a *autoscaler) Stop() {
	a.once.Do(func() { close(a.stop) })
	a.mu.Lock()
	started := a.started
	a.mu.Unlock()
	if started {
		<-a.done
	}
}

// loop is the control loop's goroutine root: it owns every evaluation
// cycle until Stop and must not inherit a request context.
//
//radix:ctx-root
func (a *autoscaler) loop() {
	defer close(a.done)
	ticker := time.NewTicker(a.ctl.Policy().Interval)
	defer ticker.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-ticker.C:
			a.cycle()
		}
	}
}

// cycle runs one evaluation interval: measure, decide, actuate. Like
// loop, it owns its contexts — the scrape pass gets one evaluation
// interval, each actuation gets the admin fan-out budget — rather than
// inheriting a request's.
//
//radix:ctx-root
func (a *autoscaler) cycle() {
	ctx, cancel := context.WithTimeout(context.Background(), a.ctl.Policy().Interval)
	defer cancel()
	now := time.Now()
	_, scrapes := a.rt.scrapeBackends(ctx)

	// Fleet-merged cumulative signals this cycle.
	hists := collectModelQueueWait(scrapes)
	counters := map[fleetKey]*fleetCounters{}
	for _, s := range scrapes {
		if s != "" {
			collectOutcomeCounters(s, counters)
		}
	}
	violated := map[string]bool{}
	if a.rt.slo != nil {
		a.rt.sloRecord(scrapes, now)
		for _, st := range a.rt.slo.Evaluate(now) {
			if st.State == slo.StateViolated {
				violated[st.Model] = true
			}
		}
	}

	// Window against the previous cycle and build the stats batch. Models
	// appear once they have exported any queue-wait history; a model with
	// no traffic this window reports p90 0 (which is what lets it count
	// below-band intervals and scale back in).
	interval := a.ctl.Policy().Interval.Seconds()
	fleet := len(a.rt.set.backends)
	stats := make([]autoscale.ModelStats, 0, len(hists))
	for model, cur := range hists {
		win := cur.Sub(a.prevHist[model])
		stat := autoscale.ModelStats{
			Model:        model,
			Replicas:     a.rt.ReplicasFor(model),
			Ceiling:      fleet,
			QueueWaitP90: time.Duration(win.Quantile(0.90) * float64(time.Second)),
			Samples:      win.Count,
			SLOViolated:  violated[model],
		}
		var curCtr fleetCounters
		if c := counters[fleetKey{model, ""}]; c != nil {
			curCtr = *c
		}
		prev := a.prevCtr[model]
		accepted := sub64(curCtr.accepted, prev.accepted)
		rejected := sub64(curCtr.rejected, prev.rejected)
		if offered := accepted + rejected; offered > 0 {
			stat.Rate429 = float64(rejected) / float64(offered)
		}
		stat.Throughput = float64(accepted) / interval
		stats = append(stats, stat)
		a.prevHist[model] = cur
		a.prevCtr[model] = curCtr
	}

	decisions := a.ctl.Evaluate(stats)
	applied := make([]AppliedDecision, 0, len(decisions))
	for _, d := range decisions {
		ad := AppliedDecision{Decision: d, Time: now}
		switch {
		case d.Shed != "":
			a.rt.setShed(d.Model, d.Shed)
		case d.Unshed:
			a.rt.setShed(d.Model, "")
		default:
			// Actuation gets the admin fan-out budget, not the scrape
			// budget: a scale-out builds engines on the new owners, which
			// on a loaded machine takes far longer than one evaluation
			// interval. The loop simply skips the ticks that elapse.
			actCtx, actCancel := context.WithTimeout(context.Background(), a.rt.adminTimeout)
			_, err := a.rt.ScaleTo(actCtx, d.Model, d.To)
			actCancel()
			if err != nil {
				ad.Error = err.Error()
				a.rt.log.Warn("autoscale actuation failed",
					"model", d.Model, "from", d.From, "to", d.To, "err", err)
			} else if d.To > d.From {
				a.rt.met.scaleUps.Add(1)
			} else {
				a.rt.met.scaleDowns.Add(1)
			}
		}
		applied = append(applied, ad)
	}

	a.mu.Lock()
	a.status = a.ctl.Status()
	a.lastEval = now
	a.recent = append(a.recent, applied...)
	if n := len(a.recent); n > maxRecentDecisions {
		a.recent = append(a.recent[:0], a.recent[n-maxRecentDecisions:]...)
	}
	a.mu.Unlock()
}

// sub64 is a clamped counter delta: a backend restart resets its counters,
// which must read as "no new events", never as a huge unsigned wrap.
func sub64(cur, prev uint64) uint64 {
	if cur < prev {
		return 0
	}
	return cur - prev
}

// collectModelQueueWait merges the backends' per-model×class queue-wait
// histograms into one cumulative histogram per model (classes and backends
// summed — every obs.Histogram shares the le ladder, so the bucket-wise
// sum is exact).
func collectModelQueueWait(scrapes []string) map[string]obs.ScrapedHist {
	series := map[string]*mergedHist{}
	for _, s := range scrapes {
		if s != "" {
			collectHistFamily(s, "radixserve_queue_wait_seconds", series)
		}
	}
	perModel := map[string]*mergedHist{}
	for _, mh := range series {
		model := obs.ParseLabels(mh.labels)["model"]
		if model == "" {
			continue
		}
		acc := perModel[model]
		if acc == nil {
			acc = &mergedHist{labels: model, cum: map[string]uint64{}, exemplar: map[string]string{}}
			perModel[model] = acc
		}
		for le, v := range mh.cum {
			acc.cum[le] += v
		}
		acc.sum += mh.sum
		acc.count += mh.count
	}
	out := make(map[string]obs.ScrapedHist, len(perModel))
	for model, mh := range perModel {
		out[model] = mh.scraped()
	}
	return out
}

// AutoscaleStatus is the GET /v1/autoscale body.
type AutoscaleStatus struct {
	Enabled  bool                    `json:"enabled"`
	Policy   autoscale.Policy        `json:"policy,omitempty"`
	LastEval time.Time               `json:"last_eval"`
	Models   []autoscale.ModelStatus `json:"models,omitempty"`
	Recent   []AppliedDecision       `json:"recent_decisions,omitempty"`
}

// handleAutoscale is GET /v1/autoscale: the control loop's live state —
// per-model load signals, stability counters, and the recent actuation
// log. The selftest's convergence assertions read StableIntervals from
// here. 404 when autoscaling is disabled.
func (rt *Router) handleAutoscale(w http.ResponseWriter, r *http.Request) {
	if rt.scaler == nil {
		writeJSON(w, http.StatusNotFound, AutoscaleStatus{Enabled: false})
		return
	}
	a := rt.scaler
	a.mu.Lock()
	out := AutoscaleStatus{
		Enabled:  true,
		Policy:   a.ctl.Policy(),
		LastEval: a.lastEval,
		Models:   a.status,
		Recent:   append([]AppliedDecision(nil), a.recent...),
	}
	a.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}
