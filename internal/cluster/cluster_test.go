package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/dataset"
	"github.com/radix-net/radixnet/internal/infer"
	"github.com/radix-net/radixnet/internal/radix"
	"github.com/radix-net/radixnet/internal/serve"
	"github.com/radix-net/radixnet/internal/sparse"
)

// --- Ring ---

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("model-%d", i)
	}
	return keys
}

// TestRingStability is the consistent-hashing property itself: adding one
// node to an N-node ring moves only ~1/(N+1) of the keys, and removing it
// moves back exactly the keys it had taken.
func TestRingStability(t *testing.T) {
	const nodes, keys = 8, 2000
	r := NewRing(0)
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("10.0.0.%d:8080", i))
	}
	if r.Len() != nodes {
		t.Fatalf("ring has %d nodes, want %d", r.Len(), nodes)
	}
	before := make(map[string]string, keys)
	perNode := make(map[string]int)
	for _, k := range ringKeys(keys) {
		owner := r.Owners(k, 1)[0]
		before[k] = owner
		perNode[owner]++
	}
	// Every node must own a nontrivial keyspace share: with 128 vnodes the
	// shares concentrate near 1/N, so a floor at 1/(4N) has huge margin yet
	// still catches a broken point distribution.
	for i := 0; i < nodes; i++ {
		id := fmt.Sprintf("10.0.0.%d:8080", i)
		if perNode[id] < keys/(4*nodes) {
			t.Errorf("node %s owns only %d/%d keys", id, perNode[id], keys)
		}
	}

	r.Add("10.0.0.99:8080")
	moved := 0
	for k, was := range before {
		now := r.Owners(k, 1)[0]
		if now != was {
			if now != "10.0.0.99:8080" {
				t.Fatalf("key %s moved %s→%s, not to the new node", k, was, now)
			}
			moved++
		}
	}
	// Expectation is keys/(nodes+1) ≈ 222; allow generous slack both ways.
	if moved == 0 || moved > 2*keys/(nodes+1) {
		t.Fatalf("adding a node moved %d/%d keys, want ≈%d", moved, keys, keys/(nodes+1))
	}

	r.Remove("10.0.0.99:8080")
	for k, was := range before {
		if now := r.Owners(k, 1)[0]; now != was {
			t.Fatalf("key %s did not return to %s after remove (got %s)", k, was, now)
		}
	}
}

func TestRingOwnersReplicaSets(t *testing.T) {
	r := NewRing(64).Add("a:1", "b:1", "c:1")
	for _, k := range ringKeys(100) {
		owners := r.Owners(k, 2)
		if len(owners) != 2 || owners[0] == owners[1] {
			t.Fatalf("key %s owners %v: want 2 distinct", k, owners)
		}
		// Deterministic: same key, same replica set, every time.
		again := r.Owners(k, 2)
		if owners[0] != again[0] || owners[1] != again[1] {
			t.Fatalf("key %s placement unstable: %v vs %v", k, owners, again)
		}
		// Asking for more replicas than nodes yields all nodes.
		if all := r.Owners(k, 10); len(all) != 3 {
			t.Fatalf("key %s Owners(10) = %v, want all 3 nodes", k, all)
		}
	}
	if got := r.Owners("k", 0); got != nil {
		t.Fatalf("Owners(0) = %v, want nil", got)
	}
	if got := NewRing(8).Owners("k", 1); len(got) != 0 {
		t.Fatal("empty ring returned an owner")
	}
}

// --- Backend set health ---

// flakyBackend is a /healthz endpoint whose health is a switch.
func flakyBackend(up *atomic.Bool) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" || !up.Load() {
			http.Error(w, `{"status":"sick"}`, http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(serve.Health{Status: "ok", Models: 1})
	}))
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestBackendEjectionAndReadmission runs the real prober against a backend
// whose health is toggled: FailAfter consecutive failures must eject it,
// one good probe must re-admit it.
func TestBackendEjectionAndReadmission(t *testing.T) {
	var up atomic.Bool
	up.Store(true)
	ts := flakyBackend(&up)
	defer ts.Close()

	set, err := NewBackendSet([]string{ts.URL}, SetConfig{
		ProbeInterval: 5 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		FailAfter:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	set.Start()
	defer set.Stop()
	b := set.Backends()[0]

	waitFor(t, "first good probe", func() bool { return b.probes.Load() >= 1 })
	if !b.Healthy() {
		t.Fatal("healthy backend ejected")
	}
	up.Store(false)
	waitFor(t, "ejection", func() bool { return !b.Healthy() })
	if fails := b.consecFails.Load(); fails < 3 {
		t.Fatalf("ejected after %d consecutive failures, want ≥ 3", fails)
	}
	if set.HealthyCount() != 0 {
		t.Fatal("ejected backend still counted healthy")
	}
	if owners := set.Owners("anything", 2); len(owners) != 0 {
		t.Fatalf("ejected backend still owns keys: %v", owners)
	}
	up.Store(true)
	waitFor(t, "re-admission", func() bool { return b.Healthy() })
	if set.Owners("anything", 1)[0] != b {
		t.Fatal("re-admitted backend not routing")
	}
	st := b.Status()
	if st.ProbeFailures < 3 || st.Probes <= st.ProbeFailures || st.LastError == "" {
		t.Fatalf("probe accounting wrong: %+v", st)
	}
}

func TestNormalizeBackend(t *testing.T) {
	for _, tc := range []struct{ in, id, url string }{
		{"10.0.0.7:8080", "10.0.0.7:8080", "http://10.0.0.7:8080"},
		{"http://10.0.0.7:8080", "10.0.0.7:8080", "http://10.0.0.7:8080"},
		{"http://10.0.0.7:8080/", "10.0.0.7:8080", "http://10.0.0.7:8080"},
		{"https://gpu1:443", "gpu1:443", "https://gpu1:443"},
	} {
		id, url, err := normalizeBackend(tc.in)
		if err != nil || id != tc.id || url != tc.url {
			t.Errorf("normalizeBackend(%q) = (%q, %q, %v), want (%q, %q)", tc.in, id, url, err, tc.id, tc.url)
		}
	}
	for _, bad := range []string{"", "grpc://x:1", "http://", "http://a b:1"} {
		if _, _, err := normalizeBackend(bad); err == nil {
			t.Errorf("normalizeBackend(%q) accepted", bad)
		}
	}
	if _, err := NewBackendSet([]string{"a:1", "http://a:1"}, SetConfig{}); err == nil {
		t.Error("duplicate backend accepted")
	}
	if _, err := NewBackendSet(nil, SetConfig{}); err == nil {
		t.Error("empty backend set accepted")
	}
}

// --- Router over real radixserve backends ---

// testFleet is N in-process radixserve instances plus a router in front.
type testFleet struct {
	cfg    core.Config
	regs   map[string]*serve.Registry // backend id → registry
	srvs   map[string]*serve.Server
	router *Router
	url    string
}

// startFleet boots n empty radixserve backends and a router over them,
// then registers each of models on its ring owners (Replicas each).
func startFleet(t *testing.T, n int, models []string, setCfg SetConfig) *testFleet {
	return startFleetOpts(t, n, models, setCfg, nil)
}

// startFleetOpts is startFleet with a hook to adjust the router config
// (e.g. arming SLO objectives) before the router is built.
func startFleetOpts(t *testing.T, n int, models []string, setCfg SetConfig, mutate func(*RouterConfig)) *testFleet {
	t.Helper()
	cfg, err := core.NewConfig([]radix.System{radix.MustNew(4, 4)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := &testFleet{cfg: cfg, regs: make(map[string]*serve.Registry), srvs: make(map[string]*serve.Server)}
	pol := serve.Policy{MaxBatch: 8, MaxLatency: time.Millisecond}
	var addrs []string
	for i := 0; i < n; i++ {
		reg := serve.NewRegistry(pol)
		srv := serve.NewServer(reg, "127.0.0.1:0")
		addr, err := srv.Start()
		if err != nil {
			t.Fatal(err)
		}
		f.regs[addr] = reg
		f.srvs[addr] = srv
		addrs = append(addrs, addr)
	}
	t.Cleanup(func() {
		for _, srv := range f.srvs {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			srv.Shutdown(ctx)
			cancel()
		}
	})
	rcfg := RouterConfig{Addr: "127.0.0.1:0", Backends: addrs, Replicas: 2, Set: setCfg}
	if mutate != nil {
		mutate(&rcfg)
	}
	rt, err := NewRouter(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range models {
		for _, id := range rt.Placement(model) {
			if _, err := f.regs[id].Register(model, cfg, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	url, err := rt.Start()
	if err != nil {
		t.Fatal(err)
	}
	f.router = rt
	f.url = "http://" + url
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		rt.Shutdown(ctx)
	})
	return f
}

func (f *testFleet) post(t *testing.T, model string, rows [][]float64) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(serve.InferRequest{Model: model, Inputs: rows})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(f.url+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestRouterRoutesBitIdentical sends rows for several models through the
// router and checks (a) answers come from a ring owner of each model and
// (b) outputs are bit-identical to a direct engine over the same config.
func TestRouterRoutesBitIdentical(t *testing.T) {
	models := []string{"alpha", "beta", "gamma"}
	f := startFleet(t, 3, models, SetConfig{ProbeInterval: time.Hour})
	eng, err := infer.FromConfig(f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	in, err := dataset.SparseBatch(8, 16, 4, 23)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range models {
		owners := f.router.Placement(model)
		for r := 0; r < in.Rows(); r++ {
			resp, body := f.post(t, model, [][]float64{in.RowSlice(r)})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s row %d: status %d: %s", model, r, resp.StatusCode, body)
			}
			if by := resp.Header.Get("X-Radix-Backend"); by != owners[0] {
				t.Fatalf("%s served by %s, want primary owner %s", model, by, owners[0])
			}
			var got serve.InferResponse
			if err := json.Unmarshal(body, &got); err != nil {
				t.Fatal(err)
			}
			row, err := sparse.DenseFromSlice(1, 16, in.RowSlice(r))
			if err != nil {
				t.Fatal(err)
			}
			want, err := eng.Infer(row)
			if err != nil {
				t.Fatal(err)
			}
			for c, v := range got.Outputs[0] {
				if v != want.Data()[c] {
					t.Fatalf("%s row %d col %d: %v != %v (not bit-identical)", model, r, c, v, want.Data()[c])
				}
			}
		}
	}
	// Unknown model: every owner is alive but answers 404, so the router
	// reports the deterministic client error (404), not a retryable 503.
	resp, body := f.post(t, "ghost", [][]float64{in.RowSlice(0)})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost model: status %d, want 404", resp.StatusCode)
	}
	var e serve.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Model != "ghost" {
		t.Fatalf("ghost 404 body %s (err %v): model name missing", body, err)
	}
	// But when a model's intended owners are ejected and the 404s come from
	// healthy ring successors standing in for them, the model may merely be
	// unreachable — that must stay a retryable 503, not a 404.
	for _, id := range f.router.Placement("alpha") {
		b, _ := f.router.Set().Backend(id)
		b.healthy.Store(false)
	}
	resp, _ = f.post(t, "alpha", [][]float64{in.RowSlice(0)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("model with ejected owners: status %d, want 503", resp.StatusCode)
	}
	for _, id := range f.router.Placement("alpha") {
		b, _ := f.router.Set().Backend(id)
		b.healthy.Store(true)
	}
	// Malformed and empty-model requests are rejected at the router.
	r2, err := http.Post(f.url+"/v1/infer", "application/json", strings.NewReader("{broken"))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("broken JSON: status %d", r2.StatusCode)
	}
	resp, _ = f.post(t, "", [][]float64{in.RowSlice(0)})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty model: status %d", resp.StatusCode)
	}
}

// TestRouterFailover kills a model's primary owner and checks the request
// stream continues unbroken on the replica — the core resilience claim.
func TestRouterFailover(t *testing.T) {
	f := startFleet(t, 3, []string{"m"}, SetConfig{ProbeInterval: time.Hour, FailAfter: 2})
	owners := f.router.Placement("m")
	in, err := dataset.SparseBatch(4, 16, 4, 31)
	if err != nil {
		t.Fatal(err)
	}
	row := [][]float64{in.RowSlice(0)}
	resp, body := f.post(t, "m", row)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Radix-Backend") != owners[0] {
		t.Fatalf("pre-kill: status %d via %s: %s", resp.StatusCode, resp.Header.Get("X-Radix-Backend"), body)
	}
	var want serve.InferResponse
	if err := json.Unmarshal(body, &want); err != nil {
		t.Fatal(err)
	}

	// Kill the primary. Every subsequent request must keep succeeding, now
	// answered by the replica, with identical outputs.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	f.srvs[owners[0]].Shutdown(ctx)
	cancel()
	for i := 0; i < 5; i++ {
		resp, body = f.post(t, "m", row)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-kill request %d: status %d: %s", i, resp.StatusCode, body)
		}
		if by := resp.Header.Get("X-Radix-Backend"); by != owners[1] {
			t.Fatalf("post-kill request %d answered by %s, want replica %s", i, by, owners[1])
		}
		var got serve.InferResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		for c, v := range got.Outputs[0] {
			if v != want.Outputs[0][c] {
				t.Fatal("replica output diverged from primary")
			}
		}
	}
	if f.router.met.failovers.Load() == 0 {
		t.Fatal("no failovers recorded")
	}
	// The forwarding failures alone (FailAfter=2) must have ejected the
	// dead primary without any probe ticking (interval is an hour).
	b, _ := f.router.Set().Backend(owners[0])
	waitFor(t, "passive ejection", func() bool { return !b.Healthy() })
	// Once ejected, the replica is the ring walk's first healthy owner:
	// requests stop paying the failed connection attempt.
	if got := f.router.Set().Owners("m", 2); len(got) == 0 || got[0].ID() != owners[1] {
		t.Fatalf("owners after ejection: %v", got)
	}
}

// TestRouterMergedModelsAndHealthz checks the fan-out endpoints: the model
// union with placement, and per-backend health reporting.
func TestRouterMergedModelsAndHealthz(t *testing.T) {
	models := []string{"m0", "m1", "m2", "m3"}
	f := startFleet(t, 3, models, SetConfig{ProbeInterval: time.Hour})
	resp, err := http.Get(f.url + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var merged ModelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&merged); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(merged.Models) != len(models) {
		t.Fatalf("merged %d models, want %d: %+v", len(merged.Models), len(models), merged.Models)
	}
	for i, m := range merged.Models {
		if m.Name != models[i] { // sorted by name
			t.Fatalf("model %d = %q, want %q", i, m.Name, models[i])
		}
		if got := merged.Placement[m.Name]; len(got) != 2 {
			t.Fatalf("placement[%s] = %v, want 2 owners", m.Name, got)
		}
	}
	if merged.Backends != 3 || merged.Healthy != 3 || merged.Replicas != 2 {
		t.Fatalf("fleet summary wrong: %+v", merged)
	}

	resp, err = http.Get(f.url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz HealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.Status != "ok" || len(hz.Backends) != 3 {
		t.Fatalf("healthz = %+v", hz)
	}
}

// TestRouterMergedMetrics checks the fleet-wide Prometheus merge: router
// series present, backend series labeled, HELP/TYPE not duplicated.
func TestRouterMergedMetrics(t *testing.T) {
	f := startFleet(t, 2, []string{"m"}, SetConfig{ProbeInterval: time.Hour})
	in, err := dataset.SparseBatch(1, 16, 4, 37)
	if err != nil {
		t.Fatal(err)
	}
	if resp, body := f.post(t, "m", [][]float64{in.RowSlice(0)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	resp, err := http.Get(f.url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	owners := f.router.Placement("m")
	for _, want := range []string{
		"radixrouter_requests_total 1",
		"radixrouter_failovers_total 0",
		fmt.Sprintf("radixrouter_backend_healthy{backend=%q} 1", owners[0]),
		fmt.Sprintf("radixrouter_backend_forwarded_total{backend=%q} 1", owners[0]),
		// The backend's own serving counters, now labeled with its id.
		fmt.Sprintf("radixserve_rows_completed_total{model=\"m\",backend=%q} 1", owners[0]),
		fmt.Sprintf("radixserve_uptime_seconds{backend=%q}", owners[0]),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("merged metrics missing %q", want)
		}
	}
	if got := strings.Count(text, "# TYPE radixserve_rows_completed_total"); got != 1 {
		t.Errorf("TYPE header for radixserve_rows_completed_total appears %d times, want 1 (dedup)", got)
	}
	if got := strings.Count(text, "# TYPE radixrouter_requests_total"); got != 1 {
		t.Errorf("TYPE header for radixrouter_requests_total appears %d times, want 1", got)
	}
}

// TestRouter429Backoff puts a fake saturated backend behind the router:
// the first attempt 429s with Retry-After, the retry succeeds.
func TestRouter429Backoff(t *testing.T) {
	var calls atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			json.NewEncoder(w).Encode(serve.Health{Status: "ok"})
		case "/v1/infer":
			if calls.Add(1) == 1 {
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(http.StatusTooManyRequests)
				json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "queue full", Model: "m"})
				return
			}
			json.NewEncoder(w).Encode(serve.InferResponse{Model: "m", Rows: 1, Outputs: [][]float64{{1}}})
		}
	}))
	defer backend.Close()
	rt, err := NewRouter(RouterConfig{
		Backends:   []string{backend.URL},
		MaxBackoff: 20 * time.Millisecond, // don't sleep the full advertised second in tests
		Set:        SetConfig{ProbeInterval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	start := time.Now()
	resp, err := http.Post(ts.URL+"/v1/infer", "application/json", strings.NewReader(`{"model":"m","inputs":[[1]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 after backoff retry", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("no backoff observed (%v)", elapsed)
	}
	if calls.Load() != 2 {
		t.Fatalf("backend called %d times, want 2", calls.Load())
	}
	if rt.met.backoffs.Load() != 1 {
		t.Fatalf("backoffs = %d, want 1", rt.met.backoffs.Load())
	}
}

func TestInjectBackendLabel(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"radixserve_uptime_seconds 3.5", `radixserve_uptime_seconds{backend="b:1"} 3.5`},
		{`x_total{model="m"} 7`, `x_total{model="m",backend="b:1"} 7`},
		{`x_total{} 7`, `x_total{backend="b:1"} 7`},
		{`x{a="s p"} 1`, `x{a="s p",backend="b:1"} 1`},
		// The exposition format's optional trailing timestamp.
		{"x_total 1027 1712345678000", `x_total{backend="b:1"} 1027 1712345678000`},
		{`x_total{model="m"} 7 1712345678000`, `x_total{model="m",backend="b:1"} 7 1712345678000`},
	} {
		if got := injectBackendLabel(tc.in, "b:1"); got != tc.want {
			t.Errorf("injectBackendLabel(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func BenchmarkRingOwners(b *testing.B) {
	r := NewRing(0)
	for i := 0; i < 16; i++ {
		r.Add(fmt.Sprintf("10.0.0.%d:8080", i))
	}
	keys := ringKeys(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Owners(keys[i%len(keys)], 2) == nil {
			b.Fatal("no owners")
		}
	}
}
