package cluster

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/radix-net/radixnet/internal/obs"
	"github.com/radix-net/radixnet/internal/obs/slo"
)

// fleetSLOSample is one fleet-merged cumulative series for the router's
// SLO engine: class "" is the per-model aggregate.
type fleetSLOSample struct {
	model, class string
	sample       slo.Sample
}

// fleetCounters accumulates the row-outcome counter families of one
// model (aggregate) or model×class across backend scrapes.
type fleetCounters struct {
	accepted, rejected, failed, expired uint64
}

// scraped converts an accumulated merge into the le-ladder form the SLO
// engine consumes, dropping the +Inf bucket (ScrapedHist carries overflow
// in Count).
func (mh *mergedHist) scraped() obs.ScrapedHist {
	les := make([]string, 0, len(mh.cum))
	for le := range mh.cum {
		les = append(les, le)
	}
	sort.Slice(les, func(i, j int) bool { return leValue(les[i]) < leValue(les[j]) })
	h := obs.ScrapedHist{Count: mh.count, Sum: mh.sum}
	for _, le := range les {
		v := leValue(le)
		if math.IsInf(v, 1) {
			continue
		}
		h.Les = append(h.Les, v)
		h.Cum = append(h.Cum, mh.cum[le])
	}
	return h
}

// collectFleetSLOSamples folds backend scrapes into cumulative SLO
// samples: the per-model aggregate latency family plus row-outcome
// counters, and the per-model×class family likewise. Bad/Total mirror
// the serve tier's own accounting (failed+expired+rejected over
// accepted+rejected for the aggregate; the class counters lack a failed
// series, so a class's Bad is expired+rejected).
func collectFleetSLOSamples(scrapes []string) []fleetSLOSample {
	agg := map[string]*mergedHist{}
	byClass := map[string]*mergedHist{}
	counters := map[fleetKey]*fleetCounters{}
	for _, s := range scrapes {
		if s == "" {
			continue
		}
		collectHistFamily(s, "radixserve_request_latency_seconds", agg)
		collectHistFamily(s, "radixserve_class_request_latency_seconds", byClass)
		collectOutcomeCounters(s, counters)
	}
	var out []fleetSLOSample
	for _, mh := range agg {
		labels := obs.ParseLabels(mh.labels)
		model := labels["model"]
		if model == "" {
			continue
		}
		fs := fleetSLOSample{model: model, sample: slo.Sample{Hist: mh.scraped()}}
		if c := counters[fleetKey{model, ""}]; c != nil {
			fs.sample.Bad = c.failed + c.expired + c.rejected
			fs.sample.Total = c.accepted + c.rejected
		}
		out = append(out, fs)
	}
	for _, mh := range byClass {
		labels := obs.ParseLabels(mh.labels)
		model, class := labels["model"], labels["class"]
		if model == "" || class == "" {
			continue
		}
		fs := fleetSLOSample{model: model, class: class, sample: slo.Sample{Hist: mh.scraped()}}
		if c := counters[fleetKey{model, class}]; c != nil {
			fs.sample.Bad = c.expired + c.rejected
			fs.sample.Total = c.accepted + c.rejected
		}
		out = append(out, fs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].model != out[j].model {
			return out[i].model < out[j].model
		}
		return out[i].class < out[j].class
	})
	return out
}

type fleetKey struct{ model, class string }

// collectOutcomeCounters folds one scrape's row-outcome counter series
// into the per-(model, class) accumulators; the aggregate families land
// on class "".
func collectOutcomeCounters(scrape string, out map[fleetKey]*fleetCounters) {
	for _, line := range strings.Split(scrape, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labelBody, valStr, ok := obs.SplitSeries(line)
		if !ok {
			continue
		}
		var classed bool
		switch name {
		case "radixserve_rows_accepted_total", "radixserve_rows_rejected_total",
			"radixserve_rows_failed_total", "radixserve_rows_expired_total":
		case "radixserve_class_rows_accepted_total", "radixserve_class_rows_rejected_total",
			"radixserve_class_rows_expired_total":
			classed = true
		default:
			continue
		}
		labels := obs.ParseLabels(labelBody)
		model := labels["model"]
		if model == "" {
			continue
		}
		k := fleetKey{model: model}
		if classed {
			if k.class = labels["class"]; k.class == "" {
				continue
			}
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil || v < 0 {
			continue
		}
		c := out[k]
		if c == nil {
			c = &fleetCounters{}
			out[k] = c
		}
		switch {
		case strings.HasSuffix(name, "_accepted_total"):
			c.accepted += uint64(v)
		case strings.HasSuffix(name, "_rejected_total"):
			c.rejected += uint64(v)
		case strings.HasSuffix(name, "_failed_total"):
			c.failed += uint64(v)
		case strings.HasSuffix(name, "_expired_total"):
			c.expired += uint64(v)
		}
	}
}
