package cluster

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/radix-net/radixnet/internal/obs"
	"github.com/radix-net/radixnet/internal/serve"
)

// Backend is one radixserve instance in the fleet: its ring identity, its
// base URL, and atomic health/traffic stats shared by the prober and the
// router's forwarding path.
type Backend struct {
	id  string // ring identity (host:port)
	url string // scheme://host:port, no trailing slash

	healthy     atomic.Bool
	consecFails atomic.Int64 // probe + forward failures since the last good probe

	probes        atomic.Int64
	probeFailures atomic.Int64
	forwarded     atomic.Int64 // requests answered by this backend (any status)
	failed        atomic.Int64 // forward attempts lost to transport/5xx errors
	lastErr       atomic.Value // string: most recent probe/forward error
	zone          atomic.Value // string: failure domain self-reported on /healthz ("" = unzoned)

	// attempt records the round-trip latency (ns) of every answered
	// forward attempt against this backend, exported on the router's
	// /metrics as radixrouter_backend_attempt_latency_seconds{backend=id}.
	attempt obs.Histogram
}

// AttemptLatency snapshots the backend's answered-forward latency
// histogram (nanosecond observations).
func (b *Backend) AttemptLatency() obs.HistSnapshot { return b.attempt.Snapshot() }

// ID returns the backend's ring identity (host:port).
func (b *Backend) ID() string { return b.id }

// URL returns the backend's base URL.
func (b *Backend) URL() string { return b.url }

// Healthy reports whether the backend is in rotation.
func (b *Backend) Healthy() bool { return b.healthy.Load() }

// Zone returns the backend's failure domain, learned from its /healthz
// self-report (or statically configured); "" until the first good probe of
// a zoned backend.
func (b *Backend) Zone() string {
	if z, ok := b.zone.Load().(string); ok {
		return z
	}
	return ""
}

// setZone records the backend's failure domain (probe self-report or static
// configuration).
func (b *Backend) setZone(z string) { b.zone.Store(z) }

// BackendStatus is a point-in-time copy of a backend's state, the element
// of the router's /healthz report.
type BackendStatus struct {
	ID                  string `json:"id"`
	URL                 string `json:"url"`
	Healthy             bool   `json:"healthy"`
	ConsecutiveFailures int64  `json:"consecutive_failures"`
	Probes              int64  `json:"probes"`
	ProbeFailures       int64  `json:"probe_failures"`
	Forwarded           int64  `json:"forwarded"`
	Failed              int64  `json:"failed"`
	LastError           string `json:"last_error,omitempty"`
	Zone                string `json:"zone,omitempty"`
}

// Status snapshots the backend.
func (b *Backend) Status() BackendStatus {
	s := BackendStatus{
		ID:                  b.id,
		URL:                 b.url,
		Healthy:             b.healthy.Load(),
		ConsecutiveFailures: b.consecFails.Load(),
		Probes:              b.probes.Load(),
		ProbeFailures:       b.probeFailures.Load(),
		Forwarded:           b.forwarded.Load(),
		Failed:              b.failed.Load(),
		Zone:                b.Zone(),
	}
	if e, ok := b.lastErr.Load().(string); ok {
		s.LastError = e
	}
	return s
}

// SetConfig tunes the backend set's health probing. Zero fields select
// defaults.
type SetConfig struct {
	// ProbeInterval is the per-backend /healthz cadence. Default 2s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe; a hung backend fails its probe.
	// Default 1s.
	ProbeTimeout time.Duration
	// FailAfter is the consecutive-failure count (probes and forwards
	// combined) that ejects a backend from rotation. Default 3.
	FailAfter int
	// Vnodes is the ring's virtual-node count per backend. Default
	// DefaultVnodes.
	Vnodes int
	// Client issues probes and forwards. Default: a dedicated client with
	// pooled keep-alive connections.
	Client *http.Client
	// Zones statically assigns failure domains by backend id, seeding what
	// probes would learn from each backend's /healthz self-report (the
	// self-report wins once a probe answers — the backend knows where it
	// runs). Backends absent from the map start unzoned.
	Zones map[string]string
}

func (c SetConfig) withDefaults() SetConfig {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3
	}
	if c.Vnodes <= 0 {
		c.Vnodes = DefaultVnodes
	}
	if c.Client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = 64
		c.Client = &http.Client{Transport: tr}
	}
	return c
}

// BackendSet owns the fleet membership: the consistent-hash ring over the
// backends plus one prober goroutine per backend. Backends start in
// rotation (healthy) so traffic flows before the first probe completes;
// the probers eject and re-admit from there.
type BackendSet struct {
	cfg  SetConfig
	ring *Ring

	backends map[string]*Backend
	order    []string // construction order, for stable listings

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
}

// normalizeBackend splits one -backend flag value into (id, url): the id is
// the host:port ring identity, the url the http base. "10.0.0.7:8080" and
// "http://10.0.0.7:8080" are equivalent.
func normalizeBackend(raw string) (id, url string, err error) {
	raw = strings.TrimSuffix(strings.TrimSpace(raw), "/")
	if raw == "" {
		return "", "", fmt.Errorf("cluster: empty backend address")
	}
	switch {
	case strings.HasPrefix(raw, "http://"):
		id = strings.TrimPrefix(raw, "http://")
	case strings.HasPrefix(raw, "https://"):
		id = strings.TrimPrefix(raw, "https://")
	case strings.Contains(raw, "://"):
		return "", "", fmt.Errorf("cluster: unsupported backend scheme in %q", raw)
	default:
		id, raw = raw, "http://"+raw
	}
	if id == "" || strings.ContainsAny(id, "/ ") {
		return "", "", fmt.Errorf("cluster: malformed backend address %q", raw)
	}
	return id, raw, nil
}

// NewBackendSet builds the fleet from backend addresses ("host:port" or
// "http://host:port"), placing every backend on a fresh ring. Probing does
// not start until Start.
func NewBackendSet(addrs []string, cfg SetConfig) (*BackendSet, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no backends")
	}
	cfg = cfg.withDefaults()
	s := &BackendSet{
		cfg:      cfg,
		ring:     NewRing(cfg.Vnodes),
		backends: make(map[string]*Backend, len(addrs)),
		stop:     make(chan struct{}),
	}
	for _, raw := range addrs {
		id, url, err := normalizeBackend(raw)
		if err != nil {
			return nil, err
		}
		if _, dup := s.backends[id]; dup {
			return nil, fmt.Errorf("cluster: duplicate backend %q", id)
		}
		b := &Backend{id: id, url: url}
		b.healthy.Store(true)
		if z, ok := cfg.Zones[id]; ok {
			b.setZone(z)
		}
		s.backends[id] = b
		s.order = append(s.order, id)
		s.ring.Add(id)
	}
	return s, nil
}

// Ring returns the placement ring (membership is stable for the set's
// lifetime; health is tracked off-ring so recovery never re-shuffles keys).
func (s *BackendSet) Ring() *Ring { return s.ring }

// Backend looks up one backend by ring id.
func (s *BackendSet) Backend(id string) (*Backend, bool) {
	b, ok := s.backends[id]
	return b, ok
}

// Backends returns every backend in construction order.
func (s *BackendSet) Backends() []*Backend {
	bs := make([]*Backend, 0, len(s.order))
	for _, id := range s.order {
		bs = append(bs, s.backends[id])
	}
	return bs
}

// HealthyCount returns how many backends are in rotation.
func (s *BackendSet) HealthyCount() int {
	n := 0
	for _, b := range s.backends {
		if b.Healthy() {
			n++
		}
	}
	return n
}

// zoneOf resolves a ring id to its backend's failure domain — the lookup
// behind the zone-aware walk.
func (s *BackendSet) zoneOf(id string) string {
	if b, ok := s.backends[id]; ok {
		return b.Zone()
	}
	return ""
}

// Owners returns key's replica set in failover order: the first replicas
// healthy backends in the zone-diverse ring walk from the key's hash —
// replicas spread across min(replicas, zones) distinct failure domains, and
// the next failover candidate preferring yet another zone. Ejected backends
// are skipped transparently, so the walk itself is the failover plan — when
// a primary dies its successors inherit its keys without any membership
// change. An unzoned fleet degrades to the plain clockwise walk.
func (s *BackendSet) Owners(key string, replicas int) []*Backend {
	if replicas <= 0 {
		replicas = 1
	}
	owners := make([]*Backend, 0, replicas)
	s.ring.WalkSpread(key, s.zoneOf, func(id string) bool {
		if b := s.backends[id]; b.Healthy() {
			owners = append(owners, b)
		}
		return len(owners) < replicas
	})
	return owners
}

// Placement returns key's intended owners (health ignored) — what the
// zone-diverse ring walk assigns, as opposed to what Owners can currently
// route to.
func (s *BackendSet) Placement(key string, replicas int) []string {
	return s.ring.OwnersSpread(key, replicas, s.zoneOf)
}

// Start launches one prober per backend, each probing immediately and then
// every ProbeInterval, so a backend dead at startup is ejected within
// FailAfter×ProbeInterval. Idempotent.
func (s *BackendSet) Start() {
	s.startOnce.Do(func() {
		for _, id := range s.order {
			b := s.backends[id]
			s.wg.Add(1)
			go s.probeLoop(b)
		}
	})
}

// Stop halts probing and waits for the probers to exit. Idempotent.
func (s *BackendSet) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}

func (s *BackendSet) probeLoop(b *Backend) {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.ProbeInterval)
	defer t.Stop()
	for {
		s.probe(b)
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
	}
}

// probe hits one backend's /healthz and applies the ejection/re-admission
// rules: FailAfter consecutive failures take it out of rotation, one good
// probe puts it back. The prober runs on its own goroutine with no inbound
// request above it, so each probe legitimately mints its own timeout root.
//
//radix:ctx-root
func (s *BackendSet) probe(b *Backend) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.ProbeTimeout)
	defer cancel()
	b.probes.Add(1)
	h, err := serve.CheckHealth(ctx, s.cfg.Client, b.url)
	if err != nil {
		b.probeFailures.Add(1)
		s.noteFailure(b, err)
		return
	}
	if h.Zone != "" {
		// The backend's self-report is authoritative: it knows where it
		// runs; a static SetConfig.Zones entry is only the pre-probe seed.
		b.setZone(h.Zone)
	}
	b.consecFails.Store(0)
	b.healthy.Store(true)
}

// noteFailure records one probe or forward failure against the backend and
// ejects it once the consecutive-failure threshold is reached. The
// forwarding path calls this too, so a crashed node is ejected by the
// traffic that discovers it instead of lingering until the next probe.
func (s *BackendSet) noteFailure(b *Backend, err error) {
	if err != nil {
		b.lastErr.Store(err.Error())
	}
	if b.consecFails.Add(1) >= int64(s.cfg.FailAfter) {
		// Eject. The ring keeps the node's points; Owners simply walks past
		// them until a good probe re-admits the backend.
		b.healthy.Store(false)
	}
}

// noteForwardSuccess resets the failure streak after a successful forward
// (any HTTP response proves the node is reachable and serving).
func (s *BackendSet) noteForwardSuccess(b *Backend) {
	b.consecFails.Store(0)
}

// backendsHosting scrapes every backend's model listing concurrently —
// health flag ignored, because an ejected-but-reachable backend may still
// hold a copy — and returns those that report hosting model, in
// construction order, plus the ids of backends whose listing could not be
// fetched. This is the discovery step of the control plane's
// reload/unregister fan-out: those verbs must reach every live copy of a
// model (including copies on ring successors left over from fleet
// changes), and a backend discovery cannot see must be surfaced to the
// operator rather than silently skipped — it might rejoin still holding
// the old generation.
func (s *BackendSet) backendsHosting(ctx context.Context, model string, client *http.Client) (hosting []*Backend, unreachable []string) {
	backends := s.Backends()
	hosts := make([]bool, len(backends))
	failed := make([]bool, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		wg.Add(1)
		go func(i int, b *Backend) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(ctx, s.cfg.ProbeTimeout)
			defer cancel()
			infos, err := serve.ListModels(ctx, client, b.url)
			if err != nil {
				failed[i] = true
				return
			}
			for _, info := range infos {
				if info.Name == model {
					hosts[i] = true
					return
				}
			}
		}(i, b)
	}
	wg.Wait()
	for i, b := range backends {
		switch {
		case hosts[i]:
			hosting = append(hosting, b)
		case failed[i]:
			unreachable = append(unreachable, b.id)
		}
	}
	return hosting, unreachable
}
