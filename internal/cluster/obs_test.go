package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/radix-net/radixnet/internal/dataset"
	"github.com/radix-net/radixnet/internal/obs"
	"github.com/radix-net/radixnet/internal/serve"
)

func scrapeText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestRouterFleetMergedHistograms drives real traffic through a 2-backend
// fleet and checks the router's bucket-wise histogram merge: the
// radixrouter_model_* families must reconstruct the fleet-wide
// distribution exactly — counts equal to the sum of the per-backend
// exports, on the shared le ladder.
func TestRouterFleetMergedHistograms(t *testing.T) {
	f := startFleet(t, 2, []string{"m"}, SetConfig{ProbeInterval: time.Hour})
	in, err := dataset.SparseBatch(1, 16, 4, 37)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	for i := 0; i < n; i++ {
		if resp, body := f.post(t, "m", [][]float64{in.RowSlice(0)}); resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	text := scrapeText(t, f.url+"/metrics")

	lat, ok := obs.ParseHistogram(text, "radixrouter_model_request_latency_seconds", map[string]string{"model": "m"})
	if !ok {
		t.Fatal("merged request latency histogram missing from router /metrics")
	}
	if lat.Count != n {
		t.Fatalf("merged latency count = %d, want %d", lat.Count, n)
	}
	if len(lat.Les) == 0 || lat.Les[0] != 4.096e-06 {
		t.Fatalf("merged ladder first le = %v, want 4.096e-06", lat.Les)
	}
	if lat.Cum[len(lat.Cum)-1] != lat.Count {
		t.Fatalf("merged cumulative tops at %d, want count %d", lat.Cum[len(lat.Cum)-1], lat.Count)
	}
	if p99 := lat.Quantile(0.99); p99 <= 0 || p99 > 20 {
		t.Fatalf("merged latency p99 = %v s, implausible", p99)
	}

	// The merge must equal the sum of the per-backend exports. The raw
	// backend series are also re-emitted under the same family name with
	// a backend label, so restrict the direct sum to per-backend scrapes.
	var direct uint64
	for id, srv := range f.srvs {
		_ = srv
		bt := scrapeText(t, "http://"+id+"/metrics")
		if h, ok := obs.ParseHistogram(bt, "radixserve_request_latency_seconds", map[string]string{"model": "m"}); ok {
			direct += h.Count
		}
	}
	if direct != n {
		t.Fatalf("backend scrapes sum to %d requests, want %d", direct, n)
	}

	// Per-class queue wait merged by model×class.
	wait, ok := obs.ParseHistogram(text, "radixrouter_model_queue_wait_seconds",
		map[string]string{"model": "m", "class": serve.ClassInteractive})
	if !ok {
		t.Fatal("merged queue wait histogram missing")
	}
	if wait.Count != n {
		t.Fatalf("merged queue wait count = %d, want %d", wait.Count, n)
	}

	// Engine execute time merged by model.
	exec, ok := obs.ParseHistogram(text, "radixrouter_model_execute_seconds", map[string]string{"model": "m"})
	if !ok {
		t.Fatal("merged execute histogram missing")
	}
	if exec.Count == 0 {
		t.Fatal("merged execute histogram empty")
	}

	// Per-backend attempt latency: every request was answered by exactly
	// one backend, so the fleet-aggregate attempt count equals n.
	att, ok := obs.ParseHistogram(text, "radixrouter_backend_attempt_latency_seconds", nil)
	if !ok {
		t.Fatal("backend attempt latency histogram missing")
	}
	if att.Count != n {
		t.Fatalf("attempt latency count = %d, want %d", att.Count, n)
	}

	// Router runtime gauges ride along.
	for _, want := range []string{"radixrouter_goroutines ", "radixrouter_heap_alloc_bytes "} {
		if !strings.Contains(text, want) {
			t.Errorf("router /metrics missing %q", want)
		}
	}
}

type routerSyncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *routerSyncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *routerSyncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRouterTraceEndToEnd checks the router edge of the tracing contract:
// an incoming X-Radix-Trace-Id is forwarded to the backend, echoed on the
// response, retained in /debug/traces with route and attempt spans, and
// correlated in the slow-request log.
func TestRouterTraceEndToEnd(t *testing.T) {
	const traceID = "feedface00000000feedface00000000"
	var gotForwarded atomicString
	backend := fakeBackend(t, []string{"m"}, func(w http.ResponseWriter, r *http.Request) {
		gotForwarded.Store(r.Header.Get(obs.HeaderTraceID))
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(serve.InferResponse{Model: "m", Rows: 1, Outputs: [][]float64{{1}}})
	})
	var logBuf routerSyncBuffer
	rt, err := NewRouter(RouterConfig{
		Backends:    []string{backend.URL},
		Replicas:    1,
		SlowRequest: time.Nanosecond,
		TraceDepth:  8,
		Logger:      slog.New(slog.NewTextHandler(&logBuf, nil)),
		Set:         SetConfig{ProbeInterval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)

	body, _ := json.Marshal(serve.InferRequest{Model: "m", Inputs: [][]float64{{1}}})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/infer", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.HeaderTraceID, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.HeaderTraceID); got != traceID {
		t.Fatalf("response trace header = %q, want %q", got, traceID)
	}
	if got := gotForwarded.Load(); got != traceID {
		t.Fatalf("backend received trace header %q, want %q", got, traceID)
	}

	// The trace is browsable with route + attempt spans, backend and
	// status attributed.
	var view struct {
		Total  uint64       `json:"total"`
		Recent []*obs.Trace `json:"recent"`
	}
	tresp, err := http.Get(ts.URL + "/debug/traces?n=4")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(tresp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if view.Total == 0 || len(view.Recent) == 0 {
		t.Fatalf("debug traces empty: %+v", view)
	}
	var found *obs.Trace
	for _, tr := range view.Recent {
		if tr.ID == traceID {
			found = tr
		}
	}
	if found == nil {
		t.Fatalf("trace %s not retained: %+v", traceID, view.Recent)
	}
	if found.Status != http.StatusOK || found.Model != "m" || found.Backend == "" {
		t.Fatalf("trace attribution wrong: %+v", found)
	}
	names := make(map[string]bool)
	hasAttempt := false
	for _, s := range found.Spans {
		names[s.Name] = true
		if strings.HasPrefix(s.Name, "attempt:") {
			hasAttempt = true
		}
	}
	if !names["route"] || !hasAttempt {
		t.Fatalf("trace spans missing route/attempt: %+v", found.Spans)
	}

	// Slow-request log correlates by trace ID and carries the breakdown.
	logged := logBuf.String()
	if !strings.Contains(logged, "slow request") || !strings.Contains(logged, traceID) {
		t.Fatalf("slow-request log missing trace correlation: %s", logged)
	}

	// A request without a trace header gets a generated ID echoed back.
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/infer", bytes.NewReader(body))
	req2.Header.Set("Content-Type", "application/json")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if got := resp2.Header.Get(obs.HeaderTraceID); len(got) != 32 {
		t.Fatalf("generated trace ID = %q, want 32 hex chars", got)
	}
}

type atomicString struct {
	mu sync.Mutex
	s  string
}

func (a *atomicString) Store(s string) { a.mu.Lock(); a.s = s; a.mu.Unlock() }
func (a *atomicString) Load() string   { a.mu.Lock(); defer a.mu.Unlock(); return a.s }

// TestRouterPprofOptIn checks that profiling endpoints exist only when
// RouterConfig.Pprof is set.
func TestRouterPprofOptIn(t *testing.T) {
	backend := fakeBackend(t, nil, func(w http.ResponseWriter, r *http.Request) {})
	for _, tc := range []struct {
		pprof  bool
		wantOK bool
	}{{false, false}, {true, true}} {
		rt, err := NewRouter(RouterConfig{
			Backends: []string{backend.URL},
			Pprof:    tc.pprof,
			Set:      SetConfig{ProbeInterval: time.Hour},
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(rt.Handler())
		resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		ts.Close()
		if ok := resp.StatusCode == http.StatusOK; ok != tc.wantOK {
			t.Errorf("pprof=%v: cmdline status %d, want ok=%v", tc.pprof, resp.StatusCode, tc.wantOK)
		}
	}
}
