package cluster

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/radix-net/radixnet/internal/obs"
)

// histMergeFamilies maps each serve-tier histogram family to the
// fleet-merged family the router re-emits it under. Merging is valid
// because every obs.Histogram shares the identical le ladder: summing
// cumulative bucket counts per le across backends yields the exact
// histogram a single node observing all the traffic would have exported.
var histMergeFamilies = []struct{ src, dst, help string }{
	{"radixserve_request_latency_seconds", "radixrouter_model_request_latency_seconds",
		"Fleet-merged end-to-end request latency by model (bucket-wise sum across backends)."},
	{"radixserve_queue_wait_seconds", "radixrouter_model_queue_wait_seconds",
		"Fleet-merged class-queue wait by model and class (bucket-wise sum across backends)."},
	{"radixserve_execute_seconds", "radixrouter_model_execute_seconds",
		"Fleet-merged engine execute time by model (bucket-wise sum across backends)."},
	{"radixserve_class_request_latency_seconds", "radixrouter_model_class_request_latency_seconds",
		"Fleet-merged end-to-end request latency by model and class (bucket-wise sum across backends)."},
}

// mergedHist accumulates one fleet-merged series: the canonical label
// body (le stripped, keys sorted) plus per-le cumulative counts and the
// series sum/count.
type mergedHist struct {
	labels string
	cum    map[string]uint64 // le string → summed cumulative count
	sum    float64
	count  uint64
	// exemplar keeps the last exemplar annotation seen per le across the
	// scrapes, so a merged bucket still names a request that landed in it
	// (trace IDs are fleet-wide: the router minted or relayed them).
	exemplar map[string]string
}

// writeFleetHistograms re-emits the serve tier's histogram families from
// the backend scrapes as radixrouter_model_* families, summed bucket-wise
// per label set (model, or model×class for queue wait).
func writeFleetHistograms(w io.Writer, scrapes []string) {
	for _, fam := range histMergeFamilies {
		series := map[string]*mergedHist{}
		for _, scrape := range scrapes {
			if scrape != "" {
				collectHistFamily(scrape, fam.src, series)
			}
		}
		if len(series) == 0 {
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", fam.dst, fam.help, fam.dst)
		keys := make([]string, 0, len(series))
		for k := range series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			mh := series[k]
			les := make([]string, 0, len(mh.cum))
			for le := range mh.cum {
				les = append(les, le)
			}
			sort.Slice(les, func(i, j int) bool { return leValue(les[i]) < leValue(les[j]) })
			for _, le := range les {
				if ex := mh.exemplar[le]; ex != "" {
					fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d # %s\n", fam.dst, mh.labels, le, mh.cum[le], ex)
				} else {
					fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", fam.dst, mh.labels, le, mh.cum[le])
				}
			}
			fmt.Fprintf(w, "%s_sum{%s} %g\n", fam.dst, mh.labels, mh.sum)
			fmt.Fprintf(w, "%s_count{%s} %d\n", fam.dst, mh.labels, mh.count)
		}
	}
}

// collectHistFamily folds one backend scrape's series of the given
// histogram family into the per-label-set accumulators.
func collectHistFamily(scrape, family string, out map[string]*mergedHist) {
	for _, line := range strings.Split(scrape, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		_, exemplar := obs.SplitExemplar(line)
		name, labelBody, valStr, ok := obs.SplitSeries(line)
		if !ok {
			continue
		}
		var kind string
		switch name {
		case family + "_bucket":
			kind = "bucket"
		case family + "_sum":
			kind = "sum"
		case family + "_count":
			kind = "count"
		default:
			continue
		}
		labels := obs.ParseLabels(labelBody)
		le := labels["le"]
		key := canonicalLabels(labels)
		mh := out[key]
		if mh == nil {
			mh = &mergedHist{labels: key, cum: map[string]uint64{}, exemplar: map[string]string{}}
			out[key] = mh
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			continue
		}
		switch kind {
		case "bucket":
			if le != "" {
				mh.cum[le] += uint64(v)
				if exemplar != "" {
					mh.exemplar[le] = exemplar
				}
			}
		case "sum":
			mh.sum += v
		case "count":
			mh.count += uint64(v)
		}
	}
}

// canonicalLabels renders a label map (minus le) with sorted keys, so the
// same label set scraped from different backends lands on one series.
func canonicalLabels(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
	}
	return strings.Join(parts, ",")
}

// leValue orders le strings numerically, +Inf last.
func leValue(s string) float64 {
	if s == "+Inf" {
		return math.Inf(1)
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return math.Inf(1)
	}
	return f
}
