package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"github.com/radix-net/radixnet/internal/autoscale"
	"github.com/radix-net/radixnet/internal/graphio"
	"github.com/radix-net/radixnet/internal/serve"
)

// TestScaleToWidensAndNarrows drives the actuation path end to end over
// real backends: a router-registered model scales out to new ring owners
// (engines built before routing widens), serves correctly at the wider
// replica count, then scales back in with the surplus copies drained.
func TestScaleToWidensAndNarrows(t *testing.T) {
	f := startFleet(t, 5, nil, SetConfig{ProbeInterval: time.Hour})
	cfgJSON, err := graphio.MarshalConfig(f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	regBody, err := json.Marshal(serve.RegisterRequest{Name: "live", Config: cfgJSON, Engines: 1})
	if err != nil {
		t.Fatal(err)
	}
	if code, body := adminDo(t, http.MethodPost, f.url+"/v1/models", regBody); code != http.StatusCreated {
		t.Fatalf("register: status %d: %s", code, body)
	}
	rt := f.router
	ctx := context.Background()

	hosting := func() map[string]bool {
		hosts := map[string]bool{}
		for id, reg := range f.regs {
			if _, ok := reg.Model("live"); ok {
				hosts[id] = true
			}
		}
		return hosts
	}
	assertHostedByPlacement := func(want int) {
		t.Helper()
		if got := rt.ReplicasFor("live"); got != want {
			t.Fatalf("ReplicasFor = %d, want %d", got, want)
		}
		owners := rt.Placement("live")
		if len(owners) != want {
			t.Fatalf("placement %v, want %d owners", owners, want)
		}
		hosts := hosting()
		if len(hosts) != want {
			t.Fatalf("%d backends host the model, want %d (hosts %v)", len(hosts), want, hosts)
		}
		for _, id := range owners {
			if !hosts[id] {
				t.Fatalf("intended owner %s does not host the model (hosts %v)", id, hosts)
			}
		}
	}
	assertHostedByPlacement(2)

	// Scale out 2 → 4: the two new owners get the cached register body.
	if _, err := rt.ScaleTo(ctx, "live", 4); err != nil {
		t.Fatal(err)
	}
	assertHostedByPlacement(4)
	if resp, body := f.post(t, "live", [][]float64{make([]float64, 16)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("inference at 4 replicas: status %d: %s", resp.StatusCode, body)
	}

	// Scale back in 4 → 2: the surplus owners drain and unregister; the
	// survivors are exactly the original placement prefix.
	if _, err := rt.ScaleTo(ctx, "live", 2); err != nil {
		t.Fatal(err)
	}
	assertHostedByPlacement(2)
	if resp, body := f.post(t, "live", [][]float64{make([]float64, 16)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("inference after scale-in: status %d: %s", resp.StatusCode, body)
	}

	// ScaleTo is clamped and idempotent: same count is a no-op.
	if res, err := rt.ScaleTo(ctx, "live", 2); err != nil || res != nil {
		t.Fatalf("no-op scale: res=%v err=%v", res, err)
	}
}

// TestScaleOutWithoutRegisterBodyFails: a model registered directly on the
// backends (bypassing the router) has no cached desired config, so the
// router must refuse to scale it out rather than register garbage.
func TestScaleOutWithoutRegisterBodyFails(t *testing.T) {
	f := startFleet(t, 4, []string{"direct"}, SetConfig{ProbeInterval: time.Hour})
	if _, err := f.router.ScaleTo(context.Background(), "direct", 3); err == nil {
		t.Fatal("scale-out without a cached register body must fail")
	}
}

// TestShedClassReturns429 pins the last-resort actuation: a shed class is
// refused router-side with 429 + Retry-After while other classes route
// normally, and clearing the shed restores service.
func TestShedClassReturns429(t *testing.T) {
	f := startFleet(t, 3, []string{"m"}, SetConfig{ProbeInterval: time.Hour})
	post := func(class string) int {
		t.Helper()
		body, err := json.Marshal(serve.InferRequest{Model: "m", Inputs: [][]float64{make([]float64, 16)}, Class: class})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(f.url+"/v1/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
			t.Fatal("shed 429 must carry Retry-After")
		}
		return resp.StatusCode
	}
	f.router.setShed("m", "background")
	if code := post("background"); code != http.StatusTooManyRequests {
		t.Fatalf("shed class: status %d, want 429", code)
	}
	if code := post("interactive"); code != http.StatusOK {
		t.Fatalf("protected class during shed: status %d, want 200", code)
	}
	f.router.setShed("m", "")
	if code := post("background"); code != http.StatusOK {
		t.Fatalf("after unshed: status %d, want 200", code)
	}
	if f.router.Metrics().Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", f.router.Metrics().Shed)
	}
}

// TestAutoscaleStatusEndpoint: disabled routers answer 404; enabled ones
// report the validated policy.
func TestAutoscaleStatusEndpoint(t *testing.T) {
	f := startFleet(t, 3, nil, SetConfig{ProbeInterval: time.Hour})
	if code, _ := adminDo(t, http.MethodGet, f.url+"/v1/autoscale", nil); code != http.StatusNotFound {
		t.Fatalf("autoscale disabled: status %d, want 404", code)
	}

	fa := startFleetOpts(t, 3, nil, SetConfig{ProbeInterval: time.Hour}, func(cfg *RouterConfig) {
		cfg.Autoscale = &autoscale.Policy{Interval: time.Hour} // loop armed but never fires
	})
	code, body := adminDo(t, http.MethodGet, fa.url+"/v1/autoscale", nil)
	if code != http.StatusOK {
		t.Fatalf("autoscale enabled: status %d: %s", code, body)
	}
	var st AutoscaleStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || st.Policy.ScaleUpP90 != autoscale.DefaultScaleUpP90 {
		t.Fatalf("status %+v: want enabled with defaulted policy", st)
	}
}
