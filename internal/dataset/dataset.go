// Package dataset provides deterministic synthetic datasets for the
// training and inference experiments. The paper's deferred evaluation [15]
// used MNIST-class image data, which is unavailable offline; these
// generators exercise the identical code paths (multiclass classification
// through sparse vs dense layers, batched sparse inference) with seeded,
// reproducible data. See DESIGN.md §5 for the substitution rationale.
package dataset

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/radix-net/radixnet/internal/sparse"
)

// Dataset is a labeled classification dataset: one sample per row of X.
type Dataset struct {
	X       *sparse.Dense
	Labels  []int
	Classes int
}

// Split partitions the dataset into a training and test set at the given
// fraction, after a seeded shuffle.
func (d *Dataset) Split(trainFrac float64, seed int64) (train, test *Dataset, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: train fraction %g out of (0,1)", trainFrac)
	}
	n := d.X.Rows()
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	nTrain := int(float64(n) * trainFrac)
	if nTrain < 1 || nTrain >= n {
		return nil, nil, errors.New("dataset: split leaves an empty side")
	}
	pick := func(idx []int) *Dataset {
		x, _ := sparse.NewDense(len(idx), d.X.Cols())
		labels := make([]int, len(idx))
		for i, j := range idx {
			copy(x.RowSlice(i), d.X.RowSlice(j))
			labels[i] = d.Labels[j]
		}
		return &Dataset{X: x, Labels: labels, Classes: d.Classes}
	}
	return pick(perm[:nTrain]), pick(perm[nTrain:]), nil
}

// Targets returns the one-hot encoding of the labels.
func (d *Dataset) Targets() (*sparse.Dense, error) {
	out, err := sparse.NewDense(len(d.Labels), d.Classes)
	if err != nil {
		return nil, err
	}
	for i, l := range d.Labels {
		if l < 0 || l >= d.Classes {
			return nil, fmt.Errorf("dataset: label %d out of range [0,%d)", l, d.Classes)
		}
		out.Set(i, l, 1)
	}
	return out, nil
}

// glyphs is a 5×7 bitmap font for the ten digits, the deterministic core of
// the procedural digit dataset.
var glyphs = [10][7]string{
	{"01110", "10001", "10011", "10101", "11001", "10001", "01110"}, // 0
	{"00100", "01100", "00100", "00100", "00100", "00100", "01110"}, // 1
	{"01110", "10001", "00001", "00110", "01000", "10000", "11111"}, // 2
	{"01110", "10001", "00001", "00110", "00001", "10001", "01110"}, // 3
	{"00010", "00110", "01010", "10010", "11111", "00010", "00010"}, // 4
	{"11111", "10000", "11110", "00001", "00001", "10001", "01110"}, // 5
	{"01110", "10000", "10000", "11110", "10001", "10001", "01110"}, // 6
	{"11111", "00001", "00010", "00100", "01000", "01000", "01000"}, // 7
	{"01110", "10001", "10001", "01110", "10001", "10001", "01110"}, // 8
	{"01110", "10001", "10001", "01111", "00001", "00001", "01110"}, // 9
}

// DigitSide is the side length of generated digit images.
const DigitSide = 16

// DigitFeatures is the flattened feature count of a digit image.
const DigitFeatures = DigitSide * DigitSide

// Digits renders n procedural digit images (16×16, flattened row-major,
// values in [0,1]) with random translation, per-pixel Gaussian noise and
// intensity jitter, labeled 0–9. It is this library's stand-in for MNIST:
// same task shape, deterministic for a fixed seed.
func Digits(n int, noise float64, seed int64) (*Dataset, error) {
	if n < 1 {
		return nil, errors.New("dataset: need at least one sample")
	}
	if noise < 0 {
		return nil, fmt.Errorf("dataset: noise %g must be non-negative", noise)
	}
	rng := rand.New(rand.NewSource(seed))
	x, err := sparse.NewDense(n, DigitFeatures)
	if err != nil {
		return nil, err
	}
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		digit := rng.Intn(10)
		labels[i] = digit
		row := x.RowSlice(i)
		// Base placement centers the 5×7 glyph in 16×16 with ±2 jitter and
		// a 2× integer scale.
		offR := 1 + rng.Intn(3) // glyph occupies 14 rows at scale 2
		offC := 2 + rng.Intn(3)
		intensity := 0.75 + 0.25*rng.Float64()
		for gr := 0; gr < 7; gr++ {
			for gc := 0; gc < 5; gc++ {
				if glyphs[digit][gr][gc] != '1' {
					continue
				}
				for dr := 0; dr < 2; dr++ {
					for dc := 0; dc < 2; dc++ {
						r := offR + gr*2 + dr
						c := offC + gc*2 + dc
						if r >= 0 && r < DigitSide && c >= 0 && c < DigitSide {
							row[r*DigitSide+c] = intensity
						}
					}
				}
			}
		}
		if noise > 0 {
			for j := range row {
				v := row[j] + rng.NormFloat64()*noise
				row[j] = math.Min(1, math.Max(0, v))
			}
		}
	}
	return &Dataset{X: x, Labels: labels, Classes: 10}, nil
}

// Gaussians samples an isotropic Gaussian-mixture classification task:
// `classes` unit-variance blobs at random centers in [-1,1]^dim scaled by
// `spread`, n samples total with balanced classes.
func Gaussians(n, dim, classes int, spread float64, seed int64) (*Dataset, error) {
	if n < classes || dim < 1 || classes < 2 {
		return nil, fmt.Errorf("dataset: invalid gaussian task n=%d dim=%d classes=%d", n, dim, classes)
	}
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, classes)
	for k := range centers {
		c := make([]float64, dim)
		for j := range c {
			c[j] = (rng.Float64()*2 - 1) * spread
		}
		centers[k] = c
	}
	x, err := sparse.NewDense(n, dim)
	if err != nil {
		return nil, err
	}
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		k := i % classes
		labels[i] = k
		row := x.RowSlice(i)
		for j := range row {
			row[j] = centers[k][j] + rng.NormFloat64()
		}
	}
	return &Dataset{X: x, Labels: labels, Classes: classes}, nil
}

// TwoMoons samples the classic interleaved-crescents binary task: two
// half-circles offset so that no linear separator exists. It is the
// nonlinear complement to Gaussians for exercising hidden-layer capacity.
func TwoMoons(n int, noise float64, seed int64) (*Dataset, error) {
	if n < 2 {
		return nil, errors.New("dataset: need at least two samples")
	}
	if noise < 0 {
		return nil, fmt.Errorf("dataset: noise %g must be non-negative", noise)
	}
	rng := rand.New(rand.NewSource(seed))
	x, err := sparse.NewDense(n, 2)
	if err != nil {
		return nil, err
	}
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		k := i % 2
		labels[i] = k
		theta := rng.Float64() * math.Pi
		var px, py float64
		if k == 0 {
			px, py = math.Cos(theta), math.Sin(theta)
		} else {
			px, py = 1-math.Cos(theta), 0.5-math.Sin(theta)
		}
		x.Set(i, 0, px+rng.NormFloat64()*noise)
		x.Set(i, 1, py+rng.NormFloat64()*noise)
	}
	return &Dataset{X: x, Labels: labels, Classes: 2}, nil
}

// SparseBatch generates a batch of mostly-zero activation rows for the
// inference engine: each of the n rows has exactly nnzPerRow entries set to
// values in (0, 1], at uniformly random positions — the shape of Graph
// Challenge input batches.
func SparseBatch(n, width, nnzPerRow int, seed int64) (*sparse.Dense, error) {
	if n < 1 || width < 1 || nnzPerRow < 1 || nnzPerRow > width {
		return nil, fmt.Errorf("dataset: invalid sparse batch n=%d width=%d nnz=%d", n, width, nnzPerRow)
	}
	rng := rand.New(rand.NewSource(seed))
	x, err := sparse.NewDense(n, width)
	if err != nil {
		return nil, err
	}
	perm := make([]int, width)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < n; i++ {
		row := x.RowSlice(i)
		for j := 0; j < nnzPerRow; j++ {
			k := j + rng.Intn(width-j)
			perm[j], perm[k] = perm[k], perm[j]
			row[perm[j]] = rng.Float64()*0.9 + 0.1
		}
	}
	return x, nil
}

// Func1D samples a scalar function on [0,1]: n points xi uniform (including
// the endpoints when n ≥ 2), targets f(xi). Used by the conjecture harness.
func Func1D(f func(float64) float64, n int) (x, y *sparse.Dense, err error) {
	if n < 2 {
		return nil, nil, errors.New("dataset: need at least two sample points")
	}
	x, err = sparse.NewDense(n, 1)
	if err != nil {
		return nil, nil, err
	}
	y, err = sparse.NewDense(n, 1)
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < n; i++ {
		xi := float64(i) / float64(n-1)
		x.Set(i, 0, xi)
		y.Set(i, 0, f(xi))
	}
	return x, y, nil
}
