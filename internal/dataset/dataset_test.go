package dataset

import (
	"math"
	"testing"
)

func TestDigitsShapeAndDeterminism(t *testing.T) {
	a, err := Digits(50, 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.X.Rows() != 50 || a.X.Cols() != DigitFeatures || a.Classes != 10 {
		t.Fatalf("shape %dx%d classes=%d", a.X.Rows(), a.X.Cols(), a.Classes)
	}
	for _, l := range a.Labels {
		if l < 0 || l > 9 {
			t.Fatalf("label %d out of range", l)
		}
	}
	b, err := Digits(50, 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := a.X.MaxAbsDiff(b.X)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Fatal("same seed must reproduce identical data")
	}
	c, _ := Digits(50, 0.05, 43)
	diff, _ = a.X.MaxAbsDiff(c.X)
	if diff == 0 {
		t.Fatal("different seeds should differ")
	}
}

func TestDigitsValueRange(t *testing.T) {
	d, err := Digits(30, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range d.X.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %g outside [0,1]", v)
		}
	}
}

func TestDigitsGlyphsAreDistinguishable(t *testing.T) {
	// Noise-free class means must differ pairwise; otherwise the task would
	// be degenerate.
	d, err := Digits(400, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	means := make([][]float64, 10)
	counts := make([]int, 10)
	for i := range means {
		means[i] = make([]float64, DigitFeatures)
	}
	for i := 0; i < d.X.Rows(); i++ {
		l := d.Labels[i]
		counts[l]++
		for j, v := range d.X.RowSlice(i) {
			means[l][j] += v
		}
	}
	for k := 0; k < 10; k++ {
		if counts[k] == 0 {
			t.Fatalf("class %d unsampled in 400 draws", k)
		}
		for j := range means[k] {
			means[k][j] /= float64(counts[k])
		}
	}
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			var dist float64
			for j := range means[a] {
				diff := means[a][j] - means[b][j]
				dist += diff * diff
			}
			if math.Sqrt(dist) < 0.5 {
				t.Fatalf("classes %d and %d nearly identical (dist %g)", a, b, math.Sqrt(dist))
			}
		}
	}
}

func TestDigitsErrors(t *testing.T) {
	if _, err := Digits(0, 0.1, 1); err == nil {
		t.Fatal("zero samples accepted")
	}
	if _, err := Digits(10, -0.1, 1); err == nil {
		t.Fatal("negative noise accepted")
	}
}

func TestGaussians(t *testing.T) {
	d, err := Gaussians(90, 4, 3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.X.Rows() != 90 || d.X.Cols() != 4 || d.Classes != 3 {
		t.Fatal("gaussian shape wrong")
	}
	// Balanced classes.
	counts := make([]int, 3)
	for _, l := range d.Labels {
		counts[l]++
	}
	for k, c := range counts {
		if c != 30 {
			t.Fatalf("class %d count = %d, want 30", k, c)
		}
	}
	if _, err := Gaussians(1, 4, 3, 1, 5); err == nil {
		t.Fatal("n < classes accepted")
	}
	if _, err := Gaussians(10, 0, 3, 1, 5); err == nil {
		t.Fatal("zero dim accepted")
	}
	if _, err := Gaussians(10, 2, 1, 1, 5); err == nil {
		t.Fatal("single class accepted")
	}
}

func TestSplit(t *testing.T) {
	d, _ := Digits(100, 0.1, 9)
	train, test, err := d.Split(0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if train.X.Rows() != 80 || test.X.Rows() != 20 {
		t.Fatalf("split sizes %d/%d", train.X.Rows(), test.X.Rows())
	}
	if train.Classes != 10 || test.Classes != 10 {
		t.Fatal("classes lost in split")
	}
	if _, _, err := d.Split(0, 1); err == nil {
		t.Fatal("zero fraction accepted")
	}
	if _, _, err := d.Split(1, 1); err == nil {
		t.Fatal("full fraction accepted")
	}
}

func TestTargets(t *testing.T) {
	d, _ := Gaussians(6, 2, 3, 1, 2)
	tg, err := d.Targets()
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range d.Labels {
		for c := 0; c < 3; c++ {
			want := 0.0
			if c == l {
				want = 1.0
			}
			if tg.At(i, c) != want {
				t.Fatalf("target (%d,%d) = %g", i, c, tg.At(i, c))
			}
		}
	}
}

func TestTwoMoons(t *testing.T) {
	d, err := TwoMoons(200, 0.05, 11)
	if err != nil {
		t.Fatal(err)
	}
	if d.X.Cols() != 2 || d.Classes != 2 {
		t.Fatal("moons shape wrong")
	}
	counts := [2]int{}
	for _, l := range d.Labels {
		counts[l]++
	}
	if counts[0] != 100 || counts[1] != 100 {
		t.Fatalf("class balance %v", counts)
	}
	// Not linearly separable in x alone: both classes span overlapping x
	// ranges.
	min0, max1 := math.Inf(1), math.Inf(-1)
	for i := 0; i < d.X.Rows(); i++ {
		if d.Labels[i] == 0 && d.X.At(i, 0) < min0 {
			min0 = d.X.At(i, 0)
		}
		if d.Labels[i] == 1 && d.X.At(i, 0) > max1 {
			max1 = d.X.At(i, 0)
		}
	}
	if max1 <= min0 {
		t.Fatal("moons unexpectedly separable along x")
	}
	if _, err := TwoMoons(1, 0.1, 1); err == nil {
		t.Fatal("single sample accepted")
	}
	if _, err := TwoMoons(10, -1, 1); err == nil {
		t.Fatal("negative noise accepted")
	}
}

func TestSparseBatch(t *testing.T) {
	b, err := SparseBatch(10, 64, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 10; r++ {
		nnz := 0
		for _, v := range b.RowSlice(r) {
			if v != 0 {
				nnz++
				if v < 0.1 || v > 1 {
					t.Fatalf("value %g outside (0.1,1]", v)
				}
			}
		}
		if nnz != 5 {
			t.Fatalf("row %d has %d nonzeros, want 5", r, nnz)
		}
	}
	if _, err := SparseBatch(10, 4, 5, 3); err == nil {
		t.Fatal("nnz > width accepted")
	}
	if _, err := SparseBatch(0, 4, 2, 3); err == nil {
		t.Fatal("zero rows accepted")
	}
}

func TestFunc1D(t *testing.T) {
	f := func(x float64) float64 { return 2 * x }
	x, y, err := Func1D(f, 5)
	if err != nil {
		t.Fatal(err)
	}
	if x.At(0, 0) != 0 || x.At(4, 0) != 1 {
		t.Fatal("endpoints missing")
	}
	for i := 0; i < 5; i++ {
		if y.At(i, 0) != 2*x.At(i, 0) {
			t.Fatalf("target mismatch at %d", i)
		}
	}
	if _, _, err := Func1D(f, 1); err == nil {
		t.Fatal("single point accepted")
	}
}
