package xnet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/radix"
)

func TestDense(t *testing.T) {
	g, err := Dense(3, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Density() != 1 {
		t.Fatalf("dense density = %g", g.Density())
	}
	m, ok := g.Symmetric()
	if !ok {
		t.Fatal("dense FNNT must be symmetric")
	}
	if m.Int64() != 5 { // interior layer size
		t.Fatalf("m = %v, want 5", m)
	}
	if _, err := Dense(3); err == nil {
		t.Fatal("single layer accepted")
	}
	if _, err := Dense(3, 0); err == nil {
		t.Fatal("zero layer size accepted")
	}
}

func TestRandomXLinearDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p, err := RandomXLinear(20, 15, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 20; r++ {
		if d := p.RowDegree(r); d != 4 {
			t.Fatalf("row %d degree = %d, want 4", r, d)
		}
	}
	if p.HasZeroCol() {
		t.Fatal("patched X-Linear must not have empty columns")
	}
}

func TestRandomXLinearDegreeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomXLinear(5, 5, 0, rng); err == nil {
		t.Fatal("zero degree accepted")
	}
	if _, err := RandomXLinear(5, 5, 6, rng); err == nil {
		t.Fatal("degree > cols accepted")
	}
}

func TestRandomXLinearPatchinessProperty(t *testing.T) {
	// Every generated layer must satisfy the FNNT conditions even for
	// degree 1 on wide targets, where empty columns are very likely before
	// patching.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 8 + rng.Intn(8)
		cols := 2 + rng.Intn(rows-1)
		p, err := RandomXLinear(rows, cols, 1, rng)
		if err != nil {
			return false
		}
		return !p.HasZeroRow() && !p.HasZeroCol()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomXNet(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := RandomXNet([]int{12, 12, 12, 12}, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumSubs() != 3 {
		t.Fatalf("subs = %d", g.NumSubs())
	}
}

// TestRandomXNetConnectivityIsProbabilistic quantifies the contrast with
// RadiX-Nets: random X-Nets are only *usually* path-connected. We require a
// majority of draws connected at degree 4 — and tolerate (indeed expect)
// occasional failures, which deterministic RadiX-Nets never exhibit.
func TestRandomXNetConnectivityIsProbabilistic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	connected := 0
	const draws = 12
	for i := 0; i < draws; i++ {
		g, err := RandomXNet([]int{12, 12, 12, 12, 12}, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.PathConnected() {
			connected++
		}
	}
	if connected < draws/2 {
		t.Fatalf("only %d/%d random X-Nets path-connected; expander property broken", connected, draws)
	}
}

// TestRandomXNetUsuallyNotSymmetric demonstrates the paper's motivation:
// random expander layers do not satisfy the symmetry property RadiX-Nets
// guarantee. We require that a clear majority of draws be asymmetric.
func TestRandomXNetUsuallyNotSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	asym := 0
	const draws = 20
	for i := 0; i < draws; i++ {
		g, err := RandomXNet([]int{10, 10, 10}, 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := g.Symmetric(); !ok {
			asym++
		}
	}
	if asym < draws*3/4 {
		t.Fatalf("only %d/%d random X-Nets asymmetric; expected most", asym, draws)
	}
}

func TestCayleyXLinear(t *testing.T) {
	p, err := CayleyXLinear(8, []int{0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		if p.RowDegree(r) != 3 {
			t.Fatalf("row %d degree = %d", r, p.RowDegree(r))
		}
		for _, g := range []int{0, 1, 3} {
			if !p.Has(r, (r+g)%8) {
				t.Fatalf("missing Cayley edge %d→%d", r, (r+g)%8)
			}
		}
	}
	if _, err := CayleyXLinear(0, []int{1}); err == nil {
		t.Fatal("zero group order accepted")
	}
	if _, err := CayleyXLinear(8, nil); err == nil {
		t.Fatal("empty generator set accepted")
	}
}

// TestCayleyEqualWidthConstraint pins the §I comparison: explicit X-Linear
// layers force equal adjacent widths (they are n×n by construction), while
// RadiX-Nets reach unequal widths through the Kronecker lift.
func TestCayleyEqualWidthConstraint(t *testing.T) {
	p, err := CayleyXLinear(8, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Rows() != p.Cols() {
		t.Fatal("Cayley layers are square by construction")
	}
	// RadiX-Net with the same N′ = 8 but widths 8→16→8 via shape (1,2,1):
	cfg, err := core.NewConfig([]radix.System{radix.MustNew(4, 2)}, []int{1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.LayerSize(0) == g.LayerSize(1) {
		t.Fatal("RadiX-Net should realize unequal adjacent widths")
	}
	if _, ok := g.Symmetric(); !ok {
		t.Fatal("unequal-width RadiX-Net must stay symmetric")
	}
}

func TestCayleyXNetSymmetricWhenGenerating(t *testing.T) {
	// A Cayley net whose generator set's difference closure spans Z_n is
	// path-connected after enough layers; with generators {0,1} on Z_4 and 4
	// layers every pair is reachable.
	g, err := CayleyXNet(4, 4, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !g.PathConnected() {
		t.Fatal("generating Cayley net must be path-connected")
	}
	// Circulant products are circulant: paths from u to v depend only on
	// v−u, so full symmetry requires the count to be constant across
	// offsets, which {0,1}^4 is not (binomial distribution).
	if _, ok := g.Symmetric(); ok {
		t.Fatal("binomial-offset Cayley net misreported as symmetric")
	}
	if _, err := CayleyXNet(4, 0, []int{1}); err == nil {
		t.Fatal("zero layers accepted")
	}
}

func TestBernoulliPrune(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p, err := BernoulliPrune(30, 30, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p.HasZeroRow() || p.HasZeroCol() {
		t.Fatal("patched Bernoulli prune left dangling nodes")
	}
	d := p.Density()
	if d < 0.05 || d > 0.5 {
		t.Fatalf("density %g far from keep=0.2", d)
	}
	if _, err := BernoulliPrune(5, 5, 0, rng); err == nil {
		t.Fatal("keep=0 accepted")
	}
	if _, err := BernoulliPrune(5, 5, 1.5, rng); err == nil {
		t.Fatal("keep>1 accepted")
	}
}

func TestBernoulliNet(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := BernoulliNet([]int{16, 16, 16}, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumSubs() != 2 {
		t.Fatalf("subs = %d", g.NumSubs())
	}
	if _, err := BernoulliNet([]int{16}, 0.3, rng); err == nil {
		t.Fatal("single layer accepted")
	}
}

// TestRadixVsRandomWiringOverlap quantifies that RadiX-Net and random
// X-Net wirings at matched density are genuinely different graphs, not
// re-derivations of each other: their per-layer edge overlap stays near
// the chance level (≈ density) and far below identity.
func TestRadixVsRandomWiringOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cfg, err := core.NewConfig([]radix.System{radix.MustNew(16, 16)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x, err := RandomXNet(g.LayerSizes(), 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < g.NumSubs(); l++ {
		j, err := g.Sub(l).Jaccard(x.Sub(l))
		if err != nil {
			t.Fatal(err)
		}
		// Chance-level Jaccard for two degree-16 subsets of 256 columns is
		// ≈ (16/256)/(2−16/256) ≈ 0.032; anything below 0.2 confirms the
		// wirings are unrelated, anything near 1 would mean they collapsed.
		if j > 0.2 {
			t.Fatalf("layer %d overlap %g suspiciously high", l, j)
		}
	}
}

// TestMatchedDensityComparison builds the three sparse families at matched
// density and confirms only the RadiX-Net is symmetric — the structural
// content of the paper's comparison table.
func TestMatchedDensityComparison(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg, err := core.NewConfig([]radix.System{radix.MustNew(4, 4), radix.MustNew(4, 4)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	radixNet, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	degree := 4 // matches radix-4 fan-out
	sizes := radixNet.LayerSizes()
	xn, err := RandomXNet(sizes, degree, rng)
	if err != nil {
		t.Fatal(err)
	}
	bn, err := BernoulliNet(sizes, radixNet.Density(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if d := xn.Density(); d != radixNet.Density() {
		t.Fatalf("X-Net density %g should match RadiX-Net %g by construction", d, radixNet.Density())
	}
	if _, ok := radixNet.Symmetric(); !ok {
		t.Fatal("RadiX-Net must be symmetric")
	}
	if _, ok := xn.Symmetric(); ok {
		t.Log("note: random X-Net drew a symmetric instance (rare but possible)")
	}
	_ = bn
}
