// Package xnet implements the baseline sparse-topology families RadiX-Net
// is compared against in §I of the paper: the X-Nets of Prabhu, Varma &
// Namboodiri ("Deep Expander Networks", 2017) in both their random and
// explicit (Cayley-graph) forms, plus uniform-Bernoulli pruning and fully
// dense topologies.
//
// The package exists so that the comparison claims of the paper are
// executable: explicit X-Linear layers require equal adjacent layer widths
// (a Cayley-graph artifact RadiX-Nets remove), random X-Linear layers are
// only probabilistically path-connected, and neither family is symmetric in
// the paper's path-count sense.
package xnet

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/radix-net/radixnet/internal/sparse"
	"github.com/radix-net/radixnet/internal/topology"
)

// ErrDegree is returned when a requested per-node degree is not realizable.
var ErrDegree = errors.New("xnet: degree out of range")

// Dense returns the fully-connected FNNT on the given layer sizes — the
// unique density-1 topology of §II.
func Dense(layerSizes ...int) (*topology.FNNT, error) {
	if len(layerSizes) < 2 {
		return nil, errors.New("xnet: a topology needs at least two layers")
	}
	subs := make([]*sparse.Pattern, len(layerSizes)-1)
	for i := range subs {
		if layerSizes[i] < 1 || layerSizes[i+1] < 1 {
			return nil, fmt.Errorf("xnet: layer size must be positive, got %d→%d", layerSizes[i], layerSizes[i+1])
		}
		subs[i] = sparse.Ones(layerSizes[i], layerSizes[i+1])
	}
	return topology.New(subs...)
}

// RandomXLinear returns a random X-Linear adjacency submatrix: each of the
// `rows` source nodes gets exactly `degree` distinct outgoing edges chosen
// uniformly at random, and any column left empty is patched with one extra
// edge moved from the highest-in-degree column so the FNNT conditions hold.
// This mirrors the random expander construction of the X-Net paper, which
// achieves path-connectedness only probabilistically.
func RandomXLinear(rows, cols, degree int, rng *rand.Rand) (*sparse.Pattern, error) {
	if degree < 1 || degree > cols {
		return nil, fmt.Errorf("%w: degree %d for %d columns", ErrDegree, degree, cols)
	}
	rowCols := make([][]int, rows)
	colDeg := make([]int, cols)
	perm := make([]int, cols)
	for i := range perm {
		perm[i] = i
	}
	for r := range rowCols {
		// Partial Fisher–Yates: the first `degree` entries of perm become a
		// uniform random degree-subset of the columns.
		for i := 0; i < degree; i++ {
			j := i + rng.Intn(cols-i)
			perm[i], perm[j] = perm[j], perm[i]
		}
		row := append([]int(nil), perm[:degree]...)
		for _, c := range row {
			colDeg[c]++
		}
		rowCols[r] = row
	}
	// Patch zero-in-degree columns so the result is a valid FNNT submatrix:
	// steal an edge endpoint from the most-loaded column of some row that
	// does not already cover the empty column.
	for c := 0; c < cols; c++ {
		if colDeg[c] > 0 {
			continue
		}
		patched := false
		for r := 0; r < rows && !patched; r++ {
			best, bestIdx := -1, -1
			covers := false
			for i, cc := range rowCols[r] {
				if cc == c {
					covers = true
					break
				}
				if colDeg[cc] > best {
					best, bestIdx = colDeg[cc], i
				}
			}
			if covers || bestIdx < 0 || best < 2 {
				continue
			}
			colDeg[rowCols[r][bestIdx]]--
			rowCols[r][bestIdx] = c
			colDeg[c]++
			patched = true
		}
		if !patched {
			return nil, fmt.Errorf("xnet: cannot realize degree %d on %dx%d without empty columns", degree, rows, cols)
		}
	}
	return sparse.NewPattern(rows, cols, rowCols)
}

// RandomXNet stacks random X-Linear layers into an FNNT with the given layer
// sizes and uniform out-degree.
func RandomXNet(layerSizes []int, degree int, rng *rand.Rand) (*topology.FNNT, error) {
	if len(layerSizes) < 2 {
		return nil, errors.New("xnet: a topology needs at least two layers")
	}
	subs := make([]*sparse.Pattern, len(layerSizes)-1)
	for i := range subs {
		w, err := RandomXLinear(layerSizes[i], layerSizes[i+1], degree, rng)
		if err != nil {
			return nil, err
		}
		subs[i] = w
	}
	return topology.New(subs...)
}

// CayleyXLinear returns an explicit X-Linear adjacency submatrix built from
// the Cayley graph of Z_n with the given generator set: node j connects to
// j+g (mod n) for every generator g. As the paper notes (§I), this
// construction forces adjacent layers to have the same number of nodes —
// the constraint RadiX-Nets remove. Duplicate generators (mod n) collapse.
func CayleyXLinear(n int, generators []int) (*sparse.Pattern, error) {
	if n < 1 {
		return nil, fmt.Errorf("xnet: group order %d must be positive", n)
	}
	if len(generators) == 0 {
		return nil, errors.New("xnet: need at least one generator")
	}
	return sparse.SumOfShifts(n, generators), nil
}

// CayleyXNet stacks identical Cayley X-Linear layers into an FNNT of
// `layers` edge layers on n nodes per layer.
func CayleyXNet(n, layers int, generators []int) (*topology.FNNT, error) {
	if layers < 1 {
		return nil, errors.New("xnet: need at least one layer")
	}
	w, err := CayleyXLinear(n, generators)
	if err != nil {
		return nil, err
	}
	subs := make([]*sparse.Pattern, layers)
	for i := range subs {
		subs[i] = w
	}
	return topology.New(subs...)
}

// BernoulliPrune returns a random subpattern of the dense rows×cols
// submatrix keeping each edge independently with probability keep, then
// patching empty rows and columns with one edge each so the FNNT conditions
// hold. This models magnitude-free random pruning, the simplest member of
// the prune-after-training family the paper contrasts with de novo sparsity.
func BernoulliPrune(rows, cols int, keep float64, rng *rand.Rand) (*sparse.Pattern, error) {
	if keep <= 0 || keep > 1 {
		return nil, fmt.Errorf("xnet: keep probability %g out of (0,1]", keep)
	}
	rowCols := make([][]int, rows)
	colDeg := make([]int, cols)
	for r := range rowCols {
		var row []int
		for c := 0; c < cols; c++ {
			if rng.Float64() < keep {
				row = append(row, c)
				colDeg[c]++
			}
		}
		if len(row) == 0 {
			c := rng.Intn(cols)
			row = append(row, c)
			colDeg[c]++
		}
		rowCols[r] = row
	}
	for c := 0; c < cols; c++ {
		if colDeg[c] == 0 {
			r := rng.Intn(rows)
			rowCols[r] = append(rowCols[r], c)
			colDeg[c]++
		}
	}
	return sparse.NewPattern(rows, cols, rowCols)
}

// BernoulliNet stacks BernoulliPrune layers into an FNNT with the given
// layer sizes and keep probability.
func BernoulliNet(layerSizes []int, keep float64, rng *rand.Rand) (*topology.FNNT, error) {
	if len(layerSizes) < 2 {
		return nil, errors.New("xnet: a topology needs at least two layers")
	}
	subs := make([]*sparse.Pattern, len(layerSizes)-1)
	for i := range subs {
		w, err := BernoulliPrune(layerSizes[i], layerSizes[i+1], keep, rng)
		if err != nil {
			return nil, err
		}
		subs[i] = w
	}
	return topology.New(subs...)
}
