package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randMatrix draws a random float64 CSR matrix.
func randMatrix(rng *rand.Rand, rows, cols int, density float64) *Matrix {
	pat := randPattern(rng, rows, cols, density)
	vals := make([]float64, pat.NNZ())
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	m, err := NewMatrix(pat, vals)
	if err != nil {
		panic(err)
	}
	return m
}

func denseAlmostEqual(a, b *Dense, tol float64) bool {
	d, err := a.MaxAbsDiff(b)
	return err == nil && d <= tol
}

func TestNewMatrixValidation(t *testing.T) {
	pat := Ones(2, 2)
	if _, err := NewMatrix(pat, make([]float64, 3)); err == nil {
		t.Fatal("value-length mismatch accepted")
	}
	if _, err := NewMatrix(pat, make([]float64, 4)); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
}

func TestMatrixFromPatternAt(t *testing.T) {
	pat, _ := NewPattern(2, 3, [][]int{{0, 2}, {1}})
	m := MatrixFromPattern(pat, 2.5)
	if m.At(0, 0) != 2.5 || m.At(0, 2) != 2.5 || m.At(1, 1) != 2.5 {
		t.Fatal("stored entries wrong")
	}
	if m.At(0, 1) != 0 || m.At(1, 0) != 0 {
		t.Fatal("missing entries must read zero")
	}
}

func TestToDenseFromDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randMatrix(rng, 8, 6, 0.4)
	back := MatrixFromDense(m.ToDense())
	if !denseAlmostEqual(m.ToDense(), back.ToDense(), 0) {
		t.Fatal("dense round trip changed values")
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randMatrix(rng, 9, 7, 0.5)
	x := make([]float64, 7)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got, err := m.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	d := m.ToDense()
	for r := 0; r < 9; r++ {
		var want float64
		for c := 0; c < 7; c++ {
			want += d.At(r, c) * x[c]
		}
		if math.Abs(got[r]-want) > 1e-12 {
			t.Fatalf("MulVec row %d = %g, want %g", r, got[r], want)
		}
	}
	if _, err := m.MulVec(make([]float64, 3)); err == nil {
		t.Fatal("wrong vector length accepted")
	}
}

func TestVecMulAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := randMatrix(rng, 6, 8, 0.5)
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got, err := m.VecMul(x)
	if err != nil {
		t.Fatal(err)
	}
	d := m.ToDense()
	for c := 0; c < 8; c++ {
		var want float64
		for r := 0; r < 6; r++ {
			want += x[r] * d.At(r, c)
		}
		if math.Abs(got[c]-want) > 1e-12 {
			t.Fatalf("VecMul col %d = %g, want %g", c, got[c], want)
		}
	}
	if _, err := m.VecMul(make([]float64, 2)); err == nil {
		t.Fatal("wrong vector length accepted")
	}
}

func TestDenseMulAgainstDenseReferenceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		batch, inner, out := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10)
		m := randMatrix(rng, inner, out, 0.2+0.6*rng.Float64())
		x, _ := NewDense(batch, inner)
		for i := range x.Data() {
			x.Data()[i] = rng.NormFloat64()
		}
		got, err := m.DenseMul(x)
		if err != nil {
			return false
		}
		want, err := x.MatMul(m.ToDense())
		if err != nil {
			return false
		}
		return denseAlmostEqual(got, want, 1e-10)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSpGEMMAgainstDenseReferenceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMatrix(rng, 1+rng.Intn(12), 1+rng.Intn(12), 0.2+0.6*rng.Float64())
		b := randMatrix(rng, a.Cols(), 1+rng.Intn(12), 0.2+0.6*rng.Float64())
		got, err := a.Mul(b)
		if err != nil {
			return false
		}
		want, err := a.ToDense().MatMul(b.ToDense())
		if err != nil {
			return false
		}
		return denseAlmostEqual(got.ToDense(), want, 1e-10)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSpGEMMShapeError(t *testing.T) {
	a := MatrixFromPattern(Ones(2, 3), 1)
	b := MatrixFromPattern(Ones(4, 2), 1)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("nonconforming SpGEMM accepted")
	}
}

func TestScale(t *testing.T) {
	m := MatrixFromPattern(Ones(2, 2), 3)
	m.Scale(0.5)
	for _, v := range m.Values() {
		if v != 1.5 {
			t.Fatalf("scaled value = %g, want 1.5", v)
		}
	}
}

func TestMatrixTransposeProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randMatrix(rng, 1+rng.Intn(10), 1+rng.Intn(10), 0.5)
		tr := m.Transpose()
		if tr.Rows() != m.Cols() || tr.Cols() != m.Rows() {
			return false
		}
		for r := 0; r < m.Rows(); r++ {
			for c := 0; c < m.Cols(); c++ {
				if m.At(r, c) != tr.At(c, r) {
					return false
				}
			}
		}
		// Involution.
		back := tr.Transpose()
		d, err := m.ToDense().MaxAbsDiff(back.ToDense())
		return err == nil && d == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixAddAgainstDenseProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(10), 1+rng.Intn(10)
		a := randMatrix(rng, rows, cols, 0.4)
		b := randMatrix(rng, rows, cols, 0.4)
		sum, err := a.Add(b)
		if err != nil {
			return false
		}
		want := a.ToDense()
		if err := want.AddInPlace(b.ToDense()); err != nil {
			return false
		}
		return denseAlmostEqual(sum.ToDense(), want, 1e-12)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixHadamardAgainstDenseProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(10), 1+rng.Intn(10)
		a := randMatrix(rng, rows, cols, 0.5)
		b := randMatrix(rng, rows, cols, 0.5)
		had, err := a.Hadamard(b)
		if err != nil {
			return false
		}
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if math.Abs(had.At(r, c)-a.At(r, c)*b.At(r, c)) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixAddHadamardShapeErrors(t *testing.T) {
	a := MatrixFromPattern(Ones(2, 3), 1)
	b := MatrixFromPattern(Ones(3, 2), 1)
	if _, err := a.Add(b); err == nil {
		t.Fatal("add shape mismatch accepted")
	}
	if _, err := a.Hadamard(b); err == nil {
		t.Fatal("hadamard shape mismatch accepted")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	pat, _ := NewPattern(1, 2, [][]int{{0, 1}})
	m, _ := NewMatrix(pat, []float64{3, 4})
	if n := m.FrobeniusNorm(); n != 5 {
		t.Fatalf("‖m‖F = %g, want 5", n)
	}
}

func TestRowEntriesOrder(t *testing.T) {
	pat, _ := NewPattern(1, 5, [][]int{{4, 0, 2}})
	m, _ := NewMatrix(pat, []float64{1, 2, 3}) // aligned to sorted cols 0,2,4
	var cols []int
	var vals []float64
	m.RowEntries(0, func(c int, v float64) {
		cols = append(cols, c)
		vals = append(vals, v)
	})
	if len(cols) != 3 || cols[0] != 0 || cols[1] != 2 || cols[2] != 4 {
		t.Fatalf("cols = %v", cols)
	}
	if vals[0] != 1 || vals[1] != 2 || vals[2] != 3 {
		t.Fatalf("vals = %v", vals)
	}
}
