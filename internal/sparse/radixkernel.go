package sparse

import (
	"fmt"
	"math/bits"
)

// RadixKernel executes a layer's fused feedforward step from a StridePlan:
// the same gather/scatter semantics as Kernel and Matrix.FusedScatterRow,
// but with every row/column index computed arithmetically from the plan —
// the hot loops load no index array at all, only weight values. On a
// RadiX-Net layer this removes the 4 bytes of int32 index traffic the CSC
// kernel pays per nonzero and takes the load-address computation off the
// memory dependence chain (the next gather address no longer waits on an
// index load).
//
// The kernel shares value storage with the Kernel (CSC order, for gathers)
// and the Matrix (CSR order, for scatters) it was built from: Kernel.Refresh
// and in-place weight mutation are visible to the RadixKernel automatically,
// so engines refresh weights exactly as before.
//
// Bit-identity: gathers accumulate each column's in-edges in ascending row
// order and scatters accumulate input rows in ascending order — the same
// orders as Kernel.FusedGatherRow/FusedGatherRow4 and Matrix.FusedScatterRow
// — so all paths produce bit-identical float64 results.
type RadixKernel struct {
	plan    *StridePlan
	cscVals []float64 // Kernel's values: column-major, ascending row within column
	csrVals []float64 // Matrix's values: row-major, ascending column within row
	inDeg   int       // dPrev·radix, uniform column in-degree
	outDeg  int       // dNext·radix, uniform row out-degree

	// Stockham (autosort butterfly) mode. In natural layout a large-stride
	// layer's gather revisits each input element at intervals wider than L1
	// — and the power-of-two strides of radix networks alias whole column
	// windows into a single cache set — so every hot-loop load misses. In
	// Stockham mode the layer instead reads its input packed by its own
	// place value (residue-major: element lo+u·pv at position lo·m+u) and
	// writes its output packed by pv·radix, which makes all three hot
	// streams — weights, activations in, activations out — unit-stride.
	// Consecutive layers of a mixed-radix system chain (pv_{l+1} = pv_l·N_l),
	// so the packing composes across the stack with no reorder pass, and the
	// last layer's output packing pv·radix = N′ is the identity: engine
	// inputs and outputs stay in natural order. stVals is the weight stream
	// re-sequenced for that column visit order — the one value array NOT
	// shared with the CSC/CSR storage, so RefreshValues must re-derive it
	// after weight mutation (the inference engine does this in
	// RefreshWeights). nil unless EnableStockham succeeded.
	stVals []float64
}

// CanStockham reports whether the plan admits the Stockham packed layout:
// no Kronecker lift and an output packing pv·radix that divides N′. The
// engine additionally requires the layer layouts to chain across the stack.
func (p *StridePlan) CanStockham() bool {
	return p.dPrev == 1 && p.dNext == 1 && p.np%(p.pv*p.radix) == 0
}

// InPackPos returns the position of input row r in the layer's Stockham
// input layout (packed by pv): residue class first, then quotient.
func (p *StridePlan) InPackPos(r int) int { return (r%p.pv)*p.m + r/p.pv }

// OutPackPos returns the position of output column c in the layer's
// Stockham output layout (packed by pv·radix). When pv·radix = N′ — the
// last layer of a system — this is the identity, so the stack's final
// output needs no unpacking.
func (p *StridePlan) OutPackPos(c int) int {
	sp := p.pv * p.radix
	return (c%sp)*(p.np/sp) + c/sp
}

// NewRadixKernel binds a compiled stride plan to the matrix and CSC kernel
// it schedules. All three must be built on the identical Pattern the plan
// was verified against; mismatches are rejected rather than silently
// scrambling the value ordering.
func NewRadixKernel(m *Matrix, k *Kernel, plan *StridePlan) (*RadixKernel, error) {
	if m.pat != plan.src || k.src != plan.src {
		return nil, fmt.Errorf("sparse: radix kernel requires matrix, kernel and plan built on the identical pattern (%s)", plan)
	}
	if k.colDeg != plan.ColDegree() {
		return nil, fmt.Errorf("sparse: kernel column degree %d, plan implies %d", k.colDeg, plan.ColDegree())
	}
	rk := &RadixKernel{
		plan:    plan,
		cscVals: k.vals,
		csrVals: m.vals,
		inDeg:   plan.ColDegree(),
		outDeg:  plan.dNext * plan.radix,
	}
	return rk, nil
}

// EnableStockham switches the kernel to the packed Stockham layout (see the
// stVals field comment). The caller — normally the inference engine — is
// responsible for only enabling it when the whole layer stack chains, since
// a Stockham kernel expects packed inputs and produces packed outputs.
// Idempotent; errors when the plan cannot support the layout.
func (rk *RadixKernel) EnableStockham() error {
	if rk.stVals != nil {
		return nil
	}
	if !rk.plan.CanStockham() {
		return fmt.Errorf("sparse: plan %s does not admit the Stockham layout", rk.plan)
	}
	rk.stVals = make([]float64, len(rk.cscVals))
	rk.RefreshValues()
	return nil
}

// Stockham reports whether the kernel runs in the packed Stockham layout.
func (rk *RadixKernel) Stockham() bool { return rk.stVals != nil }

// RefreshValues re-derives the Stockham-ordered weight copy from the shared
// CSC storage. The CSC and CSR value slices are shared with the Kernel and
// Matrix and need no action here; only the re-sequenced copy goes stale when
// weights mutate. O(NNZ), no allocation; a no-op outside Stockham mode.
func (rk *RadixKernel) RefreshValues() {
	if rk.stVals == nil {
		return
	}
	p, deg := rk.plan, rk.inDeg
	sp := p.pv * p.radix
	mp := p.np / sp
	i := 0
	for lop := 0; lop < sp; lop++ {
		lo, k := lop%p.pv, lop/p.pv
		for up := 0; up < mp; up++ {
			cc := lo + (up*p.radix+k)*p.pv
			copy(rk.stVals[i:i+deg], rk.cscVals[cc*deg:(cc+1)*deg])
			i += deg
		}
	}
}

// Plan returns the stride plan the kernel executes.
func (rk *RadixKernel) Plan() *StridePlan { return rk.plan }

// Rows returns the input dimension.
func (rk *RadixKernel) Rows() int { return rk.plan.rows }

// Cols returns the output dimension.
func (rk *RadixKernel) Cols() int { return rk.plan.cols }

// FusedGatherRow computes one batch row of the fused feedforward step
// out[c] = min(cap, max(0, Σ_r in[r]·W[r,c] + bias)), returning the number
// of positive outputs — Kernel.FusedGatherRow with arithmetic addressing.
// It does not allocate.
// In Stockham mode in and out use the packed layouts given by
// Plan().InPackPos and Plan().OutPackPos.
//
//radix:hotpath
func (rk *RadixKernel) FusedGatherRow(out, in []float64, bias, cap float64) int {
	if rk.stVals != nil {
		return rk.fusedGatherRowST(out, in, bias, cap)
	}
	p := rk.plan
	in = in[:p.rows]
	out = out[:p.cols]
	vals := rk.cscVals
	np, pv, m, dPrev := p.np, p.pv, p.m, p.dPrev
	nnz := 0
	vi := 0
	c := 0
	for bcol := 0; bcol < p.dNext; bcol++ {
		lo, t := 0, 0
		for cc := 0; cc < np; cc++ {
			// In-rows of this column: ≤2 ascending stride-pv runs per block.
			t1, n1, t2, n2 := p.colRuns(t)
			var acc float64
			for a := 0; a < dPrev; a++ {
				base := a*np + lo
				q := base + t1*pv
				for j := 0; j < n1; j++ {
					acc += vals[vi] * in[q]
					vi++
					q += pv
				}
				q = base + t2*pv
				for j := 0; j < n2; j++ {
					acc += vals[vi] * in[q]
					vi++
					q += pv
				}
			}
			v := acc + bias
			if v <= 0 {
				v = 0
			} else {
				if cap > 0 && v > cap {
					v = cap
				}
				nnz++
			}
			out[c] = v
			c++
			lo++
			if lo == pv {
				lo = 0
				t++
				if t == m {
					t = 0
				}
			}
		}
	}
	return nnz
}

// FusedGatherRow4 is FusedGatherRow over four batch rows at once: each
// weight is loaded once and applied to all four rows on independent
// accumulator chains, and — unlike Kernel.FusedGatherRow4 — the in-edge
// addresses are generated arithmetically, so the quad loop performs zero
// index loads. Per-row results are bit-identical to four FusedGatherRow
// calls. nnz receives the per-row positive-activation counts. It does not
// allocate.
// In Stockham mode all slices use the packed layouts.
func (rk *RadixKernel) FusedGatherRow4(out0, out1, out2, out3, in0, in1, in2, in3 []float64, bias, cap float64, nnz *[4]int) {
	if rk.stVals != nil {
		rk.fusedGatherRow4ST(out0, out1, out2, out3, in0, in1, in2, in3, bias, cap, nnz)
		return
	}
	p := rk.plan
	rows := p.rows
	in0 = in0[:rows]
	in1 = in1[:rows]
	in2 = in2[:rows]
	in3 = in3[:rows]
	cols := p.cols
	out0 = out0[:cols]
	out1 = out1[:cols]
	out2 = out2[:cols]
	out3 = out3[:cols]
	vals := rk.cscVals
	np, pv, radix, m, dPrev := p.np, p.pv, p.radix, p.m, p.dPrev
	var c0nnz, c1nnz, c2nnz, c3nnz int
	vi := 0
	c := 0
	for bcol := 0; bcol < p.dNext; bcol++ {
		lo, t := 0, 0
		for cc := 0; cc < np; cc++ {
			var a0, a1, a2, a3 float64
			if t >= radix-1 && dPrev == 1 {
				// Fast path (pure EMR layer, no circulant wrap): one
				// contiguous stride-pv run of exactly radix edges.
				q := lo + (t-radix+1)*pv
				for j := 0; j < radix; j++ {
					w := vals[vi]
					vi++
					a0 += w * in0[q]
					a1 += w * in1[q]
					a2 += w * in2[q]
					a3 += w * in3[q]
					q += pv
				}
			} else {
				t1, n1, t2, n2 := p.colRuns(t)
				for a := 0; a < dPrev; a++ {
					base := a*np + lo
					q := base + t1*pv
					for j := 0; j < n1; j++ {
						w := vals[vi]
						vi++
						a0 += w * in0[q]
						a1 += w * in1[q]
						a2 += w * in2[q]
						a3 += w * in3[q]
						q += pv
					}
					q = base + t2*pv
					for j := 0; j < n2; j++ {
						w := vals[vi]
						vi++
						a0 += w * in0[q]
						a1 += w * in1[q]
						a2 += w * in2[q]
						a3 += w * in3[q]
						q += pv
					}
				}
			}
			v0 := a0 + bias
			v1 := a1 + bias
			v2 := a2 + bias
			v3 := a3 + bias
			if v0 <= 0 {
				v0 = 0
			} else {
				if cap > 0 && v0 > cap {
					v0 = cap
				}
				c0nnz++
			}
			if v1 <= 0 {
				v1 = 0
			} else {
				if cap > 0 && v1 > cap {
					v1 = cap
				}
				c1nnz++
			}
			if v2 <= 0 {
				v2 = 0
			} else {
				if cap > 0 && v2 > cap {
					v2 = cap
				}
				c2nnz++
			}
			if v3 <= 0 {
				v3 = 0
			} else {
				if cap > 0 && v3 > cap {
					v3 = cap
				}
				c3nnz++
			}
			out0[c] = v0
			out1[c] = v1
			out2[c] = v2
			out3[c] = v3
			c++
			lo++
			if lo == pv {
				lo = 0
				t++
				if t == m {
					t = 0
				}
			}
		}
	}
	nnz[0], nnz[1], nnz[2], nnz[3] = c0nnz, c1nnz, c2nnz, c3nnz
}

// FusedGatherRow8 is FusedGatherRow over eight batch rows at once — the
// blocking the structure makes affordable. A CSC gather must load a row
// index per stored entry, so widening its batch block leaves the index
// traffic in place; here the addresses are arithmetic, so an octet performs
// nine loads per eight edge-ops (one weight + eight activations) against
// the CSC quad's twelve, and the eight independent accumulator chains keep
// the FMA pipes saturated. Per-row results are bit-identical to eight
// FusedGatherRow calls. nnz receives the per-row positive-activation
// counts. It does not allocate.
// In Stockham mode all slices use the packed layouts.
func (rk *RadixKernel) FusedGatherRow8(outs, ins *[8][]float64, bias, cap float64, nnz *[8]int) {
	if rk.stVals != nil {
		rk.fusedGatherRow8ST(outs, ins, bias, cap, nnz)
		return
	}
	p := rk.plan
	rows, cols := p.rows, p.cols
	in0, in1, in2, in3 := ins[0][:rows], ins[1][:rows], ins[2][:rows], ins[3][:rows]
	in4, in5, in6, in7 := ins[4][:rows], ins[5][:rows], ins[6][:rows], ins[7][:rows]
	out0, out1, out2, out3 := outs[0][:cols], outs[1][:cols], outs[2][:cols], outs[3][:cols]
	out4, out5, out6, out7 := outs[4][:cols], outs[5][:cols], outs[6][:cols], outs[7][:cols]
	vals := rk.cscVals
	np, pv, radix, m, dPrev := p.np, p.pv, p.radix, p.m, p.dPrev
	var n [8]int
	vi := 0
	c := 0
	for bcol := 0; bcol < p.dNext; bcol++ {
		lo, t := 0, 0
		for cc := 0; cc < np; cc++ {
			var a0, a1, a2, a3, a4, a5, a6, a7 float64
			if t >= radix-1 && dPrev == 1 {
				// Fast path (pure EMR layer, no circulant wrap): one
				// contiguous stride-pv run of exactly radix edges.
				q := lo + (t-radix+1)*pv
				for _, w := range vals[vi : vi+radix] {
					a0 += w * in0[q]
					a1 += w * in1[q]
					a2 += w * in2[q]
					a3 += w * in3[q]
					a4 += w * in4[q]
					a5 += w * in5[q]
					a6 += w * in6[q]
					a7 += w * in7[q]
					q += pv
				}
				vi += radix
			} else {
				t1, n1, t2, n2 := p.colRuns(t)
				for a := 0; a < dPrev; a++ {
					base := a*np + lo
					q := base + t1*pv
					for j := 0; j < n1; j++ {
						w := vals[vi]
						vi++
						a0 += w * in0[q]
						a1 += w * in1[q]
						a2 += w * in2[q]
						a3 += w * in3[q]
						a4 += w * in4[q]
						a5 += w * in5[q]
						a6 += w * in6[q]
						a7 += w * in7[q]
						q += pv
					}
					q = base + t2*pv
					for j := 0; j < n2; j++ {
						w := vals[vi]
						vi++
						a0 += w * in0[q]
						a1 += w * in1[q]
						a2 += w * in2[q]
						a3 += w * in3[q]
						a4 += w * in4[q]
						a5 += w * in5[q]
						a6 += w * in6[q]
						a7 += w * in7[q]
						q += pv
					}
				}
			}
			v0 := a0 + bias
			v1 := a1 + bias
			v2 := a2 + bias
			v3 := a3 + bias
			v4 := a4 + bias
			v5 := a5 + bias
			v6 := a6 + bias
			v7 := a7 + bias
			if v0 <= 0 {
				v0 = 0
			} else {
				if cap > 0 && v0 > cap {
					v0 = cap
				}
				n[0]++
			}
			if v1 <= 0 {
				v1 = 0
			} else {
				if cap > 0 && v1 > cap {
					v1 = cap
				}
				n[1]++
			}
			if v2 <= 0 {
				v2 = 0
			} else {
				if cap > 0 && v2 > cap {
					v2 = cap
				}
				n[2]++
			}
			if v3 <= 0 {
				v3 = 0
			} else {
				if cap > 0 && v3 > cap {
					v3 = cap
				}
				n[3]++
			}
			if v4 <= 0 {
				v4 = 0
			} else {
				if cap > 0 && v4 > cap {
					v4 = cap
				}
				n[4]++
			}
			if v5 <= 0 {
				v5 = 0
			} else {
				if cap > 0 && v5 > cap {
					v5 = cap
				}
				n[5]++
			}
			if v6 <= 0 {
				v6 = 0
			} else {
				if cap > 0 && v6 > cap {
					v6 = cap
				}
				n[6]++
			}
			if v7 <= 0 {
				v7 = 0
			} else {
				if cap > 0 && v7 > cap {
					v7 = cap
				}
				n[7]++
			}
			out0[c] = v0
			out1[c] = v1
			out2[c] = v2
			out3[c] = v3
			out4[c] = v4
			out5[c] = v5
			out6[c] = v6
			out7[c] = v7
			c++
			lo++
			if lo == pv {
				lo = 0
				t++
				if t == m {
					t = 0
				}
			}
		}
	}
	*nnz = n
}

// fusedGatherRowST is the single-row gather in the Stockham layout: the
// input arrives packed by pv, so each column's in-edge window is a
// contiguous unit-stride run of radix elements inside one residue block,
// the re-sequenced weight copy keeps the value stream unit-stride, and the
// output is written sequentially in the pv·radix packing the next layer
// reads. Column visit ORDER changes but each column still accumulates its
// in-edges in ascending row order, so outputs are bit-identical (modulo
// layout) to the natural-order path.
func (rk *RadixKernel) fusedGatherRowST(out, in []float64, bias, cap float64) int {
	p := rk.plan
	in = in[:p.rows]
	out = out[:p.cols]
	vals := rk.stVals
	pv, radix, m := p.pv, p.radix, p.m
	sp := pv * radix
	mp := p.np / sp
	nnz := 0
	vi := 0
	c := 0
	lo, k := 0, 0 // lop = k·pv + lo, maintained incrementally (no div/mod)
	for lop := 0; lop < sp; lop++ {
		base := lo * m
		for up := 0; up < mp; up++ {
			t := up*radix + k
			var acc float64
			if t >= radix-1 || m == radix {
				// Single unit-stride run: the unwrapped window, or — when
				// m = radix (a system's last layer) — the full block, whose
				// two wrap fragments abut (t2 = n1) into one run from base.
				s := base
				if t >= radix-1 {
					s += t - radix + 1
				}
				w := vals[vi : vi+radix]
				vi += radix
				b := in[s : s+radix]
				for j, wv := range w {
					acc += wv * b[j]
				}
			} else {
				// Wrapped column: runs 0..t and m-wrap..m-1, each a window.
				t1, n1, t2, n2 := p.colRuns(t)
				w := vals[vi : vi+n1]
				vi += n1
				b := in[base+t1 : base+t1+n1]
				for j, wv := range w {
					acc += wv * b[j]
				}
				w = vals[vi : vi+n2]
				vi += n2
				b = in[base+t2 : base+t2+n2]
				for j, wv := range w {
					acc += wv * b[j]
				}
			}
			v := acc + bias
			if v <= 0 {
				v = 0
			} else {
				if cap > 0 && v > cap {
					v = cap
				}
				nnz++
			}
			out[c] = v
			c++
		}
		lo++
		if lo == pv {
			lo = 0
			k++
		}
	}
	return nnz
}

// fusedGatherRow4ST is fusedGatherRowST over four batch rows sharing each
// weight load.
func (rk *RadixKernel) fusedGatherRow4ST(out0, out1, out2, out3, in0, in1, in2, in3 []float64, bias, cap float64, nnz *[4]int) {
	p := rk.plan
	rows, cols := p.rows, p.cols
	in0, in1, in2, in3 = in0[:rows], in1[:rows], in2[:rows], in3[:rows]
	out0, out1, out2, out3 = out0[:cols], out1[:cols], out2[:cols], out3[:cols]
	vals := rk.stVals
	pv, radix, m := p.pv, p.radix, p.m
	sp := pv * radix
	mp := p.np / sp
	var n [4]int
	vi := 0
	c := 0
	lo, k := 0, 0 // lop = k·pv + lo, maintained incrementally (no div/mod)
	for lop := 0; lop < sp; lop++ {
		base := lo * m
		for up := 0; up < mp; up++ {
			t := up*radix + k
			var a0, a1, a2, a3 float64
			if t >= radix-1 || m == radix {
				s := base
				if t >= radix-1 {
					s += t - radix + 1
				}
				w := vals[vi : vi+radix]
				vi += radix
				b0, b1, b2, b3 := in0[s:s+radix], in1[s:s+radix], in2[s:s+radix], in3[s:s+radix]
				for j, wv := range w {
					a0 += wv * b0[j]
					a1 += wv * b1[j]
					a2 += wv * b2[j]
					a3 += wv * b3[j]
				}
			} else {
				t1, n1, t2, n2 := p.colRuns(t)
				s := base + t1
				w := vals[vi : vi+n1]
				vi += n1
				b0, b1, b2, b3 := in0[s:s+n1], in1[s:s+n1], in2[s:s+n1], in3[s:s+n1]
				for j, wv := range w {
					a0 += wv * b0[j]
					a1 += wv * b1[j]
					a2 += wv * b2[j]
					a3 += wv * b3[j]
				}
				s = base + t2
				w = vals[vi : vi+n2]
				vi += n2
				b0, b1, b2, b3 = in0[s:s+n2], in1[s:s+n2], in2[s:s+n2], in3[s:s+n2]
				for j, wv := range w {
					a0 += wv * b0[j]
					a1 += wv * b1[j]
					a2 += wv * b2[j]
					a3 += wv * b3[j]
				}
			}
			v0 := a0 + bias
			v1 := a1 + bias
			v2 := a2 + bias
			v3 := a3 + bias
			if v0 <= 0 {
				v0 = 0
			} else {
				if cap > 0 && v0 > cap {
					v0 = cap
				}
				n[0]++
			}
			if v1 <= 0 {
				v1 = 0
			} else {
				if cap > 0 && v1 > cap {
					v1 = cap
				}
				n[1]++
			}
			if v2 <= 0 {
				v2 = 0
			} else {
				if cap > 0 && v2 > cap {
					v2 = cap
				}
				n[2]++
			}
			if v3 <= 0 {
				v3 = 0
			} else {
				if cap > 0 && v3 > cap {
					v3 = cap
				}
				n[3]++
			}
			out0[c] = v0
			out1[c] = v1
			out2[c] = v2
			out3[c] = v3
			c++
		}
		lo++
		if lo == pv {
			lo = 0
			k++
		}
	}
	nnz[0], nnz[1], nnz[2], nnz[3] = n[0], n[1], n[2], n[3]
}

// fusedGatherRow8ST is the octet gather in the Stockham layout — the hot
// loop of the structure-aware path. All three streams are unit-stride
// (weights, packed inputs within a residue block, packed outputs), there are
// zero index loads, and the eight independent accumulator chains keep the
// FMA pipes saturated: nine sequential loads per eight edge-ops against the
// CSC quad's twelve (four of them strided index-dependent gathers).
//
//radix:hotpath
func (rk *RadixKernel) fusedGatherRow8ST(outs, ins *[8][]float64, bias, cap float64, nnz *[8]int) {
	p := rk.plan
	if p.radix == 8 {
		rk.fusedGatherRow8ST8(outs, ins, bias, cap, nnz)
		return
	}
	rows, cols := p.rows, p.cols
	in0, in1, in2, in3 := ins[0][:rows], ins[1][:rows], ins[2][:rows], ins[3][:rows]
	in4, in5, in6, in7 := ins[4][:rows], ins[5][:rows], ins[6][:rows], ins[7][:rows]
	out0, out1, out2, out3 := outs[0][:cols], outs[1][:cols], outs[2][:cols], outs[3][:cols]
	out4, out5, out6, out7 := outs[4][:cols], outs[5][:cols], outs[6][:cols], outs[7][:cols]
	vals := rk.stVals
	pv, radix, m := p.pv, p.radix, p.m
	sp := pv * radix
	mp := p.np / sp
	var n [8]int
	vi := 0
	c := 0
	lo, k := 0, 0 // lop = k·pv + lo, maintained incrementally (no div/mod)
	for lop := 0; lop < sp; lop++ {
		base := lo * m
		for up := 0; up < mp; up++ {
			t := up*radix + k
			var a0, a1, a2, a3, a4, a5, a6, a7 float64
			if t >= radix-1 || m == radix {
				// Equal-length windows over the packed run: indexing sibling
				// slices by the range variable of a same-length window lets
				// the compiler drop the bounds check on all eight loads. When
				// m = radix (a system's last layer) every column reads its
				// full block — the wrap fragments abut — so it's this single
				// run from base too.
				s := base
				if t >= radix-1 {
					s += t - radix + 1
				}
				w := vals[vi : vi+radix]
				vi += radix
				b0, b1, b2, b3 := in0[s:s+radix], in1[s:s+radix], in2[s:s+radix], in3[s:s+radix]
				b4, b5, b6, b7 := in4[s:s+radix], in5[s:s+radix], in6[s:s+radix], in7[s:s+radix]
				for j, wv := range w {
					a0 += wv * b0[j]
					a1 += wv * b1[j]
					a2 += wv * b2[j]
					a3 += wv * b3[j]
					a4 += wv * b4[j]
					a5 += wv * b5[j]
					a6 += wv * b6[j]
					a7 += wv * b7[j]
				}
			} else {
				// Wrapped column — every column of a layer with m = radix
				// lands here, so it gets the same windowed BCE-free form,
				// one fragment at a time.
				t1, n1, t2, n2 := p.colRuns(t)
				s := base + t1
				w := vals[vi : vi+n1]
				vi += n1
				b0, b1, b2, b3 := in0[s:s+n1], in1[s:s+n1], in2[s:s+n1], in3[s:s+n1]
				b4, b5, b6, b7 := in4[s:s+n1], in5[s:s+n1], in6[s:s+n1], in7[s:s+n1]
				for j, wv := range w {
					a0 += wv * b0[j]
					a1 += wv * b1[j]
					a2 += wv * b2[j]
					a3 += wv * b3[j]
					a4 += wv * b4[j]
					a5 += wv * b5[j]
					a6 += wv * b6[j]
					a7 += wv * b7[j]
				}
				s = base + t2
				w = vals[vi : vi+n2]
				vi += n2
				b0, b1, b2, b3 = in0[s:s+n2], in1[s:s+n2], in2[s:s+n2], in3[s:s+n2]
				b4, b5, b6, b7 = in4[s:s+n2], in5[s:s+n2], in6[s:s+n2], in7[s:s+n2]
				for j, wv := range w {
					a0 += wv * b0[j]
					a1 += wv * b1[j]
					a2 += wv * b2[j]
					a3 += wv * b3[j]
					a4 += wv * b4[j]
					a5 += wv * b5[j]
					a6 += wv * b6[j]
					a7 += wv * b7[j]
				}
			}
			v0 := a0 + bias
			v1 := a1 + bias
			v2 := a2 + bias
			v3 := a3 + bias
			v4 := a4 + bias
			v5 := a5 + bias
			v6 := a6 + bias
			v7 := a7 + bias
			if v0 <= 0 {
				v0 = 0
			} else {
				if cap > 0 && v0 > cap {
					v0 = cap
				}
				n[0]++
			}
			if v1 <= 0 {
				v1 = 0
			} else {
				if cap > 0 && v1 > cap {
					v1 = cap
				}
				n[1]++
			}
			if v2 <= 0 {
				v2 = 0
			} else {
				if cap > 0 && v2 > cap {
					v2 = cap
				}
				n[2]++
			}
			if v3 <= 0 {
				v3 = 0
			} else {
				if cap > 0 && v3 > cap {
					v3 = cap
				}
				n[3]++
			}
			if v4 <= 0 {
				v4 = 0
			} else {
				if cap > 0 && v4 > cap {
					v4 = cap
				}
				n[4]++
			}
			if v5 <= 0 {
				v5 = 0
			} else {
				if cap > 0 && v5 > cap {
					v5 = cap
				}
				n[5]++
			}
			if v6 <= 0 {
				v6 = 0
			} else {
				if cap > 0 && v6 > cap {
					v6 = cap
				}
				n[6]++
			}
			if v7 <= 0 {
				v7 = 0
			} else {
				if cap > 0 && v7 > cap {
					v7 = cap
				}
				n[7]++
			}
			out0[c] = v0
			out1[c] = v1
			out2[c] = v2
			out3[c] = v3
			out4[c] = v4
			out5[c] = v5
			out6[c] = v6
			out7[c] = v7
			c++
		}
		lo++
		if lo == pv {
			lo = 0
			k++
		}
	}
	*nnz = n
}

// fusedGatherRow8ST8 is fusedGatherRow8ST specialized for radix 8, the Graph
// Challenge's dominant radix. The eight-tap reduction is fully unrolled:
// weights load into registers once per column and the 64 multiply-adds run
// straight-line with constant in-window offsets, so the hot path has no loop
// overhead and no bounds checks at all. Per-lane accumulation order is the
// same ascending-tap chain as the generic loop — results stay bit-identical.
//
//radix:hotpath
func (rk *RadixKernel) fusedGatherRow8ST8(outs, ins *[8][]float64, bias, cap float64, nnz *[8]int) {
	p := rk.plan
	rows, cols := p.rows, p.cols
	in0, in1, in2, in3 := ins[0][:rows], ins[1][:rows], ins[2][:rows], ins[3][:rows]
	in4, in5, in6, in7 := ins[4][:rows], ins[5][:rows], ins[6][:rows], ins[7][:rows]
	out0, out1, out2, out3 := outs[0][:cols], outs[1][:cols], outs[2][:cols], outs[3][:cols]
	out4, out5, out6, out7 := outs[4][:cols], outs[5][:cols], outs[6][:cols], outs[7][:cols]
	vals := rk.stVals
	pv, m := p.pv, p.m
	sp := pv * 8
	mp := p.np / sp
	var n [8]int
	vi := 0
	c := 0
	lo, k := 0, 0 // lop = k·pv + lo, maintained incrementally (no div/mod)
	for lop := 0; lop < sp; lop++ {
		base := lo * m
		for up := 0; up < mp; up++ {
			t := up*8 + k
			var a0, a1, a2, a3, a4, a5, a6, a7 float64
			// The 64-tap block below is the kernel's inner loop; the only
			// checks the compiler may keep are the O(1)-per-column window
			// formations (IsSliceInBounds). Per-element IsInBounds in here
			// is a regression the bce-gate fails.
			//radix:bce region=radix8-taps allow=slice
			if t >= 7 || m == 8 {
				s := base
				if t >= 7 {
					s += t - 7
				}
				w := vals[vi : vi+8]
				vi += 8
				w0, w1, w2, w3 := w[0], w[1], w[2], w[3]
				w4, w5, w6, w7 := w[4], w[5], w[6], w[7]
				b := in0[s : s+8]
				a0 += w0 * b[0]
				a0 += w1 * b[1]
				a0 += w2 * b[2]
				a0 += w3 * b[3]
				a0 += w4 * b[4]
				a0 += w5 * b[5]
				a0 += w6 * b[6]
				a0 += w7 * b[7]
				b = in1[s : s+8]
				a1 += w0 * b[0]
				a1 += w1 * b[1]
				a1 += w2 * b[2]
				a1 += w3 * b[3]
				a1 += w4 * b[4]
				a1 += w5 * b[5]
				a1 += w6 * b[6]
				a1 += w7 * b[7]
				b = in2[s : s+8]
				a2 += w0 * b[0]
				a2 += w1 * b[1]
				a2 += w2 * b[2]
				a2 += w3 * b[3]
				a2 += w4 * b[4]
				a2 += w5 * b[5]
				a2 += w6 * b[6]
				a2 += w7 * b[7]
				b = in3[s : s+8]
				a3 += w0 * b[0]
				a3 += w1 * b[1]
				a3 += w2 * b[2]
				a3 += w3 * b[3]
				a3 += w4 * b[4]
				a3 += w5 * b[5]
				a3 += w6 * b[6]
				a3 += w7 * b[7]
				b = in4[s : s+8]
				a4 += w0 * b[0]
				a4 += w1 * b[1]
				a4 += w2 * b[2]
				a4 += w3 * b[3]
				a4 += w4 * b[4]
				a4 += w5 * b[5]
				a4 += w6 * b[6]
				a4 += w7 * b[7]
				b = in5[s : s+8]
				a5 += w0 * b[0]
				a5 += w1 * b[1]
				a5 += w2 * b[2]
				a5 += w3 * b[3]
				a5 += w4 * b[4]
				a5 += w5 * b[5]
				a5 += w6 * b[6]
				a5 += w7 * b[7]
				b = in6[s : s+8]
				a6 += w0 * b[0]
				a6 += w1 * b[1]
				a6 += w2 * b[2]
				a6 += w3 * b[3]
				a6 += w4 * b[4]
				a6 += w5 * b[5]
				a6 += w6 * b[6]
				a6 += w7 * b[7]
				b = in7[s : s+8]
				a7 += w0 * b[0]
				a7 += w1 * b[1]
				a7 += w2 * b[2]
				a7 += w3 * b[3]
				a7 += w4 * b[4]
				a7 += w5 * b[5]
				a7 += w6 * b[6]
				a7 += w7 * b[7]
			} else {
				// Wrapped column: two windowed fragments, same as the generic
				// octet. Only the radix-1 lowest columns of each residue take
				// this path.
				t1, n1, t2, n2 := p.colRuns(t)
				s := base + t1
				w := vals[vi : vi+n1]
				vi += n1
				b0, b1, b2, b3 := in0[s:s+n1], in1[s:s+n1], in2[s:s+n1], in3[s:s+n1]
				b4, b5, b6, b7 := in4[s:s+n1], in5[s:s+n1], in6[s:s+n1], in7[s:s+n1]
				for j, wv := range w {
					a0 += wv * b0[j]
					a1 += wv * b1[j]
					a2 += wv * b2[j]
					a3 += wv * b3[j]
					a4 += wv * b4[j]
					a5 += wv * b5[j]
					a6 += wv * b6[j]
					a7 += wv * b7[j]
				}
				s = base + t2
				w = vals[vi : vi+n2]
				vi += n2
				b0, b1, b2, b3 = in0[s:s+n2], in1[s:s+n2], in2[s:s+n2], in3[s:s+n2]
				b4, b5, b6, b7 = in4[s:s+n2], in5[s:s+n2], in6[s:s+n2], in7[s:s+n2]
				for j, wv := range w {
					a0 += wv * b0[j]
					a1 += wv * b1[j]
					a2 += wv * b2[j]
					a3 += wv * b3[j]
					a4 += wv * b4[j]
					a5 += wv * b5[j]
					a6 += wv * b6[j]
					a7 += wv * b7[j]
				}
			}
			//radix:bce end
			v0 := a0 + bias
			v1 := a1 + bias
			v2 := a2 + bias
			v3 := a3 + bias
			v4 := a4 + bias
			v5 := a5 + bias
			v6 := a6 + bias
			v7 := a7 + bias
			if v0 <= 0 {
				v0 = 0
			} else {
				if cap > 0 && v0 > cap {
					v0 = cap
				}
				n[0]++
			}
			if v1 <= 0 {
				v1 = 0
			} else {
				if cap > 0 && v1 > cap {
					v1 = cap
				}
				n[1]++
			}
			if v2 <= 0 {
				v2 = 0
			} else {
				if cap > 0 && v2 > cap {
					v2 = cap
				}
				n[2]++
			}
			if v3 <= 0 {
				v3 = 0
			} else {
				if cap > 0 && v3 > cap {
					v3 = cap
				}
				n[3]++
			}
			if v4 <= 0 {
				v4 = 0
			} else {
				if cap > 0 && v4 > cap {
					v4 = cap
				}
				n[4]++
			}
			if v5 <= 0 {
				v5 = 0
			} else {
				if cap > 0 && v5 > cap {
					v5 = cap
				}
				n[5]++
			}
			if v6 <= 0 {
				v6 = 0
			} else {
				if cap > 0 && v6 > cap {
					v6 = cap
				}
				n[6]++
			}
			if v7 <= 0 {
				v7 = 0
			} else {
				if cap > 0 && v7 > cap {
					v7 = cap
				}
				n[7]++
			}
			out0[c] = v0
			out1[c] = v1
			out2[c] = v2
			out3[c] = v3
			out4[c] = v4
			out5[c] = v5
			out6[c] = v6
			out7[c] = v7
			c++
		}
		lo++
		if lo == pv {
			lo = 0
			k++
		}
	}
	*nnz = n
}

// FusedScatterRow is the CSR dual with arithmetic addressing: the fused
// feedforward step computed by scattering each nonzero input activation
// across its out-edges, whose columns are generated from the plan instead of
// loaded from the pattern's index array. Mostly-zero rows take this path in
// the engine, so layer 0 of a Graph Challenge workload is index-free too.
// Accumulation visits input rows in ascending order, matching
// Matrix.FusedScatterRow bit-for-bit. It does not allocate.
func (rk *RadixKernel) FusedScatterRow(out, in []float64, bias, cap float64) int {
	p := rk.plan
	in = in[:p.rows]
	out = out[:p.cols]
	for c := range out {
		out[c] = 0
	}
	vals := rk.csrVals
	np, pv, radix, m, dNext := p.np, p.pv, p.radix, p.m, p.dNext
	outDeg := rk.outDeg
	// lo = (r mod np) mod pv and t = (r mod np) / pv are maintained
	// incrementally — the skip-heavy loop pays two increments per row
	// instead of two divisions.
	lo, t := 0, 0
	for r, xv := range in {
		if xv != 0 {
			// Out-cols of this row: wrapped low fragment first, then t..end.
			n2 := radix
			n1 := 0
			if hi := t + radix - 1; hi >= m {
				n1 = hi - m + 1
				n2 = m - t
			}
			vi := r * outDeg // row-major values start at r·outDeg
			for b := 0; b < dNext; b++ {
				base := b*np + lo
				q := base
				for j := 0; j < n1; j++ {
					out[q] += xv * vals[vi]
					vi++
					q += pv
				}
				q = base + t*pv
				for j := 0; j < n2; j++ {
					out[q] += xv * vals[vi]
					vi++
					q += pv
				}
			}
		}
		lo++
		if lo == pv {
			lo = 0
			t++
			if t == m {
				t = 0
			}
		}
	}
	nnz := 0
	for c, acc := range out {
		v := acc + bias
		if v <= 0 {
			v = 0
		} else {
			if cap > 0 && v > cap {
				v = cap
			}
			nnz++
		}
		out[c] = v
	}
	return nnz
}

// FusedScatterRowStockham is the scatter path for Stockham-mode kernels: in
// is packed by pv and out is written packed by pv·radix. Accumulation runs
// in natural column layout inside the caller-provided scratch (len ≥ cols) —
// contiguous stride-pv runs exactly as FusedScatterRow, which keeps the
// dominant first-layer case (pv = 1) unit-stride — and the fused epilogue
// then writes bias/ReLU/cap results into out in packed order with a single
// incrementally-maintained permuted index, so the permutation costs one
// buffered store per column instead of radix strided read-modify-writes per
// edge. Every output column's contributors share one input residue class, so
// the packed iteration still visits them in ascending row order: results are
// bit-identical (modulo layout) to FusedScatterRow. It does not allocate.
func (rk *RadixKernel) FusedScatterRowStockham(out, in, scratch []float64, bias, cap float64) int {
	p := rk.plan
	in = in[:p.rows]
	out = out[:p.cols]
	pv, radix, m := p.pv, p.radix, p.m
	if pv == 1 && bias <= 0 && radix&(radix-1) == 0 && 2*radix <= len(scratch) {
		return rk.scatterRowRing(out, in, scratch[:2*radix], bias, cap)
	}
	scratch = scratch[:p.cols]
	for c := range scratch {
		scratch[c] = 0
	}
	vals := rk.csrVals
	if pv == 1 {
		// First layer of a system: packed input is natural input and the
		// out-col runs are contiguous, so both accumulation fragments become
		// equal-length windows — bounds checks vanish from the hot loop.
		for r, xv := range in {
			if xv == 0 {
				continue
			}
			n2 := radix
			n1 := 0
			if hi := r + radix - 1; hi >= m {
				n1 = hi - m + 1
				n2 = m - r
			}
			vi := r * radix
			w := vals[vi : vi+n1]
			dst := scratch[:n1]
			for j, wv := range w {
				dst[j] += xv * wv
			}
			w = vals[vi+n1 : vi+n1+n2]
			dst = scratch[r : r+n2]
			for j, wv := range w {
				dst[j] += xv * wv
			}
		}
		return rk.packedEpilogue(out, scratch, bias, cap)
	}
	pos := 0
	for lo := 0; lo < pv; lo++ {
		r := lo
		for t := 0; t < m; t++ {
			xv := in[pos]
			pos++
			if xv != 0 {
				// Natural out-cols of row r: wrapped low fragment, then t..end.
				n2 := radix
				n1 := 0
				if hi := t + radix - 1; hi >= m {
					n1 = hi - m + 1
					n2 = m - t
				}
				vi := r * radix
				q := lo
				for j := 0; j < n1; j++ {
					scratch[q] += xv * vals[vi]
					vi++
					q += pv
				}
				q = lo + t*pv
				for j := 0; j < n2; j++ {
					scratch[q] += xv * vals[vi]
					vi++
					q += pv
				}
			}
			r += pv
		}
	}
	return rk.packedEpilogue(out, scratch, bias, cap)
}

// scatterRowRing is the sliding-window scatter for first-of-system layers
// (pv = 1) with power-of-two radix and non-positive bias, which is the
// configuration every engine scatter step actually runs; anything else takes
// the scratch-and-epilogue path. Power-of-two radix turns the slot and block
// indices into mask/shift, so the skip-heavy row scan carries no state at
// all. With pv = 1 the out-edge window of input row r
// is the column interval [r, r+radix−1] (mod m): advancing one row slides the
// window by one column, so at most radix columns are ever incomplete at once.
// A ring of radix accumulators retires each column with a single packed store
// the moment its last contributor passes — no natural-layout scratch array,
// no O(N′) zero-fill and no separate permutation pass, so the packed layout
// costs one store per *live* column instead of one per column. Columns whose
// edges wrap past m accumulate in a small head buffer finalized after the
// sweep. Untouched columns keep the zero the output was cleared to, which
// equals ReLU(acc+bias) for acc = 0, bias ≤ 0. Per-column accumulation order
// is ascending contributor row, the same as FusedScatterRow: results are
// bit-identical (modulo layout). ring must have length ≥ 2·radix; it is
// scratch space only, no state is kept between calls.
func (rk *RadixKernel) scatterRowRing(out, in, ring []float64, bias, cap float64) int {
	p := rk.plan
	radix, m := p.radix, p.m
	mp := p.np / radix // output rows per packed residue block (sp = radix)
	vals := rk.csrVals
	for c := range out {
		out[c] = 0
	}
	head := ring[radix : 2*radix] // head[c]: wrap columns c < radix-1
	ring = ring[:radix]           // ring[c%radix]: in-flight columns c ≥ radix-1
	for i := range ring {
		ring[i] = 0
	}
	for i := range head {
		head[i] = 0
	}
	nnz := 0
	// Touched-but-unretired non-head columns form the window [pLo, pHi]
	// (width ≤ radix). sLo/dLo mirror pLo%radix and pLo/radix, and sR/dR
	// mirror r%radix and r/radix, all maintained incrementally so the loop
	// runs without a single division. A slot is always retired (and zeroed)
	// before the column radix places later can touch it: column c+radix's
	// first possible contributor is row c+1, and all columns < r retire
	// before row r accumulates.
	mask := radix - 1
	sh := bits.TrailingZeros(uint(radix))
	pLo, pHi := 0, -1
	for r, xv := range in {
		if xv == 0 {
			continue
		}
		if pHi >= 0 {
			// Retire columns whose contributor interval ended before r.
			end := r - 1
			if end > pHi {
				end = pHi
			}
			sLo, dLo := pLo&mask, pLo>>sh
			for c := pLo; c <= end; c++ {
				if acc := ring[sLo]; acc != 0 {
					ring[sLo] = 0
					if v := acc + bias; v > 0 {
						if cap > 0 && v > cap {
							v = cap
						}
						out[sLo*mp+dLo] = v
						nnz++
					}
				}
				sLo++
				if sLo == radix {
					sLo = 0
					dLo++
				}
			}
			pLo = end + 1
		}
		if pLo > pHi {
			// Gap emptied the window; realign it to row r.
			pLo = r
		}
		vi := r * radix
		n2 := radix
		if hi := r + radix - 1; hi >= m {
			// Row-ascending CSR order puts the wrapped head columns first.
			n1 := hi - m + 1
			n2 = m - r
			for j := 0; j < n1; j++ {
				head[j] += xv * vals[vi]
				vi++
			}
		}
		if r >= radix-1 {
			// Slots r&mask..radix-1 then 0.. — two equal-length windows, so
			// both the wrap test and the bounds checks leave the loop.
			sR := r & mask
			k1 := radix - sR
			if k1 > n2 {
				k1 = n2
			}
			a := ring[sR : sR+k1]
			for j, wv := range vals[vi : vi+k1] {
				a[j] += xv * wv
			}
			if k2 := n2 - k1; k2 > 0 {
				a = ring[:k2]
				for j, wv := range vals[vi+k1 : vi+n2] {
					a[j] += xv * wv
				}
			}
		} else {
			// Early rows: columns below radix-1 belong to the head buffer.
			for j := 0; j < n2; j++ {
				if c := r + j; c < radix-1 {
					head[c] += xv * vals[vi]
				} else {
					ring[c&mask] += xv * vals[vi]
				}
				vi++
			}
		}
		if pHi = r + radix - 1; pHi >= m {
			pHi = m - 1
		}
	}
	sLo, dLo := pLo&mask, pLo>>sh
	for c := pLo; c <= pHi; c++ {
		if acc := ring[sLo]; acc != 0 {
			if v := acc + bias; v > 0 {
				if cap > 0 && v > cap {
					v = cap
				}
				out[sLo*mp+dLo] = v
				nnz++
			}
		}
		sLo++
		if sLo == radix {
			sLo = 0
			dLo++
		}
	}
	for c, acc := range head[:radix-1] {
		if acc == 0 {
			continue
		}
		if v := acc + bias; v > 0 {
			if cap > 0 && v > cap {
				v = cap
			}
			out[c*mp] = v // OutPackPos(c) for c < radix
			nnz++
		}
	}
	return nnz
}

// FusedScatterRowStockhamNZ is FusedScatterRowStockham with the row's
// nonzero positions precomputed (ascending, exactly the positions whose
// values compare != 0). Engines already discover them once while staging the
// batch, so handing them to the scatter removes its full-width skip scan —
// the only part of the ring path whose cost scales with N′ rather than with
// the live edge count. Falls back to the scanning form when the ring
// preconditions don't hold. Results are bit-identical to
// FusedScatterRowStockham.
func (rk *RadixKernel) FusedScatterRowStockhamNZ(out, in []float64, nz []int32, scratch []float64, bias, cap float64) int {
	p := rk.plan
	radix := p.radix
	if p.pv != 1 || bias > 0 || radix&(radix-1) != 0 || 2*radix > len(scratch) {
		return rk.FusedScatterRowStockham(out, in, scratch, bias, cap)
	}
	in = in[:p.rows]
	out = out[:p.cols]
	return rk.scatterRowRingNZ(out, in, nz, scratch[:2*radix], bias, cap)
}

// scatterRowRingNZ is scatterRowRing driving the same ring off an explicit
// nonzero-position list instead of a full-width scan. The body is kept in
// lockstep with scatterRowRing — per-column accumulation order and rounding
// are identical, only row discovery differs.
func (rk *RadixKernel) scatterRowRingNZ(out, in []float64, nz []int32, ring []float64, bias, cap float64) int {
	p := rk.plan
	radix, m := p.radix, p.m
	mp := p.np / radix
	vals := rk.csrVals
	for c := range out {
		out[c] = 0
	}
	head := ring[radix : 2*radix]
	ring = ring[:radix]
	for i := range ring {
		ring[i] = 0
	}
	for i := range head {
		head[i] = 0
	}
	nnz := 0
	mask := radix - 1
	sh := bits.TrailingZeros(uint(radix))
	pLo, pHi := 0, -1
	for _, ri := range nz {
		r := int(ri)
		xv := in[r]
		if pHi >= 0 {
			end := r - 1
			if end > pHi {
				end = pHi
			}
			sLo, dLo := pLo&mask, pLo>>sh
			for c := pLo; c <= end; c++ {
				if acc := ring[sLo]; acc != 0 {
					ring[sLo] = 0
					if v := acc + bias; v > 0 {
						if cap > 0 && v > cap {
							v = cap
						}
						out[sLo*mp+dLo] = v
						nnz++
					}
				}
				sLo++
				if sLo == radix {
					sLo = 0
					dLo++
				}
			}
			pLo = end + 1
		}
		if pLo > pHi {
			pLo = r
		}
		vi := r * radix
		n2 := radix
		if hi := r + radix - 1; hi >= m {
			n1 := hi - m + 1
			n2 = m - r
			for j := 0; j < n1; j++ {
				head[j] += xv * vals[vi]
				vi++
			}
		}
		if r >= radix-1 {
			sR := r & mask
			k1 := radix - sR
			if k1 > n2 {
				k1 = n2
			}
			a := ring[sR : sR+k1]
			for j, wv := range vals[vi : vi+k1] {
				a[j] += xv * wv
			}
			if k2 := n2 - k1; k2 > 0 {
				a = ring[:k2]
				for j, wv := range vals[vi+k1 : vi+n2] {
					a[j] += xv * wv
				}
			}
		} else {
			for j := 0; j < n2; j++ {
				if c := r + j; c < radix-1 {
					head[c] += xv * vals[vi]
				} else {
					ring[c&mask] += xv * vals[vi]
				}
				vi++
			}
		}
		if pHi = r + radix - 1; pHi >= m {
			pHi = m - 1
		}
	}
	sLo, dLo := pLo&mask, pLo>>sh
	for c := pLo; c <= pHi; c++ {
		if acc := ring[sLo]; acc != 0 {
			if v := acc + bias; v > 0 {
				if cap > 0 && v > cap {
					v = cap
				}
				out[sLo*mp+dLo] = v
				nnz++
			}
		}
		sLo++
		if sLo == radix {
			sLo = 0
			dLo++
		}
	}
	for c, acc := range head[:radix-1] {
		if acc == 0 {
			continue
		}
		if v := acc + bias; v > 0 {
			if cap > 0 && v > cap {
				v = cap
			}
			out[c*mp] = v
			nnz++
		}
	}
	return nnz
}

// packedEpilogue applies the fused bias/ReLU/cap pass to the natural-layout
// accumulators in scratch, writing results into out in the plan's packed
// output layout with a single incrementally-maintained permuted index. The
// stores stride m′ apart but drain through the store buffer; keeping the
// *loads* sequential measures faster here than the tiled transpose that
// would make the stores sequential at the cost of strided loads.
func (rk *RadixKernel) packedEpilogue(out, scratch []float64, bias, cap float64) int {
	p := rk.plan
	np := p.np
	sp := p.pv * p.radix
	mp := np / sp
	nnz := 0
	pc := 0 // OutPackPos(c), maintained incrementally
	for _, acc := range scratch {
		v := acc + bias
		if v <= 0 {
			v = 0
		} else {
			if cap > 0 && v > cap {
				v = cap
			}
			nnz++
		}
		out[pc] = v
		pc += mp
		if pc >= np {
			pc -= np - 1
		}
	}
	return nnz
}
