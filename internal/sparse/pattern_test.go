package sparse

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// randPattern draws a random pattern with no empty-row/column guarantees.
func randPattern(rng *rand.Rand, rows, cols int, density float64) *Pattern {
	rowCols := make([][]int, rows)
	for r := range rowCols {
		for c := 0; c < cols; c++ {
			if rng.Float64() < density {
				rowCols[r] = append(rowCols[r], c)
			}
		}
	}
	p, err := NewPattern(rows, cols, rowCols)
	if err != nil {
		panic(err)
	}
	return p
}

// boolMul is the dense reference for pattern multiplication.
func boolMul(a, b [][]bool) [][]bool {
	rows, inner, cols := len(a), len(b), len(b[0])
	out := make([][]bool, rows)
	for r := range out {
		out[r] = make([]bool, cols)
		for k := 0; k < inner; k++ {
			if !a[r][k] {
				continue
			}
			for c := 0; c < cols; c++ {
				if b[k][c] {
					out[r][c] = true
				}
			}
		}
	}
	return out
}

func boolEqual(a [][]bool, p *Pattern) bool {
	if len(a) != p.Rows() || len(a[0]) != p.Cols() {
		return false
	}
	for r := range a {
		for c := range a[r] {
			if a[r][c] != p.Has(r, c) {
				return false
			}
		}
	}
	return true
}

func TestNewPatternValidation(t *testing.T) {
	if _, err := NewPattern(0, 3, nil); err == nil {
		t.Fatal("zero rows should fail")
	}
	if _, err := NewPattern(2, 0, [][]int{nil, nil}); err == nil {
		t.Fatal("zero cols should fail")
	}
	if _, err := NewPattern(2, 3, [][]int{{0}}); err == nil {
		t.Fatal("wrong row count should fail")
	}
	if _, err := NewPattern(2, 3, [][]int{{3}, nil}); err == nil {
		t.Fatal("out-of-range column should fail")
	}
	if _, err := NewPattern(2, 3, [][]int{{-1}, nil}); err == nil {
		t.Fatal("negative column should fail")
	}
}

func TestNewPatternSortsAndDedupes(t *testing.T) {
	p, err := NewPattern(2, 4, [][]int{{3, 1, 1, 0}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if p.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4 (dedup)", p.NNZ())
	}
	row := p.Row(0)
	want := []int{0, 1, 3}
	for i, c := range want {
		if row[i] != c {
			t.Fatalf("row 0 = %v, want %v", row, want)
		}
	}
}

func TestFromCSRValidation(t *testing.T) {
	if _, err := FromCSR(2, 2, []int{0, 1, 2}, []int{0, 1}); err != nil {
		t.Fatalf("valid CSR rejected: %v", err)
	}
	cases := []struct {
		name   string
		rowPtr []int
		colIdx []int
	}{
		{"short rowPtr", []int{0, 2}, []int{0, 1}},
		{"rowPtr head", []int{1, 1, 2}, []int{0, 1}},
		{"rowPtr tail", []int{0, 1, 3}, []int{0, 1}},
		{"decreasing", []int{0, 2, 1}, []int{0, 1}},
		{"unsorted row", []int{0, 2, 2}, []int{1, 0}},
		{"dup in row", []int{0, 2, 2}, []int{1, 1}},
		{"col range", []int{0, 1, 2}, []int{0, 5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := FromCSR(2, 2, tc.rowPtr, tc.colIdx); err == nil {
				t.Fatal("malformed CSR accepted")
			}
		})
	}
}

func TestIdentity(t *testing.T) {
	p := Identity(4)
	if p.NNZ() != 4 {
		t.Fatalf("identity NNZ = %d", p.NNZ())
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if p.Has(r, c) != (r == c) {
				t.Fatalf("identity wrong at (%d,%d)", r, c)
			}
		}
	}
}

func TestOnes(t *testing.T) {
	p := Ones(2, 3)
	if p.NNZ() != 6 || p.Density() != 1 {
		t.Fatalf("ones NNZ=%d density=%g", p.NNZ(), p.Density())
	}
}

func TestCyclicShiftOrientation(t *testing.T) {
	// Library orientation: (r, c) set iff c ≡ r+s (mod n).
	p := CyclicShift(5, 1)
	for r := 0; r < 5; r++ {
		if !p.Has(r, (r+1)%5) {
			t.Fatalf("shift(+1) missing (%d,%d)", r, (r+1)%5)
		}
	}
	// Negative shift reproduces the paper's eq. (2) literally: row 0 has its
	// one in the last column.
	q := CyclicShift(5, -1)
	if !q.Has(0, 4) {
		t.Fatal("shift(-1) row 0 should hit last column (paper eq. 2)")
	}
	// The two orientations are transposes of each other (DESIGN.md E-a).
	if !p.Transpose().Equal(q) {
		t.Fatal("CyclicShift(n,1) must be the transpose of CyclicShift(n,-1)")
	}
}

func TestCyclicShiftPowersCompose(t *testing.T) {
	// P^a · P^b = P^{a+b}.
	n := 7
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			pa, pb := CyclicShift(n, a), CyclicShift(n, b)
			prod, err := pa.Mul(pb)
			if err != nil {
				t.Fatal(err)
			}
			if !prod.Equal(CyclicShift(n, a+b)) {
				t.Fatalf("P^%d · P^%d != P^%d", a, b, a+b)
			}
		}
	}
}

func TestSumOfShiftsEqualsExplicitSum(t *testing.T) {
	// Wi = Σ P^{n·ν} built via SumOfShifts must equal the union of the
	// individual powers (eq. 1).
	n, nu := 12, 3
	shifts := []int{0, nu, 2 * nu, 3 * nu}
	got := SumOfShifts(n, shifts)
	want := CyclicShift(n, 0)
	for _, s := range shifts[1:] {
		u, err := want.Union(CyclicShift(n, s))
		if err != nil {
			t.Fatal(err)
		}
		want = u
	}
	if !got.Equal(want) {
		t.Fatal("SumOfShifts disagrees with explicit union of powers")
	}
}

func TestSumOfShiftsDedupes(t *testing.T) {
	p := SumOfShifts(4, []int{0, 4, 8, 1, 5})
	if p.RowDegree(0) != 2 { // 0≡4≡8 and 1≡5 (mod 4)
		t.Fatalf("degree = %d, want 2", p.RowDegree(0))
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randPattern(rng, 1+rng.Intn(20), 1+rng.Intn(20), rng.Float64())
		return p.Transpose().Transpose().Equal(p)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposePreservesNNZAndFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randPattern(rng, 13, 9, 0.3)
	tr := p.Transpose()
	if tr.Rows() != p.Cols() || tr.Cols() != p.Rows() || tr.NNZ() != p.NNZ() {
		t.Fatal("transpose shape or nnz wrong")
	}
	for r := 0; r < p.Rows(); r++ {
		for _, c := range p.Row(r) {
			if !tr.Has(c, r) {
				t.Fatalf("transpose missing (%d,%d)", c, r)
			}
		}
	}
}

func TestMulAgainstDenseReferenceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, inner, cols := 1+rng.Intn(15), 1+rng.Intn(15), 1+rng.Intn(15)
		a := randPattern(rng, rows, inner, 0.1+0.5*rng.Float64())
		b := randPattern(rng, inner, cols, 0.1+0.5*rng.Float64())
		got, err := a.Mul(b)
		if err != nil {
			return false
		}
		return boolEqual(boolMul(a.DenseBool(), b.DenseBool()), got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMulShapeError(t *testing.T) {
	a := Ones(2, 3)
	b := Ones(4, 2)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("nonconforming Mul should fail")
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := randPattern(rng, n, n, 0.4)
		b := randPattern(rng, n, n, 0.4)
		c := randPattern(rng, n, n, 0.4)
		ab, _ := a.Mul(b)
		abc1, _ := ab.Mul(c)
		bc, _ := b.Mul(c)
		abc2, _ := a.Mul(bc)
		return abc1.Equal(abc2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestUnion(t *testing.T) {
	a, _ := NewPattern(2, 3, [][]int{{0, 2}, {1}})
	b, _ := NewPattern(2, 3, [][]int{{1, 2}, nil})
	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if u.NNZ() != 4 {
		t.Fatalf("union NNZ = %d, want 4", u.NNZ())
	}
	for _, tc := range []struct{ r, c int }{{0, 0}, {0, 1}, {0, 2}, {1, 1}} {
		if !u.Has(tc.r, tc.c) {
			t.Fatalf("union missing (%d,%d)", tc.r, tc.c)
		}
	}
	if _, err := a.Union(Ones(3, 3)); err == nil {
		t.Fatal("shape mismatch union should fail")
	}
}

func TestIntersect(t *testing.T) {
	a, _ := NewPattern(2, 3, [][]int{{0, 1, 2}, {1}})
	b, _ := NewPattern(2, 3, [][]int{{1, 2}, {0}})
	got, err := a.Intersect(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 2 || !got.Has(0, 1) || !got.Has(0, 2) {
		t.Fatalf("intersect = %v", got)
	}
	if _, err := a.Intersect(Ones(3, 3)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestIntersectUnionDeMorganProperty(t *testing.T) {
	// |p| + |q| = |p∪q| + |p∩q| — inclusion–exclusion on edge sets.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		p := randPattern(rng, rows, cols, rng.Float64())
		q := randPattern(rng, rows, cols, rng.Float64())
		u, err := p.Union(q)
		if err != nil {
			return false
		}
		i, err := p.Intersect(q)
		if err != nil {
			return false
		}
		return p.NNZ()+q.NNZ() == u.NNZ()+i.NNZ()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestJaccard(t *testing.T) {
	a := Identity(4)
	if j, err := a.Jaccard(a); err != nil || j != 1 {
		t.Fatalf("self Jaccard = %g, %v", j, err)
	}
	b := CyclicShift(4, 1)
	j, err := a.Jaccard(b)
	if err != nil {
		t.Fatal(err)
	}
	if j != 0 { // identity and shift share no entries
		t.Fatalf("disjoint Jaccard = %g", j)
	}
	// Two empty patterns are identical by convention.
	e1, _ := NewPattern(2, 2, [][]int{nil, nil})
	e2, _ := NewPattern(2, 2, [][]int{nil, nil})
	if j, _ := e1.Jaccard(e2); j != 1 {
		t.Fatalf("empty Jaccard = %g", j)
	}
}

func TestUnionCommutativeIdempotentProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(10), 1+rng.Intn(10)
		p := randPattern(rng, rows, cols, rng.Float64())
		q := randPattern(rng, rows, cols, rng.Float64())
		pq, _ := p.Union(q)
		qp, _ := q.Union(p)
		pp, _ := p.Union(p)
		return pq.Equal(qp) && pp.Equal(p)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeOfProductProperty(t *testing.T) {
	// (p·q)ᵀ = qᵀ·pᵀ.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randPattern(rng, 1+rng.Intn(8), 1+rng.Intn(8), 0.5)
		q := randPattern(rng, p.Cols(), 1+rng.Intn(8), 0.5)
		pq, err := p.Mul(q)
		if err != nil {
			return false
		}
		qt, err := q.Transpose().Mul(p.Transpose())
		if err != nil {
			return false
		}
		return pq.Transpose().Equal(qt)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestKronAgainstDefinitionProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randPattern(rng, 1+rng.Intn(6), 1+rng.Intn(6), 0.5)
		b := randPattern(rng, 1+rng.Intn(6), 1+rng.Intn(6), 0.5)
		k := a.Kron(b)
		if k.Rows() != a.Rows()*b.Rows() || k.Cols() != a.Cols()*b.Cols() {
			return false
		}
		if k.NNZ() != a.NNZ()*b.NNZ() {
			return false
		}
		for i := 0; i < k.Rows(); i++ {
			for j := 0; j < k.Cols(); j++ {
				want := a.Has(i/b.Rows(), j/b.Cols()) && b.Has(i%b.Rows(), j%b.Cols())
				if k.Has(i, j) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestKronMixedProductProperty(t *testing.T) {
	// (A⊗B)(C⊗D) = (AC)⊗(BD) — the identity the paper's Theorem 1 proof
	// leans on (via Van Loan).
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n, p := 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(4)
		q, r, s := 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(4)
		a := randPattern(rng, m, n, 0.6)
		c := randPattern(rng, n, p, 0.6)
		b := randPattern(rng, q, r, 0.6)
		d := randPattern(rng, r, s, 0.6)
		left, err := a.Kron(b).Mul(c.Kron(d))
		if err != nil {
			return false
		}
		ac, _ := a.Mul(c)
		bd, _ := b.Mul(d)
		return left.Equal(ac.Kron(bd))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestKronWithOnesIsBlockReplication(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := randPattern(rng, 5, 5, 0.4)
	k := Ones(2, 3).Kron(w)
	if k.Rows() != 10 || k.Cols() != 15 || k.NNZ() != 6*w.NNZ() {
		t.Fatal("ones-Kron shape or count wrong")
	}
	for a := 0; a < 2; a++ {
		for b := 0; b < 3; b++ {
			for r := 0; r < 5; r++ {
				for c := 0; c < 5; c++ {
					if k.Has(a*5+r, b*5+c) != w.Has(r, c) {
						t.Fatalf("block (%d,%d) differs at (%d,%d)", a, b, r, c)
					}
				}
			}
		}
	}
}

func TestZeroRowColDetection(t *testing.T) {
	p, _ := NewPattern(3, 3, [][]int{{0, 1}, nil, {2}})
	if !p.HasZeroRow() {
		t.Fatal("row 1 is empty")
	}
	q, _ := NewPattern(2, 3, [][]int{{0}, {2}})
	if !q.HasZeroCol() {
		t.Fatal("column 1 is empty")
	}
	full := Ones(2, 2)
	if full.HasZeroRow() || full.HasZeroCol() {
		t.Fatal("ones has no empty rows or columns")
	}
}

func TestPermuteRowsAndCols(t *testing.T) {
	p, _ := NewPattern(3, 3, [][]int{{0}, {1}, {2}})
	perm := []int{2, 0, 1}
	pr, err := p.PermuteRows(perm)
	if err != nil {
		t.Fatal(err)
	}
	// Row r of pr is row perm[r] of p.
	for r := 0; r < 3; r++ {
		if !pr.Has(r, perm[r]) {
			t.Fatalf("PermuteRows wrong at row %d", r)
		}
	}
	pc, err := p.PermuteCols(perm)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		if !pc.Has(r, perm[r]) {
			t.Fatalf("PermuteCols wrong at row %d", r)
		}
	}
	if _, err := p.PermuteRows([]int{0, 0, 1}); err == nil {
		t.Fatal("invalid permutation accepted")
	}
	if _, err := p.PermuteCols([]int{0, 1}); err == nil {
		t.Fatal("short permutation accepted")
	}
}

func TestPermutationPreservesSymmetryClass(t *testing.T) {
	// Permuting node labels of a cyclic shift keeps it a permutation matrix.
	p := CyclicShift(6, 2)
	perm := []int{5, 4, 3, 2, 1, 0}
	q, err := p.PermuteRows(perm)
	if err != nil {
		t.Fatal(err)
	}
	if q.NNZ() != 6 || q.HasZeroRow() || q.HasZeroCol() {
		t.Fatal("permuted permutation matrix is no longer a permutation")
	}
}

func TestColDegrees(t *testing.T) {
	p, _ := NewPattern(3, 3, [][]int{{0, 1}, {1}, {1, 2}})
	deg := p.ColDegrees()
	want := []int{1, 3, 1}
	for i, w := range want {
		if deg[i] != w {
			t.Fatalf("ColDegrees = %v, want %v", deg, want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	p, _ := NewPattern(2, 2, [][]int{{0}, {1}})
	s := p.String()
	if !strings.Contains(s, "1 .") || !strings.Contains(s, ". 1") {
		t.Fatalf("unexpected rendering:\n%s", s)
	}
	big := Ones(200, 200)
	if !strings.Contains(big.String(), "nnz=40000") {
		t.Fatal("large patterns should summarize")
	}
}

func TestEqualCatchesStructureDiff(t *testing.T) {
	a, _ := NewPattern(2, 2, [][]int{{0}, {1}})
	b, _ := NewPattern(2, 2, [][]int{{1}, {0}})
	c, _ := NewPattern(2, 2, [][]int{{0}, {1}})
	if a.Equal(b) {
		t.Fatal("different patterns compare equal")
	}
	if !a.Equal(c) {
		t.Fatal("identical patterns compare unequal")
	}
}
