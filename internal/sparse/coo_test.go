package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCOOValidation(t *testing.T) {
	if _, err := NewCOO(0, 2); err == nil {
		t.Fatal("zero rows accepted")
	}
	if _, err := NewCOO(2, 0); err == nil {
		t.Fatal("zero cols accepted")
	}
}

func TestCOOAddRangeErrors(t *testing.T) {
	coo, _ := NewCOO(2, 2)
	for _, e := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		if err := coo.Add(e[0], e[1]); err == nil {
			t.Fatalf("out-of-range entry %v accepted", e)
		}
	}
}

func TestCOODedupAndSort(t *testing.T) {
	coo, _ := NewCOO(2, 4)
	for _, e := range [][2]int{{1, 3}, {0, 2}, {0, 0}, {0, 2}, {1, 3}, {1, 0}} {
		if err := coo.Add(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	p := coo.Pattern()
	if p.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4", p.NNZ())
	}
	r0 := p.Row(0)
	if len(r0) != 2 || r0[0] != 0 || r0[1] != 2 {
		t.Fatalf("row 0 = %v", r0)
	}
	r1 := p.Row(1)
	if len(r1) != 2 || r1[0] != 0 || r1[1] != 3 {
		t.Fatalf("row 1 = %v", r1)
	}
}

func TestCOOMatchesNewPatternProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(10), 1+rng.Intn(10)
		coo, _ := NewCOO(rows, cols)
		rowCols := make([][]int, rows)
		for k := 0; k < rng.Intn(60); k++ {
			r, c := rng.Intn(rows), rng.Intn(cols)
			if err := coo.Add(r, c); err != nil {
				return false
			}
			rowCols[r] = append(rowCols[r], c)
		}
		viaCOO := coo.Pattern()
		viaNew, err := NewPattern(rows, cols, rowCols)
		if err != nil {
			return false
		}
		return viaCOO.Equal(viaNew)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCOOEmptyPattern(t *testing.T) {
	coo, _ := NewCOO(3, 3)
	p := coo.Pattern()
	if p.NNZ() != 0 || p.Rows() != 3 || p.Cols() != 3 {
		t.Fatal("empty COO should give empty pattern of same shape")
	}
}

func TestCOOLenCountsDuplicates(t *testing.T) {
	coo, _ := NewCOO(1, 1)
	_ = coo.Add(0, 0)
	_ = coo.Add(0, 0)
	if coo.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (pre-dedup)", coo.Len())
	}
	if coo.Pattern().NNZ() != 1 {
		t.Fatal("Pattern must dedup")
	}
}
