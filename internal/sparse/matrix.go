package sparse

import (
	"fmt"
	"math"
	"sort"

	"github.com/radix-net/radixnet/internal/parallel"
)

// Matrix is a float64-valued CSR sparse matrix. Its structure is a Pattern;
// values are stored in a slice aligned with the pattern's column indices.
// Matrix is the numeric workhorse for sparse inference (Y ← ReLU(Y·W + b))
// and for weighted topology algebra.
type Matrix struct {
	pat  *Pattern
	vals []float64 // len == pat.NNZ(), aligned with pat.colIdx
}

// NewMatrix pairs a pattern with a value slice of matching length.
// The slices are shared, not copied.
func NewMatrix(pat *Pattern, vals []float64) (*Matrix, error) {
	if len(vals) != pat.NNZ() {
		return nil, fmt.Errorf("sparse: %d values for pattern with nnz=%d", len(vals), pat.NNZ())
	}
	return &Matrix{pat: pat, vals: vals}, nil
}

// MatrixFromPattern returns a matrix with every stored entry set to v.
func MatrixFromPattern(pat *Pattern, v float64) *Matrix {
	vals := make([]float64, pat.NNZ())
	for i := range vals {
		vals[i] = v
	}
	return &Matrix{pat: pat, vals: vals}
}

// Pattern returns the structure of the matrix (shared, immutable).
func (m *Matrix) Pattern() *Pattern { return m.pat }

// Values returns the value slice as a shared view aligned with the
// pattern's column indices.
func (m *Matrix) Values() []float64 { return m.vals }

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.pat.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.pat.cols }

// NNZ returns the number of stored entries.
func (m *Matrix) NNZ() int { return len(m.vals) }

// At returns element (r, c), zero when the entry is not stored.
func (m *Matrix) At(r, c int) float64 {
	row := m.pat.Row(r)
	i := sort.SearchInts(row, c)
	if i < len(row) && row[i] == c {
		return m.vals[m.pat.rowPtr[r]+i]
	}
	return 0
}

// RowEntries passes each stored entry (c, v) of row r to fn in column order.
func (m *Matrix) RowEntries(r int, fn func(c int, v float64)) {
	lo, hi := m.pat.rowPtr[r], m.pat.rowPtr[r+1]
	for i := lo; i < hi; i++ {
		fn(m.pat.colIdx[i], m.vals[i])
	}
}

// Scale multiplies every stored value by a.
func (m *Matrix) Scale(a float64) {
	for i := range m.vals {
		m.vals[i] *= a
	}
}

// MulVec returns m·x for a dense vector x of length Cols().
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.pat.cols {
		return nil, fmt.Errorf("%w: %dx%d · vec(%d)", ErrDims, m.pat.rows, m.pat.cols, len(x))
	}
	y := make([]float64, m.pat.rows)
	parallel.Blocks(m.pat.rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			var acc float64
			rlo, rhi := m.pat.rowPtr[r], m.pat.rowPtr[r+1]
			for i := rlo; i < rhi; i++ {
				acc += m.vals[i] * x[m.pat.colIdx[i]]
			}
			y[r] = acc
		}
	})
	return y, nil
}

// VecMul returns xᵀ·m for a dense vector x of length Rows(); this is the
// row-activation form Y·W used by the feedforward inference engine.
func (m *Matrix) VecMul(x []float64) ([]float64, error) {
	if len(x) != m.pat.rows {
		return nil, fmt.Errorf("%w: vec(%d) · %dx%d", ErrDims, len(x), m.pat.rows, m.pat.cols)
	}
	y := make([]float64, m.pat.cols)
	for r, xv := range x {
		if xv == 0 {
			continue
		}
		lo, hi := m.pat.rowPtr[r], m.pat.rowPtr[r+1]
		for i := lo; i < hi; i++ {
			y[m.pat.colIdx[i]] += xv * m.vals[i]
		}
	}
	return y, nil
}

// DenseMul returns X·m where X is dense (batch×Rows()): the batched
// feedforward step. Rows of X are processed in parallel.
func (m *Matrix) DenseMul(x *Dense) (*Dense, error) {
	if x.cols != m.pat.rows {
		return nil, fmt.Errorf("%w: %dx%d · %dx%d", ErrDims, x.rows, x.cols, m.pat.rows, m.pat.cols)
	}
	out := &Dense{rows: x.rows, cols: m.pat.cols, data: make([]float64, x.rows*m.pat.cols)}
	parallel.BlocksGrain(x.rows, 4, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			xRow := x.data[b*x.cols : (b+1)*x.cols]
			outRow := out.data[b*m.pat.cols : (b+1)*m.pat.cols]
			for r, xv := range xRow {
				if xv == 0 {
					continue
				}
				plo, phi := m.pat.rowPtr[r], m.pat.rowPtr[r+1]
				for i := plo; i < phi; i++ {
					outRow[m.pat.colIdx[i]] += xv * m.vals[i]
				}
			}
		}
	})
	return out, nil
}

// Mul returns the sparse-sparse product m·o (SpGEMM) with numeric
// accumulation, computed row-by-row with a dense scratch accumulator,
// parallelized over row blocks.
func (m *Matrix) Mul(o *Matrix) (*Matrix, error) {
	if m.pat.cols != o.pat.rows {
		return nil, fmt.Errorf("%w: %dx%d · %dx%d", ErrDims, m.pat.rows, m.pat.cols, o.pat.rows, o.pat.cols)
	}
	type rowResult struct {
		cols []int
		vals []float64
	}
	results := make([]rowResult, m.pat.rows)
	parallel.BlocksGrain(m.pat.rows, 8, func(lo, hi int) {
		acc := make([]float64, o.pat.cols)
		mark := make([]bool, o.pat.cols)
		touched := make([]int, 0, 64)
		for r := lo; r < hi; r++ {
			touched = touched[:0]
			mlo, mhi := m.pat.rowPtr[r], m.pat.rowPtr[r+1]
			for i := mlo; i < mhi; i++ {
				k := m.pat.colIdx[i]
				mv := m.vals[i]
				olo, ohi := o.pat.rowPtr[k], o.pat.rowPtr[k+1]
				for j := olo; j < ohi; j++ {
					c := o.pat.colIdx[j]
					if !mark[c] {
						mark[c] = true
						touched = append(touched, c)
					}
					acc[c] += mv * o.vals[j]
				}
			}
			cols := append([]int(nil), touched...)
			sort.Ints(cols)
			vals := make([]float64, len(cols))
			for i, c := range cols {
				vals[i] = acc[c]
				acc[c] = 0
				mark[c] = false
			}
			results[r] = rowResult{cols: cols, vals: vals}
		}
	})
	pat := &Pattern{rows: m.pat.rows, cols: o.pat.cols, rowPtr: make([]int, m.pat.rows+1)}
	nnz := 0
	for _, res := range results {
		nnz += len(res.cols)
	}
	pat.colIdx = make([]int, 0, nnz)
	vals := make([]float64, 0, nnz)
	for r, res := range results {
		pat.colIdx = append(pat.colIdx, res.cols...)
		vals = append(vals, res.vals...)
		pat.rowPtr[r+1] = len(pat.colIdx)
	}
	return &Matrix{pat: pat, vals: vals}, nil
}

// Transpose returns the transposed matrix with values carried along.
func (m *Matrix) Transpose() *Matrix {
	tp := m.pat.Transpose()
	vals := make([]float64, len(m.vals))
	next := make([]int, tp.rows)
	for r := 0; r < tp.rows; r++ {
		next[r] = tp.rowPtr[r]
	}
	for r := 0; r < m.pat.rows; r++ {
		lo, hi := m.pat.rowPtr[r], m.pat.rowPtr[r+1]
		for i := lo; i < hi; i++ {
			c := m.pat.colIdx[i]
			vals[next[c]] = m.vals[i]
			next[c]++
		}
	}
	return &Matrix{pat: tp, vals: vals}
}

// Add returns m + o with the union structure. Both operands keep their
// sparsity; entries present in both are summed.
func (m *Matrix) Add(o *Matrix) (*Matrix, error) {
	if m.pat.rows != o.pat.rows || m.pat.cols != o.pat.cols {
		return nil, fmt.Errorf("%w: add %dx%d + %dx%d", ErrDims, m.pat.rows, m.pat.cols, o.pat.rows, o.pat.cols)
	}
	pat := &Pattern{rows: m.pat.rows, cols: m.pat.cols, rowPtr: make([]int, m.pat.rows+1)}
	var vals []float64
	for r := 0; r < m.pat.rows; r++ {
		aLo, aHi := m.pat.rowPtr[r], m.pat.rowPtr[r+1]
		bLo, bHi := o.pat.rowPtr[r], o.pat.rowPtr[r+1]
		i, j := aLo, bLo
		for i < aHi || j < bHi {
			switch {
			case j >= bHi || (i < aHi && m.pat.colIdx[i] < o.pat.colIdx[j]):
				pat.colIdx = append(pat.colIdx, m.pat.colIdx[i])
				vals = append(vals, m.vals[i])
				i++
			case i >= aHi || o.pat.colIdx[j] < m.pat.colIdx[i]:
				pat.colIdx = append(pat.colIdx, o.pat.colIdx[j])
				vals = append(vals, o.vals[j])
				j++
			default:
				pat.colIdx = append(pat.colIdx, m.pat.colIdx[i])
				vals = append(vals, m.vals[i]+o.vals[j])
				i++
				j++
			}
		}
		pat.rowPtr[r+1] = len(pat.colIdx)
	}
	return &Matrix{pat: pat, vals: vals}, nil
}

// Hadamard returns the elementwise product m ⊙ o on the intersection
// structure (entries absent from either operand are zero and dropped).
func (m *Matrix) Hadamard(o *Matrix) (*Matrix, error) {
	if m.pat.rows != o.pat.rows || m.pat.cols != o.pat.cols {
		return nil, fmt.Errorf("%w: hadamard %dx%d ⊙ %dx%d", ErrDims, m.pat.rows, m.pat.cols, o.pat.rows, o.pat.cols)
	}
	pat := &Pattern{rows: m.pat.rows, cols: m.pat.cols, rowPtr: make([]int, m.pat.rows+1)}
	var vals []float64
	for r := 0; r < m.pat.rows; r++ {
		aLo, aHi := m.pat.rowPtr[r], m.pat.rowPtr[r+1]
		bLo, bHi := o.pat.rowPtr[r], o.pat.rowPtr[r+1]
		i, j := aLo, bLo
		for i < aHi && j < bHi {
			switch {
			case m.pat.colIdx[i] < o.pat.colIdx[j]:
				i++
			case o.pat.colIdx[j] < m.pat.colIdx[i]:
				j++
			default:
				pat.colIdx = append(pat.colIdx, m.pat.colIdx[i])
				vals = append(vals, m.vals[i]*o.vals[j])
				i++
				j++
			}
		}
		pat.rowPtr[r+1] = len(pat.colIdx)
	}
	return &Matrix{pat: pat, vals: vals}, nil
}

// FrobeniusNorm returns √(Σ v²) over stored entries.
func (m *Matrix) FrobeniusNorm() float64 {
	var sq float64
	for _, v := range m.vals {
		sq += v * v
	}
	return math.Sqrt(sq)
}

// ToDense materializes the matrix densely. Intended for small matrices in
// tests and reference comparisons.
func (m *Matrix) ToDense() *Dense {
	out := &Dense{rows: m.pat.rows, cols: m.pat.cols, data: make([]float64, m.pat.rows*m.pat.cols)}
	for r := 0; r < m.pat.rows; r++ {
		lo, hi := m.pat.rowPtr[r], m.pat.rowPtr[r+1]
		for i := lo; i < hi; i++ {
			out.data[r*m.pat.cols+m.pat.colIdx[i]] = m.vals[i]
		}
	}
	return out
}

// MatrixFromDense extracts the nonzero structure and values of a dense
// matrix into CSR form.
func MatrixFromDense(d *Dense) *Matrix {
	pat := &Pattern{rows: d.rows, cols: d.cols, rowPtr: make([]int, d.rows+1)}
	var vals []float64
	for r := 0; r < d.rows; r++ {
		for c := 0; c < d.cols; c++ {
			if v := d.data[r*d.cols+c]; v != 0 {
				pat.colIdx = append(pat.colIdx, c)
				vals = append(vals, v)
			}
		}
		pat.rowPtr[r+1] = len(pat.colIdx)
	}
	return &Matrix{pat: pat, vals: vals}
}
