package sparse

import (
	"fmt"
	"math/big"

	"github.com/radix-net/radixnet/internal/parallel"
)

// BigDense is a dense matrix of arbitrary-precision integers. It exists for
// one purpose: exact path counting. The number of paths between an input and
// an output of a RadiX-Net is m = (N′)^{M−1}·∏Di (Theorem 1), which
// overflows int64 for even modest configurations, so verifying symmetry
// demands exact big-integer arithmetic.
//
// Entries are stored as *big.Int and are never nil after construction.
type BigDense struct {
	rows, cols int
	data       []*big.Int // row-major
}

// NewBigDense returns a zeroed rows×cols big-integer matrix.
func NewBigDense(rows, cols int) (*BigDense, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("%w: %dx%d", ErrDims, rows, cols)
	}
	b := &BigDense{rows: rows, cols: cols, data: make([]*big.Int, rows*cols)}
	for i := range b.data {
		b.data[i] = new(big.Int)
	}
	return b, nil
}

// BigFromPattern returns the 0/1 big-integer matrix with ones exactly at the
// pattern's stored entries.
func BigFromPattern(p *Pattern) *BigDense {
	b, _ := NewBigDense(p.rows, p.cols)
	for r := 0; r < p.rows; r++ {
		for _, c := range p.Row(r) {
			b.data[r*p.cols+c].SetInt64(1)
		}
	}
	return b
}

// Rows returns the number of rows.
func (b *BigDense) Rows() int { return b.rows }

// Cols returns the number of columns.
func (b *BigDense) Cols() int { return b.cols }

// At returns element (r, c) as a shared *big.Int; callers must not mutate it.
func (b *BigDense) At(r, c int) *big.Int { return b.data[r*b.cols+c] }

// MulPattern returns b·p where p is a binary pattern: the exact propagation
// of path counts across one topology layer. Row blocks are processed in
// parallel; each output row touches only its own accumulators.
func (b *BigDense) MulPattern(p *Pattern) (*BigDense, error) {
	if b.cols != p.rows {
		return nil, fmt.Errorf("%w: %dx%d · %dx%d", ErrDims, b.rows, b.cols, p.rows, p.cols)
	}
	out, _ := NewBigDense(b.rows, p.cols)
	parallel.BlocksGrain(b.rows, 1, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			inRow := b.data[r*b.cols : (r+1)*b.cols]
			outRow := out.data[r*p.cols : (r+1)*p.cols]
			for k, v := range inRow {
				if v.Sign() == 0 {
					continue
				}
				for _, c := range p.Row(k) {
					outRow[c].Add(outRow[c], v)
				}
			}
		}
	})
	return out, nil
}

// AllEqual reports whether every element equals the same value, returning
// that common value when true. This is the symmetry criterion of §II: a
// topology is symmetric iff the product of its adjacency submatrices is
// m·1 for a positive integer m.
func (b *BigDense) AllEqual() (*big.Int, bool) {
	first := b.data[0]
	for _, v := range b.data[1:] {
		if v.Cmp(first) != 0 {
			return nil, false
		}
	}
	return new(big.Int).Set(first), true
}

// MinMax returns the smallest and largest element values.
func (b *BigDense) MinMax() (min, max *big.Int) {
	min = new(big.Int).Set(b.data[0])
	max = new(big.Int).Set(b.data[0])
	for _, v := range b.data[1:] {
		if v.Cmp(min) < 0 {
			min.Set(v)
		}
		if v.Cmp(max) > 0 {
			max.Set(v)
		}
	}
	return min, max
}

// BigVec is a dense vector of arbitrary-precision integers, used by the
// streaming (per-source) path-counting strategy that avoids the O(rows·cols)
// memory of a full BigDense product.
type BigVec []*big.Int

// NewBigVec returns a zeroed length-n big-integer vector.
func NewBigVec(n int) BigVec {
	v := make(BigVec, n)
	for i := range v {
		v[i] = new(big.Int)
	}
	return v
}

// E returns the standard basis vector with a one at index i.
func E(n, i int) BigVec {
	v := NewBigVec(n)
	v[i].SetInt64(1)
	return v
}

// MulPattern returns vᵀ·p: one step of path-count propagation from a single
// source. len(v) must equal p.Rows().
func (v BigVec) MulPattern(p *Pattern) (BigVec, error) {
	if len(v) != p.rows {
		return nil, fmt.Errorf("%w: vec(%d) · %dx%d", ErrDims, len(v), p.rows, p.cols)
	}
	out := NewBigVec(p.cols)
	for r, x := range v {
		if x.Sign() == 0 {
			continue
		}
		for _, c := range p.Row(r) {
			out[c].Add(out[c], x)
		}
	}
	return out, nil
}

// AllEqual reports whether every element of the vector equals the same
// value, returning that value when true.
func (v BigVec) AllEqual() (*big.Int, bool) {
	first := v[0]
	for _, x := range v[1:] {
		if x.Cmp(first) != 0 {
			return nil, false
		}
	}
	return new(big.Int).Set(first), true
}
