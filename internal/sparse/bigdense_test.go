package sparse

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBigFromPattern(t *testing.T) {
	p, _ := NewPattern(2, 3, [][]int{{0, 2}, {1}})
	b := BigFromPattern(p)
	if b.At(0, 0).Int64() != 1 || b.At(0, 1).Int64() != 0 || b.At(1, 1).Int64() != 1 {
		t.Fatal("BigFromPattern entries wrong")
	}
}

func TestBigMulPatternAgainstIntReferenceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, inner, cols := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := randPattern(rng, rows, inner, 0.5)
		b := randPattern(rng, inner, cols, 0.5)
		got, err := BigFromPattern(a).MulPattern(b)
		if err != nil {
			return false
		}
		// int reference: path counts of length-2 compositions.
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				want := 0
				for k := 0; k < inner; k++ {
					if a.Has(r, k) && b.Has(k, c) {
						want++
					}
				}
				if got.At(r, c).Int64() != int64(want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBigMulPatternShapeError(t *testing.T) {
	b, _ := NewBigDense(2, 3)
	if _, err := b.MulPattern(Ones(4, 2)); err == nil {
		t.Fatal("nonconforming MulPattern accepted")
	}
}

func TestBigAllEqual(t *testing.T) {
	b, _ := NewBigDense(2, 2)
	if v, ok := b.AllEqual(); !ok || v.Sign() != 0 {
		t.Fatal("zero matrix is all-equal to 0")
	}
	b.At(1, 1).SetInt64(5)
	if _, ok := b.AllEqual(); ok {
		t.Fatal("mixed matrix reported all-equal")
	}
}

func TestBigMinMax(t *testing.T) {
	b, _ := NewBigDense(2, 2)
	b.At(0, 0).SetInt64(-3)
	b.At(1, 1).SetInt64(7)
	min, max := b.MinMax()
	if min.Int64() != -3 || max.Int64() != 7 {
		t.Fatalf("MinMax = %v, %v", min, max)
	}
}

func TestBigVecPropagation(t *testing.T) {
	// Propagating e_u through a chain of patterns must equal the u-th row of
	// the BigDense product of the same chain.
	rng := rand.New(rand.NewSource(21))
	n := 6
	chain := []*Pattern{
		randPattern(rng, n, n, 0.5),
		randPattern(rng, n, n, 0.5),
		randPattern(rng, n, n, 0.5),
	}
	full := BigFromPattern(chain[0])
	for _, p := range chain[1:] {
		next, err := full.MulPattern(p)
		if err != nil {
			t.Fatal(err)
		}
		full = next
	}
	for u := 0; u < n; u++ {
		vec := E(n, u)
		for _, p := range chain {
			next, err := vec.MulPattern(p)
			if err != nil {
				t.Fatal(err)
			}
			vec = next
		}
		for c := 0; c < n; c++ {
			if vec[c].Cmp(full.At(u, c)) != 0 {
				t.Fatalf("streaming path count (%d,%d) = %v, dense = %v", u, c, vec[c], full.At(u, c))
			}
		}
	}
}

func TestBigVecAllEqual(t *testing.T) {
	v := NewBigVec(3)
	if val, ok := v.AllEqual(); !ok || val.Sign() != 0 {
		t.Fatal("zero vector is all-equal")
	}
	v[2].SetInt64(1)
	if _, ok := v.AllEqual(); ok {
		t.Fatal("mixed vector reported all-equal")
	}
}

func TestBigVecMulPatternShapeError(t *testing.T) {
	v := NewBigVec(3)
	if _, err := v.MulPattern(Ones(2, 2)); err == nil {
		t.Fatal("nonconforming vector product accepted")
	}
}

func TestEBasisVector(t *testing.T) {
	v := E(4, 2)
	for i := range v {
		want := int64(0)
		if i == 2 {
			want = 1
		}
		if v[i].Int64() != want {
			t.Fatalf("E(4,2)[%d] = %v", i, v[i])
		}
	}
}

func TestBigDenseLargeCountsExact(t *testing.T) {
	// Chain enough ones-matrices that the count exceeds int64: 100 layers of
	// 4x4 ones gives 4^99 paths scaled by... verify against big.Exp.
	n := 4
	layers := 40
	acc := BigFromPattern(Ones(n, n))
	for i := 1; i < layers; i++ {
		next, err := acc.MulPattern(Ones(n, n))
		if err != nil {
			t.Fatal(err)
		}
		acc = next
	}
	want := new(big.Int).Exp(big.NewInt(int64(n)), big.NewInt(int64(layers-1)), nil)
	v, ok := acc.AllEqual()
	if !ok {
		t.Fatal("ones-chain product must be constant")
	}
	if v.Cmp(want) != 0 {
		t.Fatalf("count = %v, want %v", v, want)
	}
	if v.IsInt64() {
		t.Fatal("test should exercise beyond-int64 counts")
	}
}
