// Package sparse implements the sparse-matrix substrate on which all
// RadiX-Net topology algebra is built: binary sparsity patterns in CSR form,
// float64-valued CSR matrices, dense matrices, exact big-integer matrices
// for path counting, Kronecker products, and serial/parallel multiplication
// kernels.
//
// The central type is Pattern, a structure-only CSR matrix. The paper's
// topologies are adjacency submatrices whose "only nonzero entries are ones"
// (§II), so representing structure without values keeps every graph
// operation exact and allocation-lean; numeric weights are layered on top by
// Matrix and by the training substrate.
package sparse

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/radix-net/radixnet/internal/parallel"
)

// ErrDims is returned when matrix dimensions are non-positive or do not
// conform for the requested operation.
var ErrDims = errors.New("sparse: dimension mismatch")

// Pattern is an immutable binary sparsity pattern in compressed sparse row
// (CSR) form. Column indices within each row are strictly increasing.
// A Pattern with zero stored entries is valid.
type Pattern struct {
	rows, cols int
	rowPtr     []int // len rows+1; rowPtr[r]..rowPtr[r+1] indexes colIdx
	colIdx     []int // len NNZ; sorted and unique within each row
}

// NewPattern builds a Pattern from per-row column lists. Each row slice may
// be unsorted and may contain duplicates; duplicates collapse to a single
// stored entry. It errors on out-of-range column indices or non-positive
// dimensions.
func NewPattern(rows, cols int, rowCols [][]int) (*Pattern, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("%w: %dx%d", ErrDims, rows, cols)
	}
	if len(rowCols) != rows {
		return nil, fmt.Errorf("sparse: got %d row lists for %d rows", len(rowCols), rows)
	}
	p := &Pattern{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
	nnz := 0
	for _, cs := range rowCols {
		nnz += len(cs)
	}
	p.colIdx = make([]int, 0, nnz)
	for r, cs := range rowCols {
		sorted := append([]int(nil), cs...)
		sort.Ints(sorted)
		prev := -1
		for _, c := range sorted {
			if c < 0 || c >= cols {
				return nil, fmt.Errorf("sparse: column %d out of range [0,%d) in row %d", c, cols, r)
			}
			if c == prev {
				continue
			}
			p.colIdx = append(p.colIdx, c)
			prev = c
		}
		p.rowPtr[r+1] = len(p.colIdx)
	}
	return p, nil
}

// FromCSR adopts pre-built CSR arrays after validating them. The slices are
// used directly (not copied); callers must not mutate them afterwards.
func FromCSR(rows, cols int, rowPtr, colIdx []int) (*Pattern, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("%w: %dx%d", ErrDims, rows, cols)
	}
	if len(rowPtr) != rows+1 || rowPtr[0] != 0 || rowPtr[rows] != len(colIdx) {
		return nil, errors.New("sparse: malformed rowPtr")
	}
	for r := 0; r < rows; r++ {
		if rowPtr[r] > rowPtr[r+1] {
			return nil, fmt.Errorf("sparse: rowPtr decreases at row %d", r)
		}
		prev := -1
		for _, c := range colIdx[rowPtr[r]:rowPtr[r+1]] {
			if c < 0 || c >= cols {
				return nil, fmt.Errorf("sparse: column %d out of range in row %d", c, r)
			}
			if c <= prev {
				return nil, fmt.Errorf("sparse: columns not strictly increasing in row %d", r)
			}
			prev = c
		}
	}
	return &Pattern{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx}, nil
}

// Identity returns the n×n identity pattern.
func Identity(n int) *Pattern {
	p := &Pattern{rows: n, cols: n, rowPtr: make([]int, n+1), colIdx: make([]int, n)}
	for i := 0; i < n; i++ {
		p.rowPtr[i+1] = i + 1
		p.colIdx[i] = i
	}
	return p
}

// Ones returns the fully dense rows×cols pattern — the adjacency submatrix
// W* of one layer of the paper's dense "shape" DNN H (eq. 3).
func Ones(rows, cols int) *Pattern {
	p := &Pattern{rows: rows, cols: cols, rowPtr: make([]int, rows+1), colIdx: make([]int, rows*cols)}
	for r := 0; r < rows; r++ {
		p.rowPtr[r+1] = (r + 1) * cols
		for c := 0; c < cols; c++ {
			p.colIdx[r*cols+c] = c
		}
	}
	return p
}

// CyclicShift returns the n×n permutation pattern P^s in the orientation
// used by this library: entry (r, c) is set iff c ≡ r+s (mod n). With s=1
// this is the transpose of the paper's eq. (2) matrix; see DESIGN.md §1
// (erratum E-a) for why the stated edge rule j → j+n·ν requires this
// orientation. Negative shifts are taken modulo n, so CyclicShift(n, -1)
// reproduces the paper's eq. (2) literally.
func CyclicShift(n, s int) *Pattern {
	s = ((s % n) + n) % n
	p := &Pattern{rows: n, cols: n, rowPtr: make([]int, n+1), colIdx: make([]int, n)}
	for r := 0; r < n; r++ {
		p.rowPtr[r+1] = r + 1
		p.colIdx[r] = (r + s) % n
	}
	return p
}

// SumOfShifts returns Σ_s P^s over the given shift offsets on n nodes:
// entry (r, c) is set iff c ≡ r+s (mod n) for some s in shifts. This is the
// direct form of the paper's eq. (1), Wi = Σ_n P^{n·νi}. Duplicate offsets
// (mod n) collapse.
func SumOfShifts(n int, shifts []int) *Pattern {
	norm := make([]int, 0, len(shifts))
	seen := make(map[int]bool, len(shifts))
	for _, s := range shifts {
		v := ((s % n) + n) % n
		if !seen[v] {
			seen[v] = true
			norm = append(norm, v)
		}
	}
	sort.Ints(norm)
	k := len(norm)
	p := &Pattern{rows: n, cols: n, rowPtr: make([]int, n+1), colIdx: make([]int, n*k)}
	cols := make([]int, k)
	for r := 0; r < n; r++ {
		for i, s := range norm {
			cols[i] = (r + s) % n
		}
		sort.Ints(cols)
		copy(p.colIdx[r*k:], cols)
		p.rowPtr[r+1] = (r + 1) * k
	}
	return p
}

// Rows returns the number of rows.
func (p *Pattern) Rows() int { return p.rows }

// Cols returns the number of columns.
func (p *Pattern) Cols() int { return p.cols }

// NNZ returns the number of stored entries.
func (p *Pattern) NNZ() int { return len(p.colIdx) }

// Row returns the sorted column indices of row r as a shared view.
// Callers must not mutate the returned slice.
func (p *Pattern) Row(r int) []int { return p.colIdx[p.rowPtr[r]:p.rowPtr[r+1]] }

// RowOffset returns the index within the stored-entry order at which row
// r's entries begin. Value slices aligned with a pattern (e.g. sparse layer
// weights) use it to locate the storage of entry (r, c).
func (p *Pattern) RowOffset(r int) int { return p.rowPtr[r] }

// Has reports whether entry (r, c) is set, by binary search within the row.
func (p *Pattern) Has(r, c int) bool {
	row := p.Row(r)
	i := sort.SearchInts(row, c)
	return i < len(row) && row[i] == c
}

// RowDegree returns the number of entries in row r (the out-degree of node r
// when the pattern is an adjacency submatrix).
func (p *Pattern) RowDegree(r int) int { return p.rowPtr[r+1] - p.rowPtr[r] }

// ColDegrees returns the per-column entry counts (in-degrees).
func (p *Pattern) ColDegrees() []int {
	deg := make([]int, p.cols)
	for _, c := range p.colIdx {
		deg[c]++
	}
	return deg
}

// HasZeroRow reports whether some row stores no entries. An FNNT adjacency
// submatrix with a zero row violates the out-degree condition of §II.
func (p *Pattern) HasZeroRow() bool {
	for r := 0; r < p.rows; r++ {
		if p.rowPtr[r] == p.rowPtr[r+1] {
			return true
		}
	}
	return false
}

// HasZeroCol reports whether some column stores no entries. The paper's
// converse FNNT construction requires that "no column of Wi is the zero
// vector" (§II).
func (p *Pattern) HasZeroCol() bool {
	for _, d := range p.ColDegrees() {
		if d == 0 {
			return true
		}
	}
	return false
}

// Equal reports whether two patterns have identical shape and structure.
func (p *Pattern) Equal(q *Pattern) bool {
	if p.rows != q.rows || p.cols != q.cols || len(p.colIdx) != len(q.colIdx) {
		return false
	}
	for i, v := range p.rowPtr {
		if q.rowPtr[i] != v {
			return false
		}
	}
	for i, v := range p.colIdx {
		if q.colIdx[i] != v {
			return false
		}
	}
	return true
}

// Transpose returns the transposed pattern.
func (p *Pattern) Transpose() *Pattern {
	t := &Pattern{rows: p.cols, cols: p.rows, rowPtr: make([]int, p.cols+1), colIdx: make([]int, len(p.colIdx))}
	for _, c := range p.colIdx {
		t.rowPtr[c+1]++
	}
	for i := 0; i < p.cols; i++ {
		t.rowPtr[i+1] += t.rowPtr[i]
	}
	next := append([]int(nil), t.rowPtr[:p.cols]...)
	for r := 0; r < p.rows; r++ {
		for _, c := range p.Row(r) {
			t.colIdx[next[c]] = r
			next[c]++
		}
	}
	return t
}

// Union returns the entrywise boolean OR of two equally-shaped patterns.
func (p *Pattern) Union(q *Pattern) (*Pattern, error) {
	if p.rows != q.rows || p.cols != q.cols {
		return nil, fmt.Errorf("%w: union of %dx%d and %dx%d", ErrDims, p.rows, p.cols, q.rows, q.cols)
	}
	u := &Pattern{rows: p.rows, cols: p.cols, rowPtr: make([]int, p.rows+1)}
	u.colIdx = make([]int, 0, len(p.colIdx)+len(q.colIdx))
	for r := 0; r < p.rows; r++ {
		a, b := p.Row(r), q.Row(r)
		i, j := 0, 0
		for i < len(a) || j < len(b) {
			switch {
			case j >= len(b) || (i < len(a) && a[i] < b[j]):
				u.colIdx = append(u.colIdx, a[i])
				i++
			case i >= len(a) || b[j] < a[i]:
				u.colIdx = append(u.colIdx, b[j])
				j++
			default:
				u.colIdx = append(u.colIdx, a[i])
				i++
				j++
			}
		}
		u.rowPtr[r+1] = len(u.colIdx)
	}
	return u, nil
}

// Intersect returns the entrywise boolean AND of two equally-shaped
// patterns — the shared edges of two topologies, used to quantify how much
// of a random baseline's wiring a RadiX-Net happens to reproduce.
func (p *Pattern) Intersect(q *Pattern) (*Pattern, error) {
	if p.rows != q.rows || p.cols != q.cols {
		return nil, fmt.Errorf("%w: intersect of %dx%d and %dx%d", ErrDims, p.rows, p.cols, q.rows, q.cols)
	}
	out := &Pattern{rows: p.rows, cols: p.cols, rowPtr: make([]int, p.rows+1)}
	for r := 0; r < p.rows; r++ {
		a, b := p.Row(r), q.Row(r)
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i] < b[j]:
				i++
			case b[j] < a[i]:
				j++
			default:
				out.colIdx = append(out.colIdx, a[i])
				i++
				j++
			}
		}
		out.rowPtr[r+1] = len(out.colIdx)
	}
	return out, nil
}

// Jaccard returns the Jaccard similarity |p∩q| / |p∪q| of two patterns'
// edge sets, a scalar overlap measure in [0, 1].
func (p *Pattern) Jaccard(q *Pattern) (float64, error) {
	inter, err := p.Intersect(q)
	if err != nil {
		return 0, err
	}
	union := p.NNZ() + q.NNZ() - inter.NNZ()
	if union == 0 {
		return 1, nil // two empty patterns are identical
	}
	return float64(inter.NNZ()) / float64(union), nil
}

// Mul returns the boolean matrix product p·q: entry (r, c) is set iff there
// is some k with p(r,k) and q(k,c). Rows of the result are computed in
// parallel when profitable. This is graph composition: paths of length two
// through the intermediate index.
func (p *Pattern) Mul(q *Pattern) (*Pattern, error) {
	if p.cols != q.rows {
		return nil, fmt.Errorf("%w: %dx%d · %dx%d", ErrDims, p.rows, p.cols, q.rows, q.cols)
	}
	rowsOut := make([][]int, p.rows)
	parallel.BlocksGrain(p.rows, 16, func(lo, hi int) {
		mark := make([]bool, q.cols)
		touched := make([]int, 0, 64)
		for r := lo; r < hi; r++ {
			touched = touched[:0]
			for _, k := range p.Row(r) {
				for _, c := range q.Row(k) {
					if !mark[c] {
						mark[c] = true
						touched = append(touched, c)
					}
				}
			}
			row := append([]int(nil), touched...)
			sort.Ints(row)
			rowsOut[r] = row
			for _, c := range touched {
				mark[c] = false
			}
		}
	})
	out := &Pattern{rows: p.rows, cols: q.cols, rowPtr: make([]int, p.rows+1)}
	nnz := 0
	for _, row := range rowsOut {
		nnz += len(row)
	}
	out.colIdx = make([]int, 0, nnz)
	for r, row := range rowsOut {
		out.colIdx = append(out.colIdx, row...)
		out.rowPtr[r+1] = len(out.colIdx)
	}
	return out, nil
}

// Kron returns the Kronecker product p ⊗ q: a (p.rows·q.rows)×(p.cols·q.cols)
// pattern where block (i, j) equals q whenever p(i, j) is set. This is the
// final step of RadiX-Net construction, eq. (3) of the paper. Row blocks are
// filled in parallel when profitable.
func (p *Pattern) Kron(q *Pattern) *Pattern {
	rows := p.rows * q.rows
	cols := p.cols * q.cols
	out := &Pattern{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
	// Row r = i*q.rows + s has RowDegree(p, i) * RowDegree(q, s) entries:
	// for each c in p.Row(i) and t in q.Row(s), column c*q.cols + t.
	for i := 0; i < p.rows; i++ {
		dp := p.RowDegree(i)
		for s := 0; s < q.rows; s++ {
			r := i*q.rows + s
			out.rowPtr[r+1] = out.rowPtr[r] + dp*q.RowDegree(s)
		}
	}
	out.colIdx = make([]int, out.rowPtr[rows])
	parallel.BlocksGrain(p.rows, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			pRow := p.Row(i)
			for s := 0; s < q.rows; s++ {
				r := i*q.rows + s
				w := out.rowPtr[r]
				for _, c := range pRow {
					base := c * q.cols
					for _, t := range q.Row(s) {
						out.colIdx[w] = base + t
						w++
					}
				}
			}
		}
	})
	return out
}

// PermuteRows returns the pattern whose row r is p's row perm[r].
// perm must be a permutation of [0, rows).
func (p *Pattern) PermuteRows(perm []int) (*Pattern, error) {
	if err := checkPerm(perm, p.rows); err != nil {
		return nil, err
	}
	rowCols := make([][]int, p.rows)
	for r := 0; r < p.rows; r++ {
		rowCols[r] = append([]int(nil), p.Row(perm[r])...)
	}
	return NewPattern(p.rows, p.cols, rowCols)
}

// PermuteCols returns the pattern with column c relabeled to perm[c].
func (p *Pattern) PermuteCols(perm []int) (*Pattern, error) {
	if err := checkPerm(perm, p.cols); err != nil {
		return nil, err
	}
	rowCols := make([][]int, p.rows)
	for r := 0; r < p.rows; r++ {
		row := make([]int, 0, p.RowDegree(r))
		for _, c := range p.Row(r) {
			row = append(row, perm[c])
		}
		rowCols[r] = row
	}
	return NewPattern(p.rows, p.cols, rowCols)
}

func checkPerm(perm []int, n int) error {
	if len(perm) != n {
		return fmt.Errorf("sparse: permutation length %d, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, v := range perm {
		if v < 0 || v >= n || seen[v] {
			return fmt.Errorf("sparse: invalid permutation value %d", v)
		}
		seen[v] = true
	}
	return nil
}

// DenseBool materializes the pattern as a row-major boolean matrix.
// Intended for small matrices in tests and examples.
func (p *Pattern) DenseBool() [][]bool {
	out := make([][]bool, p.rows)
	for r := range out {
		out[r] = make([]bool, p.cols)
		for _, c := range p.Row(r) {
			out[r][c] = true
		}
	}
	return out
}

// String renders small patterns as a 0/1 grid; larger ones as a summary.
func (p *Pattern) String() string {
	if p.rows*p.cols > 4096 {
		return fmt.Sprintf("Pattern{%dx%d, nnz=%d}", p.rows, p.cols, p.NNZ())
	}
	var b strings.Builder
	for r := 0; r < p.rows; r++ {
		row := p.Row(r)
		j := 0
		for c := 0; c < p.cols; c++ {
			if j < len(row) && row[j] == c {
				b.WriteByte('1')
				j++
			} else {
				b.WriteByte('.')
			}
			if c+1 < p.cols {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Density returns NNZ / (rows·cols).
func (p *Pattern) Density() float64 {
	return float64(p.NNZ()) / (float64(p.rows) * float64(p.cols))
}
