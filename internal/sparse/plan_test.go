package sparse

import (
	"errors"
	"math/rand"
	"testing"
)

// radixLayer builds one RadiX-Net layer exactly as the core generator does
// (eq. 1–3): Ones(dPrev,dNext) ⊗ Σ_j P^{j·pv} on np nodes.
func radixLayer(np, pv, radix, dPrev, dNext int) *Pattern {
	shifts := make([]int, radix)
	for j := range shifts {
		shifts[j] = j * pv
	}
	w := SumOfShifts(np, shifts)
	if dPrev == 1 && dNext == 1 {
		return w
	}
	return Ones(dPrev, dNext).Kron(w)
}

// randomSystem draws a mixed-radix system (radices in 2..5, product ≤ 600)
// and an optional multiplier so the layer width np is a proper multiple of
// the system product — the "last system divides N′" case of the paper.
func randomSystem(rng *rand.Rand) (radices []int, np int) {
	prod := 1
	for {
		r := 2 + rng.Intn(4)
		if prod*r > 600 {
			break
		}
		prod *= r
		radices = append(radices, r)
		if len(radices) >= 4 && rng.Intn(2) == 0 {
			break
		}
	}
	if len(radices) == 0 {
		radices = []int{2}
		prod = 2
	}
	np = prod
	if rng.Intn(3) == 0 {
		np *= 1 + rng.Intn(3) // last-system case: product | np, product < np
	}
	return radices, np
}

// checkPlanEnumeratesPattern asserts the plan's arithmetic edge enumeration
// is exactly the pattern's edge set, in both CSR and CSC orders.
func checkPlanEnumeratesPattern(t *testing.T, plan *StridePlan, pat *Pattern) {
	t.Helper()
	if plan.NNZ() != pat.NNZ() {
		t.Fatalf("%v: plan enumerates %d edges, pattern has %d", plan, plan.NNZ(), pat.NNZ())
	}
	for r := 0; r < pat.Rows(); r++ {
		want := pat.Row(r)
		var got []int
		plan.RowOutCols(r, func(c int) { got = append(got, c) })
		if len(got) != len(want) {
			t.Fatalf("%v: row %d: %d cols, want %d", plan, r, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: row %d col %d: got %d want %d (ascending order violated or wrong edge)",
					plan, r, i, got[i], want[i])
			}
		}
	}
	tr := pat.Transpose()
	for c := 0; c < pat.Cols(); c++ {
		want := tr.Row(c)
		var got []int
		plan.ColInRows(c, func(r int) { got = append(got, r) })
		if len(got) != len(want) {
			t.Fatalf("%v: col %d: %d rows, want %d", plan, c, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: col %d row %d: got %d want %d", plan, c, i, got[i], want[i])
			}
		}
	}
}

// TestStridePlanEnumeratesExactEdgeSet is the satellite property test: for
// random mixed-radix systems (including last-system widths and Kronecker
// lifts) the compiled stride plan enumerates exactly the pattern's edge set
// in ascending CSR/CSC order.
func TestStridePlanEnumeratesExactEdgeSet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		radices, np := randomSystem(rng)
		pv := 1
		for digit, r := range radices {
			dPrev := 1 + rng.Intn(3)
			dNext := 1 + rng.Intn(3)
			pat := radixLayer(np, pv, r, dPrev, dNext)
			plan, err := CompileStridePlan(pat, np, pv, r, dPrev, dNext)
			if err != nil {
				t.Fatalf("trial %d digit %d (np=%d pv=%d r=%d %dx%d): %v",
					trial, digit, np, pv, r, dPrev, dNext, err)
			}
			checkPlanEnumeratesPattern(t, plan, pat)
			pv *= r
		}
	}
}

// TestStridePlanRejectsNonRadixPatterns: a pattern differing from the
// claimed structure by a single edge — or structurally wrong parameters —
// must fail compilation with ErrNotRadixStructured, so kernel auto-selection
// can never run arithmetic addressing over a mismatched matrix.
func TestStridePlanRejectsNonRadixPatterns(t *testing.T) {
	np, pv, radix := 12, 2, 3
	good := radixLayer(np, pv, radix, 1, 1)
	if _, err := CompileStridePlan(good, np, pv, radix, 1, 1); err != nil {
		t.Fatalf("good pattern rejected: %v", err)
	}

	// Move one edge in one row: same NNZ, wrong structure.
	rows := make([][]int, np)
	for r := 0; r < np; r++ {
		rows[r] = append([]int(nil), good.Row(r)...)
	}
	orig := rows[5][1]
	rows[5][1] = (orig + 1) % np
	if rows[5][1] == rows[5][0] || rows[5][1] == rows[5][2] {
		rows[5][1] = (orig + 2) % np
	}
	bad, err := NewPattern(np, np, rows)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileStridePlan(bad, np, pv, radix, 1, 1); !errors.Is(err, ErrNotRadixStructured) {
		t.Fatalf("corrupted pattern: got %v, want ErrNotRadixStructured", err)
	}

	// Wrong parameters against a good pattern.
	for _, bad := range []struct {
		name                    string
		np, pv, radix, dpr, dnx int
	}{
		{"wrong-radix", np, pv, 2, 1, 1},
		{"wrong-pv", np, 3, radix, 1, 1},
		{"pv-not-divisor", np, 5, radix, 1, 1},
		{"wrong-shape", np, pv, radix, 2, 1},
		{"radix-exceeds-modulus", np, 6, radix, 1, 1},
	} {
		if _, err := CompileStridePlan(good, bad.np, bad.pv, bad.radix, bad.dpr, bad.dnx); !errors.Is(err, ErrNotRadixStructured) {
			t.Fatalf("%s: got %v, want ErrNotRadixStructured", bad.name, err)
		}
	}

	// A dense non-circulant pattern of plausible size.
	if _, err := CompileStridePlan(Ones(np, np), np, 1, np, 1, 1); err != nil {
		t.Fatalf("Ones IS the radix-np circulant (shifts 0..np-1): %v", err)
	}
	if _, err := CompileStridePlan(Identity(np), np, 1, 2, 1, 1); !errors.Is(err, ErrNotRadixStructured) {
		t.Fatal("identity accepted as radix-2 circulant")
	}
}

// FuzzStridePlan drives the same exact-edge-set property from fuzzed radix
// parameters, including the corruption check.
func FuzzStridePlan(f *testing.F) {
	f.Add(uint8(2), uint8(2), uint8(3), uint8(1), uint8(1), uint8(1))
	f.Add(uint8(3), uint8(4), uint8(2), uint8(2), uint8(2), uint8(2))
	f.Add(uint8(5), uint8(5), uint8(5), uint8(1), uint8(3), uint8(1))
	f.Fuzz(func(t *testing.T, r1, r2, digit, dPrev, dNext, mult uint8) {
		radices := []int{2 + int(r1)%5, 2 + int(r2)%5}
		np := radices[0] * radices[1] * (1 + int(mult)%3)
		if np > 800 {
			t.Skip()
		}
		i := int(digit) % 2
		pv := 1
		for j := 0; j < i; j++ {
			pv *= radices[j]
		}
		dp, dn := 1+int(dPrev)%3, 1+int(dNext)%3
		pat := radixLayer(np, pv, radices[i], dp, dn)
		plan, err := CompileStridePlan(pat, np, pv, radices[i], dp, dn)
		if err != nil {
			t.Fatalf("np=%d pv=%d r=%d %dx%d: %v", np, pv, radices[i], dp, dn, err)
		}
		checkPlanEnumeratesPattern(t, plan, pat)
	})
}
