package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDenseValidation(t *testing.T) {
	if _, err := NewDense(0, 3); err == nil {
		t.Fatal("zero rows accepted")
	}
	if _, err := NewDense(3, -1); err == nil {
		t.Fatal("negative cols accepted")
	}
}

func TestDenseFromSlice(t *testing.T) {
	d, err := DenseFromSlice(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if d.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %g", d.At(1, 0))
	}
	if _, err := DenseFromSlice(2, 2, []float64{1}); err == nil {
		t.Fatal("short slice accepted")
	}
}

func TestDenseMatMulAgainstNaiveProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a, _ := NewDense(m, k)
		b, _ := NewDense(k, n)
		for i := range a.Data() {
			a.Data()[i] = rng.NormFloat64()
		}
		for i := range b.Data() {
			b.Data()[i] = rng.NormFloat64()
		}
		got, err := a.MatMul(b)
		if err != nil {
			return false
		}
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var want float64
				for l := 0; l < k; l++ {
					want += a.At(i, l) * b.At(l, j)
				}
				if math.Abs(got.At(i, j)-want) > 1e-10 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseMatMulShapeError(t *testing.T) {
	a, _ := NewDense(2, 3)
	b, _ := NewDense(4, 2)
	if _, err := a.MatMul(b); err == nil {
		t.Fatal("nonconforming MatMul accepted")
	}
}

func TestDenseTranspose(t *testing.T) {
	d, _ := DenseFromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := d.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatal("transpose shape wrong")
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < 3; c++ {
			if d.At(r, c) != tr.At(c, r) {
				t.Fatalf("transpose wrong at (%d,%d)", r, c)
			}
		}
	}
}

func TestDenseCloneIsolation(t *testing.T) {
	d, _ := NewDense(2, 2)
	d.Set(0, 0, 1)
	c := d.Clone()
	c.Set(0, 0, 99)
	if d.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestRowsView(t *testing.T) {
	d, _ := DenseFromSlice(4, 2, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	v, err := d.RowsView(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v.Rows() != 2 || v.At(0, 0) != 3 || v.At(1, 1) != 6 {
		t.Fatal("view content wrong")
	}
	v.Set(0, 0, 42)
	if d.At(1, 0) != 42 {
		t.Fatal("RowsView must share storage")
	}
	if _, err := d.RowsView(3, 3); err == nil {
		t.Fatal("empty view accepted")
	}
	if _, err := d.RowsView(-1, 2); err == nil {
		t.Fatal("negative lo accepted")
	}
	if _, err := d.RowsView(0, 5); err == nil {
		t.Fatal("hi out of range accepted")
	}
}

func TestApplyFillScaleAdd(t *testing.T) {
	d, _ := NewDense(2, 2)
	d.Fill(2)
	d.Apply(func(x float64) float64 { return x * x })
	d.Scale(0.25)
	for _, v := range d.Data() {
		if v != 1 {
			t.Fatalf("value = %g, want 1", v)
		}
	}
	o, _ := NewDense(2, 2)
	o.Fill(3)
	if err := d.AddInPlace(o); err != nil {
		t.Fatal(err)
	}
	if d.At(1, 1) != 4 {
		t.Fatalf("AddInPlace = %g, want 4", d.At(1, 1))
	}
	bad, _ := NewDense(3, 2)
	if err := d.AddInPlace(bad); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a, _ := DenseFromSlice(1, 3, []float64{1, 2, 3})
	b, _ := DenseFromSlice(1, 3, []float64{1, 2.5, 2})
	d, err := a.MaxAbsDiff(b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Fatalf("MaxAbsDiff = %g, want 1", d)
	}
	c, _ := NewDense(2, 3)
	if _, err := a.MaxAbsDiff(c); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}
