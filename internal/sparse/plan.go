package sparse

import (
	"errors"
	"fmt"
)

// ErrNotRadixStructured is returned by CompileStridePlan when a pattern is
// not the mixed-radix layer the given parameters describe. Callers that
// auto-select kernels treat it as "fall back to CSC".
var ErrNotRadixStructured = errors.New("sparse: pattern is not radix-structured")

// StridePlan is a compiled, index-free description of one RadiX-Net layer's
// sparsity: the Kronecker product Ones(dPrev,dNext) ⊗ Σ_n P^{n·pv} on np
// nodes (paper eq. 1–3). Because every in-edge of an output element is
// addressable by arithmetic — like an FFT butterfly stage — a kernel running
// a plan loads no row-index array at all.
//
// Writing an intra-block column cc = lo + t·pv with lo = cc mod pv and
// m = np/pv, the in-rows of cc are { lo + ((t−n) mod m)·pv : n < radix }:
// at most two ascending runs of stride pv (one when t ≥ radix−1, two when
// the circulant wraps). A plan stores only the six integers that generate
// those runs; compilation verifies the claimed structure edge-for-edge
// against the actual pattern, so a plan can never silently disagree with
// the matrix it schedules.
type StridePlan struct {
	rows, cols   int
	np           int // N′: nodes per pre-lift layer
	pv           int // ν: the digit's place value (run stride)
	radix        int // N: the digit's radix (edges per block per column)
	dPrev, dNext int // dense-shape Kronecker block dimensions
	m            int // np/pv: the circulant modulus in t-space
	src          *Pattern
}

// CompileStridePlan compiles the mixed-radix layer parameters (np nodes,
// place value pv, radix, dense shape dPrev→dNext) into a stride plan,
// verifying against pat that the plan enumerates exactly the pattern's edge
// set. It returns ErrNotRadixStructured (wrapped) when the pattern differs
// from the structure the parameters imply, so auto-selection can fall back
// to the generic CSC kernel.
func CompileStridePlan(pat *Pattern, np, pv, radix, dPrev, dNext int) (*StridePlan, error) {
	if np < 1 || pv < 1 || radix < 1 || dPrev < 1 || dNext < 1 {
		return nil, fmt.Errorf("sparse: invalid stride-plan parameters np=%d pv=%d radix=%d shape %d→%d",
			np, pv, radix, dPrev, dNext)
	}
	if np%pv != 0 {
		return nil, fmt.Errorf("%w: place value %d does not divide N′=%d", ErrNotRadixStructured, pv, np)
	}
	m := np / pv
	if radix > m {
		// Shifts j·pv (j < radix) would collide modulo np, collapsing edges;
		// no mixed-radix system produces this (pv·radix divides N′).
		return nil, fmt.Errorf("%w: radix %d exceeds circulant modulus %d", ErrNotRadixStructured, radix, m)
	}
	p := &StridePlan{
		rows: dPrev * np, cols: dNext * np,
		np: np, pv: pv, radix: radix, dPrev: dPrev, dNext: dNext, m: m,
		src: pat,
	}
	if pat.rows != p.rows || pat.cols != p.cols {
		return nil, fmt.Errorf("%w: pattern is %dx%d, parameters imply %dx%d",
			ErrNotRadixStructured, pat.rows, pat.cols, p.rows, p.cols)
	}
	if pat.NNZ() != p.rows*dNext*radix {
		return nil, fmt.Errorf("%w: pattern has %d edges, structure implies %d",
			ErrNotRadixStructured, pat.NNZ(), p.rows*dNext*radix)
	}
	// Full structural verification: the plan's arithmetic enumeration must
	// reproduce the pattern row-for-row in CSR order. O(NNZ), once per
	// engine build.
	outDeg := dNext * radix
	for gr := 0; gr < p.rows; gr++ {
		row := pat.Row(gr)
		if len(row) != outDeg {
			return nil, fmt.Errorf("%w: row %d has %d edges, want %d", ErrNotRadixStructured, gr, len(row), outDeg)
		}
		i := 0
		ok := true
		p.RowOutCols(gr, func(c int) {
			if ok && row[i] != c {
				ok = false
			}
			i++
		})
		if !ok || i != outDeg {
			return nil, fmt.Errorf("%w: row %d deviates from the stride schedule", ErrNotRadixStructured, gr)
		}
	}
	return p, nil
}

// Rows returns the layer's input dimension dPrev·np.
func (p *StridePlan) Rows() int { return p.rows }

// Cols returns the layer's output dimension dNext·np.
func (p *StridePlan) Cols() int { return p.cols }

// NNZ returns the edge count the plan enumerates.
func (p *StridePlan) NNZ() int { return p.rows * p.dNext * p.radix }

// NPrime returns np, the pre-lift layer width N′.
func (p *StridePlan) NPrime() int { return p.np }

// PlaceValue returns the digit's place value ν (the run stride).
func (p *StridePlan) PlaceValue() int { return p.pv }

// Radix returns the digit's radix N.
func (p *StridePlan) Radix() int { return p.radix }

// Shape returns the Kronecker dense-shape block dimensions (dPrev, dNext).
func (p *StridePlan) Shape() (dPrev, dNext int) { return p.dPrev, p.dNext }

// ColDegree returns the uniform in-degree dPrev·radix of every output
// column.
func (p *StridePlan) ColDegree() int { return p.dPrev * p.radix }

// colRuns decomposes intra-block column position t into the plan's at most
// two ascending t-space runs: [t1, t1+n1) then [t2, t2+n2) (n2 = 0 when the
// circulant does not wrap). Row offsets are lo + j·pv for j in each run.
func (p *StridePlan) colRuns(t int) (t1, n1, t2, n2 int) {
	if t >= p.radix-1 {
		return t - p.radix + 1, p.radix, 0, 0
	}
	// Wrapped: low fragment 0..t, then high fragment m-(radix-1-t)..m-1.
	wrap := p.radix - 1 - t
	return 0, t + 1, p.m - wrap, wrap
}

// ColInRows calls fn for every in-edge row of output column c in strictly
// ascending order — exactly the order the CSC kernel stores (and a gather
// accumulates) that column's entries. It is the plan's definition of the
// edge set, used by the property tests and the structural verification's
// dual.
func (p *StridePlan) ColInRows(c int, fn func(r int)) {
	cc := c % p.np
	lo := cc % p.pv
	t1, n1, t2, n2 := p.colRuns(cc / p.pv)
	for a := 0; a < p.dPrev; a++ {
		base := a*p.np + lo
		r := base + t1*p.pv
		for j := 0; j < n1; j++ {
			fn(r)
			r += p.pv
		}
		r = base + t2*p.pv
		for j := 0; j < n2; j++ {
			fn(r)
			r += p.pv
		}
	}
}

// RowOutCols calls fn for every out-edge column of input row r in strictly
// ascending order — the CSR dual of ColInRows. The out-runs of row position
// t are {(t+n) mod m : n < radix}: the mirror image of the in-runs.
func (p *StridePlan) RowOutCols(r int, fn func(c int)) {
	rr := r % p.np
	lo := rr % p.pv
	t := rr / p.pv
	// Ascending out-cols: wrapped fragment 0..t+radix-1-m first (if any),
	// then t..min(t+radix, m)-1.
	var w1, n1 int // wrapped fragment start/len
	n2 := p.radix
	if hi := t + p.radix - 1; hi >= p.m {
		n1 = hi - p.m + 1
		n2 = p.m - t
	}
	for b := 0; b < p.dNext; b++ {
		base := b*p.np + lo
		c := base + w1*p.pv
		for j := 0; j < n1; j++ {
			fn(c)
			c += p.pv
		}
		c = base + t*p.pv
		for j := 0; j < n2; j++ {
			fn(c)
			c += p.pv
		}
	}
}

// String summarizes the plan.
func (p *StridePlan) String() string {
	return fmt.Sprintf("StridePlan{N′=%d ν=%d radix=%d shape %d→%d}", p.np, p.pv, p.radix, p.dPrev, p.dNext)
}
