package sparse

import (
	"math/rand"
	"testing"
)

// randomMatrix returns a rows×cols CSR matrix with ~density fill and
// rng-drawn values (including negatives).
func randomMatrix(t *testing.T, rng *rand.Rand, rows, cols int, density float64) *Matrix {
	t.Helper()
	rowCols := make([][]int, rows)
	for r := range rowCols {
		for c := 0; c < cols; c++ {
			if rng.Float64() < density {
				rowCols[r] = append(rowCols[r], c)
			}
		}
	}
	pat, err := NewPattern(rows, cols, rowCols)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, pat.NNZ())
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	m, err := NewMatrix(pat, vals)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestKernelMatchesScatter(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		rows := 1 + rng.Intn(20)
		cols := 1 + rng.Intn(20)
		m := randomMatrix(t, rng, rows, cols, 0.3)
		k, err := NewKernel(m)
		if err != nil {
			t.Fatal(err)
		}
		if k.Rows() != rows || k.Cols() != cols || k.NNZ() != m.NNZ() {
			t.Fatalf("kernel shape %dx%d nnz=%d, want %dx%d nnz=%d",
				k.Rows(), k.Cols(), k.NNZ(), rows, cols, m.NNZ())
		}
		in := make([]float64, rows)
		for i := range in {
			if rng.Float64() < 0.7 {
				in[i] = rng.NormFloat64()
			}
		}
		bias := rng.NormFloat64() * 0.3
		cap := 0.0
		if trial%2 == 0 {
			cap = rng.Float64() * 2
		}

		// Reference: CSR scatter followed by a separate epilogue pass.
		want, err := m.VecMul(in)
		if err != nil {
			t.Fatal(err)
		}
		wantNNZ := 0
		for c := range want {
			v := want[c] + bias
			if v < 0 {
				v = 0
			} else if cap > 0 && v > cap {
				v = cap
			}
			want[c] = v
			if v > 0 {
				wantNNZ++
			}
		}

		out := make([]float64, cols)
		nnz := k.FusedGatherRow(out, in, bias, cap)
		if nnz != wantNNZ {
			t.Fatalf("trial %d: gather nnz=%d, want %d", trial, nnz, wantNNZ)
		}
		for c := range out {
			if out[c] != want[c] {
				t.Fatalf("trial %d: out[%d] = %v, want %v (bit-compat violated)", trial, c, out[c], want[c])
			}
		}

		// The fused scatter dual must agree bitwise with the gather.
		scat := make([]float64, cols)
		for i := range scat {
			scat[i] = -99 // must be fully overwritten
		}
		nnz = m.FusedScatterRow(scat, in, bias, cap)
		if nnz != wantNNZ {
			t.Fatalf("trial %d: scatter nnz=%d, want %d", trial, nnz, wantNNZ)
		}
		for c := range scat {
			if scat[c] != want[c] {
				t.Fatalf("trial %d: scatter out[%d] = %v, want %v", trial, c, scat[c], want[c])
			}
		}
	}
}

func TestKernelGatherRow4MatchesSingleRows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		rows := 1 + rng.Intn(24)
		cols := 1 + rng.Intn(24)
		m := randomMatrix(t, rng, rows, cols, 0.3)
		k, err := NewKernel(m)
		if err != nil {
			t.Fatal(err)
		}
		ins := make([][]float64, 4)
		wants := make([][]float64, 4)
		wantNNZ := make([]int, 4)
		bias := rng.NormFloat64() * 0.2
		cap := float64(trial % 3) // includes cap=0
		for q := 0; q < 4; q++ {
			ins[q] = make([]float64, rows)
			for i := range ins[q] {
				if rng.Float64() < 0.6 {
					ins[q][i] = rng.NormFloat64()
				}
			}
			wants[q] = make([]float64, cols)
			wantNNZ[q] = k.FusedGatherRow(wants[q], ins[q], bias, cap)
		}
		outs := [4][]float64{
			make([]float64, cols), make([]float64, cols),
			make([]float64, cols), make([]float64, cols),
		}
		var nnz [4]int
		k.FusedGatherRow4(outs[0], outs[1], outs[2], outs[3],
			ins[0], ins[1], ins[2], ins[3], bias, cap, &nnz)
		for q := 0; q < 4; q++ {
			if nnz[q] != wantNNZ[q] {
				t.Fatalf("trial %d row %d: nnz=%d, want %d", trial, q, nnz[q], wantNNZ[q])
			}
			for c := range outs[q] {
				if outs[q][c] != wants[q][c] {
					t.Fatalf("trial %d row %d: out[%d] = %v, want %v (bit-compat violated)",
						trial, q, c, outs[q][c], wants[q][c])
				}
			}
		}
	}
}

func TestKernelAffineMatchesScatter(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		rows := 1 + rng.Intn(15)
		cols := 1 + rng.Intn(15)
		m := randomMatrix(t, rng, rows, cols, 0.4)
		k, err := NewKernel(m)
		if err != nil {
			t.Fatal(err)
		}
		in := make([]float64, rows)
		for i := range in {
			in[i] = rng.NormFloat64()
		}
		bias := make([]float64, cols)
		for i := range bias {
			bias[i] = rng.NormFloat64()
		}
		want, err := m.VecMul(in)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, cols)
		k.AffineGatherRow(out, in, bias)
		for c := range out {
			if out[c] != want[c]+bias[c] {
				t.Fatalf("trial %d: out[%d] = %v, want %v", trial, c, out[c], want[c]+bias[c])
			}
		}
	}
}

func TestKernelRefresh(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomMatrix(t, rng, 8, 8, 0.5)
	k, err := NewKernel(m)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 8)
	for i := range in {
		in[i] = rng.NormFloat64()
	}
	// Mutate the matrix values; the kernel must track them after Refresh.
	vals := m.Values()
	for i := range vals {
		vals[i] *= 2
	}
	if err := k.Refresh(m); err != nil {
		t.Fatal(err)
	}
	want, _ := m.VecMul(in)
	out := make([]float64, 8)
	k.AffineGatherRow(out, in, make([]float64, 8))
	for c := range out {
		if out[c] != want[c] {
			t.Fatalf("after refresh: out[%d] = %v, want %v", c, out[c], want[c])
		}
	}

	// A matrix on any pattern other than the kernel's own must be rejected,
	// even if the value count happens to match: the permutation is only
	// meaningful for the pattern the kernel was built from.
	other := randomMatrix(t, rng, 8, 8, 0.5)
	if err := k.Refresh(other); err == nil {
		t.Fatal("refresh with a foreign pattern accepted")
	}
}

func TestKernelEmptyColumns(t *testing.T) {
	// A column with no in-edges must still get the epilogue of zero.
	pat, err := NewPattern(2, 3, [][]int{{0}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	m := MatrixFromPattern(pat, 1)
	k, err := NewKernel(m)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 3)
	nnz := k.FusedGatherRow(out, []float64{1, 1}, 0.5, 0)
	if out[0] != 2.5 || out[1] != 0.5 || out[2] != 0.5 {
		t.Fatalf("out = %v", out)
	}
	if nnz != 3 {
		t.Fatalf("positive bias must mark every element live, nnz=%d", nnz)
	}
}

func TestKernelGatherDoesNotAllocate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomMatrix(t, rng, 64, 64, 0.1)
	k, err := NewKernel(m)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 64)
	out := make([]float64, 64)
	bias := make([]float64, 64)
	allocs := testing.AllocsPerRun(20, func() {
		k.FusedGatherRow(out, in, -0.1, 32)
		m.FusedScatterRow(out, in, -0.1, 32)
		k.AffineGatherRow(out, in, bias)
		if err := k.Refresh(m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("kernel row ops allocated %g objects per run, want 0", allocs)
	}
}
