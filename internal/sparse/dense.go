package sparse

import (
	"fmt"
	"math"

	"github.com/radix-net/radixnet/internal/parallel"
)

// Dense is a row-major dense float64 matrix. It backs the training
// substrate's activations and serves as the reference implementation that
// sparse kernels are tested against.
type Dense struct {
	rows, cols int
	data       []float64 // len rows*cols, row-major
}

// NewDense returns a zeroed rows×cols dense matrix.
func NewDense(rows, cols int) (*Dense, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("%w: %dx%d", ErrDims, rows, cols)
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}, nil
}

// DenseFromSlice wraps a row-major slice of length rows*cols without copying.
func DenseFromSlice(rows, cols int, data []float64) (*Dense, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("%w: %dx%d", ErrDims, rows, cols)
	}
	if len(data) != rows*cols {
		return nil, fmt.Errorf("sparse: slice length %d, want %d", len(data), rows*cols)
	}
	return &Dense{rows: rows, cols: cols, data: data}, nil
}

// Rows returns the number of rows.
func (d *Dense) Rows() int { return d.rows }

// Cols returns the number of columns.
func (d *Dense) Cols() int { return d.cols }

// At returns element (r, c).
func (d *Dense) At(r, c int) float64 { return d.data[r*d.cols+c] }

// Set assigns element (r, c).
func (d *Dense) Set(r, c int, v float64) { d.data[r*d.cols+c] = v }

// RowSlice returns row r as a shared view.
func (d *Dense) RowSlice(r int) []float64 { return d.data[r*d.cols : (r+1)*d.cols] }

// Data returns the backing row-major slice as a shared view.
func (d *Dense) Data() []float64 { return d.data }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	return &Dense{rows: d.rows, cols: d.cols, data: append([]float64(nil), d.data...)}
}

// RowsView returns rows [lo, hi) as a matrix sharing the same backing
// storage — the zero-copy shard view used by data-parallel training.
func (d *Dense) RowsView(lo, hi int) (*Dense, error) {
	if lo < 0 || hi > d.rows || lo >= hi {
		return nil, fmt.Errorf("%w: rows [%d,%d) of %d", ErrDims, lo, hi, d.rows)
	}
	return &Dense{rows: hi - lo, cols: d.cols, data: d.data[lo*d.cols : hi*d.cols]}, nil
}

// Fill sets every element to v.
func (d *Dense) Fill(v float64) {
	for i := range d.data {
		d.data[i] = v
	}
}

// Apply replaces every element x with fn(x).
func (d *Dense) Apply(fn func(float64) float64) {
	for i, v := range d.data {
		d.data[i] = fn(v)
	}
}

// AddInPlace adds o elementwise into d. Shapes must match.
func (d *Dense) AddInPlace(o *Dense) error {
	if d.rows != o.rows || d.cols != o.cols {
		return fmt.Errorf("%w: add %dx%d += %dx%d", ErrDims, d.rows, d.cols, o.rows, o.cols)
	}
	for i, v := range o.data {
		d.data[i] += v
	}
	return nil
}

// Scale multiplies every element by a.
func (d *Dense) Scale(a float64) {
	for i := range d.data {
		d.data[i] *= a
	}
}

// MatMul returns d·o using a cache-friendly ikj loop, parallelized over row
// blocks of d when profitable.
func (d *Dense) MatMul(o *Dense) (*Dense, error) {
	if d.cols != o.rows {
		return nil, fmt.Errorf("%w: %dx%d · %dx%d", ErrDims, d.rows, d.cols, o.rows, o.cols)
	}
	out := &Dense{rows: d.rows, cols: o.cols, data: make([]float64, d.rows*o.cols)}
	parallel.BlocksGrain(d.rows, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			outRow := out.data[i*o.cols : (i+1)*o.cols]
			for k := 0; k < d.cols; k++ {
				a := d.data[i*d.cols+k]
				if a == 0 {
					continue
				}
				oRow := o.data[k*o.cols : (k+1)*o.cols]
				for j, b := range oRow {
					outRow[j] += a * b
				}
			}
		}
	})
	return out, nil
}

// Transpose returns the transposed matrix.
func (d *Dense) Transpose() *Dense {
	t := &Dense{rows: d.cols, cols: d.rows, data: make([]float64, len(d.data))}
	for r := 0; r < d.rows; r++ {
		for c := 0; c < d.cols; c++ {
			t.data[c*d.rows+r] = d.data[r*d.cols+c]
		}
	}
	return t
}

// MaxAbsDiff returns the largest absolute elementwise difference between two
// equally-shaped matrices, or an error on shape mismatch.
func (d *Dense) MaxAbsDiff(o *Dense) (float64, error) {
	if d.rows != o.rows || d.cols != o.cols {
		return 0, fmt.Errorf("%w: compare %dx%d vs %dx%d", ErrDims, d.rows, d.cols, o.rows, o.cols)
	}
	var m float64
	for i, v := range d.data {
		if diff := math.Abs(v - o.data[i]); diff > m {
			m = diff
		}
	}
	return m, nil
}
