package sparse

import (
	"math/rand"
	"testing"
)

// buildRadixTrio builds the matrix, CSC kernel and radix kernel for one
// random layer, with random weights (including negatives) so cancellation
// and rounding order matter.
func buildRadixTrio(t *testing.T, rng *rand.Rand, np, pv, radix, dPrev, dNext int) (*Matrix, *Kernel, *RadixKernel) {
	t.Helper()
	pat := radixLayer(np, pv, radix, dPrev, dNext)
	vals := make([]float64, pat.NNZ())
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	m, err := NewMatrix(pat, vals)
	if err != nil {
		t.Fatal(err)
	}
	k, err := NewKernel(m)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := CompileStridePlan(pat, np, pv, radix, dPrev, dNext)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := NewRadixKernel(m, k, plan)
	if err != nil {
		t.Fatal(err)
	}
	return m, k, rk
}

// randomInput draws an input row with the requested density; zeros are
// exact so the scatter path's skip logic is exercised.
func randomInput(rng *rand.Rand, n int, density float64) []float64 {
	in := make([]float64, n)
	for i := range in {
		if rng.Float64() < density {
			in[i] = rng.NormFloat64() * 2
		}
	}
	return in
}

// TestRadixKernelBitIdenticalToCSC: the radix kernel's gather, quad-gather
// and scatter paths must produce bit-identical outputs (and identical nnz
// counts) to the CSC kernel and CSR matrix they share values with, across
// random radix systems, shapes, densities and clip settings.
func TestRadixKernelBitIdenticalToCSC(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		radices, np := randomSystem(rng)
		pv := 1
		for _, r := range radices {
			dPrev := 1 + rng.Intn(2)
			dNext := 1 + rng.Intn(2)
			m, k, rk := buildRadixTrio(t, rng, np, pv, r, dPrev, dNext)
			rows, cols := m.Rows(), m.Cols()
			bias := rng.NormFloat64() * 0.2
			clip := 0.0
			if rng.Intn(2) == 0 {
				clip = 0.5 + rng.Float64()
			}
			density := []float64{1, 0.3, 0.05}[rng.Intn(3)]

			var ins [4][]float64
			for b := range ins {
				ins[b] = randomInput(rng, rows, density)
			}
			want := make([]float64, cols)
			got := make([]float64, cols)
			for b := range ins {
				wantNNZ := k.FusedGatherRow(want, ins[b], bias, clip)
				gotNNZ := rk.FusedGatherRow(got, ins[b], bias, clip)
				if wantNNZ != gotNNZ {
					t.Fatalf("%v: gather nnz %d, want %d", rk.Plan(), gotNNZ, wantNNZ)
				}
				for c := range want {
					if want[c] != got[c] {
						t.Fatalf("%v: gather out[%d] = %x, want %x", rk.Plan(), c, got[c], want[c])
					}
				}

				wantNNZ = m.FusedScatterRow(want, ins[b], bias, clip)
				gotNNZ = rk.FusedScatterRow(got, ins[b], bias, clip)
				if wantNNZ != gotNNZ {
					t.Fatalf("%v: scatter nnz %d, want %d", rk.Plan(), gotNNZ, wantNNZ)
				}
				for c := range want {
					if want[c] != got[c] {
						t.Fatalf("%v: scatter out[%d] = %x, want %x", rk.Plan(), c, got[c], want[c])
					}
				}
			}

			// Quad gather vs four singles (which are already CSC-identical).
			var wants, gots [4][]float64
			var wantN [4]int
			for b := range ins {
				wants[b] = make([]float64, cols)
				gots[b] = make([]float64, cols)
				wantN[b] = rk.FusedGatherRow(wants[b], ins[b], bias, clip)
			}
			var gotN [4]int
			rk.FusedGatherRow4(gots[0], gots[1], gots[2], gots[3], ins[0], ins[1], ins[2], ins[3], bias, clip, &gotN)
			for b := range ins {
				if gotN[b] != wantN[b] {
					t.Fatalf("%v: quad nnz[%d] = %d, want %d", rk.Plan(), b, gotN[b], wantN[b])
				}
				for c := range wants[b] {
					if wants[b][c] != gots[b][c] {
						t.Fatalf("%v: quad out%d[%d] = %x, want %x", rk.Plan(), b, c, gots[b][c], wants[b][c])
					}
				}
			}
			pv *= r
		}
	}
}

// TestRadixKernelSharesValueStorage: mutating the matrix in place and
// refreshing the CSC kernel must be visible to the radix kernel with no
// extra call — the contract engines rely on for weight refresh.
func TestRadixKernelSharesValueStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, k, rk := buildRadixTrio(t, rng, 12, 2, 3, 2, 1)
	in := randomInput(rng, m.Rows(), 1)
	before := make([]float64, m.Cols())
	rk.FusedGatherRow(before, in, -0.1, 0)

	vals := m.Values()
	for i := range vals {
		vals[i] *= 1.5
	}
	if err := k.Refresh(m); err != nil {
		t.Fatal(err)
	}

	wantG := make([]float64, m.Cols())
	gotG := make([]float64, m.Cols())
	k.FusedGatherRow(wantG, in, -0.1, 0)
	rk.FusedGatherRow(gotG, in, -0.1, 0)
	changed := false
	for c := range wantG {
		if wantG[c] != gotG[c] {
			t.Fatalf("post-refresh gather out[%d] = %x, want %x", c, gotG[c], wantG[c])
		}
		if gotG[c] != before[c] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("weight mutation not visible through radix kernel")
	}

	wantS := make([]float64, m.Cols())
	gotS := make([]float64, m.Cols())
	m.FusedScatterRow(wantS, in, -0.1, 0)
	rk.FusedScatterRow(gotS, in, -0.1, 0)
	for c := range wantS {
		if wantS[c] != gotS[c] {
			t.Fatalf("post-refresh scatter out[%d] = %x, want %x", c, gotS[c], wantS[c])
		}
	}
}

// packBy permutes a natural-layout vector into packed layout via pos.
func packBy(natural []float64, pos func(int) int) []float64 {
	out := make([]float64, len(natural))
	for i, v := range natural {
		out[pos(i)] = v
	}
	return out
}

// unpackBy reads a packed-layout vector back into natural layout via pos.
func unpackBy(packed []float64, pos func(int) int) []float64 {
	out := make([]float64, len(packed))
	for i := range out {
		out[i] = packed[pos(i)]
	}
	return out
}

// TestRadixKernelStockhamBitIdentical: in Stockham mode every kernel form —
// single, quad and octet gathers plus the scratch-based scatter — must
// produce, after unpacking the packed output layout, results bit-identical
// to the natural-order CSC kernel and CSR matrix. Also checks the packing
// maps are permutations and that the last layer of a system (pv·radix = N′)
// packs to the identity, which is what lets the engine keep natural I/O.
func TestRadixKernelStockhamBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 30; trial++ {
		radices, np := randomSystem(rng)
		pv := 1
		for _, r := range radices {
			m, k, rk := buildRadixTrio(t, rng, np, pv, r, 1, 1)
			p := rk.Plan()
			if !p.CanStockham() {
				t.Fatalf("%v: pure EMR layer should admit Stockham", p)
			}
			if err := rk.EnableStockham(); err != nil {
				t.Fatal(err)
			}
			if !rk.Stockham() {
				t.Fatalf("%v: Stockham not enabled", p)
			}

			seenIn := make([]bool, np)
			seenOut := make([]bool, np)
			for i := 0; i < np; i++ {
				seenIn[p.InPackPos(i)] = true
				seenOut[p.OutPackPos(i)] = true
			}
			for i := 0; i < np; i++ {
				if !seenIn[i] || !seenOut[i] {
					t.Fatalf("%v: packing is not a permutation at %d", p, i)
				}
			}
			if pv*r == np {
				for c := 0; c < np; c++ {
					if p.OutPackPos(c) != c {
						t.Fatalf("%v: final-layer out packing not identity at %d", p, c)
					}
				}
			}

			bias := rng.NormFloat64() * 0.2
			clip := 0.0
			if rng.Intn(2) == 0 {
				clip = 0.5 + rng.Float64()
			}
			var ins, pins, wants [8][]float64
			var wantN [8]int
			for b := range ins {
				ins[b] = randomInput(rng, np, []float64{1, 0.3, 0.05}[rng.Intn(3)])
				pins[b] = packBy(ins[b], p.InPackPos)
				wants[b] = make([]float64, np)
				wantN[b] = k.FusedGatherRow(wants[b], ins[b], bias, clip)
			}
			checkRow := func(form string, b int, packed []float64, nnz int) {
				t.Helper()
				if nnz != wantN[b] {
					t.Fatalf("%v: %s nnz[%d] = %d, want %d", p, form, b, nnz, wantN[b])
				}
				got := unpackBy(packed, p.OutPackPos)
				for c := range got {
					if got[c] != wants[b][c] {
						t.Fatalf("%v: %s out%d[%d] = %x, want %x", p, form, b, c, got[c], wants[b][c])
					}
				}
			}

			single := make([]float64, np)
			n1 := rk.FusedGatherRow(single, pins[0], bias, clip)
			checkRow("single", 0, single, n1)

			var quads [4][]float64
			for b := range quads {
				quads[b] = make([]float64, np)
			}
			var qn [4]int
			rk.FusedGatherRow4(quads[0], quads[1], quads[2], quads[3],
				pins[0], pins[1], pins[2], pins[3], bias, clip, &qn)
			for b := range quads {
				checkRow("quad", b, quads[b], qn[b])
			}

			var outs, pins8 [8][]float64
			for b := range outs {
				outs[b] = make([]float64, np)
				pins8[b] = pins[b]
			}
			var on [8]int
			rk.FusedGatherRow8(&outs, &pins8, bias, clip, &on)
			for b := range outs {
				checkRow("octet", b, outs[b], on[b])
			}

			scatterWant := make([]float64, np)
			wantSN := m.FusedScatterRow(scatterWant, ins[0], bias, clip)
			scatterGot := make([]float64, np)
			scratch := make([]float64, np)
			gotSN := rk.FusedScatterRowStockham(scatterGot, pins[0], scratch, bias, clip)
			if gotSN != wantSN {
				t.Fatalf("%v: stockham scatter nnz = %d, want %d", p, gotSN, wantSN)
			}
			sg := unpackBy(scatterGot, p.OutPackPos)
			for c := range sg {
				if sg[c] != scatterWant[c] {
					t.Fatalf("%v: stockham scatter out[%d] = %x, want %x", p, c, sg[c], scatterWant[c])
				}
			}

			// The NZ-list variant, driven by recorded nonzero positions the
			// way the engine's staging scan records them, must match the
			// scanning scatter bit for bit (and hence the CSR oracle).
			var nz []int32
			for i, v := range pins[0] {
				if v != 0 {
					nz = append(nz, int32(i))
				}
			}
			nzGot := make([]float64, np)
			gotNZN := rk.FusedScatterRowStockhamNZ(nzGot, pins[0], nz, scratch, bias, clip)
			if gotNZN != wantSN {
				t.Fatalf("%v: NZ scatter nnz = %d, want %d", p, gotNZN, wantSN)
			}
			for c := range nzGot {
				if nzGot[c] != scatterGot[c] {
					t.Fatalf("%v: NZ scatter out[%d] = %x, want %x", p, c, nzGot[c], scatterGot[c])
				}
			}
			pv *= r
		}
	}
}

// TestRadixKernelStockhamRefresh: the Stockham weight copy is the one value
// array not shared with CSC/CSR storage; RefreshValues must resync it after
// in-place weight mutation.
func TestRadixKernelStockhamRefresh(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m, k, rk := buildRadixTrio(t, rng, 12, 2, 3, 1, 1)
	if err := rk.EnableStockham(); err != nil {
		t.Fatal(err)
	}
	p := rk.Plan()
	in := randomInput(rng, m.Rows(), 1)
	pin := packBy(in, p.InPackPos)

	vals := m.Values()
	for i := range vals {
		vals[i] *= -1.25
	}
	if err := k.Refresh(m); err != nil {
		t.Fatal(err)
	}
	rk.RefreshValues()

	want := make([]float64, m.Cols())
	k.FusedGatherRow(want, in, -0.1, 0)
	got := make([]float64, m.Cols())
	rk.FusedGatherRow(got, pin, -0.1, 0)
	for c := range want {
		if got[p.OutPackPos(c)] != want[c] {
			t.Fatalf("post-refresh stockham out[%d] = %x, want %x", c, got[p.OutPackPos(c)], want[c])
		}
	}
}

// TestEnableStockhamRejectsKronLift: Kronecker-lifted layers have no packed
// layout; EnableStockham must refuse rather than scramble.
func TestEnableStockhamRejectsKronLift(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	_, _, rk := buildRadixTrio(t, rng, 12, 2, 3, 2, 1)
	if err := rk.EnableStockham(); err == nil {
		t.Fatal("EnableStockham accepted a Kronecker-lifted plan")
	}
	if rk.Stockham() {
		t.Fatal("failed EnableStockham left the kernel in Stockham mode")
	}
}

// TestNewRadixKernelRejectsMismatchedPattern: a plan compiled against a
// different (even identical-looking) pattern must be rejected.
func TestNewRadixKernelRejectsMismatchedPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, k, _ := buildRadixTrio(t, rng, 12, 1, 2, 1, 1)
	other := radixLayer(12, 1, 2, 1, 1)
	plan, err := CompileStridePlan(other, 12, 1, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRadixKernel(m, k, plan); err == nil {
		t.Fatal("radix kernel accepted a plan compiled on a different pattern instance")
	}
}
