package sparse

import (
	"fmt"
	"math"
)

// Kernel is a CSC (compressed sparse column, i.e. transposed) re-encoding of
// a Matrix, specialized for the batched feedforward product Y·W. Where the
// CSR Matrix computes an output row by *scattering* each input activation
// across its out-edges — cache-hostile random writes into the output — the
// Kernel computes each output element as a *gather*: a dot product over the
// column's in-edges. Every output element is written exactly once, in
// order, which eliminates write contention between row blocks and lets the
// bias + threshold-ReLU + cap epilogue fuse into the same loop.
//
// Indices are int32 (halving index bandwidth versus the Matrix's ints);
// construction rejects matrices too large to index. Within each column the
// in-edge row indices are strictly increasing, so a gathered dot product
// accumulates contributions in exactly the same order as the CSR scatter —
// the two paths produce bit-identical floating-point results.
type Kernel struct {
	rows, cols int
	colPtr     []int32 // len cols+1; colPtr[c]..colPtr[c+1] indexes rowIdx
	rowIdx     []int32 // len NNZ; input (row) indices, increasing per column
	vals       []float64
	perm       []int32  // CSR storage index -> CSC storage index, for Refresh
	colDeg     int      // uniform column in-degree, or 0 when columns are ragged
	src        *Pattern // the pattern the kernel was built from
}

// NewKernel builds the CSC kernel of m. The kernel owns a reordered copy of
// the values; after mutating the matrix's values, call Refresh to resync.
func NewKernel(m *Matrix) (*Kernel, error) {
	nnz := m.NNZ()
	if int64(m.pat.rows) > math.MaxInt32 || int64(m.pat.cols) > math.MaxInt32 || int64(nnz) > math.MaxInt32 {
		return nil, fmt.Errorf("sparse: %dx%d matrix with %d entries exceeds int32 kernel indexing", m.pat.rows, m.pat.cols, nnz)
	}
	k := &Kernel{
		rows:   m.pat.rows,
		cols:   m.pat.cols,
		colPtr: make([]int32, m.pat.cols+1),
		rowIdx: make([]int32, nnz),
		vals:   make([]float64, nnz),
		perm:   make([]int32, nnz),
		src:    m.pat,
	}
	for _, c := range m.pat.colIdx {
		k.colPtr[c+1]++
	}
	for c := 0; c < m.pat.cols; c++ {
		k.colPtr[c+1] += k.colPtr[c]
	}
	next := append([]int32(nil), k.colPtr[:m.pat.cols]...)
	for r := 0; r < m.pat.rows; r++ {
		lo, hi := m.pat.rowPtr[r], m.pat.rowPtr[r+1]
		for i := lo; i < hi; i++ {
			c := m.pat.colIdx[i]
			j := next[c]
			next[c]++
			k.rowIdx[j] = int32(r)
			k.perm[i] = j
		}
	}
	// RadiX-Net layers are in-degree regular (every column has the same
	// number of in-edges); detect that so the gather can run its unrolled
	// multi-column fast path.
	if m.pat.cols > 0 {
		deg := int(k.colPtr[1])
		uniform := deg > 0
		for c := 1; uniform && c < m.pat.cols; c++ {
			uniform = int(k.colPtr[c+1]-k.colPtr[c]) == deg
		}
		if uniform {
			k.colDeg = deg
		}
	}
	k.Refresh(m)
	return k, nil
}

// Refresh re-copies the matrix's (possibly mutated) values into the
// kernel's transposed storage. m must be built on the identical Pattern the
// kernel was constructed from — a same-shaped matrix with different
// structure would silently scramble the value permutation, so it is
// rejected. Refresh is O(NNZ) and does not allocate.
func (k *Kernel) Refresh(m *Matrix) error {
	if m.pat != k.src {
		return fmt.Errorf("sparse: refresh with a different pattern than the kernel was built from (%dx%d nnz=%d)",
			m.pat.rows, m.pat.cols, m.NNZ())
	}
	if len(m.vals) != len(k.vals) {
		return fmt.Errorf("sparse: refresh with %d values, kernel has %d", len(m.vals), len(k.vals))
	}
	for i, v := range m.vals {
		k.vals[k.perm[i]] = v
	}
	return nil
}

// Rows returns the input dimension (rows of the underlying matrix).
func (k *Kernel) Rows() int { return k.rows }

// Cols returns the output dimension (columns of the underlying matrix).
func (k *Kernel) Cols() int { return k.cols }

// NNZ returns the number of stored entries.
func (k *Kernel) NNZ() int { return len(k.vals) }

// FusedGatherRow computes one batch row of the fused feedforward step
//
//	out[c] = min(cap, max(0, Σ_r in[r]·W[r,c] + bias))   (cap ≤ 0: no ceiling)
//
// touching each output element exactly once, and returns the number of
// positive output elements — the row's activation count, which drives both
// active-row tracking (0 means the row is dead) and the per-row
// gather/scatter choice at the next layer. in must have length Rows() and
// out length Cols(); out is fully overwritten. It does not allocate.
//
// The inner loop walks same-length value/index windows resliced per
// column, so the compiler proves w[j]/ri[j] in bounds and the only check
// left per element is the inherent data-dependent gather in[ri[j]] (the
// BCE gate pins exactly that budget).
//
//radix:hotpath
func (k *Kernel) FusedGatherRow(out, in []float64, bias, cap float64) int {
	in = in[:k.rows]
	out = out[:k.cols]
	if k.colDeg > 0 {
		return k.fusedGatherRowRegular(out, in, bias, cap)
	}
	colPtr, rowIdx, vals := k.colPtr, k.rowIdx, k.vals
	cp := colPtr[1 : len(out)+1]
	nnz := 0
	lo := colPtr[0]
	//radix:bce region=csc-gather allow=slice,index:1
	for c := range out {
		hi := cp[c]
		var acc float64
		w := vals[lo:hi]
		ri := rowIdx[lo:hi][:len(w)]
		for j, wv := range w {
			acc += wv * in[ri[j]]
		}
		lo = hi
		v := acc + bias
		if v <= 0 {
			v = 0
		} else {
			if cap > 0 && v > cap {
				v = cap
			}
			nnz++
		}
		out[c] = v
	}
	//radix:bce end
	return nnz
}

// fusedGatherRowRegular is FusedGatherRow for in-degree-regular kernels:
// four output columns are gathered at once on four independent accumulator
// chains, hiding the floating-point add latency that the single-chain loop
// serializes on. Each column still accumulates its own in-edges in the
// same ascending order, so results are bit-identical to the scalar loop.
// Each column's value/index windows are resliced to w0's length so the
// compiler drops their per-tap bounds checks; only the data-dependent
// in[...] gathers keep theirs.
//
//radix:hotpath
func (k *Kernel) fusedGatherRowRegular(out, in []float64, bias, cap float64) int {
	deg := k.colDeg
	rowIdx, vals := k.rowIdx, k.vals
	nnz := 0
	c := 0
	//radix:bce region=csc-gather-regular allow=slice,index:4
	for ; c+4 <= len(out); c += 4 {
		base := c * deg
		w0 := vals[base : base+deg]
		r0 := rowIdx[base : base+deg][:len(w0)]
		w1 := vals[base+deg : base+2*deg][:len(w0)]
		r1 := rowIdx[base+deg : base+2*deg][:len(w0)]
		w2 := vals[base+2*deg : base+3*deg][:len(w0)]
		r2 := rowIdx[base+2*deg : base+3*deg][:len(w0)]
		w3 := vals[base+3*deg : base+4*deg][:len(w0)]
		r3 := rowIdx[base+3*deg : base+4*deg][:len(w0)]
		var a0, a1, a2, a3 float64
		for j := range w0 {
			a0 += w0[j] * in[r0[j]]
			a1 += w1[j] * in[r1[j]]
			a2 += w2[j] * in[r2[j]]
			a3 += w3[j] * in[r3[j]]
		}
		v0 := a0 + bias
		v1 := a1 + bias
		v2 := a2 + bias
		v3 := a3 + bias
		if v0 <= 0 {
			v0 = 0
		} else {
			if cap > 0 && v0 > cap {
				v0 = cap
			}
			nnz++
		}
		if v1 <= 0 {
			v1 = 0
		} else {
			if cap > 0 && v1 > cap {
				v1 = cap
			}
			nnz++
		}
		if v2 <= 0 {
			v2 = 0
		} else {
			if cap > 0 && v2 > cap {
				v2 = cap
			}
			nnz++
		}
		if v3 <= 0 {
			v3 = 0
		} else {
			if cap > 0 && v3 > cap {
				v3 = cap
			}
			nnz++
		}
		o := out[c : c+4 : c+4]
		o[0] = v0
		o[1] = v1
		o[2] = v2
		o[3] = v3
	}
	//radix:bce end
	// Tail columns (at most three) run outside the gated region.
	for ; c < len(out); c++ {
		base := c * deg
		w := vals[base : base+deg]
		ri := rowIdx[base : base+deg][:len(w)]
		var acc float64
		for j, wv := range w {
			acc += wv * in[ri[j]]
		}
		v := acc + bias
		if v <= 0 {
			v = 0
		} else {
			if cap > 0 && v > cap {
				v = cap
			}
			nnz++
		}
		out[c] = v
	}
	return nnz
}

// FusedScatterRow is the CSR dual of Kernel.FusedGatherRow: the same fused
// feedforward step computed by scattering each *nonzero* input activation
// across its out-edges. For mostly-zero input rows this skips the bulk of
// the multiply work that a gather must still traverse, at the cost of
// touching the output twice (zero-fill + accumulate, then epilogue). The
// inference engine picks gather or scatter per row from the row's exact
// activation count. Accumulation visits contributions in the same
// input-index order as the gather, so the two paths agree bitwise. It does
// not allocate.
func (m *Matrix) FusedScatterRow(out, in []float64, bias, cap float64) int {
	in = in[:m.pat.rows]
	out = out[:m.pat.cols]
	for c := range out {
		out[c] = 0
	}
	rowPtr, colIdx, vals := m.pat.rowPtr, m.pat.colIdx, m.vals
	for r, xv := range in {
		if xv == 0 {
			continue
		}
		lo, hi := rowPtr[r], rowPtr[r+1]
		for i := lo; i < hi; i++ {
			out[colIdx[i]] += xv * vals[i]
		}
	}
	nnz := 0
	for c, acc := range out {
		v := acc + bias
		if v <= 0 {
			v = 0
		} else {
			if cap > 0 && v > cap {
				v = cap
			}
			nnz++
		}
		out[c] = v
	}
	return nnz
}

// FusedGatherRow4 is FusedGatherRow over four batch rows at once: each
// stored entry's column index and weight are loaded once and applied to all
// four rows, quartering index/value memory traffic on the load-bound gather
// loop, while the four accumulator chains hide floating-point add latency.
// Every row accumulates its own in-edges in the same ascending order as
// FusedGatherRow, so per-row results are bit-identical to four single-row
// calls. nnz receives the per-row positive-activation counts. It does not
// allocate. The value/index windows are resliced per column like
// FusedGatherRow's, leaving only the data-dependent in-row gathers
// bounds-checked.
//
//radix:hotpath
func (k *Kernel) FusedGatherRow4(out0, out1, out2, out3, in0, in1, in2, in3 []float64, bias, cap float64, nnz *[4]int) {
	in0 = in0[:k.rows]
	in1 = in1[:k.rows]
	in2 = in2[:k.rows]
	in3 = in3[:k.rows]
	out0 = out0[:k.cols]
	out1 = out1[:k.cols]
	out2 = out2[:k.cols]
	out3 = out3[:k.cols]
	colPtr, rowIdx, vals := k.colPtr, k.rowIdx, k.vals
	cp := colPtr[1 : len(out0)+1]
	var n0, n1, n2, n3 int
	lo := colPtr[0]
	// One IsInBounds: after in0[r] is checked the compiler proves in1..in3
	// (all resliced to k.rows) share its bound.
	//radix:bce region=csc-gather4 allow=slice,index:1
	for c := range out0 {
		hi := cp[c]
		var a0, a1, a2, a3 float64
		w := vals[lo:hi]
		ri := rowIdx[lo:hi][:len(w)]
		for j, wv := range w {
			r := ri[j]
			a0 += wv * in0[r]
			a1 += wv * in1[r]
			a2 += wv * in2[r]
			a3 += wv * in3[r]
		}
		lo = hi
		v0 := a0 + bias
		v1 := a1 + bias
		v2 := a2 + bias
		v3 := a3 + bias
		if v0 <= 0 {
			v0 = 0
		} else {
			if cap > 0 && v0 > cap {
				v0 = cap
			}
			n0++
		}
		if v1 <= 0 {
			v1 = 0
		} else {
			if cap > 0 && v1 > cap {
				v1 = cap
			}
			n1++
		}
		if v2 <= 0 {
			v2 = 0
		} else {
			if cap > 0 && v2 > cap {
				v2 = cap
			}
			n2++
		}
		if v3 <= 0 {
			v3 = 0
		} else {
			if cap > 0 && v3 > cap {
				v3 = cap
			}
			n3++
		}
		out0[c] = v0
		out1[c] = v1
		out2[c] = v2
		out3[c] = v3
	}
	//radix:bce end
	nnz[0], nnz[1], nnz[2], nnz[3] = n0, n1, n2, n3
}

// AffineGatherRow computes one batch row of the linear-layer forward step
//
//	out[c] = Σ_r in[r]·W[r,c] + bias[c]
//
// with a per-column bias and no activation — the sparse.Matrix analogue of
// a dense affine layer, used by the training substrate. It does not
// allocate.
func (k *Kernel) AffineGatherRow(out, in, bias []float64) {
	in = in[:k.rows]
	out = out[:k.cols]
	bias = bias[:k.cols]
	colPtr, rowIdx, vals := k.colPtr, k.rowIdx, k.vals
	lo := colPtr[0]
	for c := range out {
		hi := colPtr[c+1]
		var acc float64
		for i := lo; i < hi; i++ {
			acc += vals[i] * in[rowIdx[i]]
		}
		lo = hi
		out[c] = acc + bias[c]
	}
}
