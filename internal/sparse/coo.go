package sparse

import (
	"fmt"
	"sort"
)

// COO is a mutable coordinate-format builder for sparsity patterns. Entries
// may be added in any order; duplicates collapse when converting to a
// Pattern. COO is the natural target for streaming generators and file
// readers; all algebra happens on the immutable CSR forms.
type COO struct {
	rows, cols int
	r, c       []int
}

// NewCOO returns an empty builder with the given shape.
func NewCOO(rows, cols int) (*COO, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("%w: %dx%d", ErrDims, rows, cols)
	}
	return &COO{rows: rows, cols: cols}, nil
}

// Rows returns the number of rows.
func (m *COO) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *COO) Cols() int { return m.cols }

// Len returns the number of entries added so far (including duplicates).
func (m *COO) Len() int { return len(m.r) }

// Add records entry (r, c). It errors if the indices are out of range.
func (m *COO) Add(r, c int) error {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		return fmt.Errorf("sparse: entry (%d,%d) out of range %dx%d", r, c, m.rows, m.cols)
	}
	m.r = append(m.r, r)
	m.c = append(m.c, c)
	return nil
}

// Pattern converts the accumulated entries into an immutable CSR Pattern,
// sorting rows and collapsing duplicates.
func (m *COO) Pattern() *Pattern {
	counts := make([]int, m.rows+1)
	for _, r := range m.r {
		counts[r+1]++
	}
	for i := 0; i < m.rows; i++ {
		counts[i+1] += counts[i]
	}
	colIdx := make([]int, len(m.c))
	next := append([]int(nil), counts[:m.rows]...)
	for i, r := range m.r {
		colIdx[next[r]] = m.c[i]
		next[r]++
	}
	// Sort and dedupe within each row, compacting in place.
	p := &Pattern{rows: m.rows, cols: m.cols, rowPtr: make([]int, m.rows+1)}
	out := colIdx[:0]
	for r := 0; r < m.rows; r++ {
		row := colIdx[counts[r]:counts[r+1]]
		sort.Ints(row)
		prev := -1
		for _, c := range row {
			if c != prev {
				out = append(out, c)
				prev = c
			}
		}
		p.rowPtr[r+1] = len(out)
	}
	p.colIdx = append([]int(nil), out...)
	return p
}
