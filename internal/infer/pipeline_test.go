package infer

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/radix-net/radixnet/internal/dataset"
)

func TestSaveLoadDirRoundTrip(t *testing.T) {
	e := smallEngine(t)
	e.PerturbWeights(0.03, 5) // per-entry weights exercise the weighted writer
	dir := t.TempDir()
	if err := e.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumLayers() != e.NumLayers() || back.TotalNNZ() != e.TotalNNZ() {
		t.Fatal("round trip changed the network shape")
	}
	// Behavioral equality: identical outputs on a batch.
	batch, err := dataset.SparseBatch(6, 16, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	a, err := e.Infer(batch)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Infer(batch)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := a.MaxAbsDiff(b)
	if err != nil {
		t.Fatal(err)
	}
	if diff > 1e-9 {
		t.Fatalf("reloaded engine diverges by %g", diff)
	}
}

func TestSaveDirLayout(t *testing.T) {
	e := smallEngine(t)
	dir := t.TempDir()
	if err := e.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatal("manifest missing")
	}
	if _, err := os.Stat(filepath.Join(dir, "layer-0001.tsv")); err != nil {
		t.Fatal("layer file missing")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != e.NumLayers()+1 {
		t.Fatalf("directory has %d entries, want %d", len(entries), e.NumLayers()+1)
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing directory accepted")
	}
	// Corrupt manifest.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
	// Manifest/bias mismatch.
	dir2 := t.TempDir()
	bad := `{"layers":[{"file":"layer-0001.tsv","rows":2,"cols":2,"nnz":1}],"bias":[],"cap":0}`
	if err := os.WriteFile(filepath.Join(dir2, "manifest.json"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir2); err == nil {
		t.Fatal("bias-count mismatch accepted")
	}
}

func TestLoadDirDetectsTamperedLayer(t *testing.T) {
	e := smallEngine(t)
	dir := t.TempDir()
	if err := e.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	// Drop an edge from the first layer: nnz no longer matches the manifest.
	path := filepath.Join(dir, "layer-0001.tsv")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	idx := -1
	for i, b := range data {
		if b == '\n' {
			idx = i
			break
		}
	}
	if err := os.WriteFile(path, data[idx+1:], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("tampered layer accepted")
	}
}
